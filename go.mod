module rexptree

go 1.22
