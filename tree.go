package rexptree

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
	"rexptree/internal/wal"
)

// Tree is a thread-safe moving-object index.  It keeps an in-memory
// table of each object's current report (the primary store of a
// moving-objects database), so updates and deletions need only the
// object id.
//
// Concurrency: the four index queries (Timeslice, Window, Moving,
// Nearest) run on a lock-free snapshot read path — they pin an epoch,
// traverse the immutable page versions last published by a writer, and
// never block behind Update, Delete or UpdateBatch (which still take
// the exclusive lock against each other).  Object-table reads (Get,
// Len, Stats, ForEach, Validate) take the shared lock.  The time a
// caller spends waiting for a lock is recorded in the lock-wait
// histograms of Metrics; Options.LockedReads restores the legacy
// behaviour where queries take the shared lock too.  For workloads
// that need concurrent updates, see ShardedTree, which partitions
// objects across independent Trees.
type Tree struct {
	mu    sync.RWMutex
	t     *core.Tree
	store storage.Store
	dims  int

	// lockedReads serves queries under mu instead of the snapshot
	// path (Options.LockedReads).
	lockedReads bool
	objects     map[uint32]geom.MovingPoint
	m           *obs.Metrics  // always non-nil; see Metrics and WriteMetrics
	rec         *obs.Recorder // flight recorder; nil unless Options.FlightRecorder > 0

	// Durability state; all nil/zero when Durability is DurabilityNone.
	fs          *storage.FileStore // the unwrapped page file
	wal         *wal.Writer        // nil means no WAL (legacy mode)
	walPath     string
	durability  Durability
	syncEvery   time.Duration
	ckptBytes   int64
	lastWALSync time.Time
	walBuf      []byte // reused encoding scratch

	// Replication hooks; see replication.go.  path is Options.Path (""
	// for a memory-backed tree).  replSink, when set, observes every
	// applied mutation under mu.  ckptHold > 0 defers checkpoints while
	// a backup streams this tree's files; snapEpoch counts the events
	// that invalidate such a stream (checkpoints, WAL rewinds).
	path      string
	replSink  ReplSink
	ckptHold  atomic.Int32
	snapEpoch atomic.Uint64

	// walPoison, when non-nil, refuses every further mutation: a
	// mutation failed after its WAL record was appended and the record
	// could not be rewound, so any later commit or checkpoint would make
	// the failed operation durable.  Close keeps the file dirty; the
	// next Open recovers the last consistent state.
	walPoison error

	closed   bool
	closeErr error
}

// lock takes the exclusive lock, recording the wait time.
func (tr *Tree) lock() {
	start := time.Now()
	tr.mu.Lock()
	tr.m.LockWaitWrite.Observe(time.Since(start))
}

// rlock takes the shared lock, recording the wait time.
func (tr *Tree) rlock() {
	start := time.Now()
	tr.mu.RLock()
	tr.m.LockWaitRead.Observe(time.Since(start))
}

// Open creates a tree with the given options.  When Options.Path names
// an existing index file (previously Closed cleanly), the stored tree
// is reopened and its object table rebuilt; otherwise a fresh index is
// created.
//
// With a durability policy set (Options.Durability), Open also detects
// an unclean shutdown and recovers: it re-applies the last complete
// checkpoint's page images, verifies every reachable page's checksum,
// and replays the write-ahead log's logical tail.  Without one, a file
// left behind by a crashed durable session is refused rather than
// silently opened against a stale base.
func Open(opts Options) (*Tree, error) { return open(opts, false) }

// open implements Open; retried guards the one recursion that recreates
// the files after a crash during a fresh tree's first checkpoint.
func open(opts Options, retried bool) (*Tree, error) {
	durable := opts.Durability != DurabilityNone
	if durable && opts.Path == "" {
		return nil, fmt.Errorf("rexptree: Options.Durability requires a file-backed tree (set Options.Path)")
	}
	m := newMetrics(opts)
	var (
		store    storage.Store
		fs       *storage.FileStore
		existing bool
	)
	if opts.Path != "" {
		var err error
		if _, serr := os.Stat(opts.Path); serr == nil {
			fs, err = storage.OpenFileStore(opts.Path)
			existing = true
		} else {
			fs, err = storage.CreateFileStore(opts.Path)
		}
		if err != nil {
			return nil, err
		}
		fs.SetMetrics(m)
		if durable && fs.Version() < 2 {
			fs.CloseKeepDirty()
			return nil, fmt.Errorf("rexptree: %s is a version-%d file without page checksums; migrate it with rexpreshard before enabling durability", opts.Path, fs.Version())
		}
		if fs.Dirty() && !durable {
			fs.CloseKeepDirty()
			return nil, fmt.Errorf("%w: %s", errNotDurable, opts.Path)
		}
		store = fs
	} else {
		store = storage.NewMemStore()
	}
	if opts.testWrapStore != nil {
		store = opts.testWrapStore(store)
	}
	if opts.IOLatency > 0 {
		store = &storage.LatencyStore{
			Inner:        store,
			ReadLatency:  opts.IOLatency,
			WriteLatency: opts.IOLatency,
		}
	}
	cfg := opts.internal()
	cfg.Metrics = m
	tr := &Tree{
		store:       store,
		objects:     make(map[uint32]geom.MovingPoint),
		lockedReads: opts.LockedReads,
		m:           m,
		rec:         newRecorder(opts),
	}
	if durable {
		tr.fs = fs
		tr.path = opts.Path
		tr.walPath = WALPath(opts.Path)
		tr.durability = opts.Durability
		tr.syncEvery = opts.SyncEvery
		if tr.syncEvery <= 0 {
			tr.syncEvery = defaultSyncEvery
		}
		tr.ckptBytes = opts.CheckpointBytes
		if tr.ckptBytes <= 0 {
			tr.ckptBytes = defaultCheckpointBytes
		}
		tr.lastWALSync = time.Now()
	}

	// Every durable open of an existing file goes through recovery: it
	// subsumes the clean case (empty WAL, nothing to replay) and is the
	// only correct path for the unclean one.
	if durable && existing {
		var tc *QueryTrace
		if tr.rec != nil {
			tc = newTrace("recovery")
		}
		rstart := time.Now()
		retry, err := recoverDurable(opts, fs, store, cfg, tr, tc)
		tc.finishRecord(tr.rec, 0, time.Since(rstart), err)
		if err != nil {
			if tr.wal != nil {
				tr.wal.Close()
			}
			fs.CloseKeepDirty()
			return nil, err
		}
		if retry {
			// Crash during the fresh tree's very first checkpoint:
			// nothing was ever acknowledged, so recreate from scratch.
			fs.CloseKeepDirty()
			if retried {
				return nil, fmt.Errorf("rexptree: cannot initialize %s: repeated first-checkpoint recovery", opts.Path)
			}
			if err := RemoveIndex(opts.Path); err != nil {
				return nil, err
			}
			return open(opts, true)
		}
		return tr, nil
	}

	var (
		t   *core.Tree
		err error
	)
	if existing {
		t, err = core.Open(cfg, store)
	} else {
		t, err = core.New(cfg, store)
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	tr.t = t
	tr.dims = t.Config().Dims
	if existing {
		err := t.Records(func(oid uint32, p geom.MovingPoint) error {
			tr.objects[oid] = p
			return nil
		})
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	if durable {
		if err := tr.initWAL(opts); err != nil {
			if tr.wal != nil {
				tr.wal.Close()
			}
			fs.CloseKeepDirty()
			RemoveIndex(opts.Path)
			return nil, err
		}
	}
	return tr, nil
}

// newMetrics builds the tree's instrument registry and wires the
// observer and slow-op hooks configured in opts.
func newMetrics(opts Options) *obs.Metrics {
	m := obs.New()
	if opts.Observer != nil {
		hook := opts.Observer
		m.Observer = obs.ObserverFunc(func(e obs.Event) {
			hook(ObserverEvent{Kind: e.Kind.String(), Level: e.Level, Count: e.N, Shard: -1})
		})
	}
	if opts.SlowOpThreshold > 0 {
		slow := opts.SlowOp
		if slow == nil {
			threshold := opts.SlowOpThreshold
			slow = func(op string, d time.Duration) {
				log.Printf("rexptree: slow %s: %v (threshold %v)", op, d, threshold)
			}
		}
		m.SetSlowOp(opts.SlowOpThreshold, func(op obs.Op, d time.Duration) { slow(op.String(), d) })
	}
	return m
}

// Close persists the tree's metadata and releases the underlying
// storage.  For a durable tree it runs a final checkpoint, closes the
// WAL and stamps the file clean; if the checkpoint fails the file
// keeps its dirty flag so the next Open recovers.  Close is
// idempotent: repeated calls return the first call's result.  The
// tree must not be used for anything else afterwards.
func (tr *Tree) Close() error {
	tr.lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return tr.closeErr
	}
	tr.closed = true
	if tr.wal != nil {
		tr.closeErr = tr.closeDurable()
		return tr.closeErr
	}
	if err := tr.t.Sync(); err != nil {
		tr.store.Close()
		tr.closeErr = err
		return err
	}
	tr.closeErr = tr.store.Close()
	return tr.closeErr
}

// Update inserts the object's report, replacing any previous report
// (an update is a deletion of the old report followed by an insertion
// of the new one, as in the paper's workloads).  now is the current
// time; p.Time must not precede now's meaning for the caller, and time
// must never run backwards across calls.
func (tr *Tree) Update(id uint32, p Point, now float64) error {
	var tc *QueryTrace
	if tr.rec != nil {
		tc = newTrace("update")
	}
	start := time.Now()
	err := tr.update(id, p, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpUpdate, d, err)
	tc.finishRecord(tr.rec, 0, d, err)
	return err
}

func (tr *Tree) update(id uint32, p Point, now float64, tc *QueryTrace) error {
	li := tc.begin(-1, "lock-wait", -1)
	tr.lock()
	tc.endAt(li)
	defer tr.mu.Unlock()
	if err := tr.updateLocked(id, p, now, tc); err != nil {
		return err
	}
	if tr.wal != nil {
		return tr.walCommit(tc)
	}
	return nil
}

// updateLocked applies one report; the exclusive lock must be held.
// In WAL mode the record is appended (buffered) before the mutation —
// the caller commits per the durability policy.  If the mutation then
// fails, the record is rolled back (or the tree poisoned) so a failed
// operation can never become durable.
func (tr *Tree) updateLocked(id uint32, p Point, now float64, tc *QueryTrace) error {
	if tr.wal == nil {
		ai := tc.begin(-1, "apply", -1)
		err := tr.applyUpdate(id, p, now)
		tc.endAt(ai)
		if err == nil {
			tc.addMeasured("version-publish", tr.t.LastPublishNanos())
			tr.replNoteUpdate(id, p, now)
		}
		return err
	}
	if tr.walPoison != nil {
		return tr.walPoison
	}
	prev := tr.wal.Size()
	wi := tc.begin(-1, "wal-append", -1)
	err := tr.walLogUpdate(id, p, now)
	tc.endAt(wi)
	if err != nil {
		return err
	}
	ai := tc.begin(-1, "apply", -1)
	err = tr.applyUpdate(id, p, now)
	tc.endAt(ai)
	if err != nil {
		tr.walRollback(prev, err)
		return err
	}
	tc.addMeasured("version-publish", tr.t.LastPublishNanos())
	tr.replNoteUpdate(id, p, now)
	return nil
}

// applyUpdate is the in-tree half of an update.  The delete+insert
// pair is published as one snapshot, so lock-free readers can never
// observe the gap where the old report is gone and the new one is not
// yet inserted.
func (tr *Tree) applyUpdate(id uint32, p Point, now float64) error {
	tr.t.BeginBatch()
	defer tr.t.EndBatch()
	if old, ok := tr.objects[id]; ok {
		if _, err := tr.t.Delete(id, old, now); err != nil {
			return err
		}
		// The old report is gone; if the insert below fails, the
		// object table must not keep pointing at it.
		delete(tr.objects, id)
	}
	mp := toInternal(p, tr.dims)
	if err := tr.t.Insert(id, mp, now); err != nil {
		return err
	}
	tr.objects[id] = tr.t.Stored(mp)
	return nil
}

// Delete removes the object's report.  It returns false when the
// object is unknown or its report has already expired (an expired
// entry is invisible to the deletion search, §4.3; it will be purged
// lazily).
func (tr *Tree) Delete(id uint32, now float64) (bool, error) {
	var tc *QueryTrace
	if tr.rec != nil {
		tc = newTrace("delete")
	}
	start := time.Now()
	ok, err := tr.delete(id, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpDelete, d, err)
	tc.finishRecord(tr.rec, 0, d, err)
	return ok, err
}

func (tr *Tree) delete(id uint32, now float64, tc *QueryTrace) (bool, error) {
	li := tc.begin(-1, "lock-wait", -1)
	tr.lock()
	tc.endAt(li)
	defer tr.mu.Unlock()
	old, ok := tr.objects[id]
	if !ok {
		return false, nil
	}
	if tr.wal == nil {
		delete(tr.objects, id)
		removed, err := tr.t.Delete(id, old, now)
		if err == nil {
			tr.replNoteDelete(id, now)
		}
		return removed, err
	}
	if tr.walPoison != nil {
		return false, tr.walPoison
	}
	prev := tr.wal.Size()
	wi := tc.begin(-1, "wal-append", -1)
	err := tr.walLogDelete(id, now)
	tc.endAt(wi)
	if err != nil {
		return false, err
	}
	delete(tr.objects, id)
	ai := tc.begin(-1, "apply", -1)
	removed, err := tr.t.Delete(id, old, now)
	tc.endAt(ai)
	if err != nil {
		tr.walRollback(prev, err)
		return removed, err
	}
	tc.addMeasured("version-publish", tr.t.LastPublishNanos())
	tr.replNoteDelete(id, now)
	return removed, tr.walCommit(tc)
}

// Timeslice reports the objects predicted to be inside r at time at
// (Type 1 query).  now is the current time; at must not precede it.
func (tr *Tree) Timeslice(r Rect, at, now float64) ([]Result, error) {
	if tr.rec != nil {
		res, _, err := tr.TraceTimeslice(r, at, now)
		return res, err
	}
	start := time.Now()
	res, err := tr.timeslice(r, at, now)
	tr.m.ObserveOp(obs.OpTimeslice, time.Since(start), err)
	return res, err
}

func (tr *Tree) timeslice(r Rect, at, now float64) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	return tr.search(geom.Timeslice(toRect(r), at), now)
}

// The query-time validators, shared by Tree and the sharded front-end
// so both reject an invalid query with the identical error (a sharded
// tree must fail such queries even when every shard is pruned).
func checkTimeslice(at, now float64) error {
	if at < now {
		return fmt.Errorf("rexptree: query time %v precedes current time %v", at, now)
	}
	return nil
}

func checkWindow(t1, t2, now float64) error {
	if t1 > t2 || t1 < now {
		return fmt.Errorf("rexptree: invalid query window [%v, %v] at time %v", t1, t2, now)
	}
	return nil
}

func checkMoving(t1, t2, now float64) error {
	if t1 >= t2 || t1 < now {
		return fmt.Errorf("rexptree: invalid moving query interval [%v, %v] at time %v", t1, t2, now)
	}
	return nil
}

// Window reports the objects predicted to cross r at some time in
// [t1, t2] (Type 2 query).
func (tr *Tree) Window(r Rect, t1, t2, now float64) ([]Result, error) {
	if tr.rec != nil {
		res, _, err := tr.TraceWindow(r, t1, t2, now)
		return res, err
	}
	start := time.Now()
	res, err := tr.window(r, t1, t2, now)
	tr.m.ObserveOp(obs.OpWindow, time.Since(start), err)
	return res, err
}

func (tr *Tree) window(r Rect, t1, t2, now float64) ([]Result, error) {
	if err := checkWindow(t1, t2, now); err != nil {
		return nil, err
	}
	return tr.search(geom.Window(toRect(r), t1, t2), now)
}

// Moving reports the objects predicted to cross the trapezoid
// connecting r1 at t1 to r2 at t2 (Type 3 query).
func (tr *Tree) Moving(r1, r2 Rect, t1, t2, now float64) ([]Result, error) {
	if tr.rec != nil {
		res, _, err := tr.TraceMoving(r1, r2, t1, t2, now)
		return res, err
	}
	start := time.Now()
	res, err := tr.moving(r1, r2, t1, t2, now)
	tr.m.ObserveOp(obs.OpMoving, time.Since(start), err)
	return res, err
}

func (tr *Tree) moving(r1, r2 Rect, t1, t2, now float64) ([]Result, error) {
	if err := checkMoving(t1, t2, now); err != nil {
		return nil, err
	}
	return tr.search(geom.Moving(toRect(r1), toRect(r2), t1, t2, tr.dims), now)
}

// Nearest returns the k objects whose predicted positions at time at
// are closest to pos, nearest first.  Expired reports never qualify.
// Like Timeslice, the query time must not precede the current time.
func (tr *Tree) Nearest(pos Vec, at float64, k int, now float64) ([]Result, error) {
	if tr.rec != nil {
		res, _, err := tr.TraceNearest(pos, at, k, now)
		return res, err
	}
	start := time.Now()
	res, err := tr.nearest(pos, at, k, now)
	tr.m.ObserveOp(obs.OpNearest, time.Since(start), err)
	return res, err
}

func (tr *Tree) nearest(pos Vec, at float64, k int, now float64) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	var (
		rs  []core.Result
		err error
	)
	if tr.snapshotReads() {
		rs, err = tr.t.NearestSnap(geom.Vec(pos), at, k, now)
	} else {
		tr.rlock()
		defer tr.mu.RUnlock()
		rs, err = tr.t.Nearest(geom.Vec(pos), at, k, now)
	}
	if err != nil {
		return nil, err
	}
	return fromResults(rs, now, tr.dims), nil
}

func (tr *Tree) search(q geom.Query, now float64) ([]Result, error) {
	var (
		rs  []core.Result
		err error
	)
	if tr.snapshotReads() {
		rs, err = tr.t.SearchSnap(q, now)
	} else {
		tr.rlock()
		defer tr.mu.RUnlock()
		rs, err = tr.t.Search(q, now)
	}
	if err != nil {
		return nil, err
	}
	return fromResults(rs, now, tr.dims), nil
}

// snapshotReads reports whether queries should traverse the lock-free
// snapshot path.  Every constructor publishes a snapshot before the
// tree is handed out, so the sequence check is a pure defensive guard:
// once non-zero it can never revert, so the locked fallback and the
// snapshot path cannot be chosen inconsistently mid-query.
func (tr *Tree) snapshotReads() bool {
	return !tr.lockedReads && tr.t.SnapshotSeq() != 0
}

// Get returns the object's current report (positioned at now), if any
// non-expired report is stored.
func (tr *Tree) Get(id uint32, now float64) (Point, bool) {
	tr.rlock()
	defer tr.mu.RUnlock()
	mp, ok := tr.objects[id]
	if !ok || (tr.t.Config().ExpireAware && mp.Expired(now)) {
		return Point{}, false
	}
	return fromInternal(mp, now, tr.dims), true
}

// Len returns the number of objects with a stored report (including
// reports that have expired but were not yet purged).
func (tr *Tree) Len() int {
	tr.rlock()
	defer tr.mu.RUnlock()
	return tr.t.LeafEntries()
}

// Dims returns the dimensionality of the indexed space.
func (tr *Tree) Dims() int { return tr.dims }

// Now returns the tree's logical clock: the largest reference time any
// applied mutation carried.  A reopened tree restores it from the
// metadata page, so it survives restarts.
func (tr *Tree) Now() float64 {
	tr.rlock()
	defer tr.mu.RUnlock()
	return tr.t.Now()
}

// Stats describes the tree's state and accumulated I/O.  The richer
// Metrics snapshot additionally covers structural counters and per-op
// latencies.
type Stats struct {
	Height          int
	Pages           int
	LeafEntries     int
	Reads           uint64
	Writes          uint64
	BufferHits      uint64
	Evictions       uint64
	DirtyWritebacks uint64
	UIEstimate      float64
}

// Stats returns current statistics.
func (tr *Tree) Stats() Stats {
	tr.rlock()
	defer tr.mu.RUnlock()
	io := tr.t.IOStats()
	return Stats{
		Height:          tr.t.Height(),
		Pages:           tr.t.Size(),
		LeafEntries:     tr.t.LeafEntries(),
		Reads:           io.Reads,
		Writes:          io.Writes,
		BufferHits:      io.Hits,
		Evictions:       io.Evictions,
		DirtyWritebacks: io.DirtyWritebacks,
		UIEstimate:      tr.t.UI(),
	}
}

// ResetIOStats zeroes the read/write/hit counters.
func (tr *Tree) ResetIOStats() {
	tr.rlock()
	defer tr.mu.RUnlock()
	tr.t.ResetIOStats()
}

// ForEach visits every stored report (positioned at now, including
// expired reports not yet purged) until fn returns false.
func (tr *Tree) ForEach(now float64, fn func(Result) bool) error {
	tr.rlock()
	defer tr.mu.RUnlock()
	stop := errStopIteration
	err := tr.t.Records(func(oid uint32, p geom.MovingPoint) error {
		if !fn(Result{ID: oid, Point: fromInternal(p, now, tr.dims)}) {
			return stop
		}
		return nil
	})
	if err == stop {
		return nil
	}
	return err
}

var errStopIteration = fmt.Errorf("rexptree: stop iteration")

// rootSummary returns a conservative time-parameterized bound over
// every stored entry, computed from the index root (which is pinned in
// the buffer pool, so the read costs no I/O).  ok is false for an
// empty tree.  The sharded front-end uses it to retighten per-shard
// pruning summaries.
func (tr *Tree) rootSummary() (br geom.TPRect, ok bool, err error) {
	tr.rlock()
	defer tr.mu.RUnlock()
	return tr.t.RootBR()
}

// storedPoint returns the record as the index stores it (coordinates
// quantized to the page format), which is what containment bounds must
// be widened with.
func (tr *Tree) storedPoint(p Point) geom.MovingPoint {
	return tr.t.Stored(toInternal(p, tr.dims))
}

// clockNow reads the tree's high-water clock — the time of the newest
// applied update — preferring the lock-free snapshot's published clock
// so a live-reshard scan never blocks the write path.
func (tr *Tree) clockNow() float64 {
	if tr.snapshotReads() {
		if c, ok := tr.t.PubClock(); ok {
			return c
		}
	}
	tr.rlock()
	defer tr.mu.RUnlock()
	return tr.t.Now()
}

// exportRecords streams every stored record (live and expired alike, in
// raw internal form) to fn, over the lock-free snapshot when available
// so a concurrent update stream is never stalled by a full-index scan.
func (tr *Tree) exportRecords(fn func(oid uint32, p geom.MovingPoint) error) error {
	if tr.snapshotReads() {
		if ok, err := tr.t.ExportSnap(fn); ok {
			return err
		}
	}
	tr.rlock()
	defer tr.mu.RUnlock()
	return tr.t.Records(fn)
}

// objectsInto copies the tree's object table (the authoritative
// id→stored-record map) into dst — the live-reshard verify step reads
// both generations through it while mutations are blocked.
func (tr *Tree) objectsInto(dst map[uint32]geom.MovingPoint) {
	tr.rlock()
	defer tr.mu.RUnlock()
	for id, mp := range tr.objects {
		dst[id] = mp
	}
}

// Validate checks the index's structural invariants (balance, fan-out
// bounds, bounding-rectangle containment, unique ids).  It reads the
// whole tree and is intended for tests and tooling.
func (tr *Tree) Validate() error {
	tr.rlock()
	defer tr.mu.RUnlock()
	return tr.t.CheckInvariants()
}

// Report pairs an object id with its positional report, for batched
// updates.
type Report struct {
	ID    uint32
	Point Point
}

// UpdateBatch applies every report in batch under a single exclusive
// lock acquisition, replacing each object's previous report like
// Update.  Grouping updates amortizes locking and lets readers in
// between batches rather than between every report; ShardedTree
// additionally applies per-shard batches concurrently.
//
// The reports are applied in order.  On error the batch stops:
// earlier reports remain applied, the failing and later ones do not
// take effect.  now is the current time for the whole batch.
func (tr *Tree) UpdateBatch(batch []Report, now float64) error {
	var tc *QueryTrace
	if tr.rec != nil {
		tc = newTrace("batch")
	}
	start := time.Now()
	err := tr.updateBatch(batch, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpBatch, d, err)
	tc.finishRecord(tr.rec, len(batch), d, err)
	return err
}

func (tr *Tree) updateBatch(batch []Report, now float64, tc *QueryTrace) error {
	if len(batch) == 0 {
		return nil
	}
	li := tc.begin(-1, "lock-wait", -1)
	tr.lock()
	tc.endAt(li)
	defer tr.mu.Unlock()
	// Batch-level spans only: per-report spans would bloat the trace
	// linearly, so the whole application loop is one "apply" span (the
	// WAL appends it contains ride in the wal-append histogram instead).
	ai := tc.begin(-1, "apply", -1)
	// The whole batch is published as one snapshot: readers on the
	// lock-free path see either the pre-batch tree or all applied
	// reports (on error, everything up to the failing report).
	tr.t.BeginBatch()
	for i := range batch {
		if err := tr.updateLocked(batch[i].ID, batch[i].Point, now, nil); err != nil {
			tr.t.EndBatch()
			tc.endAt(ai)
			tc.addMeasured("version-publish", tr.t.LastPublishNanos())
			tr.m.BatchedUpdates.Add(uint64(i))
			return err
		}
	}
	tr.t.EndBatch()
	tc.endAt(ai)
	tc.addMeasured("version-publish", tr.t.LastPublishNanos())
	tr.m.BatchedUpdates.Add(uint64(len(batch)))
	if tr.wal != nil {
		// Group commit: the whole batch rides on one durability point.
		return tr.walCommit(tc)
	}
	return nil
}
