package rexptree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// A car at (100, 200) heading east at 1 km/min, report good for 60
	// minutes.
	if err := tr.Update(1, Point{Pos: Vec{100, 200}, Vel: Vec{1, 0}, Time: 0, Expires: 60}, 0); err != nil {
		t.Fatal(err)
	}
	// A pedestrian wandering near (105, 200).
	if err := tr.Update(2, Point{Pos: Vec{105, 200}, Vel: Vec{0.05, 0}, Time: 0, Expires: 60}, 0); err != nil {
		t.Fatal(err)
	}

	// Where will they be at t = 10?  The car at (110, 200).
	res, err := tr.Timeslice(Rect{Lo: Vec{108, 198}, Hi: Vec{112, 202}}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("timeslice = %v", res)
	}
	// Results are positioned at now; predict with At.
	if got := res[0].Point.At(10); math.Abs(got[0]-110) > 1e-3 || math.Abs(got[1]-200) > 1e-3 {
		t.Fatalf("predicted position %v, want ~(110,200)", got)
	}

	// Window query over a region only the pedestrian stays in.
	res, err = tr.Window(Rect{Lo: Vec{104, 199}, Hi: Vec{107, 201}}, 20, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 2 {
		t.Fatalf("window = %v", res)
	}

	// Moving query following the car.
	res, err = tr.Moving(
		Rect{Lo: Vec{104, 195}, Hi: Vec{114, 205}},
		Rect{Lo: Vec{114, 195}, Hi: Vec{124, 205}}, 5, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("moving query missed the car: %v", res)
	}
}

func TestExpiryVisibility(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Update(7, Point{Pos: Vec{500, 500}, Time: 0, Expires: 10}, 0)
	world := Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}
	if res, _ := tr.Timeslice(world, 5, 5); len(res) != 1 {
		t.Fatalf("live object invisible: %v", res)
	}
	if res, _ := tr.Timeslice(world, 20, 20); len(res) != 0 {
		t.Fatalf("expired object visible: %v", res)
	}
	if _, ok := tr.Get(7, 20); ok {
		t.Fatal("Get returned expired object")
	}
	if found, _ := tr.Delete(7, 20); found {
		t.Fatal("deleted expired object")
	}
}

func TestUpdateReplaces(t *testing.T) {
	tr, _ := Open(DefaultOptions())
	defer tr.Close()
	tr.Update(1, Point{Pos: Vec{100, 100}, Time: 0, Expires: NoExpiry()}, 0)
	tr.Update(1, Point{Pos: Vec{900, 900}, Time: 5, Expires: NoExpiry()}, 5)
	if tr.Len() != 1 {
		t.Fatalf("len = %d after update", tr.Len())
	}
	res, _ := tr.Timeslice(Rect{Lo: Vec{850, 850}, Hi: Vec{950, 950}}, 6, 6)
	if len(res) != 1 {
		t.Fatalf("updated position not found: %v", res)
	}
	res, _ = tr.Timeslice(Rect{Lo: Vec{50, 50}, Hi: Vec{150, 150}}, 6, 6)
	if len(res) != 0 {
		t.Fatalf("old position still indexed: %v", res)
	}
}

func TestQueryValidation(t *testing.T) {
	tr, _ := Open(DefaultOptions())
	defer tr.Close()
	r := Rect{Lo: Vec{0, 0}, Hi: Vec{10, 10}}
	if _, err := tr.Timeslice(r, 5, 10); err == nil {
		t.Error("past timeslice accepted")
	}
	if _, err := tr.Window(r, 10, 5, 0); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := tr.Moving(r, r, 5, 5, 0); err == nil {
		t.Error("zero-length moving query accepted")
	}
}

func TestFileBackedTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	tr, err := Open(func() Options { o := DefaultOptions(); o.Path = path; return o }())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		err := tr.Update(uint32(i), Point{
			Pos:     Vec{float64(i % 100 * 10), float64(i / 100 * 100)},
			Vel:     Vec{1, -1},
			Time:    0,
			Expires: NoExpiry(),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := tr.Timeslice(Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results from file-backed tree")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index, its clock, and the object table survive.
	re, err := Open(func() Options { o := DefaultOptions(); o.Path = path; return o }())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1000 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	if _, ok := re.Get(42, 1); !ok {
		t.Fatal("object table not rebuilt on reopen")
	}
	res2, err := re.Timeslice(Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != len(res) {
		t.Fatalf("reopened query: %d results, want %d", len(res2), len(res))
	}
	// Updates keep working after reopen.
	if err := re.Update(42, Point{Pos: Vec{1, 1}, Time: 2, Expires: NoExpiry()}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTPRMode(t *testing.T) {
	tr, err := Open(TPROptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Update(1, Point{Pos: Vec{100, 100}, Time: 0, Expires: 5}, 0)
	// The TPR-tree ignores expiration: the report is a false drop at
	// t = 100.
	res, _ := tr.Timeslice(Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}, 100, 100)
	if len(res) != 1 {
		t.Fatalf("TPR mode dropped the report: %v", res)
	}
}

func TestConcurrentUse(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Preload.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tr.Update(uint32(i), Point{
			Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:     Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
			Expires: NoExpiry(),
		}, 0)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				switch w % 2 {
				case 0:
					tr.Update(uint32(r.Intn(500)), Point{
						Pos:     Vec{r.Float64() * 1000, r.Float64() * 1000},
						Time:    1,
						Expires: NoExpiry(),
					}, 1)
				default:
					a := Vec{r.Float64() * 900, r.Float64() * 900}
					tr.Timeslice(Rect{Lo: a, Hi: Vec{a[0] + 100, a[1] + 100}}, 2, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 500 {
		t.Fatalf("len = %d after concurrent updates", tr.Len())
	}
}

func TestStatsExposed(t *testing.T) {
	tr, _ := Open(DefaultOptions())
	defer tr.Close()
	for i := 0; i < 2000; i++ {
		tr.Update(uint32(i), Point{
			Pos: Vec{float64(i%200) * 5, float64(i/200) * 100}, Expires: NoExpiry(),
		}, 0)
	}
	s := tr.Stats()
	if s.Height < 2 || s.Pages < 2 || s.LeafEntries != 2000 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Writes == 0 {
		t.Fatal("no writes recorded")
	}
	tr.ResetIOStats()
	if s2 := tr.Stats(); s2.Reads != 0 || s2.Writes != 0 {
		t.Fatalf("reset failed: %+v", s2)
	}
}

func TestNearestPublic(t *testing.T) {
	tr, _ := Open(DefaultOptions())
	defer tr.Close()
	tr.Update(1, Point{Pos: Vec{100, 100}, Expires: NoExpiry()}, 0)
	tr.Update(2, Point{Pos: Vec{105, 100}, Expires: 5}, 0)
	tr.Update(3, Point{Pos: Vec{500, 500}, Expires: NoExpiry()}, 0)
	res, err := tr.Nearest(Vec{104, 100}, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 2 || res[1].ID != 1 {
		t.Fatalf("nearest = %v", res)
	}
	// After object 2 expires it cannot be a neighbor.
	res, err = tr.Nearest(Vec{104, 100}, 10, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 3 {
		t.Fatalf("nearest after expiry = %v", res)
	}
	if _, err := tr.Nearest(Vec{0, 0}, 5, 1, 10); err == nil {
		t.Error("past nearest query accepted")
	}
}

func TestForEachAndValidate(t *testing.T) {
	tr, _ := Open(DefaultOptions())
	defer tr.Close()
	for i := 0; i < 50; i++ {
		tr.Update(uint32(i), Point{Pos: Vec{float64(i) * 10, 5}, Expires: NoExpiry()}, 0)
	}
	seen := map[uint32]bool{}
	err := tr.ForEach(0, func(r Result) bool {
		seen[r.ID] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("ForEach visited %d of 50", len(seen))
	}
	// Early stop.
	visits := 0
	tr.ForEach(0, func(Result) bool { visits++; return visits < 3 })
	if visits != 3 {
		t.Fatalf("early stop visited %d", visits)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPointAt(t *testing.T) {
	p := Point{Pos: Vec{10, 20}, Vel: Vec{1, -2}, Time: 5}
	got := p.At(8)
	if got[0] != 13 || got[1] != 14 {
		t.Fatalf("At = %v", got)
	}
}
