// Benchmarks that regenerate every figure of the paper's evaluation
// (§5, Figures 9-16).  Each benchmark replays the figure's full
// workload grid — every tree configuration at every x value — and
// logs the resulting table; headline numbers are also exposed as
// custom benchmark metrics.
//
// The default scale is 2% of the paper's workload (100k objects, 1M
// insertions), which preserves the comparative shapes at laptop cost.
// Set REXPTREE_BENCH_SCALE to run larger, e.g.:
//
//	REXPTREE_BENCH_SCALE=0.1 go test -bench Fig -benchtime 1x
//
// For the full experience use cmd/rexpbench, which prints progress and
// accepts -scale 1 for the paper's exact setup.
package rexptree

import (
	"os"
	"strconv"
	"testing"

	"rexptree/internal/experiments"
)

func benchScale(b *testing.B) float64 {
	if s := os.Getenv("REXPTREE_BENCH_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			b.Fatalf("bad REXPTREE_BENCH_SCALE %q", s)
		}
		return v
	}
	return 0.02
}

// benchFigure replays one figure per iteration and reports, as custom
// metrics, the first and last series' values at the final x — for the
// comparison figures that is the R^exp-tree versus the scheduled
// TPR-tree.
func benchFigure(b *testing.B, id string) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure(id, scale, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		b.Log("\n" + fig.Render())
		first := fig.Series[0]
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(fig.Value(first.Points[len(first.Points)-1]), "series0_"+fig.Metric)
		b.ReportMetric(fig.Value(last.Points[len(last.Points)-1]), "seriesN_"+fig.Metric)
	}
}

// BenchmarkFig09ExpTFlavors — Figure 9: search I/O for varying ExpT
// across the four near-optimal TPBR flavors ({record texp in internal
// entries} x {heuristics honor texp}).
func BenchmarkFig09ExpTFlavors(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig10UIFlavors — Figure 10: search I/O for varying update
// interval UI across the same four flavors.
func BenchmarkFig10UIFlavors(b *testing.B) { benchFigure(b, "10") }

// BenchmarkFig11UniformBRTypes — Figure 11: search I/O on uniform data
// for varying ExpT across the five bounding-rectangle types.
func BenchmarkFig11UniformBRTypes(b *testing.B) { benchFigure(b, "11") }

// BenchmarkFig12ExpDBRTypes — Figure 12: search I/O for varying
// expiration distance ExpD across the five bounding-rectangle types.
func BenchmarkFig12ExpDBRTypes(b *testing.B) { benchFigure(b, "12") }

// BenchmarkFig13ExpDComparison — Figure 13: search I/O for varying
// ExpD: R^exp-tree vs TPR-tree vs both with scheduled deletions.
func BenchmarkFig13ExpDComparison(b *testing.B) { benchFigure(b, "13") }

// BenchmarkFig14NewObSearch — Figure 14: search I/O for a varying
// fraction of silently replaced ("turned off") objects.
func BenchmarkFig14NewObSearch(b *testing.B) { benchFigure(b, "14") }

// BenchmarkFig15NewObSize — Figure 15: index size in pages for varying
// NewOb; the TPR-tree grows because dead objects are never removed.
func BenchmarkFig15NewObSize(b *testing.B) { benchFigure(b, "15") }

// BenchmarkFig16NewObUpdate — Figure 16: update I/O for varying NewOb
// (B-tree I/O of the scheduled variants reported separately, as in the
// paper).
func BenchmarkFig16NewObUpdate(b *testing.B) { benchFigure(b, "16") }

// BenchmarkUpdateThroughput measures raw index update cost (one
// delete+insert pair) on a steady-state R^exp-tree — the operation
// mix that dominates the paper's workloads.
func BenchmarkUpdateThroughput(b *testing.B) {
	tree, err := Open(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer tree.Close()
	const n = 5000
	now := 0.0
	for i := 0; i < n; i++ {
		now += 0.01
		seedObj(b, tree, uint32(i), now)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 0.01
		seedObj(b, tree, uint32(i%n), now)
	}
}

// BenchmarkTimesliceQuery measures a paper-sized timeslice query
// (0.25% of the space) against a populated R^exp-tree.
func BenchmarkTimesliceQuery(b *testing.B) {
	tree, err := Open(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer tree.Close()
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += 0.002
		seedObj(b, tree, uint32(i), now)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i%19) * 50
		r := Rect{Lo: Vec{x, x}, Hi: Vec{x + 50, x + 50}}
		if _, err := tree.Timeslice(r, now+float64(i%30), now); err != nil {
			b.Fatal(err)
		}
	}
}

func seedObj(b *testing.B, tree *Tree, id uint32, now float64) {
	b.Helper()
	// A cheap deterministic pseudo-random placement.
	h := uint64(id)*2654435761 + uint64(now*100)
	x := float64(h%1000000) / 1000
	y := float64((h/7)%1000000) / 1000
	err := tree.Update(id, Point{
		Pos:     Vec{x, y},
		Vel:     Vec{float64(h%7) - 3, float64(h%5) - 2},
		Time:    now,
		Expires: now + 120,
	}, now)
	if err != nil {
		b.Fatal(err)
	}
}
