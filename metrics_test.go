package rexptree

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMetricsSnapshotDelta(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	world := Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}
	for i := 0; i < 100; i++ {
		if err := tr.Update(uint32(i), Point{Pos: Vec{float64(i * 10 % 1000), 500}, Time: 0, Expires: 1000}, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Metrics()
	if before.Ops[0].Op != "update" || before.Ops[0].Count != 100 {
		t.Fatalf("update op = %+v, want 100 calls", before.Ops[0])
	}
	if before.LeafEntries != 100 || before.Height < 1 || before.Pages < 2 {
		t.Fatalf("gauges = height %d, pages %d, leaf entries %d", before.Height, before.Pages, before.LeafEntries)
	}

	for i := 0; i < 50; i++ {
		if err := tr.Update(uint32(i), Point{Pos: Vec{float64(i * 7 % 1000), 400}, Time: 1, Expires: 1000}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Timeslice(world, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Window(world, 2, 10, 2); err != nil {
		t.Fatal(err)
	}
	after := tr.Metrics()
	d := after.Sub(before)

	if got, _ := d.Op("update"); got.Count != 50 {
		t.Errorf("delta update count = %d, want 50", got.Count)
	}
	if got, _ := d.Op("timeslice"); got.Count != 1 {
		t.Errorf("delta timeslice count = %d, want 1", got.Count)
	}
	if got, _ := d.Op("window"); got.Count != 1 {
		t.Errorf("delta window count = %d, want 1", got.Count)
	}
	if got, _ := d.Op("nearest"); got.Count != 0 {
		t.Errorf("delta nearest count = %d, want 0", got.Count)
	}
	if _, ok := d.Op("no-such-op"); ok {
		t.Error("unknown op name resolved")
	}
	// Counters subtract; gauges keep the later snapshot's values.
	if d.QueryNodeVisits == 0 || d.QueryNodeVisits > after.QueryNodeVisits {
		t.Errorf("delta node visits = %d (after %d)", d.QueryNodeVisits, after.QueryNodeVisits)
	}
	if d.LeafEntries != after.LeafEntries || d.Height != after.Height {
		t.Error("delta gauges must keep current values")
	}
	// An update is a delete+insert pair; the histogram's bucket sum
	// matches its count.
	u, _ := after.Op("update")
	var bsum uint64
	for _, b := range u.Buckets {
		bsum += b
	}
	if bsum != u.Count || u.Count != 150 {
		t.Errorf("update bucket sum = %d, count = %d, want 150", bsum, u.Count)
	}
	if u.Mean() <= 0 {
		t.Errorf("update mean = %v", u.Mean())
	}
}

// TestNearestPastTimeError pins the satellite fix: like Timeslice, a
// Nearest query must reject a query time before the current time
// instead of silently computing positions in the past.
func TestNearestPastTimeError(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Update(1, Point{Pos: Vec{500, 500}, Time: 0, Expires: 100}, 0)

	_, err = tr.Nearest(Vec{500, 500}, 5, 1, 10)
	if err == nil {
		t.Fatal("Nearest accepted a query time before now")
	}
	_, terr := tr.Timeslice(Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}, 5, 10)
	if terr == nil {
		t.Fatal("Timeslice accepted a query time before now")
	}
	// Same error shape as Timeslice.
	if !strings.Contains(err.Error(), "precedes current time") || err.Error() != terr.Error() {
		t.Errorf("Nearest error %q, want the Timeslice shape %q", err, terr)
	}
	// A valid call still works, and the failure was counted.
	if _, err := tr.Nearest(Vec{500, 500}, 10, 1, 10); err != nil {
		t.Fatal(err)
	}
	n, _ := tr.Metrics().Op("nearest")
	if n.Count != 2 || n.Errors != 1 {
		t.Errorf("nearest op = %+v, want 2 calls, 1 error", n)
	}
}

func TestWriteMetricsAndHandler(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 300; i++ {
		if err := tr.Update(uint32(i), Point{Pos: Vec{float64(i % 1000), float64(i / 3 % 1000)}, Time: 0, Expires: 1000}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, series := range []string{
		"rexp_buffer_reads_total", "rexp_split_total", "rexp_forced_reinsert_total",
		"rexp_condense_total", "rexp_expired_purged_total", "rexp_height",
		"rexp_op_duration_seconds_count{op=\"update\"}",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %s", series)
		}
	}

	srv := httptest.NewServer(tr.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(served.String(), "rexp_op_duration_seconds_count{op=\"update\"} 300") {
		t.Error("served metrics do not reflect the 300 updates")
	}
}

func TestSetSlowOpHook(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var mu sync.Mutex
	var slow []string
	tr.SetSlowOpHook(time.Nanosecond, func(op string, d time.Duration) {
		mu.Lock()
		slow = append(slow, op)
		mu.Unlock()
	})
	tr.Update(1, Point{Pos: Vec{1, 1}, Time: 0, Expires: 100}, 0)
	tr.Timeslice(Rect{Lo: Vec{0, 0}, Hi: Vec{10, 10}}, 0, 0)
	mu.Lock()
	got := append([]string(nil), slow...)
	mu.Unlock()
	if len(got) != 2 || got[0] != "update" || got[1] != "timeslice" {
		t.Fatalf("slow ops = %v, want [update timeslice]", got)
	}
	tr.SetSlowOpHook(0, nil)
	tr.Update(1, Point{Pos: Vec{2, 2}, Time: 1, Expires: 100}, 1)
	mu.Lock()
	defer mu.Unlock()
	if len(slow) != 2 {
		t.Error("hook fired after removal")
	}
}

func TestOptionsObserver(t *testing.T) {
	var mu sync.Mutex
	kinds := map[string]int{}
	opts := DefaultOptions()
	opts.Observer = func(e ObserverEvent) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	}
	opts.SlowOpThreshold = time.Nanosecond
	var slowCalls atomic.Int64
	opts.SlowOp = func(op string, d time.Duration) { slowCalls.Add(1) }
	tr, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Enough inserts to overflow leaves: splits (and usually forced
	// reinserts) must reach the hook.
	for i := 0; i < 600; i++ {
		if err := tr.Update(uint32(i), Point{Pos: Vec{float64(i % 1000), float64(i * 7 % 1000)}, Time: 0, Expires: 1000}, 0); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if kinds["split"] == 0 {
		t.Errorf("observer saw no split events (got %v)", kinds)
	}
	if m := tr.Metrics(); uint64(kinds["split"]) != m.Splits {
		t.Errorf("observer saw %d splits, counter says %d", kinds["split"], m.Splits)
	}
	if slowCalls.Load() == 0 {
		t.Error("Options.SlowOp never fired with a 1ns threshold")
	}
}

// TestMetricsConcurrency hammers the tree with parallel updates and
// queries while snapshots and expositions are read — the counters must
// stay consistent and race-free (run under -race in CI).
func TestMetricsConcurrency(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetSlowOpHook(time.Hour, func(string, time.Duration) {})
	const writers, queriers, perG = 4, 2, 200
	world := Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := uint32(w*perG + i)
				if err := tr.Update(id, Point{Pos: Vec{float64(id % 1000), float64(id * 3 % 1000)}, Time: 0, Expires: 1e6}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := tr.Window(world, 0, 10, 0); err != nil {
					t.Error(err)
					return
				}
				_ = tr.Metrics()
			}
		}()
	}
	// A scraper reading the exposition concurrently with the load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := tr.WriteMetrics(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	m := tr.Metrics()
	u, _ := m.Op("update")
	if u.Count != writers*perG {
		t.Errorf("update count = %d, want %d", u.Count, writers*perG)
	}
	w, _ := m.Op("window")
	if w.Count != queriers*perG {
		t.Errorf("window count = %d, want %d", w.Count, queriers*perG)
	}
	if m.LeafEntries != writers*perG {
		t.Errorf("leaf entries = %d, want %d", m.LeafEntries, writers*perG)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
