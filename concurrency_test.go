package rexptree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersDuringUpdates hammers a Tree with a heavy
// update stream while several reader goroutines run every query type.
// Run under -race it checks the reader/writer locking of the public
// tree and the internal synchronization of the clock, the buffer pool
// and the decoded-node cache.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	tree, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	// Seed with an initial population so readers see a real tree.
	if err := tree.UpdateBatch(testWorkload(1500, 9), 0); err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		queries = 150
		updates = 3000
	)
	var clock atomic.Uint64 // integer time the writer advances

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // update stream
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < updates; i++ {
			now := float64(clock.Load())
			id := uint32(rng.Intn(1500) + 1)
			p := Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
				Time:    now,
				Expires: now + 60,
			}
			if err := tree.Update(id, p, now); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			if i%100 == 0 {
				clock.Add(1)
			}
			if i%500 == 0 {
				if _, err := tree.Delete(uint32(rng.Intn(1500)+1), float64(clock.Load())); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queries; i++ {
				// The writer may advance the clock concurrently; using a
				// value read before issuing the query keeps `now` in the
				// past, which the API allows.
				now := float64(clock.Load())
				lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
				rect := Rect{Lo: lo, Hi: Vec{lo[0] + 100, lo[1] + 100}}
				switch i % 4 {
				case 0:
					if _, err := tree.Timeslice(rect, now+5, now); err != nil {
						t.Errorf("timeslice: %v", err)
					}
				case 1:
					if _, err := tree.Window(rect, now, now+10, now); err != nil {
						t.Errorf("window: %v", err)
					}
				case 2:
					r2 := Rect{Lo: Vec{lo[0] + 50, lo[1] + 50}, Hi: Vec{lo[0] + 150, lo[1] + 150}}
					if _, err := tree.Moving(rect, r2, now, now+10, now); err != nil {
						t.Errorf("moving: %v", err)
					}
				case 3:
					if _, err := tree.Nearest(lo, now+1, 5, now); err != nil {
						t.Errorf("nearest: %v", err)
					}
				}
				tree.Get(uint32(rng.Intn(1500)+1), now)
				if i%25 == 0 {
					tree.Metrics() // snapshots race with everything above
				}
			}
		}(int64(r))
	}
	wg.Wait()

	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	m := tree.Metrics()
	if m.LockWaitRead.Count == 0 || m.LockWaitWrite.Count == 0 {
		t.Errorf("lock-wait histograms empty: read %d, write %d",
			m.LockWaitRead.Count, m.LockWaitWrite.Count)
	}
}

// TestShardedConcurrentMixedLoad drives a ShardedTree with concurrent
// updates, batches and fan-out queries from many goroutines (run under
// -race).
func TestShardedConcurrentMixedLoad(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.UpdateBatch(testWorkload(2000, 21), 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ { // writers: single updates and batches
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				batch := make([]Report, 25)
				for j := range batch {
					batch[j] = Report{
						ID: uint32(rng.Intn(2000) + 1),
						Point: Point{
							Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
							Expires: NoExpiry(),
						},
					}
				}
				if err := s.UpdateBatch(batch, 0); err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				if err := s.Update(uint32(rng.Intn(2000)+1),
					Point{Pos: Vec{rng.Float64() * 1000, rng.Float64() * 1000}, Expires: NoExpiry()}, 0); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(int64(w + 100))
	}
	for r := 0; r < 3; r++ { // readers: fan-out queries
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
				rect := Rect{Lo: lo, Hi: Vec{lo[0] + 100, lo[1] + 100}}
				if i%2 == 0 {
					if _, err := s.Timeslice(rect, 1, 0); err != nil {
						t.Errorf("timeslice: %v", err)
					}
				} else {
					if _, err := s.Nearest(lo, 1, 5, 0); err != nil {
						t.Errorf("nearest: %v", err)
					}
				}
				if i%20 == 0 {
					s.Metrics()
				}
			}
		}(int64(r + 200))
	}
	wg.Wait()

	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
