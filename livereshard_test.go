package rexptree

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rexptree/internal/reshard"
)

// liveStepBatch builds one step of a mutation stream: re-reports of
// ids 1..n with step-dependent positions and speeds that straddle
// every band boundary (so speed-partitioned generations must
// re-route), all expiring far beyond the test clocks.
func liveStepBatch(n int, seed int64, step int, now float64) []Report {
	rng := rand.New(rand.NewSource(seed + int64(step)*997))
	batch := make([]Report, n)
	for i := range batch {
		sp := rng.Float64() * 2.2
		ang := rng.Float64() * 2 * math.Pi
		batch[i] = Report{
			ID: uint32(i + 1),
			Point: Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{sp * math.Cos(ang), sp * math.Sin(ang)},
				Time:    now,
				Expires: now + 500,
			},
		}
	}
	return batch
}

// newLiveRef builds the unresharded single-tree twin.
func newLiveRef(t *testing.T) *Tree {
	t.Helper()
	ref, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	return ref
}

// TestLiveReshardBasic drives two back-to-back live reshards on a
// memory-backed index — hash K=4 → speed K=3, then speed K=3 → hash
// K=5 — with an update stream between them, checking after each
// cutover that the index fingerprints identically to the unresharded
// twin, the generation advanced, and the status went back to idle.
func TestLiveReshardBasic(t *testing.T) {
	so := ShardedOptions{Options: DefaultOptions(), Shards: 4}
	s, err := OpenSharded(so)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := newLiveRef(t)

	seed := testWorkload(800, 7)
	if err := s.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}

	if err := s.Reshard(ReshardSpec{Shards: 3, Policy: PartitionSpeed, SpeedBands: []float64{0.8, 1.6}}); err != nil {
		t.Fatalf("hash→speed live reshard: %v", err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation %d after first reshard, want 1", g)
	}
	if p := s.Partition(); p != PartitionSpeed {
		t.Fatalf("partition %s after reshard, want speed", p)
	}
	requireSameFingerprint(t, fingerprintIndex(t, s, 1), fingerprintIndex(t, ref, 1), "after hash→speed reshard")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	applyStream(t, s, []uint32{3, 44, 310}, updatedReports(800, 21, 2), 2)
	applyStream(t, ref, []uint32{3, 44, 310}, updatedReports(800, 21, 2), 2)
	requireSameFingerprint(t, fingerprintIndex(t, s, 2), fingerprintIndex(t, ref, 2), "after post-reshard stream")

	if err := s.Reshard(ReshardSpec{Shards: 5, Policy: PartitionHash}); err != nil {
		t.Fatalf("speed→hash live reshard: %v", err)
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation %d after second reshard, want 2", g)
	}
	if n := s.NumShards(); n != 5 {
		t.Fatalf("%d shards after reshard, want 5", n)
	}
	requireSameFingerprint(t, fingerprintIndex(t, s, 2), fingerprintIndex(t, ref, 2), "after speed→hash reshard")

	st := s.ReshardStatus()
	if st.InFlight || st.Phase != "idle" || st.LastError != "" {
		t.Fatalf("status not idle after reshards: %+v", st)
	}
	m := s.Metrics()
	if m.ReshardRuns != 2 {
		t.Fatalf("ReshardRuns = %d, want 2", m.ReshardRuns)
	}
	if m.ReshardBackfilled == 0 {
		t.Fatalf("ReshardBackfilled = 0, want > 0")
	}
}

// TestLiveReshardFileBacked runs a durable live reshard and proves the
// commit is real: the manifest names the new generation, the old
// generation's files are gone, and a fresh process (a reopen with the
// new shape) serves the identical objects.
func TestLiveReshardFileBacked(t *testing.T) {
	base := filepath.Join(t.TempDir(), "ix")
	so := ShardedOptions{Options: fileOpts(base), Shards: 4}
	so.Durability = DurabilityOnCommit
	s, err := OpenSharded(so)
	if err != nil {
		t.Fatal(err)
	}
	ref := newLiveRef(t)

	seed := testWorkload(600, 9)
	if err := s.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}

	if err := s.Reshard(ReshardSpec{Shards: 2, Policy: PartitionSpeed, SpeedBands: []float64{1.1}}); err != nil {
		t.Fatalf("live reshard: %v", err)
	}
	requireSameFingerprint(t, fingerprintIndex(t, s, 1), fingerprintIndex(t, ref, 1), "resharded index")
	if removed, err := reshard.CleanStale(base, s.Generation()); err != nil || len(removed) != 0 {
		t.Fatalf("stale files survived the reshard: %v (err %v)", removed, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ro := so
	ro.Shards = 2
	ro.Partition = PartitionSpeed
	re, err := OpenSharded(ro)
	if err != nil {
		t.Fatalf("reopen after live reshard: %v", err)
	}
	defer re.Close()
	if g := re.Generation(); g != 1 {
		t.Fatalf("reopened generation %d, want 1", g)
	}
	requireSameFingerprint(t, fingerprintIndex(t, re, 1), fingerprintIndex(t, ref, 1), "reopened resharded index")
}

// TestLiveReshardBadSpec checks spec validation.
func TestLiveReshardBadSpec(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, spec := range []ReshardSpec{
		{Shards: -1, Policy: PartitionHash},
		{Shards: 2, Policy: PartitionPolicy(9)},
		{Shards: 2, Policy: PartitionHash, SpeedBands: []float64{1}},
		{Shards: 3, Policy: PartitionSpeed, SpeedBands: []float64{1}},          // wrong count
		{Shards: 3, Policy: PartitionSpeed, SpeedBands: []float64{2, 1}},       // descending
		{Shards: 3, Policy: PartitionSpeed, SpeedBands: []float64{-1, 1}},      // negative
		{Shards: 2, Policy: PartitionSpeed, SpeedBands: []float64{math.NaN()}}, // not finite
	} {
		if err := s.Reshard(spec); err == nil {
			t.Fatalf("spec %+v accepted, want error", spec)
		}
	}
	if s.Generation() != 0 {
		t.Fatalf("generation moved on rejected specs")
	}
}

// TestLiveReshardCrashMatrix kills the live reshard at every phase
// boundary — after the scan, after the dual-apply backfill, before the
// verify, just before the manifest rename, and just after it — with an
// acknowledged mutation stream applied inside the dual-apply window.
// After each crash the index is abandoned (no checkpoint) and
// reopened; the surviving generation must fingerprint identically to a
// replay of every acknowledged operation, and a subsequent live
// reshard must succeed and sweep all stale files of the dead run.
func TestLiveReshardCrashMatrix(t *testing.T) {
	deletes := []uint32{5, 41, 77, 300}
	for _, point := range []string{"scan", "dual-apply", "verify", "pre-rename", "post-rename"} {
		t.Run(point, func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "ix")
			so := ShardedOptions{Options: fileOpts(base), Shards: 4}
			so.Durability = DurabilityOnCommit
			s, err := OpenSharded(so)
			if err != nil {
				t.Fatal(err)
			}
			ref := newLiveRef(t)

			seed := testWorkload(800, 13)
			if err := s.UpdateBatch(seed, 1); err != nil {
				t.Fatal(err)
			}
			if err := ref.UpdateBatch(seed, 1); err != nil {
				t.Fatal(err)
			}

			// The hook parks the engine right after its snapshot scan so
			// the test can push acknowledged mutations through the open
			// dual-apply window, then crashes it at the selected point.
			hold := make(chan struct{})
			entered := make(chan struct{})
			s.testReshardHook = func(pt string) error {
				if pt == "scan" {
					entered <- struct{}{}
					<-hold
				}
				if pt == point {
					return errLiveBoom
				}
				return nil
			}
			done := make(chan error, 1)
			go func() {
				done <- s.Reshard(ReshardSpec{Shards: 3, Policy: PartitionSpeed, SpeedBands: []float64{0.8, 1.6}})
			}()
			<-entered
			applyStream(t, s, deletes, updatedReports(800, 29, 2), 2)
			applyStream(t, ref, deletes, updatedReports(800, 29, 2), 2)
			close(hold)
			if err := <-done; !errors.Is(err, errLiveBoom) {
				t.Fatalf("reshard error = %v, want injected crash", err)
			}
			s.Abandon() // crash: nothing checkpointed beyond the WALs

			ro := so
			if point == "post-rename" {
				// The rename committed: the index recovers into the new
				// generation's shape (bands come from the manifest).
				ro.Shards = 3
				ro.Partition = PartitionSpeed
			}
			re, err := OpenSharded(ro)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			defer re.Close()
			wantGen := 0
			if point == "post-rename" {
				wantGen = 1
			}
			if g := re.Generation(); g != wantGen {
				t.Fatalf("recovered generation %d after crash at %s, want %d", g, point, wantGen)
			}
			requireSameFingerprint(t, fingerprintIndex(t, re, 2), fingerprintIndex(t, ref, 2),
				"recovered index after crash at "+point)

			// Recovery sweep: the next live reshard must clear the dead
			// run's leftovers and commit.
			if err := re.Reshard(ReshardSpec{Shards: 2, Policy: PartitionHash}); err != nil {
				t.Fatalf("reshard after crash at %s: %v", point, err)
			}
			requireSameFingerprint(t, fingerprintIndex(t, re, 2), fingerprintIndex(t, ref, 2),
				"re-resharded index after crash at "+point)
			if removed, err := reshard.CleanStale(base, re.Generation()); err != nil || len(removed) != 0 {
				t.Fatalf("stale files survived recovery reshard after crash at %s: %v (err %v)", point, removed, err)
			}
		})
	}
}

// TestLiveReshardConcurrentStress hammers all four query types (and
// their traced variants) plus a mixed update/delete stream while two
// live reshards run, fingerprinting the index against its unresharded
// twin after every step.  Run under -race this is the data-race proof
// for the generation-pointer swap and the dual-apply window.
func TestLiveReshardConcurrentStress(t *testing.T) {
	so := ShardedOptions{
		Options:    DefaultOptions(),
		Shards:     4,
		Partition:  PartitionSpeed,
		SpeedBands: []float64{0.5, 1.0, 1.8},
	}
	s, err := OpenSharded(so)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := newLiveRef(t)

	var clockBits atomic.Uint64
	clockBits.Store(math.Float64bits(1))
	now := func() float64 { return math.Float64frombits(clockBits.Load()) }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var qerr atomic.Value
	fail := func(err error) {
		// A query that sampled the clock just before a step advanced it
		// is validly rejected ("query time precedes current time");
		// every other error is a real failure.
		if err != nil && !strings.Contains(err.Error(), "precedes current time") {
			qerr.CompareAndSwap(nil, err)
		}
	}
	inner := Rect{Lo: Vec{120, 90}, Hi: Vec{460, 430}}
	mid := Rect{Lo: Vec{310, 260}, Hi: Vec{720, 650}}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := now()
				var err error
				switch q {
				case 0:
					if i%2 == 0 {
						_, err = s.Timeslice(inner, c, c)
					} else {
						_, _, err = s.TraceTimeslice(inner, c, c)
					}
				case 1:
					if i%2 == 0 {
						_, err = s.Window(mid, c, c+10, c)
					} else {
						_, _, err = s.TraceWindow(mid, c, c+10, c)
					}
				case 2:
					if i%2 == 0 {
						_, err = s.Moving(inner, mid, c+1, c+8, c)
					} else {
						_, _, err = s.TraceMoving(inner, mid, c+1, c+8, c)
					}
				default:
					if i%2 == 0 {
						_, err = s.Nearest(Vec{500, 500}, c, 10, c)
					} else {
						_, _, err = s.TraceNearest(Vec{500, 500}, c, 10, c)
					}
				}
				fail(err)
			}
		}(q)
	}

	const steps = 14
	for i := 0; i < steps; i++ {
		c := 1 + float64(i)*0.5
		clockBits.Store(math.Float64bits(c))
		batch := liveStepBatch(300, 17, i, c)
		if err := s.UpdateBatch(batch, c); err != nil {
			t.Fatal(err)
		}
		if err := ref.UpdateBatch(batch, c); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 5; d++ {
			id := uint32((i*53+d*29)%300 + 1)
			if _, err := s.Delete(id, c); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Delete(id, c); err != nil {
				t.Fatal(err)
			}
			p := Point{Pos: Vec{float64(id), float64(id)}, Vel: Vec{0.1, -0.1}, Time: c, Expires: c + 500}
			if err := s.Update(id, p, c); err != nil {
				t.Fatal(err)
			}
			if err := ref.Update(id, p, c); err != nil {
				t.Fatal(err)
			}
		}
		switch i {
		case 3:
			if err := s.StartReshard(ReshardSpec{Shards: 3, Policy: PartitionHash}); err != nil {
				t.Fatal(err)
			}
		case 9:
			// A second reshard back to speed; if the first is somehow
			// still running this reports in-flight, which is fine.
			if err := s.StartReshard(ReshardSpec{Shards: 4, Policy: PartitionSpeed, SpeedBands: []float64{0.4, 0.9, 1.6}}); err != nil && !errors.Is(err, ErrReshardInFlight) {
				t.Fatal(err)
			}
		}
		requireSameFingerprint(t, fingerprintIndex(t, s, c), fingerprintIndex(t, ref, c),
			"stress step vs unresharded twin")
	}
	close(stop)
	wg.Wait()
	if err, _ := qerr.Load().(error); err != nil {
		t.Fatalf("concurrent query failed: %v", err)
	}
	waitReshardIdle(t, s, 10*time.Second)
	if st := s.ReshardStatus(); st.LastError != "" {
		t.Fatalf("background reshard failed: %s", st.LastError)
	}
	c := 1 + float64(steps-1)*0.5
	requireSameFingerprint(t, fingerprintIndex(t, s, c), fingerprintIndex(t, ref, c), "final state")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func waitReshardIdle(t *testing.T, s *ShardedTree, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for s.ReshardStatus().InFlight {
		if time.Now().After(deadline) {
			t.Fatalf("reshard still in flight after %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// runDualApplySchedule is the shared harness of the dual-apply
// ordering property test and the fuzz target: it opens the dual-apply
// window (parking the engine between backfill and cutover), replays a
// byte-decoded schedule of interleaved UpdateBatch/Update/Delete
// operations over a small id set — every one acknowledged — and then
// lets the reshard cut over.  The engine's own verify phase proves the
// old and new generations identical object-for-object; the fingerprint
// proves both equal the unresharded replay.
func runDualApplySchedule(t *testing.T, data []byte) {
	so := ShardedOptions{Options: DefaultOptions(), Shards: 2, Partition: PartitionSpeed, SpeedBands: []float64{1.0}}
	s, err := OpenSharded(so)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := newLiveRef(t)

	const ids = 16
	seed := make([]Report, ids)
	for i := range seed {
		sp := 0.3 + float64(i%4)*0.5 // speeds straddle the 1.0 boundary
		seed[i] = Report{
			ID:    uint32(i + 1),
			Point: Point{Pos: Vec{float64(i) * 50, 500}, Vel: Vec{sp, 0}, Time: 1, Expires: 600},
		}
	}
	if err := s.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	entered := make(chan struct{})
	s.testReshardHook = func(pt string) error {
		if pt == "dual-apply" {
			entered <- struct{}{}
			<-hold
		}
		return nil
	}
	done := make(chan error, 1)
	go func() {
		done <- s.Reshard(ReshardSpec{Shards: 3, Policy: PartitionSpeed, SpeedBands: []float64{0.6, 1.3}})
	}()
	<-entered

	// Replay the schedule inside the window: each 2-byte pair is one
	// operation on ids 1..16, with same-id updates and deletes freely
	// interleaved and batches overwriting several ids at once.
	now := 2.0
	apply := func(ix movingIndex) error {
		n := now
		for i := 0; i+1 < len(data); i += 2 {
			kind, pick := data[i]%4, uint32(data[i+1]%ids)+1
			n += 0.01
			sp := 0.2 + float64(data[i]%5)*0.45
			p := Point{Pos: Vec{float64(pick) * 37, float64(i)}, Vel: Vec{sp, 0}, Time: n, Expires: n + 600}
			switch kind {
			case 0, 1:
				if err := ix.Update(pick, p, n); err != nil {
					return err
				}
			case 2:
				if _, err := ix.Delete(pick, n); err != nil {
					return err
				}
			default:
				batch := make([]Report, 0, 4)
				for j := uint32(0); j < 4; j++ {
					q := p
					q.Vel[0] = sp + float64(j)*0.3
					batch = append(batch, Report{ID: (pick+j-1)%ids + 1, Point: q})
				}
				if err := ix.UpdateBatch(batch, n); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := apply(s); err != nil {
		t.Fatal(err)
	}
	if err := apply(ref); err != nil {
		t.Fatal(err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("reshard after schedule %x: %v", data, err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation %d, want 1", g)
	}
	final := now + 0.01*float64(len(data)/2) + 1
	requireSameFingerprint(t, fingerprintIndex(t, s, final), fingerprintIndex(t, ref, final),
		"dual-apply schedule vs unresharded replay")
}

// TestDualApplyOrdering replays a spread of random interleavings of
// same-id updates, deletes and batches through the dual-apply window.
func TestDualApplyOrdering(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 48)
		rng.Read(data)
		runDualApplySchedule(t, data)
	}
}

// FuzzDualApplySchedule lets the fuzzer search for an interleaving of
// mutations during the dual-apply window that makes the resharded
// generation diverge from its source (the engine's verify phase fails
// the reshard) or from an unresharded replay (the fingerprint check).
func FuzzDualApplySchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 1, 3, 1}) // update, delete, batch on one id
	f.Add([]byte{2, 5, 0, 5, 2, 5, 0, 5})
	f.Add([]byte{3, 0, 3, 4, 3, 8, 3, 12})
	rng := rand.New(rand.NewSource(42))
	long := make([]byte, 40)
	rng.Read(long)
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		runDualApplySchedule(t, data)
	})
}

// TestLiveReshardStatusAndCancel covers the control surface: in-flight
// status with phase and progress, the single-flight guarantee, and
// cancellation rolling everything back.
func TestLiveReshardStatusAndCancel(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := newLiveRef(t)
	seed := testWorkload(400, 3)
	if err := s.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	entered := make(chan struct{})
	s.testReshardHook = func(pt string) error {
		if pt == "scan" {
			entered <- struct{}{}
			<-hold
		}
		return nil
	}
	spec := ReshardSpec{Shards: 2, Policy: PartitionSpeed, SpeedBands: []float64{1.0}}
	if err := s.StartReshard(spec); err != nil {
		t.Fatal(err)
	}
	<-entered
	st := s.ReshardStatus()
	if !st.InFlight || st.Phase != "scan" || st.Shards != 2 || st.Policy != "speed" {
		t.Fatalf("in-flight status = %+v", st)
	}
	if st.Scanned == 0 {
		t.Fatalf("scanned = 0 at the scan boundary")
	}
	if err := s.StartReshard(spec); !errors.Is(err, ErrReshardInFlight) {
		t.Fatalf("second StartReshard = %v, want ErrReshardInFlight", err)
	}
	if err := s.Reshard(spec); !errors.Is(err, ErrReshardInFlight) {
		t.Fatalf("concurrent Reshard = %v, want ErrReshardInFlight", err)
	}
	if !s.CancelReshard() {
		t.Fatalf("CancelReshard found nothing in flight")
	}
	close(hold)
	waitReshardIdle(t, s, 10*time.Second)
	st = s.ReshardStatus()
	if !strings.Contains(st.LastError, "canceled") {
		t.Fatalf("LastError = %q, want cancellation", st.LastError)
	}
	if g := s.Generation(); g != 0 {
		t.Fatalf("generation %d after canceled reshard, want 0", g)
	}
	requireSameFingerprint(t, fingerprintIndex(t, s, 1), fingerprintIndex(t, ref, 1), "after canceled reshard")
	if s.CancelReshard() {
		t.Fatalf("CancelReshard reported an in-flight reshard while idle")
	}
}

// TestAutoReshardSkewTrigger gives a speed-partitioned index band
// boundaries far above every real speed — so all objects pile into
// shard 0 — and checks the drift detector notices the skew, reshards
// with bands re-derived from the observed speed window, and leaves the
// index answering like the unresharded twin.
func TestAutoReshardSkewTrigger(t *testing.T) {
	so := ShardedOptions{
		Options:    DefaultOptions(),
		Shards:     4,
		Partition:  PartitionSpeed,
		SpeedBands: []float64{50, 100, 150}, // real speeds are all < 3
		AutoReshard: AutoReshardOptions{
			Enabled:       true,
			Interval:      2 * time.Millisecond,
			Window:        64,
			SkewThreshold: 2,
			MinInterval:   time.Millisecond,
		},
	}
	s, err := OpenSharded(so)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := newLiveRef(t)
	seed := testWorkload(500, 5)
	if err := s.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateBatch(seed, 1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.Generation() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift detector never triggered; status %+v, metrics skew %.2f",
				s.ReshardStatus(), s.Metrics().ReshardSkew)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitReshardIdle(t, s, 10*time.Second)
	if st := s.ReshardStatus(); st.LastError != "" {
		t.Fatalf("auto reshard failed: %s", st.LastError)
	}
	bands := s.SpeedBands()
	if len(bands) != 3 || bands[2] >= 50 {
		t.Fatalf("bands not re-derived from observed speeds: %v", bands)
	}
	requireSameFingerprint(t, fingerprintIndex(t, s, 1), fingerprintIndex(t, ref, 1), "after auto reshard")
	m := s.Metrics()
	if m.ReshardRuns == 0 {
		t.Fatalf("ReshardRuns = 0 after auto trigger")
	}
	if m.ReshardSkew == 0 {
		t.Fatalf("skew gauge never published")
	}
}

// errLiveBoom is the injected crash of the live-reshard matrix.
var errLiveBoom = errors.New("live boom")
