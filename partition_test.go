package rexptree

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// speedClassBands are the fixed band boundaries used by the partition
// tests: four classes of |velocity| — [0, 0.5), [0.5, 2), [2, 8) and
// [8, ∞).
var speedClassBands = []float64{0.5, 2, 8}

// mixedSpeedWorkload builds reports whose speed class correlates with
// a spatial region (class c lives in the x-band [250c, 250c+250], like
// pedestrian zones vs highway corridors), which is the structure that
// makes speed partitioning prunable.  pass varies both positions and
// the class assignment, so re-reporting an object under a different
// pass moves it across band boundaries.
func mixedSpeedWorkload(n int, seed int64, pass int) []Report {
	rng := rand.New(rand.NewSource(seed + int64(pass)*1000))
	speeds := [4][2]float64{{0.05, 0.45}, {0.6, 1.8}, {2.2, 7.5}, {8.5, 25}}
	batch := make([]Report, n)
	for i := range batch {
		class := (i + pass) % 4
		lo, hi := speeds[class][0], speeds[class][1]
		sp := lo + rng.Float64()*(hi-lo)
		ang := rng.Float64() * 2 * math.Pi
		batch[i] = Report{
			ID: uint32(i + 1),
			Point: Point{
				Pos:     Vec{float64(class)*250 + rng.Float64()*250, rng.Float64() * 1000},
				Vel:     Vec{sp * math.Cos(ang), sp * math.Sin(ang)},
				Time:    float64(pass) * 5,
				Expires: float64(pass)*5 + 200,
			},
		}
	}
	return batch
}

// openPartitioned opens the three sharded variants under test plus a
// single-tree reference.
func openPartitioned(t *testing.T) (single *Tree, variants map[string]*ShardedTree) {
	t.Helper()
	single, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	variants = map[string]*ShardedTree{}
	for name, so := range map[string]ShardedOptions{
		"hash":        {Options: DefaultOptions(), Shards: 4},
		"speed-fixed": {Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed, SpeedBands: speedClassBands},
		"speed-auto":  {Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed, TuneAfter: 500},
	} {
		st, err := OpenSharded(so)
		if err != nil {
			t.Fatal(err)
		}
		variants[name] = st
	}
	t.Cleanup(func() {
		single.Close()
		for _, st := range variants {
			st.Close()
		}
	})
	return single, variants
}

// TestPartitionEquivalence is the central correctness property of the
// partitioning layer: for the same workload — including a second
// reporting round that moves objects across speed bands and so
// re-routes them between shards — every partition policy returns
// results identical to a single tree, for all four query types, with
// summary pruning active.
func TestPartitionEquivalence(t *testing.T) {
	single, variants := openPartitioned(t)

	apply := func(reports []Report, now float64, batch bool) {
		t.Helper()
		for _, r := range reports {
			if err := single.Update(r.ID, r.Point, now); err != nil {
				t.Fatal(err)
			}
		}
		for name, st := range variants {
			if batch {
				if err := st.UpdateBatch(reports, now); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				continue
			}
			for _, r := range reports {
				if err := st.Update(r.ID, r.Point, now); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
	}

	const n = 2500
	apply(mixedSpeedWorkload(n, 11, 0), 0, false)
	// Second round: every object changes speed class, so the speed
	// variants re-route; apply it batched to cover that path too.
	apply(mixedSpeedWorkload(n, 11, 1), 5, true)
	// A third, partial round through single updates (odd ids only).
	third := mixedSpeedWorkload(n, 11, 2)
	partial := third[:0:0]
	for i, r := range third {
		if i%2 == 1 {
			partial = append(partial, r)
		}
	}
	apply(partial, 10, false)

	for name, st := range variants {
		if got, want := st.Len(), single.Len(); got != want {
			t.Fatalf("%s: Len = %d, single = %d", name, got, want)
		}
		if strings.HasPrefix(name, "speed") && st.Metrics().Rerouted == 0 {
			t.Errorf("%s: no objects were re-routed; the workload should cross bands", name)
		}
	}

	now := 10.0
	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 60; q++ {
		lo := Vec{rng.Float64() * 950, rng.Float64() * 950}
		r := Rect{Lo: lo, Hi: Vec{lo[0] + 50, lo[1] + 50}}
		at := now + rng.Float64()*8

		type variantRun struct {
			name string
			run  func() ([]Result, error)
			ref  func() ([]Result, error)
		}
		var runs []variantRun
		for name, st := range variants {
			st := st
			runs = append(runs,
				variantRun{name + "/timeslice",
					func() ([]Result, error) { return st.Timeslice(r, at, now) },
					func() ([]Result, error) { return single.Timeslice(r, at, now) }},
				variantRun{name + "/window",
					func() ([]Result, error) { return st.Window(r, at, at+6, now) },
					func() ([]Result, error) { return single.Window(r, at, at+6, now) }},
				variantRun{name + "/moving",
					func() ([]Result, error) {
						r2 := Rect{Lo: Vec{lo[0] + 20, lo[1] + 20}, Hi: Vec{lo[0] + 70, lo[1] + 70}}
						return st.Moving(r, r2, at, at+6, now)
					},
					func() ([]Result, error) {
						r2 := Rect{Lo: Vec{lo[0] + 20, lo[1] + 20}, Hi: Vec{lo[0] + 70, lo[1] + 70}}
						return single.Moving(r, r2, at, at+6, now)
					}},
			)
		}
		for _, vr := range runs {
			want, err := vr.ref()
			if err != nil {
				t.Fatal(err)
			}
			got, err := vr.run()
			if err != nil {
				t.Fatalf("%s: %v", vr.name, err)
			}
			sortResults(want)
			if len(want) != len(got) {
				t.Fatalf("query %d %s: %d results, single has %d", q, vr.name, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("query %d %s result %d: got %+v, single %+v", q, vr.name, i, got[i], want[i])
				}
			}
		}
	}

	// Nearest: compare against the single tree ordered by (dist, id).
	for q := 0; q < 30; q++ {
		pos := Vec{rng.Float64() * 1000, rng.Float64() * 1000}
		at := now + rng.Float64()*5
		const k = 12
		want, err := single.Nearest(pos, at, k, now)
		if err != nil {
			t.Fatal(err)
		}
		dist := func(r Result) float64 {
			p := r.Point.At(at)
			dx, dy := p[0]-pos[0], p[1]-pos[1]
			return dx*dx + dy*dy
		}
		sort.Slice(want, func(i, j int) bool {
			di, dj := dist(want[i]), dist(want[j])
			if di != dj {
				return di < dj
			}
			return want[i].ID < want[j].ID
		})
		for name, st := range variants {
			got, err := st.Nearest(pos, at, k, now)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(want) != len(got) {
				t.Fatalf("nearest %d %s: %d results, single has %d", q, name, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("nearest %d %s result %d: got %+v, single %+v", q, name, i, got[i], want[i])
				}
			}
		}
	}

	// Get must agree everywhere, including for re-routed objects.
	for id := uint32(1); id <= n; id += 97 {
		wp, wok := single.Get(id, now)
		for name, st := range variants {
			gp, gok := st.Get(id, now)
			if wok != gok || gp != wp {
				t.Fatalf("%s: Get(%d) = %+v,%v; single %+v,%v", name, id, gp, gok, wp, wok)
			}
		}
	}
}

// TestPartitionPruning checks that on the spatially-correlated
// mixed-speed workload, point-ish near-future queries prune shards
// under speed partitioning while hash partitioning visits everything.
func TestPartitionPruning(t *testing.T) {
	_, variants := openPartitioned(t)
	reports := mixedSpeedWorkload(3000, 5, 0)
	for name, st := range variants {
		if err := st.UpdateBatch(reports, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 200; q++ {
		lo := Vec{rng.Float64() * 960, rng.Float64() * 960}
		r := Rect{Lo: lo, Hi: Vec{lo[0] + 40, lo[1] + 40}}
		at := rng.Float64() * 5
		for name, st := range variants {
			if _, err := st.Window(r, at, at+2, 0); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	speed := variants["speed-fixed"].Metrics()
	hash := variants["hash"].Metrics()
	if speed.ShardsPruned == 0 {
		t.Error("speed partitioning pruned no shards on a correlated workload")
	}
	if speed.ShardVisits >= hash.ShardVisits {
		t.Errorf("speed partitioning visited %d shards, hash %d; want fewer", speed.ShardVisits, hash.ShardVisits)
	}
	t.Logf("visits: speed-fixed %d, speed-auto %d, hash %d (pruned %d / %d / %d)",
		speed.ShardVisits, variants["speed-auto"].Metrics().ShardVisits, hash.ShardVisits,
		speed.ShardsPruned, variants["speed-auto"].Metrics().ShardsPruned, hash.ShardsPruned)
}

// TestShardManifest checks the partition sidecar: created on open,
// validated on reopen, and persisting self-tuned bands across close.
func TestShardManifest(t *testing.T) {
	base := filepath.Join(t.TempDir(), "idx")
	open := func(so ShardedOptions) (*ShardedTree, error) {
		so.Path = base
		return OpenSharded(so)
	}

	st, err := open(ShardedOptions{Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed, TuneAfter: 200})
	if err != nil {
		t.Fatal(err)
	}
	reports := mixedSpeedWorkload(600, 8, 0)
	for _, r := range reports {
		if err := st.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	bands := st.SpeedBands()
	if len(bands) != 3 {
		t.Fatalf("self-tuning did not fix bands: %v", bands)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Wrong shard count and wrong policy must both be refused.
	if _, err := open(ShardedOptions{Options: DefaultOptions(), Shards: 8, Partition: PartitionSpeed}); err == nil {
		t.Fatal("reopen with mismatched shard count succeeded")
	} else if !strings.Contains(err.Error(), "shards") {
		t.Errorf("shard-count mismatch error %q does not mention shards", err)
	}
	if _, err := open(ShardedOptions{Options: DefaultOptions(), Shards: 4}); err == nil {
		t.Fatal("reopen with mismatched partition policy succeeded")
	} else if !strings.Contains(err.Error(), "partition") {
		t.Errorf("policy mismatch error %q does not mention the partition", err)
	}

	// A matching reopen restores the data, the tuned bands and the
	// object→shard routing.
	st2, err := open(ShardedOptions{Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.SpeedBands()
	if len(got) != len(bands) {
		t.Fatalf("reopened bands %v, want %v", got, bands)
	}
	for i := range bands {
		if got[i] != bands[i] {
			t.Fatalf("reopened bands %v, want %v", got, bands)
		}
	}
	if st2.Len() != len(reports) {
		t.Fatalf("reopened Len = %d, want %d", st2.Len(), len(reports))
	}
	for _, r := range reports[:50] {
		if _, ok := st2.Get(r.ID, 1); !ok {
			t.Fatalf("object %d lost across reopen", r.ID)
		}
	}
	// Updating a reopened object must not duplicate it (the routing
	// table was rebuilt from the shard files).
	p := reports[0].Point
	p.Time, p.Expires = 1, 300
	if err := st2.Update(reports[0].ID, p, 1); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != len(reports) {
		t.Fatalf("Len after reopen+update = %d, want %d", st2.Len(), len(reports))
	}
}

// TestShardBufferSizing checks the per-shard buffer-pool budget rules
// and their exposure through Metrics.
func TestShardBufferSizing(t *testing.T) {
	cases := []struct {
		name     string
		perShard int
		total    int
		want     int // aggregate BufferPoolPages over 4 shards
	}{
		{"explicit per shard", 20, 0, 80},
		{"total budget split", 0, 120, 120},
		{"floor of 8", 0, 12, 32},
		{"default", 0, 0, 200},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := ShardedOptions{Options: DefaultOptions(), Shards: 4,
				BufferPagesPerShard: c.perShard}
			opts.BufferPages = c.total
			st, err := OpenSharded(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if got := st.Metrics().BufferPoolPages; got != c.want {
				t.Errorf("aggregate BufferPoolPages = %d, want %d", got, c.want)
			}
		})
	}
	if _, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), BufferPagesPerShard: -1}); err == nil {
		t.Error("negative BufferPagesPerShard accepted")
	}
}

// TestShardedOptionValidation covers the partition-option error paths.
func TestShardedOptionValidation(t *testing.T) {
	for name, so := range map[string]ShardedOptions{
		"bands with hash":  {Options: DefaultOptions(), Shards: 4, SpeedBands: []float64{1}},
		"wrong band count": {Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed, SpeedBands: []float64{1, 2}},
		"descending bands": {Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed, SpeedBands: []float64{3, 2, 1}},
		"negative band":    {Options: DefaultOptions(), Shards: 4, Partition: PartitionSpeed, SpeedBands: []float64{-1, 2, 3}},
		"unknown policy":   {Options: DefaultOptions(), Shards: 4, Partition: PartitionPolicy(9)},
	} {
		if _, err := OpenSharded(so); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParsePartitionPolicy("speed"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePartitionPolicy("bogus"); err == nil {
		t.Error("ParsePartitionPolicy accepted bogus")
	}
}

// TestConcurrentQueriesDuringReroute races queries of every type
// against updates that oscillate objects across speed bands (so shards
// continuously exchange objects).  Run under -race; correctness here
// is the absence of data races, errors and panics.
func TestConcurrentQueriesDuringReroute(t *testing.T) {
	st, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 4,
		Partition: PartitionSpeed, SpeedBands: speedClassBands})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seed := mixedSpeedWorkload(400, 21, 0)
	if err := st.UpdateBatch(seed, 0); err != nil {
		t.Fatal(err)
	}

	const writers, readers, iters = 3, 3, 300
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				id := uint32(rng.Intn(400) + 1)
				// Alternate slow and fast so the object keeps
				// crossing band boundaries.
				sp := 0.2
				if i%2 == 0 {
					sp = 15
				}
				p := Point{
					Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
					Vel:     Vec{sp, 0},
					Time:    1,
					Expires: 500,
				}
				if err := st.Update(id, p, 1); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%50 == 0 {
					if err := st.UpdateBatch(mixedSpeedWorkload(50, int64(i), i%3), 1); err != nil {
						errc <- fmt.Errorf("writer %d batch: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < iters; i++ {
				lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
				rect := Rect{Lo: lo, Hi: Vec{lo[0] + 80, lo[1] + 80}}
				at := 1 + rng.Float64()*10
				var err error
				switch i % 4 {
				case 0:
					_, err = st.Window(rect, at, at+5, 1)
				case 1:
					_, err = st.Timeslice(rect, at, 1)
				case 2:
					_, err = st.Nearest(Vec{rng.Float64() * 1000, rng.Float64() * 1000}, at, 5, 1)
				default:
					st.Get(uint32(rng.Intn(400)+1), 1)
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}
