package rexptree

import (
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rexptree/internal/geom"
	"rexptree/internal/manifest"
	"rexptree/internal/obs"
)

// ShardedOptions configures a ShardedTree.  The embedded Options apply
// to every shard; Path, when set, names the base of the per-shard page
// files (shard i is stored at "<Path>.s<i>" — or "<Path>.g<G>.s<i>"
// after a reshard bumped the file generation to G — and a
// "<Path>.manifest" sidecar records the partition and generation so
// the index cannot be reopened wrongly).
type ShardedOptions struct {
	Options

	// Shards is the number of independent sub-trees objects are
	// partitioned across (default 4).  It must be the same when a
	// file-backed sharded index is reopened, because the partition of
	// the stored objects depends on it.
	Shards int

	// Workers bounds how many shards are searched concurrently during a
	// query fan-out (default: one worker per shard).  The same pool
	// bounds the per-shard application of UpdateBatch.
	Workers int

	// Partition selects the object→shard assignment: PartitionHash
	// (default) routes by id hash; PartitionSpeed routes by |velocity|
	// band, which groups objects of similar speed so the per-shard
	// time-parameterized summaries stay tight and queries can prune
	// whole shards.
	Partition PartitionPolicy

	// SpeedBands are the |velocity| boundaries between consecutive
	// speed bands under PartitionSpeed: exactly Shards-1 ascending
	// non-negative values, band i covering [SpeedBands[i-1],
	// SpeedBands[i]).  Leave empty for self-tuning: the index
	// hash-routes while observing the first TuneAfter reported speeds,
	// then picks quantile boundaries; objects migrate to their band's
	// shard on their next update.
	SpeedBands []float64

	// TuneAfter is how many speed observations self-tuning collects
	// before fixing the band boundaries (default 1000).
	TuneAfter int

	// BufferPagesPerShard sets each shard's buffer-pool page capacity
	// directly.  When zero, Options.BufferPages (if set) is treated as
	// a total budget divided evenly across shards with a floor of 8
	// pages per shard; when that is zero too, each shard gets the
	// stand-alone default (50 pages, paper §5.1).
	BufferPagesPerShard int

	// AutoReshard enables the drift detector: a background loop that
	// watches routing skew and re-route churn and triggers a live
	// reshard with re-derived speed bands when they drift past the
	// configured thresholds.  Requires PartitionSpeed.
	AutoReshard AutoReshardOptions
}

// generation is one complete shard set: the trees, their pruning
// summaries and the partitioner routing objects among them.  The
// ShardedTree points at its current generation; a live reshard builds
// the next generation beside it and retires this one at cutover, so a
// generation is immutable in shape (shards, partitioner identity)
// once published while its contents keep mutating.
//
// Readers pin a generation (refs) so a cutover can retire the old one
// only after every in-flight traversal has left it; mutations instead
// hold the front-end rerouteMu, which the cutover takes exclusively.
type generation struct {
	shards []*Tree
	sums   []shardSummary
	part   partitioner
	gen    int // shard-file generation recorded in the manifest

	refs atomic.Int64 // in-flight readers; see ShardedTree.pin
}

// ShardedTree partitions a moving-object index across Shards
// independent Trees, each with its own page store, buffer pool and
// lock, following the scale-out design of partitioned moving-object
// indexes (MOIST; Jiang et al.): updates touch exactly one shard, so
// they proceed concurrently on different shards, and queries fan out
// across the shards through a bounded worker pool, with the per-shard
// result sets merged.
//
// Objects are assigned to shards by the configured PartitionPolicy:
// by id hash (the default), or by speed band (PartitionSpeed), which
// re-routes an object to its new band's shard when an update moves its
// speed across a boundary.  Each shard also maintains a conservative
// time-parameterized summary of its live objects — widened on every
// insert, periodically retightened from the shard's root — and queries
// consult the summaries first, skipping shards the query trapezoid
// provably cannot touch (Nearest instead visits shards in ascending
// summary distance and stops once the remaining shards cannot beat the
// current k-th candidate).  Pruning is strictly conservative, so
// results are identical to the unpruned fan-out and to a single Tree.
//
// Query results are merged in ascending object-id order (Nearest:
// ascending distance order), which makes the output deterministic
// regardless of shard completion order — and, for the same workload,
// element-wise identical to a single Tree's sorted results.
//
// The shard set itself can be replaced while the index serves traffic:
// Reshard/StartReshard build a new generation under a new shard count
// or partition policy, mirror every concurrent mutation into it, and
// cut over atomically; see livereshard.go.
//
// All methods are safe for concurrent use.
type ShardedTree struct {
	// cur is the current generation.  Readers pin it (see pin);
	// mutations load it under rerouteMu, whose exclusive side the
	// cutover holds while swapping the pointer.
	cur atomic.Pointer[generation]

	dims int
	sem  chan struct{} // bounded fan-out worker pool
	m    *obs.Metrics  // front-end registry: fan-out latencies, pruning counters
	rec  *obs.Recorder // fan-out flight recorder; nil unless Options.FlightRecorder > 0

	manifestPath string // "" when memory-backed
	basePath     string // ShardedOptions.Path
	durability   Durability
	opts         ShardedOptions // retained to derive a reshard target's per-shard Options

	closeMu  sync.Mutex // Close is idempotent; see Close
	closed   bool
	closeErr error
	closing  atomic.Bool // set by Close/Abandon so a live reshard aborts early

	// Re-routing discipline: every mutation holds rerouteMu shared
	// (single-object updates of re-routing policies — and all updates
	// while a live reshard is in flight — additionally hold the
	// object's stripe, so the delete-from-old/insert-into-new pair of
	// one object never interleaves with another update of the same
	// object), while UpdateBatch under a re-routing policy or a live
	// reshard holds rerouteMu exclusively.  The live-reshard cutover
	// takes rerouteMu exclusively too: a mutation therefore observes a
	// stable (generation, in-flight-reshard) pair for its whole
	// critical section.
	rerouteMu sync.RWMutex
	stripes   [64]sync.Mutex

	// replSink, when set, observes every applied mutation (see
	// replication.go).  Written under rerouteMu's exclusive side; the
	// live-reshard cutover re-attaches it to the target generation.
	replSink ReplSink

	// Live-reshard state; see livereshard.go.  lr is non-nil exactly
	// while a reshard's dual-apply window is open; it is published and
	// cleared only under rerouteMu's exclusive side.
	lr        atomic.Pointer[liveReshard]
	reshardMu sync.Mutex            // held by the reshard engine for a whole run
	speedWin  *manifest.SpeedWindow // sliding window of observed speeds; nil unless AutoReshard
	autoStop  chan struct{}
	autoDone  chan struct{}

	statusMu       sync.Mutex
	lastReshardErr error

	// testReshardHook, when set, is invoked at every live-reshard
	// phase boundary; a non-nil return simulates a crash at that
	// point (the engine stops dead, leaving files as they are).
	testReshardHook func(point string) error
}

// shardSummary is one shard's pruning summary plus its staleness
// counter.  The mutex orders widens, retightens and query-side reads;
// retightening reads the shard root while holding it, so a widen that
// happened-before the retighten is always covered by the fresh bound.
type shardSummary struct {
	mu    sync.Mutex
	sum   geom.Summary
	dirty int // widens since the last retighten
}

// retightenEvery is how many widens a shard summary absorbs before it
// is recomputed from the shard's root node (which is pinned in the
// buffer pool, so the recomputation costs no I/O).
const retightenEvery = 256

// pin returns the current generation with a reader reference held.
// The load-ref-recheck loop closes the race against a concurrent
// cutover: if the pointer moved between the load and the ref, the ref
// landed on a generation that may already be draining, so it is
// released and the load retried.  Callers must unpin exactly once.
func (s *ShardedTree) pin() *generation {
	for {
		g := s.cur.Load()
		g.refs.Add(1)
		if s.cur.Load() == g {
			return g
		}
		g.refs.Add(-1)
	}
}

func (g *generation) unpin() { g.refs.Add(-1) }

// perShardBuffer resolves the per-shard buffer-pool capacity for a
// given shard count: an explicit per-shard capacity wins, else
// Options.BufferPages is a total budget split across shards with a
// floor of 8 pages; 0 means the stand-alone default.
func perShardBuffer(opts ShardedOptions, shards int) int {
	perShard := opts.BufferPagesPerShard
	if perShard == 0 && opts.BufferPages > 0 {
		perShard = opts.BufferPages / shards
		if perShard < 8 {
			perShard = 8
		}
	}
	return perShard
}

// shardOptions derives shard i's stand-alone Options for generation
// gen from the front-end options — the same derivation for an open, a
// reopen and a live reshard's target shards, so a resharded shard
// behaves exactly like a reopened one.
func shardOptions(opts ShardedOptions, gen, i, perShard int) Options {
	so := opts.Options
	if so.Path != "" {
		so.Path = manifest.ShardPath(opts.Path, gen, i)
	}
	if perShard > 0 {
		so.BufferPages = perShard
	}
	// Distinct seeds keep the shards' tie-breaking streams
	// independent while remaining deterministic.
	so.Seed = opts.Seed + int64(i)
	// The observability hooks reach every shard tagged with its id, so
	// a consumer can tell which shard split, purged, or ran slow.
	if userObs := opts.Observer; userObs != nil {
		shard := i
		so.Observer = func(e ObserverEvent) {
			e.Shard = shard
			userObs(e)
		}
	}
	if opts.SlowOpThreshold > 0 {
		shard := i
		userSlow := opts.SlowOp
		if userSlow == nil {
			threshold := opts.SlowOpThreshold
			userSlow = func(op string, d time.Duration) {
				log.Printf("rexptree: slow %s: %v (threshold %v)", op, d, threshold)
			}
		}
		so.SlowOp = func(op string, d time.Duration) {
			userSlow(fmt.Sprintf("shard%d/%s", shard, op), d)
		}
	}
	return so
}

// openGeneration opens (or creates) the shard trees of one generation
// concurrently: each open is independent, and after an unclean
// shutdown each shard replays its own write-ahead log, so recovery
// time is bounded by the largest shard, not the sum.
func openGeneration(opts ShardedOptions, shards, gen int) ([]*Tree, error) {
	perShard := perShardBuffer(opts, shards)
	out := make([]*Tree, shards)
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := range out {
		wg.Add(1)
		go func(i int, so Options) {
			defer wg.Done()
			t, err := Open(so)
			if err != nil {
				errs[i] = fmt.Errorf("rexptree: opening shard %d: %w", i, err)
				return
			}
			out[i] = t
		}(i, shardOptions(opts, gen, i, perShard))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, open := range out {
				if open != nil {
					open.Close()
				}
			}
			return nil, err
		}
	}
	return out, nil
}

// OpenSharded creates (or, with a Path to existing shard files,
// reopens) a sharded tree.  Reopening validates the shard manifest:
// a mismatched shard count or partition policy is refused, because the
// stored object placement depends on both.
func OpenSharded(opts ShardedOptions) (*ShardedTree, error) {
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("rexptree: invalid shard count %d", opts.Shards)
	}
	if opts.Workers == 0 {
		opts.Workers = opts.Shards
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("rexptree: invalid worker count %d", opts.Workers)
	}
	if opts.Partition != PartitionHash && opts.Partition != PartitionSpeed {
		return nil, fmt.Errorf("rexptree: unknown partition policy %d", int(opts.Partition))
	}
	if opts.Partition == PartitionHash && len(opts.SpeedBands) > 0 {
		return nil, fmt.Errorf("rexptree: SpeedBands set but partition policy is %s", opts.Partition)
	}
	if opts.AutoReshard.Enabled && opts.Partition != PartitionSpeed {
		return nil, fmt.Errorf("rexptree: AutoReshard requires PartitionSpeed")
	}
	bands := append([]float64(nil), opts.SpeedBands...)
	if len(bands) > 0 {
		if len(bands) != opts.Shards-1 {
			return nil, fmt.Errorf("rexptree: %d speed bands for %d shards, want %d", len(bands), opts.Shards, opts.Shards-1)
		}
		for i, b := range bands {
			if b < 0 || (i > 0 && b <= bands[i-1]) {
				return nil, fmt.Errorf("rexptree: speed bands must be non-negative and ascending, got %v", bands)
			}
		}
	}
	if opts.TuneAfter <= 0 {
		opts.TuneAfter = 1000
	}

	// Validate the manifest before touching any shard file.
	autoTuned := false
	manifestPath := ""
	gen := 0
	if opts.Path != "" {
		manifestPath = manifest.Path(opts.Path)
		man, found, err := manifest.Read(manifestPath)
		if err != nil {
			return nil, fmt.Errorf("rexptree: %w", err)
		}
		if found {
			if man.Shards != opts.Shards {
				return nil, fmt.Errorf("rexptree: shard manifest %s: index has %d shards, options request %d", manifestPath, man.Shards, opts.Shards)
			}
			if man.Partition != opts.Partition.String() {
				return nil, fmt.Errorf("rexptree: shard manifest %s: index is %s-partitioned, options request %s", manifestPath, man.Partition, opts.Partition)
			}
			if len(man.SpeedBands) > 0 && len(bands) == 0 {
				bands = man.SpeedBands
				autoTuned = man.AutoTuned
			}
			gen = man.Generation
		}
	}
	if opts.BufferPagesPerShard < 0 {
		return nil, fmt.Errorf("rexptree: invalid BufferPagesPerShard %d", opts.BufferPagesPerShard)
	}

	s := &ShardedTree{
		sem:          make(chan struct{}, opts.Workers),
		m:            obs.New(),
		rec:          newRecorder(opts.Options),
		manifestPath: manifestPath,
		basePath:     opts.Path,
		durability:   opts.Durability,
		opts:         opts,
	}
	// The front end observes every fan-out as one operation; slow
	// fan-outs are reported with a "fanout/" tag so they are
	// distinguishable from the per-shard events the shards emit.
	if opts.SlowOpThreshold > 0 {
		slow := opts.SlowOp
		if slow == nil {
			threshold := opts.SlowOpThreshold
			slow = func(op string, d time.Duration) {
				log.Printf("rexptree: slow %s: %v (threshold %v)", op, d, threshold)
			}
		}
		s.m.SetSlowOp(opts.SlowOpThreshold, func(op obs.Op, d time.Duration) {
			slow("fanout/"+op.String(), d)
		})
	}

	trees, err := openGeneration(opts, opts.Shards, gen)
	if err != nil {
		return nil, err
	}
	s.dims = trees[0].dims

	g := &generation{shards: trees, sums: make([]shardSummary, opts.Shards), gen: gen}
	switch opts.Partition {
	case PartitionSpeed:
		sp := newSpeedPartitioner(opts.Shards, s.dims, opts.TuneAfter, bands,
			func(b []float64) { s.setSpeedGauges(g, b) })
		sp.tuned = autoTuned
		g.part = sp
		if len(bands) > 0 {
			s.setSpeedGauges(g, bands)
		}
		// Rebuild the object→shard table from the stored records.
		for i, t := range g.shards {
			t.mu.RLock()
			for id := range t.objects {
				sp.loc[id] = i
			}
			t.mu.RUnlock()
		}
	default:
		g.part = hashPartitioner{n: opts.Shards}
	}

	// Seed each shard's pruning summary from its root bound.
	for i := range g.shards {
		ss := &g.sums[i]
		ss.mu.Lock()
		s.retightenLocked(g, i)
		ss.mu.Unlock()
	}
	s.cur.Store(g)

	if manifestPath != "" {
		if err := s.writeManifestFile(g); err != nil {
			s.Close()
			return nil, err
		}
	}
	if opts.AutoReshard.Enabled {
		w := opts.AutoReshard.Window
		if w <= 0 {
			w = 4096
		}
		s.speedWin = manifest.NewSpeedWindow(w)
		s.autoStop = make(chan struct{})
		s.autoDone = make(chan struct{})
		go s.autoReshardLoop(opts.AutoReshard)
	}
	return s, nil
}

// writeManifestFile records generation g's partition in the sidecar.
func (s *ShardedTree) writeManifestFile(g *generation) error {
	man := manifest.Manifest{
		Version:    manifest.Version,
		Shards:     len(g.shards),
		Hash:       manifest.Hash,
		Partition:  g.part.policy().String(),
		Generation: g.gen,
		Durability: s.durability.String(),
	}
	if sp, ok := g.part.(*speedPartitioner); ok {
		man.SpeedBands, man.AutoTuned = sp.Bands()
	}
	return writeManifest(s.manifestPath, man)
}

// writeManifest stores a manifest atomically (write temp + rename).
func writeManifest(path string, m manifest.Manifest) error {
	if err := manifest.Write(path, m); err != nil {
		return fmt.Errorf("rexptree: %w", err)
	}
	return nil
}

// setSpeedGauges publishes each shard's speed band on its registry.
func (s *ShardedTree) setSpeedGauges(g *generation, bands []float64) {
	for i, t := range g.shards {
		lo, hi := 0.0, math.Inf(1)
		if i > 0 {
			lo = bands[i-1]
		}
		if i < len(bands) {
			hi = bands[i]
		}
		t.m.SpeedBandLo.Set(lo)
		t.m.SpeedBandHi.Set(hi)
	}
}

// NumShards returns the number of shards of the current generation.
func (s *ShardedTree) NumShards() int { return len(s.cur.Load().shards) }

// Dims returns the dimensionality of the indexed space.
func (s *ShardedTree) Dims() int { return s.dims }

// Generation returns the shard-file generation recorded in the
// manifest: 0 for a freshly created index, bumped by every reshard —
// offline (rexpreshard) or live (Reshard/StartReshard) — whose commit
// writes the new generation's files and switches the manifest to them
// atomically.
func (s *ShardedTree) Generation() int { return s.cur.Load().gen }

// Partition returns the current partition policy (a live reshard can
// change it).
func (s *ShardedTree) Partition() PartitionPolicy { return s.cur.Load().part.policy() }

// SpeedBands returns the active |velocity| band boundaries (nil under
// hash partitioning or while self-tuning is still sampling).
func (s *ShardedTree) SpeedBands() []float64 {
	if sp, ok := s.cur.Load().part.(*speedPartitioner); ok {
		b, _ := sp.Bands()
		return b
	}
	return nil
}

// shardIndex hashes an object id onto a shard.  The scheme (the
// murmur3 finalizer, recorded in the manifest) is shared with the
// offline reshard tool via internal/manifest.
func shardIndex(id uint32, n int) int {
	return manifest.ShardIndex(id, n)
}

// widenShard grows shard i's summary to cover the stored record, and
// every retightenEvery widens recomputes the summary from the shard's
// root so deletions and expirations eventually shrink it again.  The
// widen must happen after the record is inserted into the shard (see
// shardSummary).
func (s *ShardedTree) widenShard(g *generation, i int, mp geom.MovingPoint, now float64) {
	ss := &g.sums[i]
	ss.mu.Lock()
	ss.sum.WidenPoint(mp, now, s.dims)
	ss.dirty++
	if ss.dirty >= retightenEvery {
		s.retightenLocked(g, i)
	}
	ss.mu.Unlock()
}

// retightenLocked replaces shard i's summary with the tight bound read
// from the shard's root node.  The caller holds g.sums[i].mu; a read
// error keeps the current (conservative) summary.
func (s *ShardedTree) retightenLocked(g *generation, i int) {
	ss := &g.sums[i]
	ss.dirty = 0
	br, ok, err := g.shards[i].rootSummary()
	if err != nil {
		return
	}
	if !ok {
		ss.sum.Reset()
		return
	}
	ss.sum = geom.Summary{Box: br, Has: true}
}

// shardMatches reports whether the query can touch anything in shard i.
func (s *ShardedTree) shardMatches(g *generation, i int, q geom.Query) bool {
	ss := &g.sums[i]
	ss.mu.Lock()
	m := ss.sum.Matches(q, s.dims)
	ss.mu.Unlock()
	return m
}

// shardMinDist lower-bounds the distance from pos to any object of
// shard i at time at; ok is false for a provably empty shard.
func (s *ShardedTree) shardMinDist(g *generation, i int, pos Vec, at float64) (d float64, ok bool) {
	ss := &g.sums[i]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ss.sum.Has {
		return math.Inf(1), false
	}
	return ss.sum.MinDistAt(geom.Vec(pos), at, s.dims), true
}

// fanOut runs fn once per shard of g on the bounded worker pool and
// returns the first (lowest shard index) error.  Time spent waiting
// for a worker slot lands in the queue-wait phase histogram.
func (s *ShardedTree) fanOut(g *generation, fn func(i int, t *Tree) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(g.shards))
	for i, t := range g.shards {
		wg.Add(1)
		go func(i int, t *Tree) {
			defer wg.Done()
			qs := time.Now()
			s.sem <- struct{}{}
			s.m.ObservePhase(obs.PhaseQueueWait, time.Since(qs))
			defer func() { <-s.sem }()
			errs[i] = fn(i, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close persists the shard manifest (including self-tuned speed bands
// and the durability policy) and closes every shard, returning the
// first error.  An in-flight live reshard is canceled and awaited
// first (if its cutover already happened, the new generation is what
// gets closed).  Shard closes run concurrently — under a durability
// policy each one is a checkpoint plus fsync, so like recovery the
// cost is bounded by the largest shard.  Close is idempotent: repeated
// calls return the first call's result.
func (s *ShardedTree) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return s.closeErr
	}
	s.shutdownReshard()
	s.closed = true
	g := s.cur.Load()
	if s.manifestPath != "" {
		if err := s.writeManifestFile(g); err != nil {
			s.closeErr = err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(g.shards))
	for i, t := range g.shards {
		wg.Add(1)
		go func(i int, t *Tree) {
			defer wg.Done()
			errs[i] = t.Close()
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	}
	return s.closeErr
}

// Abandon drops the index without checkpointing or persisting
// anything — the crash simulation used by durability tests.  Like
// Close it stops the drift detector and waits out an in-flight live
// reshard (which aborts at its next cancellation check).
func (s *ShardedTree) Abandon() {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return
	}
	s.shutdownReshard()
	s.closed = true
	for _, t := range s.cur.Load().shards {
		t.Abandon()
	}
}

// Update inserts the object's report into its shard, replacing any
// previous report.  Under PartitionSpeed, a report whose speed crossed
// a band boundary first removes the object from its old shard, so the
// object migrates to its new band.  Updates to objects on different
// shards proceed concurrently; see Tree.Update for the time contract.
func (s *ShardedTree) Update(id uint32, p Point, now float64) error {
	var tc *QueryTrace
	if s.rec != nil {
		tc = newTrace("update")
	}
	start := time.Now()
	err := s.update(id, p, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpUpdate, d, err)
	tc.finishRecord(s.rec, 0, d, err)
	return err
}

func (s *ShardedTree) update(id uint32, p Point, now float64, tc *QueryTrace) error {
	ri := tc.begin(-1, "route", -1)
	s.rerouteMu.RLock()
	defer s.rerouteMu.RUnlock()
	g := s.cur.Load()
	lr := s.lr.Load()
	if g.part.policy() != PartitionHash || lr != nil {
		// Re-routing policies — and the dual-apply window of a live
		// reshard, whose touched-set and mirror apply must stay ordered
		// per object — serialize same-id updates on the id's stripe.
		// Hash partitioning outside a reshard needs neither: the shard
		// tree's own lock orders same-id updates.
		st := &s.stripes[id%uint32(len(s.stripes))]
		st.Lock()
		defer st.Unlock()
	}
	if s.speedWin != nil {
		s.speedWin.Observe(speedOf(p, s.dims))
	}
	if err := s.applyUpdate(g, id, p, now, tc, ri, true); err != nil {
		return err
	}
	if lr != nil {
		lr.noteTouched(id)
		if terr := s.applyUpdate(lr.target, id, p, now, nil, -1, false); terr != nil {
			lr.fail(terr)
		} else {
			lr.applied.Add(1)
			s.m.ReshardDualApplied.Inc()
		}
	}
	return nil
}

// applyUpdate routes and applies one report to generation g.  The
// caller holds the locks the generation's policy requires; routeIdx is
// the trace span opened for routing (-1 untraced).  frontend gates the
// public re-route counter so the mirrored applies of a live reshard
// are not double-counted.
func (s *ShardedTree) applyUpdate(g *generation, id uint32, p Point, now float64, tc *QueryTrace, routeIdx int, frontend bool) error {
	target := g.part.route(id, p)
	old, hasOld := g.part.locate(id)
	tc.endAt(routeIdx)
	if hasOld && old != target {
		di := tc.begin(-1, "reroute-delete", old)
		_, err := g.shards[old].Delete(id, now)
		tc.endAt(di)
		if err != nil {
			return err
		}
		g.part.forget(id)
		if frontend {
			s.m.Rerouted.Inc()
		}
	}
	t := g.shards[target]
	si := tc.begin(-1, "shard", target)
	err := t.Update(id, p, now)
	tc.endAt(si)
	if err != nil {
		return err
	}
	g.part.note(id, target)
	s.widenShard(g, target, t.storedPoint(p), now)
	return nil
}

// Delete removes the object's report from its shard; see Tree.Delete.
func (s *ShardedTree) Delete(id uint32, now float64) (bool, error) {
	var tc *QueryTrace
	if s.rec != nil {
		tc = newTrace("delete")
	}
	start := time.Now()
	ok, err := s.delete(id, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpDelete, d, err)
	tc.finishRecord(s.rec, 0, d, err)
	return ok, err
}

func (s *ShardedTree) delete(id uint32, now float64, tc *QueryTrace) (bool, error) {
	ri := tc.begin(-1, "route", -1)
	s.rerouteMu.RLock()
	defer s.rerouteMu.RUnlock()
	g := s.cur.Load()
	lr := s.lr.Load()
	if g.part.policy() != PartitionHash || lr != nil {
		st := &s.stripes[id%uint32(len(s.stripes))]
		st.Lock()
		defer st.Unlock()
	}
	removed, err := s.applyDelete(g, id, now, tc, ri)
	if err == nil && lr != nil {
		// Mark the id touched even when nothing was removed: the
		// backfill must never resurrect an object deleted during the
		// dual-apply window.
		lr.noteTouched(id)
		if _, terr := s.applyDelete(lr.target, id, now, nil, -1); terr != nil {
			lr.fail(terr)
		} else {
			lr.applied.Add(1)
			s.m.ReshardDualApplied.Inc()
		}
	}
	return removed, err
}

// applyDelete removes one object from generation g; locks as for
// applyUpdate.
func (s *ShardedTree) applyDelete(g *generation, id uint32, now float64, tc *QueryTrace, routeIdx int) (bool, error) {
	i, ok := g.part.locate(id)
	tc.endAt(routeIdx)
	if !ok {
		return false, nil
	}
	si := tc.begin(-1, "shard", i)
	removed, err := g.shards[i].Delete(id, now)
	tc.endAt(si)
	if err == nil {
		g.part.forget(id)
	}
	return removed, err
}

// UpdateBatch groups the reports by target shard and applies each
// group as one Tree.UpdateBatch — a single lock acquisition per shard
// — with the per-shard batches running concurrently on the worker
// pool.  Reports for the same object keep their relative order; under
// PartitionSpeed every report of an object is applied on the shard of
// the object's final (last-report) speed band, after removing it from
// its previous shard, so the batch leaves the same state as applying
// the reports one by one.  On error the failing shard stops like
// Tree.UpdateBatch while other shards' groups still apply; the first
// error is returned.
func (s *ShardedTree) UpdateBatch(batch []Report, now float64) error {
	var tc *QueryTrace
	if s.rec != nil {
		tc = newTrace("batch")
	}
	start := time.Now()
	err := s.updateBatch(batch, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpBatch, d, err)
	s.m.BatchedUpdates.Add(uint64(len(batch)))
	tc.finishRecord(s.rec, len(batch), d, err)
	return err
}

// updateBatch records batch-level spans only (route, the reroute
// deletions, the grouped application): the fan-out goroutines never
// touch the shared trace.
func (s *ShardedTree) updateBatch(batch []Report, now float64, tc *QueryTrace) error {
	if len(batch) == 0 {
		return nil
	}
	s.rerouteMu.RLock()
	g := s.cur.Load()
	if g.part.policy() == PartitionHash && s.lr.Load() == nil {
		// Stateless routing, no reshard in flight: the grouped fan-out
		// runs under the shared lock, concurrently with other batches.
		defer s.rerouteMu.RUnlock()
		if s.speedWin != nil {
			for _, r := range batch {
				s.speedWin.Observe(speedOf(r.Point, s.dims))
			}
		}
		return s.applyBatch(g, batch, now, tc, true)
	}
	// Re-routing policies (and any batch inside a dual-apply window)
	// hold the re-route lock exclusively so the route/delete/apply
	// phases — and the mirror into the reshard target — cannot
	// interleave with other mutations.
	s.rerouteMu.RUnlock()
	s.rerouteMu.Lock()
	defer s.rerouteMu.Unlock()
	g = s.cur.Load()
	lr := s.lr.Load()
	if s.speedWin != nil {
		for _, r := range batch {
			s.speedWin.Observe(speedOf(r.Point, s.dims))
		}
	}
	err := s.applyBatch(g, batch, now, tc, true)
	if lr != nil {
		for _, r := range batch {
			lr.noteTouched(r.ID)
		}
		if err != nil {
			// The batch half-applied to the current generation; the
			// mirror can no longer be proven equivalent, so the
			// reshard aborts (the operation's own error stands).
			lr.fail(err)
			return err
		}
		if terr := s.applyBatch(lr.target, batch, now, nil, false); terr != nil {
			lr.fail(terr)
		} else {
			lr.applied.Add(uint64(len(batch)))
			s.m.ReshardDualApplied.Add(uint64(len(batch)))
		}
	}
	return err
}

// applyBatch routes and applies one batch to generation g; the caller
// holds rerouteMu (shared suffices only for stateless hash routing).
func (s *ShardedTree) applyBatch(g *generation, batch []Report, now float64, tc *QueryTrace, frontend bool) error {
	if g.part.policy() == PartitionHash {
		ri := tc.begin(-1, "route", -1)
		groups := make([][]Report, len(g.shards))
		for _, r := range batch {
			i := g.part.route(r.ID, r.Point)
			groups[i] = append(groups[i], r)
		}
		tc.endAt(ri)
		ai := tc.begin(-1, "apply", -1)
		err := s.fanOut(g, func(i int, t *Tree) error {
			if len(groups[i]) == 0 {
				return nil
			}
			return t.UpdateBatch(groups[i], now)
		})
		tc.endAt(ai)
		// Widen with every report, even after a partial failure — a
		// too-wide summary is always safe.
		s.widenGroups(g, groups, now)
		return err
	}

	ri := tc.begin(-1, "route", -1)
	// Route every report; the last report fixes each object's shard.
	final := make(map[uint32]int, len(batch))
	for _, r := range batch {
		final[r.ID] = g.part.route(r.ID, r.Point)
	}

	// Remove re-routed objects from their previous shards first.
	delGroups := make([][]uint32, len(g.shards))
	for id, tgt := range final {
		if old, ok := g.part.locate(id); ok && old != tgt {
			delGroups[old] = append(delGroups[old], id)
		}
	}
	tc.endAt(ri)
	di := tc.begin(-1, "reroute-deletes", -1)
	err := s.fanOut(g, func(i int, t *Tree) error {
		ids := delGroups[i]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if _, err := t.Delete(id, now); err != nil {
				return err
			}
			g.part.forget(id)
			if frontend {
				s.m.Rerouted.Inc()
			}
		}
		return nil
	})
	tc.endAt(di)
	if err != nil {
		return err
	}

	// Apply every report on its object's final shard, in batch order.
	groups := make([][]Report, len(g.shards))
	for _, r := range batch {
		i := final[r.ID]
		groups[i] = append(groups[i], r)
	}
	ai := tc.begin(-1, "apply", -1)
	err = s.fanOut(g, func(i int, t *Tree) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return t.UpdateBatch(groups[i], now)
	})
	tc.endAt(ai)
	for id, tgt := range final {
		g.part.note(id, tgt)
	}
	s.widenGroups(g, groups, now)
	return err
}

// widenGroups widens each shard's summary with its group's reports.
func (s *ShardedTree) widenGroups(g *generation, groups [][]Report, now float64) {
	for i, grp := range groups {
		for _, r := range grp {
			s.widenShard(g, i, g.shards[i].storedPoint(r.Point), now)
		}
	}
}

// query fans one search out across the shards whose summaries the
// query trapezoid can touch, counting visited and pruned shards, and
// merges the results in ascending object-id order.
func (s *ShardedTree) query(q geom.Query, run func(*Tree) ([]Result, error)) ([]Result, error) {
	g := s.pin()
	defer g.unpin()
	visit := make([]bool, len(g.shards))
	var visits, pruned uint64
	for i := range g.shards {
		if s.shardMatches(g, i, q) {
			visit[i] = true
			visits++
		} else {
			pruned++
		}
	}
	s.m.ShardVisits.Add(visits)
	s.m.ShardsPruned.Add(pruned)
	parts := make([][]Result, len(g.shards))
	err := s.fanOut(g, func(i int, t *Tree) error {
		if !visit[i] {
			return nil
		}
		rs, err := run(t)
		parts[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	ms := time.Now()
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Result, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	s.m.ObservePhase(obs.PhaseMerge, time.Since(ms))
	return out, nil
}

// Timeslice reports the objects predicted to be inside r at time at
// (Type 1 query), fanned out across the non-pruned shards; see
// Tree.Timeslice.
func (s *ShardedTree) Timeslice(r Rect, at, now float64) ([]Result, error) {
	if s.rec != nil {
		res, _, err := s.TraceTimeslice(r, at, now)
		return res, err
	}
	start := time.Now()
	res, err := s.timeslice(r, at, now)
	s.m.ObserveOp(obs.OpTimeslice, time.Since(start), err)
	return res, err
}

func (s *ShardedTree) timeslice(r Rect, at, now float64) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	q := geom.Timeslice(toRect(r), at)
	return s.query(q, func(t *Tree) ([]Result, error) { return t.Timeslice(r, at, now) })
}

// Window reports the objects predicted to cross r during [t1, t2]
// (Type 2 query), fanned out across the non-pruned shards; see
// Tree.Window.
func (s *ShardedTree) Window(r Rect, t1, t2, now float64) ([]Result, error) {
	if s.rec != nil {
		res, _, err := s.TraceWindow(r, t1, t2, now)
		return res, err
	}
	start := time.Now()
	res, err := s.window(r, t1, t2, now)
	s.m.ObserveOp(obs.OpWindow, time.Since(start), err)
	return res, err
}

func (s *ShardedTree) window(r Rect, t1, t2, now float64) ([]Result, error) {
	if err := checkWindow(t1, t2, now); err != nil {
		return nil, err
	}
	q := geom.Window(toRect(r), t1, t2)
	return s.query(q, func(t *Tree) ([]Result, error) { return t.Window(r, t1, t2, now) })
}

// Moving reports the objects predicted to cross the trapezoid
// connecting r1 at t1 to r2 at t2 (Type 3 query), fanned out across
// the non-pruned shards; see Tree.Moving.
func (s *ShardedTree) Moving(r1, r2 Rect, t1, t2, now float64) ([]Result, error) {
	if s.rec != nil {
		res, _, err := s.TraceMoving(r1, r2, t1, t2, now)
		return res, err
	}
	start := time.Now()
	res, err := s.moving(r1, r2, t1, t2, now)
	s.m.ObserveOp(obs.OpMoving, time.Since(start), err)
	return res, err
}

func (s *ShardedTree) moving(r1, r2 Rect, t1, t2, now float64) ([]Result, error) {
	if err := checkMoving(t1, t2, now); err != nil {
		return nil, err
	}
	q := geom.Moving(toRect(r1), toRect(r2), t1, t2, s.dims)
	return s.query(q, func(t *Tree) ([]Result, error) { return t.Moving(r1, r2, t1, t2, now) })
}

// Nearest returns the k objects whose predicted positions at time at
// are closest to pos.  Shards are visited in ascending order of their
// summaries' lower-bound distance to pos; once k candidates are in
// hand, every remaining shard whose bound exceeds the current k-th
// distance is skipped (its objects are strictly farther, so they
// cannot enter the result).  The merged list is ordered by ascending
// distance (ties by object id) and truncated to k.
func (s *ShardedTree) Nearest(pos Vec, at float64, k int, now float64) ([]Result, error) {
	if s.rec != nil {
		res, _, err := s.TraceNearest(pos, at, k, now)
		return res, err
	}
	start := time.Now()
	res, err := s.nearest(pos, at, k, now)
	s.m.ObserveOp(obs.OpNearest, time.Since(start), err)
	return res, err
}

func (s *ShardedTree) nearest(pos Vec, at float64, k int, now float64) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	g := s.pin()
	defer g.unpin()
	type shardDist struct {
		i   int
		d   float64
		has bool
	}
	ord := make([]shardDist, len(g.shards))
	for i := range g.shards {
		d, has := s.shardMinDist(g, i, pos, at)
		ord[i] = shardDist{i, d, has}
	}
	sort.Slice(ord, func(a, b int) bool {
		if ord[a].d != ord[b].d {
			return ord[a].d < ord[b].d
		}
		return ord[a].i < ord[b].i
	})
	type cand struct {
		dist float64
		r    Result
	}
	var cands []cand
	var visits, pruned uint64
	for idx, o := range ord {
		// Empty shards, and — once k candidates are in hand — shards
		// whose bound is strictly beyond the k-th distance, cannot
		// contribute; with ord sorted ascending neither can any shard
		// after them.
		if !o.has || (len(cands) >= k && o.d > cands[k-1].dist) {
			pruned += uint64(len(ord) - idx)
			break
		}
		visits++
		rs, err := g.shards[o.i].Nearest(pos, at, k, now)
		if err != nil {
			s.m.ShardVisits.Add(visits)
			s.m.ShardsPruned.Add(pruned)
			return nil, err
		}
		for _, r := range rs {
			p := r.Point.At(at)
			var d float64
			for j := 0; j < s.dims; j++ {
				dd := p[j] - pos[j]
				d += dd * dd
			}
			cands = append(cands, cand{math.Sqrt(d), r})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			return cands[a].r.ID < cands[b].r.ID
		})
		if len(cands) > k {
			cands = cands[:k]
		}
	}
	s.m.ShardVisits.Add(visits)
	s.m.ShardsPruned.Add(pruned)
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out, nil
}

// Get returns the object's current report from its shard; see
// Tree.Get.
func (s *ShardedTree) Get(id uint32, now float64) (Point, bool) {
	g := s.pin()
	defer g.unpin()
	i, ok := g.part.locate(id)
	if !ok {
		return Point{}, false
	}
	return g.shards[i].Get(id, now)
}

// Len returns the total number of stored reports across all shards.
func (s *ShardedTree) Len() int {
	g := s.pin()
	defer g.unpin()
	n := 0
	for _, t := range g.shards {
		n += t.Len()
	}
	return n
}

// Now returns the index's logical clock: the largest reference time
// any shard has applied.  A reopened index restores it from the shard
// metadata pages, so it survives restarts.
func (s *ShardedTree) Now() float64 {
	g := s.pin()
	defer g.unpin()
	now := 0.0
	for _, t := range g.shards {
		if c := t.Now(); c > now {
			now = c
		}
	}
	return now
}

// ForEach visits every stored report, shard by shard, until fn returns
// false.  The visit order is unspecified.
func (s *ShardedTree) ForEach(now float64, fn func(Result) bool) error {
	g := s.pin()
	defer g.unpin()
	stop := false
	for _, t := range g.shards {
		if stop {
			return nil
		}
		err := t.ForEach(now, func(r Result) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the structural invariants of every shard.
func (s *ShardedTree) Validate() error {
	g := s.pin()
	defer g.unpin()
	return s.fanOut(g, func(_ int, t *Tree) error { return t.Validate() })
}

// Stats returns the summed statistics of all shards (Height is the
// tallest shard's).
func (s *ShardedTree) Stats() Stats {
	g := s.pin()
	defer g.unpin()
	var out Stats
	for _, t := range g.shards {
		st := t.Stats()
		if st.Height > out.Height {
			out.Height = st.Height
		}
		out.Pages += st.Pages
		out.LeafEntries += st.LeafEntries
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.BufferHits += st.BufferHits
		out.Evictions += st.Evictions
		out.DirtyWritebacks += st.DirtyWritebacks
		out.UIEstimate = math.Max(out.UIEstimate, st.UIEstimate)
	}
	return out
}

// snapshots freezes the aggregate and per-shard registries.  The
// aggregate sums every shard's counters, gauges and lock-wait
// histograms, while its per-operation histograms and the partitioning
// counters (shard visits, prunes, re-routes) come from the front-end
// registry: they describe the whole fan-out including the merge.  The
// live-reshard families are front-end-only too: the reshard is a
// whole-index operation, not a per-shard one.
func (s *ShardedTree) snapshots() (agg obs.Snapshot, shards []obs.Snapshot) {
	g := s.pin()
	defer g.unpin()
	shards = make([]obs.Snapshot, len(g.shards))
	for i, t := range g.shards {
		shards[i] = t.snapshot()
		agg = agg.Add(shards[i])
	}
	front := s.m.Snapshot()
	agg.Ops = front.Ops
	agg.ShardVisits = front.ShardVisits
	agg.ShardsPruned = front.ShardsPruned
	agg.Rerouted = front.Rerouted
	agg.ReshardRuns = front.ReshardRuns
	agg.ReshardDualApplied = front.ReshardDualApplied
	agg.ReshardBackfilled = front.ReshardBackfilled
	agg.ReshardSkew = front.ReshardSkew
	agg.ReshardChurn = front.ReshardChurn
	agg.ReshardCutoverStall = front.ReshardCutoverStall
	// The fan-out phases (queue_wait, merge) are observed only by the
	// front-end registry; fold them into the summed shard phases.
	for p := range agg.Phases {
		agg.Phases[p] = agg.Phases[p].Add(front.Phases[p])
	}
	return agg, shards
}

// Metrics returns the aggregate instrumentation snapshot: summed
// per-shard counters, gauges and lock-wait histograms, with the
// per-operation latencies and pruning counters measured at the sharded
// front end (fan-out plus merge).  Use ShardMetrics for one shard's
// own view.
func (s *ShardedTree) Metrics() Metrics {
	agg, _ := s.snapshots()
	return fromSnapshot(agg)
}

// ShardMetrics returns the instrumentation snapshot of shard i.
func (s *ShardedTree) ShardMetrics(i int) Metrics {
	g := s.pin()
	defer g.unpin()
	return fromSnapshot(g.shards[i].snapshot())
}

// WriteMetrics writes the aggregate metrics under the rexp_ name
// prefix followed by one section per shard under rexp_shard<i>_, all
// in the Prometheus text exposition format.  docs/METRICS.md lists
// every series.
func (s *ShardedTree) WriteMetrics(w io.Writer) error {
	agg, shards := s.snapshots()
	if err := obs.WriteSnapshotPrefix(w, agg, obs.DefaultPrefix); err != nil {
		return err
	}
	for i, snap := range shards {
		if err := obs.WriteSnapshotPrefix(w, snap, fmt.Sprintf("%s_shard%d", obs.DefaultPrefix, i)); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler returns an http.Handler serving WriteMetrics for
// mounting on a scrape endpoint.
func (s *ShardedTree) MetricsHandler() http.Handler {
	return obs.ShardedHandler(s.snapshots)
}
