package rexptree

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"rexptree/internal/obs"
)

// ShardedOptions configures a ShardedTree.  The embedded Options apply
// to every shard; Path, when set, names the base of the per-shard page
// files (shard i is stored at "<Path>.s<i>").
type ShardedOptions struct {
	Options

	// Shards is the number of independent sub-trees objects are
	// hash-partitioned across (default 4).  It must be the same when a
	// file-backed sharded index is reopened, because the partition of
	// the stored objects depends on it.
	Shards int

	// Workers bounds how many shards are searched concurrently during a
	// query fan-out (default: one worker per shard).  The same pool
	// bounds the per-shard application of UpdateBatch.
	Workers int
}

// ShardedTree partitions a moving-object index across Shards
// independent Trees, each with its own page store, buffer pool and
// lock, following the scale-out design of partitioned moving-object
// indexes (MOIST; Jiang et al.): updates touch exactly one shard, so
// they proceed concurrently on different shards, and queries fan out
// across all shards through a bounded worker pool, with the per-shard
// result sets merged.
//
// Objects are assigned to shards by a hash of their id, so the
// object-keyed operations (Update, Delete, Get) route directly to the
// owning shard.  Query results are merged in ascending object-id order
// (Nearest: ascending distance order), which makes the output
// deterministic regardless of shard completion order — and, for the
// same workload, element-wise identical to a single Tree's sorted
// results.
//
// All methods are safe for concurrent use.
type ShardedTree struct {
	shards []*Tree
	dims   int
	sem    chan struct{} // bounded fan-out worker pool
	m      *obs.Metrics  // front-end registry: fan-out latencies
}

// OpenSharded creates (or, with a Path to existing shard files,
// reopens) a sharded tree.
func OpenSharded(opts ShardedOptions) (*ShardedTree, error) {
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("rexptree: invalid shard count %d", opts.Shards)
	}
	if opts.Workers == 0 {
		opts.Workers = opts.Shards
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("rexptree: invalid worker count %d", opts.Workers)
	}
	s := &ShardedTree{
		shards: make([]*Tree, opts.Shards),
		sem:    make(chan struct{}, opts.Workers),
		m:      obs.New(),
	}
	for i := range s.shards {
		so := opts.Options
		if so.Path != "" {
			so.Path = fmt.Sprintf("%s.s%d", opts.Path, i)
		}
		// Distinct seeds keep the shards' tie-breaking streams
		// independent while remaining deterministic.
		so.Seed = opts.Seed + int64(i)
		t, err := Open(so)
		if err != nil {
			for _, open := range s.shards[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("rexptree: opening shard %d: %w", i, err)
		}
		s.shards[i] = t
	}
	s.dims = s.shards[0].dims
	return s, nil
}

// NumShards returns the number of shards.
func (s *ShardedTree) NumShards() int { return len(s.shards) }

// shardIndex hashes an object id onto a shard.  The id is mixed first
// (the murmur3 finalizer) so that dense or strided id spaces still
// spread evenly.
func shardIndex(id uint32, n int) int {
	h := id
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int(h % uint32(n))
}

func (s *ShardedTree) shardFor(id uint32) *Tree {
	return s.shards[shardIndex(id, len(s.shards))]
}

// fanOut runs fn once per shard on the bounded worker pool and returns
// the first (lowest shard index) error.
func (s *ShardedTree) fanOut(fn func(i int, t *Tree) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for i, t := range s.shards {
		wg.Add(1)
		go func(i int, t *Tree) {
			defer wg.Done()
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
			errs[i] = fn(i, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close closes every shard, returning the first error.
func (s *ShardedTree) Close() error {
	var first error
	for _, t := range s.shards {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Update inserts the object's report into its owning shard, replacing
// any previous report.  Updates to objects on different shards proceed
// concurrently; see Tree.Update for the time contract.
func (s *ShardedTree) Update(id uint32, p Point, now float64) error {
	start := time.Now()
	err := s.shardFor(id).Update(id, p, now)
	s.m.ObserveOp(obs.OpUpdate, time.Since(start), err)
	return err
}

// Delete removes the object's report from its owning shard; see
// Tree.Delete.
func (s *ShardedTree) Delete(id uint32, now float64) (bool, error) {
	start := time.Now()
	ok, err := s.shardFor(id).Delete(id, now)
	s.m.ObserveOp(obs.OpDelete, time.Since(start), err)
	return ok, err
}

// UpdateBatch groups the reports by owning shard and applies each
// group as one Tree.UpdateBatch — a single lock acquisition per shard
// — with the per-shard batches running concurrently on the worker
// pool.  Reports for the same object keep their relative order.  On
// error the failing shard stops like Tree.UpdateBatch while other
// shards' groups still apply; the first error is returned.
func (s *ShardedTree) UpdateBatch(batch []Report, now float64) error {
	start := time.Now()
	err := s.updateBatch(batch, now)
	s.m.ObserveOp(obs.OpBatch, time.Since(start), err)
	return err
}

func (s *ShardedTree) updateBatch(batch []Report, now float64) error {
	if len(batch) == 0 {
		return nil
	}
	groups := make([][]Report, len(s.shards))
	for _, r := range batch {
		i := shardIndex(r.ID, len(s.shards))
		groups[i] = append(groups[i], r)
	}
	return s.fanOut(func(i int, t *Tree) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return t.UpdateBatch(groups[i], now)
	})
}

// query fans one search out across all shards and merges the results
// in ascending object-id order.
func (s *ShardedTree) query(run func(*Tree) ([]Result, error)) ([]Result, error) {
	parts := make([][]Result, len(s.shards))
	err := s.fanOut(func(i int, t *Tree) error {
		rs, err := run(t)
		parts[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Result, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Timeslice reports the objects predicted to be inside r at time at
// (Type 1 query), fanned out across all shards; see Tree.Timeslice.
func (s *ShardedTree) Timeslice(r Rect, at, now float64) ([]Result, error) {
	start := time.Now()
	res, err := s.query(func(t *Tree) ([]Result, error) { return t.Timeslice(r, at, now) })
	s.m.ObserveOp(obs.OpTimeslice, time.Since(start), err)
	return res, err
}

// Window reports the objects predicted to cross r during [t1, t2]
// (Type 2 query), fanned out across all shards; see Tree.Window.
func (s *ShardedTree) Window(r Rect, t1, t2, now float64) ([]Result, error) {
	start := time.Now()
	res, err := s.query(func(t *Tree) ([]Result, error) { return t.Window(r, t1, t2, now) })
	s.m.ObserveOp(obs.OpWindow, time.Since(start), err)
	return res, err
}

// Moving reports the objects predicted to cross the trapezoid
// connecting r1 at t1 to r2 at t2 (Type 3 query), fanned out across
// all shards; see Tree.Moving.
func (s *ShardedTree) Moving(r1, r2 Rect, t1, t2, now float64) ([]Result, error) {
	start := time.Now()
	res, err := s.query(func(t *Tree) ([]Result, error) { return t.Moving(r1, r2, t1, t2, now) })
	s.m.ObserveOp(obs.OpMoving, time.Since(start), err)
	return res, err
}

// Nearest returns the k objects whose predicted positions at time at
// are closest to pos.  Each shard contributes its own k best
// candidates; the merged list is ordered by ascending distance (ties
// by object id) and truncated to k.
func (s *ShardedTree) Nearest(pos Vec, at float64, k int, now float64) ([]Result, error) {
	start := time.Now()
	res, err := s.nearest(pos, at, k, now)
	s.m.ObserveOp(obs.OpNearest, time.Since(start), err)
	return res, err
}

func (s *ShardedTree) nearest(pos Vec, at float64, k int, now float64) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	parts := make([][]Result, len(s.shards))
	err := s.fanOut(func(i int, t *Tree) error {
		rs, err := t.Nearest(pos, at, k, now)
		parts[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	type cand struct {
		dist float64
		r    Result
	}
	var cands []cand
	for _, p := range parts {
		for _, r := range p {
			at := r.Point.At(at)
			var d float64
			for i := 0; i < s.dims; i++ {
				dd := at[i] - pos[i]
				d += dd * dd
			}
			cands = append(cands, cand{math.Sqrt(d), r})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].r.ID < cands[j].r.ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out, nil
}

// Get returns the object's current report from its owning shard; see
// Tree.Get.
func (s *ShardedTree) Get(id uint32, now float64) (Point, bool) {
	return s.shardFor(id).Get(id, now)
}

// Len returns the total number of stored reports across all shards.
func (s *ShardedTree) Len() int {
	n := 0
	for _, t := range s.shards {
		n += t.Len()
	}
	return n
}

// ForEach visits every stored report, shard by shard, until fn returns
// false.  The visit order is unspecified.
func (s *ShardedTree) ForEach(now float64, fn func(Result) bool) error {
	stop := false
	for _, t := range s.shards {
		if stop {
			return nil
		}
		err := t.ForEach(now, func(r Result) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the structural invariants of every shard.
func (s *ShardedTree) Validate() error {
	return s.fanOut(func(_ int, t *Tree) error { return t.Validate() })
}

// Stats returns the summed statistics of all shards (Height is the
// tallest shard's).
func (s *ShardedTree) Stats() Stats {
	var out Stats
	for _, t := range s.shards {
		st := t.Stats()
		if st.Height > out.Height {
			out.Height = st.Height
		}
		out.Pages += st.Pages
		out.LeafEntries += st.LeafEntries
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.BufferHits += st.BufferHits
		out.Evictions += st.Evictions
		out.DirtyWritebacks += st.DirtyWritebacks
		out.UIEstimate = math.Max(out.UIEstimate, st.UIEstimate)
	}
	return out
}

// snapshots freezes the aggregate and per-shard registries.  The
// aggregate sums every shard's counters, gauges and lock-wait
// histograms, while its per-operation histograms come from the
// front-end registry: they time the whole fan-out including the merge,
// so they are the sharded index's end-to-end (fan-out) latencies.
func (s *ShardedTree) snapshots() (agg obs.Snapshot, shards []obs.Snapshot) {
	shards = make([]obs.Snapshot, len(s.shards))
	for i, t := range s.shards {
		shards[i] = t.snapshot()
		agg = agg.Add(shards[i])
	}
	agg.Ops = s.m.Snapshot().Ops
	return agg, shards
}

// Metrics returns the aggregate instrumentation snapshot: summed
// per-shard counters, gauges and lock-wait histograms, with the
// per-operation latencies measured at the sharded front end (fan-out
// plus merge).  Use ShardMetrics for one shard's own view.
func (s *ShardedTree) Metrics() Metrics {
	agg, _ := s.snapshots()
	return fromSnapshot(agg)
}

// ShardMetrics returns the instrumentation snapshot of shard i.
func (s *ShardedTree) ShardMetrics(i int) Metrics {
	return fromSnapshot(s.shards[i].snapshot())
}

// WriteMetrics writes the aggregate metrics under the rexp_ name
// prefix followed by one section per shard under rexp_shard<i>_, all
// in the Prometheus text exposition format.  docs/METRICS.md lists
// every series.
func (s *ShardedTree) WriteMetrics(w io.Writer) error {
	agg, shards := s.snapshots()
	if err := obs.WriteSnapshotPrefix(w, agg, obs.DefaultPrefix); err != nil {
		return err
	}
	for i, snap := range shards {
		if err := obs.WriteSnapshotPrefix(w, snap, fmt.Sprintf("%s_shard%d", obs.DefaultPrefix, i)); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler returns an http.Handler serving WriteMetrics for
// mounting on a scrape endpoint.
func (s *ShardedTree) MetricsHandler() http.Handler {
	return obs.ShardedHandler(s.snapshots)
}
