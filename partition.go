package rexptree

import (
	"fmt"
	"sync"

	"rexptree/internal/manifest"
)

// PartitionPolicy selects how a ShardedTree assigns objects to shards.
type PartitionPolicy int

const (
	// PartitionHash routes each object by a hash of its id (the
	// default).  Routing is stateless, and every shard sees the full
	// mix of slow and fast objects.
	PartitionHash PartitionPolicy = iota

	// PartitionSpeed routes each object by its speed |velocity|: shard
	// i holds the objects of the i-th speed band, slowest first.  Slow
	// objects then share shards whose time-parameterized bounds grow
	// slowly, so queries over near-future times can prune the
	// fast-mover shards (and vice versa) via the per-shard summaries.
	// An object whose speed crosses a band boundary is re-routed to its
	// new shard on its next update.
	PartitionSpeed
)

// String returns the policy's name as stored in the shard manifest.
func (p PartitionPolicy) String() string {
	switch p {
	case PartitionHash:
		return "hash"
	case PartitionSpeed:
		return "speed"
	}
	return fmt.Sprintf("partition(%d)", int(p))
}

// ParsePartitionPolicy converts a policy name ("hash" or "speed") back
// to the policy, for flag and manifest parsing.
func ParsePartitionPolicy(s string) (PartitionPolicy, error) {
	switch s {
	case "hash":
		return PartitionHash, nil
	case "speed":
		return PartitionSpeed, nil
	}
	return 0, fmt.Errorf("rexptree: unknown partition policy %q", s)
}

// partitioner maps objects to shards.  route picks the target shard
// for a new report; locate returns the shard currently holding the
// object (ok=false when it is not tracked); note and forget maintain
// the object→shard table of stateful policies.
type partitioner interface {
	policy() PartitionPolicy
	route(id uint32, p Point) int
	locate(id uint32) (int, bool)
	note(id uint32, shard int)
	forget(id uint32)
}

// hashPartitioner is the stateless id-hash policy.  locate is exact
// (the hash is the location), so note and forget are no-ops.
type hashPartitioner struct{ n int }

func (h hashPartitioner) policy() PartitionPolicy      { return PartitionHash }
func (h hashPartitioner) route(id uint32, _ Point) int { return shardIndex(id, h.n) }
func (h hashPartitioner) locate(id uint32) (int, bool) { return shardIndex(id, h.n), true }
func (h hashPartitioner) note(uint32, int)             {}
func (h hashPartitioner) forget(uint32)                {}

// speedPartitioner routes by |velocity| band.  With fixed bands the
// boundaries come from ShardedOptions.SpeedBands; in self-tuned mode
// (no bands given) it hash-routes while collecting the first tuneAfter
// observed speeds, then picks quantile boundaries so the bands split
// the observed distribution evenly.  Objects placed during warmup (or
// whose speed later crosses a boundary) migrate lazily: the sharded
// front-end re-routes them on their next update.
type speedPartitioner struct {
	n         int
	dims      int
	tuneAfter int
	onTune    func(bands []float64) // called with mu held; must not call back

	mu      sync.RWMutex
	bands   []float64 // ascending boundaries; nil until tuned in auto mode
	tuned   bool      // bands were self-tuned (vs configured)
	samples []float64 // speeds observed while untuned
	loc     map[uint32]int
}

func newSpeedPartitioner(n, dims, tuneAfter int, bands []float64, onTune func([]float64)) *speedPartitioner {
	return &speedPartitioner{
		n:         n,
		dims:      dims,
		tuneAfter: tuneAfter,
		onTune:    onTune,
		bands:     bands,
		loc:       make(map[uint32]int),
	}
}

func (p *speedPartitioner) policy() PartitionPolicy { return PartitionSpeed }

// speedOf is the report's |velocity|.
func speedOf(pt Point, dims int) float64 {
	return manifest.Speed(pt.Vel, dims)
}

// bandOf maps a speed to its band: band i covers [bands[i-1], bands[i]).
func bandOf(bands []float64, sp float64) int {
	return manifest.SpeedBandOf(bands, sp)
}

func (p *speedPartitioner) route(id uint32, pt Point) int {
	if p.n < 2 {
		// One shard, one band: nothing to tune or look up (and
		// QuantileBands cannot split a distribution into one band).
		return 0
	}
	sp := speedOf(pt, p.dims)
	p.mu.RLock()
	bands := p.bands
	p.mu.RUnlock()
	if bands == nil {
		p.mu.Lock()
		if p.bands == nil {
			p.samples = append(p.samples, sp)
			if len(p.samples) >= p.tuneAfter {
				p.tuneLocked()
			}
		}
		bands = p.bands
		p.mu.Unlock()
		if bands == nil {
			// Warmup: hash-route so the shards stay balanced until
			// the speed distribution is known.
			return shardIndex(id, p.n)
		}
	}
	return bandOf(bands, sp)
}

// tuneLocked picks the band boundaries at the i/n quantiles of the
// observed speeds.  Caller holds p.mu.
func (p *speedPartitioner) tuneLocked() {
	p.bands = manifest.QuantileBands(p.samples, p.n)
	p.tuned = true
	p.samples = nil
	if p.onTune != nil {
		p.onTune(p.bands)
	}
}

// Bands returns a copy of the current boundaries (nil while untuned)
// and whether they were self-tuned.
func (p *speedPartitioner) Bands() ([]float64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]float64(nil), p.bands...), p.tuned
}

func (p *speedPartitioner) locate(id uint32) (int, bool) {
	p.mu.RLock()
	i, ok := p.loc[id]
	p.mu.RUnlock()
	return i, ok
}

func (p *speedPartitioner) note(id uint32, shard int) {
	p.mu.Lock()
	p.loc[id] = shard
	p.mu.Unlock()
}

func (p *speedPartitioner) forget(id uint32) {
	p.mu.Lock()
	delete(p.loc, id)
	p.mu.Unlock()
}

// bandLabel describes shard i's speed band for traces ("[lo, hi)"),
// or "" under hash partitioning or while self-tuning is still
// sampling.
func (s *ShardedTree) bandLabel(g *generation, i int) string {
	sp, ok := g.part.(*speedPartitioner)
	if !ok {
		return ""
	}
	bands, _ := sp.Bands()
	if len(bands) == 0 {
		return ""
	}
	lo := "0"
	if i > 0 && i-1 < len(bands) {
		lo = fmt.Sprintf("%.3g", bands[i-1])
	}
	hi := "inf"
	if i < len(bands) {
		hi = fmt.Sprintf("%.3g", bands[i])
	}
	return fmt.Sprintf("[%s, %s)", lo, hi)
}

// The shard manifest itself — the sidecar file ("<Path>.manifest")
// describing how a file-backed sharded index is partitioned — lives in
// internal/manifest, shared with the offline reshard tool
// (cmd/rexpreshard) so that tool and library route identically.
