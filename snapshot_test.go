package rexptree

import (
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLockedReadsEquivalence applies one op stream to a default tree
// (snapshot reads) and an Options.LockedReads tree, then checks every
// query type returns element-wise identical results.  The two read
// paths must be observationally indistinguishable on a quiesced tree.
func TestLockedReadsEquivalence(t *testing.T) {
	snapOpts := DefaultOptions()
	lockOpts := DefaultOptions()
	lockOpts.LockedReads = true
	snap, err := Open(snapOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	locked, err := Open(lockOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer locked.Close()

	rng := rand.New(rand.NewSource(11))
	now := 0.0
	for round := 0; round < 10; round++ {
		for op := 0; op < 200; op++ {
			id := uint32(rng.Intn(800) + 1)
			p := Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
				Time:    now,
				Expires: now + rng.Float64()*80,
			}
			if rng.Intn(10) == 0 {
				ok1, err1 := snap.Delete(id, now)
				ok2, err2 := locked.Delete(id, now)
				if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("delete diverged: (%v,%v) vs (%v,%v)", ok1, err1, ok2, err2)
				}
				continue
			}
			if err := snap.Update(id, p, now); err != nil {
				t.Fatal(err)
			}
			if err := locked.Update(id, p, now); err != nil {
				t.Fatal(err)
			}
		}
		now += rng.Float64() * 10

		for q := 0; q < 10; q++ {
			lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
			r := Rect{Lo: lo, Hi: Vec{lo[0] + 150, lo[1] + 150}}
			r2 := Rect{Lo: Vec{lo[0] + 75, lo[1] + 75}, Hi: Vec{lo[0] + 225, lo[1] + 225}}

			compare := func(name string, a, b []Result, errA, errB error) {
				t.Helper()
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s errors diverged: %v vs %v", name, errA, errB)
				}
				if len(a) != len(b) {
					t.Fatalf("%s: snapshot %d results, locked %d", name, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s result %d differs: %+v vs %+v", name, i, a[i], b[i])
					}
				}
			}
			a, errA := snap.Timeslice(r, now+5, now)
			b, errB := locked.Timeslice(r, now+5, now)
			compare("timeslice", a, b, errA, errB)
			a, errA = snap.Window(r, now, now+10, now)
			b, errB = locked.Window(r, now, now+10, now)
			compare("window", a, b, errA, errB)
			a, errA = snap.Moving(r, r2, now, now+10, now)
			b, errB = locked.Moving(r, r2, now, now+10, now)
			compare("moving", a, b, errA, errB)
			a, errA = snap.Nearest(lo, now+1, 8, now)
			b, errB = locked.Nearest(lo, now+1, 8, now)
			compare("nearest", a, b, errA, errB)
		}
	}
}

// TestSnapshotReadsDuringBatches races lock-free queries against a
// heavy UpdateBatch stream (run under -race).  Beyond data-race
// freedom it checks batch atomicity from the reader side: batches
// replace reports without changing the live id set, so a whole-space
// timeslice must never observe a partially applied batch as a dip in
// the result count.
func TestSnapshotReadsDuringBatches(t *testing.T) {
	tree, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	const n = 600
	seed := make([]Report, n)
	for i := range seed {
		seed[i] = Report{ID: uint32(i + 1), Point: Point{
			Pos:     Vec{float64(i%25) * 40, float64(i/25) * 40},
			Expires: NoExpiry(),
		}}
	}
	if err := tree.UpdateBatch(seed, 0); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // batch writer: rewrites every report's position
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for b := 0; b < 60; b++ {
			batch := make([]Report, n)
			for i := range batch {
				batch[i] = Report{ID: uint32(i + 1), Point: Point{
					Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
					Vel:     Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
					Expires: NoExpiry(),
				}}
			}
			if err := tree.UpdateBatch(batch, 0); err != nil {
				t.Errorf("batch: %v", err)
				break
			}
		}
		stop.Store(true)
	}()

	world := Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rs, err := tree.Timeslice(world, 0, 0)
				if err != nil {
					t.Errorf("timeslice: %v", err)
					return
				}
				if len(rs) != n {
					t.Errorf("timeslice saw %d objects mid-batch, want %d (non-atomic publication)", len(rs), n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadsDuringCheckpoints races lock-free queries against a
// durable update stream with a tiny checkpoint threshold, so snapshot
// traversals overlap WAL appends, checkpoints (pool flushes) and page
// evictions (run under -race).
func TestSnapshotReadsDuringCheckpoints(t *testing.T) {
	opts := DefaultOptions()
	opts.Path = filepath.Join(t.TempDir(), "ckpt.rexp")
	opts.Durability = DurabilityOnCommit
	opts.CheckpointBytes = 16 << 10 // checkpoint every few batches
	opts.BufferPages = 32           // force evictions during traversals
	tree, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	if err := tree.UpdateBatch(testWorkload(800, 13), 0); err != nil {
		t.Fatal(err)
	}

	var clock atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(29))
		for i := 0; i < 1200; i++ {
			now := float64(clock.Load())
			p := Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
				Time:    now,
				Expires: now + 120,
			}
			if err := tree.Update(uint32(rng.Intn(800)+1), p, now); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			if i%150 == 0 {
				clock.Add(1)
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				now := float64(clock.Load())
				lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
				r := Rect{Lo: lo, Hi: Vec{lo[0] + 100, lo[1] + 100}}
				if i%2 == 0 {
					if _, err := tree.Window(r, now, now+10, now); err != nil {
						t.Errorf("window: %v", err)
						return
					}
				} else if _, err := tree.Nearest(lo, now+1, 5, now); err != nil {
					t.Errorf("nearest: %v", err)
					return
				}
			}
		}(int64(r + 31))
	}
	wg.Wait()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := tree.Metrics(); m.Checkpoints == 0 {
		t.Skip("no checkpoint fired; raise the update count") // defensive: the race coverage still ran
	}
}

// TestSnapshotReadsDuringReroute races fan-out queries against a
// speed-partitioned sharded tree whose self-tuning kicks in mid-run
// and lazily re-routes objects between shards (run under -race).
func TestSnapshotReadsDuringReroute(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{
		Options:   DefaultOptions(),
		Shards:    3,
		Workers:   2,
		Partition: PartitionSpeed,
		TuneAfter: 500, // retune mid-run, after the seed batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.UpdateBatch(testWorkload(400, 17), 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // updates that change object speeds, forcing re-routes
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 800; i++ {
			speed := rng.Float64() * 6
			p := Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{speed, 0},
				Expires: NoExpiry(),
			}
			if err := s.Update(uint32(rng.Intn(400)+1), p, 0); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
				rect := Rect{Lo: lo, Hi: Vec{lo[0] + 120, lo[1] + 120}}
				if i%2 == 0 {
					if _, err := s.Timeslice(rect, 1, 0); err != nil {
						t.Errorf("timeslice: %v", err)
						return
					}
				} else if _, err := s.Nearest(lo, 1, 5, 0); err != nil {
					t.Errorf("nearest: %v", err)
					return
				}
			}
		}(int64(r + 41))
	}
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
