package rexptree

import (
	"math"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
)

const geomMaxDims = geom.MaxDims

func TestMaxDimsMatchesEngine(t *testing.T) {
	if MaxDims != geomMaxDims {
		t.Fatalf("public MaxDims %d != engine %d", MaxDims, geomMaxDims)
	}
}

func TestToInternalEpochConversion(t *testing.T) {
	p := Point{Pos: Vec{100, 200}, Vel: Vec{2, -1}, Time: 10, Expires: 50}
	mp := toInternal(p, 2)
	// Epoch position: pos - vel*time.
	if mp.Pos[0] != 80 || mp.Pos[1] != 210 {
		t.Errorf("epoch pos = %v", mp.Pos)
	}
	// At the report time the positions agree.
	at := mp.At(10)
	if at[0] != 100 || at[1] != 200 {
		t.Errorf("At(10) = %v", at)
	}
	if mp.TExp != 50 {
		t.Errorf("TExp = %v", mp.TExp)
	}
}

func TestToInternalZeroExpiryMeansNever(t *testing.T) {
	mp := toInternal(Point{Pos: Vec{1, 1}}, 2)
	if !math.IsInf(mp.TExp, 1) {
		t.Errorf("zero Expires should mean never, got %v", mp.TExp)
	}
}

func TestFromInternalRoundTrip(t *testing.T) {
	p := Point{Pos: Vec{100, 200}, Vel: Vec{2, -1}, Time: 10, Expires: 50}
	mp := toInternal(p, 2)
	back := fromInternal(mp, 25, 2)
	if back.Time != 25 {
		t.Errorf("Time = %v", back.Time)
	}
	// Predictions agree at any instant.
	for _, tt := range []float64{10, 25, 40} {
		a, b := p.At(tt), back.At(tt)
		if math.Abs(a[0]-b[0]) > 1e-9 || math.Abs(a[1]-b[1]) > 1e-9 {
			t.Errorf("prediction at %v: %v vs %v", tt, a, b)
		}
	}
	if back.Expires != 50 {
		t.Errorf("Expires = %v", back.Expires)
	}
}

func TestBoundingKindMapping(t *testing.T) {
	cases := map[BoundingKind]hull.Kind{
		Conservative:  hull.KindConservative,
		Static:        hull.KindStatic,
		UpdateMinimum: hull.KindUpdateMinimum,
		NearOptimal:   hull.KindNearOptimal,
		Optimal:       hull.KindOptimal,
	}
	for pub, want := range cases {
		if got := pub.internal(); got != want {
			t.Errorf("kind %d maps to %v, want %v", pub, got, want)
		}
	}
}

func TestOptionsInternalMapping(t *testing.T) {
	o := DefaultOptions()
	o.BufferPages = 7
	o.Beta = 0.25
	o.FixedW = 12
	o.Seed = 99
	cfg := o.internal()
	if cfg.Dims != 2 || !cfg.ExpireAware || !cfg.AlgsUseExp || cfg.StoreBRExp {
		t.Errorf("core config = %+v", cfg)
	}
	if cfg.BufferPages != 7 || cfg.Beta != 0.25 || cfg.FixedW != 12 || cfg.Seed != 99 {
		t.Errorf("tuning fields lost: %+v", cfg)
	}
	tpr := TPROptions().internal()
	if tpr.ExpireAware || tpr.BRKind != hull.KindConservative {
		t.Errorf("TPR config = %+v", tpr)
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	o := DefaultOptions()
	o.Dims = 9
	if _, err := Open(o); err == nil {
		t.Fatal("dims=9 accepted")
	}
	o = DefaultOptions()
	o.ExpireAware = false
	o.StoreBRExpiration = true
	if _, err := Open(o); err == nil {
		t.Fatal("StoreBRExpiration without ExpireAware accepted")
	}
}
