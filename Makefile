# Makefile — CI entry points for the rexptree repository.
#
#   make check        fmt-check + vet + build + tests + race + bench-obs smoke
#   make bench-obs    metrics-overhead microbenchmark -> BENCH_obs.json
#   make bench-shard  concurrent-throughput comparison -> BENCH_shard.json
#   make all          check + both benchmarks

GO ?= go

.PHONY: all check fmt-check vet build test race bench-obs bench-obs-smoke bench-shard clean

all: check bench-obs bench-shard

check: fmt-check vet build test race bench-obs-smoke

# Fails (with the offending file list) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The instrumentation and the concurrent query path must hold up under
# the race detector: metric counters are read (snapshots, Prometheus
# scrapes) and queries fan out while parallel Update load runs.
race:
	$(GO) test -race ./...

# Compares instrumented vs. nil-metrics Update/query throughput; the
# observability layer's budget is a <2% regression.
bench-obs:
	$(GO) run ./cmd/rexpobsbench -out BENCH_obs.json

# A fast pass of the same benchmark, as a smoke test for make check:
# it exercises the full instrumented workload path without committing
# a result file.
bench-obs-smoke:
	$(GO) run ./cmd/rexpobsbench -scale 0.01 -rounds 1 -out -

# Single-mutex vs RWMutex vs sharded throughput under the modeled
# I/O-bound regime (see cmd/rexpbench/concurrent.go).
bench-shard:
	$(GO) run ./cmd/rexpbench -throughput -shardout BENCH_shard.json

clean:
	rm -f BENCH_obs.json BENCH_shard.json
