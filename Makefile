# Makefile — CI entry points for the rexptree repository.
#
#   make check      vet + build + tests + race-enabled tests
#   make bench-obs  metrics-overhead microbenchmark -> BENCH_obs.json
#   make all        both of the above

GO ?= go

.PHONY: all check vet build test race bench-obs clean

all: check bench-obs

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The new instrumentation must hold up under the race detector: the
# metric counters are read (snapshots, Prometheus scrapes) while
# parallel Update/query load runs.
race:
	$(GO) test -race ./...

# Compares instrumented vs. nil-metrics Update/query throughput; the
# observability layer's budget is a <2% regression.
bench-obs:
	$(GO) run ./cmd/rexpobsbench -out BENCH_obs.json

clean:
	rm -f BENCH_obs.json
