# Makefile — CI entry points for the rexptree repository.
#
#   make check            fmt-check + vet + build + tests + race + bench smokes
#   make bench-obs        metrics-overhead microbenchmark -> BENCH_obs.json
#   make bench-shard      concurrent-throughput comparison -> BENCH_shard.json
#   make bench-partition  hash vs speed partitioning -> BENCH_partition.json
#   make bench-wal        durability-policy comparison -> BENCH_wal.json
#   make bench-read       read-path scaling sweep + regression guard -> BENCH_readpath.json
#   make bench-reshard    live-reshard cost comparison -> BENCH_reshard.json
#   make bench-trace      tracing-overhead microbenchmark -> BENCH_trace.json
#   make serve-smoke      the README serving quickstart, end to end
#   make bench-serve      rexpd + remote loadgen -> BENCH_serve.json
#   make bench-repl       replication catch-up/lag/overhead -> BENCH_repl.json
#   make fault-matrix     the replication fault-injection matrix, under -race
#   make all              check + all benchmarks

GO ?= go

.PHONY: all check fmt-check vet build test race fuzz-smoke bench-obs bench-obs-smoke bench-shard bench-partition bench-partition-smoke bench-wal bench-wal-smoke bench-read bench-read-smoke bench-reshard bench-reshard-smoke bench-trace bench-trace-smoke serve-smoke bench-serve bench-serve-smoke bench-repl bench-repl-smoke fault-matrix clean

all: check bench-obs bench-shard bench-partition bench-wal bench-read bench-reshard bench-trace bench-serve bench-repl

check: fmt-check vet build test race bench-obs-smoke bench-partition-smoke bench-wal-smoke bench-read-smoke bench-reshard-smoke bench-trace-smoke serve-smoke bench-serve-smoke bench-repl-smoke

# Fails (with the offending file list) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The instrumentation and the concurrent query path must hold up under
# the race detector: metric counters are read (snapshots, Prometheus
# scrapes) and queries fan out while parallel Update load runs.
race:
	$(GO) test -race ./...

# A short run of each native fuzz target: the manifest decode/encode
# round trip, the time-parameterized intersection kernel, and the
# write-ahead-log frame scanner (arbitrary bytes must never panic and
# torn tails must only ever drop trailing records).  Ten seconds each
# is enough to shake out regressions in the properties; leave the
# targets running longer locally when hunting.
fuzz-smoke:
	$(GO) test ./internal/manifest -run '^$$' -fuzz FuzzManifestRoundTrip -fuzztime 10s
	$(GO) test ./internal/geom -run '^$$' -fuzz FuzzTrapezoidIntersect -fuzztime 10s
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzWALRoundTrip -fuzztime 10s
	$(GO) test . -run '^$$' -fuzz FuzzDualApplySchedule -fuzztime 10s
	$(GO) test ./internal/repl -run '^$$' -fuzz FuzzReplFrameRoundTrip -fuzztime 10s

# Compares instrumented vs. nil-metrics Update/query throughput; the
# observability layer's budget is a <2% regression.
bench-obs:
	$(GO) run ./cmd/rexpobsbench -out BENCH_obs.json

# A fast pass of the same benchmark, as a smoke test for make check:
# it exercises the full instrumented workload path without committing
# a result file.
bench-obs-smoke:
	$(GO) run ./cmd/rexpobsbench -scale 0.01 -rounds 1 -out -

# Single-mutex vs RWMutex vs sharded throughput under the modeled
# I/O-bound regime (see cmd/rexpbench/concurrent.go).
bench-shard:
	$(GO) run ./cmd/rexpbench -throughput -shardout BENCH_shard.json

# Hash vs speed-band shard partitioning on a spatially-correlated
# mixed-speed workload: shard visits, pruning ratio, query throughput,
# and a result-set equality check (see cmd/rexpbench/partition.go).
bench-partition:
	$(GO) run ./cmd/rexpbench -partitionbench -partout BENCH_partition.json

# A fast pass of the partition comparison for make check: it exercises
# loading, re-routing, pruning and the equality check without
# committing a result file.
bench-partition-smoke:
	$(GO) run ./cmd/rexpbench -partitionbench -objects 2000 -duration 0.2 -quiet -partout -

# Update throughput under each durability policy — none (legacy), WAL
# with batched fsync, WAL with fsync-per-commit — plus the WAL traffic
# each one generates (see cmd/rexpbench/durability.go).
bench-wal:
	$(GO) run ./cmd/rexpbench -durability -walout BENCH_wal.json

# A fast pass of the durability comparison for make check: it exercises
# the WAL append/commit/checkpoint path under all three policies
# without committing a result file.
bench-wal-smoke:
	$(GO) run ./cmd/rexpbench -durability -objects 2000 -duration 0.4 -quiet -walout - >/dev/null

# Read-path scaling: locked (RWMutex) vs snapshot reads across reader
# worker counts, readers-only and mixed with a writer whose per-op
# stall p50/p99 is sampled (see cmd/rexpbench/readscale.go).  The
# -guardmin 0.95 regression guard fails the run if the snapshot path's
# single-threaded throughput drops more than 5% below the locked
# baseline's.
bench-read:
	$(GO) run ./cmd/rexpbench -readscale -iolat 0 -duration 2 -guardmin 0.95 -readout BENCH_readpath.json

# A fast pass of the read-scaling sweep for make check: it exercises
# both read paths, the sharded fan-out and the guard comparison without
# committing a result file.
bench-read-smoke:
	$(GO) run ./cmd/rexpbench -readscale -objects 2000 -duration 0.2 -iolat 0 -readworkers 1,2 -guardmin 0.85 -quiet -readout - >/dev/null

# What an online reshard costs the serving path: the same mixed
# query/update load measured in steady state and again while the index
# live-reshards to a speed-banded layout, plus the cutover's exclusive
# mutation stall (see cmd/rexpbench/livereshard.go and the
# ARCHITECTURE.md "Live reshard" section).
bench-reshard:
	$(GO) run ./cmd/rexpbench -livereshard -objects 20000 -duration 2 -iolat 0 -reshardout BENCH_reshard.json

# A fast pass of the live-reshard comparison for make check: it
# exercises the snapshot scan, dual-apply window, backfill, verify and
# cutover under concurrent load without committing a result file.
bench-reshard-smoke:
	$(GO) run ./cmd/rexpbench -livereshard -objects 3000 -duration 0.3 -iolat 0 -quiet -reshardout - >/dev/null

# Compares tracing-disabled vs tracing-enabled throughput: the
# always-on (recorder off) cost must stay under the same <2% budget as
# the base instrumentation; the flight-recorder-on cost is reported for
# information (see cmd/rexpobsbench/trace.go).
bench-trace:
	$(GO) run ./cmd/rexpobsbench -trace -out BENCH_trace.json

# A fast pass of the tracing benchmark for make check: it exercises the
# traced query/update paths and the flight recorder without committing
# a result file.
bench-trace-smoke:
	$(GO) run ./cmd/rexpobsbench -trace -scale 0.005 -rounds 1 -out - >/dev/null

# The README "Serving" quickstart as a test: rexpgen a workload, serve
# it with rexpd, ingest through rexpbench -remote -replay, query over
# HTTP, scrape /metrics, SIGTERM, assert a clean drain (see
# cmd/rexpd/main_test.go).
serve-smoke:
	$(GO) test ./cmd/rexpd -run 'TestServeSmoke|TestDrainNoAckedLossAcrossProcess' -count 1 -v

# Serving-layer throughput: spawn rexpd, drive concurrent mixed
# update/query HTTP load, SIGTERM it, and record sustained updates/sec
# and query latency percentiles (see cmd/rexpbench/remote.go).
bench-serve: bin/rexpd
	$(GO) run ./cmd/rexpbench -spawn bin/rexpd -objects 20000 -workers 8 -duration 5 -serveout BENCH_serve.json

# A fast pass of the serving bench for make check: it exercises spawn,
# preload, mixed load and the SIGTERM drain without committing a file.
bench-serve-smoke: bin/rexpd
	$(GO) run ./cmd/rexpbench -spawn bin/rexpd -objects 2000 -workers 4 -duration 0.5 -quiet -serveout - >/dev/null

bin/rexpd: FORCE
	@mkdir -p bin
	$(GO) build -o bin/rexpd ./cmd/rexpd

# The replication stream end to end: cold-follower catch-up MB/s,
# steady-state apply lag under a continuous leader update stream, and
# the leader's throughput cost of feeding a tailing follower (see
# cmd/rexpbench/replbench.go).
bench-repl:
	$(GO) run ./cmd/rexpbench -replbench -objects 20000 -duration 2 -replout BENCH_repl.json

# A fast pass of the replication bench for make check: it exercises the
# snapshot stream, bootstrap, tail apply and the lag sampler without
# committing a result file.
bench-repl-smoke:
	$(GO) run ./cmd/rexpbench -replbench -objects 3000 -duration 0.3 -quiet -replout - >/dev/null

# The replication fault-injection matrix under the race detector:
# follower/leader crashes at every stage of the stream, torn wire
# frames, disconnect storms, retention overruns and concurrent reads
# during tail apply — each must end fingerprint-identical to the leader
# or fail loudly (see internal/repl/e2e_test.go).
fault-matrix:
	$(GO) test -race ./internal/repl -run 'TestRepl' -count 1

FORCE:

clean:
	rm -f BENCH_obs.json BENCH_shard.json BENCH_partition.json BENCH_wal.json BENCH_readpath.json BENCH_reshard.json BENCH_trace.json BENCH_serve.json BENCH_repl.json
	rm -rf bin
