package rexptree

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/obs"
)

// TraceSpan is one timed phase of a traced operation.  Spans form a
// tree through Parent (an index into QueryTrace.Spans, -1 for roots);
// Start is the offset from the operation's start.  The span taxonomy
// is documented in docs/TRACING.md: route, shard, queue-wait,
// lock-wait (or epoch-pin on the snapshot read path), traverse, merge
// for queries; lock-wait, apply, version-publish, wal-append,
// wal-fsync, checkpoint for mutations; analyze, truncate-tail,
// reapply-images, open-base, rebuild-records, replay, checkpoint for
// recovery.  Traverse spans additionally carry the traversal's node and
// page accounting.
type TraceSpan struct {
	Parent    int           `json:"parent"`          // index of the parent span; -1 for roots
	Phase     string        `json:"phase"`           // span name, see docs/TRACING.md
	Shard     int           `json:"shard"`           // shard the span ran on; -1 when not shard-specific
	Start     time.Duration `json:"start_ns"`        // offset from the operation's start
	Duration  time.Duration `json:"duration_ns"`     // span length
	Nodes     uint64        `json:"nodes,omitempty"` // traverse spans: nodes visited
	Leaves    uint64        `json:"leaves,omitempty"`
	PageReads uint64        `json:"page_reads,omitempty"` // buffer misses that read the store
	PageHits  uint64        `json:"page_hits,omitempty"`  // page requests served by the buffer
	Results   int           `json:"results,omitempty"`
}

// ShardTrace is one row of a sharded query's pruning table: what the
// front end decided about the shard and, when it was visited, what the
// visit cost.
type ShardTrace struct {
	Shard   int    `json:"shard"`
	Band    string `json:"band,omitempty"` // speed band "[lo, hi)" under PartitionSpeed
	Visited bool   `json:"visited"`
	// Reason explains the decision: "match" (summary intersects the
	// query), "summary-pruned", "empty" (provably empty shard), or
	// "distance-pruned" (nearest: bound beyond the k-th candidate).
	Reason    string        `json:"reason"`
	Results   int           `json:"results"`
	Nodes     uint64        `json:"nodes"`
	Leaves    uint64        `json:"leaves"`
	PageReads uint64        `json:"page_reads"`
	PageHits  uint64        `json:"page_hits"`
	Duration  time.Duration `json:"duration_ns"`
}

// QueryTrace is the structured execution trace of one operation: the
// span tree, and for sharded queries the per-shard pruning table.  It
// is the EXPLAIN result of the Trace* methods and the unit retained by
// the flight recorder.  A trace is immutable once returned; JSON
// encodes it for the /debug/rexp/traces endpoint and Text renders it
// for humans.
type QueryTrace struct {
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Results  int           `json:"results"`
	Error    string        `json:"error,omitempty"`
	Shards   []ShardTrace  `json:"shards,omitempty"`
	Spans    []TraceSpan   `json:"spans"`
}

func newTrace(op string) *QueryTrace {
	return &QueryTrace{Op: op, Start: time.Now()}
}

// begin appends a span starting now and returns its index (-1 on a nil
// trace — the untraced fast path costs one pointer test).  Not safe
// for concurrent use: concurrent writers (the query fan-out) must have
// their spans preallocated with begin before the goroutines start and
// then only touch their own indexes via startAt/endAt.
func (t *QueryTrace) begin(parent int, phase string, shard int) int {
	if t == nil {
		return -1
	}
	t.Spans = append(t.Spans, TraceSpan{
		Parent: parent,
		Phase:  phase,
		Shard:  shard,
		Start:  time.Since(t.Start),
	})
	return len(t.Spans) - 1
}

// startAt re-stamps span i's start to now.
func (t *QueryTrace) startAt(i int) {
	if t == nil || i < 0 {
		return
	}
	t.Spans[i].Start = time.Since(t.Start)
}

// endAt closes span i, setting its duration.
func (t *QueryTrace) endAt(i int) {
	if t == nil || i < 0 {
		return
	}
	sp := &t.Spans[i]
	sp.Duration = time.Since(t.Start) - sp.Start
}

// setEpochPin rewrites preallocated span i as the snapshot read
// path's "epoch-pin" span: queries on that path never wait for the
// tree lock, so the slot reserved for lock-wait reports the measured
// epoch pin cost instead.  The span shares the traversal's start (the
// pin is its first act) and lasts the pin time recorded in TravStats.
func (t *QueryTrace) setEpochPin(i, travIdx int, pinNanos int64) {
	if t == nil || i < 0 {
		return
	}
	sp := &t.Spans[i]
	sp.Phase = "epoch-pin"
	if travIdx >= 0 {
		sp.Start = t.Spans[travIdx].Start
	}
	sp.Duration = time.Duration(pinNanos)
}

// addMeasured appends a root span whose length was measured elsewhere
// (e.g. the writer's snapshot version-publish, timed inside the core):
// it ends now and extends back by the measured duration.
func (t *QueryTrace) addMeasured(phase string, nanos int64) {
	if t == nil || nanos <= 0 {
		return
	}
	d := time.Duration(nanos)
	t.Spans = append(t.Spans, TraceSpan{
		Parent:   -1,
		Phase:    phase,
		Shard:    -1,
		Start:    time.Since(t.Start) - d,
		Duration: d,
	})
}

// setTrav attaches a traversal's node and page accounting to span i.
func (t *QueryTrace) setTrav(i int, st core.TravStats, results int) {
	if t == nil || i < 0 {
		return
	}
	sp := &t.Spans[i]
	sp.Nodes, sp.Leaves = st.Nodes, st.Leaves
	sp.PageReads, sp.PageHits = st.Reads, st.Hits
	sp.Results = results
}

// finishRecord seals the trace and hands it to the flight recorder
// (when one is attached).  Nil-safe on both the trace and recorder.
func (t *QueryTrace) finishRecord(rec *obs.Recorder, results int, d time.Duration, err error) {
	if t == nil {
		return
	}
	t.Duration = d
	t.Results = results
	if err != nil {
		t.Error = err.Error()
	}
	if rec != nil {
		rec.Record(t, d)
	}
}

// JSON returns the trace as indented JSON (durations in nanoseconds,
// as served by /debug/rexp/traces).
func (t *QueryTrace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Text renders the trace for humans: a header line, the per-shard
// pruning table (sharded queries), and the indented span tree.
func (t *QueryTrace) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v", t.Op, t.Duration)
	if t.Error != "" {
		fmt.Fprintf(&b, ", error: %s", t.Error)
	} else {
		fmt.Fprintf(&b, ", %d results", t.Results)
	}
	b.WriteByte('\n')

	if len(t.Shards) > 0 {
		visited := 0
		for _, st := range t.Shards {
			if st.Visited {
				visited++
			}
		}
		fmt.Fprintf(&b, "  shards: %d/%d visited\n", visited, len(t.Shards))
		for _, st := range t.Shards {
			fmt.Fprintf(&b, "    shard %d", st.Shard)
			if st.Band != "" {
				fmt.Fprintf(&b, " %s", st.Band)
			}
			if !st.Visited {
				fmt.Fprintf(&b, ": %s\n", st.Reason)
				continue
			}
			fmt.Fprintf(&b, ": %d results, %d nodes, %d leaf entries, %d reads, %d cached, %v\n",
				st.Results, st.Nodes, st.Leaves, st.PageReads, st.PageHits, st.Duration)
		}
	}

	if len(t.Spans) > 0 {
		b.WriteString("  spans:\n")
		children := make([][]int, len(t.Spans))
		var roots []int
		for i := range t.Spans {
			if p := t.Spans[i].Parent; p >= 0 && p < len(t.Spans) {
				children[p] = append(children[p], i)
			} else {
				roots = append(roots, i)
			}
		}
		var walk func(i, depth int)
		walk = func(i, depth int) {
			sp := &t.Spans[i]
			label := sp.Phase
			if sp.Shard >= 0 {
				label = fmt.Sprintf("%s [shard %d]", sp.Phase, sp.Shard)
			}
			fmt.Fprintf(&b, "    %s%-24s %v", strings.Repeat("  ", depth), label, sp.Duration)
			if sp.Nodes > 0 || sp.Leaves > 0 || sp.PageReads > 0 || sp.PageHits > 0 {
				fmt.Fprintf(&b, "  nodes=%d leaves=%d reads=%d cached=%d results=%d",
					sp.Nodes, sp.Leaves, sp.PageReads, sp.PageHits, sp.Results)
			}
			b.WriteByte('\n')
			for _, c := range children[i] {
				walk(c, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 0)
		}
	}
	return b.String()
}

// newRecorder builds the flight recorder configured in opts (nil when
// disabled).  The slow threshold defaults to SlowOpThreshold when set,
// else 10ms.
func newRecorder(opts Options) *obs.Recorder {
	if opts.FlightRecorder <= 0 {
		return nil
	}
	slow := opts.FlightSlowThreshold
	if slow <= 0 {
		slow = opts.SlowOpThreshold
	}
	if slow <= 0 {
		slow = 10 * time.Millisecond
	}
	return obs.NewRecorder(opts.FlightRecorder, slow)
}

// convTraces converts a recorder snapshot back to traces.
func convTraces(vs []any) []*QueryTrace {
	out := make([]*QueryTrace, 0, len(vs))
	for _, v := range vs {
		if t, ok := v.(*QueryTrace); ok {
			out = append(out, t)
		}
	}
	return out
}

// traceHandler serves a recorder's retained traces as JSON.
func traceHandler(rec *obs.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if rec == nil {
			w.Write([]byte(`{"enabled":false,"recent":[],"slow":[]}` + "\n"))
			return
		}
		recent, slow := rec.Snapshot()
		resp := struct {
			Enabled       bool          `json:"enabled"`
			SlowThreshold int64         `json:"slow_threshold_ns"`
			Recent        []*QueryTrace `json:"recent"`
			Slow          []*QueryTrace `json:"slow"`
		}{true, int64(rec.SlowThreshold()), convTraces(recent), convTraces(slow)}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// ---------------------------------------------------------------------
// Tree EXPLAIN API.

// TraceWindow runs Window and returns its execution trace alongside
// the results.  The traversal and results are identical to Window (the
// trace only observes); the operation is observed in the metrics and
// flight recorder like any other.
func (tr *Tree) TraceWindow(r Rect, t1, t2, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("window")
	start := time.Now()
	res, err := tr.windowTraced(r, t1, t2, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpWindow, d, err)
	tc.finishRecord(tr.rec, len(res), d, err)
	return res, tc, err
}

// TraceTimeslice runs Timeslice and returns its execution trace; see
// TraceWindow.
func (tr *Tree) TraceTimeslice(r Rect, at, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("timeslice")
	start := time.Now()
	res, err := tr.timesliceTraced(r, at, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpTimeslice, d, err)
	tc.finishRecord(tr.rec, len(res), d, err)
	return res, tc, err
}

// TraceMoving runs Moving and returns its execution trace; see
// TraceWindow.
func (tr *Tree) TraceMoving(r1, r2 Rect, t1, t2, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("moving")
	start := time.Now()
	res, err := tr.movingTraced(r1, r2, t1, t2, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpMoving, d, err)
	tc.finishRecord(tr.rec, len(res), d, err)
	return res, tc, err
}

// TraceNearest runs Nearest and returns its execution trace; see
// TraceWindow.
func (tr *Tree) TraceNearest(pos Vec, at float64, k int, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("nearest")
	start := time.Now()
	res, err := tr.nearestTraced(pos, at, k, now, tc)
	d := time.Since(start)
	tr.m.ObserveOp(obs.OpNearest, d, err)
	tc.finishRecord(tr.rec, len(res), d, err)
	return res, tc, err
}

func (tr *Tree) windowTraced(r Rect, t1, t2, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkWindow(t1, t2, now); err != nil {
		return nil, err
	}
	li := tc.begin(-1, "lock-wait", -1)
	ti := tc.begin(-1, "traverse", -1)
	return tr.searchSpansAt(geom.Window(toRect(r), t1, t2), now, tc, li, ti)
}

func (tr *Tree) timesliceTraced(r Rect, at, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	li := tc.begin(-1, "lock-wait", -1)
	ti := tc.begin(-1, "traverse", -1)
	return tr.searchSpansAt(geom.Timeslice(toRect(r), at), now, tc, li, ti)
}

func (tr *Tree) movingTraced(r1, r2 Rect, t1, t2, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkMoving(t1, t2, now); err != nil {
		return nil, err
	}
	li := tc.begin(-1, "lock-wait", -1)
	ti := tc.begin(-1, "traverse", -1)
	return tr.searchSpansAt(geom.Moving(toRect(r1), toRect(r2), t1, t2, tr.dims), now, tc, li, ti)
}

func (tr *Tree) nearestTraced(pos Vec, at float64, k int, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	li := tc.begin(-1, "lock-wait", -1)
	ti := tc.begin(-1, "traverse", -1)
	return tr.nearestSpansAt(pos, at, k, now, tc, li, ti)
}

// searchSpansAt runs one search, timing the lock wait and traversal
// into the preallocated spans lockIdx and travIdx (so concurrent shard
// goroutines never append to the shared trace).  The traversal and
// result conversion are identical to the untraced search.
func (tr *Tree) searchSpansAt(q geom.Query, now float64, tc *QueryTrace, lockIdx, travIdx int) ([]Result, error) {
	var (
		rs  []core.Result
		err error
		st  core.TravStats
	)
	if tr.snapshotReads() {
		tc.startAt(travIdx)
		rs, err = tr.t.SearchSnapStats(q, now, &st)
		tc.endAt(travIdx)
		tc.setEpochPin(lockIdx, travIdx, st.PinNanos)
	} else {
		tc.startAt(lockIdx)
		tr.rlock()
		tc.endAt(lockIdx)
		defer tr.mu.RUnlock()
		tc.startAt(travIdx)
		rs, err = tr.t.SearchStats(q, now, &st)
		tc.endAt(travIdx)
	}
	tc.setTrav(travIdx, st, len(rs))
	if err != nil {
		return nil, err
	}
	return fromResults(rs, now, tr.dims), nil
}

// nearestSpansAt is searchSpansAt for the nearest-neighbor traversal.
// The caller must have validated the query time.
func (tr *Tree) nearestSpansAt(pos Vec, at float64, k int, now float64, tc *QueryTrace, lockIdx, travIdx int) ([]Result, error) {
	var (
		rs  []core.Result
		err error
		st  core.TravStats
	)
	if tr.snapshotReads() {
		tc.startAt(travIdx)
		rs, err = tr.t.NearestSnapStats(geom.Vec(pos), at, k, now, &st)
		tc.endAt(travIdx)
		tc.setEpochPin(lockIdx, travIdx, st.PinNanos)
	} else {
		tc.startAt(lockIdx)
		tr.rlock()
		tc.endAt(lockIdx)
		defer tr.mu.RUnlock()
		tc.startAt(travIdx)
		rs, err = tr.t.NearestStats(geom.Vec(pos), at, k, now, &st)
		tc.endAt(travIdx)
	}
	tc.setTrav(travIdx, st, len(rs))
	if err != nil {
		return nil, err
	}
	return fromResults(rs, now, tr.dims), nil
}

// Traces returns the flight recorder's retained traces, newest first.
// Both slices are nil when the recorder is disabled
// (Options.FlightRecorder == 0).
func (tr *Tree) Traces() (recent, slow []*QueryTrace) {
	if tr.rec == nil {
		return nil, nil
	}
	r, s := tr.rec.Snapshot()
	return convTraces(r), convTraces(s)
}

// TraceHandler returns an http.Handler serving the flight recorder's
// retained traces as JSON, for mounting at /debug/rexp/traces next to
// MetricsHandler.
func (tr *Tree) TraceHandler() http.Handler {
	return traceHandler(tr.rec)
}

// ---------------------------------------------------------------------
// ShardedTree EXPLAIN API.

// TraceWindow runs Window across the shards and returns the execution
// trace: the per-shard pruning table and the span tree covering
// routing, per-shard queue wait, lock wait and traversal, and the
// result merge.  Results are identical to Window.
func (s *ShardedTree) TraceWindow(r Rect, t1, t2, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("window")
	start := time.Now()
	res, err := s.windowTraced(r, t1, t2, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpWindow, d, err)
	tc.finishRecord(s.rec, len(res), d, err)
	return res, tc, err
}

// TraceTimeslice runs Timeslice across the shards and returns the
// execution trace; see TraceWindow.
func (s *ShardedTree) TraceTimeslice(r Rect, at, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("timeslice")
	start := time.Now()
	res, err := s.timesliceTraced(r, at, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpTimeslice, d, err)
	tc.finishRecord(s.rec, len(res), d, err)
	return res, tc, err
}

// TraceMoving runs Moving across the shards and returns the execution
// trace; see TraceWindow.
func (s *ShardedTree) TraceMoving(r1, r2 Rect, t1, t2, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("moving")
	start := time.Now()
	res, err := s.movingTraced(r1, r2, t1, t2, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpMoving, d, err)
	tc.finishRecord(s.rec, len(res), d, err)
	return res, tc, err
}

// TraceNearest runs Nearest across the shards and returns the
// execution trace; the pruning table records the distance-ordered
// visits and prunes.  See TraceWindow.
func (s *ShardedTree) TraceNearest(pos Vec, at float64, k int, now float64) ([]Result, *QueryTrace, error) {
	tc := newTrace("nearest")
	start := time.Now()
	res, err := s.nearestTraced(pos, at, k, now, tc)
	d := time.Since(start)
	s.m.ObserveOp(obs.OpNearest, d, err)
	tc.finishRecord(s.rec, len(res), d, err)
	return res, tc, err
}

func (s *ShardedTree) windowTraced(r Rect, t1, t2, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkWindow(t1, t2, now); err != nil {
		return nil, err
	}
	q := geom.Window(toRect(r), t1, t2)
	return s.queryTraced(q, obs.OpWindow, tc, func(t *Tree, li, ti int) ([]Result, error) {
		return t.searchSpansAt(q, now, tc, li, ti)
	})
}

func (s *ShardedTree) timesliceTraced(r Rect, at, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	q := geom.Timeslice(toRect(r), at)
	return s.queryTraced(q, obs.OpTimeslice, tc, func(t *Tree, li, ti int) ([]Result, error) {
		return t.searchSpansAt(q, now, tc, li, ti)
	})
}

func (s *ShardedTree) movingTraced(r1, r2 Rect, t1, t2, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkMoving(t1, t2, now); err != nil {
		return nil, err
	}
	q := geom.Moving(toRect(r1), toRect(r2), t1, t2, s.dims)
	return s.queryTraced(q, obs.OpMoving, tc, func(t *Tree, li, ti int) ([]Result, error) {
		return t.searchSpansAt(q, now, tc, li, ti)
	})
}

// queryTraced is the traced counterpart of query: same routing, prune
// accounting, fan-out and deterministic merge, with the decisions and
// timings recorded into tc.  Each visited shard's span block (shard,
// queue-wait, lock-wait, traverse) is preallocated before the fan-out
// so the goroutines only write their own slots.  Per-shard operation
// metrics are observed like the untraced path (which calls the shard's
// public method).
func (s *ShardedTree) queryTraced(q geom.Query, op obs.Op, tc *QueryTrace, run func(t *Tree, lockIdx, travIdx int) ([]Result, error)) ([]Result, error) {
	g := s.pin()
	defer g.unpin()
	ri := tc.begin(-1, "route", -1)
	visit := make([]bool, len(g.shards))
	var visits, pruned uint64
	tc.Shards = make([]ShardTrace, len(g.shards))
	for i := range g.shards {
		st := &tc.Shards[i]
		st.Shard = i
		st.Band = s.bandLabel(g, i)
		if s.shardMatches(g, i, q) {
			visit[i] = true
			visits++
			st.Visited = true
			st.Reason = "match"
		} else {
			st.Reason = "summary-pruned"
		}
	}
	pruned = uint64(len(g.shards)) - visits
	tc.endAt(ri)
	s.m.ShardVisits.Add(visits)
	s.m.ShardsPruned.Add(pruned)

	type spanBlock struct{ shard, queue, lock, trav int }
	blocks := make([]spanBlock, len(g.shards))
	for i := range g.shards {
		if !visit[i] {
			blocks[i] = spanBlock{-1, -1, -1, -1}
			continue
		}
		sh := tc.begin(-1, "shard", i)
		blocks[i] = spanBlock{
			shard: sh,
			queue: tc.begin(sh, "queue-wait", i),
			lock:  tc.begin(sh, "lock-wait", i),
			trav:  tc.begin(sh, "traverse", i),
		}
	}

	parts := make([][]Result, len(g.shards))
	var wg sync.WaitGroup
	errs := make([]error, len(g.shards))
	for i, t := range g.shards {
		if !visit[i] {
			continue
		}
		wg.Add(1)
		go func(i int, t *Tree) {
			defer wg.Done()
			opStart := time.Now()
			b := blocks[i]
			tc.startAt(b.queue)
			qs := time.Now()
			s.sem <- struct{}{}
			s.m.ObservePhase(obs.PhaseQueueWait, time.Since(qs))
			tc.endAt(b.queue)
			defer func() { <-s.sem }()
			rs, err := run(t, b.lock, b.trav)
			parts[i] = rs
			errs[i] = err
			tc.endAt(b.shard)
			t.m.ObserveOp(op, time.Since(opStart), err)
		}(i, t)
	}
	wg.Wait()

	for i := range g.shards {
		if !visit[i] {
			continue
		}
		st := &tc.Shards[i]
		sp := &tc.Spans[blocks[i].trav]
		st.Nodes, st.Leaves = sp.Nodes, sp.Leaves
		st.PageReads, st.PageHits = sp.PageReads, sp.PageHits
		st.Results = len(parts[i])
		st.Duration = tc.Spans[blocks[i].shard].Duration
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	mi := tc.begin(-1, "merge", -1)
	ms := time.Now()
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Result, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	s.m.ObservePhase(obs.PhaseMerge, time.Since(ms))
	tc.endAt(mi)
	return out, nil
}

// nearestTraced mirrors nearest with the distance-ordered visits and
// prunes recorded into tc.  The visits are sequential, so spans append
// freely.
func (s *ShardedTree) nearestTraced(pos Vec, at float64, k int, now float64, tc *QueryTrace) ([]Result, error) {
	if err := checkTimeslice(at, now); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	g := s.pin()
	defer g.unpin()
	ri := tc.begin(-1, "route", -1)
	type shardDist struct {
		i   int
		d   float64
		has bool
	}
	ord := make([]shardDist, len(g.shards))
	for i := range g.shards {
		d, has := s.shardMinDist(g, i, pos, at)
		ord[i] = shardDist{i, d, has}
	}
	sort.Slice(ord, func(a, b int) bool {
		if ord[a].d != ord[b].d {
			return ord[a].d < ord[b].d
		}
		return ord[a].i < ord[b].i
	})
	tc.Shards = make([]ShardTrace, len(g.shards))
	for i := range g.shards {
		tc.Shards[i] = ShardTrace{Shard: i, Band: s.bandLabel(g, i)}
	}
	tc.endAt(ri)

	type cand struct {
		dist float64
		r    Result
	}
	var cands []cand
	var visits, pruned uint64
	for idx, o := range ord {
		if !o.has || (len(cands) >= k && o.d > cands[k-1].dist) {
			for _, rest := range ord[idx:] {
				st := &tc.Shards[rest.i]
				if rest.has {
					st.Reason = "distance-pruned"
				} else {
					st.Reason = "empty"
				}
			}
			pruned += uint64(len(ord) - idx)
			break
		}
		visits++
		st := &tc.Shards[o.i]
		st.Visited = true
		st.Reason = "match"
		sh := tc.begin(-1, "shard", o.i)
		li := tc.begin(sh, "lock-wait", o.i)
		ti := tc.begin(sh, "traverse", o.i)
		opStart := time.Now()
		rs, err := g.shards[o.i].nearestSpansAt(pos, at, k, now, tc, li, ti)
		g.shards[o.i].m.ObserveOp(obs.OpNearest, time.Since(opStart), err)
		tc.endAt(sh)
		sp := &tc.Spans[ti]
		st.Nodes, st.Leaves = sp.Nodes, sp.Leaves
		st.PageReads, st.PageHits = sp.PageReads, sp.PageHits
		st.Results = len(rs)
		st.Duration = tc.Spans[sh].Duration
		if err != nil {
			s.m.ShardVisits.Add(visits)
			s.m.ShardsPruned.Add(pruned)
			return nil, err
		}
		for _, r := range rs {
			p := r.Point.At(at)
			var d float64
			for j := 0; j < s.dims; j++ {
				dd := p[j] - pos[j]
				d += dd * dd
			}
			cands = append(cands, cand{math.Sqrt(d), r})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			return cands[a].r.ID < cands[b].r.ID
		})
		if len(cands) > k {
			cands = cands[:k]
		}
	}
	s.m.ShardVisits.Add(visits)
	s.m.ShardsPruned.Add(pruned)
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out, nil
}

// Traces returns the sharded front end's flight-recorder traces,
// newest first; see Tree.Traces.  (Each shard additionally records its
// own operations when the recorder is enabled; this is the fan-out
// view.)
func (s *ShardedTree) Traces() (recent, slow []*QueryTrace) {
	if s.rec == nil {
		return nil, nil
	}
	r, sl := s.rec.Snapshot()
	return convTraces(r), convTraces(sl)
}

// TraceHandler returns an http.Handler serving the front end's flight
// recorder as JSON, for mounting at /debug/rexp/traces.
func (s *ShardedTree) TraceHandler() http.Handler {
	return traceHandler(s.rec)
}
