package rexptree

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func TestOpenBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := make([]BulkObject, 3000)
	for i := range objs {
		objs[i] = BulkObject{
			ID: uint32(i),
			Point: Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
				Time:    0,
				Expires: 200,
			},
		}
	}
	tr, err := OpenBulk(DefaultOptions(), objs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Len() != 3000 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Object table is usable: updates and deletes work immediately.
	if _, ok := tr.Get(7, 1); !ok {
		t.Fatal("Get after bulk load failed")
	}
	if found, err := tr.Delete(7, 1); err != nil || !found {
		t.Fatalf("delete after bulk load: %v %v", found, err)
	}
	if err := tr.Update(7, objs[7].Point, 1); err != nil {
		t.Fatal(err)
	}
	// Queries see the whole population (a few objects drift past the
	// world edge by t=1, so query a padded box).
	res, err := tr.Timeslice(Rect{Lo: Vec{-10, -10}, Hi: Vec{1010, 1010}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3000 {
		t.Fatalf("whole-space query: %d", len(res))
	}
}

func TestOpenBulkFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bulk.db")
	opts := DefaultOptions()
	opts.Path = path
	objs := []BulkObject{{ID: 1, Point: Point{Pos: Vec{5, 5}, Expires: NoExpiry()}}}
	tr, err := OpenBulk(opts, objs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopens like any other index.
	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("reopened len = %d", re.Len())
	}
	// Refusing to clobber an existing file.
	if _, err := OpenBulk(opts, objs, 0); err == nil {
		t.Fatal("OpenBulk overwrote an existing file")
	}
}
