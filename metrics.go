package rexptree

import (
	"io"
	"net/http"
	"time"

	"rexptree/internal/obs"
)

// NumOps is the number of instrumented public operations (Update,
// Delete, Timeslice, Window, Moving, Nearest).
const NumOps = int(obs.NumOps)

// numBuckets mirrors the fixed latency-histogram bucket count of
// internal/obs: len(LatencyBucketBounds()) finite bounds plus one
// overflow bucket.
const numBuckets = obs.NumBuckets

// LatencyBucketBounds returns the upper bounds, in seconds, of the
// finite latency-histogram buckets; the last bucket of OpMetrics is
// the overflow (+Inf) bucket.
func LatencyBucketBounds() []float64 { return obs.Bounds() }

// OpMetrics is the frozen latency state of one public operation.
type OpMetrics struct {
	Op           string  // operation name: update, delete, timeslice, window, moving, nearest
	Count        uint64  // completed calls
	Errors       uint64  // calls that returned an error
	TotalSeconds float64 // summed latency
	// Buckets holds per-bucket (non-cumulative) latency counts; bucket
	// i covers latencies up to LatencyBucketBounds()[i], the last
	// bucket everything slower.
	Buckets [numBuckets]uint64
}

// Mean returns the mean latency in seconds (0 before any call).
func (o OpMetrics) Mean() float64 {
	if o.Count == 0 {
		return 0
	}
	return o.TotalSeconds / float64(o.Count)
}

// Sub returns the activity since the earlier snapshot prev.
func (o OpMetrics) Sub(prev OpMetrics) OpMetrics {
	d := o
	d.Count -= prev.Count
	d.Errors -= prev.Errors
	d.TotalSeconds -= prev.TotalSeconds
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
	}
	return d
}

// Metrics is a consistent snapshot of the tree's instrumentation,
// from the buffer pool up to the public API.  Counters are cumulative
// since Open; Sub turns two snapshots into the activity between them.
// Each counter's paper section reference is listed in the README's
// Observability table.
type Metrics struct {
	// Structure gauges (current values).
	Height          int     // tree levels
	Pages           int     // allocated pages (index size, Figure 15)
	LeafEntries     int     // stored leaf entries, live plus unpurged expired
	BufferResident  int     // buffered pages
	BufferPoolPages int     // buffer pool page capacity (sum over shards when sharded)
	UIEstimate      float64 // self-tuned update-interval estimate (§4.2.3)
	Horizon         float64 // time horizon H = UI + W (§4.2.1)

	// Speed-band envelope of a speed-partitioned ShardedTree: the
	// [lower, upper) |velocity| range covered by the shards' bands (the
	// upper bound is +Inf for the fastest band).  Zero on a stand-alone
	// tree or under hash partitioning.
	SpeedBandLo float64
	SpeedBandHi float64

	// Buffer-pool counters (§5.1).
	BufferReads           uint64 // pages read from the store (misses)
	BufferWrites          uint64 // pages written to the store
	BufferHits            uint64 // requests served from the buffer
	BufferEvictions       uint64 // frames evicted by LRU replacement
	BufferDirtyWritebacks uint64 // evictions that wrote the frame back
	BufferLockFreeHits    uint64 // buffer hits served without taking the pool mutex
	FaultTrips            uint64 // injected storage faults that fired

	// Snapshot read-path counters (zero under Options.LockedReads).
	EpochPins               uint64 // epochs pinned by snapshot traversals
	SnapshotNodeHits        uint64 // node lookups served lock-free from version chains
	SnapshotNodeMisses      uint64 // snapshot lookups that fell back through the buffer pool
	SnapshotPublishes       uint64 // snapshot publications (atomic root/version swaps)
	SnapshotVersionsTrimmed uint64 // retired page versions reclaimed by the writer

	// Structural counters.
	ChooseSubtreeDescents   uint64 // ChooseSubtree steps, one per level (§4.2.2)
	QueryNodeVisits         uint64 // nodes visited by queries
	QueryLeafEntriesScanned uint64 // leaf entries examined by queries
	Splits                  uint64 // node splits (§4.2.2)
	ForcedReinserts         uint64 // forced-reinsertion rounds (§4.2.2)
	Condenses               uint64 // underflowing nodes dissolved (§4.3)
	OrphansReinserted       uint64 // entries placed back via the orphan list (§4.3)
	ExpiredPurged           uint64 // expired leaf entries lazily purged (§4.3)
	SubtreesFreed           uint64 // expired internal subtrees deallocated (§4.3)

	// BatchedUpdates counts individual reports applied through
	// UpdateBatch (each batch also counts once under the update_batch
	// operation in Ops).
	BatchedUpdates uint64

	// Sharded front-end counters (zero on a stand-alone tree).
	ShardVisits  uint64 // shards actually searched by front-end queries
	ShardsPruned uint64 // shards skipped because the query missed their summary
	Rerouted     uint64 // objects moved between shards on a speed-band change

	// Live-reshard counters and drift gauges (zero on a stand-alone
	// tree, or before any live reshard / drift measurement).
	ReshardRuns        uint64  // live reshards completed (cut over to a new generation)
	ReshardDualApplied uint64  // mutations mirrored into an in-flight target generation
	ReshardBackfilled  uint64  // snapshot records copied into the target generation
	ReshardSkew        float64 // routing skew last measured by the drift detector
	ReshardChurn       float64 // re-route churn last measured by the drift detector

	// ReshardCutoverStall records the exclusive mutation stall taken
	// by each live-reshard cutover.
	ReshardCutoverStall LatencyMetrics

	// Durability counters (zero under DurabilityNone).
	WALAppends             uint64 // logical records appended to the write-ahead log
	WALBytes               uint64 // bytes appended to the WAL, including checkpoint images
	WALFsyncs              uint64 // fsyncs issued on the WAL file
	Checkpoints            uint64 // checkpoints completed
	RecoveryReplayed       uint64 // logical WAL records replayed during recovery
	RecoveryDroppedExpired uint64 // replayed inserts skipped as already expired
	ChecksumFailures       uint64 // page or superblock checksum mismatches detected

	// RecoveryDuration records the wall-clock time of each recovery
	// pass run by Open/OpenSharded after an unclean shutdown.
	RecoveryDuration LatencyMetrics

	// Lock-wait histograms: how long public operations blocked before
	// acquiring the tree's shared (read) or exclusive (write) lock.
	LockWaitRead  LatencyMetrics
	LockWaitWrite LatencyMetrics

	// Ops holds the per-operation latency histograms in the fixed
	// order update, delete, timeslice, window, moving, nearest,
	// update_batch.
	Ops [NumOps]OpMetrics
}

// LatencyMetrics is a frozen latency histogram without an operation
// identity (used for the lock-wait instruments).
type LatencyMetrics struct {
	Count        uint64  // recorded waits
	TotalSeconds float64 // summed wait time
	// Buckets holds per-bucket (non-cumulative) counts over the same
	// bounds as LatencyBucketBounds.
	Buckets [numBuckets]uint64
}

// Mean returns the mean wait in seconds (0 before any observation).
func (l LatencyMetrics) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.TotalSeconds / float64(l.Count)
}

// Sub returns the activity since the earlier snapshot prev.
func (l LatencyMetrics) Sub(prev LatencyMetrics) LatencyMetrics {
	d := l
	d.Count -= prev.Count
	d.TotalSeconds -= prev.TotalSeconds
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
	}
	return d
}

// Sub returns the activity between the earlier snapshot prev and m:
// counters and histograms are subtracted, while the gauges keep m's
// (current) values.
func (m Metrics) Sub(prev Metrics) Metrics {
	d := m
	d.BufferReads -= prev.BufferReads
	d.BufferWrites -= prev.BufferWrites
	d.BufferHits -= prev.BufferHits
	d.BufferEvictions -= prev.BufferEvictions
	d.BufferDirtyWritebacks -= prev.BufferDirtyWritebacks
	d.BufferLockFreeHits -= prev.BufferLockFreeHits
	d.FaultTrips -= prev.FaultTrips
	d.EpochPins -= prev.EpochPins
	d.SnapshotNodeHits -= prev.SnapshotNodeHits
	d.SnapshotNodeMisses -= prev.SnapshotNodeMisses
	d.SnapshotPublishes -= prev.SnapshotPublishes
	d.SnapshotVersionsTrimmed -= prev.SnapshotVersionsTrimmed
	d.ChooseSubtreeDescents -= prev.ChooseSubtreeDescents
	d.QueryNodeVisits -= prev.QueryNodeVisits
	d.QueryLeafEntriesScanned -= prev.QueryLeafEntriesScanned
	d.Splits -= prev.Splits
	d.ForcedReinserts -= prev.ForcedReinserts
	d.Condenses -= prev.Condenses
	d.OrphansReinserted -= prev.OrphansReinserted
	d.ExpiredPurged -= prev.ExpiredPurged
	d.SubtreesFreed -= prev.SubtreesFreed
	d.BatchedUpdates -= prev.BatchedUpdates
	d.ShardVisits -= prev.ShardVisits
	d.ShardsPruned -= prev.ShardsPruned
	d.Rerouted -= prev.Rerouted
	d.ReshardRuns -= prev.ReshardRuns
	d.ReshardDualApplied -= prev.ReshardDualApplied
	d.ReshardBackfilled -= prev.ReshardBackfilled
	d.ReshardCutoverStall = m.ReshardCutoverStall.Sub(prev.ReshardCutoverStall)
	d.WALAppends -= prev.WALAppends
	d.WALBytes -= prev.WALBytes
	d.WALFsyncs -= prev.WALFsyncs
	d.Checkpoints -= prev.Checkpoints
	d.RecoveryReplayed -= prev.RecoveryReplayed
	d.RecoveryDroppedExpired -= prev.RecoveryDroppedExpired
	d.ChecksumFailures -= prev.ChecksumFailures
	d.RecoveryDuration = m.RecoveryDuration.Sub(prev.RecoveryDuration)
	d.LockWaitRead = m.LockWaitRead.Sub(prev.LockWaitRead)
	d.LockWaitWrite = m.LockWaitWrite.Sub(prev.LockWaitWrite)
	for i := range d.Ops {
		d.Ops[i] = m.Ops[i].Sub(prev.Ops[i])
	}
	return d
}

// Op returns the metrics of the named operation (update, delete,
// timeslice, window, moving, nearest); ok is false for unknown names.
func (m Metrics) Op(name string) (o OpMetrics, ok bool) {
	for i := range m.Ops {
		if m.Ops[i].Op == name {
			return m.Ops[i], true
		}
	}
	return OpMetrics{}, false
}

// snapshot refreshes the structure gauges and freezes the registry.
func (tr *Tree) snapshot() obs.Snapshot {
	tr.rlock()
	tr.t.SyncGauges()
	tr.mu.RUnlock()
	return tr.m.Snapshot()
}

// Metrics returns a snapshot of the tree's full instrumentation.  It
// is safe to call concurrently with operations; see Metrics.Sub for
// interval accounting.
func (tr *Tree) Metrics() Metrics {
	return fromSnapshot(tr.snapshot())
}

func fromSnapshot(s obs.Snapshot) Metrics {
	m := Metrics{
		Height:          int(s.Height),
		Pages:           int(s.Pages),
		LeafEntries:     int(s.LeafEntries),
		BufferResident:  int(s.BufResident),
		BufferPoolPages: int(s.BufPoolPages),
		UIEstimate:      s.UI,
		Horizon:         s.Horizon,
		SpeedBandLo:     s.SpeedBandLo,
		SpeedBandHi:     s.SpeedBandHi,

		BufferReads:           s.BufReads,
		BufferWrites:          s.BufWrites,
		BufferHits:            s.BufHits,
		BufferEvictions:       s.BufEvictions,
		BufferDirtyWritebacks: s.BufDirtyWritebacks,
		BufferLockFreeHits:    s.BufLockFreeHits,
		FaultTrips:            s.FaultTrips,

		EpochPins:               s.EpochPins,
		SnapshotNodeHits:        s.SnapNodeHits,
		SnapshotNodeMisses:      s.SnapNodeMisses,
		SnapshotPublishes:       s.SnapPublishes,
		SnapshotVersionsTrimmed: s.SnapVersionsTrimmed,

		ChooseSubtreeDescents:   s.ChooseSubtree,
		QueryNodeVisits:         s.NodeVisits,
		QueryLeafEntriesScanned: s.LeafScans,
		Splits:                  s.Splits,
		ForcedReinserts:         s.ForcedReinserts,
		Condenses:               s.Condenses,
		OrphansReinserted:       s.OrphansReinserted,
		ExpiredPurged:           s.ExpiredPurged,
		SubtreesFreed:           s.SubtreesFreed,

		BatchedUpdates: s.BatchedUpdates,
		ShardVisits:    s.ShardVisits,
		ShardsPruned:   s.ShardsPruned,
		Rerouted:       s.Rerouted,

		ReshardRuns:         s.ReshardRuns,
		ReshardDualApplied:  s.ReshardDualApplied,
		ReshardBackfilled:   s.ReshardBackfilled,
		ReshardSkew:         s.ReshardSkew,
		ReshardChurn:        s.ReshardChurn,
		ReshardCutoverStall: fromHist(s.ReshardCutoverStall),

		WALAppends:             s.WALAppends,
		WALBytes:               s.WALBytes,
		WALFsyncs:              s.WALFsyncs,
		Checkpoints:            s.Checkpoints,
		RecoveryReplayed:       s.RecoveryReplayed,
		RecoveryDroppedExpired: s.RecoveryDroppedExpired,
		ChecksumFailures:       s.ChecksumFailures,
		RecoveryDuration:       fromHist(s.RecoveryDuration),

		LockWaitRead:  fromHist(s.LockWaitRead),
		LockWaitWrite: fromHist(s.LockWaitWrite),
	}
	for i := range s.Ops {
		m.Ops[i] = OpMetrics{
			Op:           s.Ops[i].Op,
			Count:        s.Ops[i].Count,
			Errors:       s.Ops[i].Errors,
			TotalSeconds: s.Ops[i].SumSeconds,
			Buckets:      s.Ops[i].Buckets,
		}
	}
	return m
}

// fromHist converts an internal histogram snapshot.
func fromHist(h obs.HistSnapshot) LatencyMetrics {
	return LatencyMetrics{Count: h.Count, TotalSeconds: h.SumSeconds, Buckets: h.Buckets}
}

// WriteMetrics writes the current metrics in the Prometheus text
// exposition format (version 0.0.4).
func (tr *Tree) WriteMetrics(w io.Writer) error {
	return obs.WriteSnapshot(w, tr.snapshot())
}

// MetricsHandler returns an http.Handler serving the tree's metrics
// in Prometheus text format, for mounting on a scrape endpoint:
//
//	http.Handle("/metrics", tree.MetricsHandler())
func (tr *Tree) MetricsHandler() http.Handler {
	return obs.Handler(tr.snapshot)
}

// SetSlowOpHook installs a hook invoked synchronously whenever a
// public operation takes at least threshold; a nil fn (or zero
// threshold) removes the hook.  It overrides the Options.SlowOp
// configuration and is safe to call while operations run.
func (tr *Tree) SetSlowOpHook(threshold time.Duration, fn func(op string, d time.Duration)) {
	if fn == nil {
		tr.m.SetSlowOp(0, nil)
		return
	}
	tr.m.SetSlowOp(threshold, func(op obs.Op, d time.Duration) { fn(op.String(), d) })
}

// ObserverEvent is one structural event delivered to the
// Options.Observer hook, in the order the events occur.
type ObserverEvent struct {
	// Kind names the event: split, forced-reinsert, condense,
	// orphan-reinserted, purge, subtree-freed, eviction,
	// dirty-writeback or fault-trip.
	Kind string
	// Level is the tree level of structural events (leaves are level
	// 0); storage events carry level -1.
	Level int
	// Count is the number of entries or pages affected.
	Count int
	// Shard identifies which shard of a ShardedTree emitted the event;
	// -1 for a stand-alone Tree.
	Shard int
}
