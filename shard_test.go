package rexptree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// testWorkload builds a deterministic stream of object reports.
func testWorkload(n int, seed int64) []Report {
	rng := rand.New(rand.NewSource(seed))
	batch := make([]Report, n)
	for i := range batch {
		batch[i] = Report{
			ID: uint32(i + 1),
			Point: Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*3 - 1.5, rng.Float64()*3 - 1.5},
				Time:    0,
				Expires: 60 + rng.Float64()*120,
			},
		}
	}
	return batch
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}

// TestShardedDeterminism loads the same workload into a single Tree
// and a ShardedTree and checks every query type returns identical
// results.  Query outputs carry the stored (quantized) reports, which
// do not depend on tree structure, so after normalizing the order the
// result sets must match element for element.
func TestShardedDeterminism(t *testing.T) {
	reports := testWorkload(3000, 42)

	single, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	for _, r := range reports {
		if err := single.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sharded.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := sharded.Len(), single.Len(); got != want {
		t.Fatalf("sharded Len = %d, single = %d", got, want)
	}

	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 50; q++ {
		lo := Vec{rng.Float64() * 900, rng.Float64() * 900}
		r := Rect{Lo: lo, Hi: Vec{lo[0] + 120, lo[1] + 120}}
		at := rng.Float64() * 40

		sres, err := single.Timeslice(r, at, 0)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := sharded.Timeslice(r, at, 0)
		if err != nil {
			t.Fatal(err)
		}
		sortResults(sres)
		if len(sres) != len(pres) {
			t.Fatalf("timeslice %d: single %d results, sharded %d", q, len(sres), len(pres))
		}
		for i := range sres {
			if sres[i] != pres[i] {
				t.Fatalf("timeslice %d result %d: single %+v, sharded %+v", q, i, sres[i], pres[i])
			}
		}

		swin, err := single.Window(r, at, at+15, 0)
		if err != nil {
			t.Fatal(err)
		}
		pwin, err := sharded.Window(r, at, at+15, 0)
		if err != nil {
			t.Fatal(err)
		}
		sortResults(swin)
		if len(swin) != len(pwin) {
			t.Fatalf("window %d: single %d results, sharded %d", q, len(swin), len(pwin))
		}
		for i := range swin {
			if swin[i] != pwin[i] {
				t.Fatalf("window %d result %d differs", q, i)
			}
		}

		r2 := Rect{Lo: Vec{lo[0] + 40, lo[1] + 40}, Hi: Vec{lo[0] + 160, lo[1] + 160}}
		smov, err := single.Moving(r, r2, at, at+10, 0)
		if err != nil {
			t.Fatal(err)
		}
		pmov, err := sharded.Moving(r, r2, at, at+10, 0)
		if err != nil {
			t.Fatal(err)
		}
		sortResults(smov)
		if len(smov) != len(pmov) {
			t.Fatalf("moving %d: single %d results, sharded %d", q, len(smov), len(pmov))
		}
		for i := range smov {
			if smov[i] != pmov[i] {
				t.Fatalf("moving %d result %d differs", q, i)
			}
		}
	}

	// Nearest: order by (distance, id) on both sides, then compare.
	for q := 0; q < 25; q++ {
		pos := Vec{rng.Float64() * 1000, rng.Float64() * 1000}
		at := rng.Float64() * 30
		const k = 10
		sres, err := single.Nearest(pos, at, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := sharded.Nearest(pos, at, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		dist := func(r Result) float64 {
			p := r.Point.At(at)
			dx, dy := p[0]-pos[0], p[1]-pos[1]
			return dx*dx + dy*dy
		}
		sort.Slice(sres, func(i, j int) bool {
			di, dj := dist(sres[i]), dist(sres[j])
			if di != dj {
				return di < dj
			}
			return sres[i].ID < sres[j].ID
		})
		if len(sres) != len(pres) {
			t.Fatalf("nearest %d: single %d results, sharded %d", q, len(sres), len(pres))
		}
		for i := range sres {
			if sres[i] != pres[i] {
				t.Fatalf("nearest %d result %d: single %+v, sharded %+v", q, i, sres[i], pres[i])
			}
		}
	}
}

// TestUpdateBatchMatchesUpdates checks a batched load leaves the tree
// in the same state as one-by-one updates, and that batch metrics are
// recorded.
func TestUpdateBatchMatchesUpdates(t *testing.T) {
	reports := testWorkload(800, 3)

	one, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	batched, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	for _, r := range reports {
		if err := one.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}

	if one.Len() != batched.Len() {
		t.Fatalf("Len: updates %d, batch %d", one.Len(), batched.Len())
	}
	world := Rect{Hi: Vec{1000, 1000}}
	a, err := one.Timeslice(world, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.Timeslice(world, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	sortResults(a)
	sortResults(b)
	if len(a) != len(b) {
		t.Fatalf("timeslice: updates %d results, batch %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d: updates %+v, batch %+v", i, a[i], b[i])
		}
	}

	m := batched.Metrics()
	if m.BatchedUpdates != uint64(len(reports)) {
		t.Errorf("BatchedUpdates = %d, want %d", m.BatchedUpdates, len(reports))
	}
	if op, ok := m.Op("update_batch"); !ok || op.Count != 1 {
		t.Errorf("update_batch op = %+v, want 1 call", op)
	}
	if err := batched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardRouting checks the object-keyed operations land on exactly
// one shard and behave like the single tree's.
func TestShardRouting(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := Point{Pos: Vec{10, 20}, Vel: Vec{1, 0}, Expires: NoExpiry()}
	if err := s.Update(77, p, 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(77, 0); !ok || got.Pos != p.Pos {
		t.Fatalf("Get(77) = %+v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// Exactly one shard holds the object.
	holders := 0
	for i := 0; i < s.NumShards(); i++ {
		if s.ShardMetrics(i).LeafEntries == 1 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("object stored on %d shards, want 1", holders)
	}
	if ok, err := s.Delete(77, 1); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", s.Len())
	}
}

// TestShardedPersistence round-trips a file-backed sharded tree.
func TestShardedPersistence(t *testing.T) {
	base := filepath.Join(t.TempDir(), "idx")
	opts := ShardedOptions{Options: DefaultOptions(), Shards: 2}
	opts.Path = base

	s, err := OpenSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	reports := testWorkload(200, 11)
	if err := s.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = OpenSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(reports) {
		t.Fatalf("reopened Len = %d, want %d", s.Len(), len(reports))
	}
	for _, r := range reports[:20] {
		if _, ok := s.Get(r.ID, 0); !ok {
			t.Fatalf("object %d missing after reopen", r.ID)
		}
	}
}

// TestShardedExposition checks the multi-section Prometheus output:
// the aggregate under rexp_ and one section per shard under
// rexp_shard<i>_.
func TestShardedExposition(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateBatch(testWorkload(100, 5), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Timeslice(Rect{Hi: Vec{1000, 1000}}, 1, 0); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rexp_leaf_entries 100",
		"rexp_shard0_leaf_entries ",
		"rexp_shard1_leaf_entries ",
		`rexp_op_duration_seconds_count{op="timeslice"} 1`,
		`rexp_lock_wait_seconds_count{mode="write"}`,
		"rexp_shard1_batched_updates_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The aggregate leaf-entry gauge must equal the shard sum.
	agg := s.Metrics()
	if agg.LeafEntries != s.ShardMetrics(0).LeafEntries+s.ShardMetrics(1).LeafEntries {
		t.Errorf("aggregate LeafEntries %d != shard sum", agg.LeafEntries)
	}
	if agg.BatchedUpdates != 100 {
		t.Errorf("aggregate BatchedUpdates = %d, want 100", agg.BatchedUpdates)
	}
}
