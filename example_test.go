package rexptree_test

import (
	"fmt"
	"log"

	"rexptree"
)

// The basic lifecycle: open an index, report a moving object, and ask
// where it will be.
func ExampleOpen() {
	tree, err := rexptree.Open(rexptree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// A car at (100, 200) km heading east at 1.5 km/min; the report is
	// trusted until t = 120.
	tree.Update(1, rexptree.Point{
		Pos:     rexptree.Vec{100, 200},
		Vel:     rexptree.Vec{1.5, 0},
		Time:    0,
		Expires: 120,
	}, 0)

	res, _ := tree.Timeslice(rexptree.Rect{
		Lo: rexptree.Vec{110, 195},
		Hi: rexptree.Vec{120, 205},
	}, 10, 0)
	for _, r := range res {
		p := r.Point.At(10)
		fmt.Printf("object %d predicted at (%.0f, %.0f)\n", r.ID, p[0], p[1])
	}
	// Output:
	// object 1 predicted at (115, 200)
}

// Expired reports disappear from query results on their own.
func ExampleTree_Timeslice() {
	tree, _ := rexptree.Open(rexptree.DefaultOptions())
	defer tree.Close()

	tree.Update(1, rexptree.Point{Pos: rexptree.Vec{500, 500}, Time: 0, Expires: 30}, 0)
	world := rexptree.Rect{Hi: rexptree.Vec{1000, 1000}}

	before, _ := tree.Timeslice(world, 10, 10)
	after, _ := tree.Timeslice(world, 60, 60)
	fmt.Printf("visible at t=10: %d, at t=60: %d\n", len(before), len(after))
	// Output:
	// visible at t=10: 1, at t=60: 0
}

// Nearest-neighbor search over predicted positions.
func ExampleTree_Nearest() {
	tree, _ := rexptree.Open(rexptree.DefaultOptions())
	defer tree.Close()

	tree.Update(1, rexptree.Point{Pos: rexptree.Vec{100, 100}, Expires: rexptree.NoExpiry()}, 0)
	tree.Update(2, rexptree.Point{Pos: rexptree.Vec{300, 300}, Expires: rexptree.NoExpiry()}, 0)
	// Object 3 is far away now but racing toward the query point.
	tree.Update(3, rexptree.Point{
		Pos: rexptree.Vec{900, 100}, Vel: rexptree.Vec{-8, 0}, Expires: rexptree.NoExpiry(),
	}, 0)

	res, _ := tree.Nearest(rexptree.Vec{120, 120}, 97, 1, 0)
	fmt.Println("nearest at t=97: object", res[0].ID)
	// Output:
	// nearest at t=97: object 3
}

// Batched updates apply a group of reports under one lock
// acquisition.
func ExampleTree_UpdateBatch() {
	tree, _ := rexptree.Open(rexptree.DefaultOptions())
	defer tree.Close()

	// One position fix per vehicle, applied as a single batch.
	batch := []rexptree.Report{
		{ID: 1, Point: rexptree.Point{Pos: rexptree.Vec{100, 100}, Expires: 60}},
		{ID: 2, Point: rexptree.Point{Pos: rexptree.Vec{200, 200}, Expires: 60}},
		{ID: 3, Point: rexptree.Point{Pos: rexptree.Vec{300, 300}, Expires: 60}},
	}
	if err := tree.UpdateBatch(batch, 0); err != nil {
		log.Fatal(err)
	}

	m := tree.Metrics()
	fmt.Printf("%d objects stored, %d reports batched\n", tree.Len(), m.BatchedUpdates)
	// Output:
	// 3 objects stored, 3 reports batched
}

// A sharded index partitions objects across independent trees and
// fans queries out across them.
func ExampleShardedTree() {
	tree, _ := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options: rexptree.DefaultOptions(),
		Shards:  4,
		Workers: 4,
	})
	defer tree.Close()

	for id := uint32(1); id <= 8; id++ {
		tree.Update(id, rexptree.Point{
			Pos:     rexptree.Vec{float64(id) * 100, 500},
			Vel:     rexptree.Vec{1, 0},
			Expires: rexptree.NoExpiry(),
		}, 0)
	}

	// The fan-out merge returns results in ascending id order.
	res, _ := tree.Window(rexptree.Rect{
		Lo: rexptree.Vec{250, 0},
		Hi: rexptree.Vec{560, 1000},
	}, 0, 10, 0)
	for _, r := range res {
		fmt.Println("object", r.ID)
	}
	// Output:
	// object 3
	// object 4
	// object 5
}
