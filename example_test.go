package rexptree_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rexptree"
)

// The basic lifecycle: open an index, report a moving object, and ask
// where it will be.
func ExampleOpen() {
	tree, err := rexptree.Open(rexptree.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// A car at (100, 200) km heading east at 1.5 km/min; the report is
	// trusted until t = 120.
	tree.Update(1, rexptree.Point{
		Pos:     rexptree.Vec{100, 200},
		Vel:     rexptree.Vec{1.5, 0},
		Time:    0,
		Expires: 120,
	}, 0)

	res, _ := tree.Timeslice(rexptree.Rect{
		Lo: rexptree.Vec{110, 195},
		Hi: rexptree.Vec{120, 205},
	}, 10, 0)
	for _, r := range res {
		p := r.Point.At(10)
		fmt.Printf("object %d predicted at (%.0f, %.0f)\n", r.ID, p[0], p[1])
	}
	// Output:
	// object 1 predicted at (115, 200)
}

// Expired reports disappear from query results on their own.
func ExampleTree_Timeslice() {
	tree, _ := rexptree.Open(rexptree.DefaultOptions())
	defer tree.Close()

	tree.Update(1, rexptree.Point{Pos: rexptree.Vec{500, 500}, Time: 0, Expires: 30}, 0)
	world := rexptree.Rect{Hi: rexptree.Vec{1000, 1000}}

	before, _ := tree.Timeslice(world, 10, 10)
	after, _ := tree.Timeslice(world, 60, 60)
	fmt.Printf("visible at t=10: %d, at t=60: %d\n", len(before), len(after))
	// Output:
	// visible at t=10: 1, at t=60: 0
}

// Nearest-neighbor search over predicted positions.
func ExampleTree_Nearest() {
	tree, _ := rexptree.Open(rexptree.DefaultOptions())
	defer tree.Close()

	tree.Update(1, rexptree.Point{Pos: rexptree.Vec{100, 100}, Expires: rexptree.NoExpiry()}, 0)
	tree.Update(2, rexptree.Point{Pos: rexptree.Vec{300, 300}, Expires: rexptree.NoExpiry()}, 0)
	// Object 3 is far away now but racing toward the query point.
	tree.Update(3, rexptree.Point{
		Pos: rexptree.Vec{900, 100}, Vel: rexptree.Vec{-8, 0}, Expires: rexptree.NoExpiry(),
	}, 0)

	res, _ := tree.Nearest(rexptree.Vec{120, 120}, 97, 1, 0)
	fmt.Println("nearest at t=97: object", res[0].ID)
	// Output:
	// nearest at t=97: object 3
}

// Batched updates apply a group of reports under one lock
// acquisition.
func ExampleTree_UpdateBatch() {
	tree, _ := rexptree.Open(rexptree.DefaultOptions())
	defer tree.Close()

	// One position fix per vehicle, applied as a single batch.
	batch := []rexptree.Report{
		{ID: 1, Point: rexptree.Point{Pos: rexptree.Vec{100, 100}, Expires: 60}},
		{ID: 2, Point: rexptree.Point{Pos: rexptree.Vec{200, 200}, Expires: 60}},
		{ID: 3, Point: rexptree.Point{Pos: rexptree.Vec{300, 300}, Expires: 60}},
	}
	if err := tree.UpdateBatch(batch, 0); err != nil {
		log.Fatal(err)
	}

	m := tree.Metrics()
	fmt.Printf("%d objects stored, %d reports batched\n", tree.Len(), m.BatchedUpdates)
	// Output:
	// 3 objects stored, 3 reports batched
}

// A sharded index partitions objects across independent trees and
// fans queries out across them.
func ExampleShardedTree() {
	tree, _ := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options: rexptree.DefaultOptions(),
		Shards:  4,
		Workers: 4,
	})
	defer tree.Close()

	for id := uint32(1); id <= 8; id++ {
		tree.Update(id, rexptree.Point{
			Pos:     rexptree.Vec{float64(id) * 100, 500},
			Vel:     rexptree.Vec{1, 0},
			Expires: rexptree.NoExpiry(),
		}, 0)
	}

	// The fan-out merge returns results in ascending id order.
	res, _ := tree.Window(rexptree.Rect{
		Lo: rexptree.Vec{250, 0},
		Hi: rexptree.Vec{560, 1000},
	}, 0, 10, 0)
	for _, r := range res {
		fmt.Println("object", r.ID)
	}
	// Output:
	// object 3
	// object 4
	// object 5
}

// A durability policy makes a file-backed index crash-safe: every
// acknowledged mutation is WAL-logged (and, under DurabilityOnCommit,
// fsynced) before the call returns, and reopening recovers
// automatically.
func Example_durability() {
	dir, err := os.MkdirTemp("", "rexp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := rexptree.DefaultOptions()
	opts.Path = filepath.Join(dir, "fleet.rexp")
	opts.Durability = rexptree.DurabilityOnCommit

	tree, err := rexptree.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	tree.Update(7, rexptree.Point{
		Pos: rexptree.Vec{100, 200}, Vel: rexptree.Vec{1, 0},
		Expires: rexptree.NoExpiry(),
	}, 0)
	tree.Close()

	// A new process (or one recovering from a crash) reopens the file
	// with the same policy and finds the acknowledged report.
	tree, err = rexptree.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	p, ok := tree.Get(7, 0)
	fmt.Printf("object 7 recovered: %v, at (%.0f, %.0f)\n", ok, p.Pos[0], p.Pos[1])
	// Output:
	// object 7 recovered: true, at (100, 200)
}

// The flight recorder retains the traces of recent operations in a
// lock-free ring, so the queries leading up to an incident stay
// inspectable after the fact (rexpd serves them at /debug/rexp/traces).
func Example_flightRecorder() {
	opts := rexptree.DefaultOptions()
	opts.FlightRecorder = 8 // ring capacity; 0 (the default) disables

	tree, _ := rexptree.Open(opts)
	defer tree.Close()

	tree.Update(1, rexptree.Point{Pos: rexptree.Vec{10, 10}, Expires: rexptree.NoExpiry()}, 0)
	tree.Window(rexptree.Rect{Hi: rexptree.Vec{100, 100}}, 0, 5, 0)

	recent, _ := tree.Traces() // newest first
	fmt.Println("retained:", len(recent))
	fmt.Println("newest op:", recent[0].Op, "with", recent[0].Results, "result(s)")
	// Output:
	// retained: 2
	// newest op: window with 1 result(s)
}

// Trace* query variants return the results plus an EXPLAIN trace; on a
// sharded index it includes the per-shard pruning table.
func ExampleShardedTree_TraceWindow() {
	tree, _ := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options: rexptree.DefaultOptions(),
		Shards:  2,
	})
	defer tree.Close()

	for id := uint32(1); id <= 6; id++ {
		tree.Update(id, rexptree.Point{
			Pos:     rexptree.Vec{float64(id) * 100, 500},
			Expires: rexptree.NoExpiry(),
		}, 0)
	}

	res, trace, _ := tree.TraceWindow(rexptree.Rect{
		Lo: rexptree.Vec{150, 0}, Hi: rexptree.Vec{450, 1000},
	}, 0, 10, 0)

	visited := 0
	for _, sh := range trace.Shards {
		if sh.Visited {
			visited++
		}
	}
	fmt.Printf("op %s: %d results, %d of %d shards visited\n",
		trace.Op, len(res), visited, len(trace.Shards))
	// Output:
	// op window: 3 results, 2 of 2 shards visited
}
