package rexptree

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rexptree/internal/reshard"
	"rexptree/internal/storage"
)

// movingIndex is the surface shared by Tree and ShardedTree that the
// reshard tests exercise, so any index layout can be fingerprinted and
// compared against the single-tree reference.
type movingIndex interface {
	Update(id uint32, p Point, now float64) error
	UpdateBatch(batch []Report, now float64) error
	Delete(id uint32, now float64) (bool, error)
	Timeslice(r Rect, at, now float64) ([]Result, error)
	Window(r Rect, t1, t2, now float64) ([]Result, error)
	Moving(r1, r2 Rect, t1, t2, now float64) ([]Result, error)
	Nearest(pos Vec, at float64, k int, now float64) ([]Result, error)
	Get(id uint32, now float64) (Point, bool)
	Len() int
}

// indexFingerprint captures an index's observable state: the results
// of a fixed battery of all four query types at several times, point
// lookups over a spread of ids, and the stored-report count.  Two
// indexes holding the same live objects must fingerprint identically
// regardless of shard count, partition policy or file generation.
type indexFingerprint struct {
	queries [][]Result
	points  []Point
	present []bool
	size    int
}

func fingerprintIndex(t *testing.T, ix movingIndex, now float64) indexFingerprint {
	t.Helper()
	var fp indexFingerprint
	run := func(sorted bool) func(rs []Result, err error) {
		return func(rs []Result, err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			if sorted {
				// Region queries promise a result *set*; a single Tree
				// reports it in traversal order, a ShardedTree merged by
				// id.  Normalize before comparing.
				sortResults(rs)
			}
			if len(rs) == 0 {
				rs = nil // normalize: empty vs nil is not an observable difference
			}
			fp.queries = append(fp.queries, rs)
		}
	}
	region, nearest := run(true), run(false)
	inner := Rect{Lo: Vec{120, 90}, Hi: Vec{460, 430}}
	mid := Rect{Lo: Vec{310, 260}, Hi: Vec{720, 650}}
	world := Rect{Lo: Vec{-100, -100}, Hi: Vec{1100, 1100}}
	region(ix.Timeslice(inner, now, now))
	region(ix.Timeslice(world, now+12, now))
	region(ix.Window(inner, now+1, now+9, now))
	region(ix.Window(mid, now, now+25, now))
	region(ix.Moving(inner, mid, now+2, now+14, now))
	nearest(ix.Nearest(Vec{500, 500}, now+3, 12, now))
	nearest(ix.Nearest(Vec{80, 910}, now, 5, now))
	for id := uint32(1); id <= 1000; id += 37 {
		p, ok := ix.Get(id, now)
		fp.points = append(fp.points, p)
		fp.present = append(fp.present, ok)
	}
	fp.size = ix.Len()
	return fp
}

func requireSameFingerprint(t *testing.T, got, want indexFingerprint, what string) {
	t.Helper()
	if got.size != want.size {
		t.Fatalf("%s: %d stored reports, reference has %d", what, got.size, want.size)
	}
	for i := range want.queries {
		if !reflect.DeepEqual(got.queries[i], want.queries[i]) {
			t.Fatalf("%s: query %d returned %d results, reference %d:\n got  %v\n want %v",
				what, i, len(got.queries[i]), len(want.queries[i]), got.queries[i], want.queries[i])
		}
	}
	if !reflect.DeepEqual(got.present, want.present) || !reflect.DeepEqual(got.points, want.points) {
		t.Fatalf("%s: point lookups diverge from the reference", what)
	}
}

// copyIndexFiles clones every regular file of srcDir into dstDir, so a
// built fixture can be resharded destructively per subtest.
func copyIndexFiles(t *testing.T, srcDir, dstDir string) {
	t.Helper()
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// hashDir maps every regular file in dir to its content hash.
func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		out[e.Name()] = hex.EncodeToString(sum[:])
	}
	return out
}

func fileOpts(base string) Options {
	o := DefaultOptions()
	o.Path = base
	return o
}

// updatedReports builds a post-reshard update stream: re-reports of
// existing objects with fresh positions and velocities spanning all
// speed bands (so speed-partitioned targets must re-route), plus a few
// brand-new objects.
func updatedReports(ids int, seed int64, at float64) []Report {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Report, 0, 320)
	for i := 0; i < 300; i++ {
		out = append(out, Report{
			ID: uint32(rng.Intn(ids) + 1),
			Point: Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*20 - 10, rng.Float64()*20 - 10},
				Time:    at,
				Expires: at + 100 + rng.Float64()*100,
			},
		})
	}
	for j := 0; j < 20; j++ {
		out = append(out, Report{
			ID: uint32(5000 + j),
			Point: Point{
				Pos:     Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
				Time:    at,
				Expires: at + 150,
			},
		})
	}
	return out
}

// applyStream mutates an index with the shared delete + update stream.
func applyStream(t *testing.T, ix movingIndex, deletes []uint32, updates []Report, now float64) {
	t.Helper()
	for _, id := range deletes {
		if _, err := ix.Delete(id, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.UpdateBatch(updates, now); err != nil {
		t.Fatal(err)
	}
}

// TestReshardMatrix drives the K → K′ matrix: hash sources with K ∈
// {1, 2, 4} resharded to hash targets with K′ ∈ {1, 2, 3, 4, 8}, plus
// the policy transitions (hash → speed with fixed bands, self-tuned
// speed → hash).  After every reshard the index must answer all four
// query types element-wise identically to the single-tree reference —
// both immediately and after a further update stream that re-reports,
// inserts and deletes objects (crossing speed bands, so speed targets
// re-route).
func TestReshardMatrix(t *testing.T) {
	deletes := []uint32{5, 11, 50, 500, 797}
	const now2 = 5.0

	type sourceCase struct {
		name    string
		opts    ShardedOptions
		reports []Report
		updates []Report
	}
	sources := []sourceCase{
		{"hash-1", ShardedOptions{Shards: 1}, testWorkload(800, 11), updatedReports(800, 101, now2)},
		{"hash-2", ShardedOptions{Shards: 2}, testWorkload(800, 12), updatedReports(800, 102, now2)},
		{"hash-4", ShardedOptions{Shards: 4}, testWorkload(800, 13), updatedReports(800, 103, now2)},
		{"speed-auto-4", ShardedOptions{Shards: 4, Partition: PartitionSpeed, TuneAfter: 300},
			mixedSpeedWorkload(800, 7, 0), mixedSpeedWorkload(300, 7, 1)},
	}

	type targetCase struct {
		shards int
		policy string
		bands  []float64
	}
	allBands := []float64{0.5, 2, 8, 15, 30, 50, 100}
	targetsFor := func(src string) []targetCase {
		var out []targetCase
		switch src {
		case "speed-auto-4":
			for _, k := range []int{1, 2, 4} {
				out = append(out, targetCase{k, "hash", nil})
			}
		default:
			for _, k := range []int{1, 2, 3, 4, 8} {
				out = append(out, targetCase{k, "hash", nil})
			}
			if src == "hash-4" {
				for _, k := range []int{1, 2, 3, 4, 8} {
					out = append(out, targetCase{k, "speed", allBands[:k-1]})
				}
			}
		}
		return out
	}

	for _, src := range sources {
		src := src
		t.Run(src.name, func(t *testing.T) {
			// Single-tree reference: the ground truth before and after
			// the update stream.
			single, err := Open(DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			if err := single.UpdateBatch(src.reports, 0); err != nil {
				t.Fatal(err)
			}
			base0 := fingerprintIndex(t, single, 0)
			applyStream(t, single, deletes, src.updates, now2)
			base1 := fingerprintIndex(t, single, now2)

			// File-backed source fixture, built once and cloned per target.
			srcDir := t.TempDir()
			so := src.opts
			so.Options = fileOpts(filepath.Join(srcDir, "idx"))
			st, err := OpenSharded(so)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.UpdateBatch(src.reports, 0); err != nil {
				t.Fatal(err)
			}
			requireSameFingerprint(t, fingerprintIndex(t, st, 0), base0, "source fixture")
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			for _, tg := range targetsFor(src.name) {
				tg := tg
				t.Run(fmt.Sprintf("to-%s-%d", tg.policy, tg.shards), func(t *testing.T) {
					dir := t.TempDir()
					copyIndexFiles(t, srcDir, dir)
					base := filepath.Join(dir, "idx")

					res, err := reshard.Run(reshard.Options{
						Path: base, Shards: tg.shards, Policy: tg.policy, SpeedBands: tg.bands,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Generation != 1 {
						t.Fatalf("generation %d after first reshard, want 1", res.Generation)
					}
					if res.SourceShards != src.opts.Shards || res.TargetShards != tg.shards {
						t.Fatalf("result shard counts %d -> %d, want %d -> %d",
							res.SourceShards, res.TargetShards, src.opts.Shards, tg.shards)
					}
					if res.Expired != 0 || res.Live != base0.size || res.Scanned != res.Live {
						t.Fatalf("entry accounting %d scanned / %d live / %d expired, want %d live",
							res.Scanned, res.Live, res.Expired, base0.size)
					}
					routed := 0
					for _, n := range res.Routed {
						routed += n
					}
					if routed != res.Live {
						t.Fatalf("routed %d entries of %d live", routed, res.Live)
					}

					ro := ShardedOptions{Options: fileOpts(base), Shards: tg.shards}
					if tg.policy == "speed" {
						ro.Partition = PartitionSpeed
						ro.SpeedBands = tg.bands
					}
					ix, err := OpenSharded(ro)
					if err != nil {
						t.Fatal(err)
					}
					if ix.Generation() != 1 {
						t.Fatalf("reopened generation %d, want 1", ix.Generation())
					}
					requireSameFingerprint(t, fingerprintIndex(t, ix, 0), base0, "resharded")

					applyStream(t, ix, deletes, src.updates, now2)
					requireSameFingerprint(t, fingerprintIndex(t, ix, now2), base1, "resharded+updates")
					if err := ix.Close(); err != nil {
						t.Fatal(err)
					}

					// The post-reshard updates must persist across a reopen.
					ix2, err := OpenSharded(ro)
					if err != nil {
						t.Fatal(err)
					}
					requireSameFingerprint(t, fingerprintIndex(t, ix2, now2), base1, "resharded+updates reopened")
					if err := ix2.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestReshardRoundTrip is the acceptance scenario: a K=4 hash index is
// resharded to K′=2 speed shards with re-tuned bands, then back to K=4
// hash, with all query types answering identically throughout.  The
// index clock sits past many report expirations, so the reshard must
// also drop expired entries without changing any query answer.
func TestReshardRoundTrip(t *testing.T) {
	reports := testWorkload(700, 23)
	tick := Report{ID: 9001, Point: Point{
		Pos: Vec{500, 500}, Vel: Vec{0, 0}, Time: 100, Expires: NoExpiry(),
	}}

	single, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}
	// Advance the clock to 100: testWorkload expirations span 60..180,
	// so a large fraction of the reports is now expired.
	if err := single.Update(tick.ID, tick.Point, 100); err != nil {
		t.Fatal(err)
	}
	base := fingerprintIndex(t, single, 100)

	dir := t.TempDir()
	basePath := filepath.Join(dir, "idx")
	st, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Update(tick.ID, tick.Point, 100); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	res1, err := reshard.Run(reshard.Options{Path: basePath, Shards: 2, Policy: "speed"})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Retuned || len(res1.SpeedBands) != 1 {
		t.Fatalf("expected re-tuned bands, got retuned=%v bands=%v", res1.Retuned, res1.SpeedBands)
	}
	if res1.Expired == 0 {
		t.Fatalf("no entries expired at clock %.1f; the fixture should have many", res1.Clock)
	}
	sp, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 2, Partition: PartitionSpeed})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Generation() != 1 {
		t.Fatalf("generation %d, want 1", sp.Generation())
	}
	requireSameFingerprint(t, fingerprintIndex(t, sp, 100), base, "hash-4 -> speed-2")
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	res2, err := reshard.Run(reshard.Options{Path: basePath, Shards: 4, Policy: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generation != 2 {
		t.Fatalf("generation %d after second reshard, want 2", res2.Generation)
	}
	// The first reshard already purged the expired entries.
	if res2.Expired != 0 || res2.Scanned != res1.Live {
		t.Fatalf("second reshard scanned %d / expired %d, want %d / 0", res2.Scanned, res2.Expired, res1.Live)
	}
	hs, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Generation() != 2 {
		t.Fatalf("generation %d, want 2", hs.Generation())
	}
	requireSameFingerprint(t, fingerprintIndex(t, hs, 100), base, "speed-2 -> hash-4")
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReshardSingleTreeSource converts a manifest-less single tree
// file into a sharded index.
func TestReshardSingleTreeSource(t *testing.T) {
	reports := testWorkload(500, 31)
	objs := make([]BulkObject, len(reports))
	for i, r := range reports {
		objs[i] = BulkObject{ID: r.ID, Point: r.Point}
	}

	dir := t.TempDir()
	basePath := filepath.Join(dir, "idx")
	tr, err := OpenBulk(fileOpts(basePath), objs, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := fingerprintIndex(t, tr, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := reshard.Run(reshard.Options{Path: basePath, Shards: 3, Policy: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	if res.SourcePolicy != "single" || res.SourceShards != 1 || res.Generation != 1 {
		t.Fatalf("source %q/%d gen %d, want single/1 gen 1", res.SourcePolicy, res.SourceShards, res.Generation)
	}
	// The committed index lives in generation-1 files; the original
	// single-tree file is garbage and gets removed.
	if _, err := os.Stat(basePath); !os.IsNotExist(err) {
		t.Fatalf("original tree file still present: %v", err)
	}
	ix, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireSameFingerprint(t, fingerprintIndex(t, ix, 0), base, "single -> hash-3")
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReshardCrashInjection aborts a reshard at every phase boundary —
// mid-scan (source read fault), mid-load (target write fault), before
// the first commit rename, between commit renames, and after the shard
// renames but before the manifest rename — and checks the crash
// contract: every file the original index references is byte-for-byte
// untouched, the original reopens and answers queries identically, and
// simply re-running the same reshard succeeds.
func TestReshardCrashInjection(t *testing.T) {
	reports := testWorkload(500, 47)
	single, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}
	base := fingerprintIndex(t, single, 0)

	srcDir := t.TempDir()
	st, err := OpenSharded(ShardedOptions{Options: fileOpts(filepath.Join(srcDir, "idx")), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch(reports, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	errBoom := errors.New("boom")
	failRenameAt := func(n int) func(*reshard.Options) {
		return func(o *reshard.Options) {
			calls := 0
			o.BeforeRename = func(from, to string) error {
				calls++
				if calls == n+1 {
					return errBoom
				}
				return nil
			}
		}
	}
	cases := []struct {
		name   string
		inject func(*reshard.Options)
	}{
		{"mid-scan", func(o *reshard.Options) {
			o.WrapSource = func(i int, s storage.Store) storage.Store {
				if i != 1 {
					return s
				}
				fs := storage.NewFaultStore(s)
				fs.Arm(4)
				return fs
			}
		}},
		{"mid-load", func(o *reshard.Options) {
			o.WrapTarget = func(i int, s storage.Store) storage.Store {
				if i != 1 {
					return s
				}
				fs := storage.NewFaultStore(s)
				fs.Arm(3)
				return fs
			}
		}},
		{"pre-rename", failRenameAt(0)},
		{"mid-rename", failRenameAt(1)},
		// All three shard files renamed, manifest rename refused: the
		// commit point itself.
		{"pre-manifest-rename", failRenameAt(3)},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			copyIndexFiles(t, srcDir, dir)
			basePath := filepath.Join(dir, "idx")
			before := hashDir(t, dir)

			o := reshard.Options{Path: basePath, Shards: 3, Policy: "hash"}
			c.inject(&o)
			if _, err := reshard.Run(o); err == nil {
				t.Fatal("injected crash did not abort the reshard")
			}

			// Everything the original index references is untouched; a
			// crash may only leave extra (unreferenced) files behind.
			after := hashDir(t, dir)
			for name, h := range before {
				if after[name] != h {
					t.Fatalf("crash at %s modified original file %s", c.name, name)
				}
			}

			ix, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 2})
			if err != nil {
				t.Fatalf("original index does not reopen after crash: %v", err)
			}
			if ix.Generation() != 0 {
				t.Fatalf("original generation %d after crash, want 0", ix.Generation())
			}
			requireSameFingerprint(t, fingerprintIndex(t, ix, 0), base, "original after crash")
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			// Retry: the identical invocation, no faults, must succeed
			// (cleaning up whatever the crashed attempt left behind).
			res, err := reshard.Run(reshard.Options{Path: basePath, Shards: 3, Policy: "hash"})
			if err != nil {
				t.Fatalf("retry after %s crash failed: %v", c.name, err)
			}
			if res.Generation != 1 {
				t.Fatalf("retry committed generation %d, want 1", res.Generation)
			}
			ix2, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			requireSameFingerprint(t, fingerprintIndex(t, ix2, 0), base, "retry result")
			if err := ix2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReshardBadOptions checks that invalid invocations fail up front
// without creating any files.
func TestReshardBadOptions(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "idx")
	st, err := OpenSharded(ShardedOptions{Options: fileOpts(basePath), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // empty index: no live entries
		t.Fatal(err)
	}
	before := hashDir(t, dir)

	cases := []struct {
		name string
		opts reshard.Options
	}{
		{"no path", reshard.Options{Shards: 2, Policy: "hash"}},
		{"no shards", reshard.Options{Path: basePath, Policy: "hash"}},
		{"bad policy", reshard.Options{Path: basePath, Shards: 2, Policy: "round-robin"}},
		{"bands under hash", reshard.Options{Path: basePath, Shards: 2, Policy: "hash", SpeedBands: []float64{1}}},
		{"descending bands", reshard.Options{Path: basePath, Shards: 3, Policy: "speed", SpeedBands: []float64{2, 1}}},
		{"band count", reshard.Options{Path: basePath, Shards: 2, Policy: "speed", SpeedBands: []float64{1, 2}}},
		{"missing index", reshard.Options{Path: filepath.Join(dir, "nope"), Shards: 2, Policy: "hash"}},
		{"retune empty index", reshard.Options{Path: basePath, Shards: 2, Policy: "speed"}},
	}
	for _, c := range cases {
		if _, err := reshard.Run(c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	after := hashDir(t, dir)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("a rejected reshard modified the index directory:\n before %v\n after  %v", before, after)
	}
}
