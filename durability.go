package rexptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
	"rexptree/internal/wal"
)

// This file holds the crash-safety machinery of a file-backed Tree:
// write-ahead logging of mutations, the checkpoint protocol, and the
// recovery that Open runs after an unclean shutdown.
//
// The invariant everything rests on: between checkpoints, the page
// file holds exactly the state of the last checkpoint.  The buffer
// pool runs no-steal (dirty pages are never written back outside a
// checkpoint), frees are deferred (no chain links are written and no
// page freed since the last checkpoint is reused), and the only writes
// that reach the file are zero-fills of pages that are free in the
// checkpointed state.  A checkpoint first images every dirty page into
// the WAL and fsyncs it; only then does it touch the page file — so a
// crash at any instant leaves either a replayable base or a complete
// image set, never a half-written state that matters.

// WALPath returns the write-ahead-log path used for the index file at
// path.
func WALPath(path string) string { return path + ".wal" }

// errNotDurable marks open failures that refuse a dirty file under
// DurabilityNone.
var errNotDurable = errors.New("rexptree: file was not closed cleanly; reopen with Options.Durability set to recover")

// initWAL attaches the write-ahead log to a freshly created durable
// tree (existing files go through recoverDurable, which wires its
// own).  It runs the initial checkpoint before marking the file dirty
// so the page file is a valid (empty) base before any logical record
// is appended.
func (tr *Tree) initWAL(opts Options) error {
	w, err := wal.Create(tr.walPath)
	if err != nil {
		return err
	}
	w.SetMetrics(tr.m)
	w.Hook = opts.testWALHook
	tr.wal = w
	tr.fs.SetDeferFrees(true)
	if err := tr.checkpointLocked(); err != nil {
		return err
	}
	return tr.fs.MarkDirty()
}

// walRollback drops the record appended at offset prev after the
// mutation it logged failed: the caller observed an error, so the
// record must never reach a commit point — a later successful
// operation's fsync would otherwise make the failed operation durable
// and recovery would replay it.  If the log cannot be rewound the tree
// is poisoned: every further mutation (and the final checkpoint) is
// refused, the file stays dirty, and the next open recovers from the
// last durable state instead.
func (tr *Tree) walRollback(prev int64, cause error) {
	tr.snapEpoch.Add(1) // the rewind invalidates any WAL tail being streamed
	if err := tr.wal.Unwind(prev); err != nil {
		tr.walPoison = fmt.Errorf("rexptree: write-ahead log holds the record of a failed operation (%v) and could not be rewound: %w", cause, err)
	}
}

// walLogUpdate appends the report's logical record; called before the
// mutation is applied (write-ahead ordering).
func (tr *Tree) walLogUpdate(id uint32, p Point, now float64) error {
	u := wal.Update{ID: id, Now: now, Time: p.Time, Expires: p.Expires}
	copy(u.Pos[:], p.Pos[:])
	copy(u.Vel[:], p.Vel[:])
	tr.walBuf = wal.EncodeUpdate(tr.walBuf[:0], u)
	if err := tr.wal.Append(tr.walBuf); err != nil {
		return err
	}
	tr.m.WALAppends.Inc()
	return nil
}

// walLogDelete appends the deletion's logical record.
func (tr *Tree) walLogDelete(id uint32, now float64) error {
	tr.walBuf = wal.EncodeDelete(tr.walBuf[:0], wal.Delete{ID: id, Now: now})
	if err := tr.wal.Append(tr.walBuf); err != nil {
		return err
	}
	tr.m.WALAppends.Inc()
	return nil
}

// walCommit makes the operation durable per the configured policy and
// checkpoints when the log or the pool has grown past its bound.  It
// is the tail of every mutating public operation in WAL mode; the
// exclusive lock must be held.
func (tr *Tree) walCommit(tc *QueryTrace) error {
	switch tr.durability {
	case DurabilityOnCommit:
		fi := tc.begin(-1, "wal-fsync", -1)
		err := tr.wal.Sync()
		tc.endAt(fi)
		if err != nil {
			return err
		}
	case DurabilityBatched:
		if err := tr.wal.Flush(); err != nil {
			return err
		}
		if time.Since(tr.lastWALSync) >= tr.syncEvery {
			fi := tc.begin(-1, "wal-fsync", -1)
			err := tr.wal.Sync()
			tc.endAt(fi)
			if err != nil {
				return err
			}
			tr.lastWALSync = time.Now()
		}
	}
	// A backup stream in flight (ckptHold > 0) defers checkpoints: the
	// page file must stay the image of the last checkpoint while it is
	// being copied, so the WAL keeps growing instead — that growth is
	// the retained-segment guarantee the stream depends on.
	if tr.ckptHold.Load() == 0 &&
		(tr.wal.Size() >= tr.ckptBytes || tr.t.PoolOverflow() >= tr.t.Config().BufferPages) {
		ci := tc.begin(-1, "checkpoint", -1)
		err := tr.checkpointLocked()
		tc.endAt(ci)
		return err
	}
	return nil
}

// checkpointLocked runs the checkpoint protocol:
//
//  1. Stage the tree metadata into its buffered page.
//  2. Image every dirty pool page into the WAL (CkptBegin, CkptPage...,
//     CkptCommit) and fsync — the images are now durable.
//  3. Flush the pool and sync the store (free chain, superblock, fsync)
//     — the page file now holds the imaged state.
//  4. Truncate the WAL.
//
// A crash before the image fsync leaves the old base plus a replayable
// logical tail (the incomplete image set is ignored); a crash after it
// leaves a complete image set that recovery re-applies idempotently,
// no matter how torn the page file is.
func (tr *Tree) checkpointLocked() error {
	start := time.Now()
	tr.snapEpoch.Add(1) // checkpointing rewrites both files under any stream
	if err := tr.t.StageMeta(); err != nil {
		return err
	}
	if err := tr.wal.Append([]byte{byte(wal.CkptBegin)}); err != nil {
		return err
	}
	buf := make([]byte, 0, 5+storage.PageSize)
	err := tr.t.DirtyPages(func(id storage.PageID, data []byte) error {
		buf = append(buf[:0], byte(wal.CkptPage))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = append(buf, data...)
		return tr.wal.Append(buf)
	})
	if err != nil {
		return err
	}
	commit := []byte{byte(wal.CkptCommit), 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(commit[1:], uint32(tr.fs.PageCount()))
	if err := tr.wal.Append(commit); err != nil {
		return err
	}
	if err := tr.wal.Sync(); err != nil {
		return err
	}
	if err := tr.t.FlushPool(); err != nil {
		return err
	}
	if err := storage.SyncStore(tr.store); err != nil {
		return err
	}
	if err := tr.wal.Reset(); err != nil {
		return err
	}
	tr.m.Checkpoints.Inc()
	tr.m.ObservePhase(obs.PhaseCheckpoint, time.Since(start))
	return nil
}

// recoverDurable rebuilds the tree from the page file and the WAL
// after an unclean shutdown.  fs is the raw file store (for image
// application), store the wrapped store the tree will run on.  The
// returned bool asks the caller to reinitialize from scratch: the
// crash happened during the very first checkpoint of a fresh tree, so
// no acknowledged state exists.
func recoverDurable(opts Options, fs *storage.FileStore, store storage.Store, cfg core.Config, tr *Tree, tc *QueryTrace) (retry bool, err error) {
	start := time.Now()
	si := tc.begin(-1, "analyze", -1)
	a, err := wal.Analyze(tr.walPath)
	tc.endAt(si)
	if err != nil {
		return false, err
	}

	// Cut off a torn tail before anything is appended: frames written
	// after unscannable garbage would be invisible to every later Scan,
	// so if this recovery crashed after its checkpoint the next open
	// would miss that checkpoint and replay the old records over a page
	// file the checkpoint already rewrote.  Only invalid bytes are
	// dropped; the analyzed records all precede ValidPrefix.
	if a.Torn {
		ti := tc.begin(-1, "truncate-tail", -1)
		err := wal.TruncateTail(tr.walPath, a.ValidPrefix)
		tc.endAt(ti)
		if err != nil {
			return false, fmt.Errorf("rexptree: recovery failed truncating the WAL's torn tail: %w", err)
		}
	}

	// Re-apply the last complete checkpoint's page images and make them
	// durable.  Idempotent: however often recovery itself is
	// interrupted, the images win.  The fsync matters: the recovery
	// checkpoint below images only the pages the replay dirties, so
	// these patches must already be on disk before that checkpoint can
	// supersede the records they came from.
	if a.Images != nil {
		ii := tc.begin(-1, "reapply-images", -1)
		if a.Pages > fs.PageCount() {
			fs.SetPageCount(a.Pages)
		}
		for id, img := range a.Images {
			if err := fs.WriteImage(id, img); err != nil {
				return false, err
			}
		}
		if err := fs.Sync(); err != nil {
			return false, err
		}
		tc.endAt(ii)
	}

	oi := tc.begin(-1, "open-base", -1)
	t, err := core.Open(cfg, store)
	tc.endAt(oi)
	if err != nil {
		if a.Images == nil && len(a.Tail) == 0 && !errors.Is(err, storage.ErrChecksum) {
			// The file was never checkpointed (crash during the fresh
			// tree's first checkpoint): nothing was acknowledged, so
			// recreate from scratch.  A checksum failure is never that
			// case — it is corruption and must surface.
			return true, nil
		}
		return false, fmt.Errorf("rexptree: recovery cannot open the checkpointed base: %w", err)
	}
	tr.t = t
	tr.dims = t.Config().Dims

	// Rebuild the free list from reachability: the on-disk chain is
	// stale on a dirty file.  The walk reads — and checksum-verifies —
	// every live page, so cold corruption fails recovery here instead
	// of surfacing as a wrong answer later.
	live, err := t.LivePages()
	if err != nil {
		return false, fmt.Errorf("rexptree: recovery failed verifying reachable pages: %w", err)
	}
	// Deferred frees must be on before the replay mutates anything:
	// pages the replay frees are live in the checkpointed base, and
	// reusing one would clobber the base this very recovery would need
	// were it interrupted.
	fs.SetDeferFrees(true)
	fs.ResetFreeList(live)

	// Rebuild the object table, then replay the logical tail.
	bi := tc.begin(-1, "rebuild-records", -1)
	if err := t.Records(func(oid uint32, p geom.MovingPoint) error {
		tr.objects[oid] = p
		return nil
	}); err != nil {
		return false, err
	}
	tc.endAt(bi)
	ri := tc.begin(-1, "replay", -1)
	// The recovered clock is the latest timestamp in the log; any
	// replayed report that expires at or before it is dead on arrival —
	// queries would never see it and a later update would purge it — so
	// the replay skips the insert half (the delete half still runs).
	clock := t.Now()
	for _, rec := range a.Tail {
		switch rec.Kind {
		case wal.RecUpdate:
			if rec.Update.Now > clock {
				clock = rec.Update.Now
			}
		case wal.RecDelete:
			if rec.Delete.Now > clock {
				clock = rec.Delete.Now
			}
		}
	}
	expireAware := cfg.ExpireAware
	for _, rec := range a.Tail {
		switch rec.Kind {
		case wal.RecUpdate:
			u := rec.Update
			if old, ok := tr.objects[u.ID]; ok {
				if _, err := t.Delete(u.ID, old, u.Now); err != nil {
					return false, err
				}
				delete(tr.objects, u.ID)
			}
			var p Point
			p.Time, p.Expires = u.Time, u.Expires
			copy(p.Pos[:], u.Pos[:])
			copy(p.Vel[:], u.Vel[:])
			mp := toInternal(p, tr.dims)
			if expireAware && mp.TExp <= clock {
				// Short-lived data: the report expired before the crash
				// was recovered; replaying it would only be purged again.
				tr.m.RecoveryDroppedExpired.Inc()
				continue
			}
			if err := t.Insert(u.ID, mp, u.Now); err != nil {
				return false, err
			}
			tr.objects[u.ID] = t.Stored(mp)
			tr.m.RecoveryReplayed.Inc()
		case wal.RecDelete:
			d := rec.Delete
			if old, ok := tr.objects[d.ID]; ok {
				delete(tr.objects, d.ID)
				if _, err := t.Delete(d.ID, old, d.Now); err != nil {
					return false, err
				}
			}
			tr.m.RecoveryReplayed.Inc()
		}
	}
	tc.endAt(ri)

	// Attach the WAL writer, appending directly after the valid prefix
	// (the torn tail, if any, was truncated above): if this recovery is
	// itself interrupted before its checkpoint commits, the old records
	// stay replayable; once it commits, a later Scan reaches it and the
	// old records are superseded.  Then checkpoint the recovered state,
	// truncate the log, and stay dirty for the ongoing session.
	w, err := wal.Create(tr.walPath)
	if err != nil {
		return false, err
	}
	w.SetMetrics(tr.m)
	w.Hook = opts.testWALHook
	tr.wal = w
	ci := tc.begin(-1, "checkpoint", -1)
	err = tr.checkpointLocked()
	tc.endAt(ci)
	if err != nil {
		return false, fmt.Errorf("rexptree: recovery checkpoint failed: %w", err)
	}
	if err := fs.MarkDirty(); err != nil {
		return false, err
	}
	tr.m.RecoveryDuration.Observe(time.Since(start))
	return false, nil
}

// closeDurable runs the durable half of Close: final checkpoint, then
// a clean superblock.  On checkpoint failure the file keeps its dirty
// flag so the next open recovers instead of trusting a half-flushed
// base.
func (tr *Tree) closeDurable() error {
	if tr.walPoison != nil {
		// The log may hold the record of a failed operation; syncing or
		// checkpointing could make it durable.  Abort the WAL unflushed
		// and keep the dirty flag: the next open recovers the last
		// consistent state.
		tr.wal.Abort()
		tr.fs.CloseKeepDirty()
		return tr.walPoison
	}
	if err := tr.checkpointLocked(); err != nil {
		tr.wal.Close()
		tr.fs.CloseKeepDirty()
		return err
	}
	err := tr.wal.Close()
	// store.Close clears the dirty flag, persists the free chain and
	// superblock, and fsyncs; its error must surface.
	if cerr := tr.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon drops the tree without checkpointing, flushing, or clearing
// the dirty flag: the files are left exactly as a crash at this
// instant would leave them (WAL bytes still buffered in memory are
// lost).  It exists so crash-recovery tests and drills can produce a
// genuine post-crash state in-process; every other caller wants Close.
// Abandoning a non-durable tree just closes the store.  The tree must
// not be used afterwards.
func (tr *Tree) Abandon() {
	tr.lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return
	}
	tr.closed = true
	tr.closeErr = errors.New("rexptree: tree was abandoned")
	if tr.wal != nil {
		tr.wal.Abort()
		tr.fs.CloseKeepDirty()
		return
	}
	tr.store.Close()
}

// RemoveIndex deletes the index file at path together with its
// write-ahead log (if any).  It is a convenience for tooling and
// tests; a missing file is not an error.
func RemoveIndex(path string) error {
	err := os.Remove(path)
	if errors.Is(err, os.ErrNotExist) {
		err = nil
	}
	werr := os.Remove(WALPath(path))
	if errors.Is(werr, os.ErrNotExist) {
		werr = nil
	}
	if err == nil {
		err = werr
	}
	return err
}
