// Package rexptree implements the R^exp-tree — an R*-tree–based index
// for the current and anticipated future positions of moving point
// objects whose positional reports expire after a deadline — together
// with its baseline, the TPR-tree.  It reproduces "Indexing of Moving
// Objects for Location-Based Services" (Šaltenis and Jensen, TimeCenter
// TR-63 / ICDE 2002).
//
// Objects are linear trajectories: a position at a reference time, a
// velocity vector, and an expiration time after which the report is
// considered worthless.  The index answers three kinds of queries
// about predicted positions — timeslice, window and moving — while
// never reporting expired objects, and lazily removes expired entries
// during ordinary updates.
//
// The index is disk-page based (4 KiB nodes behind an LRU buffer
// pool), either fully in memory or backed by a file.  All methods are
// safe for concurrent use by multiple goroutines.
package rexptree

import (
	"math"

	"rexptree/internal/core"
	"rexptree/internal/geom"
)

// MaxDims is the highest supported dimensionality.
const MaxDims = 3

// NoExpiry marks a report that never expires.
func NoExpiry() float64 { return math.Inf(1) }

// Vec is a position or velocity vector; only the first Dims components
// are used.
type Vec [MaxDims]float64

// Point is one object's positional report: the position at time Time,
// the velocity vector valid from then on, and the absolute expiration
// time of the report (NoExpiry() if it never expires).
type Point struct {
	Pos     Vec
	Vel     Vec
	Time    float64
	Expires float64
}

// At predicts the object's position at time t.
func (p Point) At(t float64) Vec {
	var out Vec
	for i := range out {
		out[i] = p.Pos[i] + p.Vel[i]*(t-p.Time)
	}
	return out
}

// Rect is an axis-parallel rectangle.
type Rect struct {
	Lo, Hi Vec
}

// Result is one object returned by a query.
type Result struct {
	ID    uint32
	Point Point
}

// toInternal converts a report to the engine's epoch representation
// (coordinates at t = 0).
func toInternal(p Point, dims int) geom.MovingPoint {
	var mp geom.MovingPoint
	for i := 0; i < dims; i++ {
		mp.Vel[i] = p.Vel[i]
		mp.Pos[i] = p.Pos[i] - p.Vel[i]*p.Time
	}
	mp.TExp = p.Expires
	if mp.TExp == 0 {
		mp.TExp = math.Inf(1)
	}
	return mp
}

// fromInternal converts an engine record back to the public form,
// reporting the position at time now.
func fromInternal(mp geom.MovingPoint, now float64, dims int) Point {
	p := Point{Time: now, Expires: mp.TExp}
	at := mp.At(now)
	for i := 0; i < dims; i++ {
		p.Pos[i] = at[i]
		p.Vel[i] = mp.Vel[i]
	}
	return p
}

func toRect(r Rect) geom.Rect {
	return geom.Rect{Lo: geom.Vec(r.Lo), Hi: geom.Vec(r.Hi)}
}

func fromResults(rs []core.Result, now float64, dims int) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.OID, Point: fromInternal(r.Point, now, dims)}
	}
	return out
}
