// Command rexpd serves a moving-object index over HTTP/JSON: routed
// updates and deletes, streaming NDJSON batch ingest with admission
// control, the three paper query types plus Nearest (with an optional
// ?explain=1 EXPLAIN mode), Prometheus metrics, the flight-recorder
// trace endpoint, pprof, and health/readiness probes.  docs/API.md is
// the endpoint reference; docs/OPERATIONS.md is the runbook.
//
// The daemon owns the index's lifecycle: it opens (recovering if the
// previous run crashed and a durability policy is set), seeds the
// logical clock from the newest stored report, serves until SIGTERM or
// SIGINT, then drains — stops admitting mutations, finishes the
// in-flight ones, lets readers complete, checkpoints and closes.  With
// a durability policy every acknowledged mutation survives the whole
// sequence, including a crash in the middle of it.
//
// A durable file-backed daemon is also a replication leader: it serves
// a consistent hot-backup stream on GET /v1/backup and the logical
// record tail on GET /v1/wal, and `rexpd -follow <leader-url> -path
// <dir>` runs a read-only follower that bootstraps from the backup
// stream and tails the records at bounded staleness.
//
// Usage:
//
//	rexpd -addr :7364 -path /var/lib/rexp/idx [-shards 4] [-partition hash|speed]
//	      [-durability none|on-commit|batched] [-max-inflight 4] [-timeout 30s] ...
//	rexpd -addr :7365 -follow http://leader:7364 -path /var/lib/rexp/replica
//
// With no -path the index is held in memory (and lost on exit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"rexptree"
	"rexptree/internal/repl"
	"rexptree/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":7364", "listen address (host:port; port 0 picks a free port)")
		path      = flag.String("path", "", "index file base path; empty serves an in-memory index")
		shards    = flag.Int("shards", 4, "shard count (must match an existing index)")
		workers   = flag.Int("workers", 0, "query fan-out workers (default: one per shard)")
		partition = flag.String("partition", "hash", "object->shard partition policy: hash or speed")
		bands     = flag.String("bands", "", "explicit speed-band boundaries, comma-separated (speed partition)")
		durab     = flag.String("durability", "none", "crash-safety policy: none, on-commit or batched (requires -path)")
		syncEvery = flag.Duration("sync-every", 0, "WAL fsync interval under -durability batched (default 100ms)")
		ckptBytes = flag.Int64("checkpoint-bytes", 0, "checkpoint when a shard's WAL passes this size (default 4MiB)")
		bufPages  = flag.Int("buffer-pages", 0, "total buffer-pool budget in 4KiB pages, split across shards (default 50/shard)")
		recorder  = flag.Int("flight-recorder", 256, "flight-recorder ring capacity; 0 disables /debug/rexp/traces retention")
		slowOp    = flag.Duration("slow", 0, "log operations at least this slow (0 disables)")
		inflight  = flag.Int("max-inflight", 4, "ingest batches admitted concurrently; more get 429 + Retry-After")
		maxBatch  = flag.Int("max-batch", 1000, "reports per UpdateBatch chunk of a streamed ingest body")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline (504 past it); 0 disables")
		retry     = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainWait = flag.Duration("drain-timeout", time.Minute, "shutdown: maximum wait for in-flight requests")
		noPprof   = flag.Bool("nopprof", false, "do not mount net/http/pprof under /debug/pprof/")
		noRuntime = flag.Bool("noruntime", false, "do not append Go runtime metrics to /metrics scrapes")

		rateLimit = flag.Float64("rate-limit", 0, "per-client mutation requests/second (X-Client-Id or remote addr); 0 disables")
		rateBurst = flag.Int("rate-burst", 0, "per-client burst size for -rate-limit (default 2x the rate)")

		replRetain = flag.Int64("repl-retain", repl.DefaultRetainBytes, "replication feed retention in bytes on a durable leader; 0 disables the /v1/backup and /v1/wal endpoints")
		follow     = flag.String("follow", "", "run as a read-only follower of this leader URL (requires -path, used as the replica directory)")
		maxLag     = flag.Duration("max-lag", 30*time.Second, "follower: /readyz answers 503 \"stale\" past this replication lag")

		autoReshard   = flag.Bool("auto-reshard", false, "enable the drift detector: live-reshard automatically when routing skew or churn drifts (requires -partition speed)")
		arInterval    = flag.Duration("auto-reshard-interval", 5*time.Second, "drift detector sampling period")
		arSkew        = flag.Float64("auto-reshard-skew", 2.0, "reshard when the largest shard exceeds this multiple of the mean population; 0 disables the skew trigger")
		arChurn       = flag.Float64("auto-reshard-churn", 0.2, "reshard when this fraction of reports re-route their object; 0 disables the churn trigger")
		arMinInterval = flag.Duration("auto-reshard-min-interval", time.Minute, "cooldown between automatic reshards")
		arWindow      = flag.Int("auto-reshard-window", 4096, "speed observations kept for re-deriving quantile bands")
	)
	flag.Parse()

	if err := run(config{
		addr: *addr, path: *path, shards: *shards, workers: *workers,
		partition: *partition, bands: *bands, durability: *durab,
		syncEvery: *syncEvery, ckptBytes: *ckptBytes, bufPages: *bufPages,
		recorder: *recorder, slowOp: *slowOp,
		inflight: *inflight, maxBatch: *maxBatch, timeout: *timeout,
		retry: *retry, drainWait: *drainWait,
		pprof: !*noPprof, runtime: !*noRuntime,
		rateLimit: *rateLimit, rateBurst: *rateBurst,
		replRetain: *replRetain, follow: *follow, maxLag: *maxLag,
		autoReshard: *autoReshard, arInterval: *arInterval, arSkew: *arSkew,
		arChurn: *arChurn, arMinInterval: *arMinInterval, arWindow: *arWindow,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "rexpd: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr, path, partition, bands, durability string
	shards, workers, bufPages, recorder      int
	syncEvery, slowOp, timeout, retry        time.Duration
	ckptBytes                                int64
	inflight, maxBatch                       int
	drainWait                                time.Duration
	pprof, runtime                           bool

	rateLimit float64
	rateBurst int

	replRetain int64
	follow     string
	maxLag     time.Duration

	autoReshard               bool
	arInterval, arMinInterval time.Duration
	arSkew, arChurn           float64
	arWindow                  int
}

func run(cfg config) error {
	if cfg.follow != "" {
		return runFollower(cfg)
	}
	ix, durability, err := openIndex(cfg)
	if err != nil {
		return err
	}

	scfg := server.Config{
		Index:          ix,
		MaxInFlight:    cfg.inflight,
		MaxBatch:       cfg.maxBatch,
		RequestTimeout: cfg.timeout,
		RetryAfter:     cfg.retry,
		Pprof:          cfg.pprof,
		RuntimeMetrics: cfg.runtime,
		RateLimit:      cfg.rateLimit,
		RateBurst:      cfg.rateBurst,
	}

	// A durable file-backed daemon doubles as a replication leader: the
	// hub attaches the logical record feed and serves the backup and
	// tail streams.  Memory-backed or non-durable indexes have no
	// crash-consistent files to stream, so the endpoints stay 503.
	var hub *repl.Hub
	if cfg.replRetain > 0 && cfg.path != "" && durability != rexptree.DurabilityNone {
		hub = repl.NewHub(ix, cfg.replRetain)
		scfg.Backup = hub.BackupHandler()
		scfg.WALFeed = hub.WALHandler()
		scfg.ReplStats = hub.Stats
	}

	srv := server.New(scfg)
	srv.SetDurability(durability.String())

	// Seed the logical clock from the newest stored report, so a
	// reopened index accepts queries and monotone updates immediately.
	newest := 0.0
	ix.ForEach(0, func(r rexptree.Result) bool {
		if r.Point.Time > newest {
			newest = r.Point.Time
		}
		return true
	})
	srv.ObserveClock(newest)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.CloseIndex()
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	// The one line the smoke tests (and humans) parse: the bound
	// address, which matters when -addr asked for port 0.
	leader := ""
	if hub != nil {
		leader = ", replication on"
	}
	fmt.Fprintf(os.Stderr, "rexpd: serving http://%s (index: %s, %d shard(s), %s partition, durability %s%s)\n",
		ln.Addr(), pathOrMemory(cfg.path), ix.NumShards(), ix.Partition(), durability, leader)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "rexpd: %v: draining (no new mutations; waiting for in-flight work)\n", got)
	case err := <-errc:
		srv.CloseIndex()
		return fmt.Errorf("serve: %w", err)
	}

	// Drain sequence: refuse new mutations and wait for the admitted
	// ones (srv.Drain), let the listener's remaining readers finish
	// (httpSrv.Shutdown), then checkpoint and close the index.  Every
	// mutation acknowledged before this point is on disk when Close
	// returns — and, under a durability policy, already was.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rexpd: shutdown: %v (closing the index anyway)\n", err)
	}
	if err := srv.CloseIndex(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Fprintln(os.Stderr, "rexpd: clean shutdown")
	return nil
}

// swapServer serves through the current *server.Server and lets a
// follower re-bootstrap swap in a server over the new replica index:
// requests pin the current server with a read lock, the swap takes the
// write lock, so after a swap no request is still using the previous
// index and the applier may close it.
type swapServer struct {
	mu  sync.RWMutex
	srv *server.Server
}

func (sw *swapServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	sw.srv.ServeHTTP(w, r)
}

func (sw *swapServer) swap(srv *server.Server) {
	sw.mu.Lock()
	sw.srv = srv
	sw.mu.Unlock()
}

func (sw *swapServer) current() *server.Server {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	return sw.srv
}

// runFollower runs the read-only replica mode: bootstrap (or resume) a
// replica of the leader under -path, serve the read API from it, and
// keep tailing the leader's record feed until shutdown.
func runFollower(cfg config) error {
	if cfg.path == "" {
		return errors.New("-follow requires -path (the replica directory)")
	}

	// app is declared before its options so the OnSwap closure can use
	// it; the applier only invokes OnSwap after NewApplier returns.
	var app *repl.Applier
	sw := &swapServer{}
	newServer := func(ix *rexptree.ShardedTree) *server.Server {
		srv := server.New(server.Config{
			Index:          ix,
			MaxInFlight:    cfg.inflight,
			MaxBatch:       cfg.maxBatch,
			RequestTimeout: cfg.timeout,
			RetryAfter:     cfg.retry,
			Pprof:          cfg.pprof,
			RuntimeMetrics: cfg.runtime,
			ReadOnly:       true,
			ReplStats:      app.Stats,
			LagSeconds:     app.LagSeconds,
			MaxLag:         cfg.maxLag,
		})
		srv.SetDurability("on-commit (replica)")
		srv.ObserveClock(app.Clock())
		return srv
	}
	app, err := repl.NewApplier(repl.ApplierOptions{
		Leader: cfg.follow,
		Dir:    cfg.path,
		// Every (re-)bootstrap publishes a fresh replica; swap a server
		// over it in under the request lock, then the applier closes the
		// superseded index.
		OnSwap: func(ix *rexptree.ShardedTree) { sw.swap(newServer(ix)) },
		Logf: func(format string, args ...any) {
			log.Printf("rexpd: "+format, args...)
		},
	})
	if err != nil {
		return err
	}

	// Bootstrap (or resume) before binding the listener, so the first
	// request ever served already has a consistent replica behind it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := app.Open(ctx); err != nil {
		return fmt.Errorf("follower bootstrap: %w", err)
	}
	sw.swap(newServer(app.Index()))

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		app.Close()
		return err
	}
	httpSrv := &http.Server{Handler: sw}

	fmt.Fprintf(os.Stderr, "rexpd: serving http://%s (read-only follower of %s, replica dir %s)\n",
		ln.Addr(), cfg.follow, cfg.path)

	app.Start()

	// Keep the served default query clock tracking the applied clock.
	clockDone := make(chan struct{})
	go func() {
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-clockDone:
				return
			case <-t.C:
				sw.current().ObserveClock(app.Clock())
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rexpd: signal: follower draining")
	case err := <-errc:
		close(clockDone)
		app.Close()
		return fmt.Errorf("serve: %w", err)
	}

	close(clockDone)
	sw.current().Drain()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "rexpd: shutdown: %v (closing the replica anyway)\n", err)
	}
	if err := app.Close(); err != nil {
		return fmt.Errorf("close replica: %w", err)
	}
	fmt.Fprintln(os.Stderr, "rexpd: clean shutdown")
	return nil
}

// openIndex translates the daemon flags into ShardedOptions.
func openIndex(cfg config) (*rexptree.ShardedTree, rexptree.Durability, error) {
	durability, err := rexptree.ParseDurability(cfg.durability)
	if err != nil {
		return nil, 0, err
	}
	if durability != rexptree.DurabilityNone && cfg.path == "" {
		return nil, 0, errors.New("-durability requires -path (a WAL needs a file-backed index)")
	}
	policy, err := rexptree.ParsePartitionPolicy(cfg.partition)
	if err != nil {
		return nil, 0, err
	}
	var speedBands []float64
	if cfg.bands != "" {
		for _, part := range strings.Split(cfg.bands, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, 0, fmt.Errorf("-bands: %q is not a number", part)
			}
			speedBands = append(speedBands, f)
		}
	}

	opts := rexptree.DefaultOptions()
	opts.Path = cfg.path
	opts.Durability = durability
	opts.SyncEvery = cfg.syncEvery
	opts.CheckpointBytes = cfg.ckptBytes
	opts.BufferPages = cfg.bufPages
	opts.FlightRecorder = cfg.recorder
	opts.SlowOpThreshold = cfg.slowOp

	sopts := rexptree.ShardedOptions{
		Options:    opts,
		Shards:     cfg.shards,
		Workers:    cfg.workers,
		Partition:  policy,
		SpeedBands: speedBands,
	}
	if cfg.autoReshard {
		sopts.AutoReshard = rexptree.AutoReshardOptions{
			Enabled:        true,
			Interval:       cfg.arInterval,
			Window:         cfg.arWindow,
			SkewThreshold:  cfg.arSkew,
			ChurnThreshold: cfg.arChurn,
			MinInterval:    cfg.arMinInterval,
		}
	}
	ix, err := rexptree.OpenSharded(sopts)
	if err != nil {
		return nil, 0, err
	}
	return ix, durability, nil
}

func pathOrMemory(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}
