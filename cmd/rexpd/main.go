// Command rexpd serves a moving-object index over HTTP/JSON: routed
// updates and deletes, streaming NDJSON batch ingest with admission
// control, the three paper query types plus Nearest (with an optional
// ?explain=1 EXPLAIN mode), Prometheus metrics, the flight-recorder
// trace endpoint, pprof, and health/readiness probes.  docs/API.md is
// the endpoint reference; docs/OPERATIONS.md is the runbook.
//
// The daemon owns the index's lifecycle: it opens (recovering if the
// previous run crashed and a durability policy is set), seeds the
// logical clock from the newest stored report, serves until SIGTERM or
// SIGINT, then drains — stops admitting mutations, finishes the
// in-flight ones, lets readers complete, checkpoints and closes.  With
// a durability policy every acknowledged mutation survives the whole
// sequence, including a crash in the middle of it.
//
// Usage:
//
//	rexpd -addr :7364 -path /var/lib/rexp/idx [-shards 4] [-partition hash|speed]
//	      [-durability none|on-commit|batched] [-max-inflight 4] [-timeout 30s] ...
//
// With no -path the index is held in memory (and lost on exit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rexptree"
	"rexptree/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":7364", "listen address (host:port; port 0 picks a free port)")
		path      = flag.String("path", "", "index file base path; empty serves an in-memory index")
		shards    = flag.Int("shards", 4, "shard count (must match an existing index)")
		workers   = flag.Int("workers", 0, "query fan-out workers (default: one per shard)")
		partition = flag.String("partition", "hash", "object->shard partition policy: hash or speed")
		bands     = flag.String("bands", "", "explicit speed-band boundaries, comma-separated (speed partition)")
		durab     = flag.String("durability", "none", "crash-safety policy: none, on-commit or batched (requires -path)")
		syncEvery = flag.Duration("sync-every", 0, "WAL fsync interval under -durability batched (default 100ms)")
		ckptBytes = flag.Int64("checkpoint-bytes", 0, "checkpoint when a shard's WAL passes this size (default 4MiB)")
		bufPages  = flag.Int("buffer-pages", 0, "total buffer-pool budget in 4KiB pages, split across shards (default 50/shard)")
		recorder  = flag.Int("flight-recorder", 256, "flight-recorder ring capacity; 0 disables /debug/rexp/traces retention")
		slowOp    = flag.Duration("slow", 0, "log operations at least this slow (0 disables)")
		inflight  = flag.Int("max-inflight", 4, "ingest batches admitted concurrently; more get 429 + Retry-After")
		maxBatch  = flag.Int("max-batch", 1000, "reports per UpdateBatch chunk of a streamed ingest body")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline (504 past it); 0 disables")
		retry     = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainWait = flag.Duration("drain-timeout", time.Minute, "shutdown: maximum wait for in-flight requests")
		noPprof   = flag.Bool("nopprof", false, "do not mount net/http/pprof under /debug/pprof/")
		noRuntime = flag.Bool("noruntime", false, "do not append Go runtime metrics to /metrics scrapes")
	)
	flag.Parse()

	if err := run(config{
		addr: *addr, path: *path, shards: *shards, workers: *workers,
		partition: *partition, bands: *bands, durability: *durab,
		syncEvery: *syncEvery, ckptBytes: *ckptBytes, bufPages: *bufPages,
		recorder: *recorder, slowOp: *slowOp,
		inflight: *inflight, maxBatch: *maxBatch, timeout: *timeout,
		retry: *retry, drainWait: *drainWait,
		pprof: !*noPprof, runtime: !*noRuntime,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "rexpd: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr, path, partition, bands, durability string
	shards, workers, bufPages, recorder      int
	syncEvery, slowOp, timeout, retry        time.Duration
	ckptBytes                                int64
	inflight, maxBatch                       int
	drainWait                                time.Duration
	pprof, runtime                           bool
}

func run(cfg config) error {
	ix, durability, err := openIndex(cfg)
	if err != nil {
		return err
	}

	srv := server.New(server.Config{
		Index:          ix,
		MaxInFlight:    cfg.inflight,
		MaxBatch:       cfg.maxBatch,
		RequestTimeout: cfg.timeout,
		RetryAfter:     cfg.retry,
		Pprof:          cfg.pprof,
		RuntimeMetrics: cfg.runtime,
	})
	srv.SetDurability(durability.String())

	// Seed the logical clock from the newest stored report, so a
	// reopened index accepts queries and monotone updates immediately.
	newest := 0.0
	ix.ForEach(0, func(r rexptree.Result) bool {
		if r.Point.Time > newest {
			newest = r.Point.Time
		}
		return true
	})
	srv.ObserveClock(newest)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.CloseIndex()
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	// The one line the smoke tests (and humans) parse: the bound
	// address, which matters when -addr asked for port 0.
	fmt.Fprintf(os.Stderr, "rexpd: serving http://%s (index: %s, %d shard(s), %s partition, durability %s)\n",
		ln.Addr(), pathOrMemory(cfg.path), ix.NumShards(), ix.Partition(), durability)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "rexpd: %v: draining (no new mutations; waiting for in-flight work)\n", got)
	case err := <-errc:
		srv.CloseIndex()
		return fmt.Errorf("serve: %w", err)
	}

	// Drain sequence: refuse new mutations and wait for the admitted
	// ones (srv.Drain), let the listener's remaining readers finish
	// (httpSrv.Shutdown), then checkpoint and close the index.  Every
	// mutation acknowledged before this point is on disk when Close
	// returns — and, under a durability policy, already was.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rexpd: shutdown: %v (closing the index anyway)\n", err)
	}
	if err := srv.CloseIndex(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Fprintln(os.Stderr, "rexpd: clean shutdown")
	return nil
}

// openIndex translates the daemon flags into ShardedOptions.
func openIndex(cfg config) (*rexptree.ShardedTree, rexptree.Durability, error) {
	durability, err := rexptree.ParseDurability(cfg.durability)
	if err != nil {
		return nil, 0, err
	}
	if durability != rexptree.DurabilityNone && cfg.path == "" {
		return nil, 0, errors.New("-durability requires -path (a WAL needs a file-backed index)")
	}
	policy, err := rexptree.ParsePartitionPolicy(cfg.partition)
	if err != nil {
		return nil, 0, err
	}
	var speedBands []float64
	if cfg.bands != "" {
		for _, part := range strings.Split(cfg.bands, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, 0, fmt.Errorf("-bands: %q is not a number", part)
			}
			speedBands = append(speedBands, f)
		}
	}

	opts := rexptree.DefaultOptions()
	opts.Path = cfg.path
	opts.Durability = durability
	opts.SyncEvery = cfg.syncEvery
	opts.CheckpointBytes = cfg.ckptBytes
	opts.BufferPages = cfg.bufPages
	opts.FlightRecorder = cfg.recorder
	opts.SlowOpThreshold = cfg.slowOp

	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options:    opts,
		Shards:     cfg.shards,
		Workers:    cfg.workers,
		Partition:  policy,
		SpeedBands: speedBands,
	})
	if err != nil {
		return nil, 0, err
	}
	return ix, durability, nil
}

func pathOrMemory(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}
