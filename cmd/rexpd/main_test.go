package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rexptree"
)

// buildCmd compiles one of this module's commands into dir.
func buildCmd(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// daemon is a spawned rexpd under test.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string
	done chan struct{} // stderr scanner finished (process exited)
	mu   sync.Mutex
	log  []string
}

// startDaemon launches rexpd on a kernel-chosen port and waits for its
// serving line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{t: t, done: make(chan struct{})}
	d.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start rexpd: %v", err)
	}
	addrc := make(chan string, 1)
	go func() {
		defer close(d.done)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.log = append(d.log, line)
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "rexpd: serving http://"); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrc <- rest[:i]:
					default:
					}
				}
			}
		}
	}()
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		<-d.done
		d.cmd.Wait()
	})
	select {
	case d.addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatalf("rexpd did not report a serving address; log:\n%s", strings.Join(d.logLines(), "\n"))
	}
	return d
}

func (d *daemon) logLines() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.log...)
}

// terminate SIGTERMs the daemon and waits for a clean exit, returning
// the full stderr log.
func (d *daemon) terminate() []string {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-d.done:
	case <-time.After(time.Minute):
		d.t.Fatal("rexpd did not exit within a minute of SIGTERM")
	}
	if err := d.cmd.Wait(); err != nil {
		d.t.Fatalf("rexpd exit: %v; log:\n%s", err, strings.Join(d.logLines(), "\n"))
	}
	return d.logLines()
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad JSON %v: %s", url, err, raw)
		}
	}
	return resp.StatusCode
}

// TestServeSmoke is the README quickstart, end to end: generate a
// workload with rexpgen, serve an index with rexpd, ingest the workload
// through rexpbench -remote -replay, query it over HTTP, scrape
// /metrics, and shut the daemon down cleanly.  `make serve-smoke` runs
// exactly this test.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	rexpd := buildCmd(t, dir, "rexptree/cmd/rexpd")
	rexpgen := buildCmd(t, dir, "rexptree/cmd/rexpgen")
	rexpbench := buildCmd(t, dir, "rexptree/cmd/rexpbench")

	// 1. Generate a small paper workload.
	wl := filepath.Join(dir, "workload.txt")
	if out, err := exec.Command(rexpgen, "-scale", "0.002", "-o", wl).CombinedOutput(); err != nil {
		t.Fatalf("rexpgen: %v\n%s", err, out)
	}

	// 2. Serve an index.
	d := startDaemon(t, rexpd, "-shards", "2")

	// 3. Ingest the workload through the loadgen's replay path.
	serveout := filepath.Join(dir, "BENCH_serve.json")
	if out, err := exec.Command(rexpbench, "-remote", d.addr, "-replay", wl, "-serveout", serveout).CombinedOutput(); err != nil {
		t.Fatalf("rexpbench -replay: %v\n%s", err, out)
	}
	var bench struct {
		Replay struct {
			Inserts int `json:"inserts"`
			Queries int `json:"queries"`
		} `json:"replay"`
	}
	raw, err := os.ReadFile(serveout)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_serve.json: %v\n%s", err, raw)
	}
	if bench.Replay.Inserts == 0 || bench.Replay.Queries == 0 {
		t.Fatalf("replay did nothing: %s", raw)
	}

	// 4. The index answers over HTTP.
	var stats struct {
		Objects int     `json:"objects"`
		Shards  int     `json:"shards"`
		Clock   float64 `json:"clock"`
	}
	if code := getJSON(t, d.url("/v1/stats"), &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Objects == 0 || stats.Shards != 2 || stats.Clock == 0 {
		t.Fatalf("stats after ingest: %+v", stats)
	}
	var q struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, d.url("/v1/timeslice?lo=0,0&hi=1000,1000&at=%2B1"), &q); code != http.StatusOK {
		t.Fatalf("timeslice: %d", code)
	}
	if q.Count != stats.Objects {
		t.Fatalf("whole-space timeslice found %d of %d objects", q.Count, stats.Objects)
	}

	// 5. The metrics endpoint scrapes.
	resp, err := http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{"rexp_op_duration_seconds", "rexp_go_goroutines"} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("/metrics is missing %s", family)
		}
	}

	// 6. Clean shutdown on SIGTERM.
	log := d.terminate()
	if !strings.Contains(strings.Join(log, "\n"), "clean shutdown") {
		t.Fatalf("no clean shutdown line; log:\n%s", strings.Join(log, "\n"))
	}
}

// TestDrainNoAckedLossAcrossProcess sends concurrent updates to an
// on-commit durable daemon, SIGTERMs it mid-stream, and verifies every
// update acknowledged with 200 before the drain is present when the
// index is reopened — the serving layer's durability contract at the
// process level.
func TestDrainNoAckedLossAcrossProcess(t *testing.T) {
	dir := t.TempDir()
	rexpd := buildCmd(t, dir, "rexptree/cmd/rexpd")
	base := filepath.Join(dir, "idx")
	d := startDaemon(t, rexpd, "-path", base, "-shards", "2", "-durability", "on-commit")

	// Writers stream single-record updates, recording each acked id.
	var (
		mu    sync.Mutex
		acked []uint32
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint32(w*100000 + i + 1)
				body := fmt.Sprintf(`{"id":%d,"pos":[%d,%d],"time":%d}`, id, w, i%1000, i)
				resp, err := http.Post(d.url("/v1/update"), "application/json", strings.NewReader(body))
				if err != nil {
					return // daemon gone mid-request: nothing acked
				}
				code := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code == http.StatusOK {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				} else if code == http.StatusServiceUnavailable {
					return // draining
				}
			}
		}(w)
	}

	// Let acks accumulate, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 200 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	log := d.terminate()
	close(stop)
	wg.Wait()
	if !strings.Contains(strings.Join(log, "\n"), "clean shutdown") {
		t.Fatalf("no clean shutdown; log:\n%s", strings.Join(log, "\n"))
	}

	mu.Lock()
	ids := append([]uint32(nil), acked...)
	mu.Unlock()
	if len(ids) == 0 {
		t.Fatal("no updates were acknowledged before the drain")
	}

	// Reopen the index the daemon closed and verify every ack survived.
	opts := rexptree.DefaultOptions()
	opts.Path = base
	opts.Durability = rexptree.DurabilityOnCommit
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ix.Close()
	now := 1e9 // far future next-query time; reports never expire
	missing := 0
	for _, id := range ids {
		if _, ok := ix.Get(id, now); !ok {
			missing++
			if missing <= 5 {
				t.Errorf("acked update %d missing after reopen", id)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acknowledged updates lost across SIGTERM", missing, len(ids))
	}
	t.Logf("all %d acknowledged updates survived the drain", len(ids))
}
