// Command rexpmap builds an index from a generated workload and
// renders an ASCII density map of the objects' *predicted* positions
// at a chosen time offset — a quick visual check that trajectories,
// expiration and the three query types behave sensibly.
//
//	rexpmap -scale 0.01 -ahead 10 -qx 480 -qy 480
//
// The map marks the density of predicted positions ('.' to '@'), the
// query box ('#' border), and prints the query answer.
package main

import (
	"flag"
	"fmt"
	"os"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
	"rexptree/internal/workload"
)

const (
	gridW = 72
	gridH = 36
)

func main() {
	var (
		scale = flag.Float64("scale", 0.01, "fraction of the paper's workload scale")
		seed  = flag.Int64("seed", 1, "seed")
		ahead = flag.Float64("ahead", 10, "prediction time offset (minutes past the last update)")
		qx    = flag.Float64("qx", 475, "query box lower-left x")
		qy    = flag.Float64("qy", 475, "query box lower-left y")
		qside = flag.Float64("qside", 50, "query box side length")
	)
	flag.Parse()

	cfg := core.Config{Dims: 2, BRKind: hull.KindNearOptimal, ExpireAware: true, AlgsUseExp: true, Seed: *seed}
	tree, err := core.New(cfg, storage.NewMemStore())
	if err != nil {
		fail(err)
	}
	gen, err := workload.NewGenerator(workload.Params{Seed: *seed}.Scale(*scale))
	if err != nil {
		fail(err)
	}
	now := 0.0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		now = op.Time
		switch op.Kind {
		case workload.OpInsert:
			err = tree.Insert(op.OID, op.Point, op.Time)
		case workload.OpDelete:
			_, err = tree.Delete(op.OID, op.Point, op.Time)
		default:
			continue
		}
		if err != nil {
			fail(err)
		}
	}

	at := now + *ahead
	space := workload.Space
	var grid [gridH][gridW]int
	world := geom.Timeslice(space, at)
	total := 0
	err = tree.SearchFunc(world, now, func(r core.Result) bool {
		p := r.Point.At(at)
		cx := int((p[0] - space.Lo[0]) / (space.Hi[0] - space.Lo[0]) * gridW)
		cy := int((p[1] - space.Lo[1]) / (space.Hi[1] - space.Lo[1]) * gridH)
		if cx >= 0 && cx < gridW && cy >= 0 && cy < gridH {
			grid[cy][cx]++
			total++
		}
		return true
	})
	if err != nil {
		fail(err)
	}

	q := geom.Timeslice(geom.Rect{
		Lo: geom.Vec{*qx, *qy},
		Hi: geom.Vec{*qx + *qside, *qy + *qside},
	}, at)
	matches, err := tree.Search(q, now)
	if err != nil {
		fail(err)
	}

	shades := []byte(" .:-=+*%@")
	inQuery := func(cx, cy int) bool {
		x := space.Lo[0] + (float64(cx)+0.5)/gridW*(space.Hi[0]-space.Lo[0])
		y := space.Lo[1] + (float64(cy)+0.5)/gridH*(space.Hi[1]-space.Lo[1])
		return x >= *qx && x <= *qx+*qside && y >= *qy && y <= *qy+*qside
	}
	fmt.Printf("predicted density at t = %.1f (now %.1f, %d live objects); query box '#'\n", at, now, total)
	for cy := gridH - 1; cy >= 0; cy-- {
		row := make([]byte, gridW)
		for cx := 0; cx < gridW; cx++ {
			v := grid[cy][cx]
			idx := 0
			switch {
			case v == 0:
			case v < 2:
				idx = 1
			case v < 4:
				idx = 2
			case v < 8:
				idx = 4
			case v < 16:
				idx = 6
			default:
				idx = 8
			}
			c := shades[idx]
			if inQuery(cx, cy) && v == 0 {
				c = '#'
			}
			row[cx] = c
		}
		fmt.Println(string(row))
	}
	fmt.Printf("timeslice query [%g,%g]x[%g,%g] at t=%.1f: %d objects\n",
		*qx, *qx+*qside, *qy, *qy+*qside, at, len(matches))
	for i, m := range matches {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(matches)-8)
			break
		}
		p := m.Point.At(at)
		fmt.Printf("  object %5d predicted at (%.1f, %.1f)\n", m.OID, p[0], p[1])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rexpmap:", err)
	os.Exit(1)
}
