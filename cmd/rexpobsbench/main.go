// Command rexpobsbench measures the overhead of the observability
// layer: it replays identical update and query workloads against an
// uninstrumented tree (nil *obs.Metrics — the nil fast path) and an
// instrumented one (metrics attached, no observer), and writes the
// measured throughputs and their relative difference as JSON.
//
// The two trees are driven in lockstep — every operation is timed on
// both back to back, alternating which goes first — so scheduler and
// thermal drift hits both sides equally instead of biasing whichever
// configuration happened to run during a slow spell.
//
// The acceptance budget for the instrumentation is a <2% throughput
// regression; CI runs this via `make bench-obs`, which writes
// BENCH_obs.json.
//
// Usage:
//
//	rexpobsbench [-scale 0.02] [-seed 1] [-rounds 5] [-out BENCH_obs.json]
//	rexpobsbench -trace [-scale 0.02] [-seed 1] [-rounds 5] [-out BENCH_trace.json]
//
// With -trace it instead measures the execution-tracing layer (see
// trace.go): the disabled-tracing regression against the same <2%
// budget, plus the informational cost of running with the flight
// recorder enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
	"rexptree/internal/workload"
)

// result is one measured configuration.
type result struct {
	Updates        int     `json:"updates"`
	Queries        int     `json:"queries"`
	UpdateSeconds  float64 `json:"update_seconds"`
	QuerySeconds   float64 `json:"query_seconds"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	SplitsObserved uint64  `json:"splits_observed,omitempty"`
}

type report struct {
	Scale              float64 `json:"scale"`
	Seed               int64   `json:"seed"`
	Rounds             int     `json:"rounds"`
	Baseline           result  `json:"baseline"`     // nil *obs.Metrics
	Instrumented       result  `json:"instrumented"` // metrics attached, nil observer
	UpdateRegressionPc float64 `json:"update_regression_pct"`
	QueryRegressionPc  float64 `json:"query_regression_pct"`
}

// genOps materializes the deterministic workload plus extra query
// rounds (so the query-side measurement is not dominated by timer
// resolution at small scales).
func genOps(scale float64, seed int64) ([]workload.Op, error) {
	gen, err := workload.NewGenerator(workload.Params{Seed: seed}.Scale(scale))
	if err != nil {
		return nil, err
	}
	var ops []workload.Op
	var last float64
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
		last = op.Time
	}
	q := geom.Window(geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{250, 250}}, last, last+10)
	for i := 0; i < 2000; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpQuery, Query: q, Time: last})
	}
	return ops, nil
}

func newTree(seed int64, met *obs.Metrics) (*core.Tree, error) {
	return core.New(core.Config{
		Dims:        2,
		ExpireAware: true,
		AlgsUseExp:  true,
		Seed:        seed,
		Metrics:     met,
	}, storage.NewMemStore())
}

// runPaired replays ops against a fresh baseline and a fresh
// instrumented tree in lockstep, timing each operation on both.  The
// returned results are index 0 = baseline, index 1 = instrumented.
func runPaired(ops []workload.Op, seed int64) ([2]result, error) {
	var res [2]result
	met := obs.New()
	var trees [2]*core.Tree
	for i, m := range []*obs.Metrics{nil, met} {
		t, err := newTree(seed, m)
		if err != nil {
			return res, err
		}
		trees[i] = t
	}
	var updateTime, queryTime [2]time.Duration
	apply := func(t *core.Tree, op workload.Op) (time.Duration, error) {
		start := time.Now()
		var err error
		switch op.Kind {
		case workload.OpInsert:
			err = t.Insert(op.OID, op.Point, op.Time)
		case workload.OpDelete:
			_, err = t.Delete(op.OID, op.Point, op.Time)
		default:
			_, err = t.Search(op.Query, op.Time)
		}
		return time.Since(start), err
	}
	for i, op := range ops {
		// Alternate which tree goes first so shared-state warming
		// (code caches, allocator) does not favour one side.
		first := i % 2
		for _, side := range []int{first, 1 - first} {
			d, err := apply(trees[side], op)
			if err != nil {
				return res, err
			}
			if op.Kind == workload.OpQuery {
				queryTime[side] += d
			} else {
				updateTime[side] += d
			}
		}
		if op.Kind == workload.OpQuery {
			res[0].Queries, res[1].Queries = res[0].Queries+1, res[1].Queries+1
		} else {
			res[0].Updates, res[1].Updates = res[0].Updates+1, res[1].Updates+1
		}
	}
	for side := range res {
		res[side].UpdateSeconds = updateTime[side].Seconds()
		res[side].QuerySeconds = queryTime[side].Seconds()
		if res[side].UpdateSeconds > 0 {
			res[side].UpdatesPerSec = float64(res[side].Updates) / res[side].UpdateSeconds
		}
		if res[side].QuerySeconds > 0 {
			res[side].QueriesPerSec = float64(res[side].Queries) / res[side].QuerySeconds
		}
	}
	res[1].SplitsObserved = met.Splits.Load()
	return res, nil
}

// best folds b into a, keeping the higher update and query throughput
// independently.  Noise can only slow a round down, so the per-metric
// maximum over rounds converges to the configuration's true speed.
// The seconds fields are re-derived to stay consistent.
func best(a, b result) result {
	if a.Updates == 0 {
		return b
	}
	if b.UpdatesPerSec > a.UpdatesPerSec {
		a.UpdatesPerSec = b.UpdatesPerSec
	}
	if b.QueriesPerSec > a.QueriesPerSec {
		a.QueriesPerSec = b.QueriesPerSec
	}
	if a.UpdatesPerSec > 0 {
		a.UpdateSeconds = float64(a.Updates) / a.UpdatesPerSec
	}
	if a.QueriesPerSec > 0 {
		a.QuerySeconds = float64(a.Queries) / a.QueriesPerSec
	}
	return a
}

func main() {
	var (
		scale  = flag.Float64("scale", 0.02, "fraction of the paper's workload scale")
		seed   = flag.Int64("seed", 1, "workload and tree seed")
		rounds = flag.Int("rounds", 5, "measurement rounds; the best throughput of each configuration is kept")
		out    = flag.String("out", "", "output file (- for stdout); defaults to BENCH_obs.json, or BENCH_trace.json with -trace")
		trace  = flag.Bool("trace", false, "measure the tracing layer (disabled regression + recorder-on overhead) instead of the base metrics overhead")
	)
	flag.Parse()
	if *out == "" {
		if *trace {
			*out = "BENCH_trace.json"
		} else {
			*out = "BENCH_obs.json"
		}
	}

	if *trace {
		if err := runTraceBench(*scale, *seed, *rounds, *out); err != nil {
			fmt.Fprintln(os.Stderr, "rexpobsbench:", err)
			os.Exit(1)
		}
		return
	}

	ops, err := genOps(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexpobsbench:", err)
		os.Exit(1)
	}
	rep := report{Scale: *scale, Seed: *seed, Rounds: *rounds}
	// Warmup round, discarded: cold caches and lazy runtime state
	// would otherwise land on the first measured round.
	if _, err := runPaired(ops, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rexpobsbench:", err)
		os.Exit(1)
	}
	for i := 0; i < *rounds; i++ {
		pair, err := runPaired(ops, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpobsbench:", err)
			os.Exit(1)
		}
		rep.Baseline = best(rep.Baseline, pair[0])
		rep.Instrumented = best(rep.Instrumented, pair[1])
	}
	if rep.Baseline.UpdatesPerSec > 0 {
		rep.UpdateRegressionPc = 100 * (1 - rep.Instrumented.UpdatesPerSec/rep.Baseline.UpdatesPerSec)
	}
	if rep.Baseline.QueriesPerSec > 0 {
		rep.QueryRegressionPc = 100 * (1 - rep.Instrumented.QueriesPerSec/rep.Baseline.QueriesPerSec)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexpobsbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rexpobsbench:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "rexpobsbench: update regression %.2f%%, query regression %.2f%% (budget <2%%)\n",
		rep.UpdateRegressionPc, rep.QueryRegressionPc)
}
