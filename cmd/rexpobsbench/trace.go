package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rexptree"
	"rexptree/internal/workload"
)

// The -trace mode measures the tracing layer's cost at both ends:
//
//   - Disabled tracing (the acceptance budget, <2%): the lockstep
//     core-tree pair of the default mode — nil *obs.Metrics versus
//     metrics attached.  Every phase timer added for tracing is guarded
//     by the same nil check, so this pair captures exactly the
//     always-on cost a tree pays when no recorder is configured.
//   - Enabled tracing (informational): a lockstep public-Tree pair,
//     flight recorder off versus on, measuring what full span
//     collection and ring recording cost when a user opts in.
type traceReport struct {
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	Rounds int     `json:"rounds"`

	Baseline                   result  `json:"baseline"`     // nil metrics (tracing disabled)
	Instrumented               result  `json:"instrumented"` // metrics + phase timers (tracing disabled)
	DisabledUpdateRegressionPc float64 `json:"disabled_update_regression_pct"`
	DisabledQueryRegressionPc  float64 `json:"disabled_query_regression_pct"`

	RecorderOff             result  `json:"recorder_off"` // public Tree, no flight recorder
	RecorderOn              result  `json:"recorder_on"`  // public Tree, FlightRecorder 256
	EnabledUpdateOverheadPc float64 `json:"enabled_update_overhead_pct"`
	EnabledQueryOverheadPc  float64 `json:"enabled_query_overhead_pct"`
	TracesRecorded          int     `json:"traces_recorded"`
	SlowTraces              int     `json:"slow_traces"`
}

// toPublic converts a workload report (epoch representation) to the
// public API's form.
func toPublic(op workload.Op) rexptree.Point {
	at := op.Point.At(op.Time)
	return rexptree.Point{
		Pos:     rexptree.Vec(at),
		Vel:     rexptree.Vec(op.Point.Vel),
		Time:    op.Time,
		Expires: op.Point.TExp,
	}
}

// runPairedPublic replays ops against two public Trees in lockstep:
// index 0 without a flight recorder, index 1 with one (and a zero-ish
// slow threshold so the slow ring fills too).  Queries are issued as
// fixed-region windows, identical on both sides.
func runPairedPublic(ops []workload.Op, seed int64) ([2]result, int, int, error) {
	var res [2]result
	base := rexptree.DefaultOptions()
	base.Seed = seed
	traced := base
	traced.FlightRecorder = 256
	traced.FlightSlowThreshold = time.Nanosecond
	var trees [2]*rexptree.Tree
	for i, o := range []rexptree.Options{base, traced} {
		t, err := rexptree.Open(o)
		if err != nil {
			return res, 0, 0, err
		}
		trees[i] = t
	}
	defer trees[0].Close()
	defer trees[1].Close()
	region := rexptree.Rect{Lo: rexptree.Vec{0, 0}, Hi: rexptree.Vec{250, 250}}
	var updateTime, queryTime [2]time.Duration
	apply := func(t *rexptree.Tree, op workload.Op) (time.Duration, error) {
		start := time.Now()
		var err error
		switch op.Kind {
		case workload.OpInsert:
			err = t.Update(op.OID, toPublic(op), op.Time)
		case workload.OpDelete:
			_, err = t.Delete(op.OID, op.Time)
		default:
			_, err = t.Window(region, op.Time, op.Time+10, op.Time)
		}
		return time.Since(start), err
	}
	for i, op := range ops {
		first := i % 2
		for _, side := range []int{first, 1 - first} {
			d, err := apply(trees[side], op)
			if err != nil {
				return res, 0, 0, err
			}
			if op.Kind == workload.OpQuery {
				queryTime[side] += d
			} else {
				updateTime[side] += d
			}
		}
		if op.Kind == workload.OpQuery {
			res[0].Queries, res[1].Queries = res[0].Queries+1, res[1].Queries+1
		} else {
			res[0].Updates, res[1].Updates = res[0].Updates+1, res[1].Updates+1
		}
	}
	for side := range res {
		res[side].UpdateSeconds = updateTime[side].Seconds()
		res[side].QuerySeconds = queryTime[side].Seconds()
		if res[side].UpdateSeconds > 0 {
			res[side].UpdatesPerSec = float64(res[side].Updates) / res[side].UpdateSeconds
		}
		if res[side].QuerySeconds > 0 {
			res[side].QueriesPerSec = float64(res[side].Queries) / res[side].QuerySeconds
		}
	}
	recent, slow := trees[1].Traces()
	return res, len(recent), len(slow), nil
}

// runTraceBench is the -trace entry point; it writes the combined
// disabled/enabled report to out.
func runTraceBench(scale float64, seed int64, rounds int, out string) error {
	ops, err := genOps(scale, seed)
	if err != nil {
		return err
	}
	rep := traceReport{Scale: scale, Seed: seed, Rounds: rounds}

	// Disabled-tracing cost: the nil-metrics / instrumented pair.
	if _, err := runPaired(ops, seed); err != nil { // warmup, discarded
		return err
	}
	for i := 0; i < rounds; i++ {
		pair, err := runPaired(ops, seed)
		if err != nil {
			return err
		}
		rep.Baseline = best(rep.Baseline, pair[0])
		rep.Instrumented = best(rep.Instrumented, pair[1])
	}
	if rep.Baseline.UpdatesPerSec > 0 {
		rep.DisabledUpdateRegressionPc = 100 * (1 - rep.Instrumented.UpdatesPerSec/rep.Baseline.UpdatesPerSec)
	}
	if rep.Baseline.QueriesPerSec > 0 {
		rep.DisabledQueryRegressionPc = 100 * (1 - rep.Instrumented.QueriesPerSec/rep.Baseline.QueriesPerSec)
	}

	// Enabled-tracing cost: public Trees, recorder off versus on.
	if _, _, _, err := runPairedPublic(ops, seed); err != nil { // warmup
		return err
	}
	for i := 0; i < rounds; i++ {
		pair, recorded, slow, err := runPairedPublic(ops, seed)
		if err != nil {
			return err
		}
		rep.RecorderOff = best(rep.RecorderOff, pair[0])
		rep.RecorderOn = best(rep.RecorderOn, pair[1])
		rep.TracesRecorded, rep.SlowTraces = recorded, slow
	}
	if rep.RecorderOff.UpdatesPerSec > 0 {
		rep.EnabledUpdateOverheadPc = 100 * (1 - rep.RecorderOn.UpdatesPerSec/rep.RecorderOff.UpdatesPerSec)
	}
	if rep.RecorderOff.QueriesPerSec > 0 {
		rep.EnabledQueryOverheadPc = 100 * (1 - rep.RecorderOn.QueriesPerSec/rep.RecorderOff.QueriesPerSec)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"rexpobsbench: disabled-tracing regression %.2f%% updates, %.2f%% queries (budget <2%%); recorder-on overhead %.2f%% updates, %.2f%% queries\n",
		rep.DisabledUpdateRegressionPc, rep.DisabledQueryRegressionPc,
		rep.EnabledUpdateOverheadPc, rep.EnabledQueryOverheadPc)
	return nil
}
