package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tool")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSmokeStdoutJSON(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-scale", "0.002", "-rounds", "1", "-out", "-").Output()
	if err != nil {
		t.Fatalf("rexpobsbench failed: %v", err)
	}
	var rep struct {
		Rounds   int `json:"rounds"`
		Baseline struct {
			Updates       int     `json:"updates"`
			UpdatesPerSec float64 `json:"updates_per_sec"`
		} `json:"baseline"`
		Instrumented struct {
			Updates int `json:"updates"`
		} `json:"instrumented"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("output is not the report JSON: %v\n%s", err, out)
	}
	if rep.Rounds != 1 || rep.Baseline.Updates == 0 || rep.Instrumented.Updates != rep.Baseline.Updates {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.Baseline.UpdatesPerSec <= 0 {
		t.Fatalf("no measured update throughput: %+v", rep)
	}
}

func TestSmokeOutFile(t *testing.T) {
	bin := buildTool(t)
	path := filepath.Join(t.TempDir(), "bench.json")
	if out, err := exec.Command(bin, "-scale", "0.002", "-rounds", "1", "-out", path).CombinedOutput(); err != nil {
		t.Fatalf("rexpobsbench failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("output file missing: %v", err)
	}
	if !json.Valid(data) {
		t.Fatalf("output file is not valid JSON:\n%s", data)
	}
}
