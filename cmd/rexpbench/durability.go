package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"rexptree"
)

// The durability-bench mode measures what crash safety costs: the same
// single-tree update workload is driven against a file-backed index
// under each durability policy —
//
//   - none:      the legacy flush-per-operation path, no WAL;
//   - batched:   WAL appended per operation, fsynced on a timer, so a
//     crash loses at most the last interval;
//   - on-commit: WAL fsynced before every operation (or batch) returns,
//     so no acknowledged update is ever lost.
//
// Each run is a fresh index in a temp directory; reported numbers are
// sustained update (and batched-update) throughput over the -duration
// window, plus the WAL traffic the policy generated.  The JSON report
// lands in -walout.

// durabilityConfig echoes the benchmark parameters into the JSON.
type durabilityConfig struct {
	Objects     int     `json:"objects"`
	DurationSec float64 `json:"duration_sec"`
	BatchSize   int     `json:"batch_size"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Seed        int64   `json:"seed"`
}

// durabilityResult is one policy's measurement.
type durabilityResult struct {
	UpdateOpsPerSec float64 `json:"update_ops_per_sec"`
	BatchRepPerSec  float64 `json:"batched_reports_per_sec"`
	WALAppends      uint64  `json:"wal_appends"`
	WALBytes        uint64  `json:"wal_bytes"`
	WALFsyncs       uint64  `json:"wal_fsyncs"`
	Checkpoints     uint64  `json:"checkpoints"`
}

// durabilityReport is rexpbench -durability's JSON output.
type durabilityReport struct {
	Config   durabilityConfig  `json:"config"`
	None     durabilityResult  `json:"none"`
	Batched  durabilityResult  `json:"batched"`
	OnCommit durabilityResult  `json:"on_commit"`
	Relative map[string]string `json:"relative_update_throughput"`
}

// durabilityWorkload yields an endless stream of single-object
// re-reports over a fixed population.
func durabilityWorkload(objects int, seed int64) func(now float64) (uint32, rexptree.Point) {
	rng := rand.New(rand.NewSource(seed))
	return func(now float64) (uint32, rexptree.Point) {
		id := uint32(rng.Intn(objects) + 1)
		return id, rexptree.Point{
			Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:     rexptree.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
			Time:    now,
			Expires: now + 600,
		}
	}
}

// benchDurability loads and measures one policy on a fresh index file.
func benchDurability(dir string, policy rexptree.Durability, objects, batchSize int,
	durationSec float64, seed int64) (durabilityResult, error) {
	var res durabilityResult
	opts := rexptree.DefaultOptions()
	opts.Path = filepath.Join(dir, "bench-"+policy.String()+".rexp")
	opts.Durability = policy
	tr, err := rexptree.Open(opts)
	if err != nil {
		return res, err
	}
	defer tr.Close()

	next := durabilityWorkload(objects, seed)
	now := 0.0
	for i := 0; i < objects; i++ {
		id, p := next(now)
		if err := tr.Update(id, p, now); err != nil {
			return res, err
		}
	}
	base := tr.Metrics()

	// Phase 1: single-report updates.
	deadline := time.Now().Add(time.Duration(durationSec * float64(time.Second) / 2))
	ops := 0
	for time.Now().Before(deadline) {
		now += 0.001
		id, p := next(now)
		if err := tr.Update(id, p, now); err != nil {
			return res, err
		}
		ops++
	}
	res.UpdateOpsPerSec = float64(ops) / (durationSec / 2)

	// Phase 2: batched updates (one durability point per batch).
	deadline = time.Now().Add(time.Duration(durationSec * float64(time.Second) / 2))
	reports := 0
	batch := make([]rexptree.Report, batchSize)
	for time.Now().Before(deadline) {
		now += 0.001
		for i := range batch {
			id, p := next(now)
			batch[i] = rexptree.Report{ID: id, Point: p}
		}
		if err := tr.UpdateBatch(batch, now); err != nil {
			return res, err
		}
		reports += len(batch)
	}
	res.BatchRepPerSec = float64(reports) / (durationSec / 2)

	m := tr.Metrics().Sub(base)
	res.WALAppends = m.WALAppends
	res.WALBytes = m.WALBytes
	res.WALFsyncs = m.WALFsyncs
	res.Checkpoints = m.Checkpoints
	return res, nil
}

func runDurabilityBench(objects, batchSize int, durationSec float64, seed int64, out string, progress func(string)) error {
	dir, err := os.MkdirTemp("", "rexpbench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := durabilityReport{
		Config: durabilityConfig{
			Objects:     objects,
			DurationSec: durationSec,
			BatchSize:   batchSize,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Seed:        seed,
		},
		Relative: map[string]string{},
	}
	for _, p := range []struct {
		policy rexptree.Durability
		dst    *durabilityResult
	}{
		{rexptree.DurabilityNone, &report.None},
		{rexptree.DurabilityBatched, &report.Batched},
		{rexptree.DurabilityOnCommit, &report.OnCommit},
	} {
		progress(fmt.Sprintf("measuring durability=%s", p.policy))
		res, err := benchDurability(dir, p.policy, objects, batchSize, durationSec, seed)
		if err != nil {
			return fmt.Errorf("durability %s: %w", p.policy, err)
		}
		*p.dst = res
	}
	if report.None.UpdateOpsPerSec > 0 {
		report.Relative["batched"] = fmt.Sprintf("%.3f", report.Batched.UpdateOpsPerSec/report.None.UpdateOpsPerSec)
		report.Relative["on-commit"] = fmt.Sprintf("%.3f", report.OnCommit.UpdateOpsPerSec/report.None.UpdateOpsPerSec)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("durability bench: none %.0f ops/s, batched %.0f ops/s (%s rel), on-commit %.0f ops/s (%s rel) -> %s\n",
		report.None.UpdateOpsPerSec,
		report.Batched.UpdateOpsPerSec, report.Relative["batched"],
		report.OnCommit.UpdateOpsPerSec, report.Relative["on-commit"], out)
	return nil
}
