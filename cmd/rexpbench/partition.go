package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"rexptree"
)

// The partition-bench mode compares the two shard-partitioning
// policies on a workload where speed and location correlate — slow
// objects (pedestrians) cluster in one part of space, fast objects
// (highway traffic) in another, mirroring the mixed urban/highway
// scenario behind the paper's velocity-aware bounding rectangles:
//
//   - hash: the default id-hash partition.  Every shard holds the full
//     speed mix, so every shard's time-parameterized summary covers
//     most of space and point-ish queries must visit all K shards;
//   - speed: objects are routed by |velocity| band.  Each shard's
//     summary stays tight around its band's region, so a small query
//     window over near-future times prunes the shards whose summary it
//     provably misses.
//
// Both sharded configurations and a single-tree reference are loaded
// with the same reports (including a re-reporting round that moves
// objects across band boundaries, exercising re-routing), checked for
// element-wise identical query results, then measured: shard
// visit/prune counters over a fixed query batch, and query throughput
// over the -duration window.  The JSON report lands in -partout.

// partitionConfig echoes the benchmark parameters into the JSON.
type partitionConfig struct {
	Objects      int       `json:"objects"`
	Shards       int       `json:"shards"`
	Workers      int       `json:"workers"`
	DurationSec  float64   `json:"duration_sec"`
	QueryExtent  float64   `json:"query_extent"`
	SpeedBands   []float64 `json:"speed_bands"`
	IOLatencyStr string    `json:"io_latency"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	Seed         int64     `json:"seed"`
}

// partitionResult is one sharded configuration's measurement.
type partitionResult struct {
	ShardVisits     uint64  `json:"shard_visits"`
	ShardsPruned    uint64  `json:"shards_pruned"`
	PruneRatio      float64 `json:"prune_ratio"`
	AvgShardsPerQry float64 `json:"avg_shards_per_query"`
	QueryOpsPerSec  float64 `json:"query_ops_per_sec"`
	NodeVisits      uint64  `json:"query_node_visits"`
	BufferReads     uint64  `json:"buffer_reads"`
}

// partitionWorkload builds reports whose speed class correlates with a
// spatial region: class c ∈ {0..3} lives in the x-band [250c, 250c+250)
// with |velocity| drawn from the class's range.  pass shifts the class
// assignment, so re-reporting under pass+1 moves every object across a
// band boundary.
func partitionWorkload(n int, seed int64, pass int) []rexptree.Report {
	rng := rand.New(rand.NewSource(seed + int64(pass)*1000))
	speeds := [4][2]float64{{0.05, 0.45}, {0.6, 1.8}, {2.2, 7.5}, {8.5, 25}}
	batch := make([]rexptree.Report, n)
	for i := range batch {
		class := (i + pass) % 4
		lo, hi := speeds[class][0], speeds[class][1]
		sp := lo + rng.Float64()*(hi-lo)
		ang := rng.Float64() * 2 * math.Pi
		batch[i] = rexptree.Report{
			ID: uint32(i + 1),
			Point: rexptree.Point{
				Pos:     rexptree.Vec{float64(class)*250 + rng.Float64()*250, rng.Float64() * 1000},
				Vel:     rexptree.Vec{sp * math.Cos(ang), sp * math.Sin(ang)},
				Time:    float64(pass) * 5,
				Expires: float64(pass)*5 + 500,
			},
		}
	}
	return batch
}

// partitionBands are the fixed |velocity| boundaries matching the
// workload's four speed classes.
var partitionBands = []float64{0.5, 2, 8}

func loadReports(apply func([]rexptree.Report, float64) error, reports []rexptree.Report, now float64) error {
	for i := 0; i < len(reports); i += 1000 {
		end := min(i+1000, len(reports))
		if err := apply(reports[i:end], now); err != nil {
			return err
		}
	}
	return nil
}

// pointishQuery issues one small near-future window query, the shape
// shard pruning is designed for.
func pointishQuery(rng *rand.Rand, extent, now float64) (rexptree.Rect, float64, float64) {
	lo := rexptree.Vec{rng.Float64() * (1000 - extent), rng.Float64() * (1000 - extent)}
	r := rexptree.Rect{Lo: lo, Hi: rexptree.Vec{lo[0] + extent, lo[1] + extent}}
	at := now + rng.Float64()*4
	return r, at, at + 2
}

// checkIdentical runs a query battery on the single tree and both
// sharded configurations and reports whether every result set matches
// element-wise.  Mismatches are described on stderr.
func checkIdentical(single *rexptree.Tree, variants map[string]*rexptree.ShardedTree, extent, now float64, seed int64) bool {
	rng := rand.New(rand.NewSource(seed + 77))
	identical := true
	mismatch := func(format string, args ...any) {
		identical = false
		fmt.Fprintf(os.Stderr, "rexpbench: result mismatch: "+format+"\n", args...)
	}
	equal := func(name string, want, got []rexptree.Result) {
		if len(want) != len(got) {
			mismatch("%s: %d results, single tree has %d", name, len(got), len(want))
			return
		}
		for i := range want {
			if want[i] != got[i] {
				mismatch("%s: result %d differs: %+v vs %+v", name, i, got[i], want[i])
				return
			}
		}
	}
	sortByID := func(rs []rexptree.Result) {
		sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	}
	for q := 0; q < 200; q++ {
		r, t1, t2 := pointishQuery(rng, extent, now)
		r2 := rexptree.Rect{
			Lo: rexptree.Vec{r.Lo[0] + 20, r.Lo[1] + 20},
			Hi: rexptree.Vec{r.Hi[0] + 20, r.Hi[1] + 20},
		}
		pos := rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000}

		ts, err := single.Timeslice(r, t1, now)
		if err == nil {
			sortByID(ts)
		}
		win, werr := single.Window(r, t1, t2, now)
		if werr == nil {
			sortByID(win)
		}
		mov, merr := single.Moving(r, r2, t1, t2, now)
		if merr == nil {
			sortByID(mov)
		}
		nn, nerr := single.Nearest(pos, t1, 10, now)
		if nerr == nil {
			dist := func(res rexptree.Result) float64 {
				p := res.Point.At(t1)
				dx, dy := p[0]-pos[0], p[1]-pos[1]
				return dx*dx + dy*dy
			}
			sort.Slice(nn, func(i, j int) bool {
				di, dj := dist(nn[i]), dist(nn[j])
				if di != dj {
					return di < dj
				}
				return nn[i].ID < nn[j].ID
			})
		}
		if err != nil || werr != nil || merr != nil || nerr != nil {
			mismatch("single-tree query failed: %v %v %v %v", err, werr, merr, nerr)
			return false
		}
		for name, st := range variants {
			if got, err := st.Timeslice(r, t1, now); err != nil {
				mismatch("%s timeslice: %v", name, err)
			} else {
				equal(name+" timeslice", ts, got)
			}
			if got, err := st.Window(r, t1, t2, now); err != nil {
				mismatch("%s window: %v", name, err)
			} else {
				equal(name+" window", win, got)
			}
			if got, err := st.Moving(r, r2, t1, t2, now); err != nil {
				mismatch("%s moving: %v", name, err)
			} else {
				equal(name+" moving", mov, got)
			}
			if got, err := st.Nearest(pos, t1, 10, now); err != nil {
				mismatch("%s nearest: %v", name, err)
			} else {
				equal(name+" nearest", nn, got)
			}
		}
	}
	return identical
}

// benchPartitioned measures one sharded configuration: counter deltas
// over a fixed query batch, then throughput over the duration window.
func benchPartitioned(st *rexptree.ShardedTree, cfg partitionConfig, now float64) (partitionResult, error) {
	var res partitionResult

	before := st.Metrics()
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	const counted = 1000
	for q := 0; q < counted; q++ {
		r, t1, t2 := pointishQuery(rng, cfg.QueryExtent, now)
		if _, err := st.Window(r, t1, t2, now); err != nil {
			return res, err
		}
	}
	after := st.Metrics()
	res.ShardVisits = after.ShardVisits - before.ShardVisits
	res.ShardsPruned = after.ShardsPruned - before.ShardsPruned
	if total := res.ShardVisits + res.ShardsPruned; total > 0 {
		res.PruneRatio = float64(res.ShardsPruned) / float64(total)
	}
	res.AvgShardsPerQry = float64(res.ShardVisits) / counted
	res.NodeVisits = after.QueryNodeVisits - before.QueryNodeVisits
	res.BufferReads = after.BufferReads - before.BufferReads

	d := time.Duration(cfg.DurationSec * float64(time.Second))
	// Warm the buffer pools before timing.
	if _, err := measure(cfg.Workers, d/4, func(_ int, rng *rand.Rand) error {
		r, t1, t2 := pointishQuery(rng, cfg.QueryExtent, now)
		_, err := st.Window(r, t1, t2, now)
		return err
	}); err != nil {
		return res, err
	}
	ops, err := measure(cfg.Workers, d, func(_ int, rng *rand.Rand) error {
		r, t1, t2 := pointishQuery(rng, cfg.QueryExtent, now)
		_, err := st.Window(r, t1, t2, now)
		return err
	})
	if err != nil {
		return res, err
	}
	res.QueryOpsPerSec = ops
	return res, nil
}

// runPartitionBench executes the partition-policy comparison and
// writes the JSON report.
func runPartitionBench(objects, shards, workers int, durationSec float64, ioLat time.Duration, seed int64, out string, progress func(string)) error {
	opts := rexptree.DefaultOptions()
	opts.IOLatency = ioLat
	cfg := partitionConfig{
		Objects:      objects,
		Shards:       shards,
		Workers:      workers,
		DurationSec:  durationSec,
		QueryExtent:  40,
		SpeedBands:   partitionBands,
		IOLatencyStr: ioLat.String(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Seed:         seed,
	}
	if shards != len(partitionBands)+1 {
		return fmt.Errorf("partition bench needs -shards %d to match its %d speed bands", len(partitionBands)+1, len(partitionBands)+1)
	}

	progress("loading single-tree reference and sharded configurations")
	single, err := rexptree.Open(opts)
	if err != nil {
		return err
	}
	defer single.Close()
	variants := map[string]*rexptree.ShardedTree{}
	for _, v := range []struct {
		name string
		so   rexptree.ShardedOptions
	}{
		{"hash", rexptree.ShardedOptions{Options: opts, Shards: shards, Workers: workers}},
		{"speed", rexptree.ShardedOptions{Options: opts, Shards: shards, Workers: workers,
			Partition: rexptree.PartitionSpeed, SpeedBands: partitionBands}},
	} {
		st, err := rexptree.OpenSharded(v.so)
		if err != nil {
			return err
		}
		defer st.Close()
		variants[v.name] = st
	}

	// Two reporting rounds: the second shifts every object's speed
	// class, so the speed configuration re-routes the whole population.
	for pass := 0; pass < 2; pass++ {
		reports := partitionWorkload(objects, seed, pass)
		now := float64(pass) * 5
		if err := loadReports(func(b []rexptree.Report, t float64) error {
			for _, r := range b {
				if err := single.Update(r.ID, r.Point, t); err != nil {
					return err
				}
			}
			return nil
		}, reports, now); err != nil {
			return err
		}
		for name, st := range variants {
			if err := loadReports(st.UpdateBatch, reports, now); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	now := 5.0

	progress("verifying result-set equality across configurations")
	identical := checkIdentical(single, variants, cfg.QueryExtent, now, seed)

	report := struct {
		Config           partitionConfig `json:"config"`
		Hash             partitionResult `json:"hash"`
		Speed            partitionResult `json:"speed"`
		Rerouted         uint64          `json:"speed_rerouted_objects"`
		VisitReduction   float64         `json:"shard_visit_reduction"`
		QuerySpeedup     float64         `json:"speed_query_speedup_vs_hash"`
		ResultsIdentical bool            `json:"results_identical"`
	}{Config: cfg, ResultsIdentical: identical}
	report.Rerouted = variants["speed"].Metrics().Rerouted

	progress("measuring hash partition")
	report.Hash, err = benchPartitioned(variants["hash"], cfg, now)
	if err != nil {
		return err
	}
	progress("measuring speed partition")
	report.Speed, err = benchPartitioned(variants["speed"], cfg, now)
	if err != nil {
		return err
	}
	if report.Speed.ShardVisits > 0 {
		report.VisitReduction = float64(report.Hash.ShardVisits) / float64(report.Speed.ShardVisits)
	}
	if report.Hash.QueryOpsPerSec > 0 {
		report.QuerySpeedup = report.Speed.QueryOpsPerSec / report.Hash.QueryOpsPerSec
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("partition bench: hash %.2f shards/query at %.0f ops/s, speed %.2f shards/query at %.0f ops/s (%.2fx visits, %.2fx throughput, identical=%v) -> %s\n",
		report.Hash.AvgShardsPerQry, report.Hash.QueryOpsPerSec,
		report.Speed.AvgShardsPerQry, report.Speed.QueryOpsPerSec,
		report.VisitReduction, report.QuerySpeedup, report.ResultsIdentical, out)
	return nil
}
