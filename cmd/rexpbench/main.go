// Command rexpbench regenerates the performance figures of the paper
// (Figures 9-16): it replays the §5.1 workloads against the tree
// configurations each figure compares and prints the measured series
// as a table.
//
// Usage:
//
//	rexpbench [-figure 13] [-scale 0.1] [-seed 1] [-quiet]
//	rexpbench -throughput [-shards 4] [-workers 4] [-objects 20000] [-duration 2] [-shardout BENCH_shard.json]
//	rexpbench -partitionbench [-objects 20000] [-duration 2] [-partout BENCH_partition.json]
//
// With no -figure it runs every figure.  -scale is the fraction of the
// paper's workload size (100,000 objects, 1,000,000 insertions);
// -scale 1 reproduces the full setup.
//
// With -throughput it instead runs the concurrent-throughput
// comparison (single-mutex tree vs rwmutex tree vs ShardedTree) and
// writes aggregate ops/sec to -shardout; see concurrent.go.
//
// With -partitionbench it compares the hash and speed-band shard
// partitioning policies on a spatially-correlated mixed-speed workload
// (shard visits, pruning ratio, query throughput, and a result-set
// equality check against a single tree) and writes -partout; see
// partition.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"rexptree"
	"rexptree/internal/experiments"
	"rexptree/internal/obs"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure to reproduce (9..16); empty = all")
		scale     = flag.Float64("scale", 0.1, "fraction of the paper's workload scale")
		seed      = flag.Int64("seed", 1, "workload and tree seed")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress lines")
		csv       = flag.String("csv", "", "also append raw results as CSV to this file")
		asJSON    = flag.Bool("json", false, "print the aggregate metrics snapshot as JSON after all figures")
		serve     = flag.String("serve", "", "serve live Prometheus metrics at /metrics on this address while figures run (e.g. :9090)")
		noPprof   = flag.Bool("nopprof", false, "serve mode: do not mount net/http/pprof under /debug/pprof/")
		noRuntime = flag.Bool("noruntime", false, "serve mode: do not append Go runtime metrics to /metrics scrapes")

		throughput = flag.Bool("throughput", false, "run the concurrent-throughput comparison instead of figure replay")
		shards     = flag.Int("shards", 4, "number of shards for the sharded configuration (-throughput/-partitionbench modes)")
		workers    = flag.Int("workers", 4, "concurrent query workers per configuration (-throughput/-partitionbench modes)")
		objects    = flag.Int("objects", 20000, "objects loaded per configuration (-throughput/-partitionbench modes)")
		duration   = flag.Float64("duration", 2, "seconds per measurement phase (-throughput/-partitionbench modes)")
		ioLat      = flag.Duration("iolat", 100*time.Microsecond, "modeled random-access latency per page I/O, the paper's cost unit; 0 for RAM-speed stores (-throughput/-partitionbench modes)")
		shardOut   = flag.String("shardout", "BENCH_shard.json", "output file for the throughput report; - for stdout (-throughput mode)")

		partBench = flag.Bool("partitionbench", false, "run the shard-partitioning comparison (hash vs speed bands) instead of figure replay")
		partOut   = flag.String("partout", "BENCH_partition.json", "output file for the partition report; - for stdout (-partitionbench mode)")
		partition = flag.String("partition", "hash", "partition policy for the sharded configuration, hash or speed (-throughput mode)")

		readScale   = flag.Bool("readscale", false, "run the read-path scaling sweep (locked vs snapshot reads across worker counts) instead of figure replay")
		readWorkers = flag.String("readworkers", "1,2,4,8", "comma-separated reader worker counts for the -readscale sweep")
		readOut     = flag.String("readout", "BENCH_readpath.json", "output file for the read-scaling report; - for stdout (-readscale mode)")
		guardMin    = flag.Float64("guardmin", 0, "fail -readscale unless snapshot 1-worker throughput >= this fraction of the locked baseline (0 disables; 0.95 allows a 5% regression)")

		liveReshard = flag.Bool("livereshard", false, "run the live-reshard cost comparison (steady state vs mid-reshard mixed load) instead of figure replay")
		reshardOut  = flag.String("reshardout", "BENCH_reshard.json", "output file for the live-reshard report; - for stdout (-livereshard mode)")

		durBench  = flag.Bool("durability", false, "run the durability-policy comparison (none vs batched vs on-commit WAL) instead of figure replay")
		durOut    = flag.String("walout", "BENCH_wal.json", "output file for the durability report; - for stdout (-durability mode)")
		batchSize = flag.Int("batch", 100, "reports per UpdateBatch in the durability bench's batched phase (-durability mode)")

		replBench = flag.Bool("replbench", false, "run the replication bench (follower catch-up, steady-state lag, leader streaming overhead) instead of figure replay")
		replOut   = flag.String("replout", "BENCH_repl.json", "output file for the replication report; - for stdout (-replbench mode)")

		remote   = flag.String("remote", "", "drive a running rexpd at this address (host:port) with mixed update/query load")
		spawn    = flag.String("spawn", "", "spawn this rexpd binary on 127.0.0.1:0, bench it, then SIGTERM it (instead of -remote)")
		replay   = flag.String("replay", "", "remote mode: replay this rexpgen workload file instead of synthetic load")
		serveOut = flag.String("serveout", "BENCH_serve.json", "output file for the serving report; - for stdout (-remote/-spawn modes)")
	)
	flag.Parse()

	if *remote != "" || *spawn != "" {
		progress := func(line string) {
			if !*quiet {
				fmt.Fprintln(os.Stderr, line)
			}
		}
		if err := runRemoteBench(*remote, *spawn, *replay, *objects, *workers, *duration, *seed, *serveOut, progress); err != nil {
			fmt.Fprintf(os.Stderr, "rexpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *throughput || *partBench || *durBench || *readScale || *liveReshard || *replBench {
		progress := func(line string) {
			if !*quiet {
				fmt.Fprintln(os.Stderr, line)
			}
		}
		var err error
		if *replBench {
			err = runReplBench(*objects, *shards, *duration, *seed, *replOut, progress)
		} else if *liveReshard {
			err = runLiveReshardBench(*objects, *shards, *workers, *duration, *ioLat, *seed, *reshardOut, progress)
		} else if *readScale {
			var sweep []int
			sweep, err = parseWorkerSweep(*readWorkers)
			if err == nil {
				err = runReadScale(*objects, *shards, sweep, *duration, *ioLat, *seed, *guardMin, *readOut, progress)
			}
		} else if *durBench {
			err = runDurabilityBench(*objects, *batchSize, *duration, *seed, *durOut, progress)
		} else if *partBench {
			err = runPartitionBench(*objects, *shards, *workers, *duration, *ioLat, *seed, *partOut, progress)
		} else {
			var policy rexptree.PartitionPolicy
			policy, err = rexptree.ParsePartitionPolicy(*partition)
			if err == nil {
				err = runThroughput(*objects, *shards, *workers, *duration, *ioLat, *seed, policy, *shardOut, progress)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	met := obs.New()
	experiments.Instrument = met
	if *serve != "" {
		mux := http.NewServeMux()
		var metricsH http.Handler = obs.Handler(met.Snapshot)
		if !*noRuntime {
			metricsH = obs.WithRuntimeMetrics(metricsH, obs.DefaultPrefix)
		}
		mux.Handle("/metrics", metricsH)
		if !*noPprof {
			obs.RegisterPprof(mux)
		}
		go func() {
			fmt.Fprintf(os.Stderr, "rexpbench: serving Prometheus metrics at http://%s/metrics\n", *serve)
			if err := http.ListenAndServe(*serve, mux); err != nil {
				fmt.Fprintf(os.Stderr, "rexpbench: metrics server: %v\n", err)
			}
		}()
	}

	var csvW *os.File
	if *csv != "" {
		f, err := os.OpenFile(*csv, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvW = f
		st, _ := f.Stat()
		if st != nil && st.Size() == 0 {
			fmt.Fprintln(f, "figure,series,x,search_io,update_io,queue_io,index_pages,expired_frac,queries,updates,scale,seed")
		}
	}

	ids := experiments.FigureIDs()
	if *figure != "" {
		ids = []string{*figure}
	}
	progress := func(line string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := experiments.RunFigure(id, *scale, *seed, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Printf("(scale %g, seed %d, %s)\n\n", *scale, *seed, time.Since(start).Round(time.Second))
		if csvW != nil {
			for _, s := range fig.Series {
				for _, m := range s.Points {
					fmt.Fprintf(csvW, "%s,%q,%g,%.4f,%.4f,%.4f,%.2f,%.5f,%d,%d,%g,%d\n",
						fig.ID, s.Label, m.X, m.SearchIO, m.UpdateIO, m.QueueIO,
						m.IndexPages, m.ExpiredFrac, m.Queries, m.Updates, *scale, *seed)
				}
			}
		}
	}

	if *asJSON {
		out, err := json.MarshalIndent(met.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexpbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	}
}
