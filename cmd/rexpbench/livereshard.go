package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rexptree"
)

// The live-reshard mode measures what an online reshard costs the
// serving path: the same mixed query/update load is driven twice over
// one sharded index — once in steady state, once while the engine
// snapshots, backfills and cuts over to a speed-partitioned generation
// — and the two phases' throughput and latency quantiles are compared.
// The cutover's exclusive mutation stall (the only writer-visible
// pause of the whole operation) is read back off the index metrics.

// liveReshardConfig echoes the benchmark parameters into the JSON.
type liveReshardConfig struct {
	Objects      int     `json:"objects"`
	Shards       int     `json:"shards"`
	QueryWorkers int     `json:"query_workers"`
	DurationSec  float64 `json:"steady_duration_sec"`
	IOLatencyStr string  `json:"io_latency"`
	Seed         int64   `json:"seed"`
}

// liveReshardPhase is one measured load window.
type liveReshardPhase struct {
	DurationSec     float64 `json:"duration_sec"`
	QueryOpsPerSec  float64 `json:"query_ops_per_sec"`
	QueryP50Ms      float64 `json:"query_p50_ms"`
	QueryP99Ms      float64 `json:"query_p99_ms"`
	UpdateOpsPerSec float64 `json:"update_ops_per_sec"`
	UpdateP50Ms     float64 `json:"update_p50_ms"`
	UpdateP99Ms     float64 `json:"update_p99_ms"`
}

// runMixedLoad drives `workers` query goroutines and one updater
// against s until stop closes, then reports throughput and latency
// quantiles over the actual window.
func runMixedLoad(s *rexptree.ShardedTree, workers, objects int, seed int64, stop <-chan struct{}) (liveReshardPhase, error) {
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
		qlats    = make([][]time.Duration, workers)
		ulats    []time.Duration
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := randQuery(s, rng, 60); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				qlats[w] = append(qlats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 7919))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := uint32(rng.Intn(objects) + 1)
			p := rexptree.Point{
				Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     rexptree.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
				Expires: rexptree.NoExpiry(),
			}
			t0 := time.Now()
			if err := s.Update(id, p, 0); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			ulats = append(ulats, time.Since(t0))
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)

	var ph liveReshardPhase
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ph, err
	}
	var qall []time.Duration
	for _, l := range qlats {
		qall = append(qall, l...)
	}
	ph.DurationSec = elapsed.Seconds()
	ph.QueryOpsPerSec = float64(len(qall)) / elapsed.Seconds()
	ph.UpdateOpsPerSec = float64(len(ulats)) / elapsed.Seconds()
	ph.QueryP50Ms = quantileMs(qall, 0.50)
	ph.QueryP99Ms = quantileMs(qall, 0.99)
	ph.UpdateP50Ms = quantileMs(ulats, 0.50)
	ph.UpdateP99Ms = quantileMs(ulats, 0.99)
	return ph, nil
}

// closeAfter closes a stop channel after d.
func closeAfter(d time.Duration) <-chan struct{} {
	stop := make(chan struct{})
	time.AfterFunc(d, func() { close(stop) })
	return stop
}

// runLiveReshardBench executes the live-reshard comparison and writes
// the JSON report.
func runLiveReshardBench(objects, shards, workers int, durationSec float64, ioLat time.Duration, seed int64, out string, progress func(string)) error {
	opts := rexptree.DefaultOptions()
	opts.IOLatency = ioLat
	s, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: shards})
	if err != nil {
		return err
	}
	defer s.Close()

	load := throughputWorkload(objects, seed)
	for i := 0; i < len(load); i += 1000 {
		end := min(i+1000, len(load))
		if err := s.UpdateBatch(load[i:end], 0); err != nil {
			return err
		}
	}

	cfg := liveReshardConfig{
		Objects:      objects,
		Shards:       shards,
		QueryWorkers: workers,
		DurationSec:  durationSec,
		IOLatencyStr: ioLat.String(),
		Seed:         seed,
	}
	report := struct {
		Config        liveReshardConfig `json:"config"`
		Steady        liveReshardPhase  `json:"steady"`
		DuringReshard liveReshardPhase  `json:"during_reshard"`
		// The reshard's wall clock, and the slice of it writers could
		// actually observe: the cutover's exclusive stall.
		ReshardWallMs  float64 `json:"reshard_wall_ms"`
		CutoverStallMs float64 `json:"cutover_stall_ms"`
		Backfilled     uint64  `json:"backfilled"`
		DualApplied    uint64  `json:"dual_applied"`
		Generation     int     `json:"generation"`
		// during_reshard p99 over steady p99 (queries); the headline
		// "what does an online reshard cost the read path" ratio.
		QueryP99Ratio float64 `json:"query_p99_ratio"`
	}{Config: cfg}

	d := time.Duration(durationSec * float64(time.Second))
	progress(fmt.Sprintf("steady state (%d objects, %d shards, %d query workers)", objects, shards, workers))
	report.Steady, err = runMixedLoad(s, workers, objects, seed, closeAfter(d))
	if err != nil {
		return err
	}

	// The target layout: same shard count, speed-banded.  The workload's
	// velocity components are uniform in [-1,1], so spread the bands
	// across the resulting |v| range.
	spec := rexptree.ReshardSpec{Shards: shards, Policy: rexptree.PartitionSpeed}
	for i := 1; i < shards; i++ {
		spec.SpeedBands = append(spec.SpeedBands, 1.4*float64(i)/float64(shards))
	}
	progress(fmt.Sprintf("live reshard to %d speed-banded shards under load", shards))
	before := s.Metrics()
	stop := make(chan struct{})
	var reshardErr error
	wallStart := time.Now()
	go func() {
		reshardErr = s.Reshard(spec)
		close(stop)
	}()
	report.DuringReshard, err = runMixedLoad(s, workers, objects, seed+1, stop)
	report.ReshardWallMs = float64(time.Since(wallStart)) / float64(time.Millisecond)
	if err != nil {
		return err
	}
	if reshardErr != nil {
		return fmt.Errorf("live reshard: %w", reshardErr)
	}

	diff := s.Metrics().Sub(before)
	if diff.ReshardCutoverStall.Count > 0 {
		report.CutoverStallMs = diff.ReshardCutoverStall.Mean() * 1000
	}
	report.Backfilled = diff.ReshardBackfilled
	report.DualApplied = diff.ReshardDualApplied
	report.Generation = s.Generation()
	if report.Steady.QueryP99Ms > 0 {
		report.QueryP99Ratio = report.DuringReshard.QueryP99Ms / report.Steady.QueryP99Ms
	}
	if got := s.Len(); got != objects {
		return fmt.Errorf("object count changed across the reshard: %d, want %d", got, objects)
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("post-reshard validate: %w", err)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("live reshard: %.0f ms wall, %.2f ms cutover stall; query p99 %.2f ms steady vs %.2f ms during (%.2fx) -> %s\n",
		report.ReshardWallMs, report.CutoverStallMs,
		report.Steady.QueryP99Ms, report.DuringReshard.QueryP99Ms, report.QueryP99Ratio, out)
	return nil
}
