package main

// The -remote mode: drive a running rexpd over HTTP with concurrent
// mixed update/query traffic and publish the sustained rates to
// BENCH_serve.json — the serving-layer companion of the in-process
// throughput bench in concurrent.go.  With -spawn the bench launches
// its own rexpd (an existing binary; the Makefile builds it first),
// parses the daemon's serving line for the bound address, and shuts it
// down with SIGTERM afterwards, so `make bench-serve` measures the
// whole lifecycle including a graceful drain.  With -replay it streams
// a rexpgen workload file instead of synthetic traffic: inserts and
// deletes as NDJSON ingest lines, queries as GETs — the path the README
// quickstart walks by hand.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rexptree/internal/geom"
	"rexptree/internal/server"
	"rexptree/internal/workload"
)

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	Config  serveConfig   `json:"config"`
	Preload *phaseReport  `json:"preload,omitempty"`
	Updates *updateReport `json:"updates,omitempty"`
	Queries *queryReport  `json:"queries,omitempty"`
	Replay  *replayReport `json:"replay,omitempty"`
}

type serveConfig struct {
	Addr      string  `json:"addr"`
	Spawned   bool    `json:"spawned,omitempty"`
	Objects   int     `json:"objects,omitempty"`
	Workers   int     `json:"workers"`
	DurationS float64 `json:"duration_s,omitempty"`
	Seed      int64   `json:"seed"`
	Replay    string  `json:"replay,omitempty"`
}

type phaseReport struct {
	Objects int     `json:"objects"`
	Seconds float64 `json:"seconds"`
	PerSec  float64 `json:"per_sec"`
}

type updateReport struct {
	Acked     int     `json:"acked"`
	Batches   int     `json:"batches"`
	Rejected  int     `json:"rejected_429"`
	PerSec    float64 `json:"updates_per_sec"`
	MeanBatch float64 `json:"mean_batch_ms"`
}

type queryReport struct {
	Count  int     `json:"count"`
	PerSec float64 `json:"queries_per_sec"`
	P50ms  float64 `json:"p50_ms"`
	P99ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type replayReport struct {
	Inserts int     `json:"inserts"`
	Deletes int     `json:"deletes"`
	Queries int     `json:"queries"`
	Results int     `json:"results"`
	Seconds float64 `json:"seconds"`
	OpsSec  float64 `json:"ops_per_sec"`
}

// remoteClient wraps the target daemon's base URL.
type remoteClient struct {
	base string
	hc   *http.Client
}

func newRemoteClient(addr string) *remoteClient {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &remoteClient{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

// post sends body to path and decodes the JSON response into out.
// A 429 is returned as an *overloadError carrying the server's
// Retry-After hint so callers can back off and retry.
func (c *remoteClient) post(path string, body []byte, out any) error {
	resp, err := c.hc.Post(c.base+path, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusTooManyRequests {
		return &overloadError{retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// get fetches path?query and decodes the JSON response into out.
func (c *remoteClient) get(path string, query url.Values, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// overloadError is a 429 refusal (admission control or the per-client
// rate limiter); retryAfter is the server's Retry-After hint, 0 when
// the header was absent or unparseable.
type overloadError struct{ retryAfter time.Duration }

func (e *overloadError) Error() string {
	if e.retryAfter > 0 {
		return fmt.Sprintf("server overloaded (429, retry after %v)", e.retryAfter)
	}
	return "server overloaded (429)"
}

// wait picks the back-off before retrying: the server's hint when it
// sent one, else the caller's fallback — in both cases jittered over
// [d/2, 3d/2) so a fleet of refused workers does not return in
// lockstep and re-overload the server at the same instant.
func (e *overloadError) wait(fallback time.Duration) time.Duration {
	d := e.retryAfter
	if d <= 0 {
		d = fallback
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// parseRetryAfter reads the delay-seconds form of a Retry-After value
// (the only form rexpd sends).
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// batchAck mirrors the server's batch response.
type batchAck struct {
	Applied int     `json:"applied"`
	Deleted int     `json:"deleted"`
	Batches int     `json:"batches"`
	Clock   float64 `json:"clock"`
}

// queryAck mirrors the server's query response envelope.
type queryAck struct {
	Now   float64 `json:"now"`
	Count int     `json:"count"`
}

// runRemoteBench is the -remote / -spawn entry point.
func runRemoteBench(addr, spawnBin, replayFile string, objects, workers int, durationSec float64, seed int64, out string, progress func(string)) error {
	spawned := false
	if spawnBin != "" {
		if addr != "" {
			return fmt.Errorf("-remote and -spawn are mutually exclusive")
		}
		got, stop, err := spawnRexpd(spawnBin, progress)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				progress(fmt.Sprintf("rexpbench: spawned rexpd: %v", err))
			}
		}()
		addr = got
		spawned = true
	}

	c := newRemoteClient(addr)
	if err := c.get("/healthz", nil, nil); err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}

	report := serveReport{Config: serveConfig{
		Addr: c.base, Spawned: spawned, Workers: workers, Seed: seed, Replay: replayFile,
	}}

	if replayFile != "" {
		rr, err := replayWorkload(c, replayFile, progress)
		if err != nil {
			return err
		}
		report.Replay = rr
	} else {
		report.Config.Objects = objects
		report.Config.DurationS = durationSec
		if err := syntheticLoad(c, &report, objects, workers, durationSec, seed, progress); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	progress("rexpbench: wrote " + out)
	return nil
}

// spawnRexpd launches an rexpd binary on a kernel-chosen port with an
// in-memory index, returning the bound address and a stop function that
// SIGTERMs the daemon and waits for its clean shutdown.
func spawnRexpd(bin string, progress func(string)) (addr string, stop func() error, err error) {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("spawn %s: %w", bin, err)
	}

	addrc := make(chan string, 1)
	clean := make(chan bool, 1)
	go func() {
		sawClean := false
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			progress("  " + line)
			if rest, ok := strings.CutPrefix(line, "rexpd: serving http://"); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrc <- rest[:i]:
					default:
					}
				}
			}
			if strings.Contains(line, "clean shutdown") {
				sawClean = true
			}
		}
		clean <- sawClean
	}()

	select {
	case addr = <-addrc:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("spawned rexpd did not report a serving address")
	}

	stop = func() error {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		// Wait for the stderr scanner to hit EOF (the daemon exiting
		// closes the pipe) before cmd.Wait, which would close the pipe
		// under the scanner and can drop the final lines.
		var sawClean bool
		select {
		case sawClean = <-clean:
		case <-time.After(time.Minute):
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("rexpd did not exit within a minute of SIGTERM")
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("rexpd exit: %w", err)
		}
		if !sawClean {
			return fmt.Errorf("rexpd exited without reporting a clean shutdown")
		}
		return nil
	}
	return addr, stop, nil
}

// --- Synthetic mixed load ----------------------------------------------

// The synthetic space: objects roam [0, spaceSide]^2 at up to maxSpeed.
const (
	spaceSide   = 1000.0
	maxSpeed    = 2.0
	updateChunk = 100
)

func randRecord(rng *rand.Rand, id uint32, t float64) server.Record {
	return server.Record{
		ID:   id,
		Pos:  []float64{rng.Float64() * spaceSide, rng.Float64() * spaceSide},
		Vel:  []float64{(rng.Float64()*2 - 1) * maxSpeed, (rng.Float64()*2 - 1) * maxSpeed},
		Time: t,
	}
}

func ndjson(recs []server.Record) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		enc.Encode(r)
	}
	return buf.Bytes()
}

// syntheticLoad preloads the index, then runs workers/2 batch-update
// writers and workers/2 query readers concurrently for durationSec,
// measuring sustained ack rates and query latency percentiles.
func syntheticLoad(c *remoteClient, report *serveReport, objects, workers int, durationSec float64, seed int64, progress func(string)) error {
	if workers < 2 {
		workers = 2
	}
	rng := rand.New(rand.NewSource(seed))

	// Preload: every object once, streamed as one NDJSON body.
	recs := make([]server.Record, objects)
	for i := range recs {
		recs[i] = randRecord(rng, uint32(i), 0)
	}
	start := time.Now()
	var ack batchAck
	if err := c.post("/v1/batch", ndjson(recs), &ack); err != nil {
		return fmt.Errorf("preload: %w", err)
	}
	if ack.Applied != objects {
		return fmt.Errorf("preload: applied %d of %d", ack.Applied, objects)
	}
	sec := time.Since(start).Seconds()
	report.Preload = &phaseReport{Objects: objects, Seconds: sec, PerSec: float64(objects) / sec}
	progress(fmt.Sprintf("rexpbench: preloaded %d objects in %.2fs (%.0f/s)", objects, sec, float64(objects)/sec))

	// Shared logical clock: each update advances it a millitick, so
	// report times are unique, increasing, and never race backwards.
	var tick atomic.Int64
	nextT := func() float64 { return float64(tick.Add(1)) / 1000.0 }

	nw := workers / 2
	nq := workers - nw
	deadline := time.Now().Add(time.Duration(durationSec * float64(time.Second)))

	var (
		mu       sync.Mutex
		acked    int
		batches  int
		rejected int
		batchMs  float64
		lats     []float64
		queries  int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(wseed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(wseed))
			for time.Now().Before(deadline) {
				chunk := make([]server.Record, updateChunk)
				for i := range chunk {
					chunk[i] = randRecord(rng, uint32(rng.Intn(objects)), nextT())
				}
				body := ndjson(chunk)
				t0 := time.Now()
				var ack batchAck
				err := c.post("/v1/batch", body, &ack)
				var oe *overloadError
				if errors.As(err, &oe) {
					mu.Lock()
					rejected++
					mu.Unlock()
					time.Sleep(oe.wait(10 * time.Millisecond))
					continue
				}
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				acked += ack.Applied
				batches++
				batchMs += time.Since(t0).Seconds() * 1000
				mu.Unlock()
			}
		}(seed + int64(w) + 1)
	}
	for w := 0; w < nq; w++ {
		wg.Add(1)
		go func(wseed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(wseed))
			for time.Now().Before(deadline) {
				q, path := randRemoteQuery(rng)
				t0 := time.Now()
				var ack queryAck
				if err := c.get(path, q, &ack); err != nil {
					fail(err)
					return
				}
				mu.Lock()
				queries++
				lats = append(lats, time.Since(t0).Seconds()*1000)
				mu.Unlock()
			}
		}(seed + int64(nw+w) + 1)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	report.Updates = &updateReport{
		Acked:    acked,
		Batches:  batches,
		Rejected: rejected,
		PerSec:   float64(acked) / durationSec,
	}
	if batches > 0 {
		report.Updates.MeanBatch = batchMs / float64(batches)
	}
	report.Queries = &queryReport{
		Count:  queries,
		PerSec: float64(queries) / durationSec,
		P50ms:  percentile(lats, 0.50),
		P99ms:  percentile(lats, 0.99),
		MaxMs:  percentile(lats, 1),
	}
	progress(fmt.Sprintf("rexpbench: sustained %.0f updates/s, %.0f queries/s (p50 %.2fms, p99 %.2fms, %d rejected)",
		report.Updates.PerSec, report.Queries.PerSec, report.Queries.P50ms, report.Queries.P99ms, rejected))
	return nil
}

// randRemoteQuery builds one of the four query types with "+N" clock-relative
// times, so the bench needs no view of the server's logical clock.
func randRemoteQuery(rng *rand.Rand) (url.Values, string) {
	vec := func(lo [2]float64, side float64) (string, string) {
		x, y := lo[0], lo[1]
		return fmt.Sprintf("%.3f,%.3f", x, y), fmt.Sprintf("%.3f,%.3f", x+side, y+side)
	}
	corner := func() [2]float64 {
		return [2]float64{rng.Float64() * (spaceSide - 50), rng.Float64() * (spaceSide - 50)}
	}
	v := url.Values{}
	switch rng.Intn(4) {
	case 0:
		lo, hi := vec(corner(), 50)
		v.Set("lo", lo)
		v.Set("hi", hi)
		v.Set("at", "+1")
		return v, "/v1/timeslice"
	case 1:
		lo, hi := vec(corner(), 50)
		v.Set("lo", lo)
		v.Set("hi", hi)
		v.Set("t1", "+1")
		v.Set("t2", "+2")
		return v, "/v1/window"
	case 2:
		lo1, hi1 := vec(corner(), 50)
		lo2, hi2 := vec(corner(), 50)
		v.Set("lo1", lo1)
		v.Set("hi1", hi1)
		v.Set("lo2", lo2)
		v.Set("hi2", hi2)
		v.Set("t1", "+1")
		v.Set("t2", "+2")
		return v, "/v1/moving"
	default:
		p := corner()
		v.Set("pos", fmt.Sprintf("%.3f,%.3f", p[0], p[1]))
		v.Set("k", "10")
		v.Set("at", "+1")
		return v, "/v1/nearest"
	}
}

func percentile(lats []float64, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	i := int(math.Ceil(p*float64(len(lats)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

// --- Workload replay ---------------------------------------------------

// replayWorkload streams a rexpgen text workload to the daemon in
// order: inserts and deletes accumulate into NDJSON ingest bodies,
// flushed before each query so the stream applies in sequence.
func replayWorkload(c *remoteClient, file string, progress func(string)) (*replayReport, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	rr := &replayReport{}
	start := time.Now()
	var pending []server.Record

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		var ack batchAck
		for {
			err := c.post("/v1/batch", ndjson(pending), &ack)
			var oe *overloadError
			if errors.As(err, &oe) {
				time.Sleep(oe.wait(50 * time.Millisecond))
				continue
			}
			if err != nil {
				return err
			}
			break
		}
		rr.Inserts += ack.Applied
		rr.Deletes += ack.Deleted
		pending = pending[:0]
		return nil
	}

	sc := workload.NewScanner(f)
	for sc.Scan() {
		op := sc.Op()
		switch op.Kind {
		case workload.OpInsert:
			at := op.Point.At(op.Time)
			expires := op.Point.TExp
			if !geom.IsFinite(expires) {
				expires = 0 // the wire encoding of "never expires"
			}
			pending = append(pending, server.Record{
				ID:      op.OID,
				Pos:     []float64{at[0], at[1]},
				Vel:     []float64{op.Point.Vel[0], op.Point.Vel[1]},
				Time:    op.Time,
				Expires: expires,
			})
		case workload.OpDelete:
			pending = append(pending, server.Record{Op: "delete", ID: op.OID, Time: op.Time})
		case workload.OpQuery:
			if err := flush(); err != nil {
				return nil, err
			}
			v, path := queryParams(op.Query)
			var ack queryAck
			if err := c.get(path, v, &ack); err != nil {
				return nil, err
			}
			rr.Queries++
			rr.Results += ack.Count
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	rr.Seconds = time.Since(start).Seconds()
	total := rr.Inserts + rr.Deletes + rr.Queries
	if rr.Seconds > 0 {
		rr.OpsSec = float64(total) / rr.Seconds
	}
	progress(fmt.Sprintf("rexpbench: replayed %d inserts, %d deletes, %d queries (%d results) in %.2fs",
		rr.Inserts, rr.Deletes, rr.Queries, rr.Results, rr.Seconds))
	return rr, nil
}

// queryParams translates a workload query to its GET endpoint.
func queryParams(q geom.Query) (url.Values, string) {
	ft := func(x float64) string { return strconv.FormatFloat(x, 'f', -1, 64) }
	vec := func(p geom.Vec) string { return ft(p[0]) + "," + ft(p[1]) }
	v := url.Values{}
	r1, r2 := q.Region.At(q.T1), q.Region.At(q.T2)
	switch workload.KindOfQuery(q) {
	case "timeslice":
		v.Set("lo", vec(r1.Lo))
		v.Set("hi", vec(r1.Hi))
		v.Set("at", ft(q.T1))
		return v, "/v1/timeslice"
	case "window":
		v.Set("lo", vec(r1.Lo))
		v.Set("hi", vec(r1.Hi))
		v.Set("t1", ft(q.T1))
		v.Set("t2", ft(q.T2))
		return v, "/v1/window"
	default:
		v.Set("lo1", vec(r1.Lo))
		v.Set("hi1", vec(r1.Hi))
		v.Set("lo2", vec(r2.Lo))
		v.Set("hi2", vec(r2.Hi))
		v.Set("t1", ft(q.T1))
		v.Set("t2", ft(q.T2))
		return v, "/v1/moving"
	}
}
