package main

// The -replbench mode: measure the replication stream end to end and
// publish BENCH_repl.json.  Three questions, three phases:
//
//  1. Catch-up: how fast does a cold follower converge?  The leader is
//     preloaded, then a follower bootstraps over HTTP and tails until
//     level; the report gives the transferred bytes and MB/s.
//  2. Steady state: with the follower level and the leader ingesting a
//     continuous update stream, how far behind does the follower run?
//     Sampled apply lag (seconds and bytes), mean and max.
//  3. Leader overhead: the leader's sustained UpdateBatch throughput
//     with no replication attached vs with a follower tailing — the
//     cost of feeding the stream, as a percentage.
//
// Everything runs in-process on temp dirs (the follower still goes
// through real HTTP over a loopback listener, exercising the same
// frames, endpoints and applier the production path uses).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"rexptree"
	"rexptree/internal/repl"
)

type replReport struct {
	Config  replBenchConfig  `json:"config"`
	Catchup replCatchup      `json:"catchup"`
	Steady  replSteady       `json:"steady"`
	Leader  replLeaderReport `json:"leader"`
}

type replBenchConfig struct {
	Objects   int     `json:"objects"`
	Shards    int     `json:"shards"`
	DurationS float64 `json:"duration_s"`
	Seed      int64   `json:"seed"`
}

type replCatchup struct {
	Records  int     `json:"records"`
	Bytes    int64   `json:"bytes"`
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
}

type replSteady struct {
	Applied     uint64  `json:"applied_records"`
	MeanLagS    float64 `json:"mean_lag_s"`
	MaxLagS     float64 `json:"max_lag_s"`
	MaxLagBytes int64   `json:"max_lag_bytes"`
	FinalLagS   float64 `json:"final_lag_s"`
	UpdatesPerS float64 `json:"leader_updates_per_sec"`
	FrameErrors uint64  `json:"frame_errors"`
	Reconnects  uint64  `json:"reconnects"`
}

type replLeaderReport struct {
	AlonePerSec     float64 `json:"alone_per_sec"`
	StreamingPerSec float64 `json:"streaming_per_sec"`
	OverheadPct     float64 `json:"overhead_pct"`
}

// runReplBench measures the replication stream; see the file comment.
func runReplBench(objects, shards int, durationSec float64, seed int64, out string, progress func(string)) error {
	dir, err := os.MkdirTemp("", "rexp-replbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := replReport{Config: replBenchConfig{
		Objects: objects, Shards: shards, DurationS: durationSec, Seed: seed,
	}}
	phaseDur := time.Duration(durationSec * float64(time.Second))
	rng := rand.New(rand.NewSource(seed))

	// Phase 3a first (cheapest to isolate): leader throughput with no
	// replication hub attached, on its own index.
	alone, err := leaderRate(filepath.Join(dir, "alone"), shards, objects, phaseDur, rng, nil)
	if err != nil {
		return err
	}
	report.Leader.AlonePerSec = alone
	progress(fmt.Sprintf("rexpbench: leader alone: %.0f updates/s", alone))

	// The replicated leader: durable index + hub + loopback HTTP.
	leaderBase := filepath.Join(dir, "leader")
	opts := rexptree.DefaultOptions()
	opts.Path = leaderBase
	opts.Durability = rexptree.DurabilityOnCommit
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: shards})
	if err != nil {
		return err
	}
	defer ix.Close()
	hub := repl.NewHub(ix, repl.DefaultRetainBytes)
	defer hub.Close()

	mux := http.NewServeMux()
	mux.Handle("GET /v1/backup", hub.BackupHandler())
	mux.Handle("GET /v1/wal", hub.WALHandler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hsrv := &http.Server{Handler: mux}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	leaderURL := "http://" + ln.Addr().String()

	// Preload, then measure a cold follower's catch-up over HTTP.
	clock := 0.0
	preload := func() error {
		batch := make([]rexptree.Report, 0, 512)
		for i := 0; i < objects; i++ {
			clock += 0.001
			batch = append(batch, benchReport(rng, uint32(i), clock))
			if len(batch) == cap(batch) {
				if err := ix.UpdateBatch(batch, clock); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			return ix.UpdateBatch(batch, clock)
		}
		return nil
	}
	if err := preload(); err != nil {
		return err
	}

	app, err := repl.NewApplier(repl.ApplierOptions{
		Leader: leaderURL,
		Dir:    filepath.Join(dir, "follower"),
		Logf:   func(format string, args ...any) { progress(fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		return err
	}
	defer app.Close()

	t0 := time.Now()
	if err := app.Open(context.Background()); err != nil {
		return err
	}
	app.Start()
	head, _ := hub.Feed().Head()
	for app.AppliedLSN() < head-1 {
		time.Sleep(5 * time.Millisecond)
	}
	catchup := time.Since(t0).Seconds()
	hst := hub.Stats()
	bytes := int64(hst.SnapshotBytes) + int64(hst.FeedBytes)
	report.Catchup = replCatchup{
		Records: objects,
		Bytes:   bytes,
		Seconds: catchup,
	}
	if catchup > 0 {
		report.Catchup.MBPerSec = float64(bytes) / (1 << 20) / catchup
	}
	progress(fmt.Sprintf("rexpbench: follower caught up: %d records, %.1f MiB in %.2fs (%.1f MB/s)",
		objects, float64(bytes)/(1<<20), catchup, report.Catchup.MBPerSec))

	// Steady state: continuous leader updates, sampled follower lag.
	var (
		lagSamples []float64
		maxLagS    float64
		maxLagB    int64
	)
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-t.C:
				s := app.LagSeconds()
				lagSamples = append(lagSamples, s)
				if s > maxLagS {
					maxLagS = s
				}
				if b := app.LagBytes(); b > maxLagB {
					maxLagB = b
				}
			}
		}
	}()

	updated, clock2, err := updateStream(ix, objects, clock, phaseDur, rng)
	if err != nil {
		return err
	}
	clock = clock2
	report.Leader.StreamingPerSec = float64(updated) / durationSec
	report.Steady.UpdatesPerS = report.Leader.StreamingPerSec

	// Let the follower drain before closing the books on lag.
	head, _ = hub.Feed().Head()
	deadline := time.Now().Add(30 * time.Second)
	for app.AppliedLSN() < head-1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stopSample)
	<-sampleDone

	ast := app.Stats()
	mean := 0.0
	for _, s := range lagSamples {
		mean += s
	}
	if len(lagSamples) > 0 {
		mean /= float64(len(lagSamples))
	}
	report.Steady.Applied = ast.AppliedRecords
	report.Steady.MeanLagS = mean
	report.Steady.MaxLagS = maxLagS
	report.Steady.MaxLagBytes = maxLagB
	report.Steady.FinalLagS = app.LagSeconds()
	report.Steady.FrameErrors = ast.FrameErrors
	report.Steady.Reconnects = ast.Reconnects
	if report.Leader.AlonePerSec > 0 {
		report.Leader.OverheadPct = 100 * (1 - report.Leader.StreamingPerSec/report.Leader.AlonePerSec)
	}
	progress(fmt.Sprintf("rexpbench: steady state: %.0f updates/s at the leader, follower lag mean %.0fms max %.0fms (leader overhead %.1f%%)",
		report.Steady.UpdatesPerS, 1000*mean, 1000*maxLagS, report.Leader.OverheadPct))

	// Stop the tail loop before reporting so its reconnect logging does
	// not interleave with the summary (the deferred Close is a no-op).
	if err := app.Close(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	progress("rexpbench: wrote " + out)
	return nil
}

// leaderRate measures sustained UpdateBatch throughput on a fresh
// durable index with no replication attached.
func leaderRate(base string, shards, objects int, dur time.Duration, rng *rand.Rand, _ any) (float64, error) {
	opts := rexptree.DefaultOptions()
	opts.Path = base
	opts.Durability = rexptree.DurabilityOnCommit
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: shards})
	if err != nil {
		return 0, err
	}
	defer ix.Close()
	// Same preload shape as the replicated run, so the two throughput
	// phases mutate trees of equal population.
	clock := 0.0
	batch := make([]rexptree.Report, 0, 512)
	for i := 0; i < objects; i++ {
		clock += 0.001
		batch = append(batch, benchReport(rng, uint32(i), clock))
		if len(batch) == cap(batch) {
			if err := ix.UpdateBatch(batch, clock); err != nil {
				return 0, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := ix.UpdateBatch(batch, clock); err != nil {
			return 0, err
		}
	}
	n, _, err := updateStream(ix, objects, clock, dur, rng)
	if err != nil {
		return 0, err
	}
	return float64(n) / dur.Seconds(), nil
}

// updateStream drives continuous batched position updates for dur and
// returns how many were applied and the advanced clock.
func updateStream(ix *rexptree.ShardedTree, objects int, clock float64, dur time.Duration, rng *rand.Rand) (int, float64, error) {
	const chunk = 256
	deadline := time.Now().Add(dur)
	n := 0
	batch := make([]rexptree.Report, chunk)
	for time.Now().Before(deadline) {
		for i := range batch {
			clock += 0.001
			batch[i] = benchReport(rng, uint32(rng.Intn(objects)), clock)
		}
		if err := ix.UpdateBatch(batch, clock); err != nil {
			return n, clock, err
		}
		n += chunk
	}
	return n, clock, nil
}

func benchReport(rng *rand.Rand, id uint32, t float64) rexptree.Report {
	return rexptree.Report{
		ID: id,
		Point: rexptree.Point{
			Time: t,
			Pos:  [3]float64{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  [3]float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
		},
	}
}
