package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rexptree"
)

// The concurrent-throughput mode compares three locking architectures
// on the same workload and hardware:
//
//   - single-mutex: one tree, every operation serialized behind one
//     exclusive lock (the pre-concurrency design);
//   - single-rwmutex: one tree with the reader/writer lock, so queries
//     run concurrently and only updates are exclusive;
//   - sharded: a ShardedTree with -shards sub-trees, each with its own
//     page file, buffer pool and lock, fanning queries out on the
//     -workers pool.
//
// Each configuration is loaded with the same objects into file-backed
// page stores, then -workers goroutines issue random timeslice/window
// queries for the measurement window (with a concurrent updater in the
// mixed phase).  Aggregate throughput goes to -shardout as JSON.
//
// By default every page I/O that reaches a store is charged -iolat of
// wall-clock latency (Options.IOLatency), putting the run in the
// I/O-bound regime the paper's cost model assumes — its experiments
// count page I/Os precisely because each is a random disk access
// (§5.1).  In that regime the sharded win has two independent sources:
// parallelism on multi-core hardware, and K independent buffer pools,
// which pay off even on one core because each ~(pages/K)-page shard
// fits its 50-page pool while the single tree thrashes.  With -iolat 0
// the stores run at RAM speed, the index is effectively cache-resident
// and the single rwmutex tree wins on queries instead: fan-out
// scheduling costs more than it saves when pages are free.

// throughputConfig echoes the benchmark parameters into the JSON.
type throughputConfig struct {
	Objects      int     `json:"objects"`
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	DurationSec  float64 `json:"duration_sec"`
	BufferPages  int     `json:"buffer_pages_per_tree"`
	QueryExtent  float64 `json:"query_extent"`
	Partition    string  `json:"partition"`
	IOLatencyStr string  `json:"io_latency"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Seed         int64   `json:"seed"`
}

// throughputResult is one configuration's measurement.
type throughputResult struct {
	QueryOpsPerSec      float64 `json:"query_ops_per_sec"`
	MixedQueryOpsPerSec float64 `json:"mixed_query_ops_per_sec"`
	UpdateOpsPerSec     float64 `json:"update_ops_per_sec"`
	BatchOpsPerSec      float64 `json:"batched_update_ops_per_sec"`
	IndexPages          int     `json:"index_pages"`
	BufferReads         uint64  `json:"buffer_reads"`
	BufferHits          uint64  `json:"buffer_hits"`
}

// mover is the common surface of the three benchmarked architectures.
type mover interface {
	Update(id uint32, p rexptree.Point, now float64) error
	UpdateBatch(batch []rexptree.Report, now float64) error
	Timeslice(r rexptree.Rect, at, now float64) ([]rexptree.Result, error)
	Window(r rexptree.Rect, t1, t2, now float64) ([]rexptree.Result, error)
	Stats() rexptree.Stats
	Close() error
}

// serialTree wraps a Tree behind one exclusive mutex, reproducing the
// fully serialized locking the index had before the concurrency layer.
type serialTree struct {
	mu sync.Mutex
	t  *rexptree.Tree
}

func (s *serialTree) Update(id uint32, p rexptree.Point, now float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Update(id, p, now)
}

func (s *serialTree) UpdateBatch(batch []rexptree.Report, now float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.UpdateBatch(batch, now)
}

func (s *serialTree) Timeslice(r rexptree.Rect, at, now float64) ([]rexptree.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Timeslice(r, at, now)
}

func (s *serialTree) Window(r rexptree.Rect, t1, t2, now float64) ([]rexptree.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Window(r, t1, t2, now)
}

func (s *serialTree) Stats() rexptree.Stats { return s.t.Stats() }
func (s *serialTree) Close() error          { return s.t.Close() }

func throughputWorkload(n int, seed int64) []rexptree.Report {
	rng := rand.New(rand.NewSource(seed))
	batch := make([]rexptree.Report, n)
	for i := range batch {
		batch[i] = rexptree.Report{
			ID: uint32(i + 1),
			Point: rexptree.Point{
				Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     rexptree.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
				Time:    0,
				Expires: rexptree.NoExpiry(),
			},
		}
	}
	return batch
}

// measure runs fn from `workers` goroutines until the deadline and
// returns operations per second.
func measure(workers int, d time.Duration, fn func(worker int, rng *rand.Rand) error) (float64, error) {
	var (
		ops      atomic.Uint64
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	deadline := time.Now().Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for time.Now().Before(deadline) {
				if err := fn(w, rng); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(ops.Load()) / d.Seconds(), nil
}

func randQuery(m mover, rng *rand.Rand, extent float64) error {
	lo := rexptree.Vec{rng.Float64() * (1000 - extent), rng.Float64() * (1000 - extent)}
	r := rexptree.Rect{Lo: lo, Hi: rexptree.Vec{lo[0] + extent, lo[1] + extent}}
	var err error
	if rng.Intn(2) == 0 {
		_, err = m.Timeslice(r, 1, 0)
	} else {
		_, err = m.Window(r, 0, 5, 0)
	}
	return err
}

// benchMover loads the workload into m and measures its phases.
func benchMover(m mover, cfg throughputConfig, progress func(string)) (throughputResult, error) {
	var res throughputResult
	load := throughputWorkload(cfg.Objects, cfg.Seed)
	for i := 0; i < len(load); i += 1000 {
		end := min(i+1000, len(load))
		if err := m.UpdateBatch(load[i:end], 0); err != nil {
			return res, err
		}
	}
	d := time.Duration(cfg.DurationSec * float64(time.Second))

	// Warm the buffer pools into their steady state before timing.
	if _, err := measure(cfg.Workers, d/4, func(_ int, rng *rand.Rand) error {
		return randQuery(m, rng, cfg.QueryExtent)
	}); err != nil {
		return res, err
	}

	progress("  query phase")
	ops, err := measure(cfg.Workers, d, func(_ int, rng *rand.Rand) error {
		return randQuery(m, rng, cfg.QueryExtent)
	})
	if err != nil {
		return res, err
	}
	res.QueryOpsPerSec = ops

	progress("  mixed phase")
	var updates atomic.Bool
	updates.Store(true)
	var uwg sync.WaitGroup
	uwg.Add(1)
	go func() { // background update stream competing with the readers
		defer uwg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		for updates.Load() {
			id := uint32(rng.Intn(cfg.Objects) + 1)
			p := rexptree.Point{
				Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     rexptree.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
				Expires: rexptree.NoExpiry(),
			}
			if err := m.Update(id, p, 0); err != nil {
				return
			}
		}
	}()
	ops, err = measure(cfg.Workers, d, func(_ int, rng *rand.Rand) error {
		return randQuery(m, rng, cfg.QueryExtent)
	})
	updates.Store(false)
	uwg.Wait()
	if err != nil {
		return res, err
	}
	res.MixedQueryOpsPerSec = ops

	progress("  update phase")
	ops, err = measure(cfg.Workers, d/2, func(w int, rng *rand.Rand) error {
		id := uint32(rng.Intn(cfg.Objects) + 1)
		return m.Update(id, rexptree.Point{
			Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Expires: rexptree.NoExpiry(),
		}, 0)
	})
	if err != nil {
		return res, err
	}
	res.UpdateOpsPerSec = ops

	progress("  batch phase")
	ops, err = measure(cfg.Workers, d/2, func(w int, rng *rand.Rand) error {
		batch := make([]rexptree.Report, 100)
		for i := range batch {
			batch[i] = rexptree.Report{
				ID: uint32(rng.Intn(cfg.Objects) + 1),
				Point: rexptree.Point{
					Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
					Expires: rexptree.NoExpiry(),
				},
			}
		}
		return m.UpdateBatch(batch, 0)
	})
	if err != nil {
		return res, err
	}
	res.BatchOpsPerSec = ops * 100 // reports per second, not batches

	st := m.Stats()
	res.IndexPages = st.Pages
	res.BufferReads = st.Reads
	res.BufferHits = st.BufferHits
	return res, nil
}

// runThroughput executes the concurrent-throughput comparison and
// writes the JSON report.  policy selects how the sharded
// configuration partitions objects (speed uses self-tuned bands, since
// this workload's speeds are uniform rather than classed).
func runThroughput(objects, shards, workers int, durationSec float64, ioLat time.Duration, seed int64, policy rexptree.PartitionPolicy, out string, progress func(string)) error {
	dir, err := os.MkdirTemp("", "rexpbench-shard")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	opts := rexptree.DefaultOptions()
	opts.IOLatency = ioLat
	cfg := throughputConfig{
		Objects:      objects,
		Shards:       shards,
		Workers:      workers,
		DurationSec:  durationSec,
		BufferPages:  50, // the paper's default pool size per tree
		QueryExtent:  60,
		Partition:    policy.String(),
		IOLatencyStr: ioLat.String(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Seed:         seed,
	}

	report := struct {
		Config      throughputConfig `json:"config"`
		SingleMutex throughputResult `json:"single_mutex_baseline"`
		SingleRW    throughputResult `json:"single_rwmutex"`
		Sharded     throughputResult `json:"sharded"`
		Speedup     float64          `json:"sharded_query_speedup_vs_single_mutex"`
	}{Config: cfg}

	progress("single-mutex baseline")
	so := opts
	so.Path = filepath.Join(dir, "single-mutex.idx")
	base, err := rexptree.Open(so)
	if err != nil {
		return err
	}
	report.SingleMutex, err = benchMover(&serialTree{t: base}, cfg, progress)
	base.Close()
	if err != nil {
		return err
	}

	progress("single-rwmutex")
	ro := opts
	ro.Path = filepath.Join(dir, "single-rw.idx")
	rw, err := rexptree.Open(ro)
	if err != nil {
		return err
	}
	report.SingleRW, err = benchMover(rw, cfg, progress)
	rw.Close()
	if err != nil {
		return err
	}

	progress(fmt.Sprintf("sharded (%d shards, %d workers, %s partition)", shards, workers, policy))
	sh, err := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options: func() rexptree.Options {
			o := opts
			o.Path = filepath.Join(dir, "sharded.idx")
			return o
		}(),
		Shards:    shards,
		Workers:   workers,
		Partition: policy,
	})
	if err != nil {
		return err
	}
	report.Sharded, err = benchMover(sh, cfg, progress)
	sh.Close()
	if err != nil {
		return err
	}

	if report.SingleMutex.QueryOpsPerSec > 0 {
		report.Speedup = report.Sharded.QueryOpsPerSec / report.SingleMutex.QueryOpsPerSec
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("query throughput: single-mutex %.0f ops/s, rwmutex %.0f ops/s, sharded %.0f ops/s (%.2fx vs baseline) -> %s\n",
		report.SingleMutex.QueryOpsPerSec, report.SingleRW.QueryOpsPerSec,
		report.Sharded.QueryOpsPerSec, report.Speedup, out)
	return nil
}
