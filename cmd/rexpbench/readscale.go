package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rexptree"
)

// The read-scaling mode measures how query throughput scales with the
// number of reader goroutines under the two read paths:
//
//   - single-locked: one tree with Options.LockedReads, every query
//     behind the shared RWMutex (the pre-snapshot architecture, and
//     the regression baseline for the 1-worker guard);
//   - single-snapshot: the same tree with the default lock-free
//     snapshot read path;
//   - sharded-snapshot: a ShardedTree whose shards all serve queries
//     from snapshots.
//
// Each series sweeps -readworkers in a readers-only phase and a mixed
// phase with one background writer.  The mixed phase also samples
// every Update's latency, reporting the writer-stall p50/p99: under
// the RWMutex the writer queues behind the reader herd, under the
// snapshot path it only waits for the page pool.  Throughput is
// reported both absolute and per core (ops/sec divided by the cores
// the workers can actually use), since scaling past GOMAXPROCS adds
// concurrency but no parallelism.

// readScaleConfig echoes the benchmark parameters into the JSON.
type readScaleConfig struct {
	Objects      int     `json:"objects"`
	Shards       int     `json:"shards"`
	Workers      []int   `json:"worker_sweep"`
	DurationSec  float64 `json:"duration_sec_per_point"`
	BufferPages  int     `json:"buffer_pages_per_tree"`
	QueryExtent  float64 `json:"query_extent"`
	IOLatencyStr string  `json:"io_latency"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	Seed         int64   `json:"seed"`
}

// readScalePoint is one (series, worker-count) measurement.
type readScalePoint struct {
	Workers             int     `json:"workers"`
	QueryOpsPerSec      float64 `json:"query_ops_per_sec"`
	QueryOpsPerSecCore  float64 `json:"query_ops_per_sec_per_core"`
	MixedQueryOpsPerSec float64 `json:"mixed_query_ops_per_sec"`
	WriterOpsPerSec     float64 `json:"writer_ops_per_sec"`
	WriterStallP50Ms    float64 `json:"writer_stall_p50_ms"`
	WriterStallP99Ms    float64 `json:"writer_stall_p99_ms"`
}

type readScaleSeries struct {
	Name   string           `json:"name"`
	Points []readScalePoint `json:"points"`
}

// readMover is the query surface the sweep drives.
type readMover interface {
	Update(id uint32, p rexptree.Point, now float64) error
	UpdateBatch(batch []rexptree.Report, now float64) error
	Timeslice(r rexptree.Rect, at, now float64) ([]rexptree.Result, error)
	Window(r rexptree.Rect, t1, t2, now float64) ([]rexptree.Result, error)
}

// quantileMs returns the q-quantile of the sampled durations in
// milliseconds (0 when nothing was sampled).
func quantileMs(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)-1))
	return float64(samples[i]) / float64(time.Millisecond)
}

// sweepSeries measures one architecture across the worker sweep.
func sweepSeries(m readMover, cfg readScaleConfig, progress func(string)) (readScaleSeries, error) {
	var series readScaleSeries
	d := time.Duration(cfg.DurationSec * float64(time.Second))
	query := func(_ int, rng *rand.Rand) error {
		lo := rexptree.Vec{rng.Float64() * (1000 - cfg.QueryExtent), rng.Float64() * (1000 - cfg.QueryExtent)}
		r := rexptree.Rect{Lo: lo, Hi: rexptree.Vec{lo[0] + cfg.QueryExtent, lo[1] + cfg.QueryExtent}}
		var err error
		if rng.Intn(2) == 0 {
			_, err = m.Timeslice(r, 1, 0)
		} else {
			_, err = m.Window(r, 0, 5, 0)
		}
		return err
	}

	// Warm the pools and version tables once per series.
	if _, err := measure(1, d/4, query); err != nil {
		return series, err
	}

	for _, w := range cfg.Workers {
		progress(fmt.Sprintf("  %d workers", w))
		var pt readScalePoint
		pt.Workers = w

		ops, err := measure(w, d, query)
		if err != nil {
			return series, err
		}
		pt.QueryOpsPerSec = ops
		cores := min(w, cfg.GOMAXPROCS)
		pt.QueryOpsPerSecCore = ops / float64(cores)

		// Mixed phase: one background writer, its per-op latency sampled.
		var (
			stalls  []time.Duration
			writes  uint64
			running atomic.Bool
			uwg     sync.WaitGroup
		)
		running.Store(true)
		uwg.Add(1)
		go func() {
			defer uwg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 99))
			for running.Load() {
				id := uint32(rng.Intn(cfg.Objects) + 1)
				p := rexptree.Point{
					Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
					Vel:     rexptree.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
					Expires: rexptree.NoExpiry(),
				}
				start := time.Now()
				if err := m.Update(id, p, 0); err != nil {
					return
				}
				stalls = append(stalls, time.Since(start))
				writes++
			}
		}()
		ops, err = measure(w, d, query)
		running.Store(false)
		uwg.Wait()
		if err != nil {
			return series, err
		}
		pt.MixedQueryOpsPerSec = ops
		pt.WriterOpsPerSec = float64(writes) / d.Seconds()
		pt.WriterStallP50Ms = quantileMs(stalls, 0.50)
		pt.WriterStallP99Ms = quantileMs(stalls, 0.99)

		series.Points = append(series.Points, pt)
	}
	return series, nil
}

// parseWorkerSweep parses the -readworkers list ("1,2,4,8").
func parseWorkerSweep(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker sweep")
	}
	return out, nil
}

// onePoint finds the 1-worker point of a series (nil if the sweep
// skipped it).
func onePoint(s readScaleSeries) *readScalePoint {
	for i := range s.Points {
		if s.Points[i].Workers == 1 {
			return &s.Points[i]
		}
	}
	return nil
}

// runReadScale executes the read-path scaling sweep and writes the
// JSON report.  With guardMin > 0 it also enforces the single-thread
// regression guard: the snapshot path's 1-worker readers-only
// throughput must be at least guardMin of the locked baseline's
// (e.g. 0.95 allows a 5% regression), or the run fails.
func runReadScale(objects, shards int, workerSweep []int, durationSec float64, ioLat time.Duration, seed int64, guardMin float64, out string, progress func(string)) error {
	dir, err := os.MkdirTemp("", "rexpbench-readscale")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	opts := rexptree.DefaultOptions()
	opts.IOLatency = ioLat
	cfg := readScaleConfig{
		Objects:      objects,
		Shards:       shards,
		Workers:      workerSweep,
		DurationSec:  durationSec,
		BufferPages:  50,
		QueryExtent:  60,
		IOLatencyStr: ioLat.String(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Seed:         seed,
	}

	report := struct {
		Config       readScaleConfig `json:"config"`
		SingleLocked readScaleSeries `json:"single_locked"`
		SingleSnap   readScaleSeries `json:"single_snapshot"`
		ShardedSnap  readScaleSeries `json:"sharded_snapshot"`
		// Snapshot vs locked, readers-only: 1 worker (the guard's
		// subject) and the sweep's widest point.
		SnapVsLocked1W   float64 `json:"snapshot_vs_locked_1_worker"`
		SnapVsLockedMaxW float64 `json:"snapshot_vs_locked_max_workers"`
		GuardMin         float64 `json:"guard_min,omitempty"`
		GuardPassed      *bool   `json:"guard_passed,omitempty"`
		Note             string  `json:"note,omitempty"`
	}{Config: cfg}
	if maxW := workerSweep[len(workerSweep)-1]; maxW > cfg.GOMAXPROCS {
		report.Note = fmt.Sprintf("GOMAXPROCS=%d: worker counts beyond that add concurrency but no parallelism on this host, so multi-worker speedups reflect lock behaviour only; rerun on more cores to measure parallel scaling", cfg.GOMAXPROCS)
	}

	load := throughputWorkload(objects, seed)
	loadAll := func(m readMover) error {
		for i := 0; i < len(load); i += 1000 {
			end := min(i+1000, len(load))
			if err := m.UpdateBatch(load[i:end], 0); err != nil {
				return err
			}
		}
		return nil
	}

	progress("single-locked (RWMutex read path)")
	lo := opts
	lo.LockedReads = true
	lo.Path = filepath.Join(dir, "locked.idx")
	locked, err := rexptree.Open(lo)
	if err != nil {
		return err
	}
	if err := loadAll(locked); err != nil {
		locked.Close()
		return err
	}
	report.SingleLocked, err = sweepSeries(locked, cfg, progress)
	report.SingleLocked.Name = "single-locked"
	locked.Close()
	if err != nil {
		return err
	}

	progress("single-snapshot (lock-free read path)")
	so := opts
	so.Path = filepath.Join(dir, "snap.idx")
	snap, err := rexptree.Open(so)
	if err != nil {
		return err
	}
	if err := loadAll(snap); err != nil {
		snap.Close()
		return err
	}
	report.SingleSnap, err = sweepSeries(snap, cfg, progress)
	report.SingleSnap.Name = "single-snapshot"
	snap.Close()
	if err != nil {
		return err
	}

	progress(fmt.Sprintf("sharded-snapshot (%d shards)", shards))
	sh, err := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options: func() rexptree.Options {
			o := opts
			o.Path = filepath.Join(dir, "sharded.idx")
			return o
		}(),
		Shards:  shards,
		Workers: workerSweep[len(workerSweep)-1],
	})
	if err != nil {
		return err
	}
	if err := loadAll(sh); err != nil {
		sh.Close()
		return err
	}
	report.ShardedSnap, err = sweepSeries(sh, cfg, progress)
	report.ShardedSnap.Name = "sharded-snapshot"
	sh.Close()
	if err != nil {
		return err
	}

	if lp, sp := onePoint(report.SingleLocked), onePoint(report.SingleSnap); lp != nil && sp != nil && lp.QueryOpsPerSec > 0 {
		report.SnapVsLocked1W = sp.QueryOpsPerSec / lp.QueryOpsPerSec
	}
	nl := len(report.SingleLocked.Points)
	ns := len(report.SingleSnap.Points)
	if nl > 0 && ns > 0 && report.SingleLocked.Points[nl-1].QueryOpsPerSec > 0 {
		report.SnapVsLockedMaxW = report.SingleSnap.Points[ns-1].QueryOpsPerSec /
			report.SingleLocked.Points[nl-1].QueryOpsPerSec
	}

	var guardErr error
	if guardMin > 0 {
		report.GuardMin = guardMin
		passed := report.SnapVsLocked1W >= guardMin
		report.GuardPassed = &passed
		if !passed {
			guardErr = fmt.Errorf("read-path guard failed: snapshot 1-worker throughput is %.3f of the locked baseline, want >= %.2f",
				report.SnapVsLocked1W, guardMin)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
		return guardErr
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("read scaling (1w readers-only): locked %.0f ops/s, snapshot %.0f ops/s (%.2fx); snapshot vs locked at max workers %.2fx -> %s\n",
		pointOps(onePoint(report.SingleLocked)), pointOps(onePoint(report.SingleSnap)),
		report.SnapVsLocked1W, report.SnapVsLockedMaxW, out)
	return guardErr
}

func pointOps(p *readScalePoint) float64 {
	if p == nil {
		return 0
	}
	return p.QueryOpsPerSec
}
