// Command rexpreshard converts a file-backed index from K shards to K′
// shards — and, in the same pass, between partition policies — without
// touching the original files until a verified replacement is ready:
// it scans the source shards read-only, routes every live entry under
// the target policy, bulk-loads K′ new shard files into the next file
// generation, verifies them from disk, and commits with one atomic
// manifest rename.  A crash at any earlier point leaves the original
// index byte-for-byte intact; rerunning the same command retries.
//
// The source may be a sharded index ("<path>.manifest" plus shard page
// files) or a single tree file at <path> (no manifest), which becomes
// a sharded index.
//
// Usage:
//
//	rexpreshard -path idx -shards 2 -partition speed
//	rexpreshard -path idx -shards 4 -partition hash -json
//	rexpreshard -path idx -shards 3 -partition speed -bands 0.5,2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rexptree/internal/obs"
	"rexptree/internal/reshard"
)

func parseBands(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	bands := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed band %q: %v", p, err)
		}
		bands[i] = v
	}
	return bands, nil
}

func main() {
	var (
		path      = flag.String("path", "", "index base path (its manifest is at <path>.manifest)")
		shards    = flag.Int("shards", 0, "target shard count K'")
		partition = flag.String("partition", "hash", "target partition policy: hash or speed")
		bandsFlag = flag.String("bands", "", "comma-separated speed-band boundaries (speed policy; empty = re-tune from the scanned distribution)")
		asJSON    = flag.Bool("json", false, "print the result as JSON instead of the report")
		quiet     = flag.Bool("quiet", false, "suppress per-phase progress lines")
	)
	flag.Parse()

	if *path == "" || *shards < 1 {
		fmt.Fprintln(os.Stderr, "rexpreshard: -path and -shards (>= 1) are required")
		flag.Usage()
		os.Exit(1)
	}
	bands, err := parseBands(*bandsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexpreshard:", err)
		os.Exit(1)
	}

	opts := reshard.Options{
		Path:       *path,
		Shards:     *shards,
		Policy:     *partition,
		SpeedBands: bands,
		Metrics:    obs.New(),
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rexpreshard: "+format+"\n", args...)
		}
	}
	res, err := reshard.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexpreshard:", err)
		os.Exit(1)
	}

	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpreshard:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
		return
	}
	fmt.Printf("source        : %d shard(s), %s\n", res.SourceShards, res.SourcePolicy)
	fmt.Printf("target        : %d shard(s), %s (generation %d)\n", res.TargetShards, res.TargetPolicy, res.Generation)
	fmt.Printf("entries       : %d scanned, %d live, %d expired dropped (clock %.3f)\n",
		res.Scanned, res.Live, res.Expired, res.Clock)
	fmt.Printf("routed        : %v\n", res.Routed)
	if res.TargetPolicy == "speed" {
		tuned := "given"
		if res.Retuned {
			tuned = "re-tuned"
		}
		fmt.Printf("speed bands   : %v (%s)\n", res.SpeedBands, tuned)
	}
	fmt.Printf("bytes written : %d\n", res.BytesWritten)
	fmt.Println("committed     : ok")
}
