package main

import (
	"encoding/json"
	"math/rand"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rexptree"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tool")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// buildFixture creates a small 2-shard hash index on disk and returns
// its base path and object count.
func buildFixture(t *testing.T) (string, int) {
	t.Helper()
	base := filepath.Join(t.TempDir(), "idx")
	opts := rexptree.DefaultOptions()
	opts.Path = base
	st, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const n = 150
	batch := make([]rexptree.Report, n)
	for i := range batch {
		batch[i] = rexptree.Report{
			ID: uint32(i + 1),
			Point: rexptree.Point{
				Pos:     rexptree.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:     rexptree.Vec{rng.Float64()*10 - 5, rng.Float64()*10 - 5},
				Time:    0,
				Expires: 100,
			},
		}
	}
	if err := st.UpdateBatch(batch, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return base, n
}

func TestSmokeJSON(t *testing.T) {
	bin := buildTool(t)
	base, n := buildFixture(t)

	out, err := exec.Command(bin, "-path", base, "-shards", "3", "-partition", "speed", "-quiet", "-json").Output()
	if err != nil {
		t.Fatalf("rexpreshard failed: %v", err)
	}
	var res struct {
		SourceShards int    `json:"source_shards"`
		TargetShards int    `json:"target_shards"`
		TargetPolicy string `json:"target_policy"`
		Generation   int    `json:"generation"`
		Scanned      int    `json:"entries_scanned"`
		Live         int    `json:"entries_live"`
		Routed       []int  `json:"routed_per_shard"`
		Retuned      bool   `json:"retuned"`
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("output is not the result JSON: %v\n%s", err, out)
	}
	if res.SourceShards != 2 || res.TargetShards != 3 || res.TargetPolicy != "speed" ||
		res.Generation != 1 || res.Scanned != n || res.Live != n || !res.Retuned {
		t.Fatalf("implausible result: %+v", res)
	}

	// The committed index must reopen under the new layout with every
	// object still present.
	opts := rexptree.DefaultOptions()
	opts.Path = base
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options: opts, Shards: 3, Partition: rexptree.PartitionSpeed,
	})
	if err != nil {
		t.Fatalf("resharded index does not reopen: %v", err)
	}
	defer ix.Close()
	if ix.Len() != n || ix.Generation() != 1 {
		t.Fatalf("reopened index has %d objects at generation %d, want %d at 1", ix.Len(), ix.Generation(), n)
	}
}

func TestSmokeReport(t *testing.T) {
	bin := buildTool(t)
	base, _ := buildFixture(t)

	out, err := exec.Command(bin, "-path", base, "-shards", "4", "-quiet").CombinedOutput()
	if err != nil {
		t.Fatalf("rexpreshard failed: %v\n%s", err, out)
	}
	for _, want := range []string{"source        : 2 shard(s)", "target        : 4 shard(s), hash (generation 1)", "committed     : ok"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeMissingArgs(t *testing.T) {
	bin := buildTool(t)
	err := exec.Command(bin, "-shards", "2").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v", err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit code %d, want 1", ee.ExitCode())
	}
}

func TestSmokeBadIndex(t *testing.T) {
	bin := buildTool(t)
	err := exec.Command(bin, "-path", filepath.Join(t.TempDir(), "nope"), "-shards", "2", "-quiet").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v", err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit code %d, want 1", ee.ExitCode())
	}
}
