// Command rexpbackup takes a consistent hot backup from a running
// leader: it streams GET /v1/backup and materializes the frames into a
// normal sharded index file set at the given base path — page files,
// WAL tails and the manifest, written atomically (the manifest lands
// last, so a killed rexpbackup never leaves something that looks like
// a complete backup).
//
// The result is a regular index: `rexpcheck <out>` verifies it,
// `rexpd -path <out>` serves it, and a follower directory can be
// seeded from it.  Every frame is CRC-checked on the way through; a
// torn or corrupt stream fails loudly and removes the partial output.
//
// Usage:
//
//	rexpbackup -leader http://host:7364 -out /backups/idx-2026-08-08
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"rexptree/internal/repl"
)

func main() {
	var (
		leader  = flag.String("leader", "", "leader base URL (required), e.g. http://host:7364")
		out     = flag.String("out", "", "output base path for the backup file set (required)")
		timeout = flag.Duration("timeout", 0, "overall deadline for the transfer; 0 waits indefinitely")
	)
	flag.Parse()

	if *leader == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: rexpbackup -leader <url> -out <base-path> [-timeout 10m]")
		os.Exit(2)
	}

	start := time.Now()
	info, err := take(strings.TrimRight(*leader, "/"), *out, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rexpbackup: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rexpbackup: %s: %d shard(s), %d bytes in %v (epoch %d, tail resumes at lsn %d)\n",
		*out, info.Meta.Shards, info.Bytes, time.Since(start).Round(time.Millisecond),
		info.Meta.Epoch, info.Meta.StartLSN)
	fmt.Printf("rexpbackup: verify with: rexpcheck %s\n", *out)
}

func take(leader, out string, timeout time.Duration) (*repl.BackupInfo, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(leader + "/v1/backup")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leader: %s", resp.Status)
	}
	return repl.WriteBackup(out, resp.Body)
}
