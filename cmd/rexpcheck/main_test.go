package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	rexptree "rexptree"
	"rexptree/internal/core"
	"rexptree/internal/storage"
)

// buildTool compiles this command into a temp dir and returns the
// binary path, so the tests exercise the real CLI surface: flag
// parsing, exit codes and output format.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tool")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// makeIndex builds a small durable index at path and closes it cleanly.
func makeIndex(t *testing.T, path string) {
	t.Helper()
	opts := rexptree.DefaultOptions()
	opts.Path = path
	opts.Durability = rexptree.DurabilityOnCommit
	tr, err := rexptree.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 300; i++ {
		p := rexptree.Point{
			Pos:     rexptree.Vec{float64(i % 37), float64(i % 53)},
			Vel:     rexptree.Vec{1, -1},
			Expires: 1e6,
		}
		if err := tr.Update(i, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

func TestCheckCleanFile(t *testing.T) {
	bin := buildTool(t)
	path := filepath.Join(t.TempDir(), "idx.rexp")
	makeIndex(t, path)
	out, code := run(t, bin, path)
	if code != 0 {
		t.Fatalf("exit %d on a healthy file\n%s", code, out)
	}
	for _, want := range []string{"format v2", "checksums: all pages verified", "invariants: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckFlippedBit(t *testing.T) {
	bin := buildTool(t)
	path := filepath.Join(t.TempDir(), "idx.rexp")
	makeIndex(t, path)

	// Flip one bit in the payload of page 3 (well inside the file).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	const pageSize, hdr = 4096, 8
	off := int64(pageSize) + 3*int64(pageSize+hdr) + hdr + 1000
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, code := run(t, bin, path)
	if code != 1 {
		t.Fatalf("exit %d on a corrupt file, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "page 3") {
		t.Errorf("corruption report does not name page 3:\n%s", out)
	}
}

func TestCheckUncleanRecoverable(t *testing.T) {
	bin := buildTool(t)
	path := filepath.Join(t.TempDir(), "idx.rexp")
	opts := rexptree.DefaultOptions()
	opts.Path = path
	opts.Durability = rexptree.DurabilityOnCommit
	tr, err := rexptree.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 300; i++ {
		p := rexptree.Point{
			Pos:     rexptree.Vec{float64(i % 37), float64(i % 53)},
			Vel:     rexptree.Vec{1, -1},
			Expires: 1e6,
		}
		if err := tr.Update(i, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon without Close.  The file stays dirty with a
	// non-empty WAL; rexpcheck must call it recoverable, not corrupt.
	tr.Abandon()

	out, code := run(t, bin, path)
	if code != 0 {
		t.Fatalf("exit %d on a recoverable file, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "recoverable") {
		t.Errorf("output does not report recoverability:\n%s", out)
	}
}

// TestCheckUncleanTornFreePage: a page that is free in the checkpointed
// base may be legitimately torn by the crash (mid zero-fill or mid
// free-chain write — the only page-file writes between checkpoints).
// Recovery never reads it and rewrites it before reuse, so rexpcheck
// must call the file recoverable, not corrupt.
func TestCheckUncleanTornFreePage(t *testing.T) {
	bin := buildTool(t)
	path := filepath.Join(t.TempDir(), "idx.rexp")
	opts := rexptree.DefaultOptions()
	opts.Path = path
	opts.Durability = rexptree.DurabilityOnCommit
	// Checkpoint aggressively so the delete-induced frees below land in
	// the checkpointed base (frees are deferred to the next checkpoint).
	opts.CheckpointBytes = 4096
	tr, err := rexptree.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 400; i++ {
		p := rexptree.Point{
			Pos:     rexptree.Vec{float64(i % 37), float64(i % 53)},
			Vel:     rexptree.Vec{1, -1},
			Expires: 1e6,
		}
		if err := tr.Update(i, p, float64(i)*0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(1); i <= 350; i++ {
		if _, err := tr.Delete(i, 0.5+float64(i)*0.001); err != nil {
			t.Fatal(err)
		}
	}
	tr.Abandon()

	// Find a page that is free in the checkpointed base: within the
	// superblock's page count but outside the reachable set.
	fs, err := storage.OpenFileStoreReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.MetaConfig(fs)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := core.Open(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	live, err := ct.LivePages()
	if err != nil {
		t.Fatal(err)
	}
	freeID := -1
	for id := 0; id < fs.PageCount(); id++ {
		if !live[storage.PageID(id)] {
			freeID = id
			break
		}
	}
	fs.Close()
	if freeID < 0 {
		t.Fatal("workload left no free page in the checkpointed base")
	}

	// Tear it: flip a payload byte without touching the stored CRC.
	const pageSize, hdr = 4096, 8
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(pageSize) + int64(freeID)*int64(pageSize+hdr) + hdr + 321
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, code := run(t, bin, path)
	if code != 0 {
		t.Fatalf("exit %d on a recoverable file with a torn free page, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "recoverable") {
		t.Errorf("output does not report recoverability:\n%s", out)
	}
	if !strings.Contains(out, "free pages torn") {
		t.Errorf("output does not mention the torn free page:\n%s", out)
	}

	// The file must indeed recover: reachability excludes the torn page.
	re, err := rexptree.Open(opts)
	if err != nil {
		t.Fatalf("recovery open after torn free page: %v", err)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("recovered tree invalid: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSharded(t *testing.T) {
	bin := buildTool(t)
	base := filepath.Join(t.TempDir(), "idx")
	opts := rexptree.ShardedOptions{Options: rexptree.DefaultOptions(), Shards: 3}
	opts.Path = base
	opts.Durability = rexptree.DurabilityBatched
	s, err := rexptree.OpenSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 200; i++ {
		p := rexptree.Point{Pos: rexptree.Vec{float64(i % 31), float64(i % 41)}, Expires: 1e6}
		if err := s.Update(i, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, bin, base)
	if code != 0 {
		t.Fatalf("exit %d on a healthy sharded index\n%s", code, out)
	}
	if !strings.Contains(out, "3 shards") || !strings.Contains(out, "durability batched") {
		t.Errorf("manifest summary missing:\n%s", out)
	}
}

func TestCheckUsageErrors(t *testing.T) {
	bin := buildTool(t)
	if _, code := run(t, bin); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if _, code := run(t, bin, filepath.Join(t.TempDir(), "absent.rexp")); code != 2 {
		t.Fatalf("missing-file exit %d, want 2", code)
	}
}
