// Command rexpcheck is the offline integrity scrub for rexptree index
// files.  It opens each file strictly read-only and verifies, in
// order: the page-file format and superblock, every page's CRC32C
// checksum, the write-ahead-log's structure, and — by opening the tree
// in memory over the (possibly WAL-patched) pages — the tree's
// structural invariants and clock.  For a sharded index it reads the
// manifest and scrubs every shard.
//
// A file left behind by a crash (dirty flag set or non-empty WAL) is
// not an error: rexpcheck verifies that it is *recoverable* — the last
// complete checkpoint's page images patch cleanly over the base and
// the logical tail is well-formed — and reports it as such.  Pages
// superseded by a checkpoint image are exempt from the checksum sweep,
// exactly as recovery overwrites them without reading.
//
// Exit codes: 0 when every file is healthy (clean, or unclean but
// recoverable), 1 when any integrity error is found (bad checksum,
// corrupt structure, unrecoverable WAL), 2 for usage or I/O errors.
//
// Usage:
//
//	rexpcheck [-q] [-no-invariants] <path>...
//
// Each path may be a single index file or the base path of a sharded
// index (its "<path>.manifest" sidecar is then consulted).
package main

import (
	"flag"
	"fmt"
	"os"

	"rexptree/internal/core"
	"rexptree/internal/manifest"
	"rexptree/internal/storage"
	"rexptree/internal/wal"
)

const (
	exitOK        = 0
	exitIntegrity = 1
	exitUsage     = 2
)

var (
	quiet        = flag.Bool("q", false, "print only errors and the final verdict")
	noInvariants = flag.Bool("no-invariants", false, "skip the tree-invariant walk (checksum and WAL checks only)")
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rexpcheck [-q] [-no-invariants] <path>...")
		os.Exit(exitUsage)
	}
	status := exitOK
	for _, path := range flag.Args() {
		if s := checkPath(path); s > status {
			status = s
		}
	}
	os.Exit(status)
}

// checkPath scrubs one argument: a sharded index base (when a manifest
// sidecar exists) or a single index file.
func checkPath(path string) int {
	man, found, err := manifest.Read(manifest.Path(path))
	if err != nil {
		report(path, "manifest: %v", err)
		return exitIntegrity
	}
	if !found {
		return checkFile(path)
	}
	logf(path, "manifest: %d shards, %s-partitioned, generation %d, durability %s",
		man.Shards, man.Partition, man.Generation, orNone(man.Durability))
	status := exitOK
	for i := 0; i < man.Shards; i++ {
		sp := manifest.ShardPath(path, man.Generation, i)
		if _, err := os.Stat(sp); err != nil {
			report(path, "shard %d: missing page file %s", i, sp)
			status = max(status, exitIntegrity)
			continue
		}
		status = max(status, checkFile(sp))
	}
	return status
}

func orNone(s string) string {
	if s == "" {
		return "none (pre-durability manifest)"
	}
	return s
}

// checkFile scrubs a single page file and its WAL sidecar.
func checkFile(path string) int {
	fs, err := storage.OpenFileStoreReadOnly(path)
	if err != nil {
		report(path, "open: %v", err)
		// A refused superblock is corruption, not an I/O problem.
		if _, serr := os.Stat(path); serr != nil {
			return exitUsage
		}
		return exitIntegrity
	}
	defer fs.Close()

	// WAL structure first: for an unclean file the last complete
	// checkpoint's images supersede their on-disk pages.
	a, err := wal.Analyze(rexpWALPath(path))
	if err != nil {
		report(path, "wal: %v", err)
		return exitIntegrity
	}
	unclean := fs.Dirty() || a.Records > 0
	state := "clean"
	if unclean {
		state = "unclean (recovery pending)"
	}
	logf(path, "format v%d, %d pages (%d live), %s", fs.Version(), fs.PageCount(), fs.Len(), state)
	if a.Records > 0 {
		logf(path, "wal: %d records, %d checkpoint image pages, %d tail records to replay",
			a.Records, len(a.Images), len(a.Tail))
	}

	status := exitOK

	// Checksum sweep.  Pages covered by a checkpoint image are exempt
	// when the file is unclean: recovery overwrites them without
	// reading, so their on-disk bytes are dead.
	if fs.Version() >= 2 {
		bad := 0
		for id := storage.PageID(0); int(id) < fs.PageCount(); id++ {
			if unclean {
				if _, patched := a.Images[id]; patched {
					continue
				}
			}
			if err := fs.VerifyPage(id); err != nil {
				report(path, "page %d: %v", id, err)
				bad++
				status = max(status, exitIntegrity)
			}
		}
		if bad == 0 {
			logf(path, "checksums: all pages verified")
		}
	} else {
		logf(path, "checksums: none (version-1 file; migrate with rexpreshard)")
	}

	if *noInvariants || status != exitOK {
		return status
	}

	// Tree-level verification over the recovered view: the base pages
	// patched with the last checkpoint's images, strictly read-only.
	view := storage.Store(fs)
	if unclean && a.Images != nil {
		view = &overlayStore{inner: fs, patches: a.Images, pages: max(fs.PageCount(), a.Pages)}
	}
	cfg, err := core.MetaConfig(view)
	if err != nil {
		report(path, "metadata: %v", err)
		return exitIntegrity
	}
	t, err := core.Open(cfg, view)
	if err != nil {
		report(path, "tree: %v", err)
		return exitIntegrity
	}
	if now := t.Now(); now < 0 || now != now {
		report(path, "clock: recovered time %v is invalid", now)
		return exitIntegrity
	}
	if err := t.CheckInvariants(); err != nil {
		report(path, "invariants: %v", err)
		return exitIntegrity
	}
	logf(path, "invariants: ok (%d leaf entries, clock %.3f)", t.LeafEntries(), t.Now())
	if unclean {
		logf(path, "verdict: recoverable — reopen with a durability policy to replay %d tail records", len(a.Tail))
	}
	return status
}

// rexpWALPath mirrors rexptree.WALPath without importing the root
// package (which would drag the full front-end into the tool).
func rexpWALPath(path string) string { return path + ".wal" }

// overlayStore presents a base store with a set of page images patched
// over it, without writing anything: the exact view recovery would
// produce.  Only reading is supported.
type overlayStore struct {
	inner   *storage.FileStore
	patches map[storage.PageID][]byte
	pages   int
}

func (o *overlayStore) ReadPage(id storage.PageID, buf []byte) error {
	if img, ok := o.patches[id]; ok {
		copy(buf, img)
		return nil
	}
	return o.inner.ReadPage(id, buf)
}

func (o *overlayStore) WritePage(storage.PageID, []byte) error { return storage.ErrReadOnly }
func (o *overlayStore) Allocate() (storage.PageID, error)      { return 0, storage.ErrReadOnly }
func (o *overlayStore) Free(storage.PageID) error              { return storage.ErrReadOnly }
func (o *overlayStore) Len() int                               { return o.pages }
func (o *overlayStore) Close() error                           { return nil }

func report(path, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rexpcheck: %s: %s\n", path, fmt.Sprintf(format, args...))
}

func logf(path, format string, args ...any) {
	if *quiet {
		return
	}
	fmt.Printf("%s: %s\n", path, fmt.Sprintf(format, args...))
}
