// Command rexpcheck is the offline integrity scrub for rexptree index
// files.  It opens each file strictly read-only and verifies, in
// order: the page-file format and superblock, every page's CRC32C
// checksum, the write-ahead-log's structure, and — by opening the tree
// in memory over the (possibly WAL-patched) pages — the tree's
// structural invariants and clock.  For a sharded index it reads the
// manifest and scrubs every shard.
//
// A file left behind by a crash (dirty flag set or non-empty WAL) is
// not an error: rexpcheck verifies that it is *recoverable* — the last
// complete checkpoint's page images patch cleanly over the base and
// the logical tail is well-formed — and reports it as such.  On such a
// file the checksum sweep mirrors exactly what recovery reads: pages
// reachable from the image-patched view.  Pages superseded by a
// checkpoint image are never read from disk, and pages free in the
// checkpointed base may be legitimately torn (a crash mid zero-fill or
// mid free-chain write, the only page-file writes allowed between
// checkpoints); recovery rewrites them before reuse, so they are
// reported as recoverable, not as corruption.
//
// Exit codes: 0 when every file is healthy (clean, or unclean but
// recoverable), 1 when any integrity error is found (bad checksum,
// corrupt structure, unrecoverable WAL), 2 for usage or I/O errors.
//
// Usage:
//
//	rexpcheck [-q] [-no-invariants] <path>...
//
// Each path may be a single index file or the base path of a sharded
// index (its "<path>.manifest" sidecar is then consulted).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"rexptree/internal/core"
	"rexptree/internal/manifest"
	"rexptree/internal/storage"
	"rexptree/internal/wal"
)

const (
	exitOK        = 0
	exitIntegrity = 1
	exitUsage     = 2
)

var (
	quiet        = flag.Bool("q", false, "print only errors and the final verdict")
	noInvariants = flag.Bool("no-invariants", false, "skip the tree-invariant walk (checksum, reachability and WAL checks only)")
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rexpcheck [-q] [-no-invariants] <path>...")
		os.Exit(exitUsage)
	}
	status := exitOK
	for _, path := range flag.Args() {
		if s := checkPath(path); s > status {
			status = s
		}
	}
	os.Exit(status)
}

// checkPath scrubs one argument: a sharded index base (when a manifest
// sidecar exists) or a single index file.
func checkPath(path string) int {
	man, found, err := manifest.Read(manifest.Path(path))
	if err != nil {
		report(path, "manifest: %v", err)
		return exitIntegrity
	}
	if !found {
		return checkFile(path)
	}
	logf(path, "manifest: %d shards, %s-partitioned, generation %d, durability %s",
		man.Shards, man.Partition, man.Generation, orNone(man.Durability))
	status := exitOK
	for i := 0; i < man.Shards; i++ {
		sp := manifest.ShardPath(path, man.Generation, i)
		if _, err := os.Stat(sp); err != nil {
			report(path, "shard %d: missing page file %s", i, sp)
			status = max(status, exitIntegrity)
			continue
		}
		status = max(status, checkFile(sp))
	}
	return status
}

func orNone(s string) string {
	if s == "" {
		return "none (pre-durability manifest)"
	}
	return s
}

// checkFile scrubs a single page file and its WAL sidecar.
func checkFile(path string) int {
	fs, err := storage.OpenFileStoreReadOnly(path)
	if err != nil {
		report(path, "open: %v", err)
		// A refused superblock is corruption, not an I/O problem.
		if _, serr := os.Stat(path); serr != nil {
			return exitUsage
		}
		return exitIntegrity
	}
	defer fs.Close()

	// WAL structure first: for an unclean file the last complete
	// checkpoint's images supersede their on-disk pages.
	a, err := wal.Analyze(rexpWALPath(path))
	if err != nil {
		report(path, "wal: %v", err)
		return exitIntegrity
	}
	unclean := fs.Dirty() || a.Records > 0
	state := "clean"
	if unclean {
		state = "unclean (recovery pending)"
	}
	logf(path, "format v%d, %d pages (%d live), %s", fs.Version(), fs.PageCount(), fs.Len(), state)
	if a.Records > 0 || a.Torn {
		logf(path, "wal: %d records, %d checkpoint image pages, %d tail records to replay, torn tail: %v",
			a.Records, len(a.Images), len(a.Tail), a.Torn)
	}

	if unclean {
		return checkUnclean(path, fs, a)
	}

	status := exitOK

	// Checksum sweep.  On a clean file every slot — free pages included,
	// since a clean close rewrote the free chain through the checksum
	// layer — must verify.
	if fs.Version() >= 2 {
		bad := 0
		for id := storage.PageID(0); int(id) < fs.PageCount(); id++ {
			if err := fs.VerifyPage(id); err != nil {
				report(path, "page %d: %v", id, err)
				bad++
				status = max(status, exitIntegrity)
			}
		}
		if bad == 0 {
			logf(path, "checksums: all pages verified")
		}
	} else {
		logf(path, "checksums: none (version-1 file; migrate with rexpreshard)")
	}

	if *noInvariants || status != exitOK {
		return status
	}
	return checkTree(path, fs)
}

// checkUnclean scrubs a file a crash left behind.  The checksum sweep
// mirrors what recovery reads: the tree is opened over the base patched
// with the last complete checkpoint's images, and the reachability walk
// checksum-verifies every live page (patched pages come from the
// CRC-framed WAL, never from disk).  Pages outside the reachable set
// are free in the checkpointed base; a torn one is the residue of a
// crash mid zero-fill or mid free-chain write — recovery rewrites it
// before any reuse, so it is reported as recoverable, not corrupt.
func checkUnclean(path string, fs *storage.FileStore, a wal.Analysis) int {
	view := storage.Store(fs)
	if a.Images != nil {
		view = &overlayStore{inner: fs, patches: a.Images, pages: max(fs.PageCount(), a.Pages)}
	}
	cfg, err := core.MetaConfig(view)
	if err != nil {
		return reportOpenFailure(path, a, "metadata", err)
	}
	t, err := core.Open(cfg, view)
	if err != nil {
		return reportOpenFailure(path, a, "tree", err)
	}
	live, err := t.LivePages()
	if err != nil {
		// The walk reads (and checksum-verifies) every reachable page;
		// recovery performs the identical walk and would fail too.
		report(path, "reachable pages: %v", err)
		return exitIntegrity
	}
	logf(path, "checksums: %d reachable pages verified (%d patched by checkpoint images)",
		len(live), len(a.Images))
	if fs.Version() >= 2 {
		torn := 0
		for id := storage.PageID(0); int(id) < fs.PageCount(); id++ {
			if live[id] {
				continue
			}
			if _, patched := a.Images[id]; patched {
				continue
			}
			if err := fs.VerifyPage(id); err != nil {
				torn++
			}
		}
		if torn > 0 {
			logf(path, "checksums: %d free pages torn (recoverable; recovery rewrites them before reuse)", torn)
		}
	}
	if !*noInvariants {
		if now := t.Now(); now < 0 || now != now {
			report(path, "clock: recovered time %v is invalid", now)
			return exitIntegrity
		}
		if err := t.CheckInvariants(); err != nil {
			report(path, "invariants: %v", err)
			return exitIntegrity
		}
		logf(path, "invariants: ok (%d leaf entries, clock %.3f)", t.LeafEntries(), t.Now())
	}
	logf(path, "verdict: recoverable — reopen with a durability policy to replay %d tail records", len(a.Tail))
	return exitOK
}

// reportOpenFailure classifies a failure to open the recovered view of
// an unclean file, mirroring recovery: with no checkpoint images, no
// logical tail and no checksum error, the crash happened during a fresh
// tree's very first checkpoint — nothing was ever acknowledged and Open
// reinitializes from scratch, so the file is recoverable.  Anything
// else is corruption.
func reportOpenFailure(path string, a wal.Analysis, stage string, err error) int {
	if a.Images == nil && len(a.Tail) == 0 && !errors.Is(err, storage.ErrChecksum) {
		logf(path, "%s: %v", stage, err)
		logf(path, "verdict: recoverable — crash during the first checkpoint of a fresh tree; reopen reinitializes it")
		return exitOK
	}
	report(path, "%s: %v", stage, err)
	return exitIntegrity
}

// checkTree runs the tree-level verification of a clean file.
func checkTree(path string, fs *storage.FileStore) int {
	cfg, err := core.MetaConfig(fs)
	if err != nil {
		report(path, "metadata: %v", err)
		return exitIntegrity
	}
	t, err := core.Open(cfg, fs)
	if err != nil {
		report(path, "tree: %v", err)
		return exitIntegrity
	}
	if now := t.Now(); now < 0 || now != now {
		report(path, "clock: recovered time %v is invalid", now)
		return exitIntegrity
	}
	if err := t.CheckInvariants(); err != nil {
		report(path, "invariants: %v", err)
		return exitIntegrity
	}
	logf(path, "invariants: ok (%d leaf entries, clock %.3f)", t.LeafEntries(), t.Now())
	return exitOK
}

// rexpWALPath mirrors rexptree.WALPath without importing the root
// package (which would drag the full front-end into the tool).
func rexpWALPath(path string) string { return path + ".wal" }

// overlayStore presents a base store with a set of page images patched
// over it, without writing anything: the exact view recovery would
// produce.  Only reading is supported.
type overlayStore struct {
	inner   *storage.FileStore
	patches map[storage.PageID][]byte
	pages   int
}

func (o *overlayStore) ReadPage(id storage.PageID, buf []byte) error {
	if img, ok := o.patches[id]; ok {
		copy(buf, img)
		return nil
	}
	return o.inner.ReadPage(id, buf)
}

func (o *overlayStore) WritePage(storage.PageID, []byte) error { return storage.ErrReadOnly }
func (o *overlayStore) Allocate() (storage.PageID, error)      { return 0, storage.ErrReadOnly }
func (o *overlayStore) Free(storage.PageID) error              { return storage.ErrReadOnly }
func (o *overlayStore) Len() int                               { return o.pages }
func (o *overlayStore) Close() error                           { return nil }

func report(path, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rexpcheck: %s: %s\n", path, fmt.Sprintf(format, args...))
}

func logf(path, format string, args ...any) {
	if *quiet {
		return
	}
	fmt.Printf("%s: %s\n", path, fmt.Sprintf(format, args...))
}
