// Command rexpgen generates a workload (the §5.1 network or uniform
// scenario) and writes it to stdout or a file in the text operation
// format of internal/workload (one line per insert/delete/query).
// The output can be inspected directly or replayed with
// "rexpstat -replay".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rexptree/internal/workload"
)

func main() {
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		seed    = flag.Int64("seed", 1, "workload seed")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's workload scale")
		ui      = flag.Float64("ui", 60, "average update interval")
		expT    = flag.Float64("expt", 0, "expiration period (0 = default 2*UI)")
		expD    = flag.Float64("expd", 0, "expiration distance (overrides expt)")
		newOb   = flag.Float64("newob", 0, "fraction of objects replaced")
		uniform = flag.Bool("uniform", false, "uniform scenario instead of the network")
	)
	flag.Parse()

	p := workload.Params{
		Seed: *seed, UI: *ui, ExpT: *expT, ExpD: *expD,
		NewOb: *newOb, Uniform: *uniform,
	}.Scale(*scale)
	gen, err := workload.NewGenerator(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rexpgen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexpgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintf(w, "# rexptree workload: objects=%d insertions=%d ui=%g expt=%g expd=%g newob=%g uniform=%v seed=%d\n",
		p.Objects, p.Insertions, p.UI, p.ExpT, p.ExpD, p.NewOb, p.Uniform, p.Seed)
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if err := workload.WriteOp(w, op); err != nil {
			fmt.Fprintf(os.Stderr, "rexpgen: %v\n", err)
			os.Exit(1)
		}
	}
}
