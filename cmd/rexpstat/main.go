// Command rexpstat builds an index from a generated workload and
// prints structural statistics: height, nodes per level, average
// fan-out, live/expired leaf-entry counts, index size, buffer-pool
// traffic, and the self-tuned update-interval estimate.  It is a quick
// way to inspect how a configuration organizes a workload.
//
// With -json the full metrics snapshot is printed as JSON instead of
// the human-readable report; with -serve the process stays up after
// the workload and exposes the metrics in Prometheus text format at
// /metrics on the given address, Go runtime metrics appended to each
// scrape (disable with -noruntime) and net/http/pprof profiles under
// /debug/pprof/ (disable with -nopprof).
//
// With -explain the workload is loaded into a speed-partitioned
// 4-shard ShardedTree with the flight recorder on, representative
// window, timeslice and nearest queries are traced, and their EXPLAIN
// output is printed (-json: the structured traces); -serve then also
// exposes the recorder at /debug/rexp/traces.
//
// Usage:
//
//	rexpstat [-mode rexp|tpr] [-br near-optimal] [-scale 0.01] [-json] [-explain] [-serve :9090] ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"rexptree"
	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
	"rexptree/internal/workload"
)

// queryOp classifies a workload query by shape for the per-op latency
// histograms: an instant is a timeslice, a moving region a Type 3
// query, anything else a window.
func queryOp(q geom.Query) obs.Op {
	if q.T1 == q.T2 {
		return obs.OpTimeslice
	}
	for i := range q.Region.VLo {
		if q.Region.VLo[i] != 0 || q.Region.VHi[i] != 0 {
			return obs.OpMoving
		}
	}
	return obs.OpWindow
}

func brKind(name string) (hull.Kind, error) {
	for k := hull.KindConservative; k <= hull.KindOptimal; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown bounding-rectangle kind %q", name)
}

func main() {
	var (
		mode      = flag.String("mode", "rexp", "rexp (expiration-aware) or tpr (baseline)")
		br        = flag.String("br", "near-optimal", "bounding rectangles: conservative|static|update-minimum|near-optimal|optimal")
		scale     = flag.Float64("scale", 0.01, "fraction of the paper's workload scale")
		seed      = flag.Int64("seed", 1, "seed")
		expT      = flag.Float64("expt", 0, "expiration period (0 = 2*UI)")
		expD      = flag.Float64("expd", 0, "expiration distance")
		newOb     = flag.Float64("newob", 0, "fraction of replaced objects")
		uniform   = flag.Bool("uniform", false, "uniform scenario")
		storeBR   = flag.Bool("brexp", false, "record expiration times in internal entries")
		replay    = flag.String("replay", "", "replay a workload file written by rexpgen instead of generating one")
		check     = flag.Bool("check", false, "validate the tree's structural invariants after the workload")
		asJSON    = flag.Bool("json", false, "print the metrics snapshot as JSON instead of the report")
		serve     = flag.String("serve", "", "serve Prometheus metrics at /metrics on this address and block (e.g. :9090)")
		explain   = flag.Bool("explain", false, "trace representative queries on a 4-shard speed-partitioned tree and print their EXPLAIN output")
		noPprof   = flag.Bool("nopprof", false, "serve mode: do not mount net/http/pprof under /debug/pprof/")
		noRuntime = flag.Bool("noruntime", false, "serve mode: do not append Go runtime metrics to /metrics scrapes")
	)
	flag.Parse()

	if *explain {
		if err := runExplain(*scale, *seed, *expT, *expD, *newOb, *uniform, *asJSON, *serve, *noPprof, *noRuntime); err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
		return
	}

	kind, err := brKind(*br)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexpstat:", err)
		os.Exit(1)
	}
	met := obs.New()
	cfg := core.Config{Dims: 2, BRKind: kind, Seed: *seed, Metrics: met}
	if *mode == "rexp" {
		cfg.ExpireAware = true
		cfg.AlgsUseExp = true
		cfg.StoreBRExp = *storeBR
	} else if *mode != "tpr" {
		fmt.Fprintf(os.Stderr, "rexpstat: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	tree, err := core.New(cfg, storage.NewMemStore())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexpstat:", err)
		os.Exit(1)
	}
	apply := func(op workload.Op) error {
		start := time.Now()
		var kind obs.Op
		var err error
		switch op.Kind {
		case workload.OpInsert:
			kind = obs.OpUpdate
			err = tree.Insert(op.OID, op.Point, op.Time)
		case workload.OpDelete:
			kind = obs.OpDelete
			_, err = tree.Delete(op.OID, op.Point, op.Time)
		default:
			kind = queryOp(op.Query)
			_, err = tree.Search(op.Query, op.Time)
		}
		met.ObserveOp(kind, time.Since(start), err)
		return err
	}

	ops := 0
	var source string
	if *replay != "" {
		source = *replay
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := workload.NewScanner(f)
		for sc.Scan() {
			if err := apply(sc.Op()); err != nil {
				fmt.Fprintf(os.Stderr, "rexpstat: op %d: %v\n", ops, err)
				os.Exit(1)
			}
			ops++
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
	} else {
		p := workload.Params{Seed: *seed, ExpT: *expT, ExpD: *expD, NewOb: *newOb, Uniform: *uniform}.Scale(*scale)
		source = fmt.Sprintf("generated: objects=%d insertions=%d seed=%d", p.Objects, p.Insertions, *seed)
		gen, err := workload.NewGenerator(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if err := apply(op); err != nil {
				fmt.Fprintf(os.Stderr, "rexpstat: op %d: %v\n", ops, err)
				os.Exit(1)
			}
			ops++
		}
	}

	tree.SyncGauges()
	if *asJSON {
		out, err := json.MarshalIndent(met.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		fmt.Printf("configuration : mode=%s br=%s brexp=%v\n", *mode, kind, cfg.StoreBRExp)
		fmt.Printf("workload      : %s, %d ops\n", source, ops)
		fmt.Printf("height        : %d\n", tree.Height())
		counts, err := tree.NodeCount()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
		for lvl := len(counts) - 1; lvl >= 0; lvl-- {
			fmt.Printf("level %-2d      : %d nodes\n", lvl, counts[lvl])
		}
		live, expired, err := tree.EntryStats()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
		total := live + expired
		fmt.Printf("leaf entries  : %d live, %d expired (%.2f%% expired)\n",
			live, expired, 100*float64(expired)/float64(max(total, 1)))
		if counts[0] > 0 {
			fmt.Printf("leaf fill     : %.1f avg entries (capacity %d)\n",
				float64(total)/float64(counts[0]), tree.LeafCapacity())
		}
		fmt.Printf("index size    : %d pages (%.1f KiB)\n", tree.Size(), float64(tree.Size())*storage.PageSize/1024)
		io := tree.IOStats()
		fmt.Printf("I/O           : %d reads, %d writes (%d dirty writebacks), %d buffer hits, %d evictions\n",
			io.Reads, io.Writes, io.DirtyWritebacks, io.Hits, io.Evictions)
		fmt.Printf("structure ops : %d splits, %d forced reinserts, %d condenses, %d purged, %d orphans reinserted\n",
			met.Splits.Load(), met.ForcedReinserts.Load(), met.Condenses.Load(),
			met.ExpiredPurged.Load(), met.OrphansReinserted.Load())
		fmt.Printf("UI estimate   : %.1f (assumed W %.1f)\n", tree.UI(), tree.W())
	}
	if *check {
		if err := tree.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "rexpstat: invariants FAILED: %v\n", err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Println("invariants    : ok")
		}
	}

	if *serve != "" {
		mux := http.NewServeMux()
		var metricsH http.Handler = obs.Handler(func() obs.Snapshot {
			tree.SyncGauges()
			return met.Snapshot()
		})
		if !*noRuntime {
			metricsH = obs.WithRuntimeMetrics(metricsH, obs.DefaultPrefix)
		}
		mux.Handle("/metrics", metricsH)
		if !*noPprof {
			obs.RegisterPprof(mux)
		}
		fmt.Fprintf(os.Stderr, "rexpstat: serving Prometheus metrics at http://%s/metrics\n", *serve)
		if err := http.ListenAndServe(*serve, mux); err != nil {
			fmt.Fprintln(os.Stderr, "rexpstat:", err)
			os.Exit(1)
		}
	}
}

// runExplain loads the generated workload into an in-memory 4-shard
// speed-partitioned ShardedTree with the flight recorder enabled,
// traces one window, one timeslice and one nearest query, and prints
// their EXPLAIN renderings.  With an address, it then serves /metrics,
// /debug/rexp/traces and (unless disabled) /debug/pprof/.
func runExplain(scale float64, seed int64, expT, expD, newOb float64, uniform, asJSON bool, serve string, noPprof, noRuntime bool) error {
	p := workload.Params{Seed: seed, ExpT: expT, ExpD: expD, NewOb: newOb, Uniform: uniform}.Scale(scale)
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	opts := rexptree.DefaultOptions()
	opts.Seed = seed
	opts.FlightRecorder = 256
	st, err := rexptree.OpenSharded(rexptree.ShardedOptions{
		Options:   opts,
		Shards:    4,
		Partition: rexptree.PartitionSpeed,
	})
	if err != nil {
		return err
	}
	defer st.Close()

	// Replay the insert/delete stream (queries are re-issued traced
	// below); the workload clock is monotone, so the last op's time is
	// the tree's "now".
	now := 0.0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		now = op.Time
		switch op.Kind {
		case workload.OpInsert:
			at := op.Point.At(op.Time)
			pt := rexptree.Point{
				Pos:     rexptree.Vec(at),
				Vel:     rexptree.Vec(op.Point.Vel),
				Time:    op.Time,
				Expires: op.Point.TExp,
			}
			if err := st.Update(op.OID, pt, op.Time); err != nil {
				return err
			}
		case workload.OpDelete:
			if _, err := st.Delete(op.OID, op.Time); err != nil {
				return err
			}
		}
	}

	// The paper's 1000x1000 world: trace a central window, a timeslice
	// a little ahead, and a k-nearest around the center.
	region := rexptree.Rect{
		Lo: rexptree.Vec{400, 400},
		Hi: rexptree.Vec{600, 600},
	}
	center := rexptree.Vec{500, 500}
	var traces []*rexptree.QueryTrace
	_, tc, err := st.TraceWindow(region, now, now+10, now)
	if err != nil {
		return err
	}
	traces = append(traces, tc)
	if _, tc, err = st.TraceTimeslice(region, now+5, now); err != nil {
		return err
	}
	traces = append(traces, tc)
	if _, tc, err = st.TraceNearest(center, now, 10, now); err != nil {
		return err
	}
	traces = append(traces, tc)

	if asJSON {
		out, err := json.MarshalIndent(traces, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		for _, tc := range traces {
			fmt.Print(tc.Text())
		}
	}

	if serve != "" {
		mux := http.NewServeMux()
		var metricsH http.Handler = st.MetricsHandler()
		if !noRuntime {
			metricsH = obs.WithRuntimeMetrics(metricsH, obs.DefaultPrefix)
		}
		mux.Handle("/metrics", metricsH)
		mux.Handle("/debug/rexp/traces", st.TraceHandler())
		if !noPprof {
			obs.RegisterPprof(mux)
		}
		fmt.Fprintf(os.Stderr, "rexpstat: serving metrics at http://%s/metrics, traces at /debug/rexp/traces\n", serve)
		return http.ListenAndServe(serve, mux)
	}
	return nil
}
