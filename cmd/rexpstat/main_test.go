package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles this command into a temp dir and returns the
// binary path, so the smoke tests exercise the real CLI surface: flag
// parsing, exit codes and output format.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tool")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSmokeReport(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-scale", "0.005", "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("rexpstat -check failed: %v\n%s", err, out)
	}
	for _, want := range []string{"configuration", "height", "invariants    : ok"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeJSON(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-scale", "0.005", "-json").Output()
	if err != nil {
		t.Fatalf("rexpstat -json failed: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(out, &snap); err != nil {
		t.Fatalf("output is not a JSON object: %v\n%s", err, out)
	}
	if len(snap) == 0 {
		t.Fatal("empty metrics snapshot")
	}
}

func TestSmokeBadMode(t *testing.T) {
	bin := buildTool(t)
	err := exec.Command(bin, "-mode", "bogus").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v", err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit code %d, want 1", ee.ExitCode())
	}
}
