package rexptree

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceEquivalenceSingle checks the Trace* methods return exactly
// what the untraced queries return — tracing observes, it must never
// change the traversal — and that the trace carries the expected span
// structure.
func TestTraceEquivalenceSingle(t *testing.T) {
	tr, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, r := range testWorkload(2000, 11) {
		if err := tr.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}

	region := Rect{Lo: Vec{100, 100}, Hi: Vec{400, 400}}
	region2 := Rect{Lo: Vec{150, 150}, Hi: Vec{450, 450}}

	type q struct {
		name     string
		plain    func() ([]Result, error)
		traced   func() ([]Result, *QueryTrace, error)
		wantOp   string
		minSpans int
	}
	cases := []q{
		{"window",
			func() ([]Result, error) { return tr.Window(region, 5, 15, 0) },
			func() ([]Result, *QueryTrace, error) { return tr.TraceWindow(region, 5, 15, 0) },
			"window", 2},
		{"timeslice",
			func() ([]Result, error) { return tr.Timeslice(region, 5, 0) },
			func() ([]Result, *QueryTrace, error) { return tr.TraceTimeslice(region, 5, 0) },
			"timeslice", 2},
		{"moving",
			func() ([]Result, error) { return tr.Moving(region, region2, 5, 15, 0) },
			func() ([]Result, *QueryTrace, error) { return tr.TraceMoving(region, region2, 5, 15, 0) },
			"moving", 2},
		{"nearest",
			func() ([]Result, error) { return tr.Nearest(Vec{500, 500}, 5, 10, 0) },
			func() ([]Result, *QueryTrace, error) { return tr.TraceNearest(Vec{500, 500}, 5, 10, 0) },
			"nearest", 2},
	}
	for _, c := range cases {
		want, err := c.plain()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got, trace, err := c.traced()
		if err != nil {
			t.Fatalf("Trace %s: %v", c.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: traced %d results, untraced %d", c.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s result %d: traced %+v, untraced %+v", c.name, i, got[i], want[i])
			}
		}
		if trace == nil || trace.Op != c.wantOp {
			t.Fatalf("%s: trace %+v, want op %q", c.name, trace, c.wantOp)
		}
		if trace.Results != len(want) {
			t.Errorf("%s: trace.Results = %d, want %d", c.name, trace.Results, len(want))
		}
		if len(trace.Spans) < c.minSpans {
			t.Fatalf("%s: %d spans, want >= %d", c.name, len(trace.Spans), c.minSpans)
		}
		var sawTraverse, sawPin bool
		for _, sp := range trace.Spans {
			if sp.Phase == "traverse" {
				sawTraverse = true
				if want != nil && sp.Nodes == 0 {
					t.Errorf("%s: traverse span visited 0 nodes", c.name)
				}
			}
			if sp.Phase == "epoch-pin" {
				sawPin = true
			}
			if sp.Phase == "lock-wait" {
				t.Errorf("%s: lock-wait span on the snapshot read path", c.name)
			}
		}
		if !sawTraverse {
			t.Errorf("%s: no traverse span in %+v", c.name, trace.Spans)
		}
		if !sawPin {
			t.Errorf("%s: no epoch-pin span in %+v", c.name, trace.Spans)
		}
		if len(trace.Shards) != 0 {
			t.Errorf("%s: stand-alone tree trace has a shard table", c.name)
		}
		if txt := trace.Text(); !strings.Contains(txt, c.wantOp) || !strings.Contains(txt, "traverse") {
			t.Errorf("%s: Text() missing op or spans:\n%s", c.name, txt)
		}
	}
}

// TestTraceMutationPublishSpan checks that recorded mutation traces
// carry the version-publish span timing the snapshot publication, and
// that queries recorded through the flight recorder carry epoch-pin.
func TestTraceMutationPublishSpan(t *testing.T) {
	opts := DefaultOptions()
	opts.FlightRecorder = 8
	tr, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, r := range testWorkload(200, 3) {
		if err := tr.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.UpdateBatch(testWorkload(200, 4), 0); err != nil {
		t.Fatal(err)
	}
	recent, _ := tr.Traces()
	phases := map[string]map[string]bool{} // op -> span phases seen
	for _, qt := range recent {
		if phases[qt.Op] == nil {
			phases[qt.Op] = map[string]bool{}
		}
		for _, sp := range qt.Spans {
			phases[qt.Op][sp.Phase] = true
		}
	}
	for _, op := range []string{"update", "batch"} {
		if !phases[op]["version-publish"] {
			t.Errorf("recorded %s trace has no version-publish span (spans: %v)", op, phases[op])
		}
	}
}

// TestTraceEquivalenceSharded runs every query type on a 4-shard
// speed-partitioned tree and checks traced results match untraced ones
// and the trace carries the pruning table and fan-out span tree.
func TestTraceEquivalenceSharded(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{
		Options:   DefaultOptions(),
		Shards:    4,
		Partition: PartitionSpeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateBatch(testWorkload(3000, 42), 0); err != nil {
		t.Fatal(err)
	}

	region := Rect{Lo: Vec{200, 200}, Hi: Vec{600, 600}}
	region2 := Rect{Lo: Vec{250, 250}, Hi: Vec{650, 650}}
	validReasons := map[string]bool{
		"match": true, "summary-pruned": true, "empty": true, "distance-pruned": true,
	}

	type q struct {
		name   string
		plain  func() ([]Result, error)
		traced func() ([]Result, *QueryTrace, error)
	}
	cases := []q{
		{"window",
			func() ([]Result, error) { return s.Window(region, 5, 15, 0) },
			func() ([]Result, *QueryTrace, error) { return s.TraceWindow(region, 5, 15, 0) }},
		{"timeslice",
			func() ([]Result, error) { return s.Timeslice(region, 5, 0) },
			func() ([]Result, *QueryTrace, error) { return s.TraceTimeslice(region, 5, 0) }},
		{"moving",
			func() ([]Result, error) { return s.Moving(region, region2, 5, 15, 0) },
			func() ([]Result, *QueryTrace, error) { return s.TraceMoving(region, region2, 5, 15, 0) }},
		{"nearest",
			func() ([]Result, error) { return s.Nearest(Vec{500, 500}, 5, 20, 0) },
			func() ([]Result, *QueryTrace, error) { return s.TraceNearest(Vec{500, 500}, 5, 20, 0) }},
	}
	for _, c := range cases {
		want, err := c.plain()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got, trace, err := c.traced()
		if err != nil {
			t.Fatalf("Trace %s: %v", c.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: traced %d results, untraced %d", c.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s result %d differs: traced %+v, untraced %+v", c.name, i, got[i], want[i])
			}
		}

		if len(trace.Shards) != 4 {
			t.Fatalf("%s: pruning table has %d rows, want 4", c.name, len(trace.Shards))
		}
		results := 0
		for i, st := range trace.Shards {
			if st.Shard != i {
				t.Errorf("%s: row %d claims shard %d", c.name, i, st.Shard)
			}
			if !validReasons[st.Reason] {
				t.Errorf("%s: shard %d has unknown reason %q", c.name, i, st.Reason)
			}
			if st.Visited != (st.Reason == "match") {
				t.Errorf("%s: shard %d visited=%v with reason %q", c.name, i, st.Visited, st.Reason)
			}
			if st.Band == "" {
				t.Errorf("%s: shard %d row missing its speed band", c.name, i)
			}
			results += st.Results
		}
		if c.name != "nearest" && results != len(want) {
			t.Errorf("%s: shard rows account for %d results, query returned %d", c.name, results, len(want))
		}

		spansByPhase := map[string]int{}
		for _, sp := range trace.Spans {
			spansByPhase[sp.Phase]++
		}
		if spansByPhase["route"] != 1 {
			t.Errorf("%s: %d route spans, want 1", c.name, spansByPhase["route"])
		}
		if c.name != "nearest" && spansByPhase["merge"] != 1 {
			t.Errorf("%s: %d merge spans, want 1", c.name, spansByPhase["merge"])
		}
		visited := 0
		for _, st := range trace.Shards {
			if st.Visited {
				visited++
			}
		}
		if spansByPhase["shard"] != visited {
			t.Errorf("%s: %d shard spans for %d visited shards", c.name, spansByPhase["shard"], visited)
		}
		if c.name != "nearest" && spansByPhase["queue-wait"] != visited {
			t.Errorf("%s: %d queue-wait spans for %d visited shards", c.name, spansByPhase["queue-wait"], visited)
		}

		// Every span's parent index must be in range and acyclic-by
		// construction (parents precede children).
		for i, sp := range trace.Spans {
			if sp.Parent >= i {
				t.Errorf("%s: span %d has parent %d (must precede it)", c.name, i, sp.Parent)
			}
		}

		if _, err := trace.JSON(); err != nil {
			t.Errorf("%s: JSON: %v", c.name, err)
		}
		if txt := trace.Text(); !strings.Contains(txt, "shards:") {
			t.Errorf("%s: Text() missing pruning table:\n%s", c.name, txt)
		}
	}
}

// TestFlightRecorderCapturesSlow runs a concurrent mixed workload on a
// recorder-enabled tree (slow threshold 1ns, so everything lands in the
// slow ring) and checks the recorder retained traces; run under -race
// this doubles as the recorder's integration race test.
func TestFlightRecorderCapturesSlow(t *testing.T) {
	opts := DefaultOptions()
	opts.FlightRecorder = 16
	opts.FlightSlowThreshold = time.Nanosecond
	tr, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reports := testWorkload(1000, 3)
	for _, r := range reports {
		if err := tr.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := Rect{Lo: Vec{float64(w) * 100, 0}, Hi: Vec{float64(w)*100 + 300, 500}}
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					if _, err := tr.Window(region, 1, 10, 0); err != nil {
						t.Error(err)
						return
					}
				} else {
					r := reports[(w*50+i)%len(reports)]
					if err := tr.Update(r.ID, r.Point, 0); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	recent, slow := tr.Traces()
	if len(recent) != 16 {
		t.Errorf("recent ring holds %d traces, want 16", len(recent))
	}
	if len(slow) != 16 {
		t.Errorf("slow ring holds %d traces, want 16 (threshold 1ns)", len(slow))
	}
	ops := map[string]bool{}
	for _, q := range append(recent, slow...) {
		if q == nil || q.Duration <= 0 {
			t.Fatalf("recorded trace %+v has no duration", q)
		}
		ops[q.Op] = true
	}
	// The plain public calls must have been recorded (they route
	// through the traced path when a recorder is attached).
	if !ops["window"] && !ops["update"] {
		t.Errorf("recorder saw ops %v, expected window and/or update", ops)
	}
}

// TestTraceHandlerJSON checks the /debug/rexp/traces payload shape for
// both an enabled and a disabled recorder.
func TestTraceHandlerJSON(t *testing.T) {
	opts := DefaultOptions()
	opts.FlightRecorder = 4
	opts.FlightSlowThreshold = time.Nanosecond
	tr, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, r := range testWorkload(200, 5) {
		if err := tr.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Window(Rect{Lo: Vec{0, 0}, Hi: Vec{500, 500}}, 1, 5, 0); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	tr.TraceHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rexp/traces", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var resp struct {
		Enabled       bool          `json:"enabled"`
		SlowThreshold int64         `json:"slow_threshold_ns"`
		Recent        []*QueryTrace `json:"recent"`
		Slow          []*QueryTrace `json:"slow"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("payload is not JSON: %v\n%s", err, rr.Body.String())
	}
	if !resp.Enabled || resp.SlowThreshold != 1 {
		t.Errorf("enabled=%v threshold=%d, want true/1", resp.Enabled, resp.SlowThreshold)
	}
	if len(resp.Recent) == 0 || len(resp.Slow) == 0 {
		t.Fatalf("payload retained %d recent, %d slow traces", len(resp.Recent), len(resp.Slow))
	}
	if resp.Recent[0].Op == "" || len(resp.Recent[0].Spans) == 0 {
		t.Errorf("decoded trace lost its fields: %+v", resp.Recent[0])
	}

	// Disabled recorder: explicit enabled:false payload.
	plain, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	rr = httptest.NewRecorder()
	plain.TraceHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rexp/traces", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || len(resp.Recent) != 0 || len(resp.Slow) != 0 {
		t.Errorf("disabled payload = %+v", resp)
	}
}

// TestShardedFlightRecorder checks the sharded front end records
// fan-out traces with their pruning tables.
func TestShardedFlightRecorder(t *testing.T) {
	opts := DefaultOptions()
	opts.FlightRecorder = 8
	opts.FlightSlowThreshold = time.Nanosecond
	s, err := OpenSharded(ShardedOptions{Options: opts, Shards: 4, Partition: PartitionSpeed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateBatch(testWorkload(2000, 9), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Window(Rect{Lo: Vec{100, 100}, Hi: Vec{600, 600}}, 1, 10, 0); err != nil {
		t.Fatal(err)
	}
	recent, slow := s.Traces()
	if len(recent) == 0 || len(slow) == 0 {
		t.Fatalf("front end recorded %d recent, %d slow traces", len(recent), len(slow))
	}
	var sawQuery bool
	for _, q := range recent {
		if q.Op == "window" {
			sawQuery = true
			if len(q.Shards) != 4 {
				t.Errorf("recorded window trace has %d shard rows, want 4", len(q.Shards))
			}
		}
	}
	if !sawQuery {
		t.Errorf("no window trace among %d recorded", len(recent))
	}
}

// TestShardedPhaseExposition checks the fan-out phases observed only
// by the front-end registry (queue_wait, merge) are folded into the
// aggregate Prometheus exposition alongside the summed shard phases.
func TestShardedPhaseExposition(t *testing.T) {
	s, err := OpenSharded(ShardedOptions{Options: DefaultOptions(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateBatch(testWorkload(500, 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Window(Rect{Lo: Vec{0, 0}, Hi: Vec{900, 900}}, 1, 10, 0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"queue_wait", "merge"} {
		series := `rexp_phase_duration_seconds_count{phase="` + phase + `"} `
		var found bool
		for _, line := range strings.Split(buf.String(), "\n") {
			if v, ok := strings.CutPrefix(line, series); ok {
				found = true
				if v == "0" {
					t.Errorf("aggregate exposition lost the front end's %s observations", phase)
				}
				break
			}
		}
		if !found {
			t.Errorf("aggregate exposition missing %s%s", series, "...")
		}
	}
}

// TestShardedHookTags checks Observer and SlowOp hooks configured on a
// ShardedTree reach the shards and come back tagged with the shard
// identity, and that the front end reports fan-out slow ops; a
// stand-alone tree's events carry Shard == -1.
func TestShardedHookTags(t *testing.T) {
	var mu sync.Mutex
	var events []ObserverEvent
	var slowOps []string

	opts := DefaultOptions()
	opts.Observer = func(e ObserverEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	opts.SlowOpThreshold = time.Nanosecond
	opts.SlowOp = func(op string, d time.Duration) {
		mu.Lock()
		slowOps = append(slowOps, op)
		mu.Unlock()
	}
	s, err := OpenSharded(ShardedOptions{Options: opts, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateBatch(testWorkload(3000, 21), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Window(Rect{Lo: Vec{0, 0}, Hi: Vec{900, 900}}, 1, 10, 0); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	if len(events) == 0 {
		mu.Unlock()
		t.Fatal("no observer events from a 3000-object load (expected splits)")
	}
	for _, e := range events {
		if e.Shard < 0 || e.Shard >= 4 {
			mu.Unlock()
			t.Fatalf("sharded observer event %+v has shard %d outside [0,4)", e, e.Shard)
		}
	}
	var shardTagged, fanout bool
	for _, op := range slowOps {
		if strings.HasPrefix(op, "shard") && strings.Contains(op, "/") {
			shardTagged = true
		}
		if strings.HasPrefix(op, "fanout/") {
			fanout = true
		}
	}
	if !shardTagged || !fanout {
		t.Errorf("slow ops %v: want both shard-tagged and fanout/ entries", slowOps)
	}
	mu.Unlock()

	// Stand-alone tree: events carry the -1 shard sentinel.  The hook
	// runs synchronously on the updating goroutine, so no lock.
	var single []ObserverEvent
	sopts := DefaultOptions()
	sopts.Observer = func(e ObserverEvent) {
		single = append(single, e)
	}
	tr, err := Open(sopts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, r := range testWorkload(2000, 13) {
		if err := tr.Update(r.ID, r.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(single) == 0 {
		t.Fatal("no observer events from the stand-alone load")
	}
	for _, e := range single {
		if e.Shard != -1 {
			t.Fatalf("stand-alone event %+v has shard %d, want -1", e, e.Shard)
		}
	}
}
