package core

import (
	"math/rand"
	"sort"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg, storage.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rexpConfig() Config {
	return Config{Dims: 2, ExpireAware: true, StoreBRExp: true, AlgsUseExp: true,
		BRKind: hull.KindNearOptimal, BufferPages: 20, Seed: 1}
}

func tprConfig() Config {
	return Config{Dims: 2, BRKind: hull.KindConservative, BufferPages: 20, Seed: 1}
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	if tr.Height() != 1 {
		t.Errorf("height = %d", tr.Height())
	}
	if tr.Size() != 2 { // meta page + empty root
		t.Errorf("size = %d pages", tr.Size())
	}
	res, err := tr.Search(geom.Timeslice(geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty tree returned %d results", len(res))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndTimeslice(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	pts := []geom.MovingPoint{
		{Pos: geom.Vec{100, 100}, Vel: geom.Vec{1, 0}, TExp: 100},
		{Pos: geom.Vec{500, 500}, Vel: geom.Vec{0, -1}, TExp: 100},
		{Pos: geom.Vec{900, 900}, Vel: geom.Vec{-2, -2}, TExp: 100},
	}
	for i, p := range pts {
		if err := tr.Insert(uint32(i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	// At t=50, object 0 is at (150,100), object 1 at (500,450),
	// object 2 at (800,800).
	q := geom.Timeslice(geom.Rect{Lo: geom.Vec{140, 90}, Hi: geom.Vec{160, 110}}, 50)
	res, err := tr.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].OID != 0 {
		t.Fatalf("timeslice = %v, want object 0", res)
	}
	// Whole-space query finds everything.
	all, _ := tr.Search(geom.Timeslice(geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}, 50), 10)
	if len(all) != 3 {
		t.Fatalf("whole-space query found %d objects", len(all))
	}
}

func TestSearchSkipsExpired(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	tr.Insert(1, geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: 10}, 0)
	tr.Insert(2, geom.MovingPoint{Pos: geom.Vec{200, 200}, TExp: 1000}, 0)
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	res, _ := tr.Search(geom.Timeslice(world, 50), 50)
	if len(res) != 1 || res[0].OID != 2 {
		t.Fatalf("expired object visible: %v", res)
	}
	// A query at t beyond object 2's expiry sees nothing.
	res, _ = tr.Search(geom.Timeslice(world, 2000), 2000)
	if len(res) != 0 {
		t.Fatalf("all objects expired, got %v", res)
	}
}

func TestTPRModeIgnoresExpiration(t *testing.T) {
	tr := newTestTree(t, tprConfig())
	tr.Insert(1, geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: 10}, 0)
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	res, _ := tr.Search(geom.Timeslice(world, 500), 500)
	if len(res) != 1 {
		t.Fatalf("TPR-tree must report expired objects (false drops), got %v", res)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	p := geom.MovingPoint{Pos: geom.Vec{100, 100}, Vel: geom.Vec{1, 1}, TExp: 1000}
	tr.Insert(1, p, 0)
	found, err := tr.Delete(1, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("live entry not found for deletion")
	}
	res, _ := tr.Search(geom.Timeslice(geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}, 10), 10)
	if len(res) != 0 {
		t.Fatalf("deleted object still visible: %v", res)
	}
	// Deleting again fails gracefully.
	found, err = tr.Delete(1, p, 6)
	if err != nil || found {
		t.Fatalf("second delete: found=%v err=%v", found, err)
	}
}

func TestDeleteExpiredFails(t *testing.T) {
	// §4.3: the deletion search does not see expired entries, so
	// deleting one fails.
	tr := newTestTree(t, rexpConfig())
	p := geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: 10}
	tr.Insert(1, p, 0)
	found, err := tr.Delete(1, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("delete of an expired entry succeeded")
	}
}

func TestGrowAndShrink(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	rng := rand.New(rand.NewSource(51))
	n := tr.LeafCapacity()*3 + 7
	pts := make([]geom.MovingPoint, n)
	for i := range pts {
		pts[i] = geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: geom.Inf(),
		}
		if err := tr.Insert(uint32(i), pts[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d after %d inserts", tr.Height(), n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete everything; the tree must shrink back to a single leaf.
	for i := range pts {
		found, err := tr.Delete(uint32(i), quantize(pts[i], 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("object %d lost", i)
		}
	}
	if tr.LeafEntries() != 0 {
		t.Fatalf("leaf entries = %d after deleting all", tr.LeafEntries())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d after deleting all", tr.Height())
	}
	if tr.Size() != 2 { // meta page + empty root
		t.Fatalf("size = %d pages after deleting all", tr.Size())
	}
}

func TestLazyPurgeKeepsExpiredFractionLow(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	rng := rand.New(rand.NewSource(52))
	const n = 2000
	objs := make(map[uint32]geom.MovingPoint)
	now := 0.0
	for step := 0; step < 6*n; step++ {
		now += 0.01
		oid := uint32(rng.Intn(n))
		if old, ok := objs[oid]; ok {
			tr.Delete(oid, old, now)
		}
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 5 + rng.Float64()*40,
		}
		if err := tr.Insert(oid, p, now); err != nil {
			t.Fatal(err)
		}
		objs[oid] = quantize(p, 2)
	}
	live, expired, err := tr.EntryStats()
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(expired) / float64(live+expired)
	if frac > 0.05 {
		t.Errorf("expired fraction %.3f exceeds 5%% (live=%d expired=%d)", frac, live, expired)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUIEstimate(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	rng := rand.New(rand.NewSource(53))
	// 1000 objects each updating every ~20 time units.
	const n, ui = 1000, 20.0
	objs := make(map[uint32]geom.MovingPoint)
	now := 0.0
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i++ {
			now += ui / n
			oid := uint32(i)
			if old, ok := objs[oid]; ok {
				tr.Delete(oid, old, now)
			}
			p := geom.MovingPoint{
				Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				TExp: now + 2*ui,
			}
			tr.Insert(oid, p, now)
			objs[oid] = quantize(p, 2)
		}
	}
	got := tr.UI()
	if got < ui/2 || got > ui*2 {
		t.Errorf("UI estimate %v, want about %v", got, ui)
	}
	if w := tr.W(); w != 0.5*got {
		t.Errorf("W = %v, want beta*UI = %v", w, 0.5*got)
	}
}

// runOracleWorkload drives a tree and a brute-force oracle through an
// identical random workload and verifies that every query agrees.
func runOracleWorkload(t *testing.T, cfg Config, seed int64, steps int) {
	t.Helper()
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(seed))
	oracle := make(map[uint32]geom.MovingPoint)
	now := 0.0
	nextOID := uint32(0)
	queries := 0
	for step := 0; step < steps; step++ {
		now += rng.Float64() * 0.2
		switch op := rng.Intn(10); {
		case op < 5: // insert new object
			p := geom.MovingPoint{
				Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
				TExp: now + rng.Float64()*60,
			}
			if rng.Intn(10) == 0 {
				p.TExp = geom.Inf()
			}
			if err := tr.Insert(nextOID, p, now); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			oracle[nextOID] = tr.prepare(p)
			nextOID++
		case op < 7: // delete (possibly expired, possibly absent)
			if len(oracle) == 0 {
				continue
			}
			oid := pickKey(rng, oracle)
			old := oracle[oid]
			found, err := tr.Delete(oid, old, now)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			wantFound := !cfg.ExpireAware || old.TExp >= now
			if found != wantFound {
				t.Fatalf("step %d delete(%d): found=%v want %v (texp=%v now=%v)",
					step, oid, found, wantFound, old.TExp, now)
			}
			delete(oracle, oid)
		default: // query
			queries++
			q := randQuery(rng, now)
			got, err := tr.Search(q, now)
			if err != nil {
				t.Fatalf("step %d search: %v", step, err)
			}
			var gotIDs, wantIDs []uint32
			for _, r := range got {
				gotIDs = append(gotIDs, r.OID)
			}
			for oid, p := range oracle {
				if cfg.ExpireAware && p.TExp < now {
					continue
				}
				if q.MatchesPoint(p, 2, cfg.ExpireAware) {
					wantIDs = append(wantIDs, oid)
				}
			}
			sortIDs(gotIDs)
			sortIDs(wantIDs)
			if !equalIDs(gotIDs, wantIDs) {
				t.Fatalf("step %d (now=%v): query %+v\n got %v\nwant %v", step, now, q, gotIDs, wantIDs)
			}
		}
		if step%500 == 499 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if queries == 0 {
		t.Fatal("workload executed no queries")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func pickKey(rng *rand.Rand, m map[uint32]geom.MovingPoint) uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortIDs(keys)
	return keys[rng.Intn(len(keys))]
}

func sortIDs(ids []uint32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randQuery(rng *rand.Rand, now float64) geom.Query {
	mk := func() geom.Rect {
		var r geom.Rect
		for i := 0; i < 2; i++ {
			a := rng.Float64() * 950
			r.Lo[i], r.Hi[i] = a, a+50
		}
		return r
	}
	t1 := now + rng.Float64()*10
	t2 := t1 + 0.1 + rng.Float64()*20
	switch rng.Intn(3) {
	case 0:
		return geom.Timeslice(mk(), t1)
	case 1:
		return geom.Window(mk(), t1, t2)
	default:
		return geom.Moving(mk(), mk(), t1, t2, 2)
	}
}

// TestExpiredDuplicateInvisible reproduces the §4.3 corner: an object
// expires before its update, so the deletion fails and the new report
// coexists with the stale one.  Queries must see exactly the live
// report, and the stale copy must eventually be purged.
func TestExpiredDuplicateInvisible(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	rng := rand.New(rand.NewSource(65))
	records := map[uint32]geom.MovingPoint{}
	now := 0.0
	duplicates := 0
	for i := 0; i < 5000; i++ {
		now += 0.05
		oid := uint32(rng.Intn(400))
		if old, ok := records[oid]; ok {
			found, err := tr.Delete(oid, old, now)
			if err != nil {
				t.Fatal(err)
			}
			if !found && old.TExp < now {
				duplicates++ // stale copy may briefly remain
			}
		}
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 1 + rng.Float64()*30, // frequently expires before the update
		}
		if err := tr.Insert(oid, p, now); err != nil {
			t.Fatal(err)
		}
		records[oid] = tr.prepare(p)

		if i%500 == 499 {
			// Queries return each live object at most once, and only
			// the record matching the oracle.
			world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
			res, err := tr.Search(geom.Timeslice(world, now), now)
			if err != nil {
				t.Fatal(err)
			}
			got := map[uint32]int{}
			for _, r := range res {
				got[r.OID]++
				if r.Point != records[r.OID] {
					t.Fatalf("step %d: object %d returned stale record", i, r.OID)
				}
			}
			for oid, c := range got {
				if c > 1 {
					t.Fatalf("step %d: object %d returned %d times", i, oid, c)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if duplicates == 0 {
		t.Fatal("scenario never produced an expire-before-update; test is vacuous")
	}
}

func TestSearchFuncEarlyStop(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 2000; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			TExp: geom.Inf(),
		}
		if err := tr.Insert(uint32(i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	got := 0
	err := tr.SearchFunc(geom.Timeslice(world, 1), 1, func(Result) bool {
		got++
		return got < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("early stop delivered %d results, want 5", got)
	}
	// Full streaming agrees with Search.
	full, err := tr.Search(geom.Timeslice(world, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	tr.SearchFunc(geom.Timeslice(world, 1), 1, func(Result) bool { streamed++; return true })
	if streamed != len(full) {
		t.Fatalf("streamed %d, Search returned %d", streamed, len(full))
	}
}

func TestOracleRexpNearOptimal(t *testing.T) {
	runOracleWorkload(t, rexpConfig(), 101, 4000)
}

func TestOracleRexpNoBRExp(t *testing.T) {
	cfg := rexpConfig()
	cfg.StoreBRExp = false
	runOracleWorkload(t, cfg, 102, 3000)
}

func TestOracleRexpAlgsNoExp(t *testing.T) {
	cfg := rexpConfig()
	cfg.AlgsUseExp = false
	runOracleWorkload(t, cfg, 103, 3000)
}

func TestOracleRexpStatic(t *testing.T) {
	cfg := rexpConfig()
	cfg.BRKind = hull.KindStatic
	runOracleWorkload(t, cfg, 104, 3000)
}

func TestOracleRexpUpdateMinimum(t *testing.T) {
	cfg := rexpConfig()
	cfg.BRKind = hull.KindUpdateMinimum
	runOracleWorkload(t, cfg, 105, 3000)
}

func TestOracleRexpOptimal(t *testing.T) {
	cfg := rexpConfig()
	cfg.BRKind = hull.KindOptimal
	runOracleWorkload(t, cfg, 106, 2000)
}

func TestOracleRexpConservative(t *testing.T) {
	cfg := rexpConfig()
	cfg.BRKind = hull.KindConservative
	runOracleWorkload(t, cfg, 107, 3000)
}

func TestOracleTPR(t *testing.T) {
	runOracleWorkload(t, tprConfig(), 108, 4000)
}

func TestOracleNoReinsert(t *testing.T) {
	cfg := rexpConfig()
	cfg.ReinsertFrac = -1 // disable forced reinsertion (ablation knob)
	runOracleWorkload(t, cfg, 109, 3000)
}

func TestOracleOverlapHeuristic(t *testing.T) {
	cfg := rexpConfig()
	cfg.UseOverlapHeuristic = true
	runOracleWorkload(t, cfg, 110, 3000)
}

func TestOracleNoAutoTune(t *testing.T) {
	cfg := rexpConfig()
	cfg.DisableAutoTune = true
	cfg.InitialUI = 10
	tr := newTestTree(t, cfg)
	for i := 0; i < 2*tr.LeafCapacity(); i++ {
		p := geom.MovingPoint{Pos: geom.Vec{float64(i % 100 * 10), 500}, TExp: geom.Inf()}
		if err := tr.Insert(uint32(i), p, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.UI() != 10 {
		t.Errorf("UI = %v with auto-tune disabled, want InitialUI 10", tr.UI())
	}
}

func TestOracle1D(t *testing.T) {
	cfg := rexpConfig()
	cfg.Dims = 1
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(61))
	oracle := map[uint32]geom.MovingPoint{}
	now := 0.0
	for i := 0; i < 1500; i++ {
		now += 0.05
		p := geom.MovingPoint{Pos: geom.Vec{rng.Float64() * 1000}, Vel: geom.Vec{rng.Float64()*6 - 3}, TExp: now + rng.Float64()*50}
		tr.Insert(uint32(i), p, now)
		oracle[uint32(i)] = quantize(p, 1)
	}
	q := geom.Window(geom.Rect{Lo: geom.Vec{200}, Hi: geom.Vec{400}}, now, now+10)
	got, err := tr.Search(q, now)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range oracle {
		if p.TExp >= now && q.MatchesPoint(p, 1, true) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("1-D query: got %d, want %d", len(got), want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
