// Package core implements the unified tree engine behind the
// R^exp-tree and the TPR-tree: an R*-tree over disk pages whose
// entries are augmented with velocity vectors and expiration times.
//
// The engine is configured by Config.  With ExpireAware unset and
// conservative bounding rectangles it is exactly the TPR-tree of
// Šaltenis et al. (SIGMOD 2000); with ExpireAware set it becomes the
// R^exp-tree of the reproduced paper, adding:
//
//   - expiration times in leaf entries (and optionally in internal
//     entries), exploited both by queries and by the bounding-rectangle
//     computations of package hull;
//   - lazy removal of expired entries folded into the insertion and
//     deletion algorithms (CondenseTree / PropagateUp, paper §4.3);
//   - self-tuning of the time horizon H = UI + W from the observed
//     update rate (paper §4.2.3).
package core

import (
	"fmt"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/obs"
)

// Config selects the variant of the tree engine.
type Config struct {
	// Dims is the dimensionality of the indexed space (1..3; the
	// paper's experiments use 2).
	Dims int

	// BRKind selects how bounding rectangles of internal entries are
	// computed.  The TPR-tree uses KindConservative; the R^exp-tree
	// performs best with KindNearOptimal (paper §5.3).
	BRKind hull.Kind

	// ExpireAware enables the R^exp-tree behaviour: queries disregard
	// expired entries and updates lazily purge them.  When false, the
	// engine is a plain TPR-tree and expiration times are ignored.
	ExpireAware bool

	// StoreBRExp records expiration times in internal entries.  When
	// false, internal entries are smaller and queries fall back to the
	// derived expiration time of shrinking rectangles (§4.1.1).  Leaf
	// entries always record their expiration time.
	StoreBRExp bool

	// AlgsUseExp makes the insertion heuristics honor expiration
	// times by clamping the objective-function integrals at the
	// entries' expiration (Eq. 1).  When false, ChooseSubtree and
	// Split treat all entries as never expiring, which groups entries
	// more strictly by velocity (§4.2.2).
	AlgsUseExp bool

	// World is the extent of the data space, used to clamp static
	// bounding rectangles over never-expiring entries.
	World geom.Rect

	// BufferPages is the LRU buffer-pool capacity (default 50, as in
	// §5.1).
	BufferPages int

	// Beta relates the assumed querying-window length to the update
	// interval: W = Beta·UI (default 0.5, §4.2.3).
	Beta float64

	// FixedW, when positive, overrides the W = Beta·UI rule with a
	// constant querying-window length.
	FixedW float64

	// InitialUI seeds the update-interval estimate before enough
	// insertions have been observed to measure it (default 60).
	InitialUI float64

	// MinFill is the minimum node fill as a fraction of capacity
	// (default 0.4, the R*-tree recommendation).
	MinFill float64

	// ReinsertFrac is the fraction of entries removed by forced
	// reinsertion on node overflow (default 0.3, the R*-tree p = 30%).
	// A negative value disables forced reinsertion entirely (splits
	// happen immediately) — an ablation knob.
	ReinsertFrac float64

	// UseOverlapHeuristic makes ChooseSubtree use the R*-tree's
	// overlap-enlargement criterion (with time integrals) at the level
	// above the leaves.  The paper found it does not improve query
	// performance for the R^exp-tree and dropped it to keep
	// ChooseSubtree linear (§4.2.2); this knob exists to reproduce
	// that ablation.
	UseOverlapHeuristic bool

	// DisableAutoTune freezes the update-interval estimate at
	// InitialUI instead of tracking the insertion stream (§4.2.3) — an
	// ablation knob for the self-tuning mechanism.
	DisableAutoTune bool

	// Seed initializes the deterministic RNG used for the random
	// dimension order of near-optimal bounding rectangles.
	Seed int64

	// DeferFlush puts the engine into write-ahead-logged buffering:
	// operations do not flush the pool (finishOp is a no-op) and the
	// pool never steals dirty frames, so the store only changes at an
	// explicit checkpoint (FlushPool) and stays replayable from the
	// last checkpoint until then.
	DeferFlush bool

	// Metrics, when non-nil, attaches the observability registry of
	// internal/obs: the engine counts buffer traffic, ChooseSubtree
	// descents, node visits, splits, forced reinserts, condensing and
	// lazy purges, and emits structural events to Metrics.Observer.
	// When nil the engine runs uninstrumented (the nil fast path).
	Metrics *obs.Metrics
}

// DefaultWorld is the 1000 km x 1000 km space of the experiments.
var DefaultWorld = geom.Rect{Lo: geom.Vec{0, 0, 0}, Hi: geom.Vec{1000, 1000, 1000}}

// withDefaults returns cfg with unset fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 50
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.5
	}
	if cfg.InitialUI == 0 {
		cfg.InitialUI = 60
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = 0.4
	}
	if cfg.ReinsertFrac == 0 {
		cfg.ReinsertFrac = 0.3
	}
	if cfg.World == (geom.Rect{}) {
		cfg.World = DefaultWorld
	}
	return cfg
}

// validate rejects configurations the engine cannot honor.
func (cfg Config) validate() error {
	if cfg.Dims < 1 || cfg.Dims > geom.MaxDims {
		return fmt.Errorf("core: Dims must be in [1, %d], got %d", geom.MaxDims, cfg.Dims)
	}
	if cfg.BRKind < hull.KindConservative || cfg.BRKind > hull.KindOptimal {
		return fmt.Errorf("core: unknown bounding-rectangle kind %d", cfg.BRKind)
	}
	if cfg.MinFill <= 0 || cfg.MinFill > 0.5 {
		return fmt.Errorf("core: MinFill must be in (0, 0.5], got %v", cfg.MinFill)
	}
	if cfg.ReinsertFrac > 0.5 {
		return fmt.Errorf("core: ReinsertFrac must not exceed 0.5, got %v", cfg.ReinsertFrac)
	}
	if cfg.Beta <= 0 {
		return fmt.Errorf("core: Beta must be positive, got %v", cfg.Beta)
	}
	if !cfg.ExpireAware && cfg.StoreBRExp {
		return fmt.Errorf("core: StoreBRExp requires ExpireAware")
	}
	if !cfg.ExpireAware && cfg.BRKind == hull.KindStatic {
		return fmt.Errorf("core: static bounding rectangles require ExpireAware (they rely on expiration times)")
	}
	return nil
}
