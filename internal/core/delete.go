package core

import (
	"rexptree/internal/storage"

	"rexptree/internal/geom"
)

// Delete removes the stored record of object oid.  p must be the
// record previously inserted (the index routes the search for the leaf
// through bounding rectangles containing p's current position).  It
// returns false when no live matching entry exists — in particular
// when the entry has already expired, in which case the operation
// fails exactly as described in §4.3.
func (t *Tree) Delete(oid uint32, p geom.MovingPoint, now float64) (bool, error) {
	t.advance(now)
	p = t.prepare(p)
	path, idx, err := t.findLeaf(t.root, oid, p.At(t.Now()))
	if err != nil {
		return false, err
	}
	if path == nil {
		t.publishOp() // no-op unless a future findLeaf variant mutates
		return false, t.finishOp()
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.leafEntries--
	t.reinsertedAt = make(map[int]bool)
	var orphans []orphan
	if err := t.propagateUp(path, &orphans); err != nil {
		return true, err
	}
	if err := t.drainOrphans(&orphans); err != nil {
		return true, err
	}
	if err := t.shrinkRoot(); err != nil {
		return true, err
	}
	t.publishOp()
	return true, t.finishOp()
}

// findLeaf performs the regular R-tree leaf search: depth-first down
// every live subtree whose bounding rectangle contains the object's
// current position, returning the loaded path and the entry index.
// Expired entries are invisible (§4.3).
func (t *Tree) findLeaf(id storage.PageID, oid uint32, target geom.Vec) ([]*node, int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, err
	}
	if n.level == 0 {
		for i := range n.entries {
			e := &n.entries[i]
			if e.id == oid && !t.isExpired(&e.rect, 0) {
				return []*node{n}, i, nil
			}
		}
		return nil, 0, nil
	}
	for i := range n.entries {
		e := &n.entries[i]
		if t.isExpired(&e.rect, n.level) {
			continue
		}
		if !containsEps(e.rect.At(t.Now()), target, t.cfg.Dims) {
			continue
		}
		sub, idx, err := t.findLeaf(e.child(), oid, target)
		if err != nil {
			return nil, 0, err
		}
		if sub != nil {
			return append([]*node{n}, sub...), idx, nil
		}
	}
	return nil, 0, nil
}

// containsEps is point containment with a small relative tolerance
// that absorbs the round-off of evaluating float32 page coordinates at
// the current time.
func containsEps(r geom.Rect, p geom.Vec, dims int) bool {
	for i := 0; i < dims; i++ {
		eps := 1e-9 * (1 + abs(p[i]) + abs(r.Lo[i]) + abs(r.Hi[i]))
		if p[i] < r.Lo[i]-eps || p[i] > r.Hi[i]+eps {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
