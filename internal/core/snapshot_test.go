package core

import (
	"math"
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// checkSnapEquivalence runs a query through both read paths on a
// quiesced tree and requires element-wise identical results: the
// snapshot traversal mirrors the locked one's descent order, so even
// the ordering must agree.
func checkSnapEquivalence(t *testing.T, tr *Tree, q geom.Query, now float64) {
	t.Helper()
	locked, err := tr.Search(q, now)
	if err != nil {
		t.Fatalf("locked search: %v", err)
	}
	snap, err := tr.SearchSnap(q, now)
	if err != nil {
		t.Fatalf("snapshot search: %v", err)
	}
	if len(locked) != len(snap) {
		t.Fatalf("snapshot returned %d results, locked path %d", len(snap), len(locked))
	}
	for i := range locked {
		if locked[i] != snap[i] {
			t.Fatalf("result %d differs: locked %+v, snapshot %+v", i, locked[i], snap[i])
		}
	}
}

func checkNearestEquivalence(t *testing.T, tr *Tree, pos geom.Vec, at float64, k int, now float64) {
	t.Helper()
	locked, err := tr.Nearest(pos, at, k, now)
	if err != nil {
		t.Fatalf("locked nearest: %v", err)
	}
	snap, err := tr.NearestSnap(pos, at, k, now)
	if err != nil {
		t.Fatalf("snapshot nearest: %v", err)
	}
	if len(locked) != len(snap) {
		t.Fatalf("snapshot nearest returned %d results, locked path %d", len(snap), len(locked))
	}
	for i := range locked {
		if locked[i] != snap[i] {
			t.Fatalf("nearest result %d differs: locked %+v, snapshot %+v", i, locked[i], snap[i])
		}
	}
}

// TestSnapshotEquivalence is the property test of the snapshot read
// path: after every burst of random mutations (inserts, deletes, clock
// advances that trigger lazy purging), all four query types must
// return element-wise identical results through SearchSnap/NearestSnap
// and through the legacy in-place traversal.
func TestSnapshotEquivalence(t *testing.T) {
	for name, cfg := range map[string]Config{"rexp": rexpConfig(), "tpr": tprConfig()} {
		t.Run(name, func(t *testing.T) {
			tr := newTestTree(t, cfg)
			rng := rand.New(rand.NewSource(42))
			live := make(map[uint32]geom.MovingPoint)
			now := 0.0
			for round := 0; round < 30; round++ {
				for op := 0; op < 60; op++ {
					id := uint32(rng.Intn(400))
					if old, ok := live[id]; ok {
						removed, err := tr.Delete(id, old, now)
						if err != nil {
							t.Fatal(err)
						}
						delete(live, id)
						if removed && rng.Intn(4) == 0 {
							continue // plain delete, no reinsert
						}
					}
					p := geom.MovingPoint{
						Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
						Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
						TExp: now + rng.Float64()*50,
					}
					if rng.Intn(8) == 0 {
						p.TExp = math.Inf(1)
					}
					if err := tr.Insert(id, p, now); err != nil {
						t.Fatal(err)
					}
					live[id] = tr.Stored(p)
				}
				now += rng.Float64() * 5 // expires some reports

				for q := 0; q < 8; q++ {
					lo := geom.Vec{rng.Float64() * 900, rng.Float64() * 900}
					r := geom.Rect{Lo: lo, Hi: geom.Vec{lo[0] + 120, lo[1] + 120}}
					r2 := geom.Rect{Lo: geom.Vec{lo[0] + 60, lo[1] + 60},
						Hi: geom.Vec{lo[0] + 180, lo[1] + 180}}
					checkSnapEquivalence(t, tr, geom.Timeslice(r, now+rng.Float64()*10), now)
					checkSnapEquivalence(t, tr, geom.Window(r, now, now+10), now)
					checkSnapEquivalence(t, tr, geom.Moving(r, r2, now, now+10, cfg.Dims), now)
					checkNearestEquivalence(t, tr, lo, now+1, 1+rng.Intn(10), now)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotBatchAtomicity checks the batch publication protocol:
// between BeginBatch and EndBatch the snapshot path keeps serving the
// pre-batch tree, so a reader can never observe the delete-without-
// reinsert gap in the middle of an update.
func TestSnapshotBatchAtomicity(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	p := geom.MovingPoint{Pos: geom.Vec{500, 500}, TExp: math.Inf(1)}
	if err := tr.Insert(7, p, 0); err != nil {
		t.Fatal(err)
	}
	stored := tr.Stored(p)
	all := geom.Timeslice(geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}, 0)

	tr.BeginBatch()
	if _, err := tr.Delete(7, stored, 0); err != nil {
		t.Fatal(err)
	}
	mid, err := tr.SearchSnap(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 1 || mid[0].OID != 7 {
		t.Fatalf("mid-batch snapshot = %v, want the pre-batch object", mid)
	}
	p2 := geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: math.Inf(1)}
	if err := tr.Insert(7, p2, 0); err != nil {
		t.Fatal(err)
	}
	tr.EndBatch()

	after, err := tr.SearchSnap(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0].OID != 7 || after[0].Point.Pos != p2.Pos {
		t.Fatalf("post-batch snapshot = %v, want the moved object", after)
	}
}

// TestSnapshotAfterReopen checks that Open republishes a snapshot for
// the reloaded tree, so the lock-free path works before any mutation.
func TestSnapshotAfterReopen(t *testing.T) {
	store := storage.NewMemStore()
	cfg := rexpConfig()
	tr, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
			TExp: math.Inf(1),
		}
		if err := tr.Insert(uint32(i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if re.SnapshotSeq() == 0 {
		t.Fatal("reopened tree has no published snapshot")
	}
	checkSnapEquivalence(t, re, geom.Window(geom.Rect{Lo: geom.Vec{200, 200}, Hi: geom.Vec{700, 700}}, 0, 10), 0)
	var st TravStats
	if _, err := re.SearchSnapStats(geom.Timeslice(geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}, 0), 0, &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapMisses != 0 {
		t.Errorf("reopened tree fell back through the pool %d times; installSnapshots missed pages", st.SnapMisses)
	}
}

// TestSearchFuncSnapAllocs pins the zero-allocation contract of the
// snapshot query hot path, mirroring TestSearchFuncAllocs: with a warm
// version table and a streaming callback, a window search must not
// allocate beyond the pooled traversal stack.
func TestSearchFuncSnapAllocs(t *testing.T) {
	tr := buildQueryTree(t, 2000)
	found := 0
	fn := func(Result) bool { found++; return true }
	if err := tr.SearchFuncSnap(windowQuery, 0, fn); err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("warmup query matched nothing; the workload is broken")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := tr.SearchFuncSnap(windowQuery, 0, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("SearchFuncSnap allocates %.1f objects per query, want <= 2", allocs)
	}
}

func BenchmarkWindowSearchFuncSnap(b *testing.B) {
	tr := buildQueryTree(b, 2000)
	fn := func(Result) bool { return true }
	if err := tr.SearchFuncSnap(windowQuery, 0, fn); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.SearchFuncSnap(windowQuery, 0, fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestSnapWarm(b *testing.B) {
	tr := buildQueryTree(b, 2000)
	if _, err := tr.NearestSnap(geom.Vec{500, 500}, 0, 10, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.NearestSnap(geom.Vec{500, 500}, 0, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}
