package core

import (
	"math"
	"sort"

	"rexptree/internal/geom"
	"rexptree/internal/obs"
)

// split divides the overfull node n with the R*-tree topological split
// adapted to moving entries: the objective functions (margin, overlap,
// area) are replaced by their time integrals (Eq. 1), and the sort
// axes include the velocity dimensions as in the TPR-tree, so entries
// can be partitioned by velocity as well as by position.  One group
// stays in n; the other is returned as a freshly allocated sibling.
// Both nodes are written.
func (t *Tree) split(n *node) (*node, error) {
	g1, g2 := t.chooseSplit(n.entries, n.level)
	n.entries = g1
	sib, err := t.allocNode(n.level)
	if err != nil {
		return nil, err
	}
	sib.entries = g2
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(sib); err != nil {
		return nil, err
	}
	if t.met != nil {
		t.met.Splits.Inc()
		t.met.Emit(obs.Event{Kind: obs.EvSplit, Level: n.level, N: len(g2)})
	}
	return sib, nil
}

// splitKey extracts one of the four per-dimension sort keys evaluated
// at the current time: lower/upper bound position and lower/upper
// bound velocity.
func (t *Tree) splitKey(r geom.TPRect, dim, key int) float64 {
	switch key {
	case 0:
		return r.Lo[dim] + r.VLo[dim]*t.Now()
	case 1:
		return r.Hi[dim] + r.VHi[dim]*t.Now()
	case 2:
		return r.VLo[dim]
	default:
		return r.VHi[dim]
	}
}

func (t *Tree) chooseSplit(entries []entry, level int) (g1, g2 []entry) {
	total := len(entries)
	minFill := t.lay.min(level)
	if minFill < 1 {
		minFill = 1
	}
	// Decision rectangles: expiration honored only when AlgsUseExp.
	dr := make([]geom.TPRect, total)
	allExp := math.Inf(-1)
	for i, e := range entries {
		dr[i] = e.rect
		dr[i].TExp = t.decisionExp(e.rect, level)
		allExp = math.Max(allExp, dr[i].TExp)
	}
	end := t.metricEnd(allExp)

	order := make([]int, total)
	prefix := make([]geom.TPRect, total+1)
	suffix := make([]geom.TPRect, total+1)

	// computeBounds fills prefix[k] = union of the first k entries in
	// the current order and suffix[k] = union of the rest.
	computeBounds := func() {
		prefix[1] = dr[order[0]]
		for k := 2; k <= total; k++ {
			prefix[k] = geom.UnionConservative(prefix[k-1], dr[order[k-1]], t.Now(), t.cfg.Dims)
		}
		suffix[total-1] = dr[order[total-1]]
		for k := total - 2; k >= minFill; k-- {
			suffix[k] = geom.UnionConservative(suffix[k+1], dr[order[k]], t.Now(), t.cfg.Dims)
		}
	}

	bestAxisMargin := math.Inf(1)
	var bestOrder []int
	for dim := 0; dim < t.cfg.Dims; dim++ {
		for key := 0; key < 4; key++ {
			for i := range order {
				order[i] = i
			}
			d, k := dim, key
			sort.Slice(order, func(a, b int) bool {
				return t.splitKey(dr[order[a]], d, k) < t.splitKey(dr[order[b]], d, k)
			})
			computeBounds()
			var margin float64
			for k := minFill; k <= total-minFill; k++ {
				margin += geom.MarginIntegral(prefix[k], t.Now(), end, t.cfg.Dims)
				margin += geom.MarginIntegral(suffix[k], t.Now(), end, t.cfg.Dims)
			}
			if margin < bestAxisMargin {
				bestAxisMargin = margin
				bestOrder = append(bestOrder[:0], order...)
			}
		}
	}

	// Along the chosen axis, pick the distribution with minimal overlap
	// integral, ties broken by minimal total area integral.
	copy(order, bestOrder)
	computeBounds()
	bestK := -1
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for k := minFill; k <= total-minFill; k++ {
		ov := geom.OverlapIntegral(prefix[k], suffix[k], t.Now(), end, t.cfg.Dims)
		ar := geom.AreaIntegral(prefix[k], t.Now(), end, t.cfg.Dims) +
			geom.AreaIntegral(suffix[k], t.Now(), end, t.cfg.Dims)
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, ar
		}
	}

	g1 = make([]entry, 0, bestK)
	g2 = make([]entry, 0, total-bestK)
	for i, idx := range bestOrder {
		if i < bestK {
			g1 = append(g1, entries[idx])
		} else {
			g2 = append(g2, entries[idx])
		}
	}
	return g1, g2
}
