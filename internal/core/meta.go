package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

// The tree persists its volatile state (root page, height, clock,
// self-tuning counters) in a metadata page, by convention page 0 of
// its store.  A cleanly Synced file-backed tree can be reopened with
// Open.

const (
	metaMagic   = 0x52455854 // "REXT"
	metaVersion = 1
	metaPage    = storage.PageID(0)
)

type metaFlags uint8

const (
	metaExpireAware metaFlags = 1 << iota
	metaStoreBRExp
)

// initMeta allocates the metadata page of a fresh tree.  It must be
// the first allocation so that the page lands at the conventional id.
func (t *Tree) initMeta() error {
	id, _, err := t.bp.Allocate()
	if err != nil {
		return err
	}
	if id != metaPage {
		return fmt.Errorf("core: store is not empty (meta page would be %d); use Open to load an existing tree", id)
	}
	return nil
}

// Sync writes the tree's metadata and flushes all dirty pages, making
// the underlying store self-contained.
func (t *Tree) Sync() error {
	if err := t.StageMeta(); err != nil {
		return err
	}
	return t.bp.Flush()
}

// StageMeta encodes the tree's metadata into its buffered page and
// marks it dirty without flushing the pool.  The checkpoint protocol
// uses it so the metadata is part of the dirty-page image set instead
// of a separate write.
func (t *Tree) StageMeta() error {
	buf, err := t.bp.Get(metaPage)
	if err != nil {
		return err
	}
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], metaVersion)
	buf[8] = byte(t.cfg.Dims)
	buf[9] = byte(t.cfg.BRKind)
	var flags metaFlags
	if t.cfg.ExpireAware {
		flags |= metaExpireAware
	}
	if t.cfg.StoreBRExp {
		flags |= metaStoreBRExp
	}
	buf[10] = byte(flags)
	buf[11] = byte(len(t.nodesPerLevel))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.root))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[20:], uint64(t.leafEntries))
	binary.LittleEndian.PutUint64(buf[28:], math.Float64bits(t.Now()))
	binary.LittleEndian.PutUint64(buf[36:], math.Float64bits(t.ui))
	binary.LittleEndian.PutUint64(buf[44:], math.Float64bits(t.timerStart))
	binary.LittleEndian.PutUint32(buf[52:], uint32(t.insSinceTimer))
	off := 56
	for _, n := range t.nodesPerLevel {
		binary.LittleEndian.PutUint32(buf[off:], uint32(n))
		off += 4
	}
	return t.bp.MarkDirty(metaPage)
}

// FlushPool writes every dirty buffered page to the store.
func (t *Tree) FlushPool() error { return t.bp.Flush() }

// DirtyPages calls fn for each dirty buffered page in ascending page
// order (see storage.BufferPool.DirtyPages).
func (t *Tree) DirtyPages(fn func(storage.PageID, []byte) error) error {
	return t.bp.DirtyPages(fn)
}

// PoolOverflow returns how many buffered pages exceed the pool's
// capacity (non-zero only under the no-steal policy of DeferFlush).
func (t *Tree) PoolOverflow() int { return t.bp.Overflow() }

// LivePages returns the set of pages reachable from the tree: the
// metadata page plus every node.  Walking decodes (and therefore
// checksum-verifies) each page.  Recovery uses the set to rebuild the
// free list of an uncleanly closed store.
func (t *Tree) LivePages() (map[storage.PageID]bool, error) {
	live := map[storage.PageID]bool{metaPage: true}
	err := t.walk(t.root, func(n *node) error {
		live[n.id] = true
		return nil
	})
	return live, err
}

// Open loads a tree previously built over store and Synced.  cfg must
// match the layout-affecting options the tree was created with.
func Open(cfg Config, store storage.Store) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := newTreeShell(cfg, store)
	buf, err := t.bp.Get(metaPage)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return nil, fmt.Errorf("core: store has no tree metadata (not Synced?)")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != metaVersion {
		return nil, fmt.Errorf("core: unsupported metadata version %d", v)
	}
	if int(buf[8]) != cfg.Dims {
		return nil, fmt.Errorf("core: tree has %d dimensions, config says %d", buf[8], cfg.Dims)
	}
	if hull.Kind(buf[9]) != cfg.BRKind {
		return nil, fmt.Errorf("core: tree was built with %v bounding rectangles, config says %v",
			hull.Kind(buf[9]), cfg.BRKind)
	}
	flags := metaFlags(buf[10])
	if (flags&metaExpireAware != 0) != cfg.ExpireAware {
		return nil, fmt.Errorf("core: ExpireAware mismatch with stored tree")
	}
	if (flags&metaStoreBRExp != 0) != cfg.StoreBRExp {
		return nil, fmt.Errorf("core: StoreBRExp mismatch with stored tree")
	}
	levels := int(buf[11])
	t.root = storage.PageID(binary.LittleEndian.Uint32(buf[12:]))
	t.height = int(binary.LittleEndian.Uint32(buf[16:]))
	t.leafEntries = int(binary.LittleEndian.Uint64(buf[20:]))
	t.clk.Store(math.Float64frombits(binary.LittleEndian.Uint64(buf[28:])))
	t.ui = math.Float64frombits(binary.LittleEndian.Uint64(buf[36:]))
	t.timerStart = math.Float64frombits(binary.LittleEndian.Uint64(buf[44:]))
	t.insSinceTimer = int(binary.LittleEndian.Uint32(buf[52:]))
	off := 56
	t.nodesPerLevel = make([]int, levels)
	for i := range t.nodesPerLevel {
		t.nodesPerLevel[i] = int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	if t.height < 1 || t.height > levels {
		return nil, fmt.Errorf("core: corrupt metadata: height %d with %d levels", t.height, levels)
	}
	if err := t.bp.Pin(t.root); err != nil {
		return nil, err
	}
	if err := t.installSnapshots(); err != nil {
		return nil, err
	}
	return t, nil
}

// MetaConfig reads the layout-affecting configuration (dimensions,
// bounding-rectangle kind, expiration flags) recorded in a store's
// metadata page, so a tool can open a tree file without knowing how it
// was created.  The remaining Config fields are left at their zero
// values for the caller (or withDefaults) to fill in.
func MetaConfig(store storage.Store) (Config, error) {
	var buf [storage.PageSize]byte
	if err := store.ReadPage(metaPage, buf[:]); err != nil {
		return Config{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return Config{}, fmt.Errorf("core: store has no tree metadata (not Synced?)")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != metaVersion {
		return Config{}, fmt.Errorf("core: unsupported metadata version %d", v)
	}
	flags := metaFlags(buf[10])
	return Config{
		Dims:        int(buf[8]),
		BRKind:      hull.Kind(buf[9]),
		ExpireAware: flags&metaExpireAware != 0,
		StoreBRExp:  flags&metaStoreBRExp != 0,
	}, nil
}

// Export visits every leaf entry exactly as stored — quantized
// position and velocity relative to epoch t=0, recorded expiration
// time — along with whether the entry is live at the tree's current
// clock.  Lazily-purged expired entries are reported with live=false
// so a full-index migration (the offline reshard) can carry the exact
// live set to a new index and drop the rest.
func (t *Tree) Export(fn func(oid uint32, p geom.MovingPoint, live bool) error) error {
	now := t.Now()
	return t.Records(func(oid uint32, p geom.MovingPoint) error {
		live := !t.cfg.ExpireAware || p.TExp >= now
		return fn(oid, p, live)
	})
}

// Records visits every leaf entry (including expired ones not yet
// purged), e.g. to rebuild an object table after reopening a tree.
func (t *Tree) Records(fn func(oid uint32, p geom.MovingPoint) error) error {
	return t.walk(t.root, func(n *node) error {
		if n.level != 0 {
			return nil
		}
		for i := range n.entries {
			if err := fn(n.entries[i].id, n.entries[i].point()); err != nil {
				return err
			}
		}
		return nil
	})
}
