package core

import (
	"math/rand"
	"sort"
	"testing"

	"rexptree/internal/geom"
)

func TestNearestBasic(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	pts := map[uint32]geom.MovingPoint{
		1: {Pos: geom.Vec{100, 100}, TExp: geom.Inf()},
		2: {Pos: geom.Vec{200, 100}, TExp: geom.Inf()},
		3: {Pos: geom.Vec{900, 900}, TExp: geom.Inf()},
	}
	for oid, p := range pts {
		if err := tr.Insert(oid, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tr.Nearest(geom.Vec{110, 100}, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].OID != 1 || res[1].OID != 2 {
		t.Fatalf("nearest = %v", res)
	}
}

func TestNearestUsesPredictedPositions(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	// Object 1 is nearest now, but object 2 is moving toward the query
	// point and will be nearest at t=50.
	tr.Insert(1, geom.MovingPoint{Pos: geom.Vec{450, 500}, TExp: geom.Inf()}, 0)
	tr.Insert(2, geom.MovingPoint{Pos: geom.Vec{100, 500}, Vel: geom.Vec{8, 0}, TExp: geom.Inf()}, 0)
	q := geom.Vec{500, 500}
	res, _ := tr.Nearest(q, 0, 1, 0)
	if len(res) != 1 || res[0].OID != 1 {
		t.Fatalf("nearest at t=0 = %v", res)
	}
	res, _ = tr.Nearest(q, 50, 1, 0)
	if len(res) != 1 || res[0].OID != 2 {
		t.Fatalf("nearest at t=50 = %v", res)
	}
}

func TestNearestSkipsExpired(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	tr.Insert(1, geom.MovingPoint{Pos: geom.Vec{500, 500}, TExp: 10}, 0)
	tr.Insert(2, geom.MovingPoint{Pos: geom.Vec{600, 600}, TExp: 100}, 0)
	// At query time 50, object 1's report has expired.
	res, err := tr.Nearest(geom.Vec{500, 500}, 50, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].OID != 2 {
		t.Fatalf("nearest = %v", res)
	}
}

func TestNearestValidation(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	if _, err := tr.Nearest(geom.Vec{0, 0}, 5, 1, 10); err == nil {
		t.Error("past query time accepted")
	}
	res, err := tr.Nearest(geom.Vec{0, 0}, 10, 0, 10)
	if err != nil || res != nil {
		t.Errorf("k=0: %v %v", res, err)
	}
}

func TestNearestAgainstBruteForce(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	rng := rand.New(rand.NewSource(81))
	oracle := map[uint32]geom.MovingPoint{}
	now := 0.0
	for i := 0; i < 3000; i++ {
		now += 0.01
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + rng.Float64()*100,
		}
		if err := tr.Insert(uint32(i), p, now); err != nil {
			t.Fatal(err)
		}
		oracle[uint32(i)] = tr.prepare(p)
	}
	for iter := 0; iter < 50; iter++ {
		q := geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000}
		at := now + rng.Float64()*20
		k := 1 + rng.Intn(10)
		got, err := tr.Nearest(q, at, k, now)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type cand struct {
			oid  uint32
			dist float64
		}
		var cands []cand
		for oid, p := range oracle {
			if p.TExp < at {
				continue
			}
			cands = append(cands, cand{oid, q.Dist(p.At(at), 2)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].oid < cands[j].oid
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		if len(got) != len(cands) {
			t.Fatalf("iter %d: got %d results, want %d", iter, len(got), len(cands))
		}
		for i := range got {
			gd := q.Dist(got[i].Point.At(at), 2)
			if gd > cands[i].dist*(1+1e-9)+1e-9 {
				t.Fatalf("iter %d: result %d at distance %v, optimal %v", iter, i, gd, cands[i].dist)
			}
			if i > 0 {
				prev := q.Dist(got[i-1].Point.At(at), 2)
				if gd < prev-1e-9 {
					t.Fatalf("iter %d: results not sorted by distance", iter)
				}
			}
		}
	}
}

func TestNearestMoreThanStored(t *testing.T) {
	tr := newTestTree(t, rexpConfig())
	tr.Insert(1, geom.MovingPoint{Pos: geom.Vec{1, 1}, TExp: geom.Inf()}, 0)
	res, err := tr.Nearest(geom.Vec{0, 0}, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results from a 1-entry tree", len(res))
	}
}
