package core

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
)

// TestMassExpiryCascade reproduces the paper's Figure 8 scenario at
// scale: a whole populated tree expires while the system receives no
// updates, and the next single insertion lazily purges expired
// subtrees (deallocating them wholesale), shrinks the tree, and leaves
// a small consistent index behind.
func TestMassExpiryCascade(t *testing.T) {
	cfg := rexpConfig() // StoreBRExp: internal entries know their expiry
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(55))
	const n = 3000
	for i := 0; i < n; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: 10 + rng.Float64()*5, // everything dead by t=15
		}
		if err := tr.Insert(uint32(i), p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d; need internal nodes for the cascade", tr.Height())
	}
	pagesBefore := tr.Size()

	// Long silence; then one newcomer arrives.
	if err := tr.Insert(99999, geom.MovingPoint{
		Pos: geom.Vec{500, 500}, TExp: 200,
	}, 100); err != nil {
		t.Fatal(err)
	}

	// The insertion's purge cascade must have discarded expired
	// subtrees along its path.  Remaining expired entries sit in
	// untouched siblings; flush them with a few more insertions.
	for i := 0; i < 30; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			TExp: 200,
		}
		if err := tr.Insert(uint32(100000+i), p, 101); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	live, expired, err := tr.EntryStats()
	if err != nil {
		t.Fatal(err)
	}
	if live != 31 {
		t.Errorf("live entries = %d, want 31", live)
	}
	if expired != 0 {
		t.Errorf("expired entries remain: %d", expired)
	}
	if tr.Size() >= pagesBefore/2 {
		t.Errorf("index barely shrank: %d -> %d pages", pagesBefore, tr.Size())
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d after cascade, want 1", tr.Height())
	}
	// The newcomer is queryable.
	res, err := tr.Search(geom.Timeslice(geom.Rect{Lo: geom.Vec{490, 490}, Hi: geom.Vec{510, 510}}, 101), 101)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.OID == 99999 {
			found = true
		}
	}
	if !found {
		t.Error("newcomer lost in the cascade")
	}
}

// TestMassExpiryWithoutStoredBRExp runs the same scenario when
// internal entries do not record expiration times: subtrees cannot be
// discarded wholesale, but underflow handling still drains dead leaves
// as they are touched, and queries never report expired objects.
func TestMassExpiryWithoutStoredBRExp(t *testing.T) {
	cfg := rexpConfig()
	cfg.StoreBRExp = false
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(56))
	for i := 0; i < 2000; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: 10 + rng.Float64()*5,
		}
		if err := tr.Insert(uint32(i), p, 1); err != nil {
			t.Fatal(err)
		}
	}
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	res, err := tr.Search(geom.Timeslice(world, 100), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expired objects visible: %d", len(res))
	}
	if err := tr.Insert(5000, geom.MovingPoint{Pos: geom.Vec{1, 1}, TExp: 200}, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCascadeAcrossBRKinds runs the mass-expiry insertion across all
// bounding-rectangle types to exercise the purge paths under each.
func TestCascadeAcrossBRKinds(t *testing.T) {
	for _, k := range []hull.Kind{hull.KindConservative, hull.KindStatic, hull.KindUpdateMinimum, hull.KindNearOptimal, hull.KindOptimal} {
		cfg := rexpConfig()
		cfg.BRKind = k
		tr := newTestTree(t, cfg)
		rng := rand.New(rand.NewSource(57))
		for i := 0; i < 1200; i++ {
			p := geom.MovingPoint{
				Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:  geom.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
				TExp: 5 + rng.Float64()*5,
			}
			if err := tr.Insert(uint32(i), p, 1); err != nil {
				t.Fatalf("%v: %v", k, err)
			}
		}
		if err := tr.Insert(9999, geom.MovingPoint{Pos: geom.Vec{2, 2}, TExp: 500}, 50); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}
