package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

// Node pages store float32 coordinates, as the fan-outs reported in
// the paper imply (170 leaf entries and 102 internal entries per 4 KiB
// page in two dimensions).  Bounding-rectangle coordinates are rounded
// outward on encoding so that float32 round-off can never break
// containment; data points are quantized to float32 on insertion so
// that the stored trajectory is exactly the one that was bounded.

// entry is one slot of a node: an object id plus its trajectory (leaf
// level), or a child page id plus its bounding rectangle.
type entry struct {
	id   uint32 // object id (leaf) or child PageID (internal)
	rect geom.TPRect
}

// child returns the entry's child page id (internal nodes only).
func (e entry) child() storage.PageID { return storage.PageID(e.id) }

// point returns the leaf entry's trajectory record.
func (e entry) point() geom.MovingPoint {
	return geom.MovingPoint{Pos: e.rect.Lo, Vel: e.rect.VLo, TExp: e.rect.TExp}
}

// node is the in-memory image of one tree page.
type node struct {
	id      storage.PageID
	level   int // 0 = leaf
	entries []entry
}

func (n *node) isLeaf() bool { return n.level == 0 }

// layout describes the on-page format implied by a Config.
type layout struct {
	dims       int
	static     bool // internal entries carry no velocities
	storeExp   bool // internal entries carry an expiration time
	leafHasExp bool // leaf entries carry an expiration time
	leafSize   int  // bytes per leaf entry
	innerSize  int  // bytes per internal entry
	leafCap    int  // max entries in a leaf
	innerCap   int  // max entries in an internal node
	leafMin    int  // min live entries in a non-root leaf
	innerMin   int  // min live entries in a non-root internal node
}

const nodeHeaderSize = 16

func newLayout(cfg Config) layout {
	l := layout{
		dims:       cfg.Dims,
		static:     cfg.BRKind == hull.KindStatic,
		storeExp:   cfg.StoreBRExp,
		leafHasExp: cfg.ExpireAware,
	}
	l.leafSize = 4 + 2*4*cfg.Dims // oid, pos, vel
	if l.leafHasExp {
		l.leafSize += 4 // texp
	}
	l.innerSize = 4 + 2*4*cfg.Dims // child, lo, hi
	if !l.static {
		l.innerSize += 2 * 4 * cfg.Dims // vlo, vhi
	}
	if l.storeExp {
		l.innerSize += 4
	}
	l.leafCap = (storage.PageSize - nodeHeaderSize) / l.leafSize
	l.innerCap = (storage.PageSize - nodeHeaderSize) / l.innerSize
	l.leafMin = int(float64(l.leafCap) * 0.4)
	l.innerMin = int(float64(l.innerCap) * 0.4)
	return l
}

func (l layout) cap(level int) int {
	if level == 0 {
		return l.leafCap
	}
	return l.innerCap
}

func (l layout) min(level int) int {
	if level == 0 {
		return l.leafMin
	}
	return l.innerMin
}

// f32Down converts x to the largest float32 not exceeding x.
func f32Down(x float64) float32 {
	f := float32(x)
	if float64(f) > x {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// f32Up converts x to the smallest float32 not below x.
func f32Up(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// quantize rounds a trajectory record to the float32 precision it will
// have on the page, so that in-memory state and page state agree
// exactly.
func quantize(p geom.MovingPoint, dims int) geom.MovingPoint {
	for i := 0; i < dims; i++ {
		p.Pos[i] = float64(float32(p.Pos[i]))
		p.Vel[i] = float64(float32(p.Vel[i]))
	}
	p.TExp = float64(float32(p.TExp))
	return p
}

func put32(buf []byte, off int, v float32) int {
	binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
	return off + 4
}

func get32(buf []byte, off int) (float64, int) {
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))), off + 4
}

// encode serializes n into a page buffer.
func (l layout) encode(n *node, buf []byte) {
	for i := range buf[:nodeHeaderSize] {
		buf[i] = 0
	}
	buf[0] = byte(n.level)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.entries)))
	off := nodeHeaderSize
	for k := range n.entries {
		e := &n.entries[k]
		binary.LittleEndian.PutUint32(buf[off:], e.id)
		off += 4
		if n.isLeaf() {
			for i := 0; i < l.dims; i++ {
				off = put32(buf, off, float32(e.rect.Lo[i]))
			}
			for i := 0; i < l.dims; i++ {
				off = put32(buf, off, float32(e.rect.VLo[i]))
			}
			if l.leafHasExp {
				off = put32(buf, off, float32(e.rect.TExp))
			}
			continue
		}
		for i := 0; i < l.dims; i++ {
			off = put32(buf, off, f32Down(e.rect.Lo[i]))
		}
		for i := 0; i < l.dims; i++ {
			off = put32(buf, off, f32Up(e.rect.Hi[i]))
		}
		if !l.static {
			for i := 0; i < l.dims; i++ {
				off = put32(buf, off, f32Down(e.rect.VLo[i]))
			}
			for i := 0; i < l.dims; i++ {
				off = put32(buf, off, f32Up(e.rect.VHi[i]))
			}
		}
		if l.storeExp {
			off = put32(buf, off, f32Up(e.rect.TExp))
		}
	}
}

// decode deserializes a page buffer into a node.
func (l layout) decode(id storage.PageID, buf []byte) (*node, error) {
	n := &node{id: id, level: int(buf[0])}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if max := l.cap(n.level); count > max {
		return nil, fmt.Errorf("core: page %d: corrupt entry count %d (cap %d)", id, count, max)
	}
	n.entries = make([]entry, count)
	off := nodeHeaderSize
	for k := 0; k < count; k++ {
		e := &n.entries[k]
		e.id = binary.LittleEndian.Uint32(buf[off:])
		off += 4
		if n.isLeaf() {
			for i := 0; i < l.dims; i++ {
				e.rect.Lo[i], off = get32(buf, off)
			}
			e.rect.Hi = e.rect.Lo
			for i := 0; i < l.dims; i++ {
				e.rect.VLo[i], off = get32(buf, off)
			}
			e.rect.VHi = e.rect.VLo
			if l.leafHasExp {
				e.rect.TExp, off = get32(buf, off)
			} else {
				e.rect.TExp = math.Inf(1)
			}
			continue
		}
		for i := 0; i < l.dims; i++ {
			e.rect.Lo[i], off = get32(buf, off)
		}
		for i := 0; i < l.dims; i++ {
			e.rect.Hi[i], off = get32(buf, off)
		}
		if !l.static {
			for i := 0; i < l.dims; i++ {
				e.rect.VLo[i], off = get32(buf, off)
			}
			for i := 0; i < l.dims; i++ {
				e.rect.VHi[i], off = get32(buf, off)
			}
		}
		if l.storeExp {
			e.rect.TExp, off = get32(buf, off)
		} else {
			e.rect.TExp = math.Inf(1)
		}
	}
	return n, nil
}
