package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"rexptree/internal/epoch"
	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
)

// Tree is the page-based index engine.  Mutating operations (Insert,
// Delete, bulk loading, Sync) require external exclusive locking; the
// read-only traversals (Search, Nearest, Records, the stats walks) may
// run concurrently with each other — the buffer pool, the decoded-node
// cache and the clock are internally synchronized — but never
// concurrently with a mutation.  The public rexptree package supplies
// that discipline with a reader/writer lock.
type Tree struct {
	cfg Config
	lay layout
	bp  *storage.BufferPool
	met *obs.Metrics // nil when uninstrumented

	root   storage.PageID
	height int // number of levels; the root is at level height-1
	clk    clock
	rng    *rand.Rand

	// cache holds the decoded image of pages.  Node rectangles are
	// rounded to page (float32) precision when computed, so a cached
	// node is always bit-identical to what decoding its page would
	// produce; the buffer pool is still consulted on every access so
	// that I/O is charged exactly as without the cache.  cacheMu makes
	// the map safe for the concurrent read-only traversals the public
	// tree's shared lock admits; two readers that race to decode the
	// same page store bit-identical nodes, so either insert may win.
	cacheMu sync.RWMutex
	cache   map[storage.PageID]*node

	// Self-tuning state (§4.2.3).
	leafEntries   int   // N: leaf entries physically stored
	nodesPerLevel []int // nodes per level, for per-level horizons
	insSinceTimer int
	timerStart    float64
	ui            float64 // 0 until the first estimate is available

	// Per-operation state.
	reinsertedAt map[int]bool

	// scratch is the reusable item buffer of computeBR.
	scratch []geom.TPRect

	// Snapshot read path state (see snapshot.go).  pub is the
	// atomically published root descriptor; chains the per-page version
	// table (a dense slice indexed by PageID, grown copy-on-write);
	// dom the epoch domain readers pin; staged the pages the current
	// mutation touched, keyed by page id (nil marks a free).  The
	// remaining fields are writer-private.
	pub    atomic.Pointer[pubState]
	chains atomic.Pointer[[]atomic.Pointer[chain]]
	dom    *epoch.Domain
	staged map[storage.PageID]*node

	batchDepth       int
	pendingPub       bool
	pubSeq           uint64
	pubCount         uint64
	lastPublishNanos int64
	sweepScratch     []*chain
}

// newTreeShell builds a Tree with its runtime machinery but no pages.
func newTreeShell(cfg Config, store storage.Store) *Tree {
	t := &Tree{
		cfg:    cfg,
		lay:    newLayout(cfg),
		bp:     storage.NewBufferPool(store, cfg.BufferPages),
		met:    cfg.Metrics,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		cache:  make(map[storage.PageID]*node),
		dom:    epoch.NewDomain(0),
		staged: make(map[storage.PageID]*node),
	}
	empty := make([]atomic.Pointer[chain], 0)
	t.chains.Store(&empty)
	if t.met != nil {
		t.bp.SetMetrics(t.met)
	}
	if cfg.DeferFlush {
		t.bp.SetNoSteal(true)
	}
	return t
}

// Metrics returns the attached instrument registry (nil when the tree
// is uninstrumented).
func (t *Tree) Metrics() *obs.Metrics { return t.met }

// SyncGauges pushes the tree's structural state (height, pages, leaf
// entries, buffered pages, UI and horizon estimates) into the metric
// gauges.  Call it before taking a snapshot; it is not needed on hot
// paths because gauges only matter at observation time.
func (t *Tree) SyncGauges() {
	if t.met == nil {
		return
	}
	t.met.Height.Set(int64(t.height))
	t.met.Pages.Set(int64(t.Size()))
	t.met.LeafEntries.Set(int64(t.leafEntries))
	t.met.BufResident.Set(int64(t.bp.Resident()))
	t.met.BufPoolPages.Set(int64(t.bp.Cap()))
	t.met.UI.Set(t.UI())
	t.met.Horizon.Set(t.metricH())
}

// BufferPoolPages returns the buffer pool's page capacity.
func (t *Tree) BufferPoolPages() int { return t.bp.Cap() }

// RootBR returns a conservative time-parameterized bound over every
// entry currently stored in the tree — the union of the root node's
// entry rectangles, which is valid for all t >= the tree's current
// time — and ok=false when the tree is empty.  It reads only the root
// page (pinned in the buffer pool, so no I/O is charged) and is the
// retightening source for the sharded front-end's per-shard summaries.
// Like the other read-only traversals it may run concurrently with
// queries but not with a mutation.
func (t *Tree) RootBR() (br geom.TPRect, ok bool, err error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return geom.TPRect{}, false, err
	}
	if len(n.entries) == 0 {
		return geom.TPRect{}, false, nil
	}
	now := t.Now()
	br = n.entries[0].rect
	for i := 1; i < len(n.entries); i++ {
		br = geom.UnionConservative(br, n.entries[i].rect, now, t.cfg.Dims)
	}
	br.TExp = math.Inf(1)
	return br, true, nil
}

// New creates an empty tree over the given (empty) store.  Use Open to
// load a store that already holds a Synced tree.
func New(cfg Config, store storage.Store) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := newTreeShell(cfg, store)
	if err := t.initMeta(); err != nil {
		return nil, err
	}
	root, err := t.allocNode(0)
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(root); err != nil {
		return nil, err
	}
	t.root = root.id
	t.height = 1
	if err := t.bp.Pin(t.root); err != nil {
		return nil, err
	}
	t.publishOp()
	return t, nil
}

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Now returns the latest time the tree has observed.  It is an
// atomic read, safe without any lock, so concurrent queries can check
// expiration while an update advances the clock.
func (t *Tree) Now() float64 { return t.clk.Load() }

// Height returns the number of tree levels.
func (t *Tree) Height() int { return t.height }

// LeafEntries returns the number of leaf entries physically stored
// (live plus not-yet-purged expired ones).
func (t *Tree) LeafEntries() int { return t.leafEntries }

// Size returns the number of allocated pages — the index-size metric
// of the experiments (Figure 15).
func (t *Tree) Size() int { return t.bp.Store().Len() }

// IOStats returns the accumulated buffer-pool I/O counters.
func (t *Tree) IOStats() storage.Stats { return t.bp.Stats() }

// ResetIOStats zeroes the I/O counters.
func (t *Tree) ResetIOStats() { t.bp.ResetStats() }

// LeafCapacity returns the number of entries in a full leaf node.
func (t *Tree) LeafCapacity() int { return t.lay.leafCap }

// InternalCapacity returns the number of entries in a full internal
// node.
func (t *Tree) InternalCapacity() int { return t.lay.innerCap }

// UI returns the current update-interval estimate (§4.2.3).
func (t *Tree) UI() float64 {
	if t.ui > 0 && !t.cfg.DisableAutoTune {
		return t.ui
	}
	return t.cfg.InitialUI
}

// W returns the assumed querying-window length.
func (t *Tree) W() float64 {
	if t.cfg.FixedW > 0 {
		return t.cfg.FixedW
	}
	return t.cfg.Beta * t.UI()
}

// metricH is the time horizon H = UI + W used by the insertion
// heuristics (§4.2.1).
func (t *Tree) metricH() float64 { return t.UI() + t.W() }

// brHorizon is the horizon used when computing the bounding rectangle
// of a node at the given level: the expected time until the rectangle
// is recomputed — UI scaled down by the number of leaf entries per
// node at this level — plus the querying window (§4.2.3).
func (t *Tree) brHorizon(level int) float64 {
	h := t.UI()
	if t.leafEntries > 0 && level < len(t.nodesPerLevel) && t.nodesPerLevel[level] > 0 {
		h *= float64(t.nodesPerLevel[level]) / float64(t.leafEntries)
	}
	return h + t.W()
}

// clock is the tree's monotonic time.  It is atomic so that query
// paths (which hold only a shared lock in the public tree) can read
// and advance it while racing with each other.
type clock struct{ bits atomic.Uint64 }

// Load returns the current time.
func (c *clock) Load() float64 { return math.Float64frombits(c.bits.Load()) }

// Store sets the clock unconditionally (used when loading persisted
// state).
func (c *clock) Store(v float64) { c.bits.Store(math.Float64bits(v)) }

// Advance moves the clock to v unless it is already later.
func (c *clock) Advance(v float64) {
	for {
		old := c.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// advance moves the tree clock forward (time never runs backwards).
func (t *Tree) advance(now float64) { t.clk.Advance(now) }

// tickUI counts one insertion toward the update-interval estimate and
// refreshes the estimate every leaf-capacity insertions (§4.2.3).
func (t *Tree) tickUI() {
	t.insSinceTimer++
	b := t.lay.leafCap
	if t.insSinceTimer < b {
		return
	}
	if dt := t.Now() - t.timerStart; dt > 0 && t.leafEntries > 0 {
		t.ui = dt / float64(b) * float64(t.leafEntries)
	}
	t.timerStart = t.Now()
	t.insSinceTimer = 0
}

// prepare quantizes an incoming trajectory record to page precision
// and, when static bounding rectangles are in use, replaces an
// infinite expiration time by the trivial upper bound derived from the
// finite world extent (§2.1): a zero-velocity rectangle cannot bound a
// moving trajectory forever, but beyond its world-exit time the
// trajectory cannot match any in-world query.
func (t *Tree) prepare(p geom.MovingPoint) geom.MovingPoint {
	p = quantize(p, t.cfg.Dims)
	if !t.cfg.ExpireAware {
		// The page format of a plain TPR-tree has no expiration field.
		p.TExp = math.Inf(1)
	}
	if t.cfg.BRKind == hull.KindStatic && t.cfg.ExpireAware && !geom.IsFinite(p.TExp) {
		if exit := geom.ExitTime(p, t.cfg.World, t.Now(), t.cfg.Dims); geom.IsFinite(exit) {
			p.TExp = float64(f32Up(exit))
		}
	}
	return p
}

// Stored returns the record exactly as the tree stores it: quantized
// to page precision, with any derived expiration bound applied.
// Callers that later delete the record should pass this form.
func (t *Tree) Stored(p geom.MovingPoint) geom.MovingPoint { return t.prepare(p) }

// effExp returns the expiration time of an entry as the engine's
// algorithms see it: the recorded time for leaf entries (and for
// internal entries when StoreBRExp is set), the derived expiration of
// shrinking rectangles otherwise, and +Inf when the engine is not
// expiration-aware.
func (t *Tree) effExp(r geom.TPRect, level int) float64 {
	if !t.cfg.ExpireAware {
		return math.Inf(1)
	}
	if level == 0 || t.cfg.StoreBRExp {
		return r.TExp
	}
	return geom.DerivedExp(r, t.Now(), t.cfg.Dims)
}

// isExpired reports whether the entry (stored at the given node level)
// is dead at the tree's current time.
func (t *Tree) isExpired(r *geom.TPRect, level int) bool {
	if !t.cfg.ExpireAware {
		return false
	}
	if level == 0 || t.cfg.StoreBRExp {
		return r.TExp < t.Now()
	}
	return geom.DerivedExp(*r, t.Now(), t.cfg.Dims) < t.Now()
}

// decisionExp returns the expiration time the insertion heuristics use
// for an entry (Eq. 1): the effective expiration when AlgsUseExp is
// set, +Inf otherwise (§4.2.2).
func (t *Tree) decisionExp(r geom.TPRect, level int) float64 {
	if !t.cfg.AlgsUseExp {
		return math.Inf(1)
	}
	return t.effExp(r, level)
}

// metricEnd returns the upper integration bound now+min(H, texp-now)
// of Eq. 1, given the expiration times of the rectangles involved.
func (t *Tree) metricEnd(texps ...float64) float64 {
	end := t.Now() + t.metricH()
	m := math.Inf(-1)
	for _, e := range texps {
		m = math.Max(m, e)
	}
	if m < end {
		end = m
	}
	if end < t.Now() {
		end = t.Now()
	}
	return end
}

// computeBR computes the bounding rectangle of a node's entries with
// the configured bounding-rectangle type.
func (t *Tree) computeBR(n *node) geom.TPRect {
	if cap(t.scratch) < len(n.entries) {
		t.scratch = make([]geom.TPRect, 0, max(len(n.entries), t.lay.leafCap+1))
	}
	items := t.scratch[:len(n.entries)]
	for i := range n.entries {
		items[i] = n.entries[i].rect
		items[i].TExp = t.effExp(n.entries[i].rect, n.level)
	}
	var order []int
	if t.cfg.BRKind == hull.KindNearOptimal {
		order = t.rng.Perm(t.cfg.Dims)
	}
	br := hull.Compute(t.cfg.BRKind, items, t.Now(), t.brHorizon(n.level), t.cfg.Dims, t.cfg.World, order)
	if !t.cfg.StoreBRExp {
		br.TExp = math.Inf(1)
	}
	return t.roundBR(br)
}

// roundBR rounds a bounding rectangle outward to the float32 precision
// of the page format, so in-memory rectangles are identical to their
// decoded page image and outer bounds never tighten through round-off.
func (t *Tree) roundBR(r geom.TPRect) geom.TPRect {
	for i := 0; i < t.cfg.Dims; i++ {
		r.Lo[i] = float64(f32Down(r.Lo[i]))
		r.Hi[i] = float64(f32Up(r.Hi[i]))
		r.VLo[i] = float64(f32Down(r.VLo[i]))
		r.VHi[i] = float64(f32Up(r.VHi[i]))
	}
	if t.cfg.StoreBRExp {
		r.TExp = float64(f32Up(r.TExp))
	}
	return r
}

// readNode loads the node.  The buffer pool is consulted first so
// that misses are charged as reads; decoding is skipped when the
// node's image is cached.  The returned node is shared: a caller that
// mutates it must writeNode it before the operation ends (mutation
// requires the public tree's exclusive lock, which keeps concurrent
// readers out).
func (t *Tree) readNode(id storage.PageID) (*node, error) {
	return t.readNodeStats(id, nil)
}

// readNodeStats is readNode plus per-traversal page accounting: when
// st is non-nil, the buffer-pool hit or miss is tallied into it.  The
// pool is consulted first either way so buffered pages stay charged
// and LRU-ordered exactly as on the untraced path.
func (t *Tree) readNodeStats(id storage.PageID, st *TravStats) (*node, error) {
	var buf []byte
	var err error
	if st == nil {
		buf, err = t.bp.Get(id)
	} else {
		var hit bool
		buf, hit, err = t.bp.GetTracked(id)
		if err == nil {
			if hit {
				st.Hits++
			} else {
				st.Reads++
			}
		}
	}
	if err != nil {
		return nil, err
	}
	t.cacheMu.RLock()
	n, ok := t.cache[id]
	t.cacheMu.RUnlock()
	if ok {
		return n, nil
	}
	n, err = t.lay.decode(id, buf)
	if err != nil {
		return nil, err
	}
	t.cacheMu.Lock()
	t.cache[id] = n
	t.cacheMu.Unlock()
	return n, nil
}

// writeNode encodes the node into its buffered page and marks it
// dirty; the page reaches the store at the end of the operation or on
// eviction.
func (t *Tree) writeNode(n *node) error {
	if len(n.entries) > t.lay.cap(n.level) {
		return fmt.Errorf("core: node %d overflow: %d entries (cap %d)", n.id, len(n.entries), t.lay.cap(n.level))
	}
	buf, err := t.bp.Get(n.id)
	if err != nil {
		return err
	}
	t.lay.encode(n, buf)
	t.cacheMu.Lock()
	t.cache[n.id] = n
	t.cacheMu.Unlock()
	t.stageWrite(n)
	return t.bp.MarkDirty(n.id)
}

// allocNode creates an empty node at the given level.
func (t *Tree) allocNode(level int) (*node, error) {
	id, _, err := t.bp.Allocate()
	if err != nil {
		return nil, err
	}
	for len(t.nodesPerLevel) <= level {
		t.nodesPerLevel = append(t.nodesPerLevel, 0)
	}
	t.nodesPerLevel[level]++
	return &node{id: id, level: level}, nil
}

// freeNode releases the node's page.
func (t *Tree) freeNode(n *node) error {
	if n.level < len(t.nodesPerLevel) {
		t.nodesPerLevel[n.level]--
	}
	t.cacheMu.Lock()
	delete(t.cache, n.id)
	t.cacheMu.Unlock()
	t.stageFree(n.id)
	return t.bp.Free(n.id)
}

// freeSubtree deallocates the whole subtree rooted at the given page
// (paper §4.3: discarding an expired internal entry deallocates its
// subtree).  Reading the interior pages to find their children costs
// I/O, which is charged as usual.
func (t *Tree) freeSubtree(id storage.PageID, level int) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level == 0 {
		t.leafEntries -= len(n.entries)
		if t.met != nil {
			t.met.ExpiredPurged.Add(uint64(len(n.entries)))
		}
	} else {
		for _, e := range n.entries {
			if err := t.freeSubtree(e.child(), n.level-1); err != nil {
				return err
			}
		}
	}
	return t.freeNode(n)
}

// purgeNode drops the node's expired entries, deallocating expired
// subtrees.  It does nothing unless the engine is expiration-aware.
// The caller is responsible for writing the node afterwards and for
// handling a resulting underflow.
func (t *Tree) purgeNode(n *node) error {
	if !t.cfg.ExpireAware {
		return nil
	}
	keep := n.entries[:0]
	dropped, freed := 0, 0
	for i := range n.entries {
		e := &n.entries[i]
		if !t.isExpired(&e.rect, n.level) {
			keep = append(keep, *e)
			continue
		}
		dropped++
		if n.level == 0 {
			t.leafEntries--
		} else {
			freed++
			if err := t.freeSubtree(e.child(), n.level-1); err != nil {
				return err
			}
		}
	}
	n.entries = keep
	if t.met != nil && dropped > 0 {
		if n.level == 0 {
			t.met.ExpiredPurged.Add(uint64(dropped))
		}
		if freed > 0 {
			t.met.SubtreesFreed.Add(uint64(freed))
			t.met.Emit(obs.Event{Kind: obs.EvSubtreeFreed, Level: n.level, N: freed})
		}
		t.met.Emit(obs.Event{Kind: obs.EvPurge, Level: n.level, N: dropped})
	}
	return nil
}

// finishOp flushes dirty pages, implementing the paper's write-back
// policy: nodes modified during an operation are written at its end.
// Under DeferFlush the write-ahead log carries durability and dirty
// pages stay buffered until the next checkpoint, so nothing is done.
func (t *Tree) finishOp() error {
	if t.cfg.DeferFlush {
		return nil
	}
	return t.bp.Flush()
}

// setRoot repins the buffer frame of the root page.
func (t *Tree) setRoot(id storage.PageID) error {
	if err := t.bp.Unpin(t.root); err != nil {
		return err
	}
	t.root = id
	return t.bp.Pin(id)
}
