package core

import (
	"fmt"
	"sync"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// Nearest returns the k objects whose predicted positions at time at
// are closest to q, in ascending distance order.  Only reports that
// are still valid at time at qualify (in expiration-aware mode); this
// extends the paper's query repertoire with the nearest-neighbor
// queries its future-work section anticipates for location-based
// services ("players close by").
//
// The search is the classic best-first R-tree NN traversal: a priority
// queue ordered by the minimum distance between q and the entry's
// bounding rectangle evaluated at time at.  A bounding rectangle is a
// valid bound at that instant because entries that expire before at
// are skipped.
func (t *Tree) Nearest(q geom.Vec, at float64, k int, now float64) ([]Result, error) {
	return t.NearestStats(q, at, k, now, nil)
}

// NearestStats is Nearest plus per-traversal accounting into st (which
// may be nil).  The traversal, result set and metric side effects are
// identical to Nearest.
func (t *Tree) NearestStats(q geom.Vec, at float64, k int, now float64, st *TravStats) ([]Result, error) {
	t.advance(now)
	if at < t.Now() {
		return nil, errNearestPast(at, t.Now())
	}
	if k <= 0 {
		return nil, nil
	}
	qp := nnQueuePool.Get().(*nnQueue)
	pq := (*qp)[:0]
	defer func() {
		*qp = pq[:0]
		nnQueuePool.Put(qp)
	}()
	pq = pq.push(nnItem{dist: 0, page: t.root, isNode: true})
	var out []Result
	var nodes, leaves uint64
	for len(pq) > 0 && len(out) < k {
		var it nnItem
		pq, it = pq.pop()
		if !it.isNode {
			out = append(out, Result{OID: it.oid, Point: it.point})
			continue
		}
		n, err := t.readNodeStats(it.page, st)
		if err != nil {
			t.addQueryStats(nodes, leaves, st)
			return nil, err
		}
		nodes++
		if n.level == 0 {
			leaves += uint64(len(n.entries))
		}
		for i := range n.entries {
			e := &n.entries[i]
			// Entries invalid at the query time cannot contribute.
			if t.cfg.ExpireAware && t.effExp(e.rect, n.level) < at {
				continue
			}
			if n.level == 0 {
				p := e.point()
				pq = pq.push(nnItem{
					dist:  q.Dist(p.At(at), t.cfg.Dims),
					oid:   e.id,
					point: p,
				})
				continue
			}
			pq = pq.push(nnItem{
				dist:   e.rect.At(at).MinDist(q, t.cfg.Dims),
				page:   e.child(),
				isNode: true,
			})
		}
	}
	t.addQueryStats(nodes, leaves, st)
	return out, nil
}

// errNearestPast is shared by the locked and snapshot nearest paths so
// both reject past query times with the identical error.
func errNearestPast(at, now float64) error {
	return fmt.Errorf("core: nearest query time %v precedes current time %v", at, now)
}

// nnQueuePool recycles priority queues across Nearest calls so the
// hot path allocates nothing once warm.
var nnQueuePool = sync.Pool{New: func() any {
	q := make(nnQueue, 0, 64)
	return &q
}}

type nnItem struct {
	dist   float64
	page   storage.PageID
	isNode bool
	oid    uint32
	point  geom.MovingPoint
}

// nnQueue is a binary min-heap ordered by dist.  The sift operations
// mirror container/heap exactly (so equal-distance items pop in the
// same order the stdlib heap would produce) while avoiding the
// interface boxing that heap.Push/heap.Pop allocate per item.
type nnQueue []nnItem

func (q nnQueue) push(x nnItem) nnQueue {
	q = append(q, x)
	// Sift up, as container/heap's up().
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2
		if q[j].dist >= q[i].dist {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

func (q nnQueue) pop() (nnQueue, nnItem) {
	// As container/heap's Pop: swap root to the end, sift down, trim.
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2
		}
		if q[j].dist >= q[i].dist {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	x := q[n]
	return q[:n], x
}
