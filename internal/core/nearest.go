package core

import (
	"container/heap"
	"fmt"
	"math"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// Nearest returns the k objects whose predicted positions at time at
// are closest to q, in ascending distance order.  Only reports that
// are still valid at time at qualify (in expiration-aware mode); this
// extends the paper's query repertoire with the nearest-neighbor
// queries its future-work section anticipates for location-based
// services ("players close by").
//
// The search is the classic best-first R-tree NN traversal: a priority
// queue ordered by the minimum distance between q and the entry's
// bounding rectangle evaluated at time at.  A bounding rectangle is a
// valid bound at that instant because entries that expire before at
// are skipped.
func (t *Tree) Nearest(q geom.Vec, at float64, k int, now float64) ([]Result, error) {
	t.advance(now)
	if at < t.Now() {
		return nil, fmt.Errorf("core: nearest query time %v precedes current time %v", at, t.Now())
	}
	if k <= 0 {
		return nil, nil
	}
	pq := &nnQueue{}
	heap.Push(pq, nnItem{dist: 0, page: t.root, isNode: true})
	var out []Result
	var nodes, leaves uint64
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(nnItem)
		if !it.isNode {
			out = append(out, Result{OID: it.oid, Point: it.point})
			continue
		}
		n, err := t.readNode(it.page)
		if err != nil {
			t.addQueryStats(nodes, leaves)
			return nil, err
		}
		nodes++
		if n.level == 0 {
			leaves += uint64(len(n.entries))
		}
		for i := range n.entries {
			e := &n.entries[i]
			// Entries invalid at the query time cannot contribute.
			if t.cfg.ExpireAware && t.effExp(e.rect, n.level) < at {
				continue
			}
			if n.level == 0 {
				p := e.point()
				heap.Push(pq, nnItem{
					dist:  q.Dist(p.At(at), t.cfg.Dims),
					oid:   e.id,
					point: p,
				})
				continue
			}
			heap.Push(pq, nnItem{
				dist:   minDist(q, e.rect.At(at), t.cfg.Dims),
				page:   e.child(),
				isNode: true,
			})
		}
	}
	t.addQueryStats(nodes, leaves)
	return out, nil
}

// minDist is the minimum Euclidean distance from point q to rectangle
// r (zero if q lies inside).
func minDist(q geom.Vec, r geom.Rect, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		switch {
		case q[i] < r.Lo[i]:
			d := r.Lo[i] - q[i]
			s += d * d
		case q[i] > r.Hi[i]:
			d := q[i] - r.Hi[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

type nnItem struct {
	dist   float64
	page   storage.PageID
	isNode bool
	oid    uint32
	point  geom.MovingPoint
}

type nnQueue []nnItem

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }
