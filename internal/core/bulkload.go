package core

import (
	"fmt"
	"math"
	"slices"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// BulkItem is one object for BulkLoad.
type BulkItem struct {
	OID   uint32
	Point geom.MovingPoint
}

// bulkFill is the target node fill of a bulk-loaded tree: below
// capacity so the first subsequent updates do not immediately split
// every node.
const bulkFill = 0.7

// BulkLoad builds a tree over an empty store from an initial object
// population, far faster than repeated insertion.  It adapts
// sort-tile-recursive (STR) packing to moving points: items are tiled
// by their *integrated centers* — the predicted position at
// now + H/2, H being the tree's initial time horizon — so that objects
// heading the same way end up in the same node, which is what the
// insertion heuristics' time integrals would strive for.
//
// The items' reports are interpreted as of time now.
func BulkLoad(cfg Config, store storage.Store, items []BulkItem, now float64) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := newTreeShell(cfg, store)
	t.clk.Store(now)
	t.timerStart = now
	if err := t.initMeta(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		root, err := t.allocNode(0)
		if err != nil {
			return nil, err
		}
		if err := t.writeNode(root); err != nil {
			return nil, err
		}
		t.root = root.id
		t.height = 1
		if err := t.bp.Pin(t.root); err != nil {
			return nil, err
		}
		t.publishOp()
		return t, nil
	}

	// Leaf entries, quantized like regular inserts.
	seen := make(map[uint32]bool, len(items))
	entries := make([]entry, len(items))
	for i, it := range items {
		if seen[it.OID] {
			return nil, fmt.Errorf("core: BulkLoad: duplicate object id %d", it.OID)
		}
		seen[it.OID] = true
		entries[i] = entry{id: it.OID, rect: geom.PointTPRect(t.prepare(it.Point))}
	}

	horizon := t.metricH() / 2
	level := 0
	for {
		fill := int(bulkFill * float64(t.lay.cap(level)))
		if fill < 2 {
			fill = 2
		}
		nodes, err := t.packLevel(entries, level, fill, now+horizon)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 1 {
			t.root = nodes[0].id
			t.height = level + 1
			t.leafEntries = len(items)
			if err := t.bp.Pin(t.root); err != nil {
				return nil, err
			}
			t.publishOp()
			return t, nil
		}
		// Parent entries for the next round.
		entries = make([]entry, len(nodes))
		for i, n := range nodes {
			entries[i] = entry{id: uint32(n.id), rect: t.computeBR(n)}
		}
		level++
	}
}

// packLevel tiles the entries into nodes of the given level with ~fill
// entries each, ordering by the STR slicing of their integrated
// centers at time tc.
func (t *Tree) packLevel(entries []entry, level, fill int, tc float64) ([]*node, error) {
	center := func(e *entry, dim int) float64 {
		r := e.rect
		return (r.Lo[dim] + r.VLo[dim]*tc + r.Hi[dim] + r.VHi[dim]*tc) / 2
	}
	numNodes := (len(entries) + fill - 1) / fill
	// Number of vertical slices: sqrt of the node count (classic STR),
	// generalized per dimension count.
	slicesPerDim := int(math.Ceil(math.Pow(float64(numNodes), 1/float64(t.cfg.Dims))))
	if slicesPerDim < 1 {
		slicesPerDim = 1
	}
	// Recursive tiling: sort by dim 0, cut into slices, recurse.
	var tile func(es []entry, dim int)
	tile = func(es []entry, dim int) {
		d := dim
		slices.SortFunc(es, func(a, b entry) int {
			ca, cb := center(&a, d), center(&b, d)
			switch {
			case ca < cb:
				return -1
			case ca > cb:
				return 1
			}
			return 0
		})
		if dim == t.cfg.Dims-1 {
			return
		}
		per := (len(es) + slicesPerDim - 1) / slicesPerDim
		if per < fill {
			per = fill
		}
		for off := 0; off < len(es); off += per {
			end := off + per
			if end > len(es) {
				end = len(es)
			}
			tile(es[off:end], dim+1)
		}
	}
	tile(entries, 0)

	var out []*node
	for off := 0; off < len(entries); off += fill {
		end := off + fill
		if end > len(entries) {
			end = len(entries)
		}
		// Never leave a trailing runt below the minimum fill: absorb it
		// into this node when capacity allows, otherwise leave exactly
		// the minimum behind (this node then keeps at least
		// cap+1-min >= min entries itself).
		if rem := len(entries) - end; rem > 0 && rem < t.lay.min(level) {
			if len(entries)-off <= t.lay.cap(level) {
				end = len(entries)
			} else {
				end = len(entries) - t.lay.min(level)
			}
		}
		n, err := t.allocNode(level)
		if err != nil {
			return nil, err
		}
		n.entries = append(n.entries, entries[off:end]...)
		if err := t.writeNode(n); err != nil {
			return nil, err
		}
		out = append(out, n)
		off = end - fill // compensate the loop increment
	}
	return out, nil
}
