package core

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

func randBulkItems(rng *rand.Rand, n int, now float64) []BulkItem {
	items := make([]BulkItem, n)
	for i := range items {
		items[i] = BulkItem{
			OID: uint32(i),
			Point: geom.MovingPoint{
				Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
				TExp: now + 60 + rng.Float64()*120,
			},
		}
	}
	return items
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(rexpConfig(), storage.NewMemStore(), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.LeafEntries() != 0 {
		t.Fatalf("empty bulk load: height %d entries %d", tr.Height(), tr.LeafEntries())
	}
	if err := tr.Insert(1, geom.MovingPoint{Pos: geom.Vec{1, 1}, TExp: geom.Inf()}, 5); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 50, 170, 171, 5000, 40000} {
		items := randBulkItems(rng, n, 10)
		tr, err := BulkLoad(rexpConfig(), storage.NewMemStore(), items, 10)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.LeafEntries() != n {
			t.Fatalf("n=%d: leaf entries %d", n, tr.LeafEntries())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Fill should be near the target: node count within 25% of
		// n / (fill·cap).
		if n >= 5000 {
			counts, err := tr.NodeCount()
			if err != nil {
				t.Fatal(err)
			}
			ideal := float64(n) / (bulkFill * float64(tr.LeafCapacity()))
			if got := float64(counts[0]); got < ideal*0.8 || got > ideal*1.3 {
				t.Errorf("n=%d: %v leaves, ideal %.0f", n, got, ideal)
			}
		}
	}
}

func TestBulkLoadQueriesMatchIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n = 6000
	items := randBulkItems(rng, n, 0)
	bulk, err := BulkLoad(rexpConfig(), storage.NewMemStore(), items, 0)
	if err != nil {
		t.Fatal(err)
	}
	incr := newTestTree(t, rexpConfig())
	for _, it := range items {
		if err := incr.Insert(it.OID, it.Point, 0); err != nil {
			t.Fatal(err)
		}
	}
	for iter := 0; iter < 40; iter++ {
		q := randQuery(rng, 0)
		a, err := bulk.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := incr.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		var ai, bi []uint32
		for _, r := range a {
			ai = append(ai, r.OID)
		}
		for _, r := range b {
			bi = append(bi, r.OID)
		}
		sortIDs(ai)
		sortIDs(bi)
		if !equalIDs(ai, bi) {
			t.Fatalf("iter %d: bulk %v vs incremental %v", iter, ai, bi)
		}
	}
}

func TestBulkLoadThenUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	items := randBulkItems(rng, 4000, 0)
	tr, err := BulkLoad(rexpConfig(), storage.NewMemStore(), items, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Normal life continues: updates, deletes, expiry.
	records := make(map[uint32]geom.MovingPoint, len(items))
	for _, it := range items {
		records[it.OID] = tr.Stored(it.Point)
	}
	now := 0.0
	for i := 0; i < 3000; i++ {
		now += 0.02
		oid := uint32(rng.Intn(len(items)))
		found, err := tr.Delete(oid, records[oid], now)
		if err != nil {
			t.Fatal(err)
		}
		if !found && records[oid].TExp >= now {
			t.Fatalf("step %d: live bulk-loaded entry %d not found", i, oid)
		}
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 60,
		}
		if err := tr.Insert(oid, p, now); err != nil {
			t.Fatal(err)
		}
		records[oid] = tr.Stored(p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsDuplicates(t *testing.T) {
	items := []BulkItem{
		{OID: 1, Point: geom.MovingPoint{Pos: geom.Vec{1, 1}, TExp: geom.Inf()}},
		{OID: 1, Point: geom.MovingPoint{Pos: geom.Vec{2, 2}, TExp: geom.Inf()}},
	}
	if _, err := BulkLoad(rexpConfig(), storage.NewMemStore(), items, 0); err == nil {
		t.Fatal("duplicate oids accepted")
	}
}

func TestBulkLoadGroupsByVelocity(t *testing.T) {
	// Two swarms at the same location moving in opposite directions:
	// integrated-center tiling must separate them, so a query ahead of
	// one swarm touches few pages.
	var items []BulkItem
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 2000; i++ {
		v := 2.0
		if i%2 == 0 {
			v = -2.0
		}
		items = append(items, BulkItem{
			OID: uint32(i),
			Point: geom.MovingPoint{
				Pos:  geom.Vec{500 + rng.Float64()*10, rng.Float64() * 1000},
				Vel:  geom.Vec{v, 0},
				TExp: geom.Inf(),
			},
		})
	}
	cfg := rexpConfig()
	cfg.BufferPages = 2
	tr, err := BulkLoad(cfg, storage.NewMemStore(), items, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.ResetIOStats()
	// Far ahead in time, the two swarms are hundreds of km apart.
	q := geom.Timeslice(geom.Rect{Lo: geom.Vec{600, 0}, Hi: geom.Vec{700, 1000}}, 75)
	res, err := tr.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1000 {
		t.Fatalf("query found %d, want the eastbound swarm of 1000", len(res))
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	items := randBulkItems(rng, 20000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(rexpConfig(), storage.NewMemStore(), items, 0); err != nil {
			b.Fatal(err)
		}
	}
}
