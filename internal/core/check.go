package core

import (
	"fmt"
	"math"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// CheckInvariants validates the structural invariants of the tree.  It
// is intended for tests; it reads the whole tree (charging I/O).
//
// Checked invariants:
//   - levels decrease by one from parent to child and leaves sit at
//     level 0 (height balance);
//   - entry counts never exceed capacity, and non-root nodes hold at
//     least the minimum number of entries;
//   - every internal entry's bounding rectangle contains the contents
//     of its child for all times from now until the content expires
//     (bounded by the parent entry's own effective expiration);
//   - object ids are unique among live leaf entries (an expired entry
//     may coexist with a live one for the same object: §4.3's deletion
//     cannot see expired entries, so an object that expires before its
//     update leaves a stale copy behind until it is lazily purged);
//   - the maintained leaf-entry counter matches the actual count.
func (t *Tree) CheckInvariants() error {
	seen := make(map[uint32]bool)
	leaves := 0
	var walk func(id storage.PageID, level int, bound *geom.TPRect, boundExp float64) error
	walk = func(id storage.PageID, level int, bound *geom.TPRect, boundExp float64) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level != level {
			return fmt.Errorf("node %d: level %d, expected %d", id, n.level, level)
		}
		if len(n.entries) > t.lay.cap(n.level) {
			return fmt.Errorf("node %d: %d entries exceed capacity %d", id, len(n.entries), t.lay.cap(n.level))
		}
		if id != t.root && len(n.entries) < t.lay.min(n.level) {
			return fmt.Errorf("node %d (level %d): %d entries below minimum %d", id, n.level, len(n.entries), t.lay.min(n.level))
		}
		for _, e := range n.entries {
			if n.level == 0 {
				leaves++
				if !t.isExpired(&e.rect, 0) {
					if seen[e.id] {
						return fmt.Errorf("duplicate live object id %d", e.id)
					}
					seen[e.id] = true
				}
			}
			if bound != nil {
				// The parent bound must hold from now until the entry's
				// effective expiration (or the parent entry's, whichever
				// is earlier).
				end := math.Min(t.effExp(e.rect, n.level), boundExp)
				if !geom.IsFinite(end) || end > t.Now()+1000 {
					end = t.Now() + 1000
				}
				if end < t.Now() {
					continue // entry already expired; no containment promise
				}
				for _, tt := range []float64{t.Now(), (t.Now() + end) / 2, end} {
					outer, inner := bound.At(tt), e.rect.At(tt)
					for i := 0; i < t.cfg.Dims; i++ {
						eps := 1e-5 * (1 + abs(inner.Lo[i]) + abs(inner.Hi[i]))
						if inner.Lo[i] < outer.Lo[i]-eps || inner.Hi[i] > outer.Hi[i]+eps {
							return fmt.Errorf("node %d (level %d): entry escapes parent bound at t=%.3f (dim %d: [%g,%g] outside [%g,%g])",
								id, n.level, tt, i, inner.Lo[i], inner.Hi[i], outer.Lo[i], outer.Hi[i])
						}
					}
				}
			}
			if n.level > 0 {
				br := e.rect
				if err := walk(e.child(), n.level-1, &br, t.effExp(e.rect, n.level)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, nil, math.Inf(1)); err != nil {
		return err
	}
	if leaves != t.leafEntries {
		return fmt.Errorf("leaf entry counter %d != actual %d", t.leafEntries, leaves)
	}
	return nil
}
