package core

import (
	"math"
	"sync/atomic"
	"time"

	"rexptree/internal/epoch"
	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// This file is the lock-free snapshot read path.  Writers publish an
// immutable, columnar copy of every page they touched (a vnode) onto a
// per-page version chain, then swap in a new root/clock descriptor
// (pubState) with one atomic store.  Readers pin the published
// sequence in an epoch domain and traverse the version chains without
// taking the tree's reader/writer lock or the buffer-pool mutex; the
// writer reclaims versions no pinned reader can still need after each
// publication.
//
// The legacy locked traversals (Search, Nearest, the stats walks)
// remain untouched beside this path: they are the semantics baseline
// the equivalence tests compare against, and the paper's I/O-counting
// experiments keep charging the buffer pool exactly as before.

// pubState is the atomically published root descriptor: everything a
// reader needs to start a traversal of one consistent tree snapshot.
type pubState struct {
	seq    uint64
	root   storage.PageID
	height int
	clock  float64 // tree clock at publication time (informational)
}

// vnode is the immutable columnar image of one node version.  Entry
// coordinates are stored as four parallel column slices cut from one
// backing array, so the intersection kernel runs as a single sweep of
// contiguous memory per node instead of per-entry pointer chasing.
// For leaves the hi/vhi columns alias lo/vlo (a leaf entry is a
// degenerate rectangle), so a single kernel serves both node kinds.
type vnode struct {
	level int
	count int
	oids  []uint32  // object ids (leaf) or child page ids (internal)
	texp  []float64 // recorded expiration times (+Inf when absent)
	lo    []float64 // count*dims, entry-major: lo[i*dims+d]
	hi    []float64
	vlo   []float64
	vhi   []float64
}

// point reconstructs the leaf entry's trajectory record, identical to
// entry.point() on the node the vnode was copied from.
func (v *vnode) point(i, dims int) geom.MovingPoint {
	var p geom.MovingPoint
	b := i * dims
	for d := 0; d < dims; d++ {
		p.Pos[d] = v.lo[b+d]
		p.Vel[d] = v.vlo[b+d]
	}
	p.TExp = v.texp[i]
	return p
}

// vnodeOf deep-copies a node into its immutable columnar image.  The
// copy is what makes in-place node mutation by later operations (purge
// splices, split redistributions) invisible to pinned readers.
func vnodeOf(n *node, dims int) *vnode {
	c := len(n.entries)
	v := &vnode{
		level: n.level,
		count: c,
		oids:  make([]uint32, c),
		texp:  make([]float64, c),
	}
	if n.level == 0 {
		backing := make([]float64, 2*c*dims)
		v.lo, v.vlo = backing[:c*dims], backing[c*dims:]
		v.hi, v.vhi = v.lo, v.vlo
		for i := range n.entries {
			e := &n.entries[i]
			v.oids[i] = e.id
			v.texp[i] = e.rect.TExp
			b := i * dims
			for d := 0; d < dims; d++ {
				v.lo[b+d] = e.rect.Lo[d]
				v.vlo[b+d] = e.rect.VLo[d]
			}
		}
		return v
	}
	backing := make([]float64, 4*c*dims)
	v.lo = backing[:c*dims]
	v.hi = backing[c*dims : 2*c*dims]
	v.vlo = backing[2*c*dims : 3*c*dims]
	v.vhi = backing[3*c*dims:]
	for i := range n.entries {
		e := &n.entries[i]
		v.oids[i] = e.id
		v.texp[i] = e.rect.TExp
		b := i * dims
		for d := 0; d < dims; d++ {
			v.lo[b+d] = e.rect.Lo[d]
			v.hi[b+d] = e.rect.Hi[d]
			v.vlo[b+d] = e.rect.VLo[d]
			v.vhi[b+d] = e.rect.VHi[d]
		}
	}
	return v
}

// version is one link of a page's version chain.  n is nil for a
// tombstone (the page was freed at seq).  prev is atomic because the
// writer trims chains while readers walk them.
type version struct {
	seq  uint64
	n    *vnode
	prev atomic.Pointer[version]
}

// chain is the per-page version list, newest first.
type chain struct {
	head atomic.Pointer[version]
}

// stageWrite records that the node's page changed during the current
// mutation; publish turns the staged set into new chain versions.
// Staging keeps only the live *node pointer — the columnar copy is
// taken once, at publication, after the operation's final state is
// known.
func (t *Tree) stageWrite(n *node) { t.staged[n.id] = n }

// stageFree records that the page was freed (a tombstone version).
func (t *Tree) stageFree(id storage.PageID) { t.staged[id] = nil }

// BeginBatch suppresses snapshot publication until the matching
// EndBatch, so a multi-operation mutation (an Update's delete+insert,
// a whole UpdateBatch) becomes visible to snapshot readers atomically.
// Calls nest.  Requires the caller's exclusive lock, like every
// mutation.
func (t *Tree) BeginBatch() { t.batchDepth++ }

// EndBatch closes a BeginBatch scope and publishes any mutations
// staged inside it.
func (t *Tree) EndBatch() {
	if t.batchDepth > 0 {
		t.batchDepth--
	}
	if t.batchDepth == 0 && t.pendingPub {
		t.publish()
	}
}

// publishOp is called at the end of every mutating core operation.
// Inside a batch it only marks the publication pending.
func (t *Tree) publishOp() {
	if len(t.staged) == 0 {
		return
	}
	if t.batchDepth > 0 {
		t.pendingPub = true
		return
	}
	t.publish()
}

// chainSweepEvery is how many publications pass between full-table
// trim sweeps.  Per-publication trims only visit the chains that
// publication staged; the periodic sweep reclaims retired versions on
// chains that have gone cold since a long-pinned reader released them.
const chainSweepEvery = 256

// publish makes the staged mutations visible to snapshot readers:
// it pushes a new version (or tombstone) onto each staged page's
// chain, swaps in the new root descriptor, and trims versions that no
// pinned reader can still reach.  Single-writer: the caller holds the
// public tree's exclusive lock.
func (t *Tree) publish() {
	start := time.Now()
	t.pendingPub = false
	seq := t.pubSeq + 1
	t.pubSeq = seq

	// Grow the chain table first so every staged page has a slot.
	tbl := *t.chains.Load()
	maxID := -1
	for id := range t.staged {
		if int(id) > maxID {
			maxID = int(id)
		}
	}
	if maxID >= len(tbl) {
		n := 2 * len(tbl)
		if n < maxID+1 {
			n = maxID + 1
		}
		if n < 64 {
			n = 64
		}
		grown := make([]atomic.Pointer[chain], n)
		for i := range tbl {
			grown[i].Store(tbl[i].Load())
		}
		t.chains.Store(&grown)
		tbl = grown
	}

	touched := t.sweepScratch[:0]
	for id, n := range t.staged {
		c := tbl[id].Load()
		if c == nil {
			c = &chain{}
			tbl[id].Store(c)
		}
		v := &version{seq: seq}
		if n != nil {
			v.n = vnodeOf(n, t.cfg.Dims)
		}
		v.prev.Store(c.head.Load())
		c.head.Store(v)
		touched = append(touched, c)
	}
	t.sweepScratch = touched[:0]
	clear(t.staged)

	// The swap: readers that load this descriptor are guaranteed to
	// find a version with seq <= t.pubSeq on every reachable chain,
	// because the chain pushes above happen before this store.
	t.pub.Store(&pubState{seq: seq, root: t.root, height: t.height, clock: t.Now()})

	// Reclaim: anything older than the newest version at or below the
	// minimum pinned sequence is unreachable by every present and
	// future reader (readers re-load the descriptor after pinning, so
	// a pin taken concurrently with this publication traverses at a
	// sequence >= what Min reports).
	min := t.dom.Min(seq)
	var trimmed uint64
	for _, c := range touched {
		trimmed += trimChain(c, min)
	}
	t.pubCount++
	if t.pubCount%chainSweepEvery == 0 {
		for i := range tbl {
			if c := tbl[i].Load(); c != nil {
				trimmed += trimChain(c, min)
			}
		}
	}
	t.lastPublishNanos = time.Since(start).Nanoseconds()
	if t.met != nil {
		t.met.SnapPublishes.Inc()
		if trimmed > 0 {
			t.met.SnapVersionsTrimmed.Add(trimmed)
		}
	}
}

// trimChain cuts every version strictly older than the newest version
// with seq <= min, returning how many links were retired.  The kept
// version's prev store is the only mutation concurrent readers can
// observe, and they only ever walk from the head, so a reader either
// sees the old tail (still intact — Go's GC keeps it alive through the
// reader's own pointer) or the cut.
func trimChain(c *chain, min uint64) uint64 {
	v := c.head.Load()
	for v != nil && v.seq > min {
		v = v.prev.Load()
	}
	if v == nil {
		return 0
	}
	tail := v.prev.Load()
	if tail == nil {
		return 0
	}
	v.prev.Store(nil)
	var n uint64
	for ; tail != nil; tail = tail.prev.Load() {
		n++
	}
	return n
}

// installSnapshots walks the whole tree and publishes a base version
// for every live page.  Open runs it so that a reopened tree's
// snapshot readers never miss a chain: after it, every page reachable
// from any published root has a version at or below the reader's
// pinned sequence.
func (t *Tree) installSnapshots() error {
	err := t.walk(t.root, func(n *node) error {
		t.staged[n.id] = n
		return nil
	})
	if err != nil {
		return err
	}
	t.publishOp()
	return nil
}

// SnapshotSeq returns the currently published snapshot sequence (0
// before the first publication).
func (t *Tree) SnapshotSeq() uint64 {
	if p := t.pub.Load(); p != nil {
		return p.seq
	}
	return 0
}

// LastPublishNanos returns the duration of the most recent version
// publication in nanoseconds.  Like all mutation state it is only
// meaningful under the caller's exclusive lock (the traced update path
// reads it right after the mutation it timed).
func (t *Tree) LastPublishNanos() int64 { return t.lastPublishNanos }

// EpochsPinned reports how many reader epochs are currently pinned
// (for gauges and tests; immediately stale).
func (t *Tree) EpochsPinned() int { return t.dom.Pinned() }

// pinSnapshot pins the published snapshot for a traversal.  The
// re-load after pinning is what makes the pin safe: a writer that
// published (and trimmed) between our first load and the slot store
// can only have reclaimed versions the re-loaded, newer descriptor no
// longer references — and our pinned (older) sequence keeps the
// writer's *next* trim conservative.  ok is false before the first
// publication, when the caller must fall back to the locked path.
func (t *Tree) pinSnapshot() (p *pubState, pin epoch.Pin, ok bool) {
	p = t.pub.Load()
	if p == nil {
		return nil, epoch.Pin{}, false
	}
	pin = t.dom.Pin(p.seq)
	if q := t.pub.Load(); q != p {
		p = q
	}
	return p, pin, true
}

// snapNode resolves the page's newest version at or below the pinned
// sequence without any lock.  The defensive fallback reads through the
// buffer pool (taking its mutex); it cannot fire for pages reachable
// from a published root — Open installs base versions for every live
// page and every later mutation publishes before it becomes reachable
// — but keeps a bug from turning into a wrong result silently.
func (t *Tree) snapNode(p *pubState, id storage.PageID, hits, misses *uint64, st *TravStats) (*vnode, error) {
	tbl := *t.chains.Load()
	if int(id) < len(tbl) {
		if c := tbl[id].Load(); c != nil {
			for v := c.head.Load(); v != nil; v = v.prev.Load() {
				if v.seq <= p.seq {
					if v.n == nil {
						break // freed at p.seq: unreachable; fall back
					}
					*hits++
					return v.n, nil
				}
			}
		}
	}
	*misses++
	n, err := t.readNodeStats(id, st)
	if err != nil {
		return nil, err
	}
	return vnodeOf(n, t.cfg.Dims), nil
}

// addSnapStats folds a snapshot traversal's locally accumulated chain
// accounting into the metric counters and the per-traversal stats.
func (t *Tree) addSnapStats(hits, misses uint64, st *TravStats) {
	if st != nil {
		st.Hits += hits // chain hits are pages served without store I/O
		st.SnapHits += hits
		st.SnapMisses += misses
	}
	if t.met == nil {
		return
	}
	t.met.EpochPins.Inc()
	t.met.SnapNodeHits.Add(hits)
	if misses > 0 {
		t.met.SnapNodeMisses.Add(misses)
	}
}

// snapIntersects is geom.Intersects(q.Region, entry i, t1, t2) over
// the vnode's columns: the same clip sequence, term for term, so the
// verdict is bit-identical to the locked path's.
func snapIntersects(r *geom.TPRect, v *vnode, i, dims int, t1, t2 float64) bool {
	if t1 > t2 {
		return false
	}
	iv := geom.Interval{Lo: t1, Hi: t2}
	b := i * dims
	for d := 0; d < dims && !iv.Empty(); d++ {
		iv = geom.ClipLE(iv, r.Lo[d], r.VLo[d], v.hi[b+d], v.vhi[b+d])
		iv = geom.ClipLE(iv, v.lo[b+d], v.vlo[b+d], r.Hi[d], r.VHi[d])
	}
	return !iv.Empty()
}

// snapDerivedExp is geom.DerivedExp over the vnode's columns.
func snapDerivedExp(v *vnode, i, dims int, now float64) float64 {
	e := math.Inf(1)
	b := i * dims
	for d := 0; d < dims; d++ {
		dv := v.vhi[b+d] - v.vlo[b+d]
		if dv >= 0 {
			continue
		}
		ext := (v.hi[b+d] - v.lo[b+d]) + dv*now
		if ext <= 0 {
			return now
		}
		if tz := now + ext/(-dv); tz < e {
			e = tz
		}
	}
	return e
}

// snapEffExp mirrors Tree.effExp for a vnode entry, with the
// evaluation time passed in (the snapshot path fixes it once per
// traversal instead of re-reading the clock per entry).
func (t *Tree) snapEffExp(v *vnode, i int, now float64) float64 {
	if !t.cfg.ExpireAware {
		return math.Inf(1)
	}
	if v.level == 0 || t.cfg.StoreBRExp {
		return v.texp[i]
	}
	return snapDerivedExp(v, i, t.cfg.Dims, now)
}

// SearchSnap is Search on the snapshot read path: same query
// semantics, same results on a quiesced tree, but no tree lock and no
// pool mutex — safe to run concurrently with mutations.
func (t *Tree) SearchSnap(q geom.Query, now float64) ([]Result, error) {
	return t.SearchSnapStats(q, now, nil)
}

// SearchSnapStats is SearchSnap plus per-traversal accounting.
func (t *Tree) SearchSnapStats(q geom.Query, now float64, st *TravStats) ([]Result, error) {
	var out []Result
	err := t.SearchFuncSnapStats(q, now, st, func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// SearchFuncSnap streams matching objects from the pinned snapshot.
// Like SearchFunc it runs without heap allocations once warm.
func (t *Tree) SearchFuncSnap(q geom.Query, now float64, fn func(Result) bool) error {
	return t.SearchFuncSnapStats(q, now, nil, fn)
}

// SearchFuncSnapStats is the snapshot traversal kernel.  Per node it
// runs one columnar sweep: expiration filter and trapezoid
// intersection over the four coordinate columns, leaves and internal
// nodes through the same clip sequence.
func (t *Tree) SearchFuncSnapStats(q geom.Query, now float64, st *TravStats, fn func(Result) bool) error {
	t.advance(now)
	var pinStart time.Time
	if st != nil {
		pinStart = time.Now()
	}
	p, pin, ok := t.pinSnapshot()
	if !ok {
		return t.SearchFuncStats(q, now, st, fn)
	}
	defer pin.Unpin()
	if st != nil {
		st.PinNanos += time.Since(pinStart).Nanoseconds()
	}
	eval := t.Now()
	dims := t.cfg.Dims
	useExp := t.cfg.ExpireAware
	var nodes, leaves, hits, misses uint64
	flush := func() {
		t.addQueryStats(nodes, leaves, st)
		t.addSnapStats(hits, misses, st)
	}
	sp := stackPool.Get().(*[]storage.PageID)
	stack := append((*sp)[:0], p.root)
	defer func() {
		*sp = stack[:0]
		stackPool.Put(sp)
	}()
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v, err := t.snapNode(p, id, &hits, &misses, st)
		if err != nil {
			flush()
			return err
		}
		nodes++
		if v.level == 0 {
			leaves += uint64(v.count)
			for i := 0; i < v.count; i++ {
				texp := v.texp[i]
				if useExp && texp < eval {
					continue
				}
				t2 := q.T2
				if useExp && texp < t2 {
					t2 = texp
				}
				if snapIntersects(&q.Region, v, i, dims, q.T1, t2) {
					if !fn(Result{OID: v.oids[i], Point: v.point(i, dims)}) {
						flush()
						return nil
					}
				}
			}
			continue
		}
		for i := 0; i < v.count; i++ {
			texp := t.snapEffExp(v, i, eval)
			if useExp && texp < eval {
				continue
			}
			t2 := q.T2
			if useExp && texp < t2 {
				t2 = texp
			}
			if snapIntersects(&q.Region, v, i, dims, q.T1, t2) {
				stack = append(stack, storage.PageID(v.oids[i]))
			}
		}
	}
	flush()
	return nil
}

// PubClock returns the tree clock recorded by the most recent snapshot
// publication, without any lock.  ok is false before the first
// publication, when the caller must read the clock under the tree lock
// instead.
func (t *Tree) PubClock() (float64, bool) {
	if p := t.pub.Load(); p != nil {
		return p.clock, true
	}
	return 0, false
}

// ExportSnap streams every stored record — live and expired alike, like
// Records — from the pinned snapshot, without the tree lock or the pool
// mutex.  It is the scan primitive of the live reshard: the scan runs
// against one consistent publication while mutations keep landing on
// the tree.  ok is false before the first publication, when the caller
// must fall back to the locked Records walk.
func (t *Tree) ExportSnap(fn func(oid uint32, p geom.MovingPoint) error) (ok bool, err error) {
	p, pin, ok := t.pinSnapshot()
	if !ok {
		return false, nil
	}
	defer pin.Unpin()
	dims := t.cfg.Dims
	var hits, misses uint64
	defer func() { t.addSnapStats(hits, misses, nil) }()
	sp := stackPool.Get().(*[]storage.PageID)
	stack := append((*sp)[:0], p.root)
	defer func() {
		*sp = stack[:0]
		stackPool.Put(sp)
	}()
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v, err := t.snapNode(p, id, &hits, &misses, nil)
		if err != nil {
			return true, err
		}
		if v.level == 0 {
			for i := 0; i < v.count; i++ {
				if err := fn(v.oids[i], v.point(i, dims)); err != nil {
					return true, err
				}
			}
			continue
		}
		for i := 0; i < v.count; i++ {
			stack = append(stack, storage.PageID(v.oids[i]))
		}
	}
	return true, nil
}

// NearestSnap is Nearest on the snapshot read path.
func (t *Tree) NearestSnap(q geom.Vec, at float64, k int, now float64) ([]Result, error) {
	return t.NearestSnapStats(q, at, k, now, nil)
}

// NearestSnapStats runs the best-first nearest-neighbor traversal over
// the pinned snapshot, with the distance arithmetic evaluated over the
// vnode columns exactly as the locked path evaluates it over decoded
// entries (same heap, same tie order).
func (t *Tree) NearestSnapStats(q geom.Vec, at float64, k int, now float64, st *TravStats) ([]Result, error) {
	t.advance(now)
	var pinStart time.Time
	if st != nil {
		pinStart = time.Now()
	}
	p, pin, ok := t.pinSnapshot()
	if !ok {
		return t.NearestStats(q, at, k, now, st)
	}
	defer pin.Unpin()
	if st != nil {
		st.PinNanos += time.Since(pinStart).Nanoseconds()
	}
	eval := t.Now()
	if at < eval {
		return nil, errNearestPast(at, eval)
	}
	if k <= 0 {
		return nil, nil
	}
	dims := t.cfg.Dims
	useExp := t.cfg.ExpireAware
	var nodes, leaves, hits, misses uint64
	flush := func() {
		t.addQueryStats(nodes, leaves, st)
		t.addSnapStats(hits, misses, st)
	}
	qp := nnQueuePool.Get().(*nnQueue)
	pq := (*qp)[:0]
	defer func() {
		*qp = pq[:0]
		nnQueuePool.Put(qp)
	}()
	pq = pq.push(nnItem{dist: 0, page: p.root, isNode: true})
	var out []Result
	for len(pq) > 0 && len(out) < k {
		var it nnItem
		pq, it = pq.pop()
		if !it.isNode {
			out = append(out, Result{OID: it.oid, Point: it.point})
			continue
		}
		v, err := t.snapNode(p, it.page, &hits, &misses, st)
		if err != nil {
			flush()
			return nil, err
		}
		nodes++
		if v.level == 0 {
			leaves += uint64(v.count)
		}
		for i := 0; i < v.count; i++ {
			if useExp && t.snapEffExp(v, i, eval) < at {
				continue
			}
			b := i * dims
			if v.level == 0 {
				var s float64
				for d := 0; d < dims; d++ {
					dd := q[d] - (v.lo[b+d] + v.vlo[b+d]*at)
					s += dd * dd
				}
				pq = pq.push(nnItem{
					dist:  math.Sqrt(s),
					oid:   v.oids[i],
					point: v.point(i, dims),
				})
				continue
			}
			var s float64
			for d := 0; d < dims; d++ {
				lo := v.lo[b+d] + v.vlo[b+d]*at
				hi := v.hi[b+d] + v.vhi[b+d]*at
				switch {
				case q[d] < lo:
					dd := lo - q[d]
					s += dd * dd
				case q[d] > hi:
					dd := q[d] - hi
					s += dd * dd
				}
			}
			pq = pq.push(nnItem{
				dist:   math.Sqrt(s),
				page:   storage.PageID(v.oids[i]),
				isNode: true,
			})
		}
	}
	flush()
	return out, nil
}
