package core

import (
	"errors"
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// TestFaultInjection drives a tree while periodically arming storage
// faults.  Every failed operation must return ErrInjected (never
// panic), and once faults clear, the structure must still satisfy its
// invariants — i.e. errors may lose the operation in flight but not
// corrupt the pages already written.
func TestFaultInjection(t *testing.T) {
	fs := storage.NewFaultStore(storage.NewMemStore())
	cfg := rexpConfig()
	cfg.BufferPages = 4 // force real page traffic
	tr, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	now := 0.0
	inserted := map[uint32]geom.MovingPoint{}
	failures := 0
	for i := 0; i < 4000; i++ {
		now += 0.02
		if i%37 == 17 {
			fs.Arm(1 + rng.Intn(4))
		}
		oid := uint32(i % 700)
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 100 + rng.Float64()*100,
		}
		var opErr error
		if old, ok := inserted[oid]; ok {
			_, opErr = tr.Delete(oid, old, now)
			if opErr == nil {
				delete(inserted, oid)
			}
		}
		if opErr == nil {
			opErr = tr.Insert(oid, p, now)
			if opErr == nil {
				inserted[oid] = tr.prepare(p)
			}
		}
		if opErr != nil {
			if !errors.Is(opErr, storage.ErrInjected) {
				t.Fatalf("op %d: unexpected error %v", i, opErr)
			}
			failures++
			// After a failed operation the in-flight object's index
			// state is unknown; evict it from the oracle by trying a
			// best-effort delete once faults clear.
			fs.Disarm()
			if old, ok := inserted[oid]; ok {
				tr.Delete(oid, old, now)
				delete(inserted, oid)
			}
			tr.Delete(oid, p, now)
		}
		fs.Disarm()
	}
	if failures == 0 {
		t.Fatal("no faults fired; the test exercised nothing")
	}
	// NOTE: a fault in the middle of a structural change (split,
	// purge) may legitimately leave the logical tree missing the
	// in-flight entry, but pages and counters must stay readable and
	// queries must not error.
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	if _, err := tr.Search(geom.Timeslice(world, now), now); err != nil {
		t.Fatalf("search after recovery: %v", err)
	}
}

// TestFaultOnSearch arms a read fault during a query: the error
// surfaces and a retry succeeds.
func TestFaultOnSearch(t *testing.T) {
	fs := storage.NewFaultStore(storage.NewMemStore())
	cfg := rexpConfig()
	cfg.BufferPages = 4
	tr, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 2000; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			TExp: geom.Inf(),
		}
		if err := tr.Insert(uint32(i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	fs.Arm(2)
	_, err = tr.Search(geom.Timeslice(world, 1), 1)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("search error = %v, want injected fault", err)
	}
	fs.Disarm()
	res, err := tr.Search(geom.Timeslice(world, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2000 {
		t.Fatalf("retry found %d of 2000", len(res))
	}
}
