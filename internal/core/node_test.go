package core

import (
	"math"
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

func TestLayoutMatchesPaperFanout(t *testing.T) {
	// §5.1: 4 KiB pages give 170 entries in a full leaf and 102 in a
	// full internal node (2-D, velocities and expiration recorded).
	l := newLayout(Config{Dims: 2, ExpireAware: true, StoreBRExp: true}.withDefaults())
	if l.leafCap != 170 {
		t.Errorf("leaf capacity = %d, want 170", l.leafCap)
	}
	if l.innerCap != 102 {
		t.Errorf("internal capacity = %d, want 102", l.innerCap)
	}
}

func TestLayoutVariants(t *testing.T) {
	// Without stored expiration times internal entries shrink.
	noExp := newLayout(Config{Dims: 2, ExpireAware: true}.withDefaults())
	if noExp.innerSize != 36 || noExp.innerCap != 113 {
		t.Errorf("no-exp internal: size %d cap %d", noExp.innerSize, noExp.innerCap)
	}
	// Static BRs drop the velocities, raising fan-out by almost a
	// factor of two (§4.1.2).
	static := newLayout(Config{Dims: 2, ExpireAware: true, StoreBRExp: true, BRKind: hull.KindStatic}.withDefaults())
	if static.innerSize != 24 || static.innerCap != 170 {
		t.Errorf("static internal: size %d cap %d", static.innerSize, static.innerCap)
	}
	// A plain TPR-tree has no expiration field in leaf entries, so its
	// leaf fan-out is higher.
	tpr := newLayout(Config{Dims: 2}.withDefaults())
	if tpr.leafSize != 20 || tpr.leafCap != 204 {
		t.Errorf("TPR leaf: size %d cap %d", tpr.leafSize, tpr.leafCap)
	}
	// 1-D and 3-D layouts.
	d1 := newLayout(Config{Dims: 1, ExpireAware: true}.withDefaults())
	if d1.leafSize != 16 {
		t.Errorf("1-D leaf size = %d", d1.leafSize)
	}
	d3 := newLayout(Config{Dims: 3, ExpireAware: true}.withDefaults())
	if d3.leafSize != 32 {
		t.Errorf("3-D leaf size = %d", d3.leafSize)
	}
}

func TestF32Rounding(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 3.14159265358979, 1e9, -2.718281828e-3, 1000.0001} {
		d, u := f32Down(x), f32Up(x)
		if float64(d) > x {
			t.Errorf("f32Down(%v) = %v exceeds input", x, d)
		}
		if float64(u) < x {
			t.Errorf("f32Up(%v) = %v below input", x, u)
		}
		if math.Nextafter(float64(d), math.Inf(1)) < x && float64(u)-float64(d) > 2*math.Abs(x)*1e-7+1e-30 {
			t.Errorf("rounding of %v too wide: [%v, %v]", x, d, u)
		}
	}
	if !math.IsInf(float64(f32Up(math.Inf(1))), 1) {
		t.Error("f32Up(+Inf) lost infinity")
	}
	if !math.IsInf(float64(f32Down(math.Inf(-1))), -1) {
		t.Error("f32Down(-Inf) lost infinity")
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	p := geom.MovingPoint{Pos: geom.Vec{123.456789, 987.654321}, Vel: geom.Vec{1.234567, -2.345678}, TExp: 1234.5678}
	q1 := quantize(p, 2)
	q2 := quantize(q1, 2)
	if q1 != q2 {
		t.Errorf("quantize not idempotent: %v vs %v", q1, q2)
	}
	inf := geom.MovingPoint{TExp: geom.Inf()}
	if !math.IsInf(quantize(inf, 2).TExp, 1) {
		t.Error("quantize lost infinite expiration")
	}
}

func TestNodeEncodeDecodeLeaf(t *testing.T) {
	l := newLayout(Config{Dims: 2, ExpireAware: true, StoreBRExp: true}.withDefaults())
	rng := rand.New(rand.NewSource(41))
	n := &node{id: 7, level: 0}
	for i := 0; i < l.leafCap; i++ {
		p := quantize(geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: rng.Float64() * 500,
		}, 2)
		n.entries = append(n.entries, entry{id: uint32(i), rect: geom.PointTPRect(p)})
	}
	buf := make([]byte, storage.PageSize)
	l.encode(n, buf)
	got, err := l.decode(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.level != 0 || len(got.entries) != len(n.entries) {
		t.Fatalf("decoded level %d count %d", got.level, len(got.entries))
	}
	for i := range n.entries {
		if got.entries[i] != n.entries[i] {
			t.Fatalf("entry %d round trip: %+v vs %+v", i, got.entries[i], n.entries[i])
		}
	}
}

func TestNodeEncodeDecodeInternalOutwardRounding(t *testing.T) {
	for _, storeExp := range []bool{true, false} {
		l := newLayout(Config{Dims: 2, ExpireAware: true, StoreBRExp: storeExp}.withDefaults())
		rng := rand.New(rand.NewSource(43))
		n := &node{id: 9, level: 2}
		for i := 0; i < 20; i++ {
			r := geom.TPRect{
				Lo:   geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				VLo:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
				TExp: rng.Float64() * 500,
			}
			r.Hi = r.Lo.Add(geom.Vec{rng.Float64() * 10, rng.Float64() * 10})
			r.VHi = r.VLo.Add(geom.Vec{rng.Float64(), rng.Float64()})
			n.entries = append(n.entries, entry{id: uint32(100 + i), rect: r})
		}
		buf := make([]byte, storage.PageSize)
		l.encode(n, buf)
		got, err := l.decode(9, buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, ge := range got.entries {
			orig := n.entries[i].rect
			// Decoded rectangle must contain the original at any t >= 0.
			for _, tt := range []float64{0, 1, 100} {
				if !ge.rect.At(tt).ContainsRect(orig.At(tt), 2) {
					t.Fatalf("storeExp=%v entry %d: decoded rect does not contain original at t=%v", storeExp, i, tt)
				}
			}
			if storeExp {
				if ge.rect.TExp < orig.TExp {
					t.Fatalf("decoded TExp %v < original %v", ge.rect.TExp, orig.TExp)
				}
			} else if !math.IsInf(ge.rect.TExp, 1) {
				t.Fatalf("TExp should decode as +Inf when not stored, got %v", ge.rect.TExp)
			}
		}
	}
}

func TestDecodeRejectsCorruptCount(t *testing.T) {
	l := newLayout(Config{Dims: 2}.withDefaults())
	buf := make([]byte, storage.PageSize)
	buf[2], buf[3] = 0xFF, 0xFF
	if _, err := l.decode(1, buf); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dims: 5},
		{Dims: 2, BRKind: hull.Kind(42)},
		{Dims: 2, MinFill: 0.9},
		{Dims: 2, ReinsertFrac: 0.9},
		{Dims: 2, Beta: -1},
		{Dims: 2, StoreBRExp: true}, // requires ExpireAware
	}
	for i, cfg := range bad {
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config{}).withDefaults().validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
