package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

func TestSyncAndOpenMemStore(t *testing.T) {
	store := storage.NewMemStore()
	cfg := rexpConfig()
	tr, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	records := map[uint32]geom.MovingPoint{}
	now := 0.0
	for i := 0; i < 3000; i++ {
		now += 0.02
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 200 + rng.Float64()*200,
		}
		if err := tr.Insert(uint32(i), p, now); err != nil {
			t.Fatal(err)
		}
		records[uint32(i)] = tr.prepare(p)
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if re.Height() != tr.Height() || re.LeafEntries() != tr.LeafEntries() || re.Now() != tr.Now() {
		t.Fatalf("reopened state: height %d/%d entries %d/%d now %v/%v",
			re.Height(), tr.Height(), re.LeafEntries(), tr.LeafEntries(), re.Now(), tr.Now())
	}
	if re.UI() != tr.UI() {
		t.Errorf("UI estimate lost: %v vs %v", re.UI(), tr.UI())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Queries agree with the original's records.
	q := geom.Window(geom.Rect{Lo: geom.Vec{200, 200}, Hi: geom.Vec{400, 400}}, now, now+10)
	got, err := re.Search(q, now)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range records {
		if p.TExp >= now && q.MatchesPoint(p, 2, true) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("reopened search: %d results, want %d", len(got), want)
	}
	// The reopened tree accepts further updates.
	if err := re.Insert(90000, geom.MovingPoint{Pos: geom.Vec{5, 5}, TExp: geom.Inf()}, now); err != nil {
		t.Fatal(err)
	}
}

func TestSyncAndOpenFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.db")
	store, err := storage.CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rexpConfig()
	tr, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := geom.MovingPoint{Pos: geom.Vec{float64(i%100) * 10, float64(i/100) * 200}, TExp: geom.Inf()}
		if err := tr.Insert(uint32(i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := storage.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	re, err := Open(cfg, store2)
	if err != nil {
		t.Fatal(err)
	}
	if re.LeafEntries() != 500 {
		t.Fatalf("leaf entries = %d after reopen", re.LeafEntries())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Records rebuild sees every entry.
	n := 0
	err = re.Records(func(uint32, geom.MovingPoint) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("Records visited %d entries", n)
	}
}

func TestOpenRejectsMismatchedConfig(t *testing.T) {
	store := storage.NewMemStore()
	tr, err := New(rexpConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		func() Config { c := rexpConfig(); c.Dims = 1; return c }(),
		func() Config { c := rexpConfig(); c.BRKind = hull.KindConservative; return c }(),
		func() Config {
			c := rexpConfig()
			c.ExpireAware = false
			c.StoreBRExp = false
			c.BRKind = hull.KindConservative
			return c
		}(),
		func() Config { c := rexpConfig(); c.StoreBRExp = false; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Open(cfg, store); err == nil {
			t.Errorf("config %d accepted against mismatched store", i)
		}
	}
}

func TestOpenRejectsUnsyncedStore(t *testing.T) {
	store := storage.NewMemStore()
	if _, err := Open(rexpConfig(), store); err == nil {
		t.Fatal("opened an empty store")
	}
}

func TestNewRejectsNonEmptyStore(t *testing.T) {
	store := storage.NewMemStore()
	if _, err := store.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(rexpConfig(), store); err == nil {
		t.Fatal("created a tree over a non-empty store")
	}
}
