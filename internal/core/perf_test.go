package core

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

func BenchmarkInsertUpdate(b *testing.B) {
	tr, _ := New(rexpConfig(), storage.NewMemStore())
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	objs := make([]geom.MovingPoint, n)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 0.003
		oid := uint32(i % n)
		if i >= n {
			tr.Delete(oid, objs[oid], now)
		}
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 60 + rng.Float64()*60,
		}
		tr.Insert(oid, p, now)
		objs[oid] = tr.prepare(p)
	}
}
