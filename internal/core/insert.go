package core

import (
	"fmt"
	"sort"

	"rexptree/internal/geom"
	"rexptree/internal/obs"
	"rexptree/internal/storage"
)

// orphan is an entry displaced during CondenseTree, remembered with
// the tree level it must be reinserted at (paper §4.3, step CT1).
type orphan struct {
	e     entry
	level int
}

// Insert adds (or re-adds after an update) the trajectory record of
// the object with the given id.  now is the current time; it must not
// run backwards.  The record is quantized to the float32 precision of
// the page format.
func (t *Tree) Insert(oid uint32, p geom.MovingPoint, now float64) error {
	t.advance(now)
	p = t.prepare(p)
	t.reinsertedAt = make(map[int]bool)
	t.leafEntries++
	t.tickUI()
	if err := t.placeEntry(orphan{e: entry{id: oid, rect: geom.PointTPRect(p)}, level: 0}); err != nil {
		return err
	}
	t.publishOp()
	return t.finishOp()
}

// placeEntry inserts an entry at its level and drains the resulting
// orphans — the shared tail of the insertion and deletion algorithms
// (CondenseTree, §4.3).
func (t *Tree) placeEntry(o orphan) error {
	var orphans []orphan
	if err := t.insertOrphan(o, &orphans); err != nil {
		return err
	}
	if err := t.drainOrphans(&orphans); err != nil {
		return err
	}
	return t.shrinkRoot()
}

// drainOrphans reinserts displaced entries, highest level first
// (CT3).  Reinserting may displace further entries; the loop runs
// until the list is empty.
func (t *Tree) drainOrphans(orphans *[]orphan) error {
	for len(*orphans) > 0 {
		// Pop the orphan with the highest level; among equals, FIFO
		// (forced reinsertion appends closest-first, so this performs
		// the R*-tree's "close reinsert").
		best := 0
		for i, o := range *orphans {
			if o.level > (*orphans)[best].level {
				best = i
			}
		}
		o := (*orphans)[best]
		*orphans = append((*orphans)[:best], (*orphans)[best+1:]...)
		if t.met != nil {
			t.met.OrphansReinserted.Inc()
			t.met.Emit(obs.Event{Kind: obs.EvOrphanReinserted, Level: o.level, N: 1})
		}
		if err := t.insertOrphan(o, orphans); err != nil {
			return err
		}
	}
	return nil
}

// insertOrphan places one entry into a node at its level and
// propagates the structural consequences up the tree.
func (t *Tree) insertOrphan(o orphan, orphans *[]orphan) error {
	rootNode, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	if len(rootNode.entries) == 0 && rootNode.level != o.level {
		// CT3.1: the root is empty (everything below expired or was
		// orphaned); restart the tree at the orphan's level.
		if err := t.replaceEmptyRoot(o.level); err != nil {
			return err
		}
		rootNode, err = t.readNode(t.root)
		if err != nil {
			return err
		}
	}
	if o.level >= t.height {
		return fmt.Errorf("core: orphan level %d above root level %d", o.level, t.height-1)
	}
	path := []*node{rootNode}
	for n := rootNode; n.level > o.level; {
		idx := t.chooseChild(n, o.e.rect)
		child, err := t.readNode(n.entries[idx].child())
		if err != nil {
			return err
		}
		path = append(path, child)
		n = child
	}
	target := path[len(path)-1]
	if err := t.purgeNode(target); err != nil {
		return err
	}
	target.entries = append(target.entries, o.e)
	return t.propagateUp(path, orphans)
}

// replaceEmptyRoot frees the current (empty) root and installs a fresh
// empty root at the given level.
func (t *Tree) replaceEmptyRoot(level int) error {
	old, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	fresh, err := t.allocNode(level)
	if err != nil {
		return err
	}
	if err := t.writeNode(fresh); err != nil {
		return err
	}
	if err := t.setRoot(fresh.id); err != nil {
		return err
	}
	t.height = level + 1
	return t.freeNode(old)
}

// chooseChild implements the R^exp-tree's ChooseSubtree heuristic:
// minimal enlargement of the area integral (Eq. 1), ties broken by
// smaller area integral.  Unlike the R*-tree it does not use overlap
// enlargement, which keeps the algorithm linear (§4.2.2).  Expired
// entries are never chosen while any live entry exists.
func (t *Tree) chooseChild(n *node, r geom.TPRect) int {
	if t.met != nil {
		t.met.ChooseSubtree.Inc()
	}
	if t.cfg.UseOverlapHeuristic && n.level == 1 {
		if best := t.chooseChildOverlap(n, r); best >= 0 {
			return best
		}
	}
	rNew := r
	rNew.TExp = t.decisionExp(r, n.level-1)
	best := -1
	bestEnl, bestArea := 0.0, 0.0
	for i := range n.entries {
		e := &n.entries[i]
		if t.isExpired(&e.rect, n.level) {
			continue
		}
		er := e.rect
		er.TExp = t.decisionExp(e.rect, n.level)
		end := t.metricEnd(er.TExp, rNew.TExp)
		area := geom.AreaIntegral(er, t.Now(), end, t.cfg.Dims)
		union := geom.UnionConservative(er, rNew, t.Now(), t.cfg.Dims)
		enl := geom.AreaIntegral(union, t.Now(), end, t.cfg.Dims) - area
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	if best < 0 {
		// Every entry is expired; descend anywhere — the subtree will
		// be purged as soon as it is modified.
		best = 0
	}
	return best
}

// chooseChildOverlap is the R*-tree's overlap-enlargement criterion
// for the level above the leaves, with the objective replaced by its
// time integral (Eq. 1): pick the child whose overlap integral with
// its siblings grows least when extended by the new entry; break ties
// by area-integral enlargement.  Quadratic in the fan-out; the paper
// found it not worth the cost (§4.2.2).  Returns -1 when no live
// child exists.
func (t *Tree) chooseChildOverlap(n *node, r geom.TPRect) int {
	rNew := r
	rNew.TExp = t.decisionExp(r, n.level-1)
	best := -1
	bestOv, bestEnl := 0.0, 0.0
	for i := range n.entries {
		e := &n.entries[i]
		if t.isExpired(&e.rect, n.level) {
			continue
		}
		er := e.rect
		er.TExp = t.decisionExp(e.rect, n.level)
		end := t.metricEnd(er.TExp, rNew.TExp)
		union := geom.UnionConservative(er, rNew, t.Now(), t.cfg.Dims)
		var dOv float64
		for j := range n.entries {
			if j == i {
				continue
			}
			s := &n.entries[j]
			if t.isExpired(&s.rect, n.level) {
				continue
			}
			dOv += geom.OverlapIntegral(union, s.rect, t.Now(), end, t.cfg.Dims) -
				geom.OverlapIntegral(er, s.rect, t.Now(), end, t.cfg.Dims)
		}
		enl := geom.AreaIntegral(union, t.Now(), end, t.cfg.Dims) -
			geom.AreaIntegral(er, t.Now(), end, t.cfg.Dims)
		if best < 0 || dOv < bestOv || (dOv == bestOv && enl < bestEnl) {
			best, bestOv, bestEnl = i, dOv, enl
		}
	}
	return best
}

// propagateUp is the paper's PropagateUp (§4.3): walking the loaded
// path bottom-up, it purges expired entries from each modified node,
// resolves overflow (forced reinsertion or split) and underflow
// (orphaning), and refreshes the parent's bounding rectangle.
func (t *Tree) propagateUp(path []*node, orphans *[]orphan) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		isRoot := i == 0
		if err := t.purgeNode(n); err != nil {
			return err
		}
		var parent *node
		if !isRoot {
			parent = path[i-1]
		}
		switch {
		case len(n.entries) > t.lay.cap(n.level):
			if !isRoot && t.cfg.ReinsertFrac > 0 && !t.reinsertedAt[n.level] {
				// PU1, first option: forced reinsertion, once per level
				// per operation.
				t.reinsertedAt[n.level] = true
				moved := t.pickReinsert(n)
				if t.met != nil {
					t.met.ForcedReinserts.Inc()
					t.met.Emit(obs.Event{Kind: obs.EvForcedReinsert, Level: n.level, N: len(moved)})
				}
				for _, e := range moved {
					*orphans = append(*orphans, orphan{e: e, level: n.level})
				}
				if err := t.writeNode(n); err != nil {
					return err
				}
				if err := t.refreshParentEntry(parent, n); err != nil {
					return err
				}
				continue
			}
			// PU1, second option: split.
			sib, err := t.split(n)
			if err != nil {
				return err
			}
			if isRoot {
				return t.growRoot(n, sib)
			}
			if err := t.refreshParentEntry(parent, n); err != nil {
				return err
			}
			parent.entries = append(parent.entries, entry{id: uint32(sib.id), rect: t.computeBR(sib)})
		case !isRoot && len(n.entries) < t.lay.min(n.level):
			// PU2: orphan the live entries and drop the node.
			if t.met != nil {
				t.met.Condenses.Inc()
				t.met.Emit(obs.Event{Kind: obs.EvCondense, Level: n.level, N: len(n.entries)})
			}
			for _, e := range n.entries {
				*orphans = append(*orphans, orphan{e: e, level: n.level})
			}
			if err := t.freeNode(n); err != nil {
				return err
			}
			if err := t.removeParentEntry(parent, n.id); err != nil {
				return err
			}
		default:
			if err := t.writeNode(n); err != nil {
				return err
			}
			if !isRoot {
				if err := t.refreshParentEntry(parent, n); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// refreshParentEntry recomputes the child's bounding rectangle in the
// parent (PU3).  The parent is written when the propagation reaches
// it.
func (t *Tree) refreshParentEntry(parent, child *node) error {
	for i := range parent.entries {
		if parent.entries[i].child() == child.id {
			parent.entries[i].rect = t.computeBR(child)
			return nil
		}
	}
	return fmt.Errorf("core: node %d not found in parent %d", child.id, parent.id)
}

// removeParentEntry drops the entry pointing at the freed child.
func (t *Tree) removeParentEntry(parent *node, child storage.PageID) error {
	for i := range parent.entries {
		if parent.entries[i].child() == child {
			parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("core: freed node %d not found in parent %d", child, parent.id)
}

// growRoot installs a new root above the two halves of a root split.
func (t *Tree) growRoot(a, b *node) error {
	root, err := t.allocNode(a.level + 1)
	if err != nil {
		return err
	}
	root.entries = []entry{
		{id: uint32(a.id), rect: t.computeBR(a)},
		{id: uint32(b.id), rect: t.computeBR(b)},
	}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.height = root.level + 1
	return t.setRoot(root.id)
}

// shrinkRoot implements CT4: while the root is internal and holds a
// single entry, its child becomes the new root.
func (t *Tree) shrinkRoot() error {
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if root.level == 0 || len(root.entries) != 1 {
			return nil
		}
		child := root.entries[0].child()
		if err := t.setRoot(child); err != nil {
			return err
		}
		t.height--
		if err := t.freeNode(root); err != nil {
			return err
		}
	}
}

// pickReinsert removes the ReinsertFrac share of n's entries whose
// center distance integral from the node's bounding rectangle is
// largest (the R*-tree heuristic with the time-integral metric of
// Eq. 1) and returns them ordered closest-first.
func (t *Tree) pickReinsert(n *node) []entry {
	nodeBR := t.computeBR(n)
	end := t.metricEnd(t.decisionExp(nodeBR, n.level+1))
	type scored struct {
		e entry
		d float64
	}
	s := make([]scored, len(n.entries))
	for i, e := range n.entries {
		s[i] = scored{e, geom.CenterDistIntegral(e.rect, nodeBR, t.Now(), end, t.cfg.Dims)}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].d > s[j].d })
	p := int(t.cfg.ReinsertFrac * float64(len(n.entries)))
	if p < 1 {
		p = 1
	}
	removed := s[:p]
	keep := make([]entry, 0, len(n.entries)-p)
	for _, sc := range s[p:] {
		keep = append(keep, sc.e)
	}
	n.entries = keep
	// Closest-first ordering for reinsertion.
	out := make([]entry, p)
	for i, sc := range removed {
		out[p-1-i] = sc.e
	}
	return out
}
