package core

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// TestOracle3D exercises the engine in three dimensions (the paper's
// structure supports one to three): aircraft-like objects with
// altitude, queried with 3-D boxes, checked against brute force.
func TestOracle3D(t *testing.T) {
	cfg := rexpConfig()
	cfg.Dims = 3
	cfg.World = geom.Rect{Lo: geom.Vec{0, 0, 0}, Hi: geom.Vec{1000, 1000, 15}}
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(66))
	oracle := map[uint32]geom.MovingPoint{}
	now := 0.0
	for i := 0; i < 4000; i++ {
		now += 0.02
		oid := uint32(i % 1500)
		if old, ok := oracle[oid]; ok {
			found, err := tr.Delete(oid, old, now)
			if err != nil {
				t.Fatal(err)
			}
			if found != (old.TExp >= now) {
				t.Fatalf("step %d: delete found=%v texp=%v now=%v", i, found, old.TExp, now)
			}
		}
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 12},
			Vel:  geom.Vec{rng.Float64()*12 - 6, rng.Float64()*12 - 6, rng.Float64()*0.2 - 0.1},
			TExp: now + 10 + rng.Float64()*80,
		}
		if err := tr.Insert(oid, p, now); err != nil {
			t.Fatal(err)
		}
		oracle[oid] = tr.prepare(p)

		if i%200 == 199 {
			var q geom.Query
			var r geom.Rect
			for d := 0; d < 2; d++ {
				a := rng.Float64() * 900
				r.Lo[d], r.Hi[d] = a, a+100
			}
			r.Lo[2], r.Hi[2] = rng.Float64()*8, rng.Float64()*8+4
			t1 := now + rng.Float64()*10
			q = geom.Window(r, t1, t1+rng.Float64()*10)
			got, err := tr.Search(q, now)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, p := range oracle {
				if p.TExp >= now && q.MatchesPoint(p, 3, true) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("step %d: 3-D query got %d, want %d", i, len(got), want)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// 3-D layout sanity: leaf entries are 4+24+4 = 32 bytes.
	if got := tr.LeafCapacity(); got != (storage.PageSize-nodeHeaderSize)/32 {
		t.Errorf("3-D leaf capacity = %d", got)
	}
}

// TestBufferSizeSensitivity reproduces the qualitative effect of
// buffering (Leutenegger & Lopez, cited in §5.1): larger buffer pools
// mean fewer misses per query.
func TestBufferSizeSensitivity(t *testing.T) {
	searchIO := func(buffer int) float64 {
		cfg := rexpConfig()
		cfg.BufferPages = buffer
		tr := newTestTree(t, cfg)
		rng := rand.New(rand.NewSource(13))
		now := 0.0
		for i := 0; i < 6000; i++ {
			now += 0.01
			p := geom.MovingPoint{
				Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
				Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
				TExp: now + 200,
			}
			if err := tr.Insert(uint32(i), p, now); err != nil {
				t.Fatal(err)
			}
		}
		tr.ResetIOStats()
		queries := 0
		for i := 0; i < 100; i++ {
			a := rng.Float64() * 950
			q := geom.Timeslice(geom.Rect{Lo: geom.Vec{a, a}, Hi: geom.Vec{a + 50, a + 50}}, now+1)
			if _, err := tr.Search(q, now); err != nil {
				t.Fatal(err)
			}
			queries++
		}
		return float64(tr.IOStats().Reads) / float64(queries)
	}
	small := searchIO(4)
	large := searchIO(40)
	if small <= large {
		t.Errorf("search I/O with 4-page buffer (%v) should exceed 40-page buffer (%v)", small, large)
	}
}
