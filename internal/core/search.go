package core

import (
	"sync"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// Result is one object reported by a query.
type Result struct {
	OID   uint32
	Point geom.MovingPoint
}

// TravStats accumulates one traversal's node and page accounting for
// query tracing: how many nodes it visited, how many leaf entries it
// scanned, and how its page requests split between buffer-pool hits
// and store reads.  A nil *TravStats disables the accounting.
type TravStats struct {
	Nodes  uint64 // nodes visited
	Leaves uint64 // leaf entries examined
	Reads  uint64 // page requests that missed the buffer and read the store
	Hits   uint64 // page requests served from the buffer pool

	// Snapshot read path only (zero on the locked path).
	SnapHits   uint64 // nodes served from version chains, no lock taken
	SnapMisses uint64 // defensive fallbacks through the buffer pool
	PinNanos   int64  // time spent pinning the epoch
}

// Search returns the objects whose predicted trajectories intersect
// the query.  In expiration-aware mode, entries that have expired by
// the current time are invisible and intersection with a bounding
// rectangle is only checked up to the rectangle's (stored or derived)
// expiration time (§4.1.5).  In plain TPR-tree mode, expiration times
// are ignored entirely, so results may contain objects whose
// information has expired — the false drops the paper's §3 discusses.
func (t *Tree) Search(q geom.Query, now float64) ([]Result, error) {
	return t.SearchStats(q, now, nil)
}

// SearchStats is Search plus per-traversal accounting into st (which
// may be nil).  The traversal, result set and metric side effects are
// identical to Search.
func (t *Tree) SearchStats(q geom.Query, now float64, st *TravStats) ([]Result, error) {
	var out []Result
	err := t.SearchFuncStats(q, now, st, func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// stackPool recycles traversal stacks across queries so the hot path
// does not allocate one per call.  The pool stores pointers to slices
// so that Put does not itself allocate an interface box.
var stackPool = sync.Pool{New: func() any {
	s := make([]storage.PageID, 0, 64)
	return &s
}}

// SearchFunc streams matching objects to fn as the traversal finds
// them, stopping early when fn returns false.  It avoids materializing
// large result sets, and — with a warm buffer pool — runs without heap
// allocations (the traversal stack is pooled).
func (t *Tree) SearchFunc(q geom.Query, now float64, fn func(Result) bool) error {
	return t.SearchFuncStats(q, now, nil, fn)
}

// SearchFuncStats is SearchFunc plus per-traversal accounting into st
// (which may be nil — the common, untraced path).
func (t *Tree) SearchFuncStats(q geom.Query, now float64, st *TravStats, fn func(Result) bool) error {
	t.advance(now)
	var nodes, leaves uint64
	sp := stackPool.Get().(*[]storage.PageID)
	stack := append((*sp)[:0], t.root)
	defer func() {
		*sp = stack[:0]
		stackPool.Put(sp)
	}()
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNodeStats(id, st)
		if err != nil {
			t.addQueryStats(nodes, leaves, st)
			return err
		}
		nodes++
		if n.level == 0 {
			leaves += uint64(len(n.entries))
		}
		for i := range n.entries {
			e := &n.entries[i]
			if t.isExpired(&e.rect, n.level) {
				continue
			}
			if n.level == 0 {
				p := e.point()
				if q.MatchesPoint(p, t.cfg.Dims, t.cfg.ExpireAware) {
					if !fn(Result{OID: e.id, Point: p}) {
						t.addQueryStats(nodes, leaves, st)
						return nil
					}
				}
				continue
			}
			r := e.rect
			r.TExp = t.effExp(e.rect, n.level)
			if q.MatchesRect(r, t.cfg.Dims, t.cfg.ExpireAware) {
				stack = append(stack, e.child())
			}
		}
	}
	t.addQueryStats(nodes, leaves, st)
	return nil
}

// addQueryStats folds a query's locally accumulated traversal counts
// into the metric counters (and the per-traversal stats when tracing),
// so hot loops pay one atomic add per query rather than one per node.
func (t *Tree) addQueryStats(nodes, leaves uint64, st *TravStats) {
	if st != nil {
		st.Nodes += nodes
		st.Leaves += leaves
	}
	if t.met == nil {
		return
	}
	t.met.NodeVisits.Add(nodes)
	t.met.LeafScans.Add(leaves)
}

// EntryStats walks the leaf level and reports how many stored leaf
// entries are live versus expired at the current time.  It is a
// diagnostic (used to validate the lazy-purging claim of §5.4) and
// charges I/O like any other traversal.
func (t *Tree) EntryStats() (live, expired int, err error) {
	err = t.walk(t.root, func(n *node) error {
		if n.level != 0 {
			return nil
		}
		for _, e := range n.entries {
			if e.rect.TExp < t.Now() {
				expired++
			} else {
				live++
			}
		}
		return nil
	})
	return live, expired, err
}

// NodeCount returns the number of nodes per level, root last.
func (t *Tree) NodeCount() ([]int, error) {
	counts := make([]int, t.height)
	err := t.walk(t.root, func(n *node) error {
		counts[n.level]++
		return nil
	})
	return counts, err
}

// walk applies fn to every node in depth-first order.
func (t *Tree) walk(id storage.PageID, fn func(*node) error) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if err := fn(n); err != nil {
		return err
	}
	if n.level == 0 {
		return nil
	}
	for _, e := range n.entries {
		if err := t.walk(e.child(), fn); err != nil {
			return err
		}
	}
	return nil
}
