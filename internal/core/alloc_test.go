package core

import (
	"math"
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// buildQueryTree fills a tree whose pages all fit in the buffer pool,
// so query benchmarks measure the in-memory hot path.
func buildQueryTree(tb testing.TB, n int) *Tree {
	tb.Helper()
	cfg := rexpConfig()
	cfg.BufferPages = 512
	tr, err := New(cfg, storage.NewMemStore())
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: math.Inf(1),
		}
		if err := tr.Insert(uint32(i), p, 0); err != nil {
			tb.Fatal(err)
		}
	}
	return tr
}

var windowQuery = geom.Window(geom.Rect{Lo: geom.Vec{400, 400}, Hi: geom.Vec{600, 600}}, 0, 10)

// TestSearchFuncAllocs pins the zero-allocation contract of the query
// hot path: with a warm buffer pool and a streaming callback, a window
// search must not allocate (the traversal stack is pooled).  The bound
// of 2 leaves room for a pool refill after a GC.
func TestSearchFuncAllocs(t *testing.T) {
	tr := buildQueryTree(t, 2000)
	found := 0
	fn := func(Result) bool { found++; return true }
	if err := tr.SearchFunc(windowQuery, 0, fn); err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("warmup query matched nothing; the workload is broken")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := tr.SearchFunc(windowQuery, 0, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("SearchFunc allocates %.1f objects per query, want <= 2", allocs)
	}
}

func BenchmarkWindowSearchFunc(b *testing.B) {
	tr := buildQueryTree(b, 2000)
	fn := func(Result) bool { return true }
	if err := tr.SearchFunc(windowQuery, 0, fn); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.SearchFunc(windowQuery, 0, fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestWarm(b *testing.B) {
	tr := buildQueryTree(b, 2000)
	if _, err := tr.Nearest(geom.Vec{500, 500}, 0, 10, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Nearest(geom.Vec{500, 500}, 0, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}
