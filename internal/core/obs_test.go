package core

import (
	"math/rand"
	"testing"

	"rexptree/internal/geom"
	"rexptree/internal/obs"
)

// recorder captures the event stream of one operation at a time.
type recorder struct{ events []obs.Event }

func (r *recorder) Observe(e obs.Event) { r.events = append(r.events, e) }
func (r *recorder) reset()              { r.events = r.events[:0] }

func obsConfig() (Config, *obs.Metrics, *recorder) {
	met := obs.New()
	rec := &recorder{}
	met.Observer = rec
	cfg := rexpConfig()
	cfg.Metrics = met
	return cfg, met, rec
}

func randPoint(rng *rand.Rand, texp float64) geom.MovingPoint {
	return geom.MovingPoint{
		Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
		Vel:  geom.Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
		TExp: texp,
	}
}

// TestObserverInsertSplitOrdering fills the root leaf to overflow: the
// overflowing insertion must deliver exactly one split event (the root
// never uses forced reinsertion), with counters in agreement.
func TestObserverInsertSplitOrdering(t *testing.T) {
	cfg, met, rec := obsConfig()
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(7))
	cap := tr.LeafCapacity()
	for i := 0; i < cap; i++ {
		if err := tr.Insert(uint32(i), randPoint(rng, 1e9), 0); err != nil {
			t.Fatal(err)
		}
	}
	if met.Splits.Load() != 0 {
		t.Fatalf("splits = %d before overflow", met.Splits.Load())
	}
	rec.reset()
	if err := tr.Insert(uint32(cap), randPoint(rng, 1e9), 0); err != nil {
		t.Fatal(err)
	}
	var splits []obs.Event
	for _, e := range rec.events {
		switch e.Kind {
		case obs.EvSplit:
			splits = append(splits, e)
		case obs.EvCondense, obs.EvPurge, obs.EvForcedReinsert:
			t.Errorf("unexpected %v event during root split", e.Kind)
		}
	}
	if len(splits) != 1 {
		t.Fatalf("split events = %d, want 1", len(splits))
	}
	if splits[0].Level != 0 || splits[0].N < 1 {
		t.Errorf("split event = %+v, want level 0, N >= 1", splits[0])
	}
	if met.Splits.Load() != 1 {
		t.Errorf("splits counter = %d, want 1", met.Splits.Load())
	}
	if tr.Height() != 2 {
		t.Errorf("height = %d after root split, want 2", tr.Height())
	}
}

// checkOrphanOrdering verifies the stream invariant that every
// orphan-reinserted event is preceded by the condense or forced-
// reinsert events that produced the orphans: at every prefix of the
// stream, the orphans reinserted never exceed the orphans created.
func checkOrphanOrdering(t *testing.T, events []obs.Event) {
	t.Helper()
	created, reinserted := 0, 0
	for i, e := range events {
		switch e.Kind {
		case obs.EvCondense, obs.EvForcedReinsert:
			created += e.N
		case obs.EvOrphanReinserted:
			reinserted += e.N
		}
		if reinserted > created {
			t.Fatalf("event %d: %d orphans reinserted but only %d created so far", i, reinserted, created)
		}
	}
}

// TestObserverForcedReinsertOrdering grows the tree past one level and
// checks that forced reinsertion announces the displaced entries
// before they are reinserted as orphans.
func TestObserverForcedReinsertOrdering(t *testing.T) {
	cfg, met, rec := obsConfig()
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(8))
	n := 3 * tr.LeafCapacity()
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint32(i), randPoint(rng, 1e9), 0); err != nil {
			t.Fatal(err)
		}
	}
	if met.ForcedReinserts.Load() == 0 {
		t.Fatal("no forced reinsertion in an overflowing workload")
	}
	if met.OrphansReinserted.Load() == 0 {
		t.Fatal("no orphans reinserted despite forced reinsertion")
	}
	checkOrphanOrdering(t, rec.events)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestObserverDeleteCondenseOrdering deletes entries until a leaf
// underflows: the dissolving node's condense event must precede the
// reinsertion events of the entries it orphaned.
func TestObserverDeleteCondenseOrdering(t *testing.T) {
	cfg, met, rec := obsConfig()
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(9))
	n := 3 * tr.LeafCapacity()
	pts := make([]geom.MovingPoint, n)
	for i := range pts {
		pts[i] = randPoint(rng, 1e9)
		if err := tr.Insert(uint32(i), pts[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d; need internal nodes to underflow a leaf", tr.Height())
	}
	sawCondense := false
	for i := 0; i < n && !sawCondense; i++ {
		rec.reset()
		found, err := tr.Delete(uint32(i), pts[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("entry %d not found", i)
		}
		firstCondense, firstOrphan := -1, -1
		condensed, orphaned := 0, 0
		for j, e := range rec.events {
			switch e.Kind {
			case obs.EvCondense:
				if firstCondense < 0 {
					firstCondense = j
				}
				condensed += e.N
			case obs.EvOrphanReinserted:
				if firstOrphan < 0 {
					firstOrphan = j
				}
				orphaned += e.N
			}
		}
		if firstCondense < 0 {
			continue
		}
		sawCondense = true
		if firstOrphan >= 0 && firstOrphan < firstCondense {
			t.Fatalf("orphan reinserted (event %d) before the condense that created it (event %d)", firstOrphan, firstCondense)
		}
		if orphaned < condensed {
			t.Errorf("condense orphaned %d entries but only %d were reinserted", condensed, orphaned)
		}
		checkOrphanOrdering(t, rec.events)
	}
	if !sawCondense {
		t.Fatal("no condense observed across the deletion sweep")
	}
	if met.Condenses.Load() == 0 {
		t.Error("condense counter still zero")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryCountersAccumulate checks the per-query node-visit and
// leaf-scan counters and the ChooseSubtree descent counter.
func TestQueryCountersAccumulate(t *testing.T) {
	cfg, met, _ := obsConfig()
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(10))
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint32(i), randPoint(rng, 1e9), 0); err != nil {
			t.Fatal(err)
		}
	}
	if met.ChooseSubtree.Load() == 0 {
		t.Error("no ChooseSubtree descents counted during insertions")
	}
	visits, scans := met.NodeVisits.Load(), met.LeafScans.Load()
	if visits != 0 || scans != 0 {
		t.Fatalf("query counters moved before any query: visits=%d scans=%d", visits, scans)
	}
	world := geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}
	res, err := tr.Search(geom.Timeslice(world, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("whole-world query found %d of %d", len(res), n)
	}
	if met.NodeVisits.Load() == 0 {
		t.Error("search did not count node visits")
	}
	if met.LeafScans.Load() < n {
		t.Errorf("leaf scans = %d after a whole-world query over %d entries", met.LeafScans.Load(), n)
	}
	// Nearest-neighbor queries share the counters.
	visits = met.NodeVisits.Load()
	if _, err := tr.Nearest(geom.Vec{500, 500}, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if met.NodeVisits.Load() <= visits {
		t.Error("nearest did not count node visits")
	}
}

// TestPurgeCountersMassExpiry replays the Figure 8 cascade with
// instrumentation attached: lazy purging must account the dropped
// entries and freed subtrees, with events matching the counters.
func TestPurgeCountersMassExpiry(t *testing.T) {
	cfg, met, rec := obsConfig()
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(11))
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint32(i), randPoint(rng, 10+rng.Float64()*5), 1); err != nil {
			t.Fatal(err)
		}
	}
	rec.reset()
	// Everything is dead by t=15; the next insertions purge lazily.
	for i := 0; i < 40; i++ {
		if err := tr.Insert(uint32(n+i), randPoint(rng, 200), 100); err != nil {
			t.Fatal(err)
		}
	}
	purged := met.ExpiredPurged.Load()
	if purged == 0 {
		t.Fatal("mass expiry purged nothing")
	}
	var purgeEventN, freedEvents uint64
	for _, e := range rec.events {
		switch e.Kind {
		case obs.EvPurge:
			if e.N < 1 {
				t.Errorf("purge event with N=%d", e.N)
			}
			purgeEventN += uint64(e.N)
		case obs.EvSubtreeFreed:
			freedEvents += uint64(e.N)
		}
	}
	if purgeEventN == 0 {
		t.Error("no purge events despite purged entries")
	}
	// Entries dropped via freed subtrees are counted on top of the
	// per-node purge events.
	if purged < purgeEventN {
		t.Errorf("ExpiredPurged = %d, less than the %d announced by purge events", purged, purgeEventN)
	}
	if met.SubtreesFreed.Load() != freedEvents {
		t.Errorf("SubtreesFreed = %d but events announced %d", met.SubtreesFreed.Load(), freedEvents)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
