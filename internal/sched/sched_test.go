package sched

import (
	"math/rand"
	"testing"

	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/hull"
	"rexptree/internal/storage"
)

func newIndex(t *testing.T, expireAware bool) *Index {
	t.Helper()
	cfg := core.Config{Dims: 2, BufferPages: 20, Seed: 1, BRKind: hull.KindConservative}
	if expireAware {
		cfg.ExpireAware = true
		cfg.StoreBRExp = true
		cfg.AlgsUseExp = true
		cfg.BRKind = hull.KindNearOptimal
	}
	tr, err := core.New(cfg, storage.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(tr, storage.NewMemStore(), 20)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

var world = geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}

func TestScheduledDeletionRemovesExpired(t *testing.T) {
	for _, aware := range []bool{false, true} {
		x := newIndex(t, aware)
		x.Insert(1, geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: 10}, 0)
		x.Insert(2, geom.MovingPoint{Pos: geom.Vec{200, 200}, TExp: 1000}, 0)
		if x.QueueLen() != 2 {
			t.Fatalf("aware=%v: queue len %d", aware, x.QueueLen())
		}
		if err := x.ProcessDue(50); err != nil {
			t.Fatal(err)
		}
		if x.QueueLen() != 1 {
			t.Fatalf("aware=%v: queue len %d after processing", aware, x.QueueLen())
		}
		// Even a TPR-tree (which never filters by expiry) no longer
		// reports object 1: the entry is physically gone.
		res, err := x.Search(geom.Timeslice(world, 50), 50)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].OID != 2 {
			t.Fatalf("aware=%v: search = %v", aware, res)
		}
		if x.Tree().LeafEntries() != 1 {
			t.Fatalf("aware=%v: %d leaf entries", aware, x.Tree().LeafEntries())
		}
	}
}

func TestDeleteUnschedules(t *testing.T) {
	x := newIndex(t, true)
	p := geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: 10}
	x.Insert(1, p, 0)
	found, err := x.Delete(1, p, 5)
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if x.QueueLen() != 0 {
		t.Fatalf("queue len %d after explicit delete", x.QueueLen())
	}
	// Processing past the old expiry must not fail on the missing
	// record.
	if err := x.ProcessDue(100); err != nil {
		t.Fatal(err)
	}
	// Deleting again reports not found.
	if found, _ := x.Delete(1, p, 6); found {
		t.Fatal("second delete found the object")
	}
}

func TestUpdateBeforeExpiryReschedules(t *testing.T) {
	x := newIndex(t, true)
	p1 := geom.MovingPoint{Pos: geom.Vec{100, 100}, TExp: 10}
	x.Insert(1, p1, 0)
	// Update at t=5: delete + insert with a later expiry.
	if found, _ := x.Delete(1, p1, 5); !found {
		t.Fatal("old record not found")
	}
	p2 := geom.MovingPoint{Pos: geom.Vec{110, 100}, TExp: 60}
	x.Insert(1, p2, 5)
	if x.QueueLen() != 1 {
		t.Fatalf("queue len %d", x.QueueLen())
	}
	if err := x.ProcessDue(30); err != nil {
		t.Fatal(err)
	}
	// Not yet expired under the new schedule.
	res, _ := x.Search(geom.Timeslice(world, 30), 30)
	if len(res) != 1 {
		t.Fatalf("object lost after reschedule: %v", res)
	}
	if err := x.ProcessDue(61); err != nil {
		t.Fatal(err)
	}
	res, _ = x.Search(geom.Timeslice(world, 61), 61)
	if len(res) != 0 {
		t.Fatalf("object survived its expiry: %v", res)
	}
}

func TestScheduledKeepsTreeClean(t *testing.T) {
	// Under a workload with many expirations, the scheduled-deletion
	// index holds zero expired leaf entries at all times.
	x := newIndex(t, true)
	rng := rand.New(rand.NewSource(9))
	now := 0.0
	records := map[uint32]geom.MovingPoint{}
	for i := 0; i < 4000; i++ {
		now += 0.05
		if err := x.ProcessDue(now); err != nil {
			t.Fatal(err)
		}
		oid := uint32(rng.Intn(800))
		if old, ok := records[oid]; ok {
			x.Delete(oid, old, now)
		}
		p := geom.MovingPoint{
			Pos:  geom.Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  geom.Vec{rng.Float64()*6 - 3, rng.Float64()*6 - 3},
			TExp: now + 2 + rng.Float64()*30,
		}
		if err := x.Insert(oid, p, now); err != nil {
			t.Fatal(err)
		}
		records[oid] = p
	}
	live, expired, err := x.Tree().EntryStats()
	if err != nil {
		t.Fatal(err)
	}
	if expired != 0 {
		t.Errorf("expired entries present: %d (live %d)", expired, live)
	}
	if err := x.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if live != x.QueueLen() {
		t.Errorf("queue len %d != live entries %d", x.QueueLen(), live)
	}
}

func TestStatsSeparation(t *testing.T) {
	x := newIndex(t, true)
	for i := 0; i < 500; i++ {
		x.Insert(uint32(i), geom.MovingPoint{
			Pos: geom.Vec{float64(i % 100 * 10), float64(i / 100 * 10)}, TExp: 1000,
		}, float64(i)*0.01)
	}
	if x.TreeStats().IO() == 0 {
		t.Error("no main-tree I/O recorded")
	}
	if x.QueueStats().IO() == 0 {
		t.Error("no queue I/O recorded")
	}
	x.ResetStats()
	if x.TreeStats().IO() != 0 || x.QueueStats().IO() != 0 {
		t.Error("reset failed")
	}
}
