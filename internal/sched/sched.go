// Package sched implements the scheduled-deletion approach of the
// paper's §3: alongside the main index, a B-tree on the composite key
// (expiration time, object id) holds one deletion event per expiring
// entry.  Processing an event removes it from the B-tree and performs
// the deletion in the main tree; updating or deleting an object before
// it expires also updates the queue.
//
// The paper evaluates this approach both over the TPR-tree and over
// the R^exp-tree (Figures 13-16), and notes that its competitiveness
// hinges on ignoring the B-tree's own I/O — which is why this package
// tracks main-tree and B-tree I/O separately.
package sched

import (
	"rexptree/internal/btree"
	"rexptree/internal/core"
	"rexptree/internal/geom"
	"rexptree/internal/storage"
)

// Index is a tree with eagerly scheduled deletions of expiring
// entries.
type Index struct {
	tree  *core.Tree
	queue *btree.BTree

	// records keeps the last inserted record per object: the deletion
	// in the main tree needs the record to locate the leaf.  It plays
	// the role of the primary object store of a moving-objects
	// database.
	records map[uint32]geom.MovingPoint
}

// New wraps the tree with a scheduled-deletion queue.  queueStore
// backs the B-tree; queueBuffer is its buffer-pool capacity.
func New(tree *core.Tree, queueStore storage.Store, queueBuffer int) (*Index, error) {
	bt, err := btree.New(queueStore, queueBuffer)
	if err != nil {
		return nil, err
	}
	return &Index{tree: tree, queue: bt, records: make(map[uint32]geom.MovingPoint)}, nil
}

// Tree returns the wrapped main tree.
func (x *Index) Tree() *core.Tree { return x.tree }

// QueueLen returns the number of pending deletion events.
func (x *Index) QueueLen() int { return x.queue.Len() }

// ProcessDue pops and executes every deletion event with expiration
// time at or before now.  Each event deletes the expired entry from
// the main tree at exactly its expiration instant, so the deletion
// succeeds even in an expiration-aware tree.
func (x *Index) ProcessDue(now float64) error {
	for {
		k, ok, err := x.queue.Min()
		if err != nil {
			return err
		}
		if !ok || k.TExp > now {
			return nil
		}
		if _, _, err := x.queue.PopMin(); err != nil {
			return err
		}
		rec, ok := x.records[k.OID]
		if !ok {
			continue // already deleted through the front door
		}
		if _, err := x.tree.Delete(k.OID, rec, k.TExp); err != nil {
			return err
		}
		delete(x.records, k.OID)
	}
}

// Insert adds the record to the main tree and schedules its deletion.
func (x *Index) Insert(oid uint32, p geom.MovingPoint, now float64) error {
	if err := x.tree.Insert(oid, p, now); err != nil {
		return err
	}
	stored := x.tree.Stored(p)
	if !geom.IsFinite(stored.TExp) {
		// A plain TPR-tree ignores expiration times, but the whole
		// point of the scheduled-deletion approach is to remove the
		// entry anyway: keep the report's own expiry for the queue.
		stored.TExp = float64(float32(p.TExp))
	}
	x.records[oid] = stored
	if geom.IsFinite(stored.TExp) {
		if _, err := x.queue.Insert(stored.TExp, oid); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the record from the main tree and unschedules its
// deletion event.
func (x *Index) Delete(oid uint32, p geom.MovingPoint, now float64) (bool, error) {
	rec, ok := x.records[oid]
	if !ok {
		// The object has already been removed by a scheduled deletion.
		return false, nil
	}
	found, err := x.tree.Delete(oid, rec, now)
	if err != nil {
		return found, err
	}
	delete(x.records, oid)
	if geom.IsFinite(rec.TExp) {
		if _, err := x.queue.Delete(rec.TExp, oid); err != nil {
			return found, err
		}
	}
	return found, nil
}

// Search queries the main tree.  Callers that account I/O should call
// ProcessDue first and attribute its cost to maintenance.
func (x *Index) Search(q geom.Query, now float64) ([]core.Result, error) {
	return x.tree.Search(q, now)
}

// TreeStats returns the main tree's I/O counters.
func (x *Index) TreeStats() storage.Stats { return x.tree.IOStats() }

// QueueStats returns the B-tree's I/O counters, reported separately
// because the paper's figures exclude them.
func (x *Index) QueueStats() storage.Stats { return x.queue.Stats() }

// ResetStats zeroes both counters.
func (x *Index) ResetStats() {
	x.tree.ResetIOStats()
	x.queue.ResetStats()
}
