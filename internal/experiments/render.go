package experiments

import (
	"fmt"
	"strings"
)

// Render formats the figure as a text table, one row per series and
// one column per x value — the same rows/points the paper plots.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	metricName := map[string]string{
		"search": "avg search I/O per query",
		"update": "avg update I/O per insert/delete",
		"size":   "index size (pages)",
	}[f.Metric]
	fmt.Fprintf(&b, "metric: %s;  x-axis: %s\n\n", metricName, f.XLabel)

	width := 0
	for _, s := range f.Series {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, x := range f.Xs {
		fmt.Fprintf(&b, "%10g", x)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-*s", width+2, s.Label)
		for _, m := range s.Points {
			fmt.Fprintf(&b, "%10.2f", f.Value(m))
		}
		b.WriteByte('\n')
	}
	// Scheduled-deletion variants exclude B-tree I/O above, as in the
	// paper; report it separately when present.
	hasQueue := false
	for _, s := range f.Series {
		for _, m := range s.Points {
			if m.QueueIO > 0 {
				hasQueue = true
			}
		}
	}
	if hasQueue && f.Metric == "update" {
		b.WriteString("\nB-tree I/O per update (excluded above, §3/§5.4):\n")
		for _, s := range f.Series {
			any := false
			for _, m := range s.Points {
				if m.QueueIO > 0 {
					any = true
				}
			}
			if !any {
				continue
			}
			fmt.Fprintf(&b, "%-*s", width+2, s.Label)
			for _, m := range s.Points {
				fmt.Fprintf(&b, "%10.2f", m.QueueIO)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
