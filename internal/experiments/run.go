// Package experiments reproduces the performance study of the paper's
// §5: it replays the workloads of internal/workload against tree
// configurations and collects the metrics plotted in Figures 9-16 —
// average search I/O per query, average update I/O per insertion or
// deletion, and index size in disk pages.
package experiments

import (
	"fmt"

	"rexptree/internal/core"
	"rexptree/internal/obs"
	"rexptree/internal/sched"
	"rexptree/internal/storage"
	"rexptree/internal/workload"
)

// Instrument, when non-nil, is attached to every tree the harness
// builds, so callers (cmd/rexpbench) can expose or dump aggregate
// observability counters across a whole experiment run.  Gauges
// reflect the most recently synced tree.  Set it before running
// figures; it is not safe to change concurrently with Run.
var Instrument *obs.Metrics

// TreeConfig names one index configuration under test.
type TreeConfig struct {
	Label     string
	Core      core.Config
	Scheduled bool // wrap with the B-tree scheduled-deletion queue
}

// Metrics summarizes one workload run.
type Metrics struct {
	Label string
	X     float64 // the varied workload parameter

	SearchIO float64 // average page reads per query
	UpdateIO float64 // average page reads+writes per insertion/deletion (incl. scheduled-deletion maintenance)
	QueueIO  float64 // average B-tree reads+writes per insertion/deletion (scheduled variants; reported separately as in the paper)

	IndexPages  float64 // average index size over the run, in pages
	FinalPages  int
	LeafEntries int     // final physically stored leaf entries
	ExpiredFrac float64 // final fraction of stored leaf entries that are expired

	Queries int
	Updates int // insert + delete operations
}

// Run replays the workload against the configuration and returns its
// metrics.  Both the workload and the tree are deterministic given
// their seeds.
func Run(tc TreeConfig, wp workload.Params) (Metrics, error) {
	gen, err := workload.NewGenerator(wp)
	if err != nil {
		return Metrics{}, err
	}
	if tc.Core.BufferPages == 0 {
		// Scale the buffer with the workload: the paper pairs a
		// 50-page buffer with a ~100k-entry index.  Keeping the
		// buffer-to-index ratio preserves the miss behaviour at
		// reduced scale.
		tc.Core.BufferPages = 50 * gen.Params().Objects / 100000
		if tc.Core.BufferPages < 8 {
			tc.Core.BufferPages = 8
		}
	}
	if Instrument != nil && tc.Core.Metrics == nil {
		tc.Core.Metrics = Instrument
	}
	tree, err := core.New(tc.Core, storage.NewMemStore())
	if err != nil {
		return Metrics{}, err
	}
	defer tree.SyncGauges()
	var queue *sched.Index
	if tc.Scheduled {
		queue, err = sched.New(tree, storage.NewMemStore(), tc.Core.BufferPages)
		if err != nil {
			return Metrics{}, err
		}
	}

	m := Metrics{Label: tc.Label}
	var searchIO, updateIO, queueIO uint64
	var sizeSamples, sizeTotal int

	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if queue != nil {
			// Scheduled-deletion maintenance is charged to updates.
			before, qBefore := tree.IOStats(), queue.QueueStats()
			if err := queue.ProcessDue(op.Time); err != nil {
				return m, err
			}
			updateIO += tree.IOStats().Sub(before).IO()
			queueIO += queue.QueueStats().Sub(qBefore).IO()
		}
		switch op.Kind {
		case workload.OpInsert:
			before := tree.IOStats()
			if queue != nil {
				qBefore := queue.QueueStats()
				err = queue.Insert(op.OID, op.Point, op.Time)
				queueIO += queue.QueueStats().Sub(qBefore).IO()
			} else {
				err = tree.Insert(op.OID, op.Point, op.Time)
			}
			if err != nil {
				return m, fmt.Errorf("insert %d at %v: %w", op.OID, op.Time, err)
			}
			updateIO += tree.IOStats().Sub(before).IO()
			m.Updates++
		case workload.OpDelete:
			before := tree.IOStats()
			if queue != nil {
				qBefore := queue.QueueStats()
				_, err = queue.Delete(op.OID, op.Point, op.Time)
				queueIO += queue.QueueStats().Sub(qBefore).IO()
			} else {
				_, err = tree.Delete(op.OID, op.Point, op.Time)
			}
			if err != nil {
				return m, fmt.Errorf("delete %d at %v: %w", op.OID, op.Time, err)
			}
			updateIO += tree.IOStats().Sub(before).IO()
			m.Updates++
		case workload.OpQuery:
			before := tree.IOStats()
			if _, err := tree.Search(op.Query, op.Time); err != nil {
				return m, fmt.Errorf("query at %v: %w", op.Time, err)
			}
			searchIO += tree.IOStats().Sub(before).Reads
			m.Queries++
			// Queries double as periodic index-size samples.
			sizeTotal += tree.Size()
			sizeSamples++
		}
	}

	if m.Queries > 0 {
		m.SearchIO = float64(searchIO) / float64(m.Queries)
	}
	if m.Updates > 0 {
		m.UpdateIO = float64(updateIO) / float64(m.Updates)
		m.QueueIO = float64(queueIO) / float64(m.Updates)
	}
	if sizeSamples > 0 {
		m.IndexPages = float64(sizeTotal) / float64(sizeSamples)
	}
	m.FinalPages = tree.Size()
	live, expired, err := tree.EntryStats()
	if err != nil {
		return m, err
	}
	m.LeafEntries = live + expired
	if m.LeafEntries > 0 {
		m.ExpiredFrac = float64(expired) / float64(m.LeafEntries)
	}
	return m, nil
}
