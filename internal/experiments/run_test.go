package experiments

import (
	"strings"
	"testing"

	"rexptree/internal/hull"
	"rexptree/internal/workload"
)

// tinyWL is a fast workload for unit tests.
func tinyWL(seed int64) workload.Params {
	return workload.Params{Seed: seed, Objects: 400, Insertions: 4000}
}

func TestRunRexp(t *testing.T) {
	cfg := rexpCfg(hull.KindNearOptimal, false, true, 1)
	// Shrink the buffer below the index size so queries actually miss.
	cfg.BufferPages = 3
	m, err := Run(TreeConfig{Label: "rexp", Core: cfg}, tinyWL(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries == 0 || m.Updates == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.SearchIO <= 0 || m.UpdateIO <= 0 {
		t.Fatalf("no I/O recorded: %+v", m)
	}
	if m.QueueIO != 0 {
		t.Fatalf("unscheduled run reported queue I/O: %+v", m)
	}
	if m.ExpiredFrac > 0.1 {
		t.Errorf("expired fraction %v too high", m.ExpiredFrac)
	}
}

func TestRunScheduledKeepsZeroExpired(t *testing.T) {
	m, err := Run(TreeConfig{
		Label:     "rexp+sched",
		Core:      rexpCfg(hull.KindNearOptimal, false, true, 1),
		Scheduled: true,
	}, tinyWL(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.ExpiredFrac != 0 {
		t.Errorf("scheduled deletions left expired entries: %v", m.ExpiredFrac)
	}
	if m.QueueIO == 0 {
		t.Error("no B-tree I/O recorded for scheduled variant")
	}
}

func TestRunTPRKeepsEverything(t *testing.T) {
	// Without expiration support and with NewOb > 0, dead objects pile
	// up: the TPR index ends larger than the R^exp index.
	wl := tinyWL(3)
	wl.NewOb = 1.5
	tpr, err := Run(TreeConfig{Label: "tpr", Core: tprCfg(1)}, wl)
	if err != nil {
		t.Fatal(err)
	}
	rexp, err := Run(TreeConfig{Label: "rexp", Core: rexpCfg(hull.KindNearOptimal, false, true, 1)}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if tpr.LeafEntries <= rexp.LeafEntries {
		t.Errorf("TPR leaf entries %d <= Rexp %d; turned-off objects were not retained",
			tpr.LeafEntries, rexp.LeafEntries)
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	want := []string{"9", "10", "11", "12", "13", "14", "15", "16"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, err := RunFigure("42", 0.001, 1, nil); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigureTiny(t *testing.T) {
	// A micro-scale run of figure 13 exercises all four comparison
	// indexes end to end.
	lines := 0
	fig, err := RunFigure("13", 0.002, 7, func(string) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(fig.Xs) {
			t.Fatalf("series %q has %d points for %d xs", s.Label, len(s.Points), len(fig.Xs))
		}
	}
	if lines != 4*len(fig.Xs) {
		t.Errorf("progress lines = %d", lines)
	}
	out := fig.Render()
	for _, frag := range []string{"Figure 13", "Rexp-tree", "TPR-tree", "scheduled"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestSpecGrid(t *testing.T) {
	all := specs(1)
	wantSeries := map[string]int{
		"9": 4, "10": 4, "11": 5, "12": 5,
		"13": 4, "14": 4, "15": 4, "16": 4,
	}
	wantMetric := map[string]string{
		"9": "search", "10": "search", "11": "search", "12": "search",
		"13": "search", "14": "search", "15": "size", "16": "update",
	}
	for id, sp := range all {
		if len(sp.trees) != wantSeries[id] {
			t.Errorf("figure %s: %d trees, want %d", id, len(sp.trees), wantSeries[id])
		}
		if sp.metric != wantMetric[id] {
			t.Errorf("figure %s: metric %q, want %q", id, sp.metric, wantMetric[id])
		}
		if len(sp.xs) < 4 {
			t.Errorf("figure %s: only %d x values", id, len(sp.xs))
		}
		// Workload parameters must be valid at every x.
		for _, x := range sp.xs {
			if _, err := workload.NewGenerator(sp.wl(x).Scale(0.001)); err != nil {
				t.Errorf("figure %s at x=%v: %v", id, x, err)
			}
		}
		// Tree configurations must be valid.
		for _, tc := range sp.trees {
			if _, err := Run(tc, workload.Params{Seed: 1, Objects: 100, Insertions: 1000}); err != nil {
				t.Errorf("figure %s, %s: %v", id, tc.Label, err)
			}
		}
	}
	// The ExpT=30 workloads use the shorter query window (§5.1).
	p := specs(1)["9"].wl(30)
	if p.QueryW != 15 {
		t.Errorf("ExpT=30 workload QueryW = %v, want 15", p.QueryW)
	}
	if p = specs(1)["9"].wl(120); p.QueryW != 0 { // defaulted to UI/2 later
		t.Errorf("ExpT=120 workload QueryW = %v, want default", p.QueryW)
	}
}

func TestFigureValue(t *testing.T) {
	m := Metrics{SearchIO: 1, UpdateIO: 2, IndexPages: 3}
	if (Figure{Metric: "search"}).Value(m) != 1 {
		t.Error("search metric")
	}
	if (Figure{Metric: "update"}).Value(m) != 2 {
		t.Error("update metric")
	}
	if (Figure{Metric: "size"}).Value(m) != 3 {
		t.Error("size metric")
	}
}
