package experiments

import (
	"fmt"
	"sort"

	"rexptree/internal/core"
	"rexptree/internal/hull"
	"rexptree/internal/workload"
)

// Series is one line of a figure: a tree configuration evaluated at
// every x value.
type Series struct {
	Label  string
	Points []Metrics
}

// Figure is a reproduced experiment: the paper's figure number, the
// varied workload parameter, the plotted metric, and one series per
// tree configuration.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Metric string // "search" | "update" | "size"
	Xs     []float64
	Series []Series
}

// Value extracts the figure's metric from a run.
func (f Figure) Value(m Metrics) float64 {
	switch f.Metric {
	case "update":
		return m.UpdateIO
	case "size":
		return m.IndexPages
	default:
		return m.SearchIO
	}
}

// rexpCfg builds an R^exp-tree engine configuration.
func rexpCfg(kind hull.Kind, storeBRExp, algsUseExp bool, seed int64) core.Config {
	return core.Config{
		Dims:        2,
		BRKind:      kind,
		ExpireAware: true,
		StoreBRExp:  storeBRExp,
		AlgsUseExp:  algsUseExp,
		Seed:        seed,
	}
}

// tprCfg builds the baseline TPR-tree configuration.
func tprCfg(seed int64) core.Config {
	return core.Config{Dims: 2, BRKind: hull.KindConservative, Seed: seed}
}

// spec declares one figure's experiment grid.
type spec struct {
	id, title, xlabel, metric string
	xs                        []float64
	trees                     []TreeConfig
	wl                        func(x float64) workload.Params
}

// flavorTrees are the four R^exp-tree flavors of Figures 9 and 10:
// recording expiration times in internal entries or not, crossed with
// insertion heuristics honoring expiration times or treating all
// entries as infinite (§5.2).
func flavorTrees(seed int64) []TreeConfig {
	return []TreeConfig{
		{Label: "BRs with exp.t., algs with exp.t.", Core: rexpCfg(hull.KindNearOptimal, true, true, seed)},
		{Label: "BRs w/o exp.t., algs with exp.t.", Core: rexpCfg(hull.KindNearOptimal, false, true, seed)},
		{Label: "BRs with exp.t., algs w/o exp.t.", Core: rexpCfg(hull.KindNearOptimal, true, false, seed)},
		{Label: "BRs w/o exp.t., algs w/o exp.t.", Core: rexpCfg(hull.KindNearOptimal, false, false, seed)},
	}
}

// brTypeTrees are the five bounding-rectangle types of Figures 11 and
// 12 (§5.3).  None records expiration times in internal entries (the
// outcome of §5.2); the two update-minimum variants differ in whether
// the insertion heuristics honor expiration times.
func brTypeTrees(seed int64) []TreeConfig {
	return []TreeConfig{
		{Label: "Static", Core: rexpCfg(hull.KindStatic, false, true, seed)},
		{Label: "Update-minimum, algs w/o exp.t.", Core: rexpCfg(hull.KindUpdateMinimum, false, false, seed)},
		{Label: "Update-minimum, algs with exp.t.", Core: rexpCfg(hull.KindUpdateMinimum, false, true, seed)},
		{Label: "Near-optimal", Core: rexpCfg(hull.KindNearOptimal, false, true, seed)},
		{Label: "Optimal", Core: rexpCfg(hull.KindOptimal, false, true, seed)},
	}
}

// comparisonTrees are the four indexes of Figures 13-16: the
// R^exp-tree, the TPR-tree, and both with B-tree scheduled deletions
// (§5.4).
func comparisonTrees(seed int64) []TreeConfig {
	return []TreeConfig{
		{Label: "Rexp-tree", Core: rexpCfg(hull.KindNearOptimal, false, true, seed)},
		{Label: "TPR-tree", Core: tprCfg(seed)},
		{Label: "Rexp-tree with scheduled deletions", Core: rexpCfg(hull.KindNearOptimal, false, true, seed), Scheduled: true},
		{Label: "TPR-tree with scheduled deletions", Core: tprCfg(seed), Scheduled: true},
	}
}

// expTWorkload builds the network workload with a fixed expiration
// period.  The querying window follows the paper: W = UI/2, except 15
// for ExpT = 30 (§5.1).
func expTWorkload(expT float64, seed int64, uniform bool) workload.Params {
	p := workload.Params{Seed: seed, ExpT: expT, Uniform: uniform}
	if expT == 30 {
		p.QueryW = 15
	}
	return p
}

func specs(seed int64) map[string]spec {
	expTs := []float64{30, 60, 120, 180, 240}
	expDs := []float64{45, 90, 180, 270, 360}
	newObs := []float64{0, 0.5, 1, 1.5, 2}

	newObWL := func(x float64) workload.Params {
		return workload.Params{Seed: seed, NewOb: x}
	}
	expDWL := func(x float64) workload.Params {
		return workload.Params{Seed: seed, ExpD: x}
	}

	return map[string]spec{
		"9": {
			id: "9", title: "Search performance for varying ExpT (near-optimal TPBR flavors)",
			xlabel: "Expiration Period, ExpT", metric: "search", xs: expTs,
			trees: flavorTrees(seed),
			wl:    func(x float64) workload.Params { return expTWorkload(x, seed, false) },
		},
		"10": {
			id: "10", title: "Search performance for varying UI (near-optimal TPBR flavors)",
			xlabel: "Update Interval, UI", metric: "search", xs: []float64{30, 60, 90, 120},
			trees: flavorTrees(seed),
			wl: func(x float64) workload.Params {
				return workload.Params{Seed: seed, UI: x, ExpT: 2 * x}
			},
		},
		"11": {
			id: "11", title: "Search performance for uniform data and varying ExpT (BR types)",
			xlabel: "Expiration Period, ExpT", metric: "search", xs: expTs,
			trees: brTypeTrees(seed),
			wl:    func(x float64) workload.Params { return expTWorkload(x, seed, true) },
		},
		"12": {
			id: "12", title: "Search performance for varying ExpD (BR types)",
			xlabel: "Expiration Distance, ExpD", metric: "search", xs: expDs,
			trees: brTypeTrees(seed),
			wl:    expDWL,
		},
		"13": {
			id: "13", title: "Search performance for varying ExpD (index comparison)",
			xlabel: "Expiration Distance, ExpD", metric: "search", xs: expDs,
			trees: comparisonTrees(seed),
			wl:    expDWL,
		},
		"14": {
			id: "14", title: "Search performance for varying fraction of new objects, NewOb",
			xlabel: "Fraction of New Objects, NewOb", metric: "search", xs: newObs,
			trees: comparisonTrees(seed),
			wl:    newObWL,
		},
		"15": {
			id: "15", title: "Index size for varying fraction of new objects, NewOb",
			xlabel: "Fraction of New Objects, NewOb", metric: "size", xs: newObs,
			trees: comparisonTrees(seed),
			wl:    newObWL,
		},
		"16": {
			id: "16", title: "Update performance for varying fraction of new objects, NewOb",
			xlabel: "Fraction of New Objects, NewOb", metric: "update", xs: newObs,
			trees: comparisonTrees(seed),
			wl:    newObWL,
		},
	}
}

// FigureIDs lists the reproducible figures in order.
func FigureIDs() []string {
	ids := make([]string, 0, 8)
	for id := range specs(0) {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return len(ids[i]) < len(ids[j]) || (len(ids[i]) == len(ids[j]) && ids[i] < ids[j])
	})
	return ids
}

// RunFigure reproduces one figure at the given fraction of the paper's
// workload scale.  progress, if non-nil, is invoked with a log line
// after every completed run.
func RunFigure(id string, scale float64, seed int64, progress func(string)) (Figure, error) {
	sp, ok := specs(seed)[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
	}
	fig := Figure{ID: sp.id, Title: sp.title, XLabel: sp.xlabel, Metric: sp.metric, Xs: sp.xs}
	for _, tc := range sp.trees {
		s := Series{Label: tc.Label}
		for _, x := range sp.xs {
			wp := sp.wl(x).Scale(scale)
			m, err := Run(tc, wp)
			if err != nil {
				return fig, fmt.Errorf("figure %s, %s, x=%v: %w", id, tc.Label, x, err)
			}
			m.X = x
			s.Points = append(s.Points, m)
			if progress != nil {
				progress(fmt.Sprintf("fig %s | %-38s | x=%-5v search=%6.2f update=%5.2f queue=%5.2f pages=%7.0f expired=%.3f",
					id, tc.Label, x, m.SearchIO, m.UpdateIO, m.QueueIO, m.IndexPages, m.ExpiredFrac))
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
