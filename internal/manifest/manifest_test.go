package manifest

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func valid() Manifest {
	return Manifest{
		Version:    Version,
		Shards:     4,
		Hash:       Hash,
		Partition:  "speed",
		SpeedBands: []float64{0.5, 2, 8},
		AutoTuned:  true,
		Generation: 3,
	}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"version 0", func(m *Manifest) { m.Version = 0 }},
		{"future version", func(m *Manifest) { m.Version = Version + 1 }},
		{"no shards", func(m *Manifest) { m.Shards = 0 }},
		{"negative shards", func(m *Manifest) { m.Shards = -2 }},
		{"wrong hash", func(m *Manifest) { m.Hash = "fnv" }},
		{"unknown policy", func(m *Manifest) { m.Partition = "zip" }},
		{"bands under hash", func(m *Manifest) { m.Partition = "hash"; m.SpeedBands = []float64{1} }},
		{"band count", func(m *Manifest) { m.SpeedBands = []float64{1, 2} }},
		{"negative band", func(m *Manifest) { m.SpeedBands = []float64{-1, 2, 8} }},
		{"descending bands", func(m *Manifest) { m.SpeedBands = []float64{2, 1, 8} }},
		{"nan band", func(m *Manifest) { m.SpeedBands = []float64{0.5, math.NaN(), 8} }},
		{"inf band", func(m *Manifest) { m.SpeedBands = []float64{0.5, 2, math.Inf(1)} }},
		{"negative generation", func(m *Manifest) { m.Generation = -1 }},
	}
	for _, c := range cases {
		m := valid()
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", c.name, m)
		}
	}
	// Version 1 (pre-generation) manifests are still readable.
	m := valid()
	m.Version = 1
	m.Generation = 0
	if err := m.Validate(); err != nil {
		t.Errorf("version 1 rejected: %v", err)
	}
	// Equal neighboring bands are an empty band, not an error: tuned
	// quantiles can coincide on degenerate speed distributions.
	m = valid()
	m.SpeedBands = []float64{2, 2, 8}
	if err := m.Validate(); err != nil {
		t.Errorf("equal bands rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range []Manifest{
		valid(),
		{Version: 1, Shards: 1, Hash: Hash, Partition: "hash"},
		{Version: Version, Shards: 8, Hash: Hash, Partition: "hash", Generation: 12},
		{Version: Version, Shards: 2, Hash: Hash, Partition: "speed"}, // untuned: no bands yet
	} {
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestReadWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.manifest")
	if _, found, err := Read(path); err != nil || found {
		t.Fatalf("Read(missing) = found %v, err %v", found, err)
	}
	m := valid()
	if err := Write(path, m); err != nil {
		t.Fatal(err)
	}
	got, found, err := Read(path)
	if err != nil || !found {
		t.Fatalf("Read = found %v, err %v", found, err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("Read = %+v, want %+v", got, m)
	}
	// Write validates: an invalid manifest must not clobber the file.
	bad := m
	bad.Shards = 0
	if err := Write(path, bad); err == nil {
		t.Error("Write accepted an invalid manifest")
	}
	if _, _, err := Read(path); err != nil {
		t.Errorf("previous manifest damaged: %v", err)
	}
	// Corrupt file: error, not found=false.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(path); err == nil {
		t.Error("Read accepted a torn manifest")
	}
}

func TestShardPath(t *testing.T) {
	if got := ShardPath("idx", 0, 3); got != "idx.s3" {
		t.Errorf("gen 0 path = %q", got)
	}
	if got := ShardPath("idx", 2, 0); got != "idx.g2.s0" {
		t.Errorf("gen 2 path = %q", got)
	}
}

func TestShardIndexDistribution(t *testing.T) {
	// The murmur3 finalizer must spread a dense id space evenly.
	const n, ids = 8, 80000
	var counts [n]int
	for id := uint32(0); id < ids; id++ {
		i := ShardIndex(id, n)
		if i < 0 || i >= n {
			t.Fatalf("ShardIndex(%d, %d) = %d out of range", id, n, i)
		}
		counts[i]++
	}
	for i, c := range counts {
		if c < ids/n*8/10 || c > ids/n*12/10 {
			t.Errorf("shard %d holds %d of %d ids (want ~%d)", i, c, ids, ids/n)
		}
	}
}

func TestSpeedBandOf(t *testing.T) {
	bands := []float64{0.5, 2, 8}
	for _, c := range []struct {
		sp   float64
		want int
	}{{0, 0}, {0.49, 0}, {0.5, 1}, {1.99, 1}, {2, 2}, {7.9, 2}, {8, 3}, {100, 3}} {
		if got := SpeedBandOf(bands, c.sp); got != c.want {
			t.Errorf("SpeedBandOf(%v) = %d, want %d", c.sp, got, c.want)
		}
	}
	if got := SpeedBandOf(nil, 5); got != 0 {
		t.Errorf("SpeedBandOf(nil bands) = %d, want 0", got)
	}
}

func TestQuantileBands(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	bands := QuantileBands(samples, 4)
	want := []float64{25, 50, 75}
	if !reflect.DeepEqual(bands, want) {
		t.Errorf("QuantileBands = %v, want %v", bands, want)
	}
	m := Manifest{Version: Version, Shards: 4, Hash: Hash, Partition: "speed", SpeedBands: bands}
	if err := m.Validate(); err != nil {
		t.Errorf("quantile bands do not validate: %v", err)
	}
}

func TestSpeed(t *testing.T) {
	if got := Speed([3]float64{3, 4, 12}, 2); got != 5 {
		t.Errorf("2D speed = %v, want 5", got)
	}
	if got := Speed([3]float64{3, 4, 12}, 3); got != 13 {
		t.Errorf("3D speed = %v, want 13", got)
	}
}

// FuzzManifestRoundTrip feeds arbitrary bytes to Decode; whatever it
// accepts must survive Encode → Decode unchanged (and be valid, since
// Decode validates).  This guards the parser against inputs that
// decode into a state the writer cannot faithfully persist.
func FuzzManifestRoundTrip(f *testing.F) {
	for _, m := range []Manifest{
		valid(),
		{Version: 1, Shards: 4, Hash: Hash, Partition: "hash"},
		{Version: Version, Shards: 2, Hash: Hash, Partition: "speed", SpeedBands: []float64{1.5}, Generation: 1},
	} {
		data, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":2,"shards":1,"hash":"murmur3-fmix32","partition":"hash","generation":7}`))
	f.Add([]byte(`{"version":9,"shards":-1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected input: fine, just must not panic
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Decode returned an invalid manifest %+v: %v", m, err)
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v): %v", m, err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-Decode of %s: %v", enc, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: %+v -> %s -> %+v", m, enc, got)
		}
		if strings.Contains(string(enc), "\"speed_bands\":[]") {
			t.Fatalf("empty bands not omitted: %s", enc)
		}
	})
}
