// Package manifest defines the sidecar file ("<path>.manifest") that
// describes how a file-backed sharded rexptree index is partitioned,
// plus the routing primitives (id hash, speed bands) that both the
// library front-end (shard.go / partition.go) and the offline reshard
// tool must agree on.  Keeping them in one package guarantees the tool
// routes an object to exactly the shard the library would look in.
package manifest

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// Hash names the id→shard hash scheme recorded in every manifest; a
// future scheme change cannot silently scramble a stored partition.
const Hash = "murmur3-fmix32"

// Version is the manifest format written by this code.  Version 1 had
// no generation field (shard files always at "<path>.s<i>"); version 2
// adds Generation so a reshard can build a complete replacement index
// under fresh names and commit it with one atomic manifest rename.
// Both versions are accepted on read.
const Version = 2

// Manifest is the JSON sidecar describing a sharded index: how many
// shards, how objects are routed to them, and which generation of
// shard page files is current.
type Manifest struct {
	Version    int       `json:"version"`
	Shards     int       `json:"shards"`
	Hash       string    `json:"hash"`
	Partition  string    `json:"partition"`
	SpeedBands []float64 `json:"speed_bands,omitempty"`
	AutoTuned  bool      `json:"auto_tuned,omitempty"`

	// Durability records the crash-safety policy the index was last
	// opened with ("none", "on-commit", "batched"; empty in manifests
	// predating the field).  It is informational — tooling reports it,
	// and a reopen may choose a different policy — but it tells an
	// operator (and rexpcheck) whether the shard files are expected to
	// carry write-ahead logs.
	Durability string `json:"durability,omitempty"`

	// Generation numbers the current set of shard page files; see
	// ShardPath.  Generation 0 is the legacy layout.
	Generation int `json:"generation,omitempty"`
}

// Validate checks the manifest's internal consistency: known version
// and hash scheme, a positive shard count, a recognized partition
// policy, ascending non-negative speed bands sized to the shard count,
// and a non-negative generation.
func (m Manifest) Validate() error {
	if m.Version < 1 || m.Version > Version {
		return fmt.Errorf("manifest: unsupported version %d", m.Version)
	}
	if m.Shards < 1 {
		return fmt.Errorf("manifest: invalid shard count %d", m.Shards)
	}
	if m.Hash != Hash {
		return fmt.Errorf("manifest: unknown hash scheme %q", m.Hash)
	}
	switch m.Partition {
	case "hash", "speed":
	default:
		return fmt.Errorf("manifest: unknown partition policy %q", m.Partition)
	}
	if m.Partition == "hash" && len(m.SpeedBands) > 0 {
		return fmt.Errorf("manifest: speed bands recorded for hash partitioning")
	}
	if len(m.SpeedBands) > 0 {
		if len(m.SpeedBands) != m.Shards-1 {
			return fmt.Errorf("manifest: %d speed bands for %d shards, want %d", len(m.SpeedBands), m.Shards, m.Shards-1)
		}
		for i, b := range m.SpeedBands {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				return fmt.Errorf("manifest: speed band %d is not finite", i)
			}
			// Equal neighbors are tolerated (an empty band): self-tuned
			// quantile boundaries can coincide on degenerate speed
			// distributions, and the tree persists its own tuned bands.
			if b < 0 || (i > 0 && b < m.SpeedBands[i-1]) {
				return fmt.Errorf("manifest: speed bands must be non-negative and non-descending, got %v", m.SpeedBands)
			}
		}
	}
	if m.Generation < 0 {
		return fmt.Errorf("manifest: invalid generation %d", m.Generation)
	}
	switch m.Durability {
	case "", "none", "on-commit", "batched":
	default:
		return fmt.Errorf("manifest: unknown durability policy %q", m.Durability)
	}
	return nil
}

// Decode parses and validates a manifest from its JSON encoding.
func Decode(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("manifest: parsing: %w", err)
	}
	if len(m.SpeedBands) == 0 {
		// Normalize "speed_bands": [] to the omitted form so every
		// decoded manifest re-encodes to identical bytes.
		m.SpeedBands = nil
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Encode renders the manifest as indented JSON with a trailing
// newline, the exact byte form written by Write.
func (m Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Read loads and validates the manifest at path; found is false when
// no manifest file exists.
func Read(path string) (m Manifest, found bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("manifest: reading %s: %w", path, err)
	}
	m, err = Decode(data)
	if err != nil {
		return Manifest{}, false, fmt.Errorf("manifest: %s: %w", path, err)
	}
	return m, true, nil
}

// Write stores the manifest atomically: the encoding is written to
// "<path>.tmp" and renamed over path, so a reader never observes a
// torn manifest.
func Write(path string, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := m.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("manifest: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("manifest: writing %s: %w", path, err)
	}
	return nil
}

// Path returns the manifest sidecar path for an index at base.
func Path(base string) string { return base + ".manifest" }

// ShardPath returns the page-file path of shard i in generation gen of
// the index at base.  Generation 0 is the legacy layout ("<base>.s<i>");
// later generations are "<base>.g<gen>.s<i>", so a reshard can lay a
// complete replacement down next to the live files and switch over with
// a single manifest rename.
func ShardPath(base string, gen, i int) string {
	if gen == 0 {
		return fmt.Sprintf("%s.s%d", base, i)
	}
	return fmt.Sprintf("%s.g%d.s%d", base, gen, i)
}

// ShardIndex hashes an object id onto one of n shards.  The id is
// mixed first (the murmur3 finalizer, the scheme named by Hash) so
// that dense or strided id spaces still spread evenly.
func ShardIndex(id uint32, n int) int {
	h := id
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int(h % uint32(n))
}

// Speed is an object's |velocity| over the first dims components.
func Speed(vel [3]float64, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		s += vel[i] * vel[i]
	}
	return math.Sqrt(s)
}

// SpeedBandOf maps a speed onto its band: band i covers
// [bands[i-1], bands[i]).
func SpeedBandOf(bands []float64, sp float64) int {
	return sort.Search(len(bands), func(i int) bool { return bands[i] > sp })
}

// SpeedWindow is a fixed-capacity sliding window over observed object
// speeds: once full, each observation evicts the oldest.  The sharded
// front-end feeds it from the update paths and the drift detector
// re-derives quantile bands from its snapshot, so the bands chase the
// recent speed distribution instead of the one seen at first tune.
// Safe for concurrent use.
type SpeedWindow struct {
	mu   sync.Mutex
	buf  []float64
	n    int // filled slots
	next int // ring cursor
}

// NewSpeedWindow returns a window holding the most recent capacity
// observations (minimum 2: QuantileBands needs at least one sample and
// a band split is meaningless below two).
func NewSpeedWindow(capacity int) *SpeedWindow {
	if capacity < 2 {
		capacity = 2
	}
	return &SpeedWindow{buf: make([]float64, capacity)}
}

// Observe records one speed, evicting the oldest when full.
func (w *SpeedWindow) Observe(sp float64) {
	if math.IsNaN(sp) || math.IsInf(sp, 0) {
		return
	}
	w.mu.Lock()
	w.buf[w.next] = sp
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Len reports how many observations the window currently holds.
func (w *SpeedWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Full reports whether the window has reached capacity — the drift
// detector waits for a full window before trusting its quantiles.
func (w *SpeedWindow) Full() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n == len(w.buf)
}

// Snapshot copies out the current observations (unordered); nil when
// empty.
func (w *SpeedWindow) Snapshot() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return nil
	}
	return append([]float64(nil), w.buf[:w.n]...)
}

// QuantileBands picks n-1 band boundaries at the i/n quantiles of the
// observed speeds, splitting the distribution evenly across n bands.
// The samples slice is not modified.  It panics if samples is empty or
// n < 2 — callers route everything to band 0 when n == 1.
func QuantileBands(samples []float64, n int) []float64 {
	if n < 2 {
		panic("manifest: QuantileBands needs n >= 2")
	}
	if len(samples) == 0 {
		panic("manifest: QuantileBands needs samples")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	bands := make([]float64, n-1)
	for i := 1; i < n; i++ {
		bands[i-1] = sorted[len(sorted)*i/n]
	}
	return bands
}
