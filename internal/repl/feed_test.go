package repl

import (
	"errors"
	"testing"
	"time"

	"rexptree/internal/wal"
)

func appendN(f *Feed, n, size int) {
	for i := 0; i < n; i++ {
		f.Append(make([]byte, size))
	}
}

func TestFeedAppendAndReadFrom(t *testing.T) {
	f := NewFeed(1 << 20)
	appendN(f, 10, 100)

	next, off := f.Head()
	if next != 11 || off != 1000 {
		t.Fatalf("head = (%d, %d), want (11, 1000)", next, off)
	}
	recs, head, headOff, err := f.ReadFrom(1, 0)
	if err != nil || len(recs) != 10 || head != 11 || headOff != 1000 {
		t.Fatalf("ReadFrom(1) = %d recs, head %d/%d, err %v", len(recs), head, headOff, err)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Off != uint64((i+1)*100) {
			t.Fatalf("rec %d: lsn %d off %d", i, r.LSN, r.Off)
		}
	}

	// Byte-bounded read clips but never returns zero records at a
	// servable position.
	recs, _, _, err = f.ReadFrom(1, 250)
	if err != nil || len(recs) != 3 {
		t.Fatalf("bounded ReadFrom = %d recs, err %v, want 3", len(recs), err)
	}

	// Reading at the head returns no records and no error.
	recs, _, _, err = f.ReadFrom(11, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(head) = %d recs, err %v", len(recs), err)
	}
}

func TestFeedRetentionPrunesAndGoes(t *testing.T) {
	f := NewFeed(500) // five 100-byte records
	appendN(f, 10, 100)

	if _, _, _, err := f.ReadFrom(1, 0); !errors.Is(err, ErrGone) {
		t.Fatalf("ReadFrom(pruned) err = %v, want ErrGone", err)
	}
	recs, _, _, err := f.ReadFrom(6, 0)
	if err != nil || len(recs) != 5 {
		t.Fatalf("ReadFrom(6) = %d recs, err %v, want 5 retained", len(recs), err)
	}
	_, _, retained := f.Stats()
	if retained != 500 {
		t.Fatalf("retained = %d, want 500", retained)
	}
}

func TestFeedPinBlocksPruning(t *testing.T) {
	f := NewFeed(500)
	appendN(f, 3, 100)

	lsn, off, release := f.Pin()
	if lsn != 4 || off != 300 {
		t.Fatalf("pin at (%d, %d), want (4, 300)", lsn, off)
	}
	// Push far past the retention bound: everything from the pin on
	// must survive.
	appendN(f, 20, 100)
	recs, _, _, err := f.ReadFrom(lsn, 0)
	if err != nil || len(recs) != 20 {
		t.Fatalf("pinned tail: %d recs, err %v, want 20", len(recs), err)
	}

	// Releasing lets retention catch up; release is idempotent.
	release()
	release()
	f.Append(make([]byte, 100))
	if _, _, _, err := f.ReadFrom(lsn, 0); !errors.Is(err, ErrGone) {
		t.Fatalf("after release err = %v, want ErrGone", err)
	}
}

func TestFeedEpochFromOtherIncarnation(t *testing.T) {
	a, b := NewFeed(0), NewFeed(0)
	if a.Epoch() == b.Epoch() {
		t.Skip("two feeds created in the same nanosecond")
	}
}

func TestFeedWaitSignalsAppend(t *testing.T) {
	f := NewFeed(0)
	ch := f.Wait()
	select {
	case <-ch:
		t.Fatal("Wait channel closed before any append")
	default:
	}
	go f.Append([]byte("x"))
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait channel not closed by append")
	}
}

func TestFeedSinkEncodesWALRecords(t *testing.T) {
	f := NewFeed(0)
	u := wal.Update{ID: 7, Now: 1.5, Time: 1.25, Expires: 9,
		Pos: [3]float64{1, 2, 0}, Vel: [3]float64{-0.5, 0.25, 0}}
	f.ReplUpdate(u)
	f.ReplDelete(wal.Delete{ID: 7, Now: 2})

	recs, _, _, err := f.ReadFrom(1, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReadFrom = %d recs, err %v", len(recs), err)
	}
	var rec wal.Record
	if err := wal.DecodeRecord(recs[0].Payload, &rec); err != nil {
		t.Fatalf("decode update: %v", err)
	}
	if rec.Kind != wal.RecUpdate || rec.Update != u {
		t.Fatalf("decoded update %+v, want %+v", rec.Update, u)
	}
	if err := wal.DecodeRecord(recs[1].Payload, &rec); err != nil {
		t.Fatalf("decode delete: %v", err)
	}
	if rec.Kind != wal.RecDelete || rec.Delete.ID != 7 || rec.Delete.Now != 2 {
		t.Fatalf("decoded delete %+v", rec.Delete)
	}
}
