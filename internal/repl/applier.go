package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rexptree"
	"rexptree/internal/manifest"
	"rexptree/internal/obs"
	"rexptree/internal/wal"
)

// ApplierOptions configures a follower.
type ApplierOptions struct {
	// Leader is the leader's base URL (e.g. "http://10.0.0.1:7070").
	Leader string

	// Dir is a directory the applier owns: replica file sets, their
	// position sidecars and the CURRENT pointer live in it.  Created
	// if missing.
	Dir string

	// Client performs the HTTP requests.  It must not set an overall
	// timeout (tail requests long-poll); per-request deadlines are
	// applied internally.  nil means a default client.
	Client *http.Client

	// MaxBackoff caps the exponential reconnect backoff (default 5s).
	MaxBackoff time.Duration

	// MaxBatch bounds how many updates one UpdateBatch application
	// groups (default 512).  Each flush is one group commit on the
	// replica, so larger batches trade apply latency for throughput.
	MaxBatch int

	// OnSwap, when set, is called with the new index every time a
	// (re-)bootstrap publishes a fresh replica, before the previous
	// one is closed; when it returns, no caller may still be using the
	// previous index.  When nil, superseded indexes are retained until
	// Close so a caller of Index is never handed a closing tree.
	OnSwap func(ix *rexptree.ShardedTree)

	// Logf reports reconnects, re-bootstraps and refused frames.
	// Defaults to a silent logger.
	Logf func(format string, args ...any)
}

// position is the durable apply cursor, persisted beside each replica
// file set.  It is written only after everything at or before NextLSN
// is durably applied (the replica runs DurabilityOnCommit and each
// flush group-commits), so a crashed follower resumes at or before its
// true position and re-applies idempotently — never past a gap.
type position struct {
	Epoch      uint64  `json:"epoch"`
	NextLSN    uint64  `json:"next_lsn"`
	AppliedOff uint64  `json:"applied_off"`
	Clock      float64 `json:"clock"`
}

// errGone signals a 410 from the leader: the resume position is not
// servable (pruned, or another leader incarnation); re-bootstrap.
var errGone = errors.New("repl: leader cannot serve the resume position")

// Applier is the follower side: it bootstraps a replica from the
// leader's backup stream, then tails the logical record feed to keep
// the replica converging with the leader, surviving crashes on either
// side, torn frames and disconnects.  The replica index serves the
// full read API; the applier is its only writer.
type Applier struct {
	o      ApplierOptions
	client *http.Client

	mu         sync.Mutex
	ix         *rexptree.ShardedTree
	base       string // current replica base path
	epoch      uint64
	nextLSN    uint64
	appliedOff uint64
	headOff    uint64 // leader head offset at last contact
	clock      float64
	caughtUpAt time.Time // last moment the replica matched the leader head
	retired    []*rexptree.ShardedTree

	applied     atomic.Uint64
	bootstraps  atomic.Uint64
	reconnects  atomic.Uint64
	frameErrors atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewApplier prepares a follower over dir; call Open to load or
// bootstrap a replica, then Start to begin tailing.
func NewApplier(o ApplierOptions) (*Applier, error) {
	if o.Leader == "" || o.Dir == "" {
		return nil, fmt.Errorf("repl: ApplierOptions.Leader and Dir are required")
	}
	o.Leader = strings.TrimRight(o.Leader, "/")
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Applier{
		o:      o,
		client: o.Client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Open makes the applier serve-ready: it resumes from the replica
// named by the CURRENT pointer when one exists and opens cleanly
// (local crash recovery runs inside the open; the tail then re-applies
// from the durable cursor), and bootstraps a fresh replica from the
// leader otherwise, retrying with capped backoff until ctx is done.
func (a *Applier) Open(ctx context.Context) error {
	if err := a.resume(); err == nil {
		return nil
	} else if !errors.Is(err, os.ErrNotExist) {
		a.o.Logf("repl: local replica unusable (%v); bootstrapping from %s", err, a.o.Leader)
	}
	backoff := 100 * time.Millisecond
	for {
		err := a.bootstrap(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.o.Logf("repl: bootstrap failed: %v (retrying in %v)", err, backoff)
		if !sleepCtx(ctx, jitter(backoff)) {
			return ctx.Err()
		}
		backoff = nextBackoff(backoff, a.o.MaxBackoff)
	}
}

// resume opens the replica the CURRENT pointer names and loads its
// durable position.
func (a *Applier) resume() error {
	name, err := os.ReadFile(filepath.Join(a.o.Dir, "CURRENT"))
	if err != nil {
		return err
	}
	base := filepath.Join(a.o.Dir, strings.TrimSpace(string(name)))
	var pos position
	data, err := os.ReadFile(base + ".replpos")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &pos); err != nil {
		return fmt.Errorf("repl: position sidecar: %w", err)
	}
	ix, err := openReplica(base)
	if err != nil {
		return err
	}
	// The replica's own stored clock can be ahead of the sidecar's (the
	// sidecar is written after each flush; the tree's clock is restored
	// from its metadata pages).  Queries must never run behind the
	// tree's clock, so take the larger.
	if c := ix.Now(); c > pos.Clock {
		pos.Clock = c
	}
	a.mu.Lock()
	a.ix, a.base = ix, base
	a.epoch, a.nextLSN, a.appliedOff, a.clock = pos.Epoch, pos.NextLSN, pos.AppliedOff, pos.Clock
	a.caughtUpAt = time.Now()
	a.mu.Unlock()
	a.o.Logf("repl: resumed replica %s at lsn %d (epoch %d)", base, pos.NextLSN, pos.Epoch)
	return nil
}

// openReplica opens a replica file set read from a backup stream (or
// left by a previous run) with the partitioning its manifest records.
// DurabilityOnCommit makes every flush a durable point, which the
// position sidecar's guarantee rests on.
func openReplica(base string) (*rexptree.ShardedTree, error) {
	man, found, err := manifest.Read(manifest.Path(base))
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("repl: %w: no manifest at %s", os.ErrNotExist, manifest.Path(base))
	}
	part := rexptree.PartitionHash
	if man.Partition == "speed" {
		part = rexptree.PartitionSpeed
	}
	// The leader never told us how its tree is configured; the shard
	// files themselves did (layout config lives in the metadata page).
	opts, err := rexptree.StoredOptions(manifest.ShardPath(base, man.Generation, 0))
	if err != nil {
		return nil, fmt.Errorf("repl: reading replica layout: %w", err)
	}
	opts.Path = base
	opts.Durability = rexptree.DurabilityOnCommit
	return rexptree.OpenSharded(rexptree.ShardedOptions{
		Options:   opts,
		Shards:    man.Shards,
		Partition: part,
		// SpeedBands stay empty: the manifest's recorded bands apply,
		// so routing matches the leader exactly.
	})
}

// bootstrap pulls one full backup stream into a fresh replica file set
// and publishes it, superseding any current replica.
func (a *Applier) bootstrap(ctx context.Context) error {
	base := filepath.Join(a.o.Dir, fmt.Sprintf("replica-%06d", a.nextSeq()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.o.Leader+"/v1/backup", nil)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: leader backup: %s", readError(resp))
	}
	info, err := WriteBackup(base, resp.Body)
	if err != nil {
		if errors.Is(err, ErrCorruptFrame) || errors.Is(err, ErrTruncated) {
			a.frameErrors.Add(1)
		}
		return err
	}
	ix, err := openReplica(base)
	if err != nil {
		return err
	}
	// Seed the applied clock from the snapshot itself: the shard files
	// carry the leader's clock in their metadata pages, and serving
	// queries at a clock behind the tree's own is an error.
	pos := position{Epoch: info.Meta.Epoch, NextLSN: info.Meta.StartLSN,
		AppliedOff: info.Meta.StartOff, Clock: ix.Now()}
	if err := writePosition(base, pos); err != nil {
		ix.Close()
		return err
	}
	if err := writeCurrent(a.o.Dir, filepath.Base(base)); err != nil {
		ix.Close()
		return err
	}

	a.mu.Lock()
	old, oldBase := a.ix, a.base
	a.ix, a.base = ix, base
	a.epoch, a.nextLSN, a.appliedOff = pos.Epoch, pos.NextLSN, pos.AppliedOff
	if pos.Clock > a.clock {
		a.clock = pos.Clock
	}
	a.headOff = pos.AppliedOff
	a.caughtUpAt = time.Now()
	if old != nil && a.o.OnSwap == nil {
		a.retired = append(a.retired, old)
	}
	a.mu.Unlock()

	if a.o.OnSwap != nil {
		a.o.OnSwap(ix)
		if old != nil {
			old.Close()
		}
	}
	if oldBase != "" {
		removeReplica(oldBase)
	}
	a.bootstraps.Add(1)
	a.o.Logf("repl: bootstrapped replica %s: %d shards, %d bytes, tail from lsn %d (epoch %d)",
		base, info.Meta.Shards, info.Bytes, pos.NextLSN, pos.Epoch)
	return nil
}

// nextSeq picks a replica name strictly after every one already in the
// directory, so a partially-written set from a crashed bootstrap is
// never reused.
func (a *Applier) nextSeq() int {
	ents, _ := os.ReadDir(a.o.Dir)
	max := 0
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "replica-%06d", &n); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// removeReplica deletes a superseded replica file set (best effort).
func removeReplica(base string) {
	dir, prefix := filepath.Dir(base), filepath.Base(base)
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

func writePosition(base string, pos position) error {
	data, err := json.Marshal(pos)
	if err != nil {
		return err
	}
	path := base + ".replpos"
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func writeCurrent(dir, name string) error {
	tmp := filepath.Join(dir, "CURRENT.tmp")
	if err := os.WriteFile(tmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "CURRENT")); err != nil {
		return err
	}
	return syncDir(dir)
}

// Start launches the tail loop; Close stops it.
func (a *Applier) Start() {
	go a.run()
}

func (a *Applier) run() {
	defer close(a.done)
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		err := a.tailOnce()
		if err == nil {
			backoff = 100 * time.Millisecond
			continue
		}
		if errors.Is(err, errGone) {
			a.o.Logf("repl: resume position gone at leader; re-bootstrapping")
			ctx, cancel := a.stopContext()
			berr := a.bootstrapLoop(ctx)
			cancel()
			if berr != nil {
				return // only on shutdown
			}
			backoff = 100 * time.Millisecond
			continue
		}
		a.reconnects.Add(1)
		a.o.Logf("repl: tail failed: %v (reconnecting in ~%v)", err, backoff)
		if !a.sleepStop(jitter(backoff)) {
			return
		}
		backoff = nextBackoff(backoff, a.o.MaxBackoff)
	}
}

// bootstrapLoop re-bootstraps with capped backoff until it succeeds or
// the applier is closed.  While it retries, the current replica keeps
// serving its last consistent state.
func (a *Applier) bootstrapLoop(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		err := a.bootstrap(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.o.Logf("repl: re-bootstrap failed: %v (retrying in ~%v)", err, backoff)
		if !sleepCtx(ctx, jitter(backoff)) {
			return ctx.Err()
		}
		backoff = nextBackoff(backoff, a.o.MaxBackoff)
	}
}

// stopContext returns a context canceled when the applier is closed.
func (a *Applier) stopContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-a.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// tailOnce performs one tail request and applies its records.  Any
// corrupt or truncated frame aborts the connection with the error
// counted — records already applied are durable and the cursor is
// exact, so the retry re-requests from the first unapplied record.
func (a *Applier) tailOnce() error {
	a.mu.Lock()
	from, epoch := a.nextLSN, a.epoch
	a.mu.Unlock()

	ctx, cancel := a.stopContext()
	defer cancel()
	ctx, cancelT := context.WithTimeout(ctx, longPollWindow+15*time.Second)
	defer cancelT()

	url := fmt.Sprintf("%s/v1/wal?from=%d&epoch=%d", a.o.Leader, from, epoch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errGone
	default:
		return fmt.Errorf("repl: leader tail: %s", readError(resp))
	}

	fr := NewFrameReader(resp.Body)
	kind, body, err := fr.ReadFrame()
	if err != nil {
		return a.frameFail(err)
	}
	if kind != FrameTailMeta {
		return a.frameFail(fmt.Errorf("%w: tail stream starts with frame kind 0x%02x", ErrCorruptFrame, kind))
	}
	var hdr TailHeader
	if err := json.Unmarshal(body, &hdr); err != nil {
		return a.frameFail(fmt.Errorf("%w: tail header: %v", ErrCorruptFrame, err))
	}
	if hdr.Epoch != epoch || hdr.From != from {
		return a.frameFail(fmt.Errorf("%w: tail header (epoch %d, from %d) does not answer the request (epoch %d, from %d)",
			ErrCorruptFrame, hdr.Epoch, hdr.From, epoch, from))
	}

	var (
		batch   []rexptree.Report
		inBatch = map[uint32]bool{}
		next    = from
		off     = uint64(0)
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		a.mu.Lock()
		ix, clock := a.ix, a.clock
		a.mu.Unlock()
		if err := ix.UpdateBatch(batch, clock); err != nil {
			return fmt.Errorf("repl: applying records [..%d): %w", next, err)
		}
		a.applied.Add(uint64(len(batch)))
		batch = batch[:0]
		clear(inBatch)
		return a.savePosition(next, off)
	}

	for {
		kind, body, err := fr.ReadFrame()
		if err != nil {
			return a.frameFail(err)
		}
		switch kind {
		case FrameRecord:
			lsn, recOff, payload, err := DecodeRecordFrame(body)
			if err != nil {
				return a.frameFail(fmt.Errorf("%w: %v", ErrCorruptFrame, err))
			}
			if lsn != next {
				return a.frameFail(fmt.Errorf("%w: record lsn %d, want %d", ErrCorruptFrame, lsn, next))
			}
			var rec wal.Record
			if err := wal.DecodeRecord(payload, &rec); err != nil {
				return a.frameFail(fmt.Errorf("%w: record payload: %v", ErrCorruptFrame, err))
			}
			switch rec.Kind {
			case wal.RecUpdate:
				u := rec.Update
				if inBatch[u.ID] || len(batch) >= a.o.MaxBatch {
					if err := flush(); err != nil {
						return err
					}
				}
				p := rexptree.Point{Time: u.Time, Expires: u.Expires, Pos: u.Pos, Vel: u.Vel}
				batch = append(batch, rexptree.Report{ID: u.ID, Point: p})
				inBatch[u.ID] = true
				a.advanceClock(u.Now)
			case wal.RecDelete:
				if err := flush(); err != nil {
					return err
				}
				a.advanceClock(rec.Delete.Now)
				a.mu.Lock()
				ix, clock := a.ix, a.clock
				a.mu.Unlock()
				if _, err := ix.Delete(rec.Delete.ID, clock); err != nil {
					return fmt.Errorf("repl: applying delete of %d at lsn %d: %w", rec.Delete.ID, lsn, err)
				}
				a.applied.Add(1)
			default:
				return a.frameFail(fmt.Errorf("%w: record kind %d in the tail stream", ErrCorruptFrame, rec.Kind))
			}
			next, off = lsn+1, recOff
		case FrameTailEnd:
			var tr TailTrailer
			if err := json.Unmarshal(body, &tr); err != nil {
				return a.frameFail(fmt.Errorf("%w: tail trailer: %v", ErrCorruptFrame, err))
			}
			if err := flush(); err != nil {
				return err
			}
			// A segment can end on deletes, which apply outside the
			// batch: the cursor still has to move, or the same segment
			// would be re-requested forever.
			if next > from {
				if err := a.savePosition(next, off); err != nil {
					return err
				}
			}
			a.mu.Lock()
			a.headOff = tr.HeadOff
			if a.nextLSN >= tr.Head {
				a.caughtUpAt = time.Now()
			}
			a.mu.Unlock()
			return nil
		default:
			return a.frameFail(fmt.Errorf("%w: frame kind 0x%02x in the tail stream", ErrCorruptFrame, kind))
		}
	}
}

// frameFail counts a refused frame and returns the error: the
// connection is abandoned rather than applied past damage.
func (a *Applier) frameFail(err error) error {
	a.frameErrors.Add(1)
	return err
}

// savePosition records the durable cursor after a flush: everything
// below next is applied and fsynced (the replica runs on-commit
// durability), so this write may only ever lag the truth.
func (a *Applier) savePosition(next, lastOff uint64) error {
	a.mu.Lock()
	a.nextLSN = next
	if lastOff > a.appliedOff {
		a.appliedOff = lastOff
	}
	pos := position{Epoch: a.epoch, NextLSN: a.nextLSN, AppliedOff: a.appliedOff, Clock: a.clock}
	base := a.base
	a.mu.Unlock()
	return writePosition(base, pos)
}

func (a *Applier) advanceClock(now float64) {
	a.mu.Lock()
	if now > a.clock {
		a.clock = now
	}
	a.mu.Unlock()
}

// Index returns the current replica index.  With OnSwap unset the
// returned index stays valid until Close even across re-bootstraps;
// with OnSwap set, the swap callback owns lifetime hand-off.
func (a *Applier) Index() *rexptree.ShardedTree {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ix
}

// Clock returns the replica's applied logical clock.
func (a *Applier) Clock() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.clock
}

// LagSeconds reports staleness: how long ago the replica was last
// level with the leader's head.  It grows while disconnected or
// catching up and resets to ~0 in steady state.
func (a *Applier) LagSeconds() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.caughtUpAt.IsZero() {
		return 0
	}
	return time.Since(a.caughtUpAt).Seconds()
}

// LagBytes reports how many feed bytes the replica has not applied, as
// of the last leader contact.
func (a *Applier) LagBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.headOff <= a.appliedOff {
		return 0
	}
	return int64(a.headOff - a.appliedOff)
}

// AppliedLSN returns the last applied log sequence number.
func (a *Applier) AppliedLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextLSN - 1
}

// Stats returns the follower-side replication counters.
func (a *Applier) Stats() obs.ReplStats {
	return obs.ReplStats{
		AppliedRecords: a.applied.Load(),
		AppliedLSN:     a.AppliedLSN(),
		Bootstraps:     a.bootstraps.Load(),
		Reconnects:     a.reconnects.Load(),
		FrameErrors:    a.frameErrors.Load(),
		LagSeconds:     a.LagSeconds(),
		LagBytes:       a.LagBytes(),
	}
}

// Close stops the tail loop and closes every index the applier owns.
func (a *Applier) Close() error {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
	a.mu.Lock()
	ix, retired := a.ix, a.retired
	a.ix, a.retired = nil, nil
	a.mu.Unlock()
	var err error
	for _, t := range retired {
		if cerr := t.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if ix != nil {
		if cerr := ix.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// sleepStop sleeps d unless the applier is closed first.
func (a *Applier) sleepStop(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-a.stop:
		return false
	case <-t.C:
		return true
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// jitter spreads a delay uniformly over [d/2, 3d/2) so a fleet of
// followers does not reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func nextBackoff(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		d = max
	}
	return d
}

// readError extracts a short error body from a non-200 response.
func readError(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		return resp.Status
	}
	return resp.Status + ": " + msg
}

// Promote is documentation more than code: a follower's replica file
// set is a normal durable sharded index, so promoting it to a
// standalone leader is stopping the follower and serving the CURRENT
// base path directly.  CurrentBase returns that path for tooling.
func (a *Applier) CurrentBase() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.base
}
