package repl

import (
	"errors"
	"sync"
	"time"

	"rexptree/internal/wal"
)

// ErrGone reports a tail position the feed no longer retains (or an
// epoch from a previous leader incarnation): the follower's resume
// point is unservable and it must re-bootstrap from a fresh snapshot.
var ErrGone = errors.New("repl: requested position is no longer retained; re-bootstrap required")

// FeedRecord is one retained logical record: its log sequence number,
// the feed's cumulative byte offset after it, and the wal-encoded
// payload.  Payloads are immutable once appended.
type FeedRecord struct {
	LSN     uint64
	Off     uint64
	Payload []byte
}

// Feed is the leader's in-memory replication log: every applied
// mutation is appended as a wal-encoded logical record in a single
// total order (it implements rexptree.ReplSink, invoked under each
// shard's exclusive lock, so per-object order equals apply order).
// Retention is bounded by bytes; a consumer that falls behind the
// retained window gets ErrGone and must re-bootstrap — the same
// contract a new leader incarnation (fresh Epoch) imposes.
type Feed struct {
	mu       sync.Mutex
	epoch    uint64
	recs     []FeedRecord
	firstLSN uint64 // LSN of recs[0]; == nextLSN when empty
	nextLSN  uint64
	headOff  uint64 // cumulative bytes ever appended
	retained int64  // payload bytes currently retained
	retain   int64
	pins     map[uint64]int // LSN → pin count; retention keeps LSNs >= the minimum
	notify   chan struct{}  // closed and replaced on every append
}

// DefaultRetainBytes is the retention bound NewFeed applies when given
// a non-positive one.
const DefaultRetainBytes = 64 << 20

// NewFeed returns an empty feed with a fresh epoch.
func NewFeed(retainBytes int64) *Feed {
	if retainBytes <= 0 {
		retainBytes = DefaultRetainBytes
	}
	return &Feed{
		epoch:    uint64(time.Now().UnixNano()),
		firstLSN: 1,
		nextLSN:  1,
		retain:   retainBytes,
		pins:     make(map[uint64]int),
		notify:   make(chan struct{}),
	}
}

// Epoch identifies this leader incarnation; LSNs are only meaningful
// within one epoch.
func (f *Feed) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Head returns the next LSN to be assigned and the cumulative byte
// offset of everything appended so far.
func (f *Feed) Head() (next uint64, off uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextLSN, f.headOff
}

// Stats returns the append totals and the currently retained bytes.
func (f *Feed) Stats() (records uint64, bytes uint64, retained int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextLSN - 1, f.headOff, f.retained
}

// Append adds one record, taking ownership of payload.
func (f *Feed) Append(payload []byte) {
	f.mu.Lock()
	f.headOff += uint64(len(payload))
	f.recs = append(f.recs, FeedRecord{LSN: f.nextLSN, Off: f.headOff, Payload: payload})
	f.nextLSN++
	f.retained += int64(len(payload))
	f.pruneLocked()
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// pruneLocked drops the oldest records until the retention bound is
// met, never crossing the lowest pinned LSN.
func (f *Feed) pruneLocked() {
	minPin := uint64(0)
	for lsn := range f.pins {
		if minPin == 0 || lsn < minPin {
			minPin = lsn
		}
	}
	for f.retained > f.retain && len(f.recs) > 0 {
		if minPin != 0 && f.recs[0].LSN >= minPin {
			break
		}
		f.retained -= int64(len(f.recs[0].Payload))
		f.recs[0].Payload = nil
		f.recs = f.recs[1:]
		f.firstLSN++
	}
}

// Pin marks the current head as a resume point retention must keep —
// a snapshot in flight guarantees its receiver can tail from the
// snapshot's start LSN.  It returns that LSN, the matching byte
// offset, and a release function (idempotent).
func (f *Feed) Pin() (lsn, off uint64, release func()) {
	f.mu.Lock()
	lsn, off = f.nextLSN, f.headOff
	f.pins[lsn]++
	f.mu.Unlock()
	var once sync.Once
	return lsn, off, func() {
		once.Do(func() {
			f.mu.Lock()
			if f.pins[lsn]--; f.pins[lsn] <= 0 {
				delete(f.pins, lsn)
			}
			f.pruneLocked()
			f.mu.Unlock()
		})
	}
}

// ReadFrom returns retained records starting at LSN from (the next
// record the consumer wants), bounded by maxBytes of payload, plus the
// current head position.  It returns ErrGone when from precedes the
// retained window.  The returned slice and payloads are immutable.
func (f *Feed) ReadFrom(from uint64, maxBytes int) (recs []FeedRecord, head, headOff uint64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < f.firstLSN {
		return nil, f.nextLSN, f.headOff, ErrGone
	}
	if from >= f.nextLSN {
		return nil, f.nextLSN, f.headOff, nil
	}
	i := int(from - f.firstLSN)
	total := 0
	j := i
	for j < len(f.recs) {
		total += len(f.recs[j].Payload)
		j++
		if maxBytes > 0 && total >= maxBytes {
			break
		}
	}
	return f.recs[i:j:j], f.nextLSN, f.headOff, nil
}

// Wait returns a channel closed at the next append.
func (f *Feed) Wait() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.notify
}

// ReplUpdate implements rexptree.ReplSink.
func (f *Feed) ReplUpdate(u wal.Update) {
	f.Append(wal.EncodeUpdate(make([]byte, 0, 96), u))
}

// ReplDelete implements rexptree.ReplSink.
func (f *Feed) ReplDelete(d wal.Delete) {
	f.Append(wal.EncodeDelete(make([]byte, 0, 16), d))
}
