package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"rexptree"
	"rexptree/internal/obs"
)

// BackupMeta is the backup stream's leading frame: everything a
// receiver needs to lay the files down and resume tailing.  StartLSN /
// StartOff name the feed position pinned for the whole stream — every
// record from there on is retained until the stream ends, so a
// receiver that bootstraps from this snapshot can always tail from
// StartLSN without a gap (re-applying the WAL tail records the
// snapshot already contains is idempotent).
type BackupMeta struct {
	Version    int             `json:"version"`
	Epoch      uint64          `json:"epoch"`
	StartLSN   uint64          `json:"start_lsn"`
	StartOff   uint64          `json:"start_off"`
	Shards     int             `json:"shards"`
	Generation int             `json:"generation"`
	Manifest   json.RawMessage `json:"manifest"`
}

// ShardHeader is the per-shard ShardBegin frame: exactly PageBytes of
// page-chunk payload and WALBytes of WAL-chunk payload follow.
type ShardHeader struct {
	Shard     int   `json:"shard"`
	PageBytes int64 `json:"page_bytes"`
	WALBytes  int64 `json:"wal_bytes"`
}

// TailHeader is the tail stream's leading frame; Head/HeadOff are the
// feed's current head (which may lie beyond this response's last
// record when the batch was clipped at maxTailBatch) — the receiver
// derives its byte lag from them.
type TailHeader struct {
	Epoch   uint64 `json:"epoch"`
	From    uint64 `json:"from"`
	Head    uint64 `json:"head"`
	HeadOff uint64 `json:"head_off"`
}

// TailTrailer is the tail stream's terminator; it repeats the head so
// a receiver can check it saw every promised record.
type TailTrailer struct {
	Head    uint64 `json:"head"`
	HeadOff uint64 `json:"head_off"`
}

// ProtocolVersion is bumped on any incompatible stream-format change.
const ProtocolVersion = 1

// maxTailBatch bounds one tail response's record payload.
const maxTailBatch = 1 << 20

// longPollWindow is how long an empty tail request parks before
// returning an empty (heartbeat) response.
const longPollWindow = 20 * time.Second

// Hub is the leader side: it owns the replication feed (attached to
// the index as its ReplSink) and serves the snapshot and tail streams.
type Hub struct {
	ix   *rexptree.ShardedTree
	feed *Feed

	// Logf reports stream failures that cannot reach the client as an
	// HTTP status (the stream is already flowing).  Defaults to
	// log.Printf.
	Logf func(format string, args ...any)

	snapshots     atomic.Uint64
	snapshotBytes atomic.Uint64
	tailRequests  atomic.Uint64
}

// NewHub attaches a fresh feed to ix and returns the hub serving it.
// retainBytes bounds the feed's retained window (<= 0 means
// DefaultRetainBytes); a follower that falls further behind than the
// window is told to re-bootstrap.
func NewHub(ix *rexptree.ShardedTree, retainBytes int64) *Hub {
	h := &Hub{ix: ix, feed: NewFeed(retainBytes), Logf: log.Printf}
	ix.SetReplSink(h.feed)
	return h
}

// Feed exposes the hub's feed (tests and benches).
func (h *Hub) Feed() *Feed { return h.feed }

// Close detaches the feed from the index.
func (h *Hub) Close() { h.ix.SetReplSink(nil) }

// Stats returns the leader-side replication counters.
func (h *Hub) Stats() obs.ReplStats {
	recs, bytes, retained := h.feed.Stats()
	return obs.ReplStats{
		FeedRecords:   recs,
		FeedBytes:     bytes,
		RetainedBytes: retained,
		Snapshots:     h.snapshots.Load(),
		SnapshotBytes: h.snapshotBytes.Load(),
		TailRequests:  h.tailRequests.Load(),
	}
}

// countWriter counts the bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeJSONFrame(fw *FrameWriter, kind byte, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return fw.WriteFrame(kind, body)
}

// BackupHandler serves GET /v1/backup: one consistent snapshot stream.
// Failures after the stream has started are surfaced by cutting the
// connection before the BackupEnd terminator — the receiver sees a
// truncated stream and discards it; a complete stream is always a
// consistent image.
func (h *Hub) BackupHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.snapshots.Add(1)

		// Pin the feed head first: every record from startLSN on stays
		// retained until this stream finishes, so the image plus the
		// tail from startLSN is gapless no matter how long the copy
		// takes or how far the leader moves meanwhile.
		startLSN, startOff, release := h.feed.Pin()
		defer release()

		b, err := h.ix.BeginBackup()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer b.Close()
		manifestBytes, err := b.ManifestBytes()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}

		w.Header().Set("Content-Type", "application/octet-stream")
		cw := &countWriter{w: w}
		defer func() { h.snapshotBytes.Add(uint64(cw.n)) }()
		fw := NewFrameWriter(cw)

		meta := BackupMeta{
			Version:    ProtocolVersion,
			Epoch:      h.feed.Epoch(),
			StartLSN:   startLSN,
			StartOff:   startOff,
			Shards:     b.Shards(),
			Generation: b.Generation(),
			Manifest:   json.RawMessage(manifestBytes),
		}
		if err := writeJSONFrame(fw, FrameMeta, meta); err != nil {
			h.Logf("repl: backup stream: %v", err)
			return
		}
		for i := 0; i < b.Shards(); i++ {
			if err := h.streamShard(fw, b, i); err != nil {
				h.Logf("repl: backup stream aborted at shard %d: %v", i, err)
				return
			}
		}
		// The shard images are sent; only now, with the whole-backup
		// validation passed, is the stream declared complete.
		if err := b.Validate(); err != nil {
			h.Logf("repl: backup stream aborted: %v", err)
			return
		}
		if err := writeJSONFrame(fw, FrameBackupEnd, struct{}{}); err != nil {
			h.Logf("repl: backup stream: %v", err)
		}
	})
}

// streamShard freezes one shard and streams its page file and WAL
// prefix as chunk frames.
func (h *Hub) streamShard(fw *FrameWriter, b *rexptree.Backup, i int) error {
	bs, err := b.BeginShard(i)
	if err != nil {
		return err
	}
	defer bs.End()
	hdr := ShardHeader{Shard: i, PageBytes: bs.PageBytes, WALBytes: bs.WALBytes}
	if err := writeJSONFrame(fw, FrameShardBegin, hdr); err != nil {
		return err
	}
	if err := streamFilePrefix(fw, FramePageChunk, bs.PagePath, bs.PageBytes); err != nil {
		return err
	}
	if bs.WALBytes > 0 {
		if err := streamFilePrefix(fw, FrameWALChunk, bs.WALPath, bs.WALBytes); err != nil {
			return err
		}
	}
	// The bytes are on the wire; check nothing rewrote them under us
	// before marking the shard complete.
	if err := bs.Validate(); err != nil {
		return err
	}
	return writeJSONFrame(fw, FrameShardEnd, struct {
		Shard int `json:"shard"`
	}{i})
}

// streamFilePrefix sends the first n bytes of path as chunk frames of
// the given kind, reading through its own descriptor so the live
// index's handles are untouched.
func streamFilePrefix(fw *FrameWriter, kind byte, path string, n int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, ChunkSize)
	for n > 0 {
		c := int64(len(buf))
		if c > n {
			c = n
		}
		if _, err := io.ReadFull(f, buf[:c]); err != nil {
			return fmt.Errorf("repl: reading %s: %w", path, err)
		}
		if err := fw.WriteFrame(kind, buf[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// WALHandler serves GET /v1/wal?from=<lsn>&epoch=<epoch>: the logical
// record tail from LSN from.  An empty response (TailMeta directly
// followed by TailEnd) is a heartbeat carrying the current head; the
// handler long-polls up to longPollWindow before sending one.  A from
// below the retained window, or an epoch from another leader
// incarnation, gets 410 Gone: the follower must re-bootstrap.
func (h *Hub) WALHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.tailRequests.Add(1)
		q := r.URL.Query()
		from, err := strconv.ParseUint(q.Get("from"), 10, 64)
		if err != nil || from == 0 {
			http.Error(w, "repl: invalid or missing from= parameter", http.StatusBadRequest)
			return
		}
		epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
		if err != nil {
			http.Error(w, "repl: invalid or missing epoch= parameter", http.StatusBadRequest)
			return
		}
		if epoch != h.feed.Epoch() {
			http.Error(w, ErrGone.Error(), http.StatusGone)
			return
		}

		// The wait channel is taken before the read: an append landing
		// between the two closes this channel, so the park below can
		// never miss it and stall a full window with records pending.
		appended := h.feed.Wait()
		recs, head, headOff, err := h.feed.ReadFrom(from, maxTailBatch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		if len(recs) == 0 {
			// Nothing new: park until an append, the client leaves, or
			// the window elapses (heartbeat).
			timer := time.NewTimer(longPollWindow)
			select {
			case <-appended:
			case <-r.Context().Done():
				timer.Stop()
				return
			case <-timer.C:
			}
			timer.Stop()
			recs, head, headOff, err = h.feed.ReadFrom(from, maxTailBatch)
			if err != nil {
				http.Error(w, err.Error(), http.StatusGone)
				return
			}
		}

		w.Header().Set("Content-Type", "application/octet-stream")
		fw := NewFrameWriter(w)
		hdr := TailHeader{Epoch: epoch, From: from, Head: head, HeadOff: headOff}
		if err := writeJSONFrame(fw, FrameTailMeta, hdr); err != nil {
			return
		}
		var body []byte
		for _, rec := range recs {
			body = EncodeRecordFrame(body, rec.LSN, rec.Off, rec.Payload)
			if err := fw.WriteFrame(FrameRecord, body); err != nil {
				return
			}
		}
		writeJSONFrame(fw, FrameTailEnd, TailTrailer{Head: head, HeadOff: headOff})
	})
}
