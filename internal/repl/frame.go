// Package repl implements the hot-backup / replication protocol of a
// sharded rexptree index: a leader streams a crash-consistent snapshot
// of its shard files plus a logical record feed, and a follower
// maintains a read-only replica from them.
//
// The wire format reuses the write-ahead log's frame conventions
// (internal/wal): every frame is [len u32][crc32c u32][payload], both
// little-endian, with the CRC (Castagnoli) taken over the payload.
// The first payload byte is the frame kind; the rest is either JSON
// (the control frames) or raw bytes (page-file and WAL chunks, logical
// records).  A corrupt or truncated frame is always detectable: the
// CRC catches flipped bits, and both streams end in an explicit
// terminator frame, so a connection cut between frames cannot pass for
// a complete stream.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame kinds.  The backup stream is Meta, then per shard
// (ShardBegin, PageChunk..., WALChunk..., ShardEnd), then BackupEnd.
// The tail stream is TailMeta, Record..., TailEnd.
const (
	FrameMeta       = 0x01
	FrameShardBegin = 0x02
	FramePageChunk  = 0x03
	FrameWALChunk   = 0x04
	FrameShardEnd   = 0x05
	FrameBackupEnd  = 0x06

	FrameTailMeta = 0x10
	FrameRecord   = 0x11
	FrameTailEnd  = 0x12
)

const (
	frameHdrSize = 8

	// ChunkSize is how many page-file or WAL bytes one chunk frame
	// carries; maxFramePayload bounds any frame a reader will accept
	// (kind byte included), protecting it from a corrupt length.
	ChunkSize       = 256 << 10
	maxFramePayload = ChunkSize + 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame reports a frame whose checksum does not match its
// bytes: the stream is damaged and must not be applied further.
var ErrCorruptFrame = errors.New("repl: corrupt frame (crc mismatch)")

// ErrTruncated reports a stream that ended mid-frame or without its
// terminator frame.
var ErrTruncated = errors.New("repl: truncated stream")

// FrameWriter frames payloads onto w.  It buffers nothing beyond one
// frame header; callers stream large payloads as multiple chunks.
type FrameWriter struct {
	w   io.Writer
	hdr [frameHdrSize + 1]byte // header plus the kind byte
}

// NewFrameWriter returns a writer framing onto w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame writes one frame: the kind byte followed by body, with
// the length/CRC header in front.
func (fw *FrameWriter) WriteFrame(kind byte, body []byte) error {
	n := 1 + len(body)
	if n > maxFramePayload {
		return fmt.Errorf("repl: frame payload %d bytes exceeds the %d-byte bound", n, maxFramePayload)
	}
	fw.hdr[frameHdrSize] = kind
	crc := crc32.Update(crc32.Checksum(fw.hdr[frameHdrSize:], castagnoli), castagnoli, body)
	binary.LittleEndian.PutUint32(fw.hdr[0:], uint32(n))
	binary.LittleEndian.PutUint32(fw.hdr[4:], crc)
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := fw.w.Write(body)
	return err
}

// FrameReader reads frames from r, verifying each checksum.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader returns a reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// ReadFrame returns the next frame's kind and body.  The body aliases
// an internal buffer valid until the next call.  io.EOF is returned
// only at a clean frame boundary; a stream cut mid-frame returns
// ErrTruncated, and a checksum mismatch returns ErrCorruptFrame.
func (fr *FrameReader) ReadFrame() (kind byte, body []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame length %d out of range", ErrCorruptFrame, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if crc32.Checksum(fr.buf, castagnoli) != crc {
		return 0, nil, ErrCorruptFrame
	}
	return fr.buf[0], fr.buf[1:], nil
}

// Record frames carry [lsn u64][off u64][wal-encoded payload]: the
// record's log sequence number, the feed's cumulative byte offset
// after it, and the logical record exactly as internal/wal encodes it.
const recordHdrSize = 16

// EncodeRecordFrame builds a Record frame body in dst.
func EncodeRecordFrame(dst []byte, lsn, off uint64, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst[:0], lsn)
	dst = binary.LittleEndian.AppendUint64(dst, off)
	return append(dst, payload...)
}

// DecodeRecordFrame splits a Record frame body.
func DecodeRecordFrame(body []byte) (lsn, off uint64, payload []byte, err error) {
	if len(body) < recordHdrSize+1 {
		return 0, 0, nil, fmt.Errorf("repl: record frame is %d bytes, want > %d", len(body), recordHdrSize)
	}
	lsn = binary.LittleEndian.Uint64(body)
	off = binary.LittleEndian.Uint64(body[8:])
	return lsn, off, body[recordHdrSize:], nil
}
