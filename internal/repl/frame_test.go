package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	bodies := [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, ChunkSize),
		[]byte(`{"json":"control frame"}`),
	}
	kinds := []byte{FrameMeta, FrameRecord, FramePageChunk, FrameTailEnd}
	for i, b := range bodies {
		if err := fw.WriteFrame(kinds[i], b); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}

	fr := NewFrameReader(&buf)
	for i, want := range bodies {
		kind, body, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if kind != kinds[i] {
			t.Fatalf("frame %d: kind 0x%02x, want 0x%02x", i, kind, kinds[i])
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("frame %d: body mismatch (%d vs %d bytes)", i, len(body), len(want))
		}
	}
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameOversizedPayloadRefused(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.WriteFrame(FramePageChunk, make([]byte, maxFramePayload)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(FrameRecord, []byte("the payload under test")); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// Flip each byte in turn; every single-byte corruption must surface
	// as ErrCorruptFrame or ErrTruncated — never as a clean frame with
	// different bytes, and never as a panic.
	for i := range wire {
		damaged := append([]byte(nil), wire...)
		damaged[i] ^= 0x40
		kind, body, err := NewFrameReader(bytes.NewReader(damaged)).ReadFrame()
		if err == nil {
			t.Fatalf("flip at %d: accepted as kind 0x%02x with %d-byte body", i, kind, len(body))
		}
		if !errors.Is(err, ErrCorruptFrame) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("flip at %d: err = %v, want ErrCorruptFrame or ErrTruncated", i, err)
		}
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(FrameWALChunk, bytes.Repeat([]byte("abc"), 100)); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for cut := 1; cut < len(wire); cut++ {
		_, _, err := NewFrameReader(bytes.NewReader(wire[:cut])).ReadFrame()
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// An empty stream is a clean boundary, not a truncation.
	if _, _, err := NewFrameReader(bytes.NewReader(nil)).ReadFrame(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestRecordFrameRoundTrip(t *testing.T) {
	payload := []byte("wal-encoded record bytes")
	body := EncodeRecordFrame(nil, 42, 99999, payload)
	lsn, off, got, err := DecodeRecordFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 || off != 99999 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: lsn %d off %d payload %q", lsn, off, got)
	}
	if _, _, _, err := DecodeRecordFrame(body[:recordHdrSize]); err == nil {
		t.Fatal("header-only record frame accepted")
	}
}

// FuzzReplFrameRoundTrip feeds arbitrary bytes to the frame reader
// (must never panic, never return a frame that was not written) and
// checks that writing any payload reads back identically.
func FuzzReplFrameRoundTrip(f *testing.F) {
	f.Add([]byte{}, byte(FrameMeta))
	f.Add([]byte("hello"), byte(FrameRecord))
	f.Add(bytes.Repeat([]byte{0x00}, 1024), byte(FramePageChunk))
	f.Add([]byte{0xFF, 0xFE, 0x00, 0x01}, byte(0x7F))
	f.Fuzz(func(t *testing.T, data []byte, kind byte) {
		// Arbitrary bytes as a stream: must terminate without panicking.
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			if _, _, err := fr.ReadFrame(); err != nil {
				break
			}
		}

		// Written frames must round-trip exactly.
		if len(data) < maxFramePayload {
			var buf bytes.Buffer
			if err := NewFrameWriter(&buf).WriteFrame(kind, data); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			k, body, err := NewFrameReader(&buf).ReadFrame()
			if err != nil {
				t.Fatalf("ReadFrame after WriteFrame: %v", err)
			}
			if k != kind || !bytes.Equal(body, data) {
				t.Fatalf("round trip mismatch: kind 0x%02x vs 0x%02x, %d vs %d bytes",
					k, kind, len(body), len(data))
			}
		}
	})
}
