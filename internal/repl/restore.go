package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rexptree"
	"rexptree/internal/manifest"
)

// BackupInfo summarizes a received backup stream.
type BackupInfo struct {
	Meta     BackupMeta
	Manifest manifest.Manifest
	Bytes    int64 // total file bytes written (pages + WAL)
}

// WriteBackup consumes one backup stream from r and materializes it at
// base — the same layout a live index uses (<base>.manifest, one page
// file and one WAL per shard) — so the result opens with OpenSharded
// and verifies with rexpcheck.  Every frame is checksum-verified and
// the stream must close with its BackupEnd terminator; on any error
// the partial files are removed and the destination is left without a
// manifest, so a torn transfer can never pass for a backup.
func WriteBackup(base string, r io.Reader) (*BackupInfo, error) {
	fr := NewFrameReader(r)

	kind, body, err := fr.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("repl: reading backup meta: %w", err)
	}
	if kind != FrameMeta {
		return nil, fmt.Errorf("%w: backup stream starts with frame kind 0x%02x, want meta", ErrCorruptFrame, kind)
	}
	var meta BackupMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return nil, fmt.Errorf("repl: decoding backup meta: %w", err)
	}
	if meta.Version != ProtocolVersion {
		return nil, fmt.Errorf("repl: backup stream version %d, this build speaks %d", meta.Version, ProtocolVersion)
	}
	man, err := manifest.Decode(meta.Manifest)
	if err != nil {
		return nil, fmt.Errorf("repl: backup manifest: %w", err)
	}
	if man.Shards != meta.Shards || man.Generation != meta.Generation {
		return nil, fmt.Errorf("repl: backup meta (%d shards, generation %d) disagrees with its manifest (%d, %d)",
			meta.Shards, meta.Generation, man.Shards, man.Generation)
	}

	info := &BackupInfo{Meta: meta, Manifest: man}
	var created []string
	fail := func(err error) (*BackupInfo, error) {
		for _, p := range created {
			os.Remove(p)
		}
		return nil, err
	}

	for i := 0; i < meta.Shards; i++ {
		kind, body, err := fr.ReadFrame()
		if err != nil {
			return fail(fmt.Errorf("repl: reading shard %d header: %w", i, err))
		}
		if kind != FrameShardBegin {
			return fail(fmt.Errorf("%w: frame kind 0x%02x where shard %d header expected", ErrCorruptFrame, kind, i))
		}
		var hdr ShardHeader
		if err := json.Unmarshal(body, &hdr); err != nil {
			return fail(fmt.Errorf("repl: decoding shard %d header: %w", i, err))
		}
		if hdr.Shard != i || hdr.PageBytes < 0 || hdr.WALBytes < 0 {
			return fail(fmt.Errorf("%w: shard header %+v out of sequence at shard %d", ErrCorruptFrame, hdr, i))
		}

		pagePath := manifest.ShardPath(base, meta.Generation, i)
		walPath := rexptree.WALPath(pagePath)
		created = append(created, pagePath, walPath)
		if err := receiveShardFiles(fr, pagePath, walPath, hdr); err != nil {
			return fail(err)
		}
		info.Bytes += hdr.PageBytes + hdr.WALBytes
	}

	kind, _, err = fr.ReadFrame()
	if err != nil {
		return fail(fmt.Errorf("repl: reading backup terminator: %w", err))
	}
	if kind != FrameBackupEnd {
		return fail(fmt.Errorf("%w: frame kind 0x%02x where backup terminator expected", ErrCorruptFrame, kind))
	}

	// The manifest lands last, after everything it names is fsynced:
	// its presence is the commit point of the restore.
	if err := syncDir(filepath.Dir(base)); err != nil {
		return fail(err)
	}
	manPath := manifest.Path(base)
	created = append(created, manPath)
	if err := manifest.Write(manPath, man); err != nil {
		return fail(err)
	}
	if err := syncDir(filepath.Dir(base)); err != nil {
		return fail(err)
	}
	return info, nil
}

// receiveShardFiles writes one shard's page file and WAL from their
// chunk frames, verifying the byte counts match the header exactly.
func receiveShardFiles(fr *FrameReader, pagePath, walPath string, hdr ShardHeader) error {
	if err := receiveFile(fr, FramePageChunk, pagePath, hdr.PageBytes); err != nil {
		return fmt.Errorf("repl: shard %d page file: %w", hdr.Shard, err)
	}
	if err := receiveFile(fr, FrameWALChunk, walPath, hdr.WALBytes); err != nil {
		return fmt.Errorf("repl: shard %d WAL: %w", hdr.Shard, err)
	}
	kind, body, err := fr.ReadFrame()
	if err != nil {
		return fmt.Errorf("repl: shard %d terminator: %w", hdr.Shard, err)
	}
	if kind != FrameShardEnd {
		return fmt.Errorf("%w: frame kind 0x%02x where shard %d terminator expected", ErrCorruptFrame, kind, hdr.Shard)
	}
	var end struct {
		Shard int `json:"shard"`
	}
	if err := json.Unmarshal(body, &end); err != nil || end.Shard != hdr.Shard {
		return fmt.Errorf("%w: shard terminator names shard %d, want %d", ErrCorruptFrame, end.Shard, hdr.Shard)
	}
	return nil
}

// receiveFile writes exactly n bytes of chunk frames of the given kind
// to path, fsyncing before returning.  n == 0 still creates the
// (empty) file so the restored layout is complete.
func receiveFile(fr *FrameReader, kind byte, path string, n int64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	got := int64(0)
	for got < n {
		k, body, err := fr.ReadFrame()
		if err != nil {
			return err
		}
		if k != kind {
			return fmt.Errorf("%w: frame kind 0x%02x inside a 0x%02x chunk run", ErrCorruptFrame, k, kind)
		}
		if got+int64(len(body)) > n {
			return fmt.Errorf("%w: chunk overruns the declared %d bytes", ErrCorruptFrame, n)
		}
		if _, err := f.Write(body); err != nil {
			return err
		}
		got += int64(len(body))
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
