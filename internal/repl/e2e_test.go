package repl

// End-to-end replication tests: a real leader index behind real HTTP
// handlers, a real follower applier, and a fault-injection proxy
// between them.  The acceptance bar throughout is fingerprint
// identity: after convergence the follower must answer all four query
// types (Timeslice, Window, Moving, Nearest) exactly like the leader
// at the follower's applied clock — or fail loudly trying.

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rexptree"
)

// --- leader/follower scaffolding ---------------------------------------

// testLeader is a durable sharded index with a replication hub and an
// HTTP server in front, plus an optional fault proxy.
type testLeader struct {
	ix   *rexptree.ShardedTree
	hub  *Hub
	srv  *httptest.Server
	mu   sync.Mutex
	clk  float64
	rng  *rand.Rand
	live map[uint32]bool
}

func newTestLeader(t *testing.T, shards int, retain int64, wrap func(http.Handler) http.Handler) *testLeader {
	t.Helper()
	opts := rexptree.DefaultOptions()
	opts.Path = filepath.Join(t.TempDir(), "leader")
	opts.Durability = rexptree.DurabilityOnCommit
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ix, retain)
	mux := http.NewServeMux()
	mux.Handle("GET /v1/backup", hub.BackupHandler())
	mux.Handle("GET /v1/wal", hub.WALHandler())
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	srv := httptest.NewServer(h)
	l := &testLeader{ix: ix, hub: hub, srv: srv, rng: rand.New(rand.NewSource(7)), live: map[uint32]bool{}}
	t.Cleanup(func() {
		srv.Close()
		hub.Close()
		ix.Close()
	})
	return l
}

// mutate applies n random mutations (≈1 delete per 8 updates) and
// returns the leader clock afterwards.
func (l *testLeader) mutate(t *testing.T, n int) float64 {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < n; i++ {
		l.clk += 0.001
		id := uint32(l.rng.Intn(400) + 1)
		if l.live[id] && l.rng.Intn(8) == 0 {
			if _, err := l.ix.Delete(id, l.clk); err != nil {
				t.Fatal(err)
			}
			delete(l.live, id)
			continue
		}
		p := rexptree.Point{
			Time: l.clk,
			Pos:  [3]float64{l.rng.Float64() * 1000, l.rng.Float64() * 1000},
			Vel:  [3]float64{l.rng.Float64()*4 - 2, l.rng.Float64()*4 - 2},
		}
		if err := l.ix.Update(id, p, l.clk); err != nil {
			t.Fatal(err)
		}
		l.live[id] = true
	}
	return l.clk
}

func (l *testLeader) clock() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.clk
}

func newTestApplier(t *testing.T, leaderURL, dir string) *Applier {
	t.Helper()
	app, err := NewApplier(ApplierOptions{
		Leader:     leaderURL,
		Dir:        dir,
		MaxBackoff: 200 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Close() })
	return app
}

// waitCaughtUp blocks until the applier has applied everything the
// feed holds (or fails the test after a deadline).
func waitCaughtUp(t *testing.T, app *Applier, feed *Feed) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		head, _ := feed.Head()
		if app.AppliedLSN() >= head-1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, leader head %d", app.AppliedLSN(), head)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- fingerprinting ----------------------------------------------------

// queryFingerprint runs a fixed battery of all four query types plus
// point lookups and the stored count.  Region results are sorted by id
// (a sharded merge and a single traversal order the same set
// differently).
type queryFingerprint struct {
	queries [][]rexptree.Result
	points  []rexptree.Point
	present []bool
	size    int
}

func fingerprint(t *testing.T, ix *rexptree.ShardedTree, now float64) queryFingerprint {
	t.Helper()
	var fp queryFingerprint
	add := func(sorted bool, rs []rexptree.Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if sorted {
			sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
		}
		if len(rs) == 0 {
			rs = nil
		}
		fp.queries = append(fp.queries, rs)
	}
	inner := rexptree.Rect{Lo: rexptree.Vec{120, 90}, Hi: rexptree.Vec{460, 430}}
	mid := rexptree.Rect{Lo: rexptree.Vec{310, 260}, Hi: rexptree.Vec{720, 650}}
	world := rexptree.Rect{Lo: rexptree.Vec{-100, -100}, Hi: rexptree.Vec{1100, 1100}}

	rs, err := ix.Timeslice(inner, now, now)
	add(true, rs, err)
	rs, err = ix.Timeslice(world, now+12, now)
	add(true, rs, err)
	rs, err = ix.Window(inner, now+1, now+9, now)
	add(true, rs, err)
	rs, err = ix.Window(mid, now, now+25, now)
	add(true, rs, err)
	rs, err = ix.Moving(inner, mid, now+2, now+14, now)
	add(true, rs, err)
	rs, err = ix.Nearest(rexptree.Vec{500, 500}, now+3, 12, now)
	add(false, rs, err)
	rs, err = ix.Nearest(rexptree.Vec{80, 910}, now, 5, now)
	add(false, rs, err)

	for id := uint32(1); id <= 400; id += 13 {
		p, ok := ix.Get(id, now)
		fp.points = append(fp.points, p)
		fp.present = append(fp.present, ok)
	}
	fp.size = ix.Len()
	return fp
}

func requireSameFingerprint(t *testing.T, got, want queryFingerprint, what string) {
	t.Helper()
	if got.size != want.size {
		t.Fatalf("%s: %d stored reports, leader has %d", what, got.size, want.size)
	}
	for i := range want.queries {
		if !reflect.DeepEqual(got.queries[i], want.queries[i]) {
			t.Fatalf("%s: query %d diverges: %d results vs leader's %d",
				what, i, len(got.queries[i]), len(want.queries[i]))
		}
	}
	if !reflect.DeepEqual(got.present, want.present) || !reflect.DeepEqual(got.points, want.points) {
		t.Fatalf("%s: point lookups diverge from the leader", what)
	}
}

// requireConverged waits for catch-up and demands fingerprint identity
// at the follower's applied clock.
func requireConverged(t *testing.T, l *testLeader, app *Applier, what string) {
	t.Helper()
	waitCaughtUp(t, app, l.hub.Feed())
	now := app.Clock()
	requireSameFingerprint(t, fingerprint(t, app.Index(), now), fingerprint(t, l.ix, now), what)
}

// --- the happy path and the acceptance criterion -----------------------

// TestReplFollowerConvergence is the issue's acceptance test: a
// follower bootstrapped over HTTP serves all four query types with
// results identical to the leader's at the follower's applied logical
// clock, while the leader keeps taking updates.
func TestReplFollowerConvergence(t *testing.T) {
	l := newTestLeader(t, 4, 0, nil)
	l.mutate(t, 1500)

	app := newTestApplier(t, l.srv.URL, t.TempDir())
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	app.Start()

	// Concurrent leader update stream while the follower tails.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			l.mutate(t, 100)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	<-done

	requireConverged(t, l, app, "bootstrapped follower")
	if st := app.Stats(); st.Bootstraps != 1 || st.FrameErrors != 0 {
		t.Fatalf("clean run stats: %+v", st)
	}
}

// TestReplFollowerCrashMidTail kills the applier mid-stream and
// resumes it from its durable cursor in a fresh process-equivalent: a
// new Applier over the same directory.  Replay must be idempotent.
func TestReplFollowerCrashMidTail(t *testing.T) {
	l := newTestLeader(t, 2, 0, nil)
	l.mutate(t, 800)
	dir := t.TempDir()

	app := newTestApplier(t, l.srv.URL, dir)
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	app.Start()
	l.mutate(t, 400)
	waitCaughtUp(t, app, l.hub.Feed())
	if err := app.Close(); err != nil { // "crash": stop mid-life, cursor persisted
		t.Fatal(err)
	}

	l.mutate(t, 400) // the follower misses these while down

	app2 := newTestApplier(t, l.srv.URL, dir)
	if err := app2.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := app2.Stats(); st.Bootstraps != 0 {
		t.Fatalf("resume re-bootstrapped: %+v", st)
	}
	app2.Start()
	requireConverged(t, l, app2, "resumed follower")
}

// TestReplFollowerCrashMidBootstrap leaves a torn partial replica (a
// bootstrap that died mid-stream) in the directory; the next applier
// must stage into a fresh file set, never reuse the partial one, and
// still converge.
func TestReplFollowerCrashMidBootstrap(t *testing.T) {
	l := newTestLeader(t, 2, 0, nil)
	l.mutate(t, 600)
	dir := t.TempDir()

	// A crashed bootstrap: partial staged files, no CURRENT pointer.
	if err := os.WriteFile(filepath.Join(dir, "replica-000003.s0"), []byte("torn partial page file"), 0o644); err != nil {
		t.Fatal(err)
	}

	app := newTestApplier(t, l.srv.URL, dir)
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(app.CurrentBase()); base != "replica-000004" {
		t.Fatalf("bootstrap staged into %s; must sequence past the torn replica-000003", base)
	}
	app.Start()
	requireConverged(t, l, app, "bootstrap after torn staging")
}

// TestReplLeaderCrashMidSnapshot cuts the backup stream partway
// through, twice.  Each cut must surface as a loud bootstrap failure
// (truncated stream, partial files removed), and the third, unbroken
// attempt must converge.
func TestReplLeaderCrashMidSnapshot(t *testing.T) {
	var failures atomic32
	wrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/backup" && failures.next() < 2 {
				w.(http.Flusher).Flush()
				conn, _, err := w.(http.Hijacker).Hijack()
				if err == nil {
					// Leak a torn prefix, then kill the connection.
					conn.Write([]byte{0xFF, 0x00, 0x00, 0x00})
					conn.Close()
				}
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	l := newTestLeader(t, 2, 0, wrap)
	l.mutate(t, 600)

	dir := t.TempDir()
	app := newTestApplier(t, l.srv.URL, dir)
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := app.Stats(); st.FrameErrors == 0 {
		t.Fatalf("cut snapshots were not counted as frame errors: %+v", st)
	}
	// The torn attempts must not leave partial replica file sets behind:
	// everything in the directory belongs to the one successful base.
	base := filepath.Base(app.CurrentBase())
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "CURRENT" && !strings.HasPrefix(e.Name(), base) {
			t.Fatalf("torn bootstrap left %s behind (current base %s)", e.Name(), base)
		}
	}
	app.Start()
	requireConverged(t, l, app, "bootstrap after leader crashes")
}

// TestReplTornWireFrame flips one byte inside the first record-bearing
// tail response.  The follower must refuse the frame (counted), drop
// the connection, and reconverge from its exact cursor.
func TestReplTornWireFrame(t *testing.T) {
	var flipped atomic32
	wrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/wal" && flipped.next() < 1 {
				inner.ServeHTTP(&byteFlipper{ResponseWriter: w, flipAt: 40}, r)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	l := newTestLeader(t, 2, 0, wrap)
	l.mutate(t, 500)

	app := newTestApplier(t, l.srv.URL, t.TempDir())
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.mutate(t, 300) // give the first tail response real records to damage
	app.Start()
	requireConverged(t, l, app, "follower after a torn wire frame")
	st := app.Stats()
	if st.FrameErrors == 0 {
		t.Fatalf("byte flip was not refused: %+v", st)
	}
	if st.Bootstraps != 1 {
		t.Fatalf("a torn tail frame must retry the tail, not re-bootstrap: %+v", st)
	}
}

// TestReplDisconnectStorm drops every tail connection after a small
// byte budget for a while.  The follower must keep reconnecting with
// backoff (counted) and converge once the network heals.
func TestReplDisconnectStorm(t *testing.T) {
	var storms atomic32
	wrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/wal" && storms.next() < 5 {
				inner.ServeHTTP(&connCutter{ResponseWriter: w, budget: 600}, r)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	l := newTestLeader(t, 2, 0, wrap)
	l.mutate(t, 300)

	app := newTestApplier(t, l.srv.URL, t.TempDir())
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Pile up a tail backlog before the loop starts so the stormed
	// connections carry real record traffic past the cutter's budget.
	l.mutate(t, 2000)
	app.Start()
	requireConverged(t, l, app, "follower after a disconnect storm")
	if st := app.Stats(); st.FrameErrors == 0 && st.Reconnects == 0 {
		t.Fatalf("storm left no trace in the counters: %+v", st)
	}
}

// TestReplSlowConsumerRebootstraps retains almost nothing at the
// leader; a follower that stops tailing while the leader streams past
// the window must get 410, re-bootstrap from a fresh snapshot, and
// converge — degrading gracefully instead of serving a gap.
func TestReplSlowConsumerRebootstraps(t *testing.T) {
	l := newTestLeader(t, 2, 512, nil) // ~a dozen records of retention
	l.mutate(t, 300)

	dir := t.TempDir()
	app := newTestApplier(t, l.srv.URL, dir)
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Not tailing: the follower sleeps while the leader blows far past
	// the retained window.
	l.mutate(t, 2000)

	app.Start()
	requireConverged(t, l, app, "slow consumer after re-bootstrap")
	if st := app.Stats(); st.Bootstraps != 2 {
		t.Fatalf("expected exactly one re-bootstrap, got %+v", st)
	}
}

// TestReplFollowerQueriesDuringTail races follower reads against tail
// application (run under -race in CI): queries at the applied clock
// must never error or crash while records stream in.
func TestReplFollowerQueriesDuringTail(t *testing.T) {
	l := newTestLeader(t, 2, 0, nil)
	l.mutate(t, 500)

	app := newTestApplier(t, l.srv.URL, t.TempDir())
	if err := app.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	app.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			world := rexptree.Rect{Lo: rexptree.Vec{-100, -100}, Hi: rexptree.Vec{1100, 1100}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix, now := app.Index(), app.Clock()
				if _, err := ix.Timeslice(world, now, now); err != nil {
					t.Error(err)
					return
				}
				// A concurrent apply can advance the tree between the
				// clock read and the query; Nearest then rejects the
				// stale time.  That is the defined contract (any leader
				// client races writers the same way) — re-read and go on.
				if _, err := ix.Nearest(rexptree.Vec{500, 500}, now, 5, now); err != nil &&
					!strings.Contains(err.Error(), "precedes current time") {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		l.mutate(t, 200)
		time.Sleep(time.Millisecond)
	}
	waitCaughtUp(t, app, l.hub.Feed())
	close(stop)
	wg.Wait()
	requireConverged(t, l, app, "follower under concurrent reads")
}

// --- fault-injection plumbing ------------------------------------------

// atomic32 is a tiny counter for "fail the first N requests" wrappers.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) next() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.n
	a.n++
	return n
}

// byteFlipper corrupts one byte of the response body at offset flipAt.
type byteFlipper struct {
	http.ResponseWriter
	flipAt  int
	written int
}

func (b *byteFlipper) Write(p []byte) (int, error) {
	if b.written <= b.flipAt && b.flipAt < b.written+len(p) {
		q := append([]byte(nil), p...)
		q[b.flipAt-b.written] ^= 0x20
		b.written += len(p)
		return b.ResponseWriter.Write(q)
	}
	b.written += len(p)
	return b.ResponseWriter.Write(p)
}

// connCutter hijacks and kills the connection once budget bytes have
// been written, simulating a flaky network path.
type connCutter struct {
	http.ResponseWriter
	budget  int
	written int
}

func (c *connCutter) Write(p []byte) (int, error) {
	if c.written >= c.budget {
		if hj, ok := c.ResponseWriter.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return 0, http.ErrAbortHandler
	}
	c.written += len(p)
	return c.ResponseWriter.Write(p)
}
