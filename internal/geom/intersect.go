package geom

import "math"

// Interval is a closed time interval [Lo, Hi].  It is empty when
// Lo > Hi.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether iv contains no time instant.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection of iv and other.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{math.Max(iv.Lo, other.Lo), math.Min(iv.Hi, other.Hi)}
}

// clipLE narrows iv to the sub-interval where a0+a1·t <= b0+b1·t.
func clipLE(iv Interval, a0, a1, b0, b1 float64) Interval {
	c0 := a0 - b0
	c1 := a1 - b1
	if c1 == 0 {
		if c0 <= 0 {
			return iv
		}
		return Interval{1, 0}
	}
	x := -c0 / c1
	if c1 > 0 {
		// holds for t <= x
		if x < iv.Hi {
			iv.Hi = x
		}
	} else {
		// holds for t >= x
		if x > iv.Lo {
			iv.Lo = x
		}
	}
	return iv
}

// ClipLE exposes clipLE for columnar traversal kernels that evaluate
// the same clip sequence over decomposed coordinates: it narrows iv to
// the sub-interval where a0+a1·t <= b0+b1·t.  Callers must apply clips
// in OverlapInterval's order to reproduce its verdicts bit for bit.
func ClipLE(iv Interval, a0, a1, b0, b1 float64) Interval {
	return clipLE(iv, a0, a1, b0, b1)
}

// OverlapInterval returns the interval of times within [t1, t2] during
// which the snapshots of a and b intersect, using the first dims
// dimensions.  The returned interval is empty when they never meet.
func OverlapInterval(a, b TPRect, t1, t2 float64, dims int) Interval {
	iv := Interval{t1, t2}
	for i := 0; i < dims && !iv.Empty(); i++ {
		// a.Lo_i(t) <= b.Hi_i(t)
		iv = clipLE(iv, a.Lo[i], a.VLo[i], b.Hi[i], b.VHi[i])
		// b.Lo_i(t) <= a.Hi_i(t)
		iv = clipLE(iv, b.Lo[i], b.VLo[i], a.Hi[i], a.VHi[i])
	}
	return iv
}

// Intersects reports whether a and b intersect at some instant of
// [t1, t2].
func Intersects(a, b TPRect, t1, t2 float64, dims int) bool {
	if t1 > t2 {
		return false
	}
	return !OverlapInterval(a, b, t1, t2, dims).Empty()
}

// Query is the unified representation of the paper's three query
// types: a (possibly moving) rectangle Region evaluated over the time
// interval [T1, T2].
//
//   - Type 1 (timeslice):  T1 == T2, zero Region velocities.
//   - Type 2 (window):     T1 <  T2, zero Region velocities.
//   - Type 3 (moving):     T1 <  T2, Region interpolates R1 -> R2.
type Query struct {
	Region TPRect
	T1, T2 float64
}

// Timeslice builds a Type 1 query: rectangle r at time t.
func Timeslice(r Rect, t float64) Query {
	return Query{Region: TPRect{Lo: r.Lo, Hi: r.Hi, TExp: math.Inf(1)}, T1: t, T2: t}
}

// Window builds a Type 2 query: rectangle r throughout [t1, t2].
func Window(r Rect, t1, t2 float64) Query {
	return Query{Region: TPRect{Lo: r.Lo, Hi: r.Hi, TExp: math.Inf(1)}, T1: t1, T2: t2}
}

// Moving builds a Type 3 query: the trapezoid connecting r1 at t1 to
// r2 at t2.  It requires t1 < t2.
func Moving(r1, r2 Rect, t1, t2 float64, dims int) Query {
	var tp TPRect
	tp.TExp = math.Inf(1)
	dt := t2 - t1
	for i := 0; i < dims; i++ {
		tp.VLo[i] = (r2.Lo[i] - r1.Lo[i]) / dt
		tp.VHi[i] = (r2.Hi[i] - r1.Hi[i]) / dt
		tp.Lo[i] = r1.Lo[i] - tp.VLo[i]*t1
		tp.Hi[i] = r1.Hi[i] - tp.VHi[i]*t1
	}
	return Query{Region: tp, T1: t1, T2: t2}
}

// MatchesRect reports whether the query trapezoid intersects the
// bounding rectangle br, honoring br's expiration time: intersection
// is checked over [T1, min(T2, br.TExp)] (paper §4.1.5).  When
// useExp is false the expiration time is ignored, which yields the
// plain TPR-tree behaviour.
func (q Query) MatchesRect(br TPRect, dims int, useExp bool) bool {
	t2 := q.T2
	if useExp && br.TExp < t2 {
		t2 = br.TExp
	}
	return Intersects(q.Region, br, q.T1, t2, dims)
}

// MatchesPoint reports whether the trajectory of p crosses the query
// trapezoid, honoring p's expiration time when useExp is set.
func (q Query) MatchesPoint(p MovingPoint, dims int, useExp bool) bool {
	return q.MatchesRect(PointTPRect(p), dims, useExp)
}
