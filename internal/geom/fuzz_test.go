package geom

import (
	"math"
	"testing"
)

// fuzzRect builds a well-formed 2D TPRect from 8 raw floats: the spans
// are forced non-negative so Lo <= Hi at the reference time, which is
// the invariant every rectangle in the tree satisfies.
func fuzzRect(x, y, w, h, vlx, vly, vhx, vhy float64) TPRect {
	var r TPRect
	r.Lo[0], r.Lo[1] = x, y
	r.Hi[0], r.Hi[1] = x+math.Abs(w), y+math.Abs(h)
	r.VLo[0], r.VLo[1] = vlx, vly
	r.VHi[0], r.VHi[1] = vhx, vhy
	r.TExp = math.Inf(1)
	return r
}

func fuzzOK(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
			return false
		}
	}
	return true
}

// FuzzTrapezoidIntersect drives the time-parameterized intersection
// kernel — the predicate every query type funnels through — with
// arbitrary rectangle pairs and time windows, checking the properties
// that hold for any input: no panics, symmetry, the overlap interval
// confined to the query window, monotonicity in the window, agreement
// between Intersects and Query.MatchesRect, and consistency with a
// direct snapshot evaluation at the overlap midpoint.
func FuzzTrapezoidIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 0.0, 0.0, 0.0, 0.0,
		5.0, 5.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.0, 10.0)
	f.Add(0.0, 0.0, 1.0, 1.0, -1.0, 0.0, -1.0, 0.0,
		100.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 50.0)
	f.Add(0.0, 0.0, 5.0, 5.0, 0.5, 0.25, 0.5, 0.25,
		20.0, 20.0, 5.0, 5.0, -0.5, -0.25, -0.5, -0.25, 0.0, 40.0)
	f.Add(1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
		1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 3.0)
	f.Fuzz(func(t *testing.T,
		ax, ay, aw, ah, avlx, avly, avhx, avhy float64,
		bx, by, bw, bh, bvlx, bvly, bvhx, bvhy float64,
		t1, t2 float64) {
		if !fuzzOK(ax, ay, aw, ah, avlx, avly, avhx, avhy,
			bx, by, bw, bh, bvlx, bvly, bvhx, bvhy, t1, t2) {
			t.Skip()
		}
		const dims = 2
		a := fuzzRect(ax, ay, aw, ah, avlx, avly, avhx, avhy)
		b := fuzzRect(bx, by, bw, bh, bvlx, bvly, bvhx, bvhy)

		got := Intersects(a, b, t1, t2, dims)
		if sym := Intersects(b, a, t1, t2, dims); sym != got {
			t.Fatalf("asymmetric: Intersects(a,b)=%v, Intersects(b,a)=%v", got, sym)
		}
		if t1 > t2 && got {
			t.Fatalf("intersects over the empty window [%v, %v]", t1, t2)
		}

		iv := OverlapInterval(a, b, t1, t2, dims)
		if got != !iv.Empty() {
			t.Fatalf("Intersects=%v but OverlapInterval=%+v", got, iv)
		}
		if !iv.Empty() && (iv.Lo < t1 || iv.Hi > t2) {
			t.Fatalf("overlap %+v escapes window [%v, %v]", iv, t1, t2)
		}

		// Monotonicity: a superset window can only add overlap.
		if t1 <= t2 && !Intersects(a, b, t1-1, t2+1, dims) && got {
			t.Fatal("intersection vanished when the window grew")
		}

		// Query.MatchesRect with a never-expiring rectangle is exactly
		// the raw intersection test.
		if t1 <= t2 {
			q := Query{Region: a, T1: t1, T2: t2}
			if m := q.MatchesRect(b, dims, true); m != got {
				t.Fatalf("MatchesRect=%v, Intersects=%v", m, got)
			}
		}

		// A reported overlap must be confirmed by the per-dimension
		// snapshot inequalities at its midpoint.  clipLE computes each
		// crossing as a division, so allow a relative epsilon on the
		// comparison — the midpoint of a one-sided touch can sit a few
		// ulps past the exact crossing.
		if !iv.Empty() {
			mid := (iv.Lo + iv.Hi) / 2
			for i := 0; i < dims; i++ {
				alo := a.Lo[i] + a.VLo[i]*mid
				ahi := a.Hi[i] + a.VHi[i]*mid
				blo := b.Lo[i] + b.VLo[i]*mid
				bhi := b.Hi[i] + b.VHi[i]*mid
				eps := 1e-9 * (1 + math.Max(math.Abs(alo)+math.Abs(ahi), math.Abs(blo)+math.Abs(bhi)) + math.Abs(mid))
				if alo > bhi+eps || blo > ahi+eps {
					t.Fatalf("dim %d: no snapshot overlap at midpoint %v: a=[%v,%v] b=[%v,%v]",
						i, mid, alo, ahi, blo, bhi)
				}
			}
		}
	})
}
