// Package geom provides the time-parameterized geometry used by the
// R^exp-tree and the TPR-tree: d-dimensional points moving linearly in
// time, time-parameterized bounding rectangles (TPBRs), intersection
// tests between the (d+1)-dimensional trapezoids they trace in
// (position, time)-space, and the exact time integrals of area, margin,
// overlap and center distance that drive the R*-style insertion
// heuristics.
//
// All positions are stored as values at a common reference time, the
// tree epoch t = 0 (the paper's index-creation time t0).  Evaluating a
// shape "at time t" means adding velocity·t to the stored coordinates.
// Expiration times are absolute simulation times; an entry that never
// expires carries math.Inf(1).
package geom

import "math"

// MaxDims is the largest supported dimensionality.  The paper indexes
// points moving in one, two, or three dimensions; two is used in all
// experiments.
const MaxDims = 3

// Vec is a d-dimensional coordinate or velocity vector.  Only the first
// d components are meaningful; the rest must be zero so that Vec values
// compare and hash consistently.
type Vec [MaxDims]float64

// Add returns u + v.
func (u Vec) Add(v Vec) Vec {
	for i := range u {
		u[i] += v[i]
	}
	return u
}

// Sub returns u - v.
func (u Vec) Sub(v Vec) Vec {
	for i := range u {
		u[i] -= v[i]
	}
	return u
}

// Scale returns u scaled by s.
func (u Vec) Scale(s float64) Vec {
	for i := range u {
		u[i] *= s
	}
	return u
}

// Dist returns the Euclidean distance between u and v in the first
// dims dimensions.
func (u Vec) Dist(v Vec, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		d := u[i] - v[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Inf is the expiration time of entries that never expire.
func Inf() float64 { return math.Inf(1) }

// IsFinite reports whether t is neither infinite nor NaN.
func IsFinite(t float64) bool { return !math.IsInf(t, 0) && !math.IsNaN(t) }
