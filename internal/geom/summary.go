package geom

import "math"

// Summary is a conservative time-parameterized bound over a set of
// moving points: a TPRect guaranteed to contain every summarized
// trajectory at all times t >= the latest Widen time.  It is the
// per-shard pruning structure of the sharded front-end: widened (never
// shrunk) as objects arrive, so a query trapezoid that misses the
// summary provably matches nothing in the summarized set, and
// periodically replaced wholesale by a tight bound recomputed from the
// index root.
//
// The zero value is the empty summary, which bounds nothing.
type Summary struct {
	Box TPRect
	Has bool // false while the summary bounds nothing
}

// Reset empties the summary.
func (s *Summary) Reset() { *s = Summary{} }

// WidenPoint grows the summary so it also bounds the trajectory of p
// for all t >= now.  The point's expiration time is deliberately
// ignored (the summary never tightens on expiry), keeping the bound
// conservative.
func (s *Summary) WidenPoint(p MovingPoint, now float64, dims int) {
	s.WidenRect(PointTPRect(p), now, dims)
}

// WidenRect grows the summary so it also bounds r for all t >= now,
// where r must itself be valid for t >= now.
func (s *Summary) WidenRect(r TPRect, now float64, dims int) {
	r.TExp = math.Inf(1)
	if !s.Has {
		s.Box, s.Has = r, true
		return
	}
	s.Box = UnionConservative(s.Box, r, now, dims)
	s.Box.TExp = math.Inf(1)
}

// Matches reports whether the query trapezoid can intersect anything
// the summary bounds.  An empty summary matches nothing; otherwise the
// test is the same trapezoid intersection used for internal index
// entries, so it errs exactly on the conservative side.
func (s Summary) Matches(q Query, dims int) bool {
	if !s.Has {
		return false
	}
	return q.MatchesRect(s.Box, dims, false)
}

// MinDistAt returns a lower bound on the distance from pos to any
// summarized object's position at time t (+Inf for the empty summary).
func (s Summary) MinDistAt(pos Vec, t float64, dims int) float64 {
	if !s.Has {
		return math.Inf(1)
	}
	return s.Box.At(t).MinDist(pos, dims)
}

// MinDist returns the minimum Euclidean distance from point q to the
// rectangle (zero when q lies inside).
func (r Rect) MinDist(q Vec, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		switch {
		case q[i] < r.Lo[i]:
			d := r.Lo[i] - q[i]
			s += d * d
		case q[i] > r.Hi[i]:
			d := q[i] - r.Hi[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}
