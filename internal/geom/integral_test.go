package geom

import (
	"math"
	"math/rand"
	"testing"
)

// riemann integrates f over [a,b] with a fine midpoint rule.
func riemann(f func(float64) float64, a, b float64) float64 {
	const n = 20000
	h := (b - a) / n
	var s float64
	for k := 0; k < n; k++ {
		s += f(a + (float64(k)+0.5)*h)
	}
	return s * h
}

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestAreaIntegralStaticRect(t *testing.T) {
	r := TPRect{Lo: Vec{0, 0}, Hi: Vec{3, 4}, TExp: Inf()}
	got := AreaIntegral(r, 1, 5, 2)
	if !approxEq(got, 12*4, 1e-12) {
		t.Errorf("static area integral = %v, want 48", got)
	}
}

func TestAreaIntegralGrowingRect(t *testing.T) {
	// Extents: (2+t) and (1+2t); integral over [0,1] of (2+t)(1+2t)
	// = int 2 + 5t + 2t^2 = 2 + 5/2 + 2/3.
	r := TPRect{Lo: Vec{0, 0}, Hi: Vec{2, 1}, VLo: Vec{0, 0}, VHi: Vec{1, 2}, TExp: Inf()}
	want := 2 + 2.5 + 2.0/3.0
	got := AreaIntegral(r, 0, 1, 2)
	if !approxEq(got, want, 1e-12) {
		t.Errorf("growing area integral = %v, want %v", got, want)
	}
}

func TestAreaIntegralShrinkingToZero(t *testing.T) {
	// Extent 2-t in dim 0 hits zero at t=2; area contribution beyond
	// must be clamped to zero, not negative.
	r := TPRect{Lo: Vec{0, 0}, Hi: Vec{2, 1}, VHi: Vec{-1, 0}, TExp: Inf()}
	got := AreaIntegral(r, 0, 5, 2)
	want := 2.0 // int_0^2 (2-t)*1 dt = 2
	if !approxEq(got, want, 1e-12) {
		t.Errorf("clamped area integral = %v, want %v", got, want)
	}
}

func TestAreaIntegralRandomAgainstRiemann(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		r := randTPRect(rng, 2)
		t1 := rng.Float64() * 3
		t2 := t1 + rng.Float64()*8
		got := AreaIntegral(r, t1, t2, 2)
		want := riemann(func(tt float64) float64 { return r.At(tt).Area(2) }, t1, t2)
		if !approxEq(got, want, 1e-3) {
			t.Fatalf("area integral %v vs riemann %v (r=%v)", got, want, r)
		}
	}
}

func TestAreaIntegral3D(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 25; iter++ {
		r := randTPRect(rng, 3)
		got := AreaIntegral(r, 0, 4, 3)
		want := riemann(func(tt float64) float64 { return r.At(tt).Area(3) }, 0, 4)
		if !approxEq(got, want, 1e-3) {
			t.Fatalf("3d area integral %v vs riemann %v", got, want)
		}
	}
}

func TestMarginIntegral(t *testing.T) {
	r := TPRect{Lo: Vec{0, 0}, Hi: Vec{3, 4}, VHi: Vec{1, 0}, TExp: Inf()}
	// Margin(t) = (3+t) + 4; integral over [0,2] = 6+2+8 = 16.
	got := MarginIntegral(r, 0, 2, 2)
	if !approxEq(got, 16, 1e-12) {
		t.Errorf("margin integral = %v, want 16", got)
	}
}

func TestMarginIntegralRandomAgainstRiemann(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		r := randTPRect(rng, 2)
		got := MarginIntegral(r, 0, 6, 2)
		want := riemann(func(tt float64) float64 {
			var m float64
			s := r.At(tt)
			for i := 0; i < 2; i++ {
				m += math.Max(0, s.Hi[i]-s.Lo[i])
			}
			return m
		}, 0, 6)
		if !approxEq(got, want, 1e-3) {
			t.Fatalf("margin integral %v vs riemann %v", got, want)
		}
	}
}

func TestOverlapIntegralDisjoint(t *testing.T) {
	a := TPRect{Lo: Vec{0, 0}, Hi: Vec{1, 1}, TExp: Inf()}
	b := TPRect{Lo: Vec{5, 5}, Hi: Vec{6, 6}, TExp: Inf()}
	if got := OverlapIntegral(a, b, 0, 10, 2); got != 0 {
		t.Errorf("disjoint overlap integral = %v", got)
	}
}

func TestOverlapIntegralIdentical(t *testing.T) {
	a := TPRect{Lo: Vec{0, 0}, Hi: Vec{2, 3}, VHi: Vec{1, 0}, TExp: Inf()}
	// Overlap with itself = own area.
	got := OverlapIntegral(a, a, 0, 2, 2)
	want := AreaIntegral(a, 0, 2, 2)
	if !approxEq(got, want, 1e-12) {
		t.Errorf("self overlap %v vs area %v", got, want)
	}
}

func TestOverlapIntegralRandomAgainstRiemann(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		a := randTPRect(rng, 2)
		b := randTPRect(rng, 2)
		// Pull them closer so overlaps actually happen.
		for i := 0; i < 2; i++ {
			b.Lo[i] = a.Lo[i] + rng.Float64()*6 - 3
			b.Hi[i] = b.Lo[i] + rng.Float64()*10
		}
		got := OverlapIntegral(a, b, 0, 5, 2)
		want := riemann(func(tt float64) float64 {
			sa, sb := a.At(tt), b.At(tt)
			v := 1.0
			for i := 0; i < 2; i++ {
				o := math.Min(sa.Hi[i], sb.Hi[i]) - math.Max(sa.Lo[i], sb.Lo[i])
				if o <= 0 {
					return 0
				}
				v *= o
			}
			return v
		}, 0, 5)
		if !approxEq(got, want, 1e-3) {
			t.Fatalf("overlap integral %v vs riemann %v\na=%v\nb=%v", got, want, a, b)
		}
	}
}

func TestCenterDistIntegral(t *testing.T) {
	// Two static unit squares 3 apart in x: distance constant 3.
	a := TPRect{Lo: Vec{0, 0}, Hi: Vec{1, 1}, TExp: Inf()}
	b := TPRect{Lo: Vec{3, 0}, Hi: Vec{4, 1}, TExp: Inf()}
	got := CenterDistIntegral(a, b, 0, 2, 2)
	if !approxEq(got, 6, 1e-6) {
		t.Errorf("center dist integral = %v, want 6", got)
	}
}

func TestCenterDistIntegralMoving(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 30; iter++ {
		a := randTPRect(rng, 2)
		b := randTPRect(rng, 2)
		got := CenterDistIntegral(a, b, 0, 4, 2)
		want := riemann(func(tt float64) float64 {
			return a.At(tt).Center(2).Dist(b.At(tt).Center(2), 2)
		}, 0, 4)
		if !approxEq(got, want, 1e-3) {
			t.Fatalf("center dist integral %v vs riemann %v", got, want)
		}
	}
}

func TestIntegralsEmptyWindow(t *testing.T) {
	r := TPRect{Lo: Vec{0, 0}, Hi: Vec{1, 1}, TExp: Inf()}
	if AreaIntegral(r, 5, 5, 2) != 0 || AreaIntegral(r, 5, 4, 2) != 0 {
		t.Error("area integral over empty window")
	}
	if MarginIntegral(r, 5, 4, 2) != 0 {
		t.Error("margin integral over empty window")
	}
	if OverlapIntegral(r, r, 5, 4, 2) != 0 {
		t.Error("overlap integral over empty window")
	}
	if CenterDistIntegral(r, r, 5, 4, 2) != 0 {
		t.Error("center dist integral over empty window")
	}
}
