package geom

import (
	"fmt"
	"math"
)

// MovingPoint is the record the index stores for one object: a linear
// trajectory x(t) = Pos + Vel·t (Pos is the position at the tree epoch
// t = 0) that is valid until the absolute expiration time TExp.
type MovingPoint struct {
	Pos  Vec
	Vel  Vec
	TExp float64
}

// At returns the predicted position of p at time t.
func (p MovingPoint) At(t float64) Vec {
	return p.Pos.Add(p.Vel.Scale(t))
}

// Expired reports whether p's positional information has expired at
// time now.
func (p MovingPoint) Expired(now float64) bool { return p.TExp < now }

// TPRect is a time-parameterized bounding rectangle: in each dimension
// the lower bound moves as Lo + VLo·t and the upper bound as
// Hi + VHi·t (coordinates stored at the tree epoch t = 0).  The
// rectangle is a valid bound for its contents for all t in
// [computation time, TExp]; TExp is +Inf when the bounded entries never
// all expire.
type TPRect struct {
	Lo, Hi   Vec
	VLo, VHi Vec
	TExp     float64
}

// TPRectAt builds a TPRect whose snapshot at time t equals r, with the
// given bound velocities and expiration time.  It back-extrapolates r
// to the epoch representation.
func TPRectAt(t float64, r Rect, vlo, vhi Vec, texp float64, dims int) TPRect {
	tp := TPRect{VLo: vlo, VHi: vhi, TExp: texp}
	for i := 0; i < dims; i++ {
		tp.Lo[i] = r.Lo[i] - vlo[i]*t
		tp.Hi[i] = r.Hi[i] - vhi[i]*t
	}
	return tp
}

// At returns the snapshot of r at time t.
func (r TPRect) At(t float64) Rect {
	var s Rect
	for i := range s.Lo {
		s.Lo[i] = r.Lo[i] + r.VLo[i]*t
		s.Hi[i] = r.Hi[i] + r.VHi[i]*t
	}
	return s
}

// Expired reports whether the rectangle's validity has ended at time
// now.
func (r TPRect) Expired(now float64) bool { return r.TExp < now }

// PointTPRect returns the degenerate TPRect tracing p's trajectory.
func PointTPRect(p MovingPoint) TPRect {
	return TPRect{Lo: p.Pos, Hi: p.Pos, VLo: p.Vel, VHi: p.Vel, TExp: p.TExp}
}

// ContainsTrajectory reports whether r bounds the trajectory of p for
// every t in [t1, t2].  Because both r's bounds and p are linear in t,
// it suffices to test the two endpoints.
func (r TPRect) ContainsTrajectory(p MovingPoint, t1, t2 float64, dims int) bool {
	return r.At(t1).ContainsPoint(p.At(t1), dims) &&
		r.At(t2).ContainsPoint(p.At(t2), dims)
}

// ContainsTPRect reports whether r bounds the child rectangle s for
// every t in [t1, t2] (endpoint test; both are linear in t).
func (r TPRect) ContainsTPRect(s TPRect, t1, t2 float64, dims int) bool {
	return r.At(t1).ContainsRect(s.At(t1), dims) &&
		r.At(t2).ContainsRect(s.At(t2), dims)
}

// UnionConservative returns the conservative union of a and b: the
// tightest TPRect at time now whose bound velocities are the
// min/max of a's and b's bound velocities.  This is the "what if"
// enlargement used by ChooseSubtree; it is bounding for all t >= now
// whenever a and b are.  The expiration time is the max of the two.
func UnionConservative(a, b TPRect, now float64, dims int) TPRect {
	var r TPRect
	r.TExp = math.Max(a.TExp, b.TExp)
	for i := 0; i < dims; i++ {
		r.VLo[i] = math.Min(a.VLo[i], b.VLo[i])
		r.VHi[i] = math.Max(a.VHi[i], b.VHi[i])
		lo := math.Min(a.Lo[i]+a.VLo[i]*now, b.Lo[i]+b.VLo[i]*now)
		hi := math.Max(a.Hi[i]+a.VHi[i]*now, b.Hi[i]+b.VHi[i]*now)
		r.Lo[i] = lo - r.VLo[i]*now
		r.Hi[i] = hi - r.VHi[i]*now
	}
	return r
}

// WithInfiniteExp returns a copy of r whose expiration time is +Inf.
// The modified ChooseSubtree variant of the paper (§4.2.2) treats all
// entries as infinite when making insertion decisions.
func (r TPRect) WithInfiniteExp() TPRect {
	r.TExp = math.Inf(1)
	return r
}

func (r TPRect) String() string {
	return fmt.Sprintf("TPRect[%v..%v v[%v..%v] exp=%g]", r.Lo, r.Hi, r.VLo, r.VHi, r.TExp)
}
