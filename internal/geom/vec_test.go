package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecAddSub(t *testing.T) {
	u := Vec{1, 2, 3}
	v := Vec{4, -1, 0.5}
	if got := u.Add(v); got != (Vec{5, 1, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := u.Sub(v); got != (Vec{-3, 3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVecScale(t *testing.T) {
	u := Vec{1, -2, 4}
	if got := u.Scale(0.5); got != (Vec{0.5, -1, 2}) {
		t.Errorf("Scale = %v", got)
	}
	if got := u.Scale(0); got != (Vec{}) {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestVecDist(t *testing.T) {
	u := Vec{0, 0, 0}
	v := Vec{3, 4, 100}
	if got := u.Dist(v, 2); got != 5 {
		t.Errorf("Dist dims=2 = %v, want 5", got)
	}
	if got := u.Dist(u, 3); got != 0 {
		t.Errorf("Dist self = %v", got)
	}
}

func TestVecAddSubRoundTrip(t *testing.T) {
	f := func(a, b [MaxDims]float64) bool {
		u, v := Vec(a), Vec(b)
		got := u.Add(v).Sub(v)
		for i := range got {
			if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
				return true // skip degenerate float inputs
			}
			if math.Abs(got[i]-u[i]) > 1e-9*(1+math.Abs(u[i])+math.Abs(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInfIsFinite(t *testing.T) {
	if IsFinite(Inf()) {
		t.Error("Inf reported finite")
	}
	if IsFinite(math.NaN()) {
		t.Error("NaN reported finite")
	}
	if !IsFinite(0) || !IsFinite(-12.5) {
		t.Error("finite values reported non-finite")
	}
}
