package geom

import (
	"fmt"
	"math"
)

// Rect is a static (snapshot) d-dimensional axis-parallel rectangle.
type Rect struct {
	Lo, Hi Vec
}

// EmptyRect returns a rectangle that contains nothing and acts as the
// identity for ExtendPoint/ExtendRect.
func EmptyRect() Rect {
	var r Rect
	for i := range r.Lo {
		r.Lo[i] = math.Inf(1)
		r.Hi[i] = math.Inf(-1)
	}
	return r
}

// IsEmpty reports whether r is inverted (contains nothing) in any of
// the first dims dimensions.
func (r Rect) IsEmpty(dims int) bool {
	for i := 0; i < dims; i++ {
		if r.Lo[i] > r.Hi[i] {
			return true
		}
	}
	return false
}

// ExtendPoint grows r minimally to include p.
func (r Rect) ExtendPoint(p Vec, dims int) Rect {
	for i := 0; i < dims; i++ {
		r.Lo[i] = math.Min(r.Lo[i], p[i])
		r.Hi[i] = math.Max(r.Hi[i], p[i])
	}
	return r
}

// ExtendRect grows r minimally to include s.
func (r Rect) ExtendRect(s Rect, dims int) Rect {
	for i := 0; i < dims; i++ {
		r.Lo[i] = math.Min(r.Lo[i], s.Lo[i])
		r.Hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return r
}

// ContainsPoint reports whether p lies inside r (boundaries included).
func (r Rect) ContainsPoint(p Vec, dims int) bool {
	for i := 0; i < dims; i++ {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies fully inside r.
func (r Rect) ContainsRect(s Rect, dims int) bool {
	for i := 0; i < dims; i++ {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect, dims int) bool {
	for i := 0; i < dims; i++ {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Area returns the d-dimensional volume of r (0 if empty).
func (r Rect) Area(dims int) float64 {
	a := 1.0
	for i := 0; i < dims; i++ {
		e := r.Hi[i] - r.Lo[i]
		if e < 0 {
			return 0
		}
		a *= e
	}
	return a
}

// Margin returns the sum of edge lengths of r (0 if empty).
func (r Rect) Margin(dims int) float64 {
	var m float64
	for i := 0; i < dims; i++ {
		e := r.Hi[i] - r.Lo[i]
		if e < 0 {
			return 0
		}
		m += e
	}
	return m
}

// Center returns the midpoint of r.
func (r Rect) Center(dims int) Vec {
	var c Vec
	for i := 0; i < dims; i++ {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

func (r Rect) String() string {
	return fmt.Sprintf("Rect[%v..%v]", r.Lo, r.Hi)
}
