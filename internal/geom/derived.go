package geom

import "math"

// DerivedExp returns the "natural" expiration time of r (paper
// §4.1.1): when expiration times are not recorded in internal index
// entries, a rectangle that shrinks in some dimension still cannot
// contain anything after the time its extent reaches zero, so that
// time serves as a derived expiration time.  It returns the earliest
// such zero-crossing after now, or +Inf when no extent shrinks.
func DerivedExp(r TPRect, now float64, dims int) float64 {
	e := math.Inf(1)
	for i := 0; i < dims; i++ {
		dv := r.VHi[i] - r.VLo[i]
		if dv >= 0 {
			continue
		}
		ext := (r.Hi[i] - r.Lo[i]) + dv*now
		if ext <= 0 {
			return now
		}
		if tz := now + ext/(-dv); tz < e {
			e = tz
		}
	}
	return e
}
