package geom

import (
	"math"
	"sort"
)

// The R^exp-tree replaces the R*-tree objective functions (area,
// margin, overlap, center distance of bounding rectangles) with their
// integrals over [t_upd, t_upd+H] (paper Eq. 1).  Because TPBR bounds
// are linear in t, per-dimension extents and overlaps are piecewise
// linear, so the integrands are piecewise polynomials of degree <=
// MaxDims.  Two-point Gauss-Legendre quadrature per piece is exact for
// polynomials up to degree 3, which covers every case here exactly.

// gl2 integrates f over [a, b] with two-point Gauss-Legendre
// quadrature (exact for cubics).
func gl2(f func(float64) float64, a, b float64) float64 {
	h := b - a
	if h <= 0 {
		return 0
	}
	m := (a + b) / 2
	d := h / (2 * math.Sqrt(3))
	return h / 2 * (f(m-d) + f(m+d))
}

// lin is the linear function c0 + c1*t.
type lin struct{ c0, c1 float64 }

func (l lin) at(t float64) float64 { return l.c0 + l.c1*t }

// root appends to ts the zero of l inside (t1, t2), if any.
func (l lin) root(ts []float64, t1, t2 float64) []float64 {
	if l.c1 == 0 {
		return ts
	}
	x := -l.c0 / l.c1
	if x > t1 && x < t2 {
		ts = append(ts, x)
	}
	return ts
}

// extent returns dimension i's extent of r as a linear function of t.
func extent(r TPRect, i int) lin {
	return lin{r.Hi[i] - r.Lo[i], r.VHi[i] - r.VLo[i]}
}

// integratePieces splits [t1, t2] at the given breakpoints and sums
// gl2 over pieces on which pred (evaluated at the midpoint) holds.
func integratePieces(f func(float64) float64, pred func(float64) bool, breaks []float64, t1, t2 float64) float64 {
	sort.Float64s(breaks)
	var total float64
	prev := t1
	for _, b := range append(breaks, t2) {
		if b <= prev || b > t2 {
			continue
		}
		if pred((prev + b) / 2) {
			total += gl2(f, prev, b)
		}
		prev = b
	}
	return total
}

// AreaIntegral returns the integral over [t1, t2] of the (clamped)
// area of r, i.e. of prod_i max(0, extent_i(t)).
func AreaIntegral(r TPRect, t1, t2 float64, dims int) float64 {
	if t2 <= t1 {
		return 0
	}
	// Fast path: every extent stays positive on [t1, t2] (the common
	// case on the insertion hot path) — the integrand is a polynomial
	// of degree <= 3, integrated exactly by two-point Gauss-Legendre.
	fast := true
	for i := 0; i < dims; i++ {
		c0 := r.Hi[i] - r.Lo[i]
		c1 := r.VHi[i] - r.VLo[i]
		if c0+c1*t1 <= 0 || c0+c1*t2 <= 0 {
			fast = false
			break
		}
	}
	if fast {
		h := t2 - t1
		m := (t1 + t2) / 2
		d := h / (2 * math.Sqrt(3))
		pa, pb := 1.0, 1.0
		for i := 0; i < dims; i++ {
			c0 := r.Hi[i] - r.Lo[i]
			c1 := r.VHi[i] - r.VLo[i]
			pa *= c0 + c1*(m-d)
			pb *= c0 + c1*(m+d)
		}
		return h / 2 * (pa + pb)
	}
	return areaIntegralSlow(r, t1, t2, dims)
}

func areaIntegralSlow(r TPRect, t1, t2 float64, dims int) float64 {
	exts := make([]lin, dims)
	var breaks []float64
	for i := 0; i < dims; i++ {
		exts[i] = extent(r, i)
		breaks = exts[i].root(breaks, t1, t2)
	}
	f := func(t float64) float64 {
		p := 1.0
		for i := 0; i < dims; i++ {
			p *= exts[i].at(t)
		}
		return p
	}
	pred := func(t float64) bool {
		for i := 0; i < dims; i++ {
			if exts[i].at(t) <= 0 {
				return false
			}
		}
		return true
	}
	return integratePieces(f, pred, breaks, t1, t2)
}

// MarginIntegral returns the integral over [t1, t2] of the sum of the
// (individually clamped) extents of r.
func MarginIntegral(r TPRect, t1, t2 float64, dims int) float64 {
	if t2 <= t1 {
		return 0
	}
	var total float64
	for i := 0; i < dims; i++ {
		e := extent(r, i)
		breaks := e.root(nil, t1, t2)
		total += integratePieces(
			func(t float64) float64 { return e.at(t) },
			func(t float64) bool { return e.at(t) > 0 },
			breaks, t1, t2)
	}
	return total
}

// overlap1 returns dimension i's overlap of a and b at time t:
// min(hi_a, hi_b) - max(lo_a, lo_b), not clamped.
func overlap1(a, b TPRect, i int, t float64) float64 {
	hi := math.Min(a.Hi[i]+a.VHi[i]*t, b.Hi[i]+b.VHi[i]*t)
	lo := math.Max(a.Lo[i]+a.VLo[i]*t, b.Lo[i]+b.VLo[i]*t)
	return hi - lo
}

// OverlapIntegral returns the integral over [t1, t2] of the volume of
// the intersection of a and b.
func OverlapIntegral(a, b TPRect, t1, t2 float64, dims int) float64 {
	if t2 <= t1 {
		return 0
	}
	var breaks []float64
	for i := 0; i < dims; i++ {
		// Branch switches of the min/max envelopes and zero crossings
		// of the overlap under each branch combination.  Extraneous
		// candidates only split the integral into more (still exact)
		// pieces.
		pairs := [...][2]lin{
			{lin{a.Hi[i], a.VHi[i]}, lin{b.Hi[i], b.VHi[i]}},
			{lin{a.Lo[i], a.VLo[i]}, lin{b.Lo[i], b.VLo[i]}},
			{lin{a.Hi[i], a.VHi[i]}, lin{a.Lo[i], a.VLo[i]}},
			{lin{a.Hi[i], a.VHi[i]}, lin{b.Lo[i], b.VLo[i]}},
			{lin{b.Hi[i], b.VHi[i]}, lin{a.Lo[i], a.VLo[i]}},
			{lin{b.Hi[i], b.VHi[i]}, lin{b.Lo[i], b.VLo[i]}},
		}
		for _, p := range pairs {
			diff := lin{p[0].c0 - p[1].c0, p[0].c1 - p[1].c1}
			breaks = diff.root(breaks, t1, t2)
		}
	}
	f := func(t float64) float64 {
		p := 1.0
		for i := 0; i < dims; i++ {
			p *= overlap1(a, b, i, t)
		}
		return p
	}
	pred := func(t float64) bool {
		for i := 0; i < dims; i++ {
			if overlap1(a, b, i, t) <= 0 {
				return false
			}
		}
		return true
	}
	return integratePieces(f, pred, breaks, t1, t2)
}

// CenterDistIntegral returns the integral over [t1, t2] of the
// Euclidean distance between the centers of a and b.  The integrand is
// sqrt of a quadratic; composite Simpson quadrature with a fixed panel
// count is used because the value is only ever compared against other
// such integrals (forced-reinsertion ranking), where a smooth
// approximation is sufficient.
func CenterDistIntegral(a, b TPRect, t1, t2 float64, dims int) float64 {
	if t2 <= t1 {
		return 0
	}
	f := func(t float64) float64 {
		var s float64
		for i := 0; i < dims; i++ {
			ca := (a.Lo[i] + a.VLo[i]*t + a.Hi[i] + a.VHi[i]*t) / 2
			cb := (b.Lo[i] + b.VLo[i]*t + b.Hi[i] + b.VHi[i]*t) / 2
			d := ca - cb
			s += d * d
		}
		return math.Sqrt(s)
	}
	const panels = 16
	h := (t2 - t1) / panels
	total := f(t1) + f(t2)
	for k := 1; k < panels; k++ {
		w := 2.0
		if k%2 == 1 {
			w = 4.0
		}
		total += w * f(t1+float64(k)*h)
	}
	return total * h / 3
}
