package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestSummaryBoundsTrajectories widens a summary with random moving
// points at increasing times and checks every trajectory stays inside
// the summary box at every later instant — the invariant shard pruning
// relies on.
func TestSummaryBoundsTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const dims = 2
	var s Summary
	var pts []MovingPoint
	now := 0.0
	for i := 0; i < 200; i++ {
		p := MovingPoint{
			Pos:  Vec{rng.Float64() * 1000, rng.Float64() * 1000},
			Vel:  Vec{rng.Float64()*40 - 20, rng.Float64()*40 - 20},
			TExp: math.Inf(1),
		}
		now += rng.Float64() // widen times move forward, as tree time does
		s.WidenPoint(p, now, dims)
		pts = append(pts, p)
	}
	for _, dt := range []float64{0, 1, 5, 50} {
		at := now + dt
		box := s.Box.At(at)
		for i, p := range pts {
			if !box.ContainsPoint(p.At(at), dims) {
				t.Fatalf("point %d escapes summary at t=%g: %v outside %v", i, at, p.At(at), box)
			}
		}
	}
}

// TestSummaryEmpty checks the zero value matches nothing and reports
// infinite distance.
func TestSummaryEmpty(t *testing.T) {
	var s Summary
	q := Window(Rect{Lo: Vec{-1e9, -1e9}, Hi: Vec{1e9, 1e9}}, 0, 1e9)
	if s.Matches(q, 2) {
		t.Error("empty summary matched a world-sized query")
	}
	if d := s.MinDistAt(Vec{0, 0}, 0, 2); !math.IsInf(d, 1) {
		t.Errorf("empty summary MinDistAt = %g, want +Inf", d)
	}
	s.WidenPoint(MovingPoint{Pos: Vec{5, 5}, TExp: math.Inf(1)}, 0, 2)
	if !s.Matches(q, 2) {
		t.Error("widened summary does not match an enclosing query")
	}
	s.Reset()
	if s.Has {
		t.Error("Reset left the summary non-empty")
	}
}

// TestSummaryMatchesConservative checks that a summary miss implies no
// summarized point matches the query, for random queries of all three
// types.
func TestSummaryMatchesConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dims = 2
	var s Summary
	var pts []MovingPoint
	for i := 0; i < 100; i++ {
		p := MovingPoint{
			Pos:  Vec{rng.Float64()*200 + 400, rng.Float64()*200 + 400},
			Vel:  Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
			TExp: math.Inf(1),
		}
		s.WidenPoint(p, 0, dims)
		pts = append(pts, p)
	}
	for i := 0; i < 500; i++ {
		lo := Vec{rng.Float64() * 950, rng.Float64() * 950}
		r := Rect{Lo: lo, Hi: Vec{lo[0] + 50, lo[1] + 50}}
		t1 := rng.Float64() * 20
		var q Query
		switch i % 3 {
		case 0:
			q = Timeslice(r, t1)
		case 1:
			q = Window(r, t1, t1+10)
		default:
			r2 := Rect{Lo: Vec{lo[0] + 20, lo[1] + 20}, Hi: Vec{lo[0] + 70, lo[1] + 70}}
			q = Moving(r, r2, t1, t1+10, dims)
		}
		if s.Matches(q, dims) {
			continue
		}
		for j, p := range pts {
			if q.MatchesPoint(p, dims, false) {
				t.Fatalf("query %d missed the summary but matches point %d", i, j)
			}
		}
	}
}

// TestRectMinDist checks the point-to-rectangle distance helper.
func TestRectMinDist(t *testing.T) {
	r := Rect{Lo: Vec{10, 10}, Hi: Vec{20, 20}}
	cases := []struct {
		q    Vec
		want float64
	}{
		{Vec{15, 15}, 0},  // inside
		{Vec{10, 20}, 0},  // corner
		{Vec{25, 15}, 5},  // right face
		{Vec{15, 4}, 6},   // below
		{Vec{23, 24}, 5},  // corner at (3,4)
		{Vec{-2, 15}, 12}, // left face
		{Vec{26, 28}, 10}, // corner at (6,8)
	}
	for _, c := range cases {
		if got := r.MinDist(c.q, 2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %g, want %g", c.q, got, c.want)
		}
	}
}
