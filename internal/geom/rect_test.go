package geom

import (
	"math/rand"
	"testing"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty(2) {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area(2) != 0 {
		t.Errorf("empty area = %v", e.Area(2))
	}
	if e.Margin(2) != 0 {
		t.Errorf("empty margin = %v", e.Margin(2))
	}
	got := e.ExtendPoint(Vec{3, 4}, 2)
	if got.IsEmpty(2) {
		t.Errorf("extend empty by point still empty: %v", got)
	}
	for i := 0; i < 2; i++ {
		if got.Lo[i] != []float64{3, 4}[i] || got.Hi[i] != []float64{3, 4}[i] {
			t.Errorf("extend empty by point = %v", got)
		}
	}
}

func TestRectExtendContains(t *testing.T) {
	r := EmptyRect().ExtendPoint(Vec{0, 0}, 2).ExtendPoint(Vec{2, 3}, 2)
	if !r.ContainsPoint(Vec{1, 1}, 2) {
		t.Error("does not contain interior point")
	}
	if !r.ContainsPoint(Vec{0, 0}, 2) || !r.ContainsPoint(Vec{2, 3}, 2) {
		t.Error("does not contain corner")
	}
	if r.ContainsPoint(Vec{2.1, 1}, 2) {
		t.Error("contains outside point")
	}
	s := Rect{Lo: Vec{0.5, 0.5}, Hi: Vec{1, 1}}
	if !r.ContainsRect(s, 2) {
		t.Error("does not contain inner rect")
	}
	if s.ContainsRect(r, 2) {
		t.Error("inner rect contains outer")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Lo: Vec{0, 0}, Hi: Vec{2, 2}}
	b := Rect{Lo: Vec{1, 1}, Hi: Vec{3, 3}}
	c := Rect{Lo: Vec{2.5, 0}, Hi: Vec{3, 1}}
	d := Rect{Lo: Vec{2, 2}, Hi: Vec{4, 4}} // touches corner
	if !a.Intersects(b, 2) || !b.Intersects(a, 2) {
		t.Error("overlapping rects do not intersect")
	}
	if a.Intersects(c, 2) {
		t.Error("disjoint rects intersect")
	}
	if !a.Intersects(d, 2) {
		t.Error("corner-touching rects should intersect (closed rects)")
	}
}

func TestRectAreaMarginCenter(t *testing.T) {
	r := Rect{Lo: Vec{1, 2}, Hi: Vec{4, 6}}
	if got := r.Area(2); got != 12 {
		t.Errorf("area = %v", got)
	}
	if got := r.Margin(2); got != 7 {
		t.Errorf("margin = %v", got)
	}
	if got := r.Center(2); got != (Vec{2.5, 4}) {
		t.Errorf("center = %v", got)
	}
	// 1D view of the same rect
	if got := r.Area(1); got != 3 {
		t.Errorf("1d area = %v", got)
	}
	// 3D with zero extent in z
	if got := r.Area(3); got != 0 {
		t.Errorf("3d area = %v", got)
	}
}

func randRect(rng *rand.Rand, dims int) Rect {
	var r Rect
	for i := 0; i < dims; i++ {
		a := rng.Float64()*100 - 50
		b := a + rng.Float64()*20
		r.Lo[i], r.Hi[i] = a, b
	}
	return r
}

func TestRectExtendRectIsUnionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a := randRect(rng, 2)
		b := randRect(rng, 2)
		u := a.ExtendRect(b, 2)
		if !u.ContainsRect(a, 2) || !u.ContainsRect(b, 2) {
			t.Fatalf("union %v does not contain operands %v, %v", u, a, b)
		}
		if u.Area(2) < a.Area(2) || u.Area(2) < b.Area(2) {
			t.Fatalf("union area shrank")
		}
	}
}
