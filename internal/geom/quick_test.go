package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets testing/quick draw well-formed TPRects: finite
// coordinates, Hi >= Lo, VHi >= VLo.
func (TPRect) Generate(rng *rand.Rand, size int) reflect.Value {
	var r TPRect
	r.TExp = math.Inf(1)
	if rng.Intn(2) == 0 {
		r.TExp = rng.Float64() * 100
	}
	for i := 0; i < MaxDims; i++ {
		r.Lo[i] = rng.Float64()*200 - 100
		r.Hi[i] = r.Lo[i] + rng.Float64()*20
		r.VLo[i] = rng.Float64()*8 - 4
		r.VHi[i] = r.VLo[i] + rng.Float64()*2
	}
	return reflect.ValueOf(r)
}

func qcfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(seed))}
}

func TestQuickIntersectsSymmetric(t *testing.T) {
	f := func(a, b TPRect) bool {
		return Intersects(a, b, 0, 10, 2) == Intersects(b, a, 0, 10, 2)
	}
	if err := quick.Check(f, qcfg(1)); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsSelf(t *testing.T) {
	f := func(a TPRect) bool {
		return Intersects(a, a, 0, 5, 2)
	}
	if err := quick.Check(f, qcfg(2)); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapIntervalWithinWindow(t *testing.T) {
	f := func(a, b TPRect) bool {
		iv := OverlapInterval(a, b, 1, 9, 2)
		if iv.Empty() {
			return true
		}
		return iv.Lo >= 1-1e-9 && iv.Hi <= 9+1e-9 && iv.Lo <= iv.Hi
	}
	if err := quick.Check(f, qcfg(3)); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsOperands(t *testing.T) {
	f := func(a, b TPRect) bool {
		u := UnionConservative(a, b, 3, 2)
		for _, tt := range []float64{3, 10, 200} {
			ur := u.At(tt)
			for _, op := range []TPRect{a, b} {
				or := op.At(tt)
				for i := 0; i < 2; i++ {
					eps := 1e-7 * (1 + math.Abs(or.Lo[i]) + math.Abs(or.Hi[i]))
					if or.Lo[i] < ur.Lo[i]-eps || or.Hi[i] > ur.Hi[i]+eps {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(4)); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutativeArea(t *testing.T) {
	f := func(a, b TPRect) bool {
		u1 := UnionConservative(a, b, 2, 2)
		u2 := UnionConservative(b, a, 2, 2)
		i1 := AreaIntegral(u1, 2, 12, 2)
		i2 := AreaIntegral(u2, 2, 12, 2)
		return math.Abs(i1-i2) <= 1e-9*(1+math.Abs(i1))
	}
	if err := quick.Check(f, qcfg(5)); err != nil {
		t.Error(err)
	}
}

func TestQuickAreaIntegralNonNegativeMonotone(t *testing.T) {
	f := func(a TPRect) bool {
		i1 := AreaIntegral(a, 0, 5, 2)
		i2 := AreaIntegral(a, 0, 10, 2)
		return i1 >= 0 && i2 >= i1-1e-9
	}
	if err := quick.Check(f, qcfg(6)); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapBoundedByArea(t *testing.T) {
	f := func(a, b TPRect) bool {
		ov := OverlapIntegral(a, b, 0, 8, 2)
		aa := AreaIntegral(a, 0, 8, 2)
		bb := AreaIntegral(b, 0, 8, 2)
		return ov >= -1e-9 && ov <= aa+1e-6*(1+aa) && ov <= bb+1e-6*(1+bb)
	}
	if err := quick.Check(f, qcfg(7)); err != nil {
		t.Error(err)
	}
}

func TestQuickDerivedExp(t *testing.T) {
	f := func(a TPRect) bool {
		// Make dimension 0 shrink.
		a.VHi[0] = a.VLo[0] - 0.5
		e := DerivedExp(a, 0, 2)
		if !IsFinite(e) {
			return false
		}
		// At the derived time some extent is (numerically) zero.
		s := a.At(e)
		minExt := math.Inf(1)
		for i := 0; i < 2; i++ {
			minExt = math.Min(minExt, s.Hi[i]-s.Lo[i])
		}
		return math.Abs(minExt) < 1e-6*(1+e)
	}
	if err := quick.Check(f, qcfg(8)); err != nil {
		t.Error(err)
	}
}

func TestQuickDerivedExpGrowingIsInfinite(t *testing.T) {
	f := func(a TPRect) bool {
		// Generator guarantees VHi >= VLo, so nothing shrinks.
		return !IsFinite(DerivedExp(a, 0, 2))
	}
	if err := quick.Check(f, qcfg(9)); err != nil {
		t.Error(err)
	}
}

func TestQuickExitTimePointLeavesWorld(t *testing.T) {
	world := Rect{Lo: Vec{0, 0}, Hi: Vec{1000, 1000}}
	f := func(px, py, vx, vy float64) bool {
		p := MovingPoint{
			Pos: Vec{math.Mod(math.Abs(px), 1000), math.Mod(math.Abs(py), 1000)},
			Vel: Vec{math.Mod(vx, 3), math.Mod(vy, 3)},
		}
		e := ExitTime(p, world, 0, 2)
		if !IsFinite(e) {
			// Only possible if both velocity components are zero.
			return p.Vel[0] == 0 && p.Vel[1] == 0
		}
		// Just before the exit the point is inside (or on the border);
		// just after, outside.
		before := p.At(math.Max(0, e-1e-6))
		after := p.At(e + 1e-3)
		insideEps := func(v Vec, eps float64) bool {
			for i := 0; i < 2; i++ {
				if v[i] < world.Lo[i]-eps || v[i] > world.Hi[i]+eps {
					return false
				}
			}
			return true
		}
		return insideEps(before, 1e-3) && !insideEps(after, -1e-9) || e == 0
	}
	cfg := qcfg(10)
	cfg.MaxCount = 500
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
