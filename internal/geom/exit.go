package geom

import "math"

// ExitTime returns the first time at or after now when the moving
// point leaves the world rectangle for good, or +Inf if it never
// does.  Because the trajectory is linear, once any coordinate crosses
// its world bound it never returns, so after the returned time the
// point cannot intersect any query region inside the world.
//
// This is the paper's §2.1 observation that trivial upper bounds on
// expiration times can be derived from the finite extent of the space;
// the engine uses it to give never-expiring entries a finite horizon
// where a bounding-rectangle type (static) requires one.
func ExitTime(p MovingPoint, world Rect, now float64, dims int) float64 {
	if !world.ContainsPoint(p.At(now), dims) {
		return now
	}
	exit := math.Inf(1)
	for i := 0; i < dims; i++ {
		x := p.Pos[i] + p.Vel[i]*now
		switch {
		case p.Vel[i] > 0:
			if t := now + (world.Hi[i]-x)/p.Vel[i]; t < exit {
				exit = t
			}
		case p.Vel[i] < 0:
			if t := now + (world.Lo[i]-x)/p.Vel[i]; t < exit {
				exit = t
			}
		}
	}
	return exit
}
