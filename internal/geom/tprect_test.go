package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMovingPointAt(t *testing.T) {
	p := MovingPoint{Pos: Vec{10, 20}, Vel: Vec{1, -2}, TExp: 5}
	if got := p.At(0); got != (Vec{10, 20}) {
		t.Errorf("At(0) = %v", got)
	}
	if got := p.At(3); got != (Vec{13, 14}) {
		t.Errorf("At(3) = %v", got)
	}
	if p.Expired(4.9) {
		t.Error("expired before TExp")
	}
	if !p.Expired(5.1) {
		t.Error("not expired after TExp")
	}
}

func TestTPRectAt(t *testing.T) {
	r := TPRect{Lo: Vec{0, 0}, Hi: Vec{10, 10}, VLo: Vec{-1, 0}, VHi: Vec{2, 1}, TExp: Inf()}
	s := r.At(2)
	want := Rect{Lo: Vec{-2, 0}, Hi: Vec{14, 12}}
	if s != want {
		t.Errorf("At(2) = %v, want %v", s, want)
	}
}

func TestTPRectAtRoundTrip(t *testing.T) {
	// TPRectAt(t, r, ...).At(t) must recover r.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		r := randRect(rng, 2)
		var vlo, vhi Vec
		for i := 0; i < 2; i++ {
			vlo[i] = rng.Float64()*4 - 2
			vhi[i] = rng.Float64()*4 - 2
		}
		now := rng.Float64() * 100
		tp := TPRectAt(now, r, vlo, vhi, Inf(), 2)
		got := tp.At(now)
		for i := 0; i < 2; i++ {
			if math.Abs(got.Lo[i]-r.Lo[i]) > 1e-9 || math.Abs(got.Hi[i]-r.Hi[i]) > 1e-9 {
				t.Fatalf("round trip: got %v want %v", got, r)
			}
		}
	}
}

func TestPointTPRectDegenerate(t *testing.T) {
	p := MovingPoint{Pos: Vec{1, 2}, Vel: Vec{3, 4}, TExp: 9}
	r := PointTPRect(p)
	for _, tt := range []float64{0, 1, 5.5} {
		s := r.At(tt)
		if s.Lo != p.At(tt) || s.Hi != p.At(tt) {
			t.Fatalf("degenerate rect at %v: %v vs %v", tt, s, p.At(tt))
		}
	}
	if r.TExp != 9 {
		t.Errorf("TExp = %v", r.TExp)
	}
}

func TestContainsTrajectory(t *testing.T) {
	// A conservative interval around two 1-D points.
	br := TPRect{Lo: Vec{0}, Hi: Vec{10}, VLo: Vec{-1}, VHi: Vec{2}, TExp: Inf()}
	in := MovingPoint{Pos: Vec{5}, Vel: Vec{1}, TExp: Inf()}
	out := MovingPoint{Pos: Vec{5}, Vel: Vec{3}, TExp: Inf()} // escapes through the top
	if !br.ContainsTrajectory(in, 0, 100, 1) {
		t.Error("inside trajectory reported outside")
	}
	if br.ContainsTrajectory(out, 0, 100, 1) {
		t.Error("escaping trajectory reported inside")
	}
	// ...but over a short horizon the fast point is still inside.
	if !br.ContainsTrajectory(out, 0, 2, 1) {
		t.Error("fast point should be inside over [0,2]")
	}
}

func TestUnionConservativeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		now := rng.Float64() * 10
		mk := func() TPRect {
			r := randRect(rng, 2)
			var vlo, vhi Vec
			for i := 0; i < 2; i++ {
				vlo[i] = rng.Float64()*4 - 2
				vhi[i] = vlo[i] + rng.Float64()*2
			}
			return TPRectAt(now, r, vlo, vhi, Inf(), 2)
		}
		a, b := mk(), mk()
		u := UnionConservative(a, b, now, 2)
		// The union must contain both operands at now and far in the
		// future, up to round-off from the epoch back-extrapolation.
		contains := func(outer, inner Rect, eps float64) bool {
			for i := 0; i < 2; i++ {
				if inner.Lo[i] < outer.Lo[i]-eps || inner.Hi[i] > outer.Hi[i]+eps {
					return false
				}
			}
			return true
		}
		for _, tt := range []float64{now, now + 1, now + 50, now + 1000} {
			eps := 1e-9 * (1 + tt)
			if !contains(u.At(tt), a.At(tt), eps) || !contains(u.At(tt), b.At(tt), eps) {
				t.Fatalf("union does not bound operands at t=%v", tt)
			}
		}
	}
}

func TestUnionConservativeExpiration(t *testing.T) {
	a := TPRect{Lo: Vec{0}, Hi: Vec{1}, TExp: 5}
	b := TPRect{Lo: Vec{2}, Hi: Vec{3}, TExp: 9}
	u := UnionConservative(a, b, 0, 1)
	if u.TExp != 9 {
		t.Errorf("union TExp = %v, want 9 (max)", u.TExp)
	}
	c := TPRect{Lo: Vec{0}, Hi: Vec{1}, TExp: Inf()}
	u2 := UnionConservative(a, c, 0, 1)
	if !math.IsInf(u2.TExp, 1) {
		t.Errorf("union with infinite TExp = %v", u2.TExp)
	}
}

func TestWithInfiniteExp(t *testing.T) {
	r := TPRect{Lo: Vec{0}, Hi: Vec{1}, TExp: 7}
	if got := r.WithInfiniteExp(); !math.IsInf(got.TExp, 1) || got.Lo != r.Lo {
		t.Errorf("WithInfiniteExp = %v", got)
	}
	if r.TExp != 7 {
		t.Error("receiver mutated")
	}
}
