package geom

import (
	"math/rand"
	"testing"
)

// bruteIntersects samples [t1,t2] densely and checks snapshot overlap.
// With linear bounds the overlap set is an interval, so dense sampling
// plus endpoints is a sound oracle up to boundary tolerance.
func bruteIntersects(a, b TPRect, t1, t2 float64, dims int) bool {
	const steps = 400
	for k := 0; k <= steps; k++ {
		tt := t1 + (t2-t1)*float64(k)/steps
		if a.At(tt).Intersects(b.At(tt), dims) {
			return true
		}
	}
	return false
}

func randTPRect(rng *rand.Rand, dims int) TPRect {
	var r TPRect
	r.TExp = Inf()
	for i := 0; i < dims; i++ {
		a := rng.Float64()*40 - 20
		r.Lo[i] = a
		r.Hi[i] = a + rng.Float64()*10
		r.VLo[i] = rng.Float64()*4 - 2
		r.VHi[i] = rng.Float64()*4 - 2
	}
	return r
}

func TestIntersectsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agree, total := 0, 0
	for iter := 0; iter < 2000; iter++ {
		a := randTPRect(rng, 2)
		b := randTPRect(rng, 2)
		t1 := rng.Float64() * 5
		t2 := t1 + rng.Float64()*10
		got := Intersects(a, b, t1, t2, 2)
		want := bruteIntersects(a, b, t1, t2, 2)
		total++
		if got == want {
			agree++
			continue
		}
		// Disagreement is only acceptable when the overlap interval is
		// a near-degenerate touch that sampling misses.
		iv := OverlapInterval(a, b, t1, t2, 2)
		if got && !want && iv.Hi-iv.Lo < (t2-t1)/100 {
			agree++
			continue
		}
		t.Fatalf("iter %d: Intersects=%v brute=%v a=%v b=%v [%v,%v]", iter, got, want, a, b, t1, t2)
	}
	if agree != total {
		t.Errorf("agreement %d/%d", agree, total)
	}
}

func TestIntersectsDegenerateWindow(t *testing.T) {
	a := TPRect{Lo: Vec{0, 0}, Hi: Vec{2, 2}, TExp: Inf()}
	b := TPRect{Lo: Vec{1, 1}, Hi: Vec{3, 3}, TExp: Inf()}
	if !Intersects(a, b, 5, 5, 2) {
		t.Error("static overlap at a single instant not detected")
	}
	if Intersects(a, b, 5, 4, 2) {
		t.Error("inverted window should never intersect")
	}
}

func TestIntersectsMovingApart(t *testing.T) {
	// Two 1-D intervals moving apart: they touch only at early times.
	a := TPRect{Lo: Vec{0}, Hi: Vec{1}, VLo: Vec{-1}, VHi: Vec{-1}, TExp: Inf()}
	b := TPRect{Lo: Vec{1}, Hi: Vec{2}, VLo: Vec{1}, VHi: Vec{1}, TExp: Inf()}
	if !Intersects(a, b, 0, 10, 1) {
		t.Error("should touch at t=0")
	}
	if Intersects(a, b, 1, 10, 1) {
		t.Error("should be separated for t >= 1")
	}
	// Converging copies intersect later.
	if !Intersects(b, a, 0, 10, 1) {
		t.Error("symmetric call failed")
	}
}

func TestQueryConstructors(t *testing.T) {
	r := Rect{Lo: Vec{0, 0}, Hi: Vec{10, 10}}
	q1 := Timeslice(r, 4)
	if q1.T1 != 4 || q1.T2 != 4 {
		t.Errorf("timeslice window [%v,%v]", q1.T1, q1.T2)
	}
	q2 := Window(r, 2, 6)
	if q2.T1 != 2 || q2.T2 != 6 {
		t.Errorf("window [%v,%v]", q2.T1, q2.T2)
	}
	r2 := Rect{Lo: Vec{10, 10}, Hi: Vec{20, 20}}
	q3 := Moving(r, r2, 0, 10, 2)
	// At t=0 the region must equal r; at t=10 it must equal r2.
	if got := q3.Region.At(0); got != r {
		t.Errorf("moving query at t1 = %v, want %v", got, r)
	}
	if got := q3.Region.At(10); got != r2 {
		t.Errorf("moving query at t2 = %v, want %v", got, r2)
	}
}

func TestQueryMatchesPointExpiration(t *testing.T) {
	// Object sits inside the query region but expires before the query
	// time: with expiration support it must not match; without, it must.
	p := MovingPoint{Pos: Vec{5, 5}, TExp: 3}
	q := Timeslice(Rect{Lo: Vec{0, 0}, Hi: Vec{10, 10}}, 7)
	if q.MatchesPoint(p, 2, true) {
		t.Error("expired point matched with useExp=true")
	}
	if !q.MatchesPoint(p, 2, false) {
		t.Error("point not matched with useExp=false")
	}
	// Window query that starts before expiry matches either way.
	qw := Window(Rect{Lo: Vec{0, 0}, Hi: Vec{10, 10}}, 2, 7)
	if !qw.MatchesPoint(p, 2, true) {
		t.Error("point alive during part of the window should match")
	}
}

func TestQueryMatchesRectClipsAtExpiry(t *testing.T) {
	// A bounding rectangle drifting toward the query region reaches it
	// only after its own expiration time: with useExp the query window
	// is clipped at TExp, so no match.
	br := TPRect{Lo: Vec{0}, Hi: Vec{1}, VLo: Vec{1}, VHi: Vec{1}, TExp: 4}
	q := Window(Rect{Lo: Vec{8}, Hi: Vec{9}}, 0, 20)
	if q.MatchesRect(br, 1, true) {
		t.Error("rect reached query only after expiry; should not match")
	}
	if !q.MatchesRect(br, 1, false) {
		t.Error("without expiration support it should match")
	}
}

func TestMovingQueryFollowsTarget(t *testing.T) {
	// A moving query square centered on a moving point must match that
	// point at all times.
	p := MovingPoint{Pos: Vec{100, 100}, Vel: Vec{2, -1}, TExp: Inf()}
	mk := func(c Vec) Rect {
		return Rect{Lo: Vec{c[0] - 5, c[1] - 5}, Hi: Vec{c[0] + 5, c[1] + 5}}
	}
	q := Moving(mk(p.At(3)), mk(p.At(8)), 3, 8, 2)
	if !q.MatchesPoint(p, 2, true) {
		t.Error("moving query lost its target")
	}
	// A stationary point far away must not match.
	far := MovingPoint{Pos: Vec{500, 500}, TExp: Inf()}
	if q.MatchesPoint(far, 2, true) {
		t.Error("moving query matched a far point")
	}
}
