package geom

import (
	"math/rand"
	"testing"
)

func benchRects(n int) []TPRect {
	rng := rand.New(rand.NewSource(1))
	out := make([]TPRect, n)
	for i := range out {
		out[i] = randTPRect(rng, 2)
	}
	return out
}

func BenchmarkIntersects(b *testing.B) {
	rs := benchRects(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersects(rs[i%256], rs[(i+7)%256], 0, 30, 2)
	}
}

func BenchmarkAreaIntegralFastPath(b *testing.B) {
	rs := benchRects(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AreaIntegral(rs[i%256], 0, 30, 2)
	}
}

func BenchmarkOverlapIntegral(b *testing.B) {
	rs := benchRects(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OverlapIntegral(rs[i%256], rs[(i+7)%256], 0, 30, 2)
	}
}

func BenchmarkMarginIntegral(b *testing.B) {
	rs := benchRects(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MarginIntegral(rs[i%256], 0, 30, 2)
	}
}

func BenchmarkUnionConservative(b *testing.B) {
	rs := benchRects(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UnionConservative(rs[i%256], rs[(i+7)%256], 5, 2)
	}
}

func BenchmarkCenterDistIntegral(b *testing.B) {
	rs := benchRects(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CenterDistIntegral(rs[i%256], rs[(i+7)%256], 0, 30, 2)
	}
}
