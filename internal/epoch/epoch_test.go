package epoch

import (
	"sync"
	"testing"
)

func TestPinUnpinMin(t *testing.T) {
	d := NewDomain(4)
	if got := d.Min(42); got != 42 {
		t.Fatalf("Min with no pins = %d, want 42 (current)", got)
	}
	p1 := d.Pin(10)
	p2 := d.Pin(7)
	if got := d.Min(42); got != 7 {
		t.Fatalf("Min = %d, want 7", got)
	}
	if got := d.Pinned(); got != 2 {
		t.Fatalf("Pinned = %d, want 2", got)
	}
	p2.Unpin()
	if got := d.Min(42); got != 10 {
		t.Fatalf("Min after unpin = %d, want 10", got)
	}
	p1.Unpin()
	if got := d.Min(42); got != 42 {
		t.Fatalf("Min after all unpins = %d, want 42", got)
	}
}

func TestPinZeroSequence(t *testing.T) {
	// Sequence 0 must be representable (slots store seq+1).
	d := NewDomain(2)
	p := d.Pin(0)
	if got := d.Min(5); got != 0 {
		t.Fatalf("Min = %d, want 0", got)
	}
	p.Unpin()
}

func TestPinSpinsWhenFull(t *testing.T) {
	// With a 1-slot domain, a second Pin must wait for the first Unpin
	// rather than fail or corrupt the slot.
	d := NewDomain(1)
	p1 := d.Pin(3)
	done := make(chan Pin)
	go func() { done <- d.Pin(9) }()
	select {
	case <-done:
		t.Fatal("second Pin succeeded while the only slot was taken")
	default:
	}
	p1.Unpin()
	p2 := <-done
	if got := d.Min(99); got != 9 {
		t.Fatalf("Min = %d, want 9", got)
	}
	p2.Unpin()
}

func TestConcurrentPinStress(t *testing.T) {
	d := NewDomain(8)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := d.Pin(uint64(g*1000 + i))
				// The minimum can never exceed our own pinned sequence.
				if m := d.Min(1 << 62); m > uint64(g*1000+i) {
					t.Errorf("Min = %d exceeds own pin %d", m, g*1000+i)
				}
				p.Unpin()
			}
		}(g)
	}
	wg.Wait()
	if got := d.Pinned(); got != 0 {
		t.Fatalf("Pinned = %d after all unpins, want 0", got)
	}
}
