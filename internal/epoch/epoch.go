// Package epoch provides the epoch-based reclamation protocol of the
// snapshot read path: readers pin the sequence number of the snapshot
// they traverse in a cache-line-padded slot array, and the single
// writer computes the minimum pinned sequence to decide which retired
// page versions are safe to reclaim.
//
// The protocol is deliberately minimal.  There are no deferred-free
// callbacks: the writer itself trims version chains after each
// publication, cutting everything older than the newest version at or
// below the minimum pinned sequence.  A reader that pins sequence S is
// guaranteed that, for every page, the newest version with sequence
// <= S stays reachable until it unpins.
//
// Correct use requires the load-pin-reload dance (see Domain.Pin): a
// reader must load the published snapshot, pin its sequence, and then
// RE-LOAD the snapshot, traversing the re-loaded one.  A writer that
// publishes and trims between the reader's first load and its pin can
// only have reclaimed versions the re-loaded (newer) snapshot no
// longer references.
package epoch

import (
	"runtime"
	"sync/atomic"
)

// slot is one pin slot, padded so two slots never share a cache line
// (a reader spinning on its slot must not false-share with neighbors).
// A slot stores seq+1 while pinned and 0 while free.
type slot struct {
	v atomic.Uint64
	_ [56]byte
}

// Domain is one reclamation domain: a fixed array of pin slots shared
// by all readers of one tree.  The zero value is not usable; use
// NewDomain.
type Domain struct {
	slots []slot
}

// NewDomain returns a domain with at least n slots (n <= 0 selects a
// default sized to the machine: 16 slots per logical CPU, minimum 64).
// More concurrent pins than slots do not fail — Pin spins until a slot
// frees — so the size only bounds how many readers pin without
// yielding.
func NewDomain(n int) *Domain {
	if n <= 0 {
		n = 16 * runtime.GOMAXPROCS(0)
		if n < 64 {
			n = 64
		}
	}
	return &Domain{slots: make([]slot, n)}
}

// Pin claims a free slot and records seq in it.  It spins (yielding
// the processor between rounds) when every slot is taken; slots are
// held only for the duration of one traversal, so the wait is short.
// Pin performs no allocation — the returned Pin is a value.
func (d *Domain) Pin(seq uint64) Pin {
	v := seq + 1
	for {
		for i := range d.slots {
			s := &d.slots[i]
			if s.v.Load() == 0 && s.v.CompareAndSwap(0, v) {
				return Pin{d: d, i: i}
			}
		}
		runtime.Gosched()
	}
}

// Pin is an active claim on a slot.  It must be released with Unpin
// exactly once.
type Pin struct {
	d *Domain
	i int
}

// Unpin releases the slot.
func (p Pin) Unpin() { p.d.slots[p.i].v.Store(0) }

// Min returns the minimum pinned sequence, or current when nothing is
// pinned.  The writer calls it after publishing sequence `current`, so
// the result is the oldest snapshot any reader may still traverse:
// versions older than the newest version at or below Min are
// unreachable and safe to reclaim.
func (d *Domain) Min(current uint64) uint64 {
	min := current
	for i := range d.slots {
		if v := d.slots[i].v.Load(); v != 0 && v-1 < min {
			min = v - 1
		}
	}
	return min
}

// Pinned reports how many slots are currently claimed (for tests and
// gauges; the value is immediately stale).
func (d *Domain) Pinned() int {
	n := 0
	for i := range d.slots {
		if d.slots[i].v.Load() != 0 {
			n++
		}
	}
	return n
}
