package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rexptree/internal/geom"
)

func TestFormatRoundTrip(t *testing.T) {
	p := smallParams()
	p.Insertions = 2000
	orig := collect(t, p)

	var buf bytes.Buffer
	for _, op := range orig {
		if err := WriteOp(&buf, op); err != nil {
			t.Fatal(err)
		}
	}

	sc := NewScanner(&buf)
	var got []Op
	for sc.Scan() {
		got = append(got, sc.Op())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip: %d ops, want %d", len(got), len(orig))
	}
	for i := range orig {
		a, b := orig[i], got[i]
		if a.Kind != b.Kind || a.OID != b.OID {
			t.Fatalf("op %d: kind/oid mismatch: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Time-b.Time) > 1e-3 {
			t.Fatalf("op %d: time %v vs %v", i, a.Time, b.Time)
		}
		switch a.Kind {
		case OpInsert, OpDelete:
			// Positions survive up to the 1e-4 print precision
			// (evaluated at op time, where they are well conditioned).
			pa, pb := a.Point.At(a.Time), b.Point.At(b.Time)
			for d := 0; d < 2; d++ {
				if math.Abs(pa[d]-pb[d]) > 1e-2 {
					t.Fatalf("op %d: position %v vs %v", i, pa, pb)
				}
				if math.Abs(a.Point.Vel[d]-b.Point.Vel[d]) > 1e-4 {
					t.Fatalf("op %d: velocity mismatch", i)
				}
			}
			if geom.IsFinite(a.Point.TExp) != geom.IsFinite(b.Point.TExp) {
				t.Fatalf("op %d: expiry finiteness mismatch", i)
			}
			if geom.IsFinite(a.Point.TExp) && math.Abs(a.Point.TExp-b.Point.TExp) > 1e-3 {
				t.Fatalf("op %d: expiry %v vs %v", i, a.Point.TExp, b.Point.TExp)
			}
		case OpQuery:
			if KindOfQuery(a.Query) != KindOfQuery(b.Query) {
				t.Fatalf("op %d: query kind mismatch", i)
			}
			if math.Abs(a.Query.T1-b.Query.T1) > 1e-3 || math.Abs(a.Query.T2-b.Query.T2) > 1e-3 {
				t.Fatalf("op %d: query window mismatch", i)
			}
		}
	}
}

func TestFormatInfExpiry(t *testing.T) {
	op := Op{Kind: OpInsert, Time: 1, OID: 9,
		Point: geom.MovingPoint{Pos: geom.Vec{5, 6}, TExp: geom.Inf()}}
	var buf bytes.Buffer
	if err := WriteOp(&buf, op); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inf") {
		t.Fatalf("inf expiry not encoded: %q", buf.String())
	}
	sc := NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	if geom.IsFinite(sc.Op().Point.TExp) {
		t.Fatal("inf expiry not decoded")
	}
}

func TestScannerRejectsGarbage(t *testing.T) {
	cases := []string{
		"X 1 2",
		"I 1 2 3", // too few fields
		"D 1 99",  // delete without insert
		"Q 1 bogus 1 2 3 4 5 6",
		"Q 1 moving 1 2 3 4 5 6", // too few values for moving
		"I 1 2 3 4 5 6 notanumber",
	}
	for _, c := range cases {
		sc := NewScanner(strings.NewReader(c + "\n"))
		if sc.Scan() {
			t.Errorf("accepted garbage %q", c)
		}
		if sc.Err() == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestScannerSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nI 1.0 5 10 20 0.5 -0.5 30\n# trailing\n"
	sc := NewScanner(strings.NewReader(in))
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	if sc.Op().OID != 5 {
		t.Fatalf("op = %+v", sc.Op())
	}
	if sc.Scan() {
		t.Fatal("extra op")
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
}
