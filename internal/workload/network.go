package workload

import (
	"math"
	"math/rand"

	"rexptree/internal/geom"
)

// The network scenario of §5.1: numDestinations destinations uniformly
// distributed in the space, fully connected by one-way routes (20
// destinations give the paper's 380 routes).  Objects pick a route,
// accelerate from standstill over its first sixth, cruise over the
// middle two thirds at their group's maximum speed, decelerate over
// the last sixth, and then pick a new destination at random.
const numDestinations = 20

// speedGroups are the maximum speeds in km/min (45, 90 and 180 km/h).
var speedGroups = [3]float64{0.75, 1.5, 3.0}

type network struct {
	dest [numDestinations]geom.Vec
}

func newNetwork(rng *rand.Rand) *network {
	n := &network{}
	for i := range n.dest {
		for d := 0; d < 2; d++ {
			n.dest[i][d] = Space.Lo[d] + rng.Float64()*(Space.Hi[d]-Space.Lo[d])
		}
	}
	return n
}

// randomRoute picks a one-way route, optionally required to start at
// the given origin (when from >= 0).
func (n *network) randomRoute(rng *rand.Rand, from int) (a, b int) {
	a = from
	if a < 0 {
		a = rng.Intn(numDestinations)
	}
	b = rng.Intn(numDestinations - 1)
	if b >= a {
		b++
	}
	return a, b
}

// netObject is an object traversing the network.
type netObject struct {
	vmax float64

	// Current route.
	from, to   int
	origin     geom.Vec
	dir        geom.Vec // unit direction
	length     float64
	t0         float64 // route start time
	t1, t2, tT float64 // phase boundaries relative to t0

	updates []float64 // scheduled report times within this traversal
	uIdx    int
}

// newNetObject creates an object placed at a random position on a
// random route, as when objects are introduced (§5.1).  t is the time
// of its first report.
func newNetObject(g *Generator, t float64) *netObject {
	o := &netObject{vmax: speedGroups[g.rng.Intn(len(speedGroups))]}
	a, b := g.net.randomRoute(g.rng, -1)
	// Back-date the route start so the object is mid-route at t.
	s := g.rng.Float64() * g.net.dest[a].Dist(g.net.dest[b], 2)
	o.setRoute(g, a, b, 0)
	tau := o.timeAt(s)
	o.setRoute(g, a, b, t-tau)
	return o
}

// setRoute installs the route a->b starting at time t0 and schedules
// its reports.
func (o *netObject) setRoute(g *Generator, a, b int, t0 float64) {
	o.from, o.to = a, b
	o.origin = g.net.dest[a]
	d := g.net.dest[b].Sub(g.net.dest[a])
	o.length = d.Dist(geom.Vec{}, 2)
	o.dir = d.Scale(1 / o.length)
	o.t0 = t0
	o.t1 = o.length / (3 * o.vmax)
	o.t2 = o.t1 + 2*o.length/(3*o.vmax)
	o.tT = o.t2 + o.length/(3*o.vmax)
	o.scheduleUpdates(g)
}

// scheduleUpdates places the traversal's reports inside the
// acceleration and deceleration stretches, their count chosen so that
// the average interval between reports approximates UI (§5.1).
func (o *netObject) scheduleUpdates(g *Generator) {
	k := int(math.Round(o.tT / g.p.UI))
	if k < 2 {
		k = 2
	}
	na := (k + 1) / 2
	nd := k - na
	o.updates = o.updates[:0]
	for i := 1; i <= na; i++ {
		o.updates = append(o.updates, o.t0+o.t1*float64(i)/float64(na))
	}
	for i := 1; i <= nd; i++ {
		o.updates = append(o.updates, o.t0+o.t2+(o.tT-o.t2)*float64(i)/float64(nd+1))
	}
	o.uIdx = 0
}

// profile returns distance traveled and speed at time tau into the
// route (uniform acceleration / cruise / uniform deceleration).
func (o *netObject) profile(tau float64) (s, v float64) {
	a := o.vmax / o.t1
	switch {
	case tau <= 0:
		return 0, 0
	case tau <= o.t1:
		return a * tau * tau / 2, a * tau
	case tau <= o.t2:
		return o.length/6 + o.vmax*(tau-o.t1), o.vmax
	case tau < o.tT:
		dt := tau - o.t2
		return 5*o.length/6 + o.vmax*dt - a*dt*dt/2, o.vmax - a*dt
	default:
		return o.length, 0
	}
}

// timeAt inverts the profile: the time into the route at which the
// object has traveled distance s.
func (o *netObject) timeAt(s float64) float64 {
	a := o.vmax / o.t1
	switch {
	case s <= 0:
		return 0
	case s <= o.length/6:
		return math.Sqrt(2 * s / a)
	case s <= 5*o.length/6:
		return o.t1 + (s-o.length/6)/o.vmax
	case s < o.length:
		disc := o.vmax*o.vmax - 2*a*(s-5*o.length/6)
		if disc < 0 {
			disc = 0
		}
		return o.t2 + (o.vmax-math.Sqrt(disc))/a
	default:
		return o.tT
	}
}

// reportAt implements mover.
func (o *netObject) reportAt(g *Generator, tt float64) (pos, vel geom.Vec) {
	// Chain onto new routes until tt falls inside the current one.
	for tt >= o.t0+o.tT-1e-9 {
		arrive := o.t0 + o.tT
		_, b := g.net.randomRoute(g.rng, o.to)
		o.setRoute(g, o.to, b, arrive)
	}
	s, v := o.profile(tt - o.t0)
	return o.origin.Add(o.dir.Scale(s)), o.dir.Scale(v)
}

// nextEvent implements mover.
func (o *netObject) nextEvent(g *Generator, tt float64) float64 {
	for o.uIdx < len(o.updates) {
		u := o.updates[o.uIdx]
		o.uIdx++
		if u > tt+1e-9 {
			return u
		}
	}
	// No report left in this traversal: report at arrival, where the
	// new route is assigned.
	if arrive := o.t0 + o.tT; arrive > tt+1e-9 {
		return arrive
	}
	return tt + 1e-6
}
