package workload

import "testing"

func BenchmarkGeneratorNetwork(b *testing.B) {
	g, err := NewGenerator(Params{Seed: 1, Objects: 2000, Insertions: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator exhausted")
		}
	}
}

func BenchmarkGeneratorUniform(b *testing.B) {
	g, err := NewGenerator(Params{Seed: 1, Objects: 2000, Insertions: 1 << 30, Uniform: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator exhausted")
		}
	}
}
