package workload

import (
	"math"
	"testing"

	"rexptree/internal/geom"
)

func smallParams() Params {
	return Params{Seed: 1, Objects: 500, Insertions: 6000, UI: 60}
}

func collect(t *testing.T, p Params) []Op {
	t.Helper()
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

func TestDeterminism(t *testing.T) {
	a := collect(t, smallParams())
	b := collect(t, smallParams())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := collect(t, Params{Seed: 2, Objects: 500, Insertions: 6000, UI: 60})
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical workloads")
		}
	}
}

func TestStreamWellFormed(t *testing.T) {
	p := smallParams()
	ops := collect(t, p)
	inserts, deletes, queries := 0, 0, 0
	last := map[uint32]geom.MovingPoint{}
	prevTime := 0.0
	for i, op := range ops {
		if op.Time < prevTime-1e-9 {
			t.Fatalf("op %d: time went backwards (%v after %v)", i, op.Time, prevTime)
		}
		prevTime = math.Max(prevTime, op.Time)
		switch op.Kind {
		case OpInsert:
			inserts++
			last[op.OID] = op.Point
			// The reported position at op.Time must lie in the space.
			at := op.Point.At(op.Time)
			for d := 0; d < 2; d++ {
				if at[d] < Space.Lo[d]-1e-6 || at[d] > Space.Hi[d]+1e-6 {
					t.Fatalf("op %d: insert position %v outside space at t=%v", i, at, op.Time)
				}
			}
			if op.Point.TExp <= op.Time {
				t.Fatalf("op %d: expiration %v not after report time %v", i, op.Point.TExp, op.Time)
			}
		case OpDelete:
			deletes++
			old, ok := last[op.OID]
			if !ok {
				t.Fatalf("op %d: delete of never-inserted object %d", i, op.OID)
			}
			if op.Point != old {
				t.Fatalf("op %d: delete record differs from last insert", i)
			}
		case OpQuery:
			queries++
			if op.Query.T1 < op.Time-1e-9 {
				t.Fatalf("op %d: query in the past (T1=%v, now=%v)", i, op.Query.T1, op.Time)
			}
			if op.Query.T2 > op.Time+p.UI/2+1e-6 {
				t.Fatalf("op %d: query beyond the window (T2=%v, now=%v, W=%v)", i, op.Query.T2, op.Time, p.UI/2)
			}
		}
	}
	if inserts != p.Insertions {
		t.Errorf("inserts = %d, want %d", inserts, p.Insertions)
	}
	wantQ := p.Insertions / 100
	if queries < wantQ-2 || queries > wantQ+2 {
		t.Errorf("queries = %d, want about %d", queries, wantQ)
	}
	if deletes == 0 || deletes >= inserts {
		t.Errorf("deletes = %d (inserts %d)", deletes, inserts)
	}
}

func TestAverageUpdateInterval(t *testing.T) {
	p := smallParams()
	p.Insertions = 20000
	ops := collect(t, p)
	lastT := map[uint32]float64{}
	var sum float64
	var count int
	for _, op := range ops {
		if op.Kind != OpInsert {
			continue
		}
		if prev, ok := lastT[op.OID]; ok {
			sum += op.Time - prev
			count++
		}
		lastT[op.OID] = op.Time
	}
	avg := sum / float64(count)
	if avg < 0.3*p.UI || avg > 1.5*p.UI {
		t.Errorf("average update interval %v, want near UI=%v", avg, p.UI)
	}
}

func TestExpTPolicy(t *testing.T) {
	p := smallParams()
	p.ExpT = 45
	for _, op := range collect(t, p) {
		if op.Kind != OpInsert {
			continue
		}
		if math.Abs(op.Point.TExp-(op.Time+45)) > 1e-6 {
			t.Fatalf("ExpT: texp = %v, want %v", op.Point.TExp, op.Time+45)
		}
	}
}

func TestExpDPolicy(t *testing.T) {
	p := smallParams()
	p.ExpD = 90
	sawFastShort := false
	for _, op := range collect(t, p) {
		if op.Kind != OpInsert {
			continue
		}
		speed := op.Point.Vel.Dist(geom.Vec{}, 2)
		want := op.Time + 90/math.Max(speed, speedFloor)
		if math.Abs(op.Point.TExp-want) > 1e-6 {
			t.Fatalf("ExpD: texp = %v, want %v (speed %v)", op.Point.TExp, want, speed)
		}
		if speed > 2 && op.Point.TExp-op.Time < 60 {
			sawFastShort = true
		}
	}
	if !sawFastShort {
		t.Error("no fast object received a short expiration")
	}
}

func TestNoExpiry(t *testing.T) {
	p := smallParams()
	p.NoExpiry = true
	for _, op := range collect(t, p) {
		if op.Kind == OpInsert && geom.IsFinite(op.Point.TExp) {
			t.Fatalf("NoExpiry workload produced finite texp %v", op.Point.TExp)
		}
	}
}

func TestNewObReplacements(t *testing.T) {
	p := smallParams()
	p.NewOb = 1
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	initial := len(g.liveIDs)
	oids := map[uint32]bool{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Kind == OpInsert {
			oids[op.OID] = true
		}
	}
	// With NewOb=1, about `initial` extra objects appear.
	extra := len(oids) - initial
	if extra < initial/2 {
		t.Errorf("distinct objects %d with %d initial: too few replacements", len(oids), initial)
	}
	// Turned-off objects must stop reporting: their final record's
	// expiry passes without further deletes — verified implicitly by
	// the generator dropping their movers.
	if len(g.movers) >= len(oids) {
		t.Errorf("no movers were turned off: %d movers, %d oids", len(g.movers), len(oids))
	}
}

func TestObjectInflationForShortExpiry(t *testing.T) {
	base, err := NewGenerator(Params{Seed: 1, Objects: 1000, Insertions: 20000, UI: 60, ExpT: 120})
	if err != nil {
		t.Fatal(err)
	}
	short, err := NewGenerator(Params{Seed: 1, Objects: 1000, Insertions: 20000, UI: 60, ExpT: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(short.liveIDs) <= len(base.liveIDs) {
		t.Errorf("short expiry should inflate object count: %d vs %d",
			len(short.liveIDs), len(base.liveIDs))
	}
}

func TestQueryMix(t *testing.T) {
	p := smallParams()
	p.Insertions = 60000
	ts, win, mov := 0, 0, 0
	for _, op := range collect(t, p) {
		if op.Kind != OpQuery {
			continue
		}
		switch {
		case op.Query.T1 == op.Query.T2:
			ts++
		case op.Query.Region.VLo == (geom.Vec{}) && op.Query.Region.VHi == (geom.Vec{}):
			win++
		default:
			mov++
		}
	}
	total := ts + win + mov
	if total == 0 {
		t.Fatal("no queries")
	}
	if f := float64(ts) / float64(total); f < 0.5 || f > 0.7 {
		t.Errorf("timeslice fraction %v, want about 0.6", f)
	}
	if f := float64(win) / float64(total); f < 0.1 || f > 0.3 {
		t.Errorf("window fraction %v, want about 0.2", f)
	}
	if f := float64(mov) / float64(total); f < 0.1 || f > 0.3 {
		t.Errorf("moving fraction %v, want about 0.2", f)
	}
}

func TestUniformScenario(t *testing.T) {
	p := smallParams()
	p.Uniform = true
	ops := collect(t, p)
	saw := 0
	for _, op := range ops {
		if op.Kind != OpInsert {
			continue
		}
		saw++
		speed := op.Point.Vel.Dist(geom.Vec{}, 2)
		if speed > 3+1e-9 {
			t.Fatalf("uniform speed %v exceeds 3", speed)
		}
	}
	if saw != p.Insertions {
		t.Errorf("inserts = %d", saw)
	}
}

func TestScale(t *testing.T) {
	p := Params{}.Scale(0.1)
	if p.Objects != 10000 || p.Insertions != 100000 {
		t.Errorf("scaled params: %+v", p)
	}
	tiny := Params{}.Scale(0.0001)
	if tiny.Objects < 100 || tiny.Insertions < 10*tiny.Objects {
		t.Errorf("tiny scale floors violated: %+v", tiny)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewGenerator(Params{Objects: 100, Insertions: 50}); err == nil {
		t.Error("insertions below population accepted")
	}
	if _, err := NewGenerator(Params{NewOb: -1}); err == nil {
		t.Error("negative NewOb accepted")
	}
}

func TestNetworkProfileInverse(t *testing.T) {
	g, err := NewGenerator(Params{Seed: 3, Objects: 100, Insertions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	o := newNetObject(g, 5)
	for _, frac := range []float64{0, 0.05, 0.2, 0.5, 0.8, 0.95, 1} {
		s := o.length * frac
		tau := o.timeAt(s)
		s2, v := o.profile(tau)
		if math.Abs(s2-s) > 1e-6*o.length {
			t.Errorf("profile(timeAt(%v)) = %v", s, s2)
		}
		if v < 0 || v > o.vmax+1e-9 {
			t.Errorf("speed %v outside [0, vmax=%v]", v, o.vmax)
		}
	}
	// Speed in the cruise phase equals vmax.
	if _, v := o.profile((o.t1 + o.t2) / 2); v != o.vmax {
		t.Errorf("cruise speed %v != vmax %v", v, o.vmax)
	}
}

func TestNetworkSpeedGroups(t *testing.T) {
	p := smallParams()
	counts := map[float64]int{}
	for _, op := range collect(t, p) {
		if op.Kind != OpInsert {
			continue
		}
		speed := op.Point.Vel.Dist(geom.Vec{}, 2)
		for _, vm := range speedGroups {
			if math.Abs(speed-vm) < 1e-9 {
				counts[vm]++
			}
		}
		if speed > 3+1e-9 {
			t.Fatalf("speed %v exceeds the fastest group", speed)
		}
	}
	for _, vm := range speedGroups {
		if counts[vm] == 0 {
			t.Errorf("no cruise reports at group speed %v", vm)
		}
	}
}
