package workload

import (
	"math"

	"rexptree/internal/geom"
)

// uniformObject implements the uniform scenario of §5.1: positions and
// velocity directions drawn uniformly at random (initially and on each
// update), speeds uniform in (0, 3) km/min, update intervals uniform
// in (0, 2·UI).
type uniformObject struct {
	pos geom.Vec // position at the last report
	vel geom.Vec
	t   float64 // time of the last report
	new bool
}

func newUniformObject(g *Generator) *uniformObject {
	o := &uniformObject{new: true}
	for i := 0; i < 2; i++ {
		o.pos[i] = Space.Lo[i] + g.rng.Float64()*(Space.Hi[i]-Space.Lo[i])
	}
	return o
}

// randVel draws a random direction with speed uniform in (0, 3),
// reflecting components that would immediately push the object out of
// the space.
func (o *uniformObject) randVel(g *Generator) geom.Vec {
	speed := g.rng.Float64() * 3
	angle := g.rng.Float64() * 2 * math.Pi
	v := geom.Vec{speed * math.Cos(angle), speed * math.Sin(angle)}
	for i := 0; i < 2; i++ {
		if (o.pos[i] <= Space.Lo[i] && v[i] < 0) || (o.pos[i] >= Space.Hi[i] && v[i] > 0) {
			v[i] = -v[i]
		}
	}
	return v
}

// reportAt implements mover.
func (o *uniformObject) reportAt(g *Generator, tt float64) (pos, vel geom.Vec) {
	if !o.new {
		// Advance along the previously reported motion, clamped to the
		// space.
		o.pos = o.pos.Add(o.vel.Scale(tt - o.t))
		for i := 0; i < 2; i++ {
			o.pos[i] = math.Max(Space.Lo[i], math.Min(Space.Hi[i], o.pos[i]))
		}
	}
	o.new = false
	o.t = tt
	o.vel = o.randVel(g)
	return o.pos, o.vel
}

// nextEvent implements mover.
func (o *uniformObject) nextEvent(g *Generator, tt float64) float64 {
	return tt + g.rng.Float64()*2*g.p.UI
}
