// Package workload generates the index workloads of the paper's
// performance experiments (§5.1): streams of insertions, deletions and
// queries that simulate objects moving in a network of routes between
// destinations — or uniformly at random — reporting their positions
// with expiration times, interleaved with timeslice, window and moving
// queries.
package workload

import (
	"fmt"

	"rexptree/internal/geom"
)

// Space is the extent of the simulated space: 1000 x 1000 kilometers.
var Space = geom.Rect{Lo: geom.Vec{0, 0}, Hi: geom.Vec{1000, 1000}}

// Params configures a workload.  Zero values select the paper's
// defaults (bold in Table 1).
type Params struct {
	// Seed makes the workload deterministic; replaying with the same
	// parameters yields the identical operation stream.
	Seed int64

	// Objects is the target average number of live index entries
	// (paper: 100,000).  The generator increases the number of
	// simulated objects when expiration removes entries early, exactly
	// as §5.1 describes.
	Objects int

	// Insertions is the total number of insert operations in the
	// workload (paper: 1,000,000).
	Insertions int

	// UI is the average update interval length (Table 1: 30/60/90/120,
	// default 60).
	UI float64

	// ExpT, when positive, assigns each report the expiration time
	// t_upd + ExpT (Table 1: 30..240, default 2·UI).
	ExpT float64

	// ExpD, when positive, assigns speed-dependent expiration times
	// t_upd + ExpD/v (Table 1: 45..360).  ExpD takes precedence over
	// ExpT when both are set.
	ExpD float64

	// NoExpiry makes all reports never expire (used to stress the
	// baseline; by default ExpT = 2·UI applies).
	NoExpiry bool

	// NewOb is the fraction of the initial objects that are "turned
	// off" and replaced by new objects during the workload (Table 1:
	// 0..2, default 0).  Turned-off objects never report again and are
	// never explicitly deleted.
	NewOb float64

	// Uniform selects the uniform scenario instead of the network
	// scenario.
	Uniform bool

	// W is the querying window length; queries look at most W time
	// units past the current time (default UI/2).
	QueryW float64

	// QueriesPerInsertions controls query frequency: one query per
	// this many insertions (paper: 100).
	QueriesPerInsertions int

	// QueryArea is the fraction of the space a query square occupies
	// (paper: 0.25%).
	QueryArea float64
}

func (p Params) withDefaults() Params {
	if p.Objects == 0 {
		p.Objects = 100000
	}
	if p.Insertions == 0 {
		p.Insertions = 1000000
	}
	if p.UI == 0 {
		p.UI = 60
	}
	if p.ExpT == 0 && p.ExpD == 0 && !p.NoExpiry {
		p.ExpT = 2 * p.UI
	}
	if p.QueryW == 0 {
		p.QueryW = p.UI / 2
	}
	if p.QueriesPerInsertions == 0 {
		p.QueriesPerInsertions = 100
	}
	if p.QueryArea == 0 {
		p.QueryArea = 0.0025
	}
	return p
}

func (p Params) validate() error {
	if p.Objects < 1 {
		return fmt.Errorf("workload: Objects must be positive")
	}
	if p.Insertions < p.Objects {
		return fmt.Errorf("workload: Insertions (%d) must cover the initial population (%d)", p.Insertions, p.Objects)
	}
	if p.NewOb < 0 {
		return fmt.Errorf("workload: NewOb must be non-negative")
	}
	if p.UI <= 0 || p.QueryW <= 0 {
		return fmt.Errorf("workload: UI and QueryW must be positive")
	}
	return nil
}

// Scale returns a copy of p with the object and insertion counts
// multiplied by f, preserving all rates.  It lets the experiments run
// at a fraction of the paper's scale.
func (p Params) Scale(f float64) Params {
	p = p.withDefaults()
	p.Objects = int(float64(p.Objects) * f)
	if p.Objects < 100 {
		p.Objects = 100
	}
	p.Insertions = int(float64(p.Insertions) * f)
	if p.Insertions < 10*p.Objects {
		p.Insertions = 10 * p.Objects
	}
	return p
}

// OpKind distinguishes the operations of a workload stream.
type OpKind int

const (
	// OpInsert adds an object's report to the index.
	OpInsert OpKind = iota
	// OpDelete removes the object's previous report (the first half of
	// an update).
	OpDelete
	// OpQuery runs a query.
	OpQuery
)

// Op is one element of the workload stream.
type Op struct {
	Kind  OpKind
	Time  float64
	OID   uint32
	Point geom.MovingPoint // OpInsert: new report; OpDelete: the report to remove
	Query geom.Query       // OpQuery only
}
