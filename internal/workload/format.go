package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rexptree/internal/geom"
)

// The text workload format, one operation per line (written by
// cmd/rexpgen and replayable by cmd/rexpstat):
//
//	I <time> <oid> <x> <y> <vx> <vy> <texp>   insert; position at <time>
//	D <time> <oid>                            delete the previous report
//	Q <time> timeslice|window <t1> <t2> <x1> <y1> <x2> <y2>
//	Q <time> moving <t1> <t2> <x1> <y1> <x2> <y2> <x1'> <y1'> <x2'> <y2'>
//
// Lines starting with '#' are comments.  Expiration "inf" marks a
// never-expiring report.

// WriteOp writes one operation in the text format.
func WriteOp(w io.Writer, op Op) error {
	switch op.Kind {
	case OpInsert:
		at := op.Point.At(op.Time)
		texp := "inf"
		if geom.IsFinite(op.Point.TExp) {
			texp = strconv.FormatFloat(op.Point.TExp, 'f', 4, 64)
		}
		_, err := fmt.Fprintf(w, "I %.4f %d %.4f %.4f %.5f %.5f %s\n",
			op.Time, op.OID, at[0], at[1], op.Point.Vel[0], op.Point.Vel[1], texp)
		return err
	case OpDelete:
		_, err := fmt.Fprintf(w, "D %.4f %d\n", op.Time, op.OID)
		return err
	case OpQuery:
		q := op.Query
		r1, r2 := q.Region.At(q.T1), q.Region.At(q.T2)
		kind := KindOfQuery(q)
		if _, err := fmt.Fprintf(w, "Q %.4f %s %.4f %.4f %.4f %.4f %.4f %.4f",
			op.Time, kind, q.T1, q.T2, r1.Lo[0], r1.Lo[1], r1.Hi[0], r1.Hi[1]); err != nil {
			return err
		}
		if kind == "moving" {
			if _, err := fmt.Fprintf(w, " %.4f %.4f %.4f %.4f",
				r2.Lo[0], r2.Lo[1], r2.Hi[0], r2.Hi[1]); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	return fmt.Errorf("workload: unknown op kind %d", op.Kind)
}

// KindOfQuery names the query type for the text format.
func KindOfQuery(q geom.Query) string {
	switch {
	case q.T1 == q.T2:
		return "timeslice"
	case q.Region.VLo == (geom.Vec{}) && q.Region.VHi == (geom.Vec{}):
		return "window"
	default:
		return "moving"
	}
}

// Scanner reads a text-format workload.  Because delete lines carry
// only the object id, the scanner tracks the last inserted report per
// object and fills Op.Point on deletes, so the stream replays exactly.
type Scanner struct {
	sc      *bufio.Scanner
	line    int
	records map[uint32]geom.MovingPoint
	op      Op
	err     error
}

// NewScanner wraps r.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Scanner{sc: sc, records: make(map[uint32]geom.MovingPoint)}
}

// Scan advances to the next operation, returning false at the end of
// the stream or on error (see Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		op, err := s.parse(text)
		if err != nil {
			s.err = fmt.Errorf("workload: line %d: %w", s.line, err)
			return false
		}
		s.op = op
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Op returns the operation read by the last successful Scan.
func (s *Scanner) Op() Op { return s.op }

// Err returns the first error encountered.
func (s *Scanner) Err() error { return s.err }

func (s *Scanner) parse(text string) (Op, error) {
	f := strings.Fields(text)
	fl := func(i int) (float64, error) {
		if f[i] == "inf" {
			return geom.Inf(), nil
		}
		return strconv.ParseFloat(f[i], 64)
	}
	switch f[0] {
	case "I":
		if len(f) != 8 {
			return Op{}, fmt.Errorf("insert needs 8 fields, got %d", len(f))
		}
		var vals [7]float64
		for i := range vals {
			v, err := fl(i + 1)
			if err != nil {
				return Op{}, err
			}
			vals[i] = v
		}
		oid := uint32(vals[1])
		p := geom.MovingPoint{
			Vel:  geom.Vec{vals[4], vals[5]},
			TExp: vals[6],
		}
		// Back-extrapolate to the epoch representation.
		p.Pos = geom.Vec{vals[2], vals[3]}.Sub(p.Vel.Scale(vals[0]))
		s.records[oid] = p
		return Op{Kind: OpInsert, Time: vals[0], OID: oid, Point: p}, nil
	case "D":
		if len(f) != 3 {
			return Op{}, fmt.Errorf("delete needs 3 fields, got %d", len(f))
		}
		t, err := fl(1)
		if err != nil {
			return Op{}, err
		}
		oid64, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return Op{}, err
		}
		oid := uint32(oid64)
		p, ok := s.records[oid]
		if !ok {
			return Op{}, fmt.Errorf("delete of object %d with no prior insert", oid)
		}
		return Op{Kind: OpDelete, Time: t, OID: oid, Point: p}, nil
	case "Q":
		if len(f) < 9 {
			return Op{}, fmt.Errorf("query needs at least 9 fields, got %d", len(f))
		}
		kind := f[2]
		vals := make([]float64, len(f)-3)
		for i := range vals {
			v, err := fl(i + 3)
			if err != nil {
				return Op{}, err
			}
			vals[i] = v
		}
		t, err := fl(1)
		if err != nil {
			return Op{}, err
		}
		r1 := geom.Rect{Lo: geom.Vec{vals[2], vals[3]}, Hi: geom.Vec{vals[4], vals[5]}}
		var q geom.Query
		switch kind {
		case "timeslice":
			q = geom.Timeslice(r1, vals[0])
		case "window":
			q = geom.Window(r1, vals[0], vals[1])
		case "moving":
			if len(vals) != 10 {
				return Op{}, fmt.Errorf("moving query needs 10 values, got %d", len(vals))
			}
			r2 := geom.Rect{Lo: geom.Vec{vals[6], vals[7]}, Hi: geom.Vec{vals[8], vals[9]}}
			q = geom.Moving(r1, r2, vals[0], vals[1], 2)
		default:
			return Op{}, fmt.Errorf("unknown query kind %q", kind)
		}
		return Op{Kind: OpQuery, Time: t, Query: q}, nil
	}
	return Op{}, fmt.Errorf("unknown op %q", f[0])
}
