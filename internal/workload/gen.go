package workload

import (
	"container/heap"
	"math"
	"math/rand"

	"rexptree/internal/geom"
)

// speedFloor guards speed-dependent expiration times against the
// near-zero speeds at the start of a route: ExpD/v is computed with at
// least this speed (half the maximum of the slowest speed group).
const speedFloor = 0.375

// event is a scheduled object report.
type event struct {
	t   float64
	oid uint32
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].oid < h[j].oid
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mover is the motion model of one simulated object.
type mover interface {
	// reportAt returns the object's true position and velocity at time
	// tt, advancing internal state (e.g. chaining to a new route).
	reportAt(g *Generator, tt float64) (pos, vel geom.Vec)
	// nextEvent returns the time of the object's next report after tt.
	nextEvent(g *Generator, tt float64) float64
}

// Generator produces a deterministic workload stream.
type Generator struct {
	p   Params
	rng *rand.Rand
	net *network

	now     float64
	events  eventHeap
	movers  map[uint32]mover
	records map[uint32]geom.MovingPoint
	liveIDs []uint32
	livePos map[uint32]int

	nextOID      uint32
	inserted     int
	sinceQuery   int
	replaceEvery int
	sinceReplace int
	queue        []Op
}

// NewGenerator builds a generator for the given parameters.
func NewGenerator(p Params) (*Generator, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:       p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		movers:  make(map[uint32]mover),
		records: make(map[uint32]geom.MovingPoint),
		livePos: make(map[uint32]int),
	}
	if !p.Uniform {
		g.net = newNetwork(g.rng)
	}
	n := g.targetObjects()
	if r := int(math.Round(p.NewOb * float64(n))); r > 0 {
		g.replaceEvery = p.Insertions / r
		if g.replaceEvery < 1 {
			g.replaceEvery = 1
		}
	}
	// The population enters gradually over the first update interval.
	for i := 0; i < n; i++ {
		g.spawn(g.rng.Float64() * p.UI)
	}
	return g, nil
}

// targetObjects adjusts the simulated-object count so that the average
// number of live entries is about Params.Objects: when expiration
// periods are shorter than update intervals, entries die early, so
// more objects must participate (§5.1, using the same U(0, 2·UI)
// update-interval approximation as the paper).
func (g *Generator) targetObjects() int {
	p := g.p
	expT := math.Inf(1)
	switch {
	case p.NoExpiry:
	case p.ExpD > 0:
		meanSpeed := 1.75 // network speed groups 0.75/1.5/3
		if p.Uniform {
			meanSpeed = 1.5 // speeds uniform in (0, 3)
		}
		expT = p.ExpD / meanSpeed
	default:
		expT = p.ExpT
	}
	if expT >= 2*p.UI {
		return p.Objects
	}
	// E[min(X, expT)] with X ~ U(0, 2·UI).
	liveTime := expT - expT*expT/(4*p.UI)
	factor := p.UI / liveTime
	if factor > 5 {
		factor = 5
	}
	return int(float64(p.Objects) * factor)
}

// Params returns the effective (defaulted) parameters.
func (g *Generator) Params() Params { return g.p }

// spawn introduces a new object whose first report happens at time t.
func (g *Generator) spawn(t float64) {
	oid := g.nextOID
	g.nextOID++
	if g.p.Uniform {
		g.movers[oid] = newUniformObject(g)
	} else {
		g.movers[oid] = newNetObject(g, t)
	}
	g.livePos[oid] = len(g.liveIDs)
	g.liveIDs = append(g.liveIDs, oid)
	heap.Push(&g.events, event{t: t, oid: oid})
}

// turnOff silences the object: it will never report again, and its
// index entry is left to expire (or to linger, in an index without
// expiration support).
func (g *Generator) turnOff(oid uint32) {
	pos, ok := g.livePos[oid]
	if !ok {
		return
	}
	last := len(g.liveIDs) - 1
	moved := g.liveIDs[last]
	g.liveIDs[pos] = moved
	g.livePos[moved] = pos
	g.liveIDs = g.liveIDs[:last]
	delete(g.livePos, oid)
	delete(g.movers, oid)
}

// expiry computes the report's expiration time under the configured
// policy.
func (g *Generator) expiry(now, speed float64) float64 {
	switch {
	case g.p.NoExpiry:
		return geom.Inf()
	case g.p.ExpD > 0:
		return now + g.p.ExpD/math.Max(speed, speedFloor)
	default:
		return now + g.p.ExpT
	}
}

// Next returns the next operation of the stream, or ok == false when
// the workload is complete.
func (g *Generator) Next() (Op, bool) {
	for len(g.queue) == 0 {
		if g.inserted >= g.p.Insertions || len(g.events) == 0 {
			return Op{}, false
		}
		g.step()
	}
	op := g.queue[0]
	g.queue = g.queue[1:]
	return op, true
}

// step processes the next scheduled object report, enqueueing the
// delete+insert pair and any due query or replacement.
func (g *Generator) step() {
	ev := heap.Pop(&g.events).(event)
	if ev.t > g.now {
		g.now = ev.t
	}
	m, live := g.movers[ev.oid]
	if !live {
		return // turned off after this event was scheduled
	}
	pos, vel := m.reportAt(g, ev.t)
	speed := vel.Dist(geom.Vec{}, 2)
	p := geom.MovingPoint{
		Pos:  pos.Sub(vel.Scale(ev.t)), // epoch representation
		Vel:  vel,
		TExp: g.expiry(ev.t, speed),
	}
	if old, ok := g.records[ev.oid]; ok {
		g.queue = append(g.queue, Op{Kind: OpDelete, Time: ev.t, OID: ev.oid, Point: old})
	}
	g.queue = append(g.queue, Op{Kind: OpInsert, Time: ev.t, OID: ev.oid, Point: p})
	g.records[ev.oid] = p
	g.inserted++

	heap.Push(&g.events, event{t: m.nextEvent(g, ev.t), oid: ev.oid})

	g.sinceQuery++
	if g.sinceQuery >= g.p.QueriesPerInsertions {
		g.sinceQuery = 0
		g.queue = append(g.queue, g.genQuery())
	}
	if g.replaceEvery > 0 {
		g.sinceReplace++
		if g.sinceReplace >= g.replaceEvery && len(g.liveIDs) > 0 {
			g.sinceReplace = 0
			victim := g.liveIDs[g.rng.Intn(len(g.liveIDs))]
			g.turnOff(victim)
			g.spawn(g.now)
		}
	}
}

// genQuery draws one query: timeslice / window / moving with
// probability 0.6 / 0.2 / 0.2, square spatial extent of QueryArea of
// the space, temporal extent within [now, now+W] (§5.1).
func (g *Generator) genQuery() Op {
	side := (Space.Hi[0] - Space.Lo[0]) * math.Sqrt(g.p.QueryArea)
	randRect := func() geom.Rect {
		var r geom.Rect
		for i := 0; i < 2; i++ {
			lo := Space.Lo[i] + g.rng.Float64()*(Space.Hi[i]-Space.Lo[i]-side)
			r.Lo[i], r.Hi[i] = lo, lo+side
		}
		return r
	}
	ta := g.now + g.rng.Float64()*g.p.QueryW
	tb := g.now + g.rng.Float64()*g.p.QueryW
	t1, t2 := math.Min(ta, tb), math.Max(ta, tb)
	if t2 == t1 {
		t2 += 1e-6
	}
	var q geom.Query
	switch u := g.rng.Float64(); {
	case u < 0.6:
		q = geom.Timeslice(randRect(), t1)
	case u < 0.8:
		q = geom.Window(randRect(), t1, t2)
	default:
		// The moving query's center follows the trajectory of a point
		// currently in the index.
		centered := func(c geom.Vec) geom.Rect {
			var r geom.Rect
			for i := 0; i < 2; i++ {
				r.Lo[i], r.Hi[i] = c[i]-side/2, c[i]+side/2
			}
			return r
		}
		if len(g.liveIDs) == 0 {
			q = geom.Window(randRect(), t1, t2)
			break
		}
		oid := g.liveIDs[g.rng.Intn(len(g.liveIDs))]
		rec := g.records[oid]
		q = geom.Moving(centered(rec.At(t1)), centered(rec.At(t2)), t1, t2, 2)
	}
	return Op{Kind: OpQuery, Time: g.now, Query: q}
}
