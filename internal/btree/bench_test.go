package btree

import (
	"math/rand"
	"testing"

	"rexptree/internal/storage"
)

func BenchmarkInsert(b *testing.B) {
	bt, err := New(storage.NewMemStore(), 50)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(rng.Float64()*1e6, uint32(i))
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	bt, err := New(storage.NewMemStore(), 50)
	if err != nil {
		b.Fatal(err)
	}
	const n = 50000
	keys := make([]Key, n)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = Key{TExp: float64(float32(rng.Float64() * 1e6)), OID: uint32(i)}
		bt.Insert(keys[i].TExp, keys[i].OID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%n]
		bt.Delete(k.TExp, k.OID)
		bt.Insert(k.TExp, k.OID)
	}
}

func BenchmarkPopMin(b *testing.B) {
	bt, err := New(storage.NewMemStore(), 50)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N+1; i++ {
		bt.Insert(rng.Float64()*1e6, uint32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.PopMin()
	}
}
