package btree

import (
	"math/rand"
	"testing"

	"rexptree/internal/storage"
)

func newTestTree(t *testing.T) *BTree {
	t.Helper()
	b, err := New(storage.NewMemStore(), 20)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEmpty(t *testing.T) {
	b := newTestTree(t)
	if b.Len() != 0 || b.Height() != 1 {
		t.Fatalf("len=%d height=%d", b.Len(), b.Height())
	}
	if _, ok, _ := b.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, ok, _ := b.PopMin(); ok {
		t.Fatal("PopMin on empty tree")
	}
	if found, _ := b.Delete(1, 1); found {
		t.Fatal("Delete on empty tree found something")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	b := newTestTree(t)
	if ok, err := b.Insert(5, 7); err != nil || !ok {
		t.Fatalf("first insert: %v %v", ok, err)
	}
	if ok, err := b.Insert(5, 7); err != nil || ok {
		t.Fatalf("duplicate insert: %v %v", ok, err)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
	// Same time, different oid is a distinct key.
	if ok, _ := b.Insert(5, 8); !ok {
		t.Fatal("distinct oid rejected")
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestOrderingAndMin(t *testing.T) {
	b := newTestTree(t)
	b.Insert(30, 1)
	b.Insert(10, 2)
	b.Insert(20, 3)
	b.Insert(10, 1) // ties broken by oid
	k, ok, err := b.Min()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if k.TExp != 10 || k.OID != 1 {
		t.Fatalf("min = %+v", k)
	}
	var got []Key
	b.Ascend(func(k Key) bool { got = append(got, k); return true })
	want := []Key{{10, 1}, {10, 2}, {20, 3}, {30, 1}}
	if len(got) != len(want) {
		t.Fatalf("ascend = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPopMinDrains(t *testing.T) {
	b := newTestTree(t)
	const n = 3000
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		if ok, err := b.Insert(rng.Float64()*1000, uint32(i)); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	if b.Height() < 2 {
		t.Fatalf("height = %d, expected splits", b.Height())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	prev := Key{TExp: -1}
	for i := 0; i < n; i++ {
		k, ok, err := b.PopMin()
		if err != nil || !ok {
			t.Fatalf("pop %d: %v %v", i, ok, err)
		}
		if k.Less(prev) {
			t.Fatalf("pop %d: %v < previous %v", i, k, prev)
		}
		prev = k
	}
	if b.Len() != 0 {
		t.Fatalf("len = %d after draining", b.Len())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	b := newTestTree(t)
	rng := rand.New(rand.NewSource(7))
	oracle := map[Key]bool{}
	for step := 0; step < 20000; step++ {
		k := Key{TExp: float64(float32(rng.Float64() * 500)), OID: uint32(rng.Intn(2000))}
		if rng.Intn(3) > 0 {
			ok, err := b.Insert(k.TExp, k.OID)
			if err != nil {
				t.Fatal(err)
			}
			if ok == oracle[k] {
				t.Fatalf("step %d: insert %v returned %v, oracle has=%v", step, k, ok, oracle[k])
			}
			oracle[k] = true
		} else {
			ok, err := b.Delete(k.TExp, k.OID)
			if err != nil {
				t.Fatal(err)
			}
			if ok != oracle[k] {
				t.Fatalf("step %d: delete %v returned %v, oracle has=%v", step, k, ok, oracle[k])
			}
			delete(oracle, k)
		}
		if b.Len() != len(oracle) {
			t.Fatalf("step %d: len %d vs oracle %d", step, b.Len(), len(oracle))
		}
		if step%2500 == 2499 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Final full comparison via Ascend.
	var got []Key
	b.Ascend(func(k Key) bool { got = append(got, k); return true })
	if len(got) != len(oracle) {
		t.Fatalf("ascend count %d vs oracle %d", len(got), len(oracle))
	}
	for _, k := range got {
		if !oracle[k] {
			t.Fatalf("ascend produced %v not in oracle", k)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialInsertDescendingDelete(t *testing.T) {
	b := newTestTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		b.Insert(float64(i), uint32(i))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := n - 1; i >= 0; i-- {
		ok, err := b.Delete(float64(i), uint32(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if b.Len() != 0 || b.Height() != 1 {
		t.Fatalf("len=%d height=%d", b.Len(), b.Height())
	}
}

func TestIOAccounting(t *testing.T) {
	b := newTestTree(t)
	for i := 0; i < 5000; i++ {
		b.Insert(float64(i%97)*3.7, uint32(i))
	}
	s := b.Stats()
	if s.Writes == 0 {
		t.Fatal("no writes recorded")
	}
	b.ResetStats()
	if b.Stats().IO() != 0 {
		t.Fatal("reset failed")
	}
	// A single insert into a warm tree costs only a handful of I/Os.
	b.Insert(9999, 123456)
	if io := b.Stats().IO(); io > 10 {
		t.Fatalf("one insert cost %d I/Os", io)
	}
}
