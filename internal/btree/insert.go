package btree

import "rexptree/internal/storage"

// Insert adds the key.  Inserting a key already present is a no-op
// returning false.  The key's expiration time is quantized to float32
// page precision.
func (b *BTree) Insert(texp float64, oid uint32) (bool, error) {
	k := Key{TExp: texp, OID: oid}.quantize()
	path, err := b.pathToLeaf(k)
	if err != nil {
		return false, err
	}
	leaf := path[len(path)-1]
	pos, exists := leaf.keyIndex(k)
	if exists {
		return false, b.finishOp()
	}
	leaf.keys = append(leaf.keys, Key{})
	copy(leaf.keys[pos+1:], leaf.keys[pos:])
	leaf.keys[pos] = k
	b.size++
	if err := b.fixOverflow(path); err != nil {
		return false, err
	}
	return true, b.finishOp()
}

// pathToLeaf loads the nodes from the root down to the leaf for k.
func (b *BTree) pathToLeaf(k Key) ([]*node, error) {
	n, err := b.readNode(b.root)
	if err != nil {
		return nil, err
	}
	path := []*node{n}
	for !n.leaf {
		n, err = b.readNode(n.childs[n.childIndex(k)])
		if err != nil {
			return nil, err
		}
		path = append(path, n)
	}
	return path, nil
}

func nodeCap(n *node) int {
	if n.leaf {
		return leafCap
	}
	return innerCap
}

func nodeMin(n *node) int {
	if n.leaf {
		return leafMin
	}
	return innerMin
}

// fixOverflow splits overfull nodes bottom-up along the path and
// writes every modified node.
func (b *BTree) fixOverflow(path []*node) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.keys) <= nodeCap(n) {
			// Fits: nothing above was touched.
			return b.writeNode(n)
		}
		sib, sep, err := b.splitNode(n)
		if err != nil {
			return err
		}
		if i == 0 {
			// Root split: grow the tree.
			root, err := b.allocNode(false)
			if err != nil {
				return err
			}
			root.keys = []Key{sep}
			root.childs = []storage.PageID{n.id, sib.id}
			if err := b.writeNode(root); err != nil {
				return err
			}
			if err := b.bp.Unpin(b.root); err != nil {
				return err
			}
			b.root = root.id
			b.height++
			return b.bp.Pin(b.root)
		}
		parent := path[i-1]
		ci := indexOfChild(parent, n.id)
		parent.keys = append(parent.keys, Key{})
		copy(parent.keys[ci+1:], parent.keys[ci:])
		parent.keys[ci] = sep
		parent.childs = append(parent.childs, 0)
		copy(parent.childs[ci+2:], parent.childs[ci+1:])
		parent.childs[ci+1] = sib.id
	}
	return nil
}

// splitNode moves the upper half of n into a new right sibling and
// returns the sibling with the separator key.
func (b *BTree) splitNode(n *node) (*node, Key, error) {
	sib, err := b.allocNode(n.leaf)
	if err != nil {
		return nil, Key{}, err
	}
	mid := len(n.keys) / 2
	var sep Key
	if n.leaf {
		sep = n.keys[mid]
		sib.keys = append(sib.keys, n.keys[mid:]...)
		n.keys = n.keys[:mid]
		sib.next = n.next
		n.next = sib.id
	} else {
		// The middle key moves up; it does not stay in either half.
		sep = n.keys[mid]
		sib.keys = append(sib.keys, n.keys[mid+1:]...)
		sib.childs = append(sib.childs, n.childs[mid+1:]...)
		n.keys = n.keys[:mid]
		n.childs = n.childs[:mid+1]
	}
	if err := b.writeNode(n); err != nil {
		return nil, Key{}, err
	}
	if err := b.writeNode(sib); err != nil {
		return nil, Key{}, err
	}
	return sib, sep, nil
}

func indexOfChild(parent *node, id storage.PageID) int {
	for i, c := range parent.childs {
		if c == id {
			return i
		}
	}
	panic("btree: child not found in parent")
}

// finishOp writes dirty pages back, matching the index's write-back
// policy.
func (b *BTree) finishOp() error { return b.bp.Flush() }
