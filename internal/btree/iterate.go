package btree

import (
	"fmt"

	"rexptree/internal/storage"
)

// Ascend visits all keys in ascending order, following the leaf chain,
// until fn returns false.
func (b *BTree) Ascend(fn func(Key) bool) error {
	n, err := b.readNode(b.root)
	if err != nil {
		return err
	}
	for !n.leaf {
		n, err = b.readNode(n.childs[0])
		if err != nil {
			return err
		}
	}
	for {
		for _, k := range n.keys {
			if !fn(k) {
				return nil
			}
		}
		if n.next == storage.InvalidPage {
			return nil
		}
		n, err = b.readNode(n.next)
		if err != nil {
			return err
		}
	}
}

// CheckInvariants validates the B+-tree structure (for tests): key
// ordering and separator bounds, uniform leaf depth, fill factors, the
// leaf chain, and the size counter.
func (b *BTree) CheckInvariants() error {
	leafDepth := -1
	var count int
	var prevLeaf *node
	var walk func(id storage.PageID, depth int, lo, hi *Key) error
	walk = func(id storage.PageID, depth int, lo, hi *Key) error {
		n, err := b.readNode(id)
		if err != nil {
			return err
		}
		if id != b.root {
			if len(n.keys) < nodeMin(n) {
				return fmt.Errorf("btree: node %d underfull: %d keys", id, len(n.keys))
			}
		}
		if len(n.keys) > nodeCap(n) {
			return fmt.Errorf("btree: node %d overfull: %d keys", id, len(n.keys))
		}
		for i := 1; i < len(n.keys); i++ {
			if !n.keys[i-1].Less(n.keys[i]) {
				return fmt.Errorf("btree: node %d keys out of order at %d", id, i)
			}
		}
		for _, k := range n.keys {
			if lo != nil && k.Less(*lo) {
				return fmt.Errorf("btree: node %d key %v below separator %v", id, k, *lo)
			}
			if hi != nil && !k.Less(*hi) {
				return fmt.Errorf("btree: node %d key %v not below separator %v", id, k, *hi)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaf %d at depth %d, expected %d", id, depth, leafDepth)
			}
			count += len(n.keys)
			if prevLeaf != nil && prevLeaf.next != n.id {
				return fmt.Errorf("btree: leaf chain broken before %d", id)
			}
			prevLeaf = n
			return nil
		}
		if len(n.childs) != len(n.keys)+1 {
			return fmt.Errorf("btree: node %d has %d children for %d keys", id, len(n.childs), len(n.keys))
		}
		for i, c := range n.childs {
			var clo, chi *Key
			if i > 0 {
				clo = &n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(b.root, 1, nil, nil); err != nil {
		return err
	}
	if leafDepth != b.height {
		return fmt.Errorf("btree: height %d, leaves at depth %d", b.height, leafDepth)
	}
	if count != b.size {
		return fmt.Errorf("btree: size counter %d, actual %d", b.size, count)
	}
	if prevLeaf != nil && prevLeaf.next != storage.InvalidPage {
		return fmt.Errorf("btree: last leaf has dangling next pointer")
	}
	return nil
}
