package btree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rexptree/internal/storage"
)

func sane(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestQuickKeyOrderTotal(t *testing.T) {
	f := func(t1, t2 float64, o1, o2 uint32) bool {
		a := Key{TExp: sane(t1), OID: o1}
		b := Key{TExp: sane(t2), OID: o2}
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a)
		default:
			return a.Less(b) != b.Less(a) // antisymmetric and total
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyOrderTransitive(t *testing.T) {
	f := func(ts [3]float64, os [3]uint32) bool {
		k := make([]Key, 3)
		for i := range k {
			k[i] = Key{TExp: sane(ts[i]), OID: os[i]}
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for l := 0; l < 3; l++ {
					if k[i].Less(k[j]) && k[j].Less(k[l]) && !k[i].Less(k[l]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsertedKeysRetrievable checks, for random key batches, that
// everything inserted comes back in sorted order via Ascend.
func TestQuickInsertedKeysRetrievable(t *testing.T) {
	f := func(raw []float64) bool {
		b, err := New(storage.NewMemStore(), 10)
		if err != nil {
			return false
		}
		want := map[Key]bool{}
		for i, x := range raw {
			k := Key{TExp: sane(x), OID: uint32(i)}.quantize()
			if _, err := b.Insert(k.TExp, k.OID); err != nil {
				return false
			}
			want[k] = true
		}
		var got []Key
		b.Ascend(func(k Key) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i, k := range got {
			if !want[k] {
				return false
			}
			if i > 0 && k.Less(got[i-1]) {
				return false
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
