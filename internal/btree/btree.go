// Package btree implements a disk-page B+-tree on the composite key
// (expiration time, object id).  The paper's §3 discusses managing
// scheduled deletions of expiring objects with exactly this structure:
// the queue of scheduled deletion events must support efficient
// insertion, deletion of arbitrary events (an object may be updated
// before it expires), and retrieval of the earliest event.
//
// The tree shares the storage substrate of the main index (4 KiB
// pages behind an LRU buffer pool) so its I/O can be charged —
// or deliberately ignored, as the paper's Figure 16 does — by the
// experiment harness.
package btree

import (
	"encoding/binary"
	"fmt"
	"math"

	"rexptree/internal/storage"
)

// Key is the composite ordering key.
type Key struct {
	TExp float64 // stored as float32 on the page
	OID  uint32
}

// Less orders keys by (TExp, OID).
func (k Key) Less(o Key) bool {
	if k.TExp != o.TExp {
		return k.TExp < o.TExp
	}
	return k.OID < o.OID
}

// quantize rounds the key to its page representation.
func (k Key) quantize() Key {
	k.TExp = float64(float32(k.TExp))
	return k
}

const (
	headerSize = 16
	keySize    = 8 // float32 texp + uint32 oid

	leafCap  = (storage.PageSize - headerSize) / keySize           // 510
	innerCap = (storage.PageSize - headerSize - 4) / (keySize + 4) // 339

	leafMin  = leafCap * 2 / 5
	innerMin = innerCap * 2 / 5
)

// node is the in-memory image of a B+-tree page.
type node struct {
	id     storage.PageID
	leaf   bool
	keys   []Key
	childs []storage.PageID // len(keys)+1 when internal
	next   storage.PageID   // right sibling (leaf level)
}

// BTree is a B+-tree over a page store.  Not safe for concurrent use.
type BTree struct {
	bp     *storage.BufferPool
	root   storage.PageID
	height int
	size   int
}

// New creates an empty B+-tree over the store.
func New(store storage.Store, bufferPages int) (*BTree, error) {
	b := &BTree{bp: storage.NewBufferPool(store, bufferPages)}
	root, err := b.allocNode(true)
	if err != nil {
		return nil, err
	}
	if err := b.writeNode(root); err != nil {
		return nil, err
	}
	b.root = root.id
	b.height = 1
	if err := b.bp.Pin(b.root); err != nil {
		return nil, err
	}
	return b, nil
}

// Len returns the number of stored keys.
func (b *BTree) Len() int { return b.size }

// Height returns the number of levels.
func (b *BTree) Height() int { return b.height }

// Stats returns the accumulated I/O counters of the tree's buffer
// pool.
func (b *BTree) Stats() storage.Stats { return b.bp.Stats() }

// ResetStats zeroes the I/O counters.
func (b *BTree) ResetStats() { b.bp.ResetStats() }

// Size returns the number of allocated pages.
func (b *BTree) Size() int { return b.bp.Store().Len() }

func (b *BTree) allocNode(leaf bool) (*node, error) {
	id, _, err := b.bp.Allocate()
	if err != nil {
		return nil, err
	}
	return &node{id: id, leaf: leaf, next: storage.InvalidPage}, nil
}

func putKey(buf []byte, off int, k Key) int {
	binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(k.TExp)))
	binary.LittleEndian.PutUint32(buf[off+4:], k.OID)
	return off + keySize
}

func getKey(buf []byte, off int) (Key, int) {
	return Key{
		TExp: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))),
		OID:  binary.LittleEndian.Uint32(buf[off+4:]),
	}, off + keySize
}

func (b *BTree) writeNode(n *node) error {
	buf, err := b.bp.Get(n.id)
	if err != nil {
		return err
	}
	for i := range buf[:headerSize] {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.keys)))
	binary.LittleEndian.PutUint32(buf[4:], uint32(n.next))
	off := headerSize
	if n.leaf {
		for _, k := range n.keys {
			off = putKey(buf, off, k)
		}
	} else {
		binary.LittleEndian.PutUint32(buf[off:], uint32(n.childs[0]))
		off += 4
		for i, k := range n.keys {
			off = putKey(buf, off, k)
			binary.LittleEndian.PutUint32(buf[off:], uint32(n.childs[i+1]))
			off += 4
		}
	}
	return b.bp.MarkDirty(n.id)
}

func (b *BTree) readNode(id storage.PageID) (*node, error) {
	buf, err := b.bp.Get(id)
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: buf[0] == 1}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	n.next = storage.PageID(binary.LittleEndian.Uint32(buf[4:]))
	maxCount := innerCap
	if n.leaf {
		maxCount = leafCap
	}
	if count > maxCount {
		return nil, fmt.Errorf("btree: page %d: corrupt count %d", id, count)
	}
	n.keys = make([]Key, count)
	off := headerSize
	if n.leaf {
		for i := range n.keys {
			n.keys[i], off = getKey(buf, off)
		}
		return n, nil
	}
	n.childs = make([]storage.PageID, count+1)
	n.childs[0] = storage.PageID(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := range n.keys {
		n.keys[i], off = getKey(buf, off)
		n.childs[i+1] = storage.PageID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return n, nil
}

// childIndex returns the index of the child to descend into for k.
func (n *node) childIndex(k Key) int {
	i := 0
	for i < len(n.keys) && !k.Less(n.keys[i]) {
		i++
	}
	return i
}

// keyIndex returns the position of k in a leaf (insertion point) and
// whether an equal key is present there.
func (n *node) keyIndex(k Key) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == k
}
