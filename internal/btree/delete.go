package btree

import "rexptree/internal/storage"

// Delete removes the key, rebalancing with borrow-or-merge.  It
// returns false when the key is absent.
func (b *BTree) Delete(texp float64, oid uint32) (bool, error) {
	k := Key{TExp: texp, OID: oid}.quantize()
	path, err := b.pathToLeaf(k)
	if err != nil {
		return false, err
	}
	leaf := path[len(path)-1]
	pos, exists := leaf.keyIndex(k)
	if !exists {
		return false, b.finishOp()
	}
	leaf.keys = append(leaf.keys[:pos], leaf.keys[pos+1:]...)
	b.size--
	if err := b.fixUnderflow(path); err != nil {
		return false, err
	}
	return true, b.finishOp()
}

// Min returns the smallest key without removing it.
func (b *BTree) Min() (Key, bool, error) {
	n, err := b.readNode(b.root)
	if err != nil {
		return Key{}, false, err
	}
	for !n.leaf {
		n, err = b.readNode(n.childs[0])
		if err != nil {
			return Key{}, false, err
		}
	}
	if len(n.keys) == 0 {
		return Key{}, false, nil
	}
	return n.keys[0], true, nil
}

// PopMin removes and returns the smallest key.
func (b *BTree) PopMin() (Key, bool, error) {
	k, ok, err := b.Min()
	if err != nil || !ok {
		return Key{}, false, err
	}
	ok, err = b.Delete(k.TExp, k.OID)
	if err != nil {
		return Key{}, false, err
	}
	if !ok {
		panic("btree: Min key vanished before PopMin")
	}
	return k, true, nil
}

// fixUnderflow rebalances underfull nodes bottom-up along the path and
// writes every modified node.
func (b *BTree) fixUnderflow(path []*node) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if i == 0 {
			// Root: shrink when an internal root has a single child.
			if !n.leaf && len(n.keys) == 0 {
				child := n.childs[0]
				if err := b.bp.Unpin(b.root); err != nil {
					return err
				}
				b.root = child
				b.height--
				if err := b.bp.Pin(b.root); err != nil {
					return err
				}
				return b.bp.Free(n.id)
			}
			return b.writeNode(n)
		}
		if len(n.keys) >= nodeMin(n) {
			// Balanced: nothing above was touched.
			return b.writeNode(n)
		}
		parent := path[i-1]
		ci := indexOfChild(parent, n.id)
		// Try borrowing from the left sibling, then the right; merge
		// otherwise.
		if ci > 0 {
			left, err := b.readNode(parent.childs[ci-1])
			if err != nil {
				return err
			}
			if len(left.keys) > nodeMin(left) {
				b.borrowFromLeft(parent, ci, left, n)
				if err := b.writeNode(left); err != nil {
					return err
				}
				if err := b.writeNode(n); err != nil {
					return err
				}
				continue
			}
			// Merge n into left.
			b.merge(parent, ci-1, left, n)
			if err := b.writeNode(left); err != nil {
				return err
			}
			if err := b.bp.Free(n.id); err != nil {
				return err
			}
			continue
		}
		right, err := b.readNode(parent.childs[ci+1])
		if err != nil {
			return err
		}
		if len(right.keys) > nodeMin(right) {
			b.borrowFromRight(parent, ci, n, right)
			if err := b.writeNode(right); err != nil {
				return err
			}
			if err := b.writeNode(n); err != nil {
				return err
			}
			continue
		}
		b.merge(parent, ci, n, right)
		if err := b.writeNode(n); err != nil {
			return err
		}
		if err := b.bp.Free(right.id); err != nil {
			return err
		}
	}
	return nil
}

// borrowFromLeft moves the left sibling's last key into n (through the
// parent separator for internal nodes).
func (b *BTree) borrowFromLeft(parent *node, ci int, left, n *node) {
	if n.leaf {
		k := left.keys[len(left.keys)-1]
		left.keys = left.keys[:len(left.keys)-1]
		n.keys = append([]Key{k}, n.keys...)
		parent.keys[ci-1] = n.keys[0]
		return
	}
	sep := parent.keys[ci-1]
	n.keys = append([]Key{sep}, n.keys...)
	n.childs = append([]storage.PageID{left.childs[len(left.childs)-1]}, n.childs...)
	parent.keys[ci-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.childs = left.childs[:len(left.childs)-1]
}

// borrowFromRight moves the right sibling's first key into n.
func (b *BTree) borrowFromRight(parent *node, ci int, n, right *node) {
	if n.leaf {
		k := right.keys[0]
		right.keys = right.keys[1:]
		n.keys = append(n.keys, k)
		parent.keys[ci] = right.keys[0]
		return
	}
	sep := parent.keys[ci]
	n.keys = append(n.keys, sep)
	n.childs = append(n.childs, right.childs[0])
	parent.keys[ci] = right.keys[0]
	right.keys = right.keys[1:]
	right.childs = right.childs[1:]
}

// merge folds right into left, removing the separator at parent key
// index si (children si and si+1).
func (b *BTree) merge(parent *node, si int, left, right *node) {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, parent.keys[si])
		left.keys = append(left.keys, right.keys...)
		left.childs = append(left.childs, right.childs...)
	}
	parent.keys = append(parent.keys[:si], parent.keys[si+1:]...)
	parent.childs = append(parent.childs[:si+1], parent.childs[si+2:]...)
}
