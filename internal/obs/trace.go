package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one internal execution phase whose latency is
// aggregated into the phase-duration histograms (Metrics.Phases).
// Phases attribute where operations spend their time below the
// per-operation histograms: waiting for a fan-out worker, reading or
// writing pages past the buffer pool, appending to and fsyncing the
// write-ahead log, checkpointing, and merging per-shard result sets.
// (Lock waits have their own dedicated histograms, LockWaitRead and
// LockWaitWrite.)
type Phase int

// The phases, in exposition order.
const (
	// PhaseQueueWait is the time a fan-out task waits for a worker
	// slot in the sharded front-end's bounded pool.
	PhaseQueueWait Phase = iota
	// PhaseIORead is the store read of a buffer-pool miss.
	PhaseIORead
	// PhaseIOWrite is a page write that reaches the store (writeback,
	// flush or checkpoint).
	PhaseIOWrite
	// PhaseWALAppend is the buffered framing and append of one WAL
	// record.
	PhaseWALAppend
	// PhaseWALFsync is an fsync of the write-ahead log (the commit
	// stall of DurabilityOnCommit, the periodic sync of
	// DurabilityBatched, and the image sync of a checkpoint).
	PhaseWALFsync
	// PhaseCheckpoint is a whole checkpoint: imaging dirty pages into
	// the WAL, flushing the pool, syncing the store, truncating the
	// log.  Mutations stall behind it.
	PhaseCheckpoint
	// PhaseMerge is the sharded front-end's result merge: collecting
	// the per-shard result sets and sorting them into the
	// deterministic output order.
	PhaseMerge
	// NumPhases is the count, not a phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"queue_wait", "io_read", "io_write",
	"wal_append", "wal_fsync", "checkpoint", "merge",
}

// String returns the phase's snake_case name as used in the
// `phase` label of the Prometheus exposition.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// ObservePhase records one phase duration.  No-op on a nil receiver —
// the uninstrumented fast path.
func (m *Metrics) ObservePhase(p Phase, d time.Duration) {
	if m == nil {
		return
	}
	m.Phases[p].Observe(d)
}

// traceRing is a fixed-size lock-free ring of recent values.  Writers
// claim a slot with one atomic increment and store into it; readers
// snapshot without blocking writers.  A snapshot taken while writers
// race may miss or duplicate the entries at the moving edge — it is a
// flight recorder, not a transaction log.  Every value stored into one
// ring must have the same concrete type (an atomic.Value constraint);
// the recorder's callers store *QueryTrace-shaped values only.
type traceRing struct {
	slots []atomic.Value
	n     atomic.Uint64 // total values ever put
}

func newTraceRing(capacity int) traceRing {
	return traceRing{slots: make([]atomic.Value, capacity)}
}

// put records v, overwriting the oldest entry when the ring is full.
func (r *traceRing) put(v any) {
	i := r.n.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// snapshot returns the retained values, newest first.
func (r *traceRing) snapshot() []any {
	n := r.n.Load()
	k := uint64(len(r.slots))
	if n < k {
		k = n
	}
	out := make([]any, 0, k)
	for j := uint64(0); j < k; j++ {
		v := r.slots[(n-1-j)%uint64(len(r.slots))].Load()
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// Recorder is the flight recorder: two fixed-size rings of operation
// traces, one holding the most recent operations and one holding the
// operations that reached the slow threshold, so the interesting
// (slow) traces survive long after the recent ring has cycled past
// them.  Record costs one atomic increment and one atomic store per
// ring touched; it never allocates and never blocks.
type Recorder struct {
	recent    traceRing
	slow      traceRing
	slowNanos atomic.Int64
}

// NewRecorder returns a recorder retaining up to capacity recent and
// capacity slow traces; operations at least slow long are additionally
// kept in the slow ring (0 disables the slow ring).
func NewRecorder(capacity int, slow time.Duration) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{
		recent: newTraceRing(capacity),
		slow:   newTraceRing(capacity),
	}
	r.slowNanos.Store(int64(slow))
	return r
}

// Record retains v as the newest recent trace, and also as a slow
// trace when d reaches the slow threshold.
func (r *Recorder) Record(v any, d time.Duration) {
	r.recent.put(v)
	if t := r.slowNanos.Load(); t > 0 && int64(d) >= t {
		r.slow.put(v)
	}
}

// Snapshot returns the retained recent and slow traces, newest first.
func (r *Recorder) Snapshot() (recent, slow []any) {
	return r.recent.snapshot(), r.slow.snapshot()
}

// SlowThreshold returns the current slow-trace threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNanos.Load())
}

// SetSlowThreshold replaces the slow-trace threshold (0 disables the
// slow ring).  Safe to call while operations record.
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	r.slowNanos.Store(int64(d))
}
