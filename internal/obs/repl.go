package obs

import (
	"bufio"
	"io"
	"strconv"
)

// ReplStats is a point-in-time view of the replication layer, filled
// by the leader hub and/or the follower applier (internal/repl) and
// rendered by WriteReplMetrics.  Fields a role does not use stay zero
// and are still exposed, so dashboards see a stable family set.
type ReplStats struct {
	// Leader side.
	FeedRecords   uint64 // logical records appended to the feed
	FeedBytes     uint64 // payload bytes appended to the feed
	RetainedBytes int64  // payload bytes currently retained
	Snapshots     uint64 // backup streams started
	SnapshotBytes uint64 // bytes sent across all backup streams
	TailRequests  uint64 // /v1/wal requests served

	// Follower side.
	AppliedRecords uint64  // logical records applied to the replica
	AppliedLSN     uint64  // last applied log sequence number
	Bootstraps     uint64  // full snapshot bootstraps completed
	Reconnects     uint64  // tail connections re-established
	FrameErrors    uint64  // corrupt or truncated frames refused
	LagSeconds     float64 // age of the last applied record
	LagBytes       int64   // leader head offset minus applied offset
}

// replFamily mirrors promFamily for the replication stats.
type replFamily struct {
	name, typ, help string
	value           func(*ReplStats) string
}

var replFamilies = []replFamily{
	{"_repl_feed_records_total", "counter", "Logical records appended to the leader's replication feed.", func(s *ReplStats) string { return strconv.FormatUint(s.FeedRecords, 10) }},
	{"_repl_feed_bytes_total", "counter", "Payload bytes appended to the leader's replication feed.", func(s *ReplStats) string { return strconv.FormatUint(s.FeedBytes, 10) }},
	{"_repl_feed_retained_bytes", "gauge", "Feed payload bytes currently retained for tailing followers.", func(s *ReplStats) string { return strconv.FormatInt(s.RetainedBytes, 10) }},
	{"_repl_snapshots_total", "counter", "Hot-backup snapshot streams started.", func(s *ReplStats) string { return strconv.FormatUint(s.Snapshots, 10) }},
	{"_repl_snapshot_bytes_total", "counter", "Bytes sent across all hot-backup snapshot streams.", func(s *ReplStats) string { return strconv.FormatUint(s.SnapshotBytes, 10) }},
	{"_repl_tail_requests_total", "counter", "WAL tail (long-poll) requests served.", func(s *ReplStats) string { return strconv.FormatUint(s.TailRequests, 10) }},
	{"_repl_applied_records_total", "counter", "Logical records applied to the local replica.", func(s *ReplStats) string { return strconv.FormatUint(s.AppliedRecords, 10) }},
	{"_repl_applied_lsn", "gauge", "Last log sequence number applied to the local replica.", func(s *ReplStats) string { return strconv.FormatUint(s.AppliedLSN, 10) }},
	{"_repl_bootstraps_total", "counter", "Full snapshot bootstraps this follower completed.", func(s *ReplStats) string { return strconv.FormatUint(s.Bootstraps, 10) }},
	{"_repl_reconnects_total", "counter", "Tail connections the follower re-established after a failure.", func(s *ReplStats) string { return strconv.FormatUint(s.Reconnects, 10) }},
	{"_repl_frame_errors_total", "counter", "Corrupt or truncated replication frames detected and refused.", func(s *ReplStats) string { return strconv.FormatUint(s.FrameErrors, 10) }},
	{"_repl_lag_seconds", "gauge", "Staleness of the replica: seconds since the last applied record was produced.", func(s *ReplStats) string { return formatFloat(s.LagSeconds) }},
	{"_repl_lag_bytes", "gauge", "Feed bytes the replica has not yet applied.", func(s *ReplStats) string { return strconv.FormatInt(s.LagBytes, 10) }},
}

// WriteReplMetrics renders the replication families in Prometheus text
// exposition format under the given prefix, matching WriteSnapshot's
// conventions.
func WriteReplMetrics(w io.Writer, prefix string, st ReplStats) error {
	bw := bufio.NewWriter(w)
	for _, f := range replFamilies {
		name := prefix + f.name
		bw.WriteString("# HELP ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.value(&st))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
