package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMetricsDocCoversExposition keeps docs/METRICS.md in sync with
// the exposition: every family the registry writes must be documented,
// and every rexp_-prefixed name the document mentions must exist.
func TestMetricsDocCoversExposition(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatalf("metrics catalog missing: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	// The serve-mode runtime families are part of the documented
	// surface too.
	if err := WriteRuntimeMetrics(&buf, DefaultPrefix); err != nil {
		t.Fatal(err)
	}
	// So are the replication families.
	if err := WriteReplMetrics(&buf, DefaultPrefix, ReplStats{}); err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(rest)[0]] = true
		}
	}
	if len(families) == 0 {
		t.Fatal("no families parsed from exposition")
	}

	for name := range families {
		if !bytes.Contains(doc, []byte("`"+name+"`")) {
			t.Errorf("docs/METRICS.md does not document %s", name)
		}
	}

	// Every rexp_* name in the document must be a real family, after
	// folding the per-shard prefix back to the base name.
	nameRe := regexp.MustCompile(`rexp_[a-zA-Z0-9_]*[a-zA-Z0-9]`)
	for _, m := range nameRe.FindAllString(string(doc), -1) {
		name := m
		if rest, ok := strings.CutPrefix(name, "rexp_shard"); ok {
			i := strings.IndexByte(rest, '_')
			if i < 0 {
				continue // prose fragment like "rexp_shard", not a metric
			}
			name = "rexp" + rest[i:]
		}
		if !families[name] {
			t.Errorf("docs/METRICS.md mentions %s, which the exposition does not write", m)
		}
	}
}
