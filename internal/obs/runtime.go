package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"strconv"
)

// runtimeSample maps one runtime/metrics sample to an exposed family.
// Histogram-kinded samples are summarized as quantile gauges rather
// than full histograms: the Go runtime's bucket layouts are dense and
// version-dependent, and the operational questions ("is GC pausing
// us?", "is the scheduler backed up?") are answered by the tail.
type runtimeSample struct {
	path      string // runtime/metrics key
	name      string // exposition suffix after <prefix>_go
	typ, help string
}

var runtimeSamples = []runtimeSample{
	{"/sched/goroutines:goroutines", "_goroutines", "gauge", "Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "_heap_objects_bytes", "gauge", "Bytes of allocated heap objects."},
	{"/memory/classes/total:bytes", "_memory_total_bytes", "gauge", "All memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "_gc_cycles_total", "counter", "Completed GC cycles."},
	{"/gc/pauses:seconds", "_gc_pause_seconds", "gauge", "Distribution of GC stop-the-world pause latencies (quantile gauges)."},
	{"/sched/latencies:seconds", "_sched_latency_seconds", "gauge", "Distribution of goroutine scheduling latencies (quantile gauges)."},
}

var runtimeQuantiles = []float64{0.5, 0.99, 1}

// WriteRuntimeMetrics writes a Go runtime health section (goroutines,
// heap and total memory, GC cycles, GC pause and scheduler latency
// quantiles) in Prometheus text format under <prefix>_go_*.  Samples
// the current runtime/metrics keys; keys missing from the running
// toolchain are skipped silently.
func WriteRuntimeMetrics(w io.Writer, prefix string) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.path
	}
	metrics.Read(samples)

	bw := bufio.NewWriter(w)
	for i, rs := range runtimeSamples {
		name := prefix + "_go" + rs.name
		v := samples[i].Value
		if v.Kind() == metrics.KindBad {
			continue
		}
		bw.WriteString("# HELP " + name + " " + rs.help + "\n")
		bw.WriteString("# TYPE " + name + " " + rs.typ + "\n")
		switch v.Kind() {
		case metrics.KindUint64:
			bw.WriteString(name + " " + strconv.FormatUint(v.Uint64(), 10) + "\n")
		case metrics.KindFloat64:
			bw.WriteString(name + " " + formatFloat(v.Float64()) + "\n")
		case metrics.KindFloat64Histogram:
			h := v.Float64Histogram()
			for _, q := range runtimeQuantiles {
				bw.WriteString(name + `{quantile="` + formatFloat(q) + `"} `)
				bw.WriteString(formatFloat(histQuantile(h, q)))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// histQuantile estimates quantile q of a runtime Float64Histogram as
// the upper edge of the first bucket whose cumulative count reaches
// q of the total.  Returns 0 for an empty histogram; an unbounded top
// bucket reports the largest finite edge.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(q * float64(total))
	if thresh == 0 {
		thresh = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			edge := h.Buckets[i+1]
			if edge > maxFinite(h.Buckets) {
				edge = maxFinite(h.Buckets)
			}
			return edge
		}
	}
	return maxFinite(h.Buckets)
}

func maxFinite(edges []float64) float64 {
	for i := len(edges) - 1; i >= 0; i-- {
		if !isInf(edges[i]) {
			return edges[i]
		}
	}
	return 0
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// WithRuntimeMetrics wraps a metrics handler so the response carries
// the tree exposition followed by the <prefix>_go_* runtime section.
func WithRuntimeMetrics(h http.Handler, prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		WriteRuntimeMetrics(w, prefix)
	})
}

// RegisterPprof mounts the net/http/pprof handlers on mux under the
// standard /debug/pprof/ paths.  Serve-mode CLIs call this instead of
// importing net/http/pprof for its DefaultServeMux side effect, which
// would expose the profiles on any default-mux server.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
