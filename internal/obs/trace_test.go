package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	want := []string{"queue_wait", "io_read", "io_write", "wal_append",
		"wal_fsync", "checkpoint", "merge"}
	if int(NumPhases) != len(want) {
		t.Fatalf("NumPhases = %d, want %d", NumPhases, len(want))
	}
	for p := Phase(0); p < NumPhases; p++ {
		if got := p.String(); got != want[p] {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want[p])
		}
	}
	if got := Phase(-1).String(); got != "unknown" {
		t.Errorf("Phase(-1).String() = %q, want unknown", got)
	}
	if got := NumPhases.String(); got != "unknown" {
		t.Errorf("NumPhases.String() = %q, want unknown", got)
	}
}

func TestObservePhaseNilMetrics(t *testing.T) {
	var m *Metrics
	m.ObservePhase(PhaseIORead, time.Millisecond) // must not panic
}

func TestObservePhaseCounts(t *testing.T) {
	m := New()
	m.ObservePhase(PhaseWALFsync, 2*time.Millisecond)
	m.ObservePhase(PhaseWALFsync, 3*time.Millisecond)
	m.ObservePhase(PhaseMerge, time.Microsecond)
	snap := m.Snapshot()
	if got := snap.Phases[PhaseWALFsync].Count; got != 2 {
		t.Errorf("wal_fsync count = %d, want 2", got)
	}
	if got := snap.Phases[PhaseMerge].Count; got != 1 {
		t.Errorf("merge count = %d, want 1", got)
	}
	if got := snap.Phases[PhaseCheckpoint].Count; got != 0 {
		t.Errorf("checkpoint count = %d, want 0", got)
	}
}

// TestTraceRingWraparound fills a capacity-4 ring with 10 values and
// checks the snapshot holds exactly the newest 4, newest first.
func TestTraceRingWraparound(t *testing.T) {
	r := newTraceRing(4)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d entries", len(got))
	}
	for i := 0; i < 10; i++ {
		r.put(fmt.Sprintf("v%d", i))
	}
	got := r.snapshot()
	want := []string{"v9", "v8", "v7", "v6"}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].(string) != w {
			t.Errorf("snapshot[%d] = %v, want %s", i, got[i], w)
		}
	}
}

// TestTraceRingPartial checks a ring that has not wrapped returns only
// what was put.
func TestTraceRingPartial(t *testing.T) {
	r := newTraceRing(8)
	r.put("a")
	r.put("b")
	got := r.snapshot()
	if len(got) != 2 || got[0].(string) != "b" || got[1].(string) != "a" {
		t.Fatalf("snapshot = %v, want [b a]", got)
	}
}

func TestRecorderSlowThreshold(t *testing.T) {
	r := NewRecorder(8, 5*time.Millisecond)
	r.Record("fast", time.Millisecond)
	r.Record("slow", 5*time.Millisecond) // at threshold counts as slow
	r.Record("slower", time.Second)
	recent, slow := r.Snapshot()
	if len(recent) != 3 {
		t.Errorf("recent has %d entries, want 3", len(recent))
	}
	if len(slow) != 2 || slow[0].(string) != "slower" || slow[1].(string) != "slow" {
		t.Errorf("slow = %v, want [slower slow]", slow)
	}

	if got := r.SlowThreshold(); got != 5*time.Millisecond {
		t.Errorf("SlowThreshold = %v, want 5ms", got)
	}
	r.SetSlowThreshold(0) // disables the slow ring
	r.Record("slowest", time.Hour)
	if _, slow := r.Snapshot(); len(slow) != 2 {
		t.Errorf("slow ring grew to %d entries with threshold 0", len(slow))
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0, 0)
	r.Record("x", 0)
	recent, _ := r.Snapshot()
	if len(recent) != 1 || recent[0].(string) != "x" {
		t.Fatalf("recent = %v, want [x]", recent)
	}
}

// TestRecorderConcurrent hammers one recorder from parallel writers and
// readers; correctness here is the race detector's verdict plus basic
// snapshot sanity (bounded length, no nils, valid values).
func TestRecorderConcurrent(t *testing.T) {
	const capacity = 16
	r := NewRecorder(capacity, time.Microsecond)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				r.Record(fmt.Sprintf("w%d-%d", w, i), time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			recent, slow := r.Snapshot()
			if len(recent) > capacity || len(slow) > capacity {
				t.Errorf("snapshot exceeds capacity: %d recent, %d slow", len(recent), len(slow))
				return
			}
			for _, v := range append(recent, slow...) {
				if _, ok := v.(string); !ok {
					t.Errorf("snapshot holds non-string %T", v)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone

	recent, _ := r.Snapshot()
	if len(recent) != capacity {
		t.Errorf("after 8000 records, recent holds %d entries, want %d", len(recent), capacity)
	}
}
