// Package obs is the observability subsystem of the index: atomic
// counters, gauges and fixed-bucket latency histograms for every layer
// from the buffer pool to the public API, an Observer event hook for
// tracing structural events (splits, forced reinserts, condensing,
// lazy purges of expired entries, buffer evictions), and a
// Prometheus-text exposition of the collected state.
//
// The package has no dependencies beyond the standard library and is
// designed for a nil fast path: every instrumented layer holds a
// *Metrics that may be nil, and all recording helpers are no-ops on a
// nil receiver, so an uninstrumented tree pays only a pointer test.
// With a *Metrics attached, the hot-path cost is a handful of atomic
// adds; the Observer hook costs an interface call only when one is
// installed.  No recording path allocates.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic integer gauge.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// GaugeFloat is an atomic float64 gauge.
type GaugeFloat struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *GaugeFloat) Set(f float64) { g.bits.Store(math.Float64bits(f)) }

// Load returns the current value.
func (g *GaugeFloat) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// NumBuckets is the number of histogram buckets: len(Bounds) finite
// upper bounds plus one overflow (+Inf) bucket.
const NumBuckets = len(bounds) + 1

// bounds are the fixed latency bucket upper bounds in seconds,
// spanning 1 µs to 1 s; slower observations land in the overflow
// bucket.
var bounds = [...]float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
}

// Bounds returns the histogram bucket upper bounds in seconds (the
// overflow bucket is implicit).
func Bounds() []float64 { return append([]float64(nil), bounds[:]...) }

// Histogram is a fixed-bucket latency histogram.  Observations are
// durations; the exposition reports seconds, following the Prometheus
// convention.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	nanos  atomic.Int64
	count  atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(bounds) && s > bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.nanos.Add(int64(d))
	h.count.Add(1)
}

// HistSnapshot is the frozen state of one histogram.
type HistSnapshot struct {
	Count      uint64
	SumSeconds float64
	Buckets    [NumBuckets]uint64 // per-bucket (non-cumulative) counts
}

// Snapshot freezes the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumSeconds = float64(h.nanos.Load()) / 1e9
	for i := range s.Buckets {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the activity since the earlier snapshot o.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	d := s
	d.Count -= o.Count
	d.SumSeconds -= o.SumSeconds
	for i := range d.Buckets {
		d.Buckets[i] -= o.Buckets[i]
	}
	return d
}

// Add returns the combined activity of both snapshots.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	d := s
	d.Count += o.Count
	d.SumSeconds += o.SumSeconds
	for i := range d.Buckets {
		d.Buckets[i] += o.Buckets[i]
	}
	return d
}

// Op identifies one public index operation.
type Op int

// The public operations, in exposition order.
const (
	OpUpdate Op = iota
	OpDelete
	OpTimeslice
	OpWindow
	OpMoving
	OpNearest
	OpBatch // one UpdateBatch call (its size is counted separately by the caller)
	NumOps  // count, not an operation
)

var opNames = [NumOps]string{"update", "delete", "timeslice", "window", "moving", "nearest", "update_batch"}

// String returns the operation's lower-case name.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return "unknown"
	}
	return opNames[o]
}

// EventKind classifies an Event delivered to an Observer.
type EventKind uint8

// The event kinds.  Structural tree events carry the tree level they
// occurred at; storage events carry level -1.
const (
	EvSplit            EventKind = iota // a node split (paper §4.2.2); N = entries moved to the new sibling
	EvForcedReinsert                    // forced reinsertion on overflow (§4.2.2); N = entries removed for reinsertion
	EvCondense                          // an underflowing node was dissolved (CondenseTree, §4.3); N = live entries orphaned
	EvOrphanReinserted                  // one orphaned or reinserted entry was placed back into the tree (CT3, §4.3)
	EvPurge                             // expired entries were lazily purged from a node (§4.3); N = entries dropped
	EvSubtreeFreed                      // an expired internal entry's whole subtree was deallocated (§4.3)
	EvEviction                          // the buffer pool evicted a page (§5.1)
	EvDirtyWriteback                    // an evicted page was dirty and was written back first
	EvFaultTrip                         // an injected storage fault fired
	numEventKinds
)

var eventNames = [numEventKinds]string{
	"split", "forced-reinsert", "condense", "orphan-reinserted",
	"purge", "subtree-freed", "eviction", "dirty-writeback", "fault-trip",
}

// String returns the kind's kebab-case name.
func (k EventKind) String() string {
	if k >= numEventKinds {
		return "unknown"
	}
	return eventNames[k]
}

// Event is one traced occurrence.
type Event struct {
	Kind  EventKind
	Level int // tree level for structural events; -1 for storage events
	N     int // entries or pages affected
}

// Observer receives events synchronously, in the order they occur.
// Implementations must be fast and must not call back into the tree.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// SlowFunc is a slow-operation hook: it receives the operation and its
// duration whenever the duration reaches the configured threshold.
type SlowFunc func(op Op, d time.Duration)

// OpMetrics holds the per-operation instruments.
type OpMetrics struct {
	Total   Counter
	Errors  Counter
	Latency Histogram
}

// Metrics is the complete instrument registry for one tree.  All
// counters and gauges are safe for concurrent use; Observer and the
// slow-op hook must be configured before the tree processes
// operations (or via the atomic SetSlowOp).
type Metrics struct {
	// Buffer pool (internal/storage, paper §5.1).
	BufReads           Counter // pages read from the store (buffer misses)
	BufWrites          Counter // pages written to the store
	BufHits            Counter // page requests served from the buffer
	BufEvictions       Counter // frames evicted by LRU replacement
	BufDirtyWritebacks Counter // evictions that had to write the frame back
	BufLockFreeHits    Counter // buffer hits served without taking the pool mutex (PR 8)
	FaultTrips         Counter // injected storage faults that fired

	// Snapshot read path (internal/core + internal/epoch, PR 8).
	EpochPins           Counter // epochs pinned by snapshot traversals
	SnapNodeHits        Counter // node lookups served from version chains, lock-free
	SnapNodeMisses      Counter // snapshot lookups that fell back through the buffer pool
	SnapPublishes       Counter // snapshot publications (atomic root/version swaps)
	SnapVersionsTrimmed Counter // retired page versions reclaimed by the writer

	// Structural counters (internal/core).
	ChooseSubtree     Counter // ChooseSubtree descents, one per level (§4.2.2)
	NodeVisits        Counter // nodes visited by search and nearest-neighbor queries
	LeafScans         Counter // leaf entries examined by queries
	Splits            Counter // node splits (§4.2.2)
	ForcedReinserts   Counter // forced-reinsertion rounds on overflow (§4.2.2)
	Condenses         Counter // underflowing nodes dissolved (CondenseTree, §4.3)
	OrphansReinserted Counter // entries placed back via the orphan list (CT3, §4.3)
	ExpiredPurged     Counter // expired leaf entries lazily purged (§4.3)
	SubtreesFreed     Counter // expired internal subtrees deallocated (§4.3)

	// Gauges, refreshed by Tree.SyncGauges at observation time.
	Height       Gauge      // tree levels
	Pages        Gauge      // allocated pages (index size, Figure 15)
	LeafEntries  Gauge      // stored leaf entries, live plus unpurged expired
	BufResident  Gauge      // buffered pages
	BufPoolPages Gauge      // buffer pool page capacity (PR 3)
	UI           GaugeFloat // self-tuned update-interval estimate (§4.2.3)
	Horizon      GaugeFloat // time horizon H = UI + W (§4.2.1)

	// Sharded front-end partitioning and pruning (PR 3).  On a shard's
	// own registry the speed-band gauges hold the shard's assigned
	// speed interval [lo, hi); on the aggregate they hold the envelope.
	ShardVisits  Counter    // shards actually searched by front-end queries
	ShardsPruned Counter    // shards skipped because the query missed their summary
	Rerouted     Counter    // objects moved between shards on a band change
	SpeedBandLo  GaugeFloat // lower |velocity| bound of the shard's speed band
	SpeedBandHi  GaugeFloat // upper |velocity| bound of the shard's speed band

	// Durability: write-ahead log, checkpoints and recovery (PR 5).
	WALAppends             Counter   // logical records appended to the WAL
	WALBytes               Counter   // bytes appended to the WAL (frames, including checkpoint images)
	WALFsyncs              Counter   // fsyncs issued on the WAL file
	Checkpoints            Counter   // checkpoints completed (pool flush + WAL truncate)
	RecoveryReplayed       Counter   // logical WAL records replayed during recovery
	RecoveryDroppedExpired Counter   // replayed inserts skipped because the entry had already expired
	ChecksumFailures       Counter   // page or superblock checksum mismatches detected
	RecoveryDuration       Histogram // wall-clock duration of each recovery pass

	// Offline reshard progress (internal/reshard, PR 4).  The phase
	// gauge holds the reshard's current phase (1 scan, 2 route, 3 load,
	// 4 verify, 5 commit; 0 idle/done).
	ReshardScanned Counter // leaf entries read from the source shards
	ReshardRouted  Counter // live entries routed to a target shard
	ReshardLoaded  Counter // entries bulk-loaded into target shards
	ReshardBytes   Counter // bytes of target page files written
	ReshardPhase   Gauge   // current reshard phase

	// Live reshard (PR 9): dual-apply window, drift detection and the
	// cutover.  The skew and churn gauges hold the drift detector's last
	// measurements (max shard fill over the even share; re-routes per
	// update); the stall histogram records how long each cutover held
	// the mutation path exclusively.
	ReshardRuns         Counter    // live reshards completed (cut over)
	ReshardDualApplied  Counter    // mutations mirrored into an in-flight target generation
	ReshardBackfilled   Counter    // snapshot records copied into the target generation
	ReshardSkew         GaugeFloat // last measured routing skew (1 = perfectly even)
	ReshardChurn        GaugeFloat // last measured re-route churn (re-routes per update)
	ReshardCutoverStall Histogram  // exclusive mutation stall of each cutover

	// Lock acquisition wait times of the public tree (PR 2): how long
	// operations block before entering the index.  Read covers the
	// shared (query) lock, Write the exclusive (update) lock.
	LockWaitRead  Histogram
	LockWaitWrite Histogram

	// BatchedUpdates counts individual object reports applied through
	// UpdateBatch (each batch is additionally one OpBatch operation).
	BatchedUpdates Counter

	// Phases holds the internal phase-latency histograms (queue wait,
	// page I/O, WAL append and fsync, checkpoint, merge), indexed by
	// Phase.  They attribute where operations spend their time below
	// the per-operation histograms (PR 6).
	Phases [NumPhases]Histogram

	// Ops holds the per-operation latency instruments, indexed by Op.
	Ops [NumOps]OpMetrics

	// Observer, when non-nil, receives structural events.  Set it
	// before the tree processes operations.
	Observer Observer

	slowNanos atomic.Int64
	slowFn    atomic.Pointer[SlowFunc]
}

// New returns an empty instrument registry.
func New() *Metrics { return &Metrics{} }

// SetSlowOp installs (or, with a zero threshold or nil fn, removes)
// the slow-operation hook.  Safe to call while operations run.
func (m *Metrics) SetSlowOp(threshold time.Duration, fn SlowFunc) {
	if m == nil {
		return
	}
	if threshold <= 0 || fn == nil {
		m.slowNanos.Store(0)
		m.slowFn.Store(nil)
		return
	}
	m.slowNanos.Store(int64(threshold))
	m.slowFn.Store(&fn)
}

// ObserveOp records one public operation: its latency histogram, the
// total and error counters, and the slow-op hook when the duration
// reaches the threshold.  No-op on a nil receiver.
func (m *Metrics) ObserveOp(op Op, d time.Duration, err error) {
	if m == nil {
		return
	}
	o := &m.Ops[op]
	o.Total.Inc()
	if err != nil {
		o.Errors.Inc()
	}
	o.Latency.Observe(d)
	if t := m.slowNanos.Load(); t > 0 && int64(d) >= t {
		if fn := m.slowFn.Load(); fn != nil {
			(*fn)(op, d)
		}
	}
}

// Emit delivers the event to the Observer, if one is installed.
// No-op on a nil receiver or without an observer — the nil-observer
// fast path of the hot paths.
func (m *Metrics) Emit(e Event) {
	if m == nil || m.Observer == nil {
		return
	}
	m.Observer.Observe(e)
}

// OpSnapshot is the frozen state of one operation's instruments.
type OpSnapshot struct {
	Op         string
	Count      uint64
	Errors     uint64
	SumSeconds float64
	Buckets    [NumBuckets]uint64 // per-bucket (non-cumulative) counts
}

// Sub returns the activity since the earlier snapshot o.
func (s OpSnapshot) Sub(o OpSnapshot) OpSnapshot {
	d := s
	d.Count -= o.Count
	d.Errors -= o.Errors
	d.SumSeconds -= o.SumSeconds
	for i := range d.Buckets {
		d.Buckets[i] -= o.Buckets[i]
	}
	return d
}

// Snapshot is a frozen, plain-value copy of a Metrics registry.
type Snapshot struct {
	BufReads           uint64
	BufWrites          uint64
	BufHits            uint64
	BufEvictions       uint64
	BufDirtyWritebacks uint64
	BufLockFreeHits    uint64
	FaultTrips         uint64

	EpochPins           uint64
	SnapNodeHits        uint64
	SnapNodeMisses      uint64
	SnapPublishes       uint64
	SnapVersionsTrimmed uint64

	ChooseSubtree     uint64
	NodeVisits        uint64
	LeafScans         uint64
	Splits            uint64
	ForcedReinserts   uint64
	Condenses         uint64
	OrphansReinserted uint64
	ExpiredPurged     uint64
	SubtreesFreed     uint64

	Height       int64
	Pages        int64
	LeafEntries  int64
	BufResident  int64
	BufPoolPages int64
	UI           float64
	Horizon      float64

	ShardVisits  uint64
	ShardsPruned uint64
	Rerouted     uint64
	SpeedBandLo  float64
	SpeedBandHi  float64

	WALAppends             uint64
	WALBytes               uint64
	WALFsyncs              uint64
	Checkpoints            uint64
	RecoveryReplayed       uint64
	RecoveryDroppedExpired uint64
	ChecksumFailures       uint64
	RecoveryDuration       HistSnapshot

	ReshardScanned uint64
	ReshardRouted  uint64
	ReshardLoaded  uint64
	ReshardBytes   uint64
	ReshardPhase   int64

	ReshardRuns         uint64
	ReshardDualApplied  uint64
	ReshardBackfilled   uint64
	ReshardSkew         float64
	ReshardChurn        float64
	ReshardCutoverStall HistSnapshot

	LockWaitRead   HistSnapshot
	LockWaitWrite  HistSnapshot
	BatchedUpdates uint64

	Phases [NumPhases]HistSnapshot

	Ops [NumOps]OpSnapshot
}

// Snapshot freezes the current state.  On a nil receiver it returns
// the zero snapshot.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.BufReads = m.BufReads.Load()
	s.BufWrites = m.BufWrites.Load()
	s.BufHits = m.BufHits.Load()
	s.BufEvictions = m.BufEvictions.Load()
	s.BufDirtyWritebacks = m.BufDirtyWritebacks.Load()
	s.BufLockFreeHits = m.BufLockFreeHits.Load()
	s.FaultTrips = m.FaultTrips.Load()
	s.EpochPins = m.EpochPins.Load()
	s.SnapNodeHits = m.SnapNodeHits.Load()
	s.SnapNodeMisses = m.SnapNodeMisses.Load()
	s.SnapPublishes = m.SnapPublishes.Load()
	s.SnapVersionsTrimmed = m.SnapVersionsTrimmed.Load()
	s.ChooseSubtree = m.ChooseSubtree.Load()
	s.NodeVisits = m.NodeVisits.Load()
	s.LeafScans = m.LeafScans.Load()
	s.Splits = m.Splits.Load()
	s.ForcedReinserts = m.ForcedReinserts.Load()
	s.Condenses = m.Condenses.Load()
	s.OrphansReinserted = m.OrphansReinserted.Load()
	s.ExpiredPurged = m.ExpiredPurged.Load()
	s.SubtreesFreed = m.SubtreesFreed.Load()
	s.Height = m.Height.Load()
	s.Pages = m.Pages.Load()
	s.LeafEntries = m.LeafEntries.Load()
	s.BufResident = m.BufResident.Load()
	s.BufPoolPages = m.BufPoolPages.Load()
	s.UI = m.UI.Load()
	s.Horizon = m.Horizon.Load()
	s.ShardVisits = m.ShardVisits.Load()
	s.ShardsPruned = m.ShardsPruned.Load()
	s.Rerouted = m.Rerouted.Load()
	s.SpeedBandLo = m.SpeedBandLo.Load()
	s.SpeedBandHi = m.SpeedBandHi.Load()
	s.WALAppends = m.WALAppends.Load()
	s.WALBytes = m.WALBytes.Load()
	s.WALFsyncs = m.WALFsyncs.Load()
	s.Checkpoints = m.Checkpoints.Load()
	s.RecoveryReplayed = m.RecoveryReplayed.Load()
	s.RecoveryDroppedExpired = m.RecoveryDroppedExpired.Load()
	s.ChecksumFailures = m.ChecksumFailures.Load()
	s.RecoveryDuration = m.RecoveryDuration.Snapshot()
	s.ReshardScanned = m.ReshardScanned.Load()
	s.ReshardRouted = m.ReshardRouted.Load()
	s.ReshardLoaded = m.ReshardLoaded.Load()
	s.ReshardBytes = m.ReshardBytes.Load()
	s.ReshardPhase = m.ReshardPhase.Load()
	s.ReshardRuns = m.ReshardRuns.Load()
	s.ReshardDualApplied = m.ReshardDualApplied.Load()
	s.ReshardBackfilled = m.ReshardBackfilled.Load()
	s.ReshardSkew = m.ReshardSkew.Load()
	s.ReshardChurn = m.ReshardChurn.Load()
	s.ReshardCutoverStall = m.ReshardCutoverStall.Snapshot()
	s.LockWaitRead = m.LockWaitRead.Snapshot()
	s.LockWaitWrite = m.LockWaitWrite.Snapshot()
	s.BatchedUpdates = m.BatchedUpdates.Load()
	for p := Phase(0); p < NumPhases; p++ {
		s.Phases[p] = m.Phases[p].Snapshot()
	}
	for op := Op(0); op < NumOps; op++ {
		o := &m.Ops[op]
		snap := &s.Ops[op]
		snap.Op = op.String()
		snap.Count = o.Latency.count.Load()
		snap.Errors = o.Errors.Load()
		snap.SumSeconds = float64(o.Latency.nanos.Load()) / 1e9
		for i := range snap.Buckets {
			snap.Buckets[i] = o.Latency.counts[i].Load()
		}
	}
	return s
}

// Sub returns the activity between the earlier snapshot o and s:
// counters and histogram buckets are subtracted; gauges keep s's
// (current) values.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := s
	d.BufReads -= o.BufReads
	d.BufWrites -= o.BufWrites
	d.BufHits -= o.BufHits
	d.BufEvictions -= o.BufEvictions
	d.BufDirtyWritebacks -= o.BufDirtyWritebacks
	d.BufLockFreeHits -= o.BufLockFreeHits
	d.FaultTrips -= o.FaultTrips
	d.EpochPins -= o.EpochPins
	d.SnapNodeHits -= o.SnapNodeHits
	d.SnapNodeMisses -= o.SnapNodeMisses
	d.SnapPublishes -= o.SnapPublishes
	d.SnapVersionsTrimmed -= o.SnapVersionsTrimmed
	d.ChooseSubtree -= o.ChooseSubtree
	d.NodeVisits -= o.NodeVisits
	d.LeafScans -= o.LeafScans
	d.Splits -= o.Splits
	d.ForcedReinserts -= o.ForcedReinserts
	d.Condenses -= o.Condenses
	d.OrphansReinserted -= o.OrphansReinserted
	d.ExpiredPurged -= o.ExpiredPurged
	d.SubtreesFreed -= o.SubtreesFreed
	d.LockWaitRead = s.LockWaitRead.Sub(o.LockWaitRead)
	d.LockWaitWrite = s.LockWaitWrite.Sub(o.LockWaitWrite)
	d.BatchedUpdates -= o.BatchedUpdates
	for i := range d.Phases {
		d.Phases[i] = s.Phases[i].Sub(o.Phases[i])
	}
	d.ShardVisits -= o.ShardVisits
	d.ShardsPruned -= o.ShardsPruned
	d.Rerouted -= o.Rerouted
	d.WALAppends -= o.WALAppends
	d.WALBytes -= o.WALBytes
	d.WALFsyncs -= o.WALFsyncs
	d.Checkpoints -= o.Checkpoints
	d.RecoveryReplayed -= o.RecoveryReplayed
	d.RecoveryDroppedExpired -= o.RecoveryDroppedExpired
	d.ChecksumFailures -= o.ChecksumFailures
	d.RecoveryDuration = s.RecoveryDuration.Sub(o.RecoveryDuration)
	d.ReshardScanned -= o.ReshardScanned
	d.ReshardRouted -= o.ReshardRouted
	d.ReshardLoaded -= o.ReshardLoaded
	d.ReshardBytes -= o.ReshardBytes
	d.ReshardRuns -= o.ReshardRuns
	d.ReshardDualApplied -= o.ReshardDualApplied
	d.ReshardBackfilled -= o.ReshardBackfilled
	d.ReshardCutoverStall = s.ReshardCutoverStall.Sub(o.ReshardCutoverStall)
	for i := range d.Ops {
		d.Ops[i] = s.Ops[i].Sub(o.Ops[i])
	}
	return d
}

// Add returns the combined activity of both snapshots: counters,
// gauges and histogram buckets are summed.  It aggregates the
// registries of independent sub-indexes (the shards of a ShardedTree)
// into one fleet-wide view; summing gauges is meaningful there because
// each shard owns disjoint pages and entries.
func (s Snapshot) Add(o Snapshot) Snapshot {
	d := s
	d.BufReads += o.BufReads
	d.BufWrites += o.BufWrites
	d.BufHits += o.BufHits
	d.BufEvictions += o.BufEvictions
	d.BufDirtyWritebacks += o.BufDirtyWritebacks
	d.BufLockFreeHits += o.BufLockFreeHits
	d.FaultTrips += o.FaultTrips
	d.EpochPins += o.EpochPins
	d.SnapNodeHits += o.SnapNodeHits
	d.SnapNodeMisses += o.SnapNodeMisses
	d.SnapPublishes += o.SnapPublishes
	d.SnapVersionsTrimmed += o.SnapVersionsTrimmed
	d.ChooseSubtree += o.ChooseSubtree
	d.NodeVisits += o.NodeVisits
	d.LeafScans += o.LeafScans
	d.Splits += o.Splits
	d.ForcedReinserts += o.ForcedReinserts
	d.Condenses += o.Condenses
	d.OrphansReinserted += o.OrphansReinserted
	d.ExpiredPurged += o.ExpiredPurged
	d.SubtreesFreed += o.SubtreesFreed
	if o.Height > d.Height {
		d.Height = o.Height // the fleet is as tall as its tallest shard
	}
	d.Pages += o.Pages
	d.LeafEntries += o.LeafEntries
	d.BufResident += o.BufResident
	d.BufPoolPages += o.BufPoolPages
	d.UI = math.Max(d.UI, o.UI)
	d.Horizon = math.Max(d.Horizon, o.Horizon)
	d.LockWaitRead = s.LockWaitRead.Add(o.LockWaitRead)
	d.LockWaitWrite = s.LockWaitWrite.Add(o.LockWaitWrite)
	d.BatchedUpdates += o.BatchedUpdates
	for i := range d.Phases {
		d.Phases[i] = s.Phases[i].Add(o.Phases[i])
	}
	d.ShardVisits += o.ShardVisits
	d.ShardsPruned += o.ShardsPruned
	d.Rerouted += o.Rerouted
	d.WALAppends += o.WALAppends
	d.WALBytes += o.WALBytes
	d.WALFsyncs += o.WALFsyncs
	d.Checkpoints += o.Checkpoints
	d.RecoveryReplayed += o.RecoveryReplayed
	d.RecoveryDroppedExpired += o.RecoveryDroppedExpired
	d.ChecksumFailures += o.ChecksumFailures
	d.RecoveryDuration = s.RecoveryDuration.Add(o.RecoveryDuration)
	d.ReshardScanned += o.ReshardScanned
	d.ReshardRouted += o.ReshardRouted
	d.ReshardLoaded += o.ReshardLoaded
	d.ReshardBytes += o.ReshardBytes
	if o.ReshardPhase > d.ReshardPhase {
		d.ReshardPhase = o.ReshardPhase // the latest phase any worker reached
	}
	d.ReshardRuns += o.ReshardRuns
	d.ReshardDualApplied += o.ReshardDualApplied
	d.ReshardBackfilled += o.ReshardBackfilled
	d.ReshardSkew = math.Max(d.ReshardSkew, o.ReshardSkew)
	d.ReshardChurn = math.Max(d.ReshardChurn, o.ReshardChurn)
	d.ReshardCutoverStall = s.ReshardCutoverStall.Add(o.ReshardCutoverStall)
	// The speed-band envelope: the fleet covers [min lo, max hi).
	d.SpeedBandLo = math.Min(d.SpeedBandLo, o.SpeedBandLo)
	d.SpeedBandHi = math.Max(d.SpeedBandHi, o.SpeedBandHi)
	for i := range d.Ops {
		op := d.Ops[i]
		op.Count += o.Ops[i].Count
		op.Errors += o.Ops[i].Errors
		op.SumSeconds += o.Ops[i].SumSeconds
		for j := range op.Buckets {
			op.Buckets[j] += o.Ops[i].Buckets[j]
		}
		d.Ops[i] = op
	}
	return d
}
