package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// DefaultPrefix is the metric-name prefix of a stand-alone tree's
// exposition.  Sharded front-ends write one section per shard with the
// shard's own prefix (rexp_shard0, rexp_shard1, ...) so a single
// scrape distinguishes the sub-indexes.
const DefaultPrefix = "rexp"

// promFamily describes one exposed counter or gauge series.  The name
// is a suffix; the exposition prepends the section prefix.
type promFamily struct {
	name, typ, help string
	value           func(*Snapshot) string
}

func cv(f func(*Snapshot) uint64) func(*Snapshot) string {
	return func(s *Snapshot) string { return strconv.FormatUint(f(s), 10) }
}

func gv(f func(*Snapshot) int64) func(*Snapshot) string {
	return func(s *Snapshot) string { return strconv.FormatInt(f(s), 10) }
}

func fv(f func(*Snapshot) float64) func(*Snapshot) string {
	return func(s *Snapshot) string { return formatFloat(f(s)) }
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// families lists every scalar series in exposition order.  Histograms
// are appended separately by WriteSnapshotPrefix.
var families = []promFamily{
	{"_buffer_reads_total", "counter", "Pages read from the store (buffer misses, paper 5.1).", cv(func(s *Snapshot) uint64 { return s.BufReads })},
	{"_buffer_writes_total", "counter", "Pages written to the store.", cv(func(s *Snapshot) uint64 { return s.BufWrites })},
	{"_buffer_hits_total", "counter", "Page requests served from the buffer.", cv(func(s *Snapshot) uint64 { return s.BufHits })},
	{"_buffer_evictions_total", "counter", "Buffer frames evicted by LRU replacement.", cv(func(s *Snapshot) uint64 { return s.BufEvictions })},
	{"_buffer_dirty_writebacks_total", "counter", "Evictions that wrote a dirty frame back first.", cv(func(s *Snapshot) uint64 { return s.BufDirtyWritebacks })},
	{"_buffer_lockfree_hits_total", "counter", "Buffer hits served without taking the pool mutex.", cv(func(s *Snapshot) uint64 { return s.BufLockFreeHits })},
	{"_storage_fault_trips_total", "counter", "Injected storage faults that fired.", cv(func(s *Snapshot) uint64 { return s.FaultTrips })},
	{"_epoch_pins_total", "counter", "Epochs pinned by snapshot traversals.", cv(func(s *Snapshot) uint64 { return s.EpochPins })},
	{"_snapshot_node_hits_total", "counter", "Node lookups served lock-free from page version chains.", cv(func(s *Snapshot) uint64 { return s.SnapNodeHits })},
	{"_snapshot_node_misses_total", "counter", "Snapshot node lookups that fell back through the buffer pool.", cv(func(s *Snapshot) uint64 { return s.SnapNodeMisses })},
	{"_snapshot_publishes_total", "counter", "Snapshot publications (atomic root and version swaps by writers).", cv(func(s *Snapshot) uint64 { return s.SnapPublishes })},
	{"_snapshot_versions_trimmed_total", "counter", "Retired page versions reclaimed after readers moved past them.", cv(func(s *Snapshot) uint64 { return s.SnapVersionsTrimmed })},
	{"_choose_subtree_total", "counter", "ChooseSubtree descents, one per level (paper 4.2.2).", cv(func(s *Snapshot) uint64 { return s.ChooseSubtree })},
	{"_query_node_visits_total", "counter", "Nodes visited by search and nearest-neighbor queries.", cv(func(s *Snapshot) uint64 { return s.NodeVisits })},
	{"_query_leaf_entries_scanned_total", "counter", "Leaf entries examined by queries.", cv(func(s *Snapshot) uint64 { return s.LeafScans })},
	{"_split_total", "counter", "Node splits (paper 4.2.2).", cv(func(s *Snapshot) uint64 { return s.Splits })},
	{"_forced_reinsert_total", "counter", "Forced-reinsertion rounds on node overflow (paper 4.2.2).", cv(func(s *Snapshot) uint64 { return s.ForcedReinserts })},
	{"_condense_total", "counter", "Underflowing nodes dissolved by CondenseTree (paper 4.3).", cv(func(s *Snapshot) uint64 { return s.Condenses })},
	{"_orphan_reinserted_total", "counter", "Entries placed back via the orphan list (CT3, paper 4.3).", cv(func(s *Snapshot) uint64 { return s.OrphansReinserted })},
	{"_expired_purged_total", "counter", "Expired leaf entries lazily purged (paper 4.3).", cv(func(s *Snapshot) uint64 { return s.ExpiredPurged })},
	{"_subtree_freed_total", "counter", "Expired internal subtrees deallocated (paper 4.3).", cv(func(s *Snapshot) uint64 { return s.SubtreesFreed })},
	{"_batched_updates_total", "counter", "Object reports applied through UpdateBatch.", cv(func(s *Snapshot) uint64 { return s.BatchedUpdates })},
	{"_query_shard_visits_total", "counter", "Shards actually searched by front-end queries.", cv(func(s *Snapshot) uint64 { return s.ShardVisits })},
	{"_query_shards_pruned_total", "counter", "Shards skipped because the query missed their summary.", cv(func(s *Snapshot) uint64 { return s.ShardsPruned })},
	{"_partition_rerouted_total", "counter", "Objects moved between shards on a speed-band change.", cv(func(s *Snapshot) uint64 { return s.Rerouted })},
	{"_wal_appends_total", "counter", "Logical records appended to the write-ahead log.", cv(func(s *Snapshot) uint64 { return s.WALAppends })},
	{"_wal_bytes_total", "counter", "Bytes appended to the write-ahead log, including checkpoint images.", cv(func(s *Snapshot) uint64 { return s.WALBytes })},
	{"_wal_fsyncs_total", "counter", "Fsyncs issued on the write-ahead log file.", cv(func(s *Snapshot) uint64 { return s.WALFsyncs })},
	{"_checkpoints_total", "counter", "Checkpoints completed (pool flush, superblock sync, WAL truncate).", cv(func(s *Snapshot) uint64 { return s.Checkpoints })},
	{"_recovery_replayed_total", "counter", "Logical WAL records replayed during recovery.", cv(func(s *Snapshot) uint64 { return s.RecoveryReplayed })},
	{"_recovery_dropped_expired_total", "counter", "Replayed inserts skipped because the entry had already expired.", cv(func(s *Snapshot) uint64 { return s.RecoveryDroppedExpired })},
	{"_checksum_failures_total", "counter", "Page or superblock checksum mismatches detected.", cv(func(s *Snapshot) uint64 { return s.ChecksumFailures })},
	{"_reshard_entries_scanned_total", "counter", "Leaf entries read from the source shards by the offline reshard.", cv(func(s *Snapshot) uint64 { return s.ReshardScanned })},
	{"_reshard_entries_routed_total", "counter", "Live entries routed to a target shard by the offline reshard.", cv(func(s *Snapshot) uint64 { return s.ReshardRouted })},
	{"_reshard_entries_loaded_total", "counter", "Entries bulk-loaded into target shards by the offline reshard.", cv(func(s *Snapshot) uint64 { return s.ReshardLoaded })},
	{"_reshard_bytes_written_total", "counter", "Bytes of target page files written by the offline reshard.", cv(func(s *Snapshot) uint64 { return s.ReshardBytes })},
	{"_reshard_runs_total", "counter", "Live reshards completed (cut over to a new generation).", cv(func(s *Snapshot) uint64 { return s.ReshardRuns })},
	{"_reshard_dual_applied_total", "counter", "Mutations mirrored into an in-flight target generation.", cv(func(s *Snapshot) uint64 { return s.ReshardDualApplied })},
	{"_reshard_backfilled_total", "counter", "Snapshot records copied into the target generation by the live reshard.", cv(func(s *Snapshot) uint64 { return s.ReshardBackfilled })},
	{"_height", "gauge", "Tree levels.", gv(func(s *Snapshot) int64 { return s.Height })},
	{"_index_pages", "gauge", "Allocated pages (index size, paper Figure 15).", gv(func(s *Snapshot) int64 { return s.Pages })},
	{"_leaf_entries", "gauge", "Stored leaf entries, live plus unpurged expired (paper 5.4).", gv(func(s *Snapshot) int64 { return s.LeafEntries })},
	{"_buffer_resident_pages", "gauge", "Pages currently buffered.", gv(func(s *Snapshot) int64 { return s.BufResident })},
	{"_buffer_pool_pages", "gauge", "Buffer pool page capacity.", gv(func(s *Snapshot) int64 { return s.BufPoolPages })},
	{"_ui_estimate", "gauge", "Self-tuned update-interval estimate UI (paper 4.2.3).", fv(func(s *Snapshot) float64 { return s.UI })},
	{"_horizon", "gauge", "Time horizon H = UI + W (paper 4.2.1).", fv(func(s *Snapshot) float64 { return s.Horizon })},
	{"_speed_band_lo", "gauge", "Lower |velocity| bound of the shard's speed band.", fv(func(s *Snapshot) float64 { return s.SpeedBandLo })},
	{"_speed_band_hi", "gauge", "Upper |velocity| bound of the shard's speed band.", fv(func(s *Snapshot) float64 { return s.SpeedBandHi })},
	{"_reshard_phase", "gauge", "Current offline-reshard phase (1 scan, 2 route, 3 load, 4 verify, 5 commit; 0 idle).", gv(func(s *Snapshot) int64 { return s.ReshardPhase })},
	{"_reshard_skew", "gauge", "Routing skew last measured by the drift detector (max shard size over even share).", fv(func(s *Snapshot) float64 { return s.ReshardSkew })},
	{"_reshard_churn", "gauge", "Re-route churn last measured by the drift detector (re-routes per update).", fv(func(s *Snapshot) float64 { return s.ReshardChurn })},
}

// WriteSnapshot writes the snapshot in the Prometheus text exposition
// format (version 0.0.4) under the default "rexp" name prefix.  The
// output is deterministic for a given snapshot, which the golden-file
// test relies on.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	return WriteSnapshotPrefix(w, s, DefaultPrefix)
}

// WriteSnapshotPrefix writes the snapshot with every metric name
// starting with the given prefix (e.g. "rexp_shard0").  The prefix
// must be a valid Prometheus name fragment: [a-zA-Z_][a-zA-Z0-9_]*.
func WriteSnapshotPrefix(w io.Writer, s Snapshot, prefix string) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		name := prefix + f.name
		bw.WriteString("# HELP ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.value(&s))
		bw.WriteByte('\n')
	}

	name := prefix + "_lock_wait_seconds"
	bw.WriteString("# HELP " + name + " Time operations wait to acquire the tree lock, by mode.\n")
	bw.WriteString("# TYPE " + name + " histogram\n")
	writeHist(bw, name, `mode="read"`, &s.LockWaitRead)
	writeHist(bw, name, `mode="write"`, &s.LockWaitWrite)

	name = prefix + "_phase_duration_seconds"
	bw.WriteString("# HELP " + name + " Latency of internal execution phases (queue wait, page I/O, WAL append and fsync, checkpoint, merge).\n")
	bw.WriteString("# TYPE " + name + " histogram\n")
	for p := Phase(0); p < NumPhases; p++ {
		writeHist(bw, name, `phase="`+p.String()+`"`, &s.Phases[p])
	}

	name = prefix + "_recovery_duration_seconds"
	bw.WriteString("# HELP " + name + " Wall-clock duration of WAL recovery passes.\n")
	bw.WriteString("# TYPE " + name + " histogram\n")
	writeHist(bw, name, "", &s.RecoveryDuration)

	name = prefix + "_reshard_cutover_stall_seconds"
	bw.WriteString("# HELP " + name + " Exclusive mutation stall taken by each live-reshard cutover.\n")
	bw.WriteString("# TYPE " + name + " histogram\n")
	writeHist(bw, name, "", &s.ReshardCutoverStall)

	name = prefix + "_op_errors_total"
	bw.WriteString("# HELP " + name + " Public operations that returned an error.\n")
	bw.WriteString("# TYPE " + name + " counter\n")
	for op := Op(0); op < NumOps; op++ {
		bw.WriteString(name)
		bw.WriteString("{op=\"")
		bw.WriteString(op.String())
		bw.WriteString("\"} ")
		bw.WriteString(strconv.FormatUint(s.Ops[op].Errors, 10))
		bw.WriteByte('\n')
	}

	name = prefix + "_op_duration_seconds"
	bw.WriteString("# HELP " + name + " Latency of public index operations.\n")
	bw.WriteString("# TYPE " + name + " histogram\n")
	for op := Op(0); op < NumOps; op++ {
		o := &s.Ops[op]
		h := HistSnapshot{Count: o.Count, SumSeconds: o.SumSeconds, Buckets: o.Buckets}
		writeHist(bw, name, `op="`+op.String()+`"`, &h)
	}
	return bw.Flush()
}

// writeHist writes one histogram series: the cumulative buckets, the
// sum and the count.  label may be empty for an unlabelled series.
func writeHist(bw *bufio.Writer, name, label string, h *HistSnapshot) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.Buckets[i]
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		bw.WriteString(name)
		bw.WriteString("_bucket{")
		if label != "" {
			bw.WriteString(label)
			bw.WriteByte(',')
		}
		bw.WriteString("le=\"")
		bw.WriteString(le)
		bw.WriteString("\"} ")
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	for _, suffix := range [2]string{"_sum", "_count"} {
		bw.WriteString(name)
		bw.WriteString(suffix)
		if label != "" {
			bw.WriteString("{")
			bw.WriteString(label)
			bw.WriteString("}")
		}
		bw.WriteByte(' ')
		if suffix == "_sum" {
			bw.WriteString(formatFloat(h.SumSeconds))
		} else {
			bw.WriteString(strconv.FormatUint(h.Count, 10))
		}
		bw.WriteByte('\n')
	}
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the snapshots produced by
// snap in Prometheus text format.  snap is called once per request,
// so it can refresh gauges before freezing the state.
func Handler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := WriteSnapshot(w, snap()); err != nil {
			// The response is already partially written; nothing
			// useful can be reported to the client.
			return
		}
	})
}

// ShardedHandler returns an http.Handler serving a multi-section
// exposition: the aggregate snapshot under the default prefix followed
// by one section per shard under rexp_shard<i>.
func ShardedHandler(snap func() (agg Snapshot, shards []Snapshot)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		agg, shards := snap()
		if err := WriteSnapshotPrefix(w, agg, DefaultPrefix); err != nil {
			return
		}
		for i, s := range shards {
			prefix := DefaultPrefix + "_shard" + strconv.Itoa(i)
			if err := WriteSnapshotPrefix(w, s, prefix); err != nil {
				return
			}
		}
	})
}
