package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// promFamily describes one exposed counter or gauge series.
type promFamily struct {
	name, typ, help string
	value           func(*Snapshot) string
}

func cv(f func(*Snapshot) uint64) func(*Snapshot) string {
	return func(s *Snapshot) string { return strconv.FormatUint(f(s), 10) }
}

func gv(f func(*Snapshot) int64) func(*Snapshot) string {
	return func(s *Snapshot) string { return strconv.FormatInt(f(s), 10) }
}

func fv(f func(*Snapshot) float64) func(*Snapshot) string {
	return func(s *Snapshot) string { return formatFloat(f(s)) }
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// families lists every scalar series in exposition order.  Histograms
// are appended separately by WriteSnapshot.
var families = []promFamily{
	{"rexp_buffer_reads_total", "counter", "Pages read from the store (buffer misses, paper 5.1).", cv(func(s *Snapshot) uint64 { return s.BufReads })},
	{"rexp_buffer_writes_total", "counter", "Pages written to the store.", cv(func(s *Snapshot) uint64 { return s.BufWrites })},
	{"rexp_buffer_hits_total", "counter", "Page requests served from the buffer.", cv(func(s *Snapshot) uint64 { return s.BufHits })},
	{"rexp_buffer_evictions_total", "counter", "Buffer frames evicted by LRU replacement.", cv(func(s *Snapshot) uint64 { return s.BufEvictions })},
	{"rexp_buffer_dirty_writebacks_total", "counter", "Evictions that wrote a dirty frame back first.", cv(func(s *Snapshot) uint64 { return s.BufDirtyWritebacks })},
	{"rexp_storage_fault_trips_total", "counter", "Injected storage faults that fired.", cv(func(s *Snapshot) uint64 { return s.FaultTrips })},
	{"rexp_choose_subtree_total", "counter", "ChooseSubtree descents, one per level (paper 4.2.2).", cv(func(s *Snapshot) uint64 { return s.ChooseSubtree })},
	{"rexp_query_node_visits_total", "counter", "Nodes visited by search and nearest-neighbor queries.", cv(func(s *Snapshot) uint64 { return s.NodeVisits })},
	{"rexp_query_leaf_entries_scanned_total", "counter", "Leaf entries examined by queries.", cv(func(s *Snapshot) uint64 { return s.LeafScans })},
	{"rexp_split_total", "counter", "Node splits (paper 4.2.2).", cv(func(s *Snapshot) uint64 { return s.Splits })},
	{"rexp_forced_reinsert_total", "counter", "Forced-reinsertion rounds on node overflow (paper 4.2.2).", cv(func(s *Snapshot) uint64 { return s.ForcedReinserts })},
	{"rexp_condense_total", "counter", "Underflowing nodes dissolved by CondenseTree (paper 4.3).", cv(func(s *Snapshot) uint64 { return s.Condenses })},
	{"rexp_orphan_reinserted_total", "counter", "Entries placed back via the orphan list (CT3, paper 4.3).", cv(func(s *Snapshot) uint64 { return s.OrphansReinserted })},
	{"rexp_expired_purged_total", "counter", "Expired leaf entries lazily purged (paper 4.3).", cv(func(s *Snapshot) uint64 { return s.ExpiredPurged })},
	{"rexp_subtree_freed_total", "counter", "Expired internal subtrees deallocated (paper 4.3).", cv(func(s *Snapshot) uint64 { return s.SubtreesFreed })},
	{"rexp_height", "gauge", "Tree levels.", gv(func(s *Snapshot) int64 { return s.Height })},
	{"rexp_index_pages", "gauge", "Allocated pages (index size, paper Figure 15).", gv(func(s *Snapshot) int64 { return s.Pages })},
	{"rexp_leaf_entries", "gauge", "Stored leaf entries, live plus unpurged expired (paper 5.4).", gv(func(s *Snapshot) int64 { return s.LeafEntries })},
	{"rexp_buffer_resident_pages", "gauge", "Pages currently buffered.", gv(func(s *Snapshot) int64 { return s.BufResident })},
	{"rexp_ui_estimate", "gauge", "Self-tuned update-interval estimate UI (paper 4.2.3).", fv(func(s *Snapshot) float64 { return s.UI })},
	{"rexp_horizon", "gauge", "Time horizon H = UI + W (paper 4.2.1).", fv(func(s *Snapshot) float64 { return s.Horizon })},
}

// WriteSnapshot writes the snapshot in the Prometheus text exposition
// format (version 0.0.4).  The output is deterministic for a given
// snapshot, which the golden-file test relies on.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.value(&s))
		bw.WriteByte('\n')
	}

	bw.WriteString("# HELP rexp_op_errors_total Public operations that returned an error.\n")
	bw.WriteString("# TYPE rexp_op_errors_total counter\n")
	for op := Op(0); op < NumOps; op++ {
		bw.WriteString("rexp_op_errors_total{op=\"")
		bw.WriteString(op.String())
		bw.WriteString("\"} ")
		bw.WriteString(strconv.FormatUint(s.Ops[op].Errors, 10))
		bw.WriteByte('\n')
	}

	bw.WriteString("# HELP rexp_op_duration_seconds Latency of public index operations.\n")
	bw.WriteString("# TYPE rexp_op_duration_seconds histogram\n")
	for op := Op(0); op < NumOps; op++ {
		o := &s.Ops[op]
		name := op.String()
		var cum uint64
		for i := 0; i < NumBuckets; i++ {
			cum += o.Buckets[i]
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			bw.WriteString("rexp_op_duration_seconds_bucket{op=\"")
			bw.WriteString(name)
			bw.WriteString("\",le=\"")
			bw.WriteString(le)
			bw.WriteString("\"} ")
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString("rexp_op_duration_seconds_sum{op=\"")
		bw.WriteString(name)
		bw.WriteString("\"} ")
		bw.WriteString(formatFloat(o.SumSeconds))
		bw.WriteByte('\n')
		bw.WriteString("rexp_op_duration_seconds_count{op=\"")
		bw.WriteString(name)
		bw.WriteString("\"} ")
		bw.WriteString(strconv.FormatUint(o.Count, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the snapshots produced by
// snap in Prometheus text format.  snap is called once per request,
// so it can refresh gauges before freezing the state.
func Handler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := WriteSnapshot(w, snap()); err != nil {
			// The response is already partially written; nothing
			// useful can be reported to the client.
			return
		}
	})
}
