package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(-3)
	if g.Load() != -3 {
		t.Errorf("gauge = %d, want -3", g.Load())
	}
	var f GaugeFloat
	f.Set(37.25)
	if f.Load() != 37.25 {
		t.Errorf("gauge float = %v, want 37.25", f.Load())
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	var h Histogram
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{500 * time.Nanosecond, 0},   // below the first bound
		{time.Microsecond, 0},        // exactly on a bound counts in that bucket
		{2 * time.Microsecond, 1},    // (1µs, 2.5µs]
		{time.Millisecond, 9},        // exactly 1e-3
		{700 * time.Millisecond, 18}, // (0.5s, 1s]
		{2 * time.Second, 19},        // overflow
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	for i, c := range cases {
		if got := h.counts[c.bucket].Load(); got == 0 {
			t.Errorf("case %d (%v): bucket %d empty", i, c.d, c.bucket)
		}
	}
	if h.count.Load() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.count.Load(), len(cases))
	}
	var sum uint64
	for i := range h.counts {
		sum += h.counts[i].Load()
	}
	if sum != uint64(len(cases)) {
		t.Errorf("bucket sum = %d, want %d", sum, len(cases))
	}
}

func TestBoundsCopy(t *testing.T) {
	b := Bounds()
	if len(b) != NumBuckets-1 {
		t.Fatalf("len(Bounds()) = %d, want %d", len(b), NumBuckets-1)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
	b[0] = 99 // mutating the copy must not affect the package
	if Bounds()[0] == 99 {
		t.Fatal("Bounds() returned shared storage")
	}
}

func TestOpAndEventNames(t *testing.T) {
	want := []string{"update", "delete", "timeslice", "window", "moving", "nearest", "update_batch"}
	for op := Op(0); op < NumOps; op++ {
		if op.String() != want[op] {
			t.Errorf("op %d = %q, want %q", op, op.String(), want[op])
		}
	}
	if Op(-1).String() != "unknown" || NumOps.String() != "unknown" {
		t.Error("out-of-range op not reported as unknown")
	}
	if EvSplit.String() != "split" || EvDirtyWriteback.String() != "dirty-writeback" {
		t.Error("event kind names wrong")
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range event kind not reported as unknown")
	}
}

func TestObserveOpCountsAndErrors(t *testing.T) {
	m := New()
	m.ObserveOp(OpUpdate, time.Millisecond, nil)
	m.ObserveOp(OpUpdate, time.Millisecond, errors.New("boom"))
	m.ObserveOp(OpWindow, time.Microsecond, nil)
	s := m.Snapshot()
	if s.Ops[OpUpdate].Count != 2 || s.Ops[OpUpdate].Errors != 1 {
		t.Errorf("update = %+v", s.Ops[OpUpdate])
	}
	if s.Ops[OpWindow].Count != 1 || s.Ops[OpWindow].Errors != 0 {
		t.Errorf("window = %+v", s.Ops[OpWindow])
	}
	if s.Ops[OpUpdate].Op != "update" {
		t.Errorf("snapshot op name = %q", s.Ops[OpUpdate].Op)
	}
	if got := s.Ops[OpUpdate].SumSeconds; got < 0.0019 || got > 0.0021 {
		t.Errorf("update sum = %v, want ~0.002", got)
	}
}

func TestNilReceiverSafe(t *testing.T) {
	var m *Metrics
	m.ObserveOp(OpUpdate, time.Second, nil) // must not panic
	m.Emit(Event{Kind: EvSplit})
	m.SetSlowOp(time.Second, func(Op, time.Duration) {})
	if s := m.Snapshot(); s.Splits != 0 || s.Ops[OpUpdate].Count != 0 {
		t.Errorf("nil snapshot not zero: %+v", s)
	}
}

func TestEmitWithoutObserver(t *testing.T) {
	m := New()
	m.Emit(Event{Kind: EvSplit}) // nil observer: no-op
	var got []Event
	m.Observer = ObserverFunc(func(e Event) { got = append(got, e) })
	m.Emit(Event{Kind: EvCondense, Level: 1, N: 7})
	if len(got) != 1 || got[0].Kind != EvCondense || got[0].Level != 1 || got[0].N != 7 {
		t.Errorf("observer got %+v", got)
	}
}

func TestSlowOpHook(t *testing.T) {
	m := New()
	var mu sync.Mutex
	var fired []time.Duration
	m.SetSlowOp(10*time.Millisecond, func(op Op, d time.Duration) {
		mu.Lock()
		fired = append(fired, d)
		mu.Unlock()
		if op != OpDelete {
			t.Errorf("hook op = %v", op)
		}
	})
	m.ObserveOp(OpDelete, 5*time.Millisecond, nil)  // below threshold
	m.ObserveOp(OpDelete, 10*time.Millisecond, nil) // at threshold: fires
	m.ObserveOp(OpDelete, 20*time.Millisecond, nil) // above: fires
	if len(fired) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(fired))
	}
	m.SetSlowOp(0, nil) // removal
	m.ObserveOp(OpDelete, time.Hour, nil)
	if len(fired) != 2 {
		t.Fatal("hook fired after removal")
	}
}

func TestSnapshotSub(t *testing.T) {
	m := New()
	m.Splits.Add(3)
	m.BufReads.Add(10)
	m.Height.Set(2)
	m.UI.Set(50)
	m.ObserveOp(OpUpdate, time.Millisecond, nil)
	before := m.Snapshot()

	m.Splits.Add(2)
	m.BufReads.Add(5)
	m.Height.Set(3)
	m.UI.Set(60)
	m.ObserveOp(OpUpdate, time.Millisecond, errors.New("x"))
	m.ObserveOp(OpUpdate, time.Millisecond, nil)
	after := m.Snapshot()

	d := after.Sub(before)
	if d.Splits != 2 || d.BufReads != 5 {
		t.Errorf("delta counters: splits=%d reads=%d", d.Splits, d.BufReads)
	}
	// Gauges keep the current (later) values.
	if d.Height != 3 || d.UI != 60 {
		t.Errorf("delta gauges: height=%d ui=%v", d.Height, d.UI)
	}
	u := d.Ops[OpUpdate]
	if u.Count != 2 || u.Errors != 1 {
		t.Errorf("delta update op = %+v", u)
	}
	var bsum uint64
	for _, b := range u.Buckets {
		bsum += b
	}
	if bsum != 2 {
		t.Errorf("delta bucket sum = %d, want 2", bsum)
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Splits.Inc()
				m.ObserveOp(OpWindow, time.Microsecond, nil)
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Splits != goroutines*perG {
		t.Errorf("splits = %d, want %d", s.Splits, goroutines*perG)
	}
	if s.Ops[OpWindow].Count != goroutines*perG {
		t.Errorf("window count = %d, want %d", s.Ops[OpWindow].Count, goroutines*perG)
	}
}
