package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the exposition golden file")

// goldenSnapshot is a fixed registry state exercising every series:
// non-zero counters, gauges (including a float), an op with errors and
// latencies in several buckets, and untouched ops.
func goldenSnapshot() Snapshot {
	m := New()
	m.BufReads.Add(120)
	m.BufWrites.Add(40)
	m.BufHits.Add(3000)
	m.BufEvictions.Add(17)
	m.BufDirtyWritebacks.Add(9)
	m.FaultTrips.Add(2)
	m.ChooseSubtree.Add(450)
	m.NodeVisits.Add(900)
	m.LeafScans.Add(15000)
	m.Splits.Add(11)
	m.ForcedReinserts.Add(6)
	m.Condenses.Add(4)
	m.OrphansReinserted.Add(310)
	m.ExpiredPurged.Add(77)
	m.SubtreesFreed.Add(3)
	m.Height.Set(3)
	m.Pages.Set(128)
	m.LeafEntries.Set(9000)
	m.BufResident.Set(50)
	m.BufPoolPages.Set(200)
	m.UI.Set(42.5)
	m.Horizon.Set(63.75)
	m.BatchedUpdates.Add(640)
	m.ShardVisits.Add(520)
	m.ShardsPruned.Add(280)
	m.Rerouted.Add(33)
	m.SpeedBandLo.Set(0.5)
	m.SpeedBandHi.Set(2)
	m.WALAppends.Add(5000)
	m.WALBytes.Add(320000)
	m.WALFsyncs.Add(48)
	m.Checkpoints.Add(7)
	m.RecoveryReplayed.Add(130)
	m.RecoveryDroppedExpired.Add(21)
	m.ChecksumFailures.Add(1)
	m.RecoveryDuration.Observe(4 * time.Millisecond)
	m.ReshardScanned.Add(10000)
	m.ReshardRouted.Add(9500)
	m.ReshardLoaded.Add(9500)
	m.ReshardBytes.Add(4096 * 512)
	m.ReshardPhase.Set(5)
	m.LockWaitRead.Observe(900 * time.Nanosecond)
	m.LockWaitRead.Observe(12 * time.Microsecond)
	m.LockWaitWrite.Observe(400 * time.Microsecond)
	m.ObservePhase(PhaseQueueWait, 3*time.Microsecond)
	m.ObservePhase(PhaseIORead, 150*time.Microsecond)
	m.ObservePhase(PhaseIOWrite, 220*time.Microsecond)
	m.ObservePhase(PhaseWALAppend, 9*time.Microsecond)
	m.ObservePhase(PhaseWALFsync, 1500*time.Microsecond)
	m.ObservePhase(PhaseCheckpoint, 8*time.Millisecond)
	m.ObservePhase(PhaseMerge, 40*time.Microsecond)
	m.ObserveOp(OpUpdate, 800*time.Nanosecond, nil)
	m.ObserveOp(OpUpdate, 30*time.Microsecond, nil)
	m.ObserveOp(OpUpdate, 2*time.Millisecond, nil)
	m.ObserveOp(OpWindow, 70*time.Microsecond, nil)
	m.ObserveOp(OpNearest, 3*time.Second, errFixed) // overflow bucket + error
	m.ObserveOp(OpBatch, 5*time.Millisecond, nil)
	return m.Snapshot()
}

var errFixed = errorString("fixed")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestWriteSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file (run with -update after intended changes)\ngot:\n%s", buf.String())
	}
}

// sampleRe matches one Prometheus text-format sample line.
var sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9].*$`)

func TestWriteSnapshotParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	help := map[string]bool{}
	typ := map[string]bool{}
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)[0]
			typ[name] = true
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
			samples++
		}
	}
	// Every scalar family plus the two labelled families is announced.
	for _, name := range []string{
		"rexp_buffer_reads_total", "rexp_buffer_evictions_total",
		"rexp_buffer_dirty_writebacks_total", "rexp_split_total",
		"rexp_forced_reinsert_total", "rexp_condense_total",
		"rexp_expired_purged_total", "rexp_ui_estimate",
		"rexp_batched_updates_total", "rexp_lock_wait_seconds",
		"rexp_op_errors_total", "rexp_op_duration_seconds",
		"rexp_query_shard_visits_total", "rexp_query_shards_pruned_total",
		"rexp_partition_rerouted_total", "rexp_buffer_pool_pages",
		"rexp_speed_band_lo", "rexp_speed_band_hi",
		"rexp_reshard_entries_scanned_total", "rexp_reshard_entries_routed_total",
		"rexp_reshard_entries_loaded_total", "rexp_reshard_bytes_written_total",
		"rexp_reshard_phase", "rexp_phase_duration_seconds",
	} {
		if !help[name] || !typ[name] {
			t.Errorf("family %s missing HELP or TYPE", name)
		}
	}
	if samples == 0 {
		t.Fatal("no samples written")
	}
}

// TestHistogramExposition checks the Prometheus histogram contract:
// bucket counts are cumulative, the +Inf bucket equals _count, and the
// number of buckets matches the registry's bounds.
func TestHistogramExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	bucketRe := regexp.MustCompile(`^rexp_op_duration_seconds_bucket\{op="update",le="([^"]+)"\} ([0-9]+)$`)
	countRe := regexp.MustCompile(`^rexp_op_duration_seconds_count\{op="update"\} ([0-9]+)$`)
	var cum []uint64
	var last string
	count := uint64(0)
	for _, line := range strings.Split(buf.String(), "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseUint(m[2], 10, 64)
			cum = append(cum, v)
			last = m[1]
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			count, _ = strconv.ParseUint(m[1], 10, 64)
		}
	}
	if len(cum) != NumBuckets {
		t.Fatalf("update histogram has %d buckets, want %d", len(cum), NumBuckets)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, cum)
		}
	}
	if last != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", last)
	}
	if cum[len(cum)-1] != count || count != 3 {
		t.Errorf("+Inf bucket = %d, _count = %d, want both 3", cum[len(cum)-1], count)
	}
}

func TestHandler(t *testing.T) {
	calls := 0
	h := Handler(func() Snapshot {
		calls++
		return goldenSnapshot()
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rexp_split_total 11") {
		t.Error("served body missing rexp_split_total sample")
	}
	if calls != 1 {
		t.Errorf("snapshot func called %d times, want 1 per request", calls)
	}
}
