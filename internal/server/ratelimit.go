package server

import (
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each key accrues rate
// tokens per second up to burst, and one mutating request costs one
// token.  Idle buckets are garbage-collected once they are full again
// (a full bucket carries no history, so dropping it is lossless).
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	lastGC  time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

const limiterGCInterval = time.Minute

func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b <= 0 {
		b = 2 * rate
	}
	if b < 1 {
		b = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
		lastGC:  time.Now(),
	}
}

// allow takes one token from key's bucket.  When the bucket is empty
// it refuses and reports how long until a token accrues.
func (l *rateLimiter) allow(key string, now time.Time) (retryAfter time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = now
	}
	if now.Sub(l.lastGC) >= limiterGCInterval {
		l.gcLocked(now)
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / l.rate * float64(time.Second)), false
}

// gcLocked drops buckets that have refilled completely: they behave
// exactly like absent ones.
func (l *rateLimiter) gcLocked(now time.Time) {
	l.lastGC = now
	for key, b := range l.buckets {
		if dt := now.Sub(b.last).Seconds(); b.tokens+dt*l.rate >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// clientKey identifies the requesting client: the X-Client-Id header
// when present (load generators and SDKs set it so a NATed fleet is
// told apart), else the remote IP without the ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// retryAfterJitter renders a Retry-After value for a 429: the accrual
// wait rounded up to whole seconds plus up to one extra second of
// jitter, so a synchronized burst of refused clients does not retry in
// lockstep.
func retryAfterJitter(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs + rand.Intn(2))
}
