package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rexptree"
)

// newTestServer builds an in-memory 2-shard index behind a Server and
// an httptest listener.  mod, when non-nil, adjusts the server config.
func newTestServer(t *testing.T, mod func(*Config)) (*httptest.Server, *Server) {
	t.Helper()
	opts := rexptree.DefaultOptions()
	opts.FlightRecorder = 16
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Index: ix, RuntimeMetrics: true}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.CloseIndex()
	})
	return hs, srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeInto(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
}

// TestEndpointsRoundTrip drives every endpoint once: ingest via update
// and batch, all four query types (plain and EXPLAIN), object lookup,
// stats, probes, metrics and traces.
func TestEndpointsRoundTrip(t *testing.T) {
	hs, _ := newTestServer(t, nil)

	// One routed update.
	resp, raw := postJSON(t, hs.URL+"/v1/update",
		`{"id":1,"pos":[100,200],"vel":[1,0],"time":0,"expires":1000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, raw)
	}
	var ack updateResponse
	decodeInto(t, raw, &ack)
	if !ack.OK {
		t.Fatalf("update not acknowledged: %s", raw)
	}

	// A streamed batch with updates and one delete.
	var b strings.Builder
	for id := 2; id <= 40; id++ {
		fmt.Fprintf(&b, `{"id":%d,"pos":[%d,%d],"vel":[0.5,-0.5],"time":1,"expires":1000}`+"\n", id, id*10, id*10)
	}
	b.WriteString(`{"op":"delete","id":40,"time":1}` + "\n")
	resp, raw = postJSON(t, hs.URL+"/v1/batch", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	var back batchResponse
	decodeInto(t, raw, &back)
	if back.Applied != 39 || back.Deleted != 1 {
		t.Fatalf("batch ack: %+v", back)
	}

	// Timeslice over the whole world finds everything still live.
	resp, raw = get(t, hs.URL+"/v1/timeslice?lo=-10000,-10000&hi=10000,10000&at=%2B1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeslice: %d %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	decodeInto(t, raw, &qr)
	if qr.Count != 39 { // 40 inserted, one deleted
		t.Fatalf("timeslice count %d, want 39 (%s)", qr.Count, raw)
	}
	// Results are ordered by ascending id.
	for i := 1; i < len(qr.Results); i++ {
		if qr.Results[i-1].ID >= qr.Results[i].ID {
			t.Fatalf("results not id-ordered: %v >= %v", qr.Results[i-1].ID, qr.Results[i].ID)
		}
	}

	// Window and moving, with relative times.
	resp, raw = get(t, hs.URL+"/v1/window?lo=0,0&hi=500,500&t1=%2B0&t2=%2B10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window: %d %s", resp.StatusCode, raw)
	}
	resp, raw = get(t, hs.URL+"/v1/moving?lo1=0,0&hi1=100,100&lo2=50,50&hi2=150,150&t1=%2B0&t2=%2B10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moving: %d %s", resp.StatusCode, raw)
	}

	// Nearest with EXPLAIN: results plus a trace with the shard table.
	resp, raw = get(t, hs.URL+"/v1/nearest?pos=100,200&k=5&at=%2B0&explain=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nearest: %d %s", resp.StatusCode, raw)
	}
	qr = queryResponse{}
	decodeInto(t, raw, &qr)
	if qr.Count != 5 || qr.Trace == nil || qr.Trace.Op != "nearest" {
		t.Fatalf("nearest explain: count=%d trace=%+v", qr.Count, qr.Trace)
	}
	if len(qr.Trace.Shards) != 2 {
		t.Fatalf("explain shard table has %d rows, want 2", len(qr.Trace.Shards))
	}

	// EXPLAIN on a window too.
	resp, raw = get(t, hs.URL+"/v1/window?lo=0,0&hi=1000,1000&t1=%2B0&t2=%2B5&explain=true")
	qr = queryResponse{}
	decodeInto(t, raw, &qr)
	if qr.Trace == nil || qr.Trace.Op != "window" {
		t.Fatalf("window explain missing trace: %s", raw)
	}

	// Object lookup: present, then deleted -> 404.
	resp, raw = get(t, hs.URL+"/v1/object?id=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object: %d %s", resp.StatusCode, raw)
	}
	var row resultJSON
	decodeInto(t, raw, &row)
	if row.ID != 1 {
		t.Fatalf("object row: %s", raw)
	}
	resp, _ = get(t, hs.URL+"/v1/object?id=40")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted object: %d, want 404", resp.StatusCode)
	}

	// Stats.
	resp, raw = get(t, hs.URL+"/v1/stats")
	var st statsResponse
	decodeInto(t, raw, &st)
	if st.Objects != 39 || st.Shards != 2 || st.Partition != "hash" {
		t.Fatalf("stats: %s", raw)
	}

	// Probes.
	if resp, _ = get(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp, _ = get(t, hs.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// Metrics exposition: aggregate, per-shard and runtime families.
	_, raw = get(t, hs.URL+"/metrics")
	for _, want := range []string{"rexp_op_duration_seconds", "rexp_shard0_buffer_reads_total", "rexp_go_goroutines"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Flight-recorder endpoint.
	_, raw = get(t, hs.URL+"/debug/rexp/traces")
	var traces struct {
		Enabled bool              `json:"enabled"`
		Recent  []json.RawMessage `json:"recent"`
	}
	decodeInto(t, raw, &traces)
	if !traces.Enabled || len(traces.Recent) == 0 {
		t.Fatalf("traces: enabled=%v recent=%d", traces.Enabled, len(traces.Recent))
	}
}

// TestMalformedRequests asserts the 400 paths: broken JSON, wrong
// dimensionality, bad parameters, invalid query windows.
func TestMalformedRequests(t *testing.T) {
	hs, _ := newTestServer(t, nil)

	cases := []struct {
		name string
		do   func() (*http.Response, []byte)
	}{
		{"update broken json", func() (*http.Response, []byte) {
			return postJSON(t, hs.URL+"/v1/update", `{"id":`)
		}},
		{"update unknown field", func() (*http.Response, []byte) {
			return postJSON(t, hs.URL+"/v1/update", `{"id":1,"pos":[1,2],"wat":3}`)
		}},
		{"update wrong dims", func() (*http.Response, []byte) {
			return postJSON(t, hs.URL+"/v1/update", `{"id":1,"pos":[1,2,3],"time":0}`)
		}},
		{"update with delete op", func() (*http.Response, []byte) {
			return postJSON(t, hs.URL+"/v1/update", `{"op":"delete","id":1,"pos":[1,2]}`)
		}},
		{"batch broken line", func() (*http.Response, []byte) {
			return postJSON(t, hs.URL+"/v1/batch", `{"id":1,"pos":[1,2],"time":0}`+"\n"+`{"id":2,`)
		}},
		{"batch unknown op", func() (*http.Response, []byte) {
			return postJSON(t, hs.URL+"/v1/batch", `{"op":"upsert","id":1,"pos":[1,2]}`)
		}},
		{"timeslice missing rect", func() (*http.Response, []byte) {
			return get(t, hs.URL+"/v1/timeslice?at=%2B0")
		}},
		{"timeslice past at", func() (*http.Response, []byte) {
			// Push the clock past zero first so at=0 is in the past.
			postJSON(t, hs.URL+"/v1/update", `{"id":9,"pos":[1,2],"time":5}`)
			return get(t, hs.URL+"/v1/timeslice?lo=0,0&hi=1,1&at=0")
		}},
		{"window t2 before t1", func() (*http.Response, []byte) {
			return get(t, hs.URL+"/v1/window?lo=0,0&hi=1,1&t1=%2B10&t2=%2B5")
		}},
		{"nearest bad k", func() (*http.Response, []byte) {
			return get(t, hs.URL+"/v1/nearest?pos=0,0&k=-3&at=%2B0")
		}},
		{"object bad id", func() (*http.Response, []byte) {
			return get(t, hs.URL+"/v1/object?id=banana")
		}},
		{"bad timeout param", func() (*http.Response, []byte) {
			return get(t, hs.URL+"/v1/nearest?pos=0,0&k=1&at=%2B0&timeout=banana")
		}},
	}
	for _, tc := range cases {
		resp, raw := tc.do()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: body is not an error envelope: %s", tc.name, raw)
		}
	}
}

// TestOverload429 fills the single ingest slot with a stalled stream
// and asserts the next batch is refused with 429 + Retry-After while
// single updates and queries keep flowing.
func TestOverload429(t *testing.T) {
	hs, _ := newTestServer(t, func(c *Config) { c.MaxInFlight = 1; c.RetryAfter = 2 * time.Second })

	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest("POST", hs.URL+"/v1/batch", pr)
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// The first line admits the stream into its slot; the unclosed pipe
	// keeps it in flight.
	if _, err := pw.Write([]byte(`{"id":1,"pos":[1,2],"time":0}` + "\n")); err != nil {
		t.Fatal(err)
	}

	// Wait until the slot is actually held.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, raw := postJSON(t, hs.URL+"/v1/batch", `{"id":2,"pos":[3,4],"time":0}`)
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Errorf("Retry-After %q, want \"2\"", ra)
			}
			var er errorResponse
			decodeInto(t, raw, &er)
			if !strings.Contains(er.Error, "overloaded") {
				t.Errorf("429 body: %s", raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw a 429 while the ingest slot was held")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Routed updates and queries are not subject to the batch gate.
	if resp, raw := postJSON(t, hs.URL+"/v1/update", `{"id":3,"pos":[5,6],"time":0}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("update during overload: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := get(t, hs.URL+"/v1/timeslice?lo=0,0&hi=10,10&at=%2B0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query during overload: %d", resp.StatusCode)
	}

	pw.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestDeadline504 stalls an ingest stream past its ?timeout= deadline
// and expects 504.
func TestDeadline504(t *testing.T) {
	hs, _ := newTestServer(t, nil)

	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest("POST", hs.URL+"/v1/batch?timeout=75ms", pr)
	if err != nil {
		t.Fatal(err)
	}
	go pw.Write([]byte(`{"id":1,"pos":[1,2],"time":0}` + "\n")) // never closed
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled batch: %d %s, want 504", resp.StatusCode, raw)
	}
	var er errorResponse
	decodeInto(t, raw, &er)
	if !strings.Contains(er.Error, "deadline") {
		t.Fatalf("504 body: %s", raw)
	}
}

// TestDrainSemantics: after Drain, mutations are refused with 503 +
// Retry-After, /readyz flips to 503, and queries still answer.
func TestDrainSemantics(t *testing.T) {
	hs, srv := newTestServer(t, nil)
	if resp, raw := postJSON(t, hs.URL+"/v1/update", `{"id":1,"pos":[1,2],"time":0,"expires":100}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain update: %d %s", resp.StatusCode, raw)
	}

	srv.Drain()

	resp, raw := postJSON(t, hs.URL+"/v1/update", `{"id":2,"pos":[3,4],"time":0}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain update: %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, _ = postJSON(t, hs.URL+"/v1/batch", `{"id":2,"pos":[3,4],"time":0}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain batch: %d", resp.StatusCode)
	}
	resp, _ = get(t, hs.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz: %d", resp.StatusCode)
	}
	if resp, _ = get(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain healthz: %d", resp.StatusCode)
	}
	resp, raw = get(t, hs.URL+"/v1/timeslice?lo=0,0&hi=10,10&at=%2B0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain query: %d %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	decodeInto(t, raw, &qr)
	if qr.Count != 1 {
		t.Fatalf("post-drain query count %d, want 1", qr.Count)
	}
}

// TestDrainLosesNoAcknowledgedUpdate hammers a durable server with
// concurrent single updates, drains midway, and verifies every
// acknowledged id is present after closing and reopening the files —
// the in-process version of the daemon's SIGTERM guarantee.
func TestDrainLosesNoAcknowledgedUpdate(t *testing.T) {
	base := filepath.Join(t.TempDir(), "idx")
	opts := rexptree.DefaultOptions()
	opts.Path = base
	opts.Durability = rexptree.DurabilityOnCommit
	ix, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Index: ix})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var (
		mu    sync.Mutex
		acked []uint32
		next  atomic.Uint32
		wg    sync.WaitGroup
	)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := next.Add(1)
				body := fmt.Sprintf(`{"id":%d,"pos":[%d,%d],"vel":[1,1],"time":0,"expires":10000}`, id, id%1000, id%1000)
				resp, err := http.Post(hs.URL+"/v1/update", "application/json", strings.NewReader(body))
				if err != nil {
					return
				}
				ok := resp.StatusCode == http.StatusOK
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if ok {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	srv.Drain() // concurrent with in-flight updates: 503s begin, admitted ones finish
	close(stop)
	wg.Wait()
	if err := srv.CloseIndex(); err != nil {
		t.Fatal(err)
	}

	if len(acked) == 0 {
		t.Fatal("no update was ever acknowledged")
	}
	re, err := rexptree.OpenSharded(rexptree.ShardedOptions{Options: opts, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, id := range acked {
		if _, ok := re.Get(id, 0); !ok {
			t.Fatalf("acknowledged update %d missing after drain + reopen (%d acked)", id, len(acked))
		}
	}
}

// TestMixedLoadSmoke exercises concurrent batches, updates and queries
// for the race detector.
func TestMixedLoadSmoke(t *testing.T) {
	hs, _ := newTestServer(t, func(c *Config) { c.MaxInFlight = 2; c.MaxBatch = 50 })

	var wg sync.WaitGroup
	stop := time.After(300 * time.Millisecond)
	done := make(chan struct{})
	go func() { <-stop; close(done) }()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var b strings.Builder
				for j := 0; j < 20; j++ {
					fmt.Fprintf(&b, `{"id":%d,"pos":[%g,%g],"vel":[1,0],"time":%d,"expires":100000}`+"\n",
						rng.Intn(500)+1, rng.Float64()*1000, rng.Float64()*1000, i)
				}
				resp, err := http.Post(hs.URL+"/v1/batch", "application/json", strings.NewReader(b.String()))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, u := range []string{
					"/v1/timeslice?lo=0,0&hi=1000,1000&at=%2B0",
					"/v1/window?lo=200,200&hi=800,800&t1=%2B0&t2=%2B10&explain=1",
					"/v1/nearest?pos=500,500&k=10&at=%2B0",
					"/metrics",
					"/debug/rexp/traces",
				} {
					resp, err := http.Get(hs.URL + u)
					if err != nil {
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
}

// waitReshardDone polls /v1/reshard/status until nothing is in flight.
func waitReshardDone(t *testing.T, base string) reshardStatusResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, raw := get(t, base+"/v1/reshard/status")
		var st reshardStatusResponse
		decodeInto(t, raw, &st)
		if !st.InFlight {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("reshard still in flight: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReshardEndpoints drives the live-reshard API end to end: idle
// status, no-op cancel, up-front spec refusals, then a hash->speed
// reshard whose terminal status and post-cutover /v1/stats reflect the
// new layout with every object intact.
func TestReshardEndpoints(t *testing.T) {
	hs, _ := newTestServer(t, nil)

	var b strings.Builder
	for id := 1; id <= 600; id++ {
		fmt.Fprintf(&b, `{"id":%d,"pos":[%d,%d],"vel":[%g,0],"time":0,"expires":100000}`+"\n",
			id, id%100*10, id/100*10, float64(id%30)/10)
	}
	if resp, raw := postJSON(t, hs.URL+"/v1/batch", b.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}

	// Nothing in flight yet: status is idle, cancel is a no-op.
	_, raw := get(t, hs.URL+"/v1/reshard/status")
	var st reshardStatusResponse
	decodeInto(t, raw, &st)
	if st.InFlight || st.Generation != 0 {
		t.Fatalf("idle status: %s", raw)
	}
	var cancel struct {
		Canceled bool `json:"canceled"`
	}
	_, raw = postJSON(t, hs.URL+"/v1/reshard/cancel", "")
	decodeInto(t, raw, &cancel)
	if cancel.Canceled {
		t.Fatalf("cancel with nothing in flight: %s", raw)
	}

	// Bad specs are refused before anything starts.
	for _, body := range []string{
		`{"shards":2,"policy":"bogus"}`,
		`{"shards":-1,"policy":"hash"}`,
		`{"shards":3,"policy":"speed","speed_bands":[2.0,1.0]}`,
		`{"shards":2,"policy":"hash","speed_bands":[1.0]}`,
		`{"shards":`,
	} {
		resp, raw := postJSON(t, hs.URL+"/v1/reshard", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %d (%s), want 400", body, resp.StatusCode, raw)
		}
	}
	if st = waitReshardDone(t, hs.URL); st.Generation != 0 {
		t.Fatalf("a refused spec resharded anyway: %+v", st)
	}

	// A live reshard to 3 speed-banded shards.
	resp, raw := postJSON(t, hs.URL+"/v1/reshard", `{"shards":3,"policy":"speed","speed_bands":[0.9,1.9]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reshard: %d %s", resp.StatusCode, raw)
	}
	st = waitReshardDone(t, hs.URL)
	if st.LastError != "" || st.Generation != 1 || st.Shards != 3 || st.Policy != "speed" {
		t.Fatalf("terminal status: %+v", st)
	}

	// The served layout switched and every object survived.
	_, raw = get(t, hs.URL+"/v1/stats")
	var stats statsResponse
	decodeInto(t, raw, &stats)
	if stats.Shards != 3 || stats.Partition != "speed" || stats.Generation != 1 || stats.Objects != 600 {
		t.Fatalf("stats after reshard: %s", raw)
	}
	resp, raw = get(t, hs.URL+"/v1/timeslice?lo=-10000,-10000&hi=10000,10000&at=%2B1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeslice after reshard: %d %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	decodeInto(t, raw, &qr)
	if qr.Count != 600 {
		t.Fatalf("timeslice after reshard: count %d, want 600", qr.Count)
	}
}

// TestReshardConflictAndCancel starts a reshard over a larger index and
// probes the 409 path and the cancel endpoint while it is in flight.
// Both probes are defensive about the engine finishing first: the
// assertions only tighten when the race was actually won.
func TestReshardConflictAndCancel(t *testing.T) {
	hs, _ := newTestServer(t, nil)

	var b strings.Builder
	for id := 1; id <= 5000; id++ {
		fmt.Fprintf(&b, `{"id":%d,"pos":[%g,%g],"vel":[%g,0.5],"time":0,"expires":100000}`+"\n",
			id, float64(id%1000), float64(id/10), float64(id%20)/10)
	}
	if resp, raw := postJSON(t, hs.URL+"/v1/batch", b.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}

	resp, raw := postJSON(t, hs.URL+"/v1/reshard", `{"shards":4,"policy":"hash"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reshard: %d %s", resp.StatusCode, raw)
	}

	// A second reshard while the first is in flight is refused with 409.
	resp, raw = postJSON(t, hs.URL+"/v1/reshard", `{"shards":2,"policy":"hash"}`)
	switch resp.StatusCode {
	case http.StatusConflict:
		var er errorResponse
		decodeInto(t, raw, &er)
		if !strings.Contains(er.Error, "in flight") {
			t.Errorf("409 body: %s", raw)
		}
	case http.StatusAccepted:
		t.Log("first reshard finished before the conflict probe; skipping 409 assertion")
	default:
		t.Fatalf("second reshard: %d %s", resp.StatusCode, raw)
	}

	// Cancel whatever is still running; it must drain to idle either way.
	_, raw = postJSON(t, hs.URL+"/v1/reshard/cancel", "")
	var cancel struct {
		Canceled bool `json:"canceled"`
	}
	decodeInto(t, raw, &cancel)
	st := waitReshardDone(t, hs.URL)
	if cancel.Canceled && st.LastError != "" && !strings.Contains(st.LastError, "canceled") {
		t.Fatalf("terminal status after cancel: %+v", st)
	}

	// Every object is still served, whichever generation won.
	resp, raw = get(t, hs.URL+"/v1/timeslice?lo=-10000,-10000&hi=10000,10000&at=%2B1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeslice: %d %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	decodeInto(t, raw, &qr)
	if qr.Count != 5000 {
		t.Fatalf("timeslice count %d, want 5000", qr.Count)
	}
}
