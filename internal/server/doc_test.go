package server

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAPIDocCoversRoutes keeps docs/API.md in sync with the route
// table: every registered route must be documented, and every
// "METHOD /path" the document claims must be a registered route.
func TestAPIDocCoversRoutes(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("endpoint reference missing: %v", err)
	}
	doc := string(raw)

	registered := map[string]bool{}
	for _, r := range Routes() {
		registered[r] = true
		if !strings.Contains(doc, "`"+r+"`") {
			t.Errorf("docs/API.md does not document %s", r)
		}
	}
	if len(registered) < len(routes) {
		t.Fatalf("route table lists %d routes, Routes() returned %d", len(routes), len(registered))
	}

	// Every endpoint-shaped code span in the document must be real.
	spanRe := regexp.MustCompile("`(GET|HEAD|POST|PUT|PATCH|DELETE) (/[^`]*)`")
	for _, m := range spanRe.FindAllStringSubmatch(doc, -1) {
		if !registered[m[1]+" "+m[2]] {
			t.Errorf("docs/API.md mentions %s %s, which is not a registered route", m[1], m[2])
		}
	}
}
