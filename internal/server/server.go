// Package server implements the HTTP/JSON front end of the moving-
// object index: the handlers, request codec, admission control and
// graceful-drain machinery behind the rexpd daemon.  The endpoint
// reference lives in docs/API.md; a doc-coverage test keeps the two in
// sync.
//
// The server wraps a ShardedTree (a single-tree deployment is a
// 1-shard ShardedTree) and maintains the index's logical clock: every
// ingested report advances it monotonically, queries default their
// evaluation time to it, and a "+N" time parameter is resolved against
// it.  Mutations are acknowledged only after the index call returns —
// under DurabilityOnCommit that means the WAL is fsynced — so a 200
// ack survives a crash; a 504 or 429 promises nothing either way.
package server

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rexptree"
	"rexptree/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Index is the served index.  Required.
	Index *rexptree.ShardedTree

	// MaxInFlight bounds the ingest batches (/v1/batch) admitted
	// concurrently; further batches are refused with 429 and a
	// Retry-After header rather than queued without bound (default 4).
	MaxInFlight int

	// MaxBatch is the number of records a streamed ingest body is
	// chunked into per UpdateBatch call (default 1000).  Smaller chunks
	// admit readers between groups; larger ones amortize locking and,
	// under durability, fsyncs.
	MaxBatch int

	// RequestTimeout is the per-request deadline.  A request that
	// exceeds it is answered 504; an in-flight mutation keeps running
	// to completion but is not acknowledged.  Zero disables deadlines.
	RequestTimeout time.Duration

	// RetryAfter is the client back-off hint attached to 429 and
	// drain-time 503 responses (default 1s).
	RetryAfter time.Duration

	// Pprof mounts net/http/pprof under /debug/pprof/ (rexpd enables
	// it by default).
	Pprof bool

	// RuntimeMetrics appends Go runtime families to /metrics scrapes.
	RuntimeMetrics bool

	// RateLimit enables per-client token-bucket rate limiting of the
	// mutation endpoints: each client (the X-Client-Id header, else the
	// remote address) may sustain RateLimit mutating requests per
	// second with bursts of RateBurst (default 2×RateLimit, minimum 1).
	// Excess requests are refused with 429 and a jittered Retry-After
	// so a synchronized fleet does not return in lockstep.  Zero
	// disables the limiter.
	RateLimit float64
	RateBurst int

	// Backup and WALFeed serve the replication endpoints (GET
	// /v1/backup, GET /v1/wal) when the daemon enables the replication
	// hub; nil answers 503, so the routes always exist but clearly
	// report when replication is off.
	Backup  http.Handler
	WALFeed http.Handler

	// ReadOnly puts the server in follower mode: every mutation and
	// reshard request is refused with 403.  The read API, health and
	// metrics endpoints are unaffected.
	ReadOnly bool

	// ReplStats, when set, appends the replication metric families to
	// /metrics scrapes (leader hub and/or follower applier counters).
	ReplStats func() obs.ReplStats

	// LagSeconds + MaxLag gate /readyz on replication staleness: when
	// LagSeconds (typically the follower applier's lag) exceeds
	// MaxLag, /readyz answers 503 {"status":"stale"} so load balancers
	// stop routing reads to a replica that has fallen too far behind.
	// Either zero disables the check.
	LagSeconds func() float64
	MaxLag     time.Duration
}

// Server is the HTTP front end over one sharded index.
type Server struct {
	ix  *rexptree.ShardedTree
	cfg Config
	mux *http.ServeMux

	clock atomicClock

	gate chan struct{} // admission: in-flight ingest batches

	limiter *rateLimiter // per-client mutation rate limiting; nil when off

	durability string // daemon-configured policy name, for /v1/stats

	admit    sync.RWMutex // orders admitMutation's Add against Drain's Wait
	draining atomic.Bool
	inflight sync.WaitGroup // in-flight mutations, awaited by Drain

	closeOnce sync.Once
	closeErr  error
}

// New builds a Server and its route table.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1000
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		ix:   cfg.Index,
		cfg:  cfg,
		gate: make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	s.mux = http.NewServeMux()
	for _, r := range routes {
		h := r.handler
		s.mux.HandleFunc(r.Method+" "+r.Pattern, func(w http.ResponseWriter, req *http.Request) {
			h(s, w, req)
		})
	}
	if cfg.Pprof {
		obs.RegisterPprof(s.mux)
	}
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// route is one entry of the server's route table.  The table is the
// single source of truth: the mux is built from it and the docs/API.md
// coverage test walks it.
type route struct {
	Method  string
	Pattern string
	handler func(*Server, http.ResponseWriter, *http.Request)
}

var routes = []route{
	{"POST", "/v1/update", (*Server).handleUpdate},
	{"POST", "/v1/delete", (*Server).handleDelete},
	{"POST", "/v1/batch", (*Server).handleBatch},
	{"GET", "/v1/timeslice", (*Server).handleTimeslice},
	{"GET", "/v1/window", (*Server).handleWindow},
	{"GET", "/v1/moving", (*Server).handleMoving},
	{"GET", "/v1/nearest", (*Server).handleNearest},
	{"GET", "/v1/object", (*Server).handleObject},
	{"GET", "/v1/stats", (*Server).handleStats},
	{"POST", "/v1/reshard", (*Server).handleReshard},
	{"GET", "/v1/reshard/status", (*Server).handleReshardStatus},
	{"POST", "/v1/reshard/cancel", (*Server).handleReshardCancel},
	{"GET", "/v1/backup", (*Server).handleBackup},
	{"GET", "/v1/wal", (*Server).handleWAL},
	{"GET", "/healthz", (*Server).handleHealthz},
	{"GET", "/readyz", (*Server).handleReadyz},
	{"GET", "/metrics", (*Server).handleMetrics},
	{"GET", "/debug/rexp/traces", (*Server).handleTraces},
}

// Routes lists the registered routes as "METHOD /path" strings (pprof,
// mounted wholesale under /debug/pprof/, is listed as its mount point).
func Routes() []string {
	out := make([]string, 0, len(routes)+1)
	for _, r := range routes {
		out = append(out, r.Method+" "+r.Pattern)
	}
	out = append(out, "GET /debug/pprof/")
	return out
}

// Clock returns the server's logical clock: the largest report time
// ingested so far (or observed at startup from the reopened index).
func (s *Server) Clock() float64 { return s.clock.Now() }

// ObserveClock advances the logical clock to at least t; rexpd seeds
// it from the reopened index's newest report so queries start valid.
func (s *Server) ObserveClock(t float64) { s.clock.Observe(t) }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting mutations (they are refused with 503 +
// Retry-After; /readyz flips to 503) and waits for the in-flight ones
// to finish.  It does not close the index — the daemon does that after
// the HTTP listener has drained its readers too — and is idempotent.
func (s *Server) Drain() {
	// Taking the admission lock exclusively flushes out admitMutation's
	// check-then-Add sections: every Add either happened before this
	// point (so Wait sees it) or starts after and is refused.  Without
	// it an Add could race the Wait at counter zero, which sync.WaitGroup
	// forbids.
	s.admit.Lock()
	s.draining.Store(true)
	s.admit.Unlock()
	s.inflight.Wait()
}

// CloseIndex checkpoints and closes the index; idempotent.
func (s *Server) CloseIndex() error {
	s.closeOnce.Do(func() { s.closeErr = s.ix.Close() })
	return s.closeErr
}

// admitMutation gates every mutating request: a read-only follower
// refuses it with 403, a rate-limited client with 429 + jittered
// Retry-After, a drain with 503; otherwise it joins the in-flight
// group the drain waits on.  The returned release must be called
// exactly once; ok is false when the request was already answered.
func (s *Server) admitMutation(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.cfg.ReadOnly {
		writeError(w, http.StatusForbidden, "read-only follower: mutations must go to the leader")
		return nil, false
	}
	if s.limiter != nil {
		if wait, allowed := s.limiter.allow(clientKey(r), time.Now()); !allowed {
			w.Header().Set("Retry-After", retryAfterJitter(wait))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded for this client")
			return nil, false
		}
	}
	s.admit.RLock()
	if s.draining.Load() {
		s.admit.RUnlock()
		s.retryLater(w, http.StatusServiceUnavailable, "draining: not admitting mutations")
		return nil, false
	}
	s.inflight.Add(1)
	s.admit.RUnlock()
	// A drain that began after the Add above waits for this request
	// like any other in-flight mutation; no ack can race the close.
	return func() { s.inflight.Done() }, true
}

// acquireBatchSlot additionally bounds ingest-batch concurrency: when
// MaxInFlight batches are already streaming, the caller is told to back
// off with 429 + Retry-After instead of queueing without bound.
func (s *Server) acquireBatchSlot(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.gate <- struct{}{}:
		return func() { <-s.gate }, true
	default:
		s.retryLater(w, http.StatusTooManyRequests,
			"overloaded: %d ingest batches in flight", cap(s.gate))
		return nil, false
	}
}

// retryLater answers an overload or drain refusal with a back-off hint.
func (s *Server) retryLater(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
	writeError(w, status, format, args...)
}

// atomicClock is a monotone float64 clock (CAS-max on the bit pattern).
type atomicClock struct{ bits atomic.Uint64 }

func (c *atomicClock) Now() float64 {
	return math.Float64frombits(c.bits.Load())
}

func (c *atomicClock) Observe(t float64) {
	for {
		old := c.bits.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}
